package journal_test

// Disk-fault injection tests for the journal's degraded-mode contract:
// every single-fault run must end in exactly one of two states — fully
// recovered byte-identical to a fault-free reference, or explicitly
// degraded with reads serving and writes refused.  There is no third
// state: never a silent loss of an acknowledged record, never a commit
// acknowledged after the disk stopped cooperating.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/journal"
	"repro/internal/meta"
)

// faultWorkload drives a deterministic commit-per-step workload and
// returns the LSN acknowledged durable by the last successful Commit plus
// the first commit failure.  snap adds a mid-run Snapshot so the sweep
// covers snapshot and compaction I/O sites; a failed snapshot is
// tolerated — the log retains everything, so only the commit path decides
// the run's fate.
func faultWorkload(w *journal.Writer, db *meta.DB, snap bool) (acked int64, failed error) {
	for i := 0; i < 8; i++ {
		k, err := db.NewVersion(fmt.Sprintf("blk%d", i%3), "HDL_model")
		if err != nil {
			return acked, err
		}
		if err := db.SetProp(k, "round", fmt.Sprint(i)); err != nil {
			return acked, err
		}
		if err := w.Commit(); err != nil {
			return acked, err
		}
		acked = w.CommittedLSN()
		if snap && i == 4 {
			_ = w.Snapshot()
		}
	}
	return acked, nil
}

// sweepOpts are the faulty runs' options: segments tiny enough to rotate,
// fsync on every commit so the sync site exists, snapshots manual.
func sweepOpts(fs faultfs.FS) journal.Options {
	return journal.Options{SegmentBytes: 256, SnapshotEvery: -1, Fsync: true, FS: fs}
}

// buildFaultShadow runs the workload fault-free on the real filesystem
// with its raw log fully retained (one big segment, no snapshot), so
// ReplayUpTo over it yields the exact reference state at ANY lsn a faulty
// run might recover to.
func buildFaultShadow(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faultWorkload(w, db, false); err != nil {
		t.Fatal(err)
	}
	w.Abort() // keep the raw log: Close would fold it into a snapshot
	return dir
}

// requireRecovers is the sweep's no-third-state assertion: the faulty
// directory, read back with a CLEAN filesystem (the fault has been
// repaired), must recover without error, to at least the acknowledged
// position, and byte-identical to the fault-free reference at whatever
// lsn it reached.
func requireRecovers(t *testing.T, desc, dir, shadow string, acked int64) {
	t.Helper()
	got, lsn, err := journal.Replay(dir, 0)
	if err != nil {
		t.Errorf("%s: THIRD STATE — neither recovered nor cleanly degraded: replay failed: %v", desc, err)
		return
	}
	if lsn < acked {
		t.Errorf("%s: acknowledged lsn %d lost — recovered only to %d", desc, acked, lsn)
		return
	}
	want, wlsn, err := journal.ReplayUpTo(shadow, 0, lsn)
	if err != nil {
		t.Fatalf("%s: shadow replay to lsn %d: %v", desc, lsn, err)
	}
	if wlsn != lsn {
		t.Fatalf("%s: shadow replay reached lsn %d, want %d", desc, wlsn, lsn)
	}
	if !bytes.Equal(saveBytes(t, got), saveBytes(t, want)) {
		t.Errorf("%s: recovered state at lsn %d diverges from the fault-free reference", desc, lsn)
	}
}

// sweepRun executes the workload with one injected fault and asserts the
// degraded-mode contract end to end.
func sweepRun(t *testing.T, shadow string, plan faultfs.Plan) {
	t.Helper()
	desc := plan.Faults[0].String()
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, plan)
	w, db, err := journal.Open(dir, sweepOpts(inj))
	if err != nil {
		// The fault hit during Open: nothing was ever acknowledged, and a
		// clean reopen must recover the (empty) journal.
		w2, _, err2 := journal.Open(dir, journal.Options{SnapshotEvery: -1})
		if err2 != nil {
			t.Errorf("%s: open failed (%v) and clean reopen failed too: %v", desc, err, err2)
			return
		}
		if w2.LastLSN() != 0 {
			t.Errorf("%s: records appeared out of nowhere: lsn %d", desc, w2.LastLSN())
		}
		w2.Abort()
		return
	}
	acked, failed := faultWorkload(w, db, true)

	healthy, reason := w.Health()
	if failed != nil && healthy {
		t.Errorf("%s: commit failed (%v) but the journal reports healthy", desc, failed)
	}
	if !healthy {
		// The degraded contract: an explicit reason, reads still serving,
		// writes refused from now on.
		if reason == "" {
			t.Errorf("%s: degraded with an empty reason", desc)
		}
		if len(saveBytes(t, db)) == 0 {
			t.Errorf("%s: degraded journal stopped serving reads", desc)
		}
		if _, err := db.NewVersion("probe", "HDL_model"); err != nil {
			t.Fatalf("%s: in-memory mutation failed: %v", desc, err)
		}
		if err := w.Commit(); err == nil {
			t.Errorf("%s: degraded journal acknowledged a new commit", desc)
		} else if !strings.Contains(err.Error(), "journal") {
			t.Errorf("%s: degraded commit error does not name the journal: %v", desc, err)
		}
	}
	w.Abort() // crash
	requireRecovers(t, desc, dir, shadow, acked)
}

// TestJournalFaultSweep fails every I/O site of the journal's write path
// — every open, write, sync, rename, remove, readdir, close and mkdir the
// workload performs — exactly once each, one run per site, and asserts
// the two-state contract for every run.  The site list comes from a
// fault-free counting run over the same deterministic workload, so the
// sweep is exhaustive by construction: a new I/O call in the journal
// automatically grows the sweep.
func TestJournalFaultSweep(t *testing.T) {
	shadow := buildFaultShadow(t)

	counter := faultfs.New(faultfs.OS, faultfs.Plan{})
	dir := t.TempDir()
	w, db, err := journal.Open(dir, sweepOpts(counter))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faultWorkload(w, db, true); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	counts := counter.Counts()
	for _, op := range []faultfs.Op{faultfs.OpOpen, faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename, faultfs.OpRemove} {
		if counts[op] == 0 {
			t.Fatalf("workload exercises no %v site — the sweep would be vacuous (counts: %v)", op, counts)
		}
	}

	ops := make([]faultfs.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	runs := 0
	for _, op := range ops {
		for n := int64(1); n <= counts[op]; n++ {
			sweepRun(t, shadow, faultfs.SingleFault(op, n, nil))
			runs++
		}
	}
	t.Logf("swept %d single-fault runs over sites %v", runs, counts)
}

// TestJournalENOSPCCompactsAndResumes is the full-disk survival path: a
// journal whose compaction has lagged (simulated by transiently failing
// removes) hits ENOSPC mid-append, frees space by compacting behind its
// newest snapshot, retries the append, and keeps running healthy — the
// disk filling up is not a durability failure while reclaimable history
// exists.
func TestJournalENOSPCCompactsAndResumes(t *testing.T) {
	dir := t.TempDir()

	// Phase 1: build history whose compaction lagged.  Every Remove fails
	// (compaction is best-effort and shrugs), so the snapshot is installed
	// but the segments it covers stay on disk — reclaimable garbage.
	inj1 := faultfs.New(faultfs.OS, faultfs.Plan{Faults: []faultfs.Fault{
		{Op: faultfs.OpRemove, Sticky: true},
	}})
	w1, db1, err := journal.Open(dir, journal.Options{SegmentBytes: 256, SnapshotEvery: -1, FS: inj1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		k, err := db1.NewVersion(fmt.Sprintf("old%d", i), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := db1.SetProp(k, "phase", "one"); err != nil {
			t.Fatal(err)
		}
		if err := w1.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if healthy, reason := w1.Health(); !healthy {
		t.Fatalf("failed removes must not degrade the journal: %s", reason)
	}
	w1.Abort()

	// Phase 2: reopen on a nearly-full disk.  The budget fits a few more
	// commits; then ENOSPC forces the emergency compaction, which reclaims
	// phase 1's covered segments and the append retries through.
	inj2 := faultfs.New(faultfs.OS, faultfs.Plan{DiskBytes: 600})
	w2, db2, err := journal.Open(dir, journal.Options{SegmentBytes: 1 << 20, SnapshotEvery: -1, FS: inj2})
	if err != nil {
		t.Fatal(err)
	}
	sawENOSPC := false
	for i := 0; i < 400; i++ {
		k, err := db2.NewVersion(fmt.Sprintf("new%d", i), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := db2.SetProp(k, "phase", "two"); err != nil {
			t.Fatal(err)
		}
		if err := w2.Commit(); err != nil {
			t.Fatalf("commit %d failed despite reclaimable history on disk: %v", i, err)
		}
		if len(inj2.Fired()) > 0 {
			sawENOSPC = true
			break
		}
	}
	if !sawENOSPC {
		t.Fatal("the disk budget never filled — the ENOSPC path was not exercised")
	}
	if healthy, reason := w2.Health(); !healthy {
		t.Fatalf("journal degraded instead of compacting through ENOSPC: %s", reason)
	}

	// The node keeps accepting writes in the reclaimed space.
	for i := 0; i < 3; i++ {
		k, err := db2.NewVersion(fmt.Sprintf("post%d", i), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := db2.SetProp(k, "phase", "resumed"); err != nil {
			t.Fatal(err)
		}
		if err := w2.Commit(); err != nil {
			t.Fatalf("commit after the emergency compaction: %v", err)
		}
	}
	want := saveBytes(t, db2)
	w2.Abort()

	// The log the ENOSPC retry resumed into must be seamless: a clean
	// recovery reproduces the exact live state.
	got, _, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatalf("recovery after ENOSPC compaction: %v", err)
	}
	if !bytes.Equal(want, saveBytes(t, got)) {
		t.Error("recovered state differs after the ENOSPC-compact-retry append")
	}
}

// TestJournalFsyncGate is the fsyncgate regression: after one failed
// fsync the watermark must never advance, the failure must be sticky
// (no later commit acknowledged), and a tailer must never deliver the
// unsynced suffix — it learns of the degradation through an explicit
// health event instead of waiting forever.
func TestJournalFsyncGate(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, faultfs.Plan{Faults: []faultfs.Fault{
		{Op: faultfs.OpSync, Nth: 4, Sticky: true, Path: "journal-"},
	}})
	w, db, err := journal.Open(dir, journal.Options{Fsync: true, SnapshotEvery: -1, FS: inj})
	if err != nil {
		t.Fatal(err)
	}

	var keys []meta.Key
	for i := 0; i < 3; i++ {
		k, err := db.NewVersion(fmt.Sprintf("ok%d", i), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	wm := w.CommittedLSN()
	if wm == 0 {
		t.Fatal("no watermark before the fault")
	}

	// A follower tail, caught up to the watermark.
	tl := w.NewTailer(0)
	defer tl.Close()
	stop := make(chan struct{})
	var delivered []int64
	for {
		ev, err := tl.Next(stop)
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == journal.FollowMark {
			if ev.Watermark != wm {
				t.Fatalf("caught-up watermark %d, want %d", ev.Watermark, wm)
			}
			break
		}
		if ev.Kind == journal.FollowRecord {
			delivered = append(delivered, ev.Rec.LSN)
		}
	}

	// The 4th segment fsync fails — and keeps failing.
	if err := db.SetProp(keys[0], "unsynced", "true"); err != nil {
		t.Fatal(err)
	}
	err = w.Commit()
	if err == nil {
		t.Fatal("commit acknowledged over a failed fsync")
	}
	if !strings.Contains(err.Error(), "fsync") {
		t.Errorf("commit error does not name the fsync: %v", err)
	}
	if got := w.CommittedLSN(); got != wm {
		t.Fatalf("watermark advanced to %d past a failed fsync (was %d)", got, wm)
	}
	if healthy, reason := w.Health(); healthy || !strings.Contains(reason, "fsync") {
		t.Fatalf("health = (%v, %q), want degraded with an fsync reason", healthy, reason)
	}

	// Sticky: the next commit is refused too, and the watermark stays put.
	if err := db.SetProp(keys[1], "also-unsynced", "true"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err == nil {
		t.Fatal("second commit acknowledged on a degraded journal")
	}
	if got := w.CommittedLSN(); got != wm {
		t.Fatalf("watermark moved to %d on a degraded journal", got)
	}

	// The parked tailer gets exactly one health event at the final
	// watermark — never a record from the unsynced suffix.
	ev, err := tl.Next(stop)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != journal.FollowHealth {
		t.Fatalf("tailer produced kind %v past a failed fsync, want FollowHealth", ev.Kind)
	}
	if ev.Watermark != wm || ev.Reason == "" {
		t.Fatalf("health event = (wm %d, reason %q), want wm %d with a reason", ev.Watermark, ev.Reason, wm)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	if ev, err := tl.Next(stop); err != journal.ErrTailStopped {
		t.Fatalf("tailer delivered (%v, %v) past a failed fsync, want ErrTailStopped", ev, err)
	}
	for _, lsn := range delivered {
		if lsn > wm {
			t.Fatalf("tailer shipped lsn %d above the durable watermark %d", lsn, wm)
		}
	}

	// Crash and recover with a healthy disk: the acknowledged prefix is
	// intact.  (The unsynced suffix MAY survive — it was written, just not
	// synced — which is allowed: it was never acknowledged to anyone.)
	w.Abort()
	_, lsn, err := journal.Replay(dir, 0)
	if err != nil {
		t.Fatalf("recovery after fsync failure: %v", err)
	}
	if lsn < wm {
		t.Fatalf("recovery lost acknowledged records: lsn %d < watermark %d", lsn, wm)
	}
}
