package flow

import (
	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/meta"
	"repro/internal/tools"
	"repro/internal/wrapper"
)

// ScenarioResult records what the section 3.4 scenario produced, for
// examples and benches to assert or display.
type ScenarioResult struct {
	HDL1, HDL2, HDL3 meta.Key
	Lib              meta.Key
	CPUSchematic     meta.Key
	REGSchematic     meta.Key
	Netlist          meta.Key

	// FirstSim and SecondSim are the designer-interpreted simulation
	// results ("4 errors", then "good").
	FirstSim, SecondSim string

	// StaleAfterChange lists the OIDs whose uptodate property is "false"
	// after the version-3 check-in.
	StaleAfterChange []meta.Key
}

// RunEDTCScenario replays the designer story of section 3.4 against an
// engine loaded with the EDTC_example blueprint: write a defective model,
// simulate, fix, simulate, synthesize a two-block hierarchy, auto-netlist,
// then change the model and watch the outofdate wave invalidate the
// derived data.  If the engine's executor routes "netlister" to the
// session's auto-executor (see NewEDTCSession), the netlist appears
// automatically; otherwise the scenario runs the netlister wrapper
// explicitly.
func RunEDTCScenario(sess *wrapper.Session) (*ScenarioResult, error) {
	eng := sess.Eng
	db := eng.DB()
	res := &ScenarioResult{}

	// <CPU.HDL_model.1>: defective, simulates badly.
	hdl1, err := sess.CheckinHDL("CPU", 100, 4)
	if err != nil {
		return nil, err
	}
	res.HDL1 = hdl1
	if res.FirstSim, err = sess.RunHDLSim(hdl1); err != nil {
		return nil, err
	}

	// <CPU.HDL_model.2>: fixed, simulates good.
	hdl2, err := sess.CheckinHDL("CPU", 100, 0)
	if err != nil {
		return nil, err
	}
	res.HDL2 = hdl2
	if res.SecondSim, err = sess.RunHDLSim(hdl2); err != nil {
		return nil, err
	}

	// Library, then synthesis of the CPU and its REG component.
	if res.Lib, err = sess.InstallLibrary("stdlib"); err != nil {
		return nil, err
	}
	if res.CPUSchematic, err = sess.Synthesize(hdl2, res.Lib); err != nil {
		return nil, err
	}
	rhdl, err := sess.CheckinHDL("REG", 20, 0)
	if err != nil {
		return nil, err
	}
	if _, err := sess.RunHDLSim(rhdl); err != nil {
		return nil, err
	}
	if res.REGSchematic, err = sess.Synthesize(rhdl, res.Lib); err != nil {
		return nil, err
	}
	if err := sess.AddComponent(res.CPUSchematic, res.REGSchematic); err != nil {
		return nil, err
	}

	// The netlister ran automatically on the schematic check-in if the
	// engine's executor routes it; otherwise run it explicitly.
	nl, err := db.Latest("CPU", "netlist")
	if err != nil {
		if nl, err = sess.RunNetlister(res.CPUSchematic); err != nil {
			return nil, err
		}
	}
	res.Netlist = nl

	// <CPU.HDL_model.3>: the change.  Check-in posts the outofdate wave.
	hdl3, err := sess.CheckinHDL("CPU", 110, 0)
	if err != nil {
		return nil, err
	}
	res.HDL3 = hdl3

	db.EachOID(func(o *meta.OID) bool {
		if o.Props["uptodate"] == "false" {
			res.StaleAfterChange = append(res.StaleAfterChange, o.Key)
		}
		return true
	})
	return res, nil
}

// NewEDTCSession builds the standard rig for the EDTC scenario: engine on
// the paper's blueprint, simulated tool suite, wrapper session, and the
// auto-netlister wiring.  It returns the session and the recorder that
// captures notify/exec traffic.
func NewEDTCSession(seed uint64, opts ...engine.Option) (*wrapper.Session, *exec.Recorder, error) {
	bp, err := engineBlueprint()
	if err != nil {
		return nil, nil, err
	}
	rec := &exec.Recorder{}
	// Indirect executor: resolved after the session exists.
	var sess *wrapper.Session
	reg := exec.NewRegistry()
	reg.Fallback = func(inv exec.Invocation) error { return nil }
	opts = append(opts, engine.WithExecutor(exec.Tee{reg, rec}))
	eng, err := engine.New(meta.NewDB(), bp, opts...)
	if err != nil {
		return nil, nil, err
	}
	sess = wrapper.NewSession(eng, tools.NewSuite(seed), "designer")
	auto := sess.AutoExecutor()
	reg.Register("netlister", func(inv exec.Invocation) error { return auto.Exec(inv) })
	return sess, rec, nil
}

func engineBlueprint() (*bpl.Blueprint, error) { return bpl.Parse(bpl.EDTCExample) }
