package flow

import (
	"fmt"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/meta"
)

// DSMResult records the checkpoints of the deep-submicron signoff
// scenario.
type DSMResult struct {
	RTL, Gates, Floorplan, SDF meta.Key

	// SlackBefore and SlackAfter are the sta_slack values around the
	// timing fix.
	SlackBefore, SlackAfter string

	// AutoSTARuns counts sta_runner invocations triggered by the sdf
	// view's run_sta posting — automation crossing view boundaries.
	AutoSTARuns int

	// Notifications captures the notify traffic (timing reports to
	// designers).
	Notifications []string
}

// RunDSMScenario drives the DSM_signoff policy through a timing-closure
// story: lint RTL, synthesize gates, fail timing, fix, re-run, floorplan,
// extract SDF — whose check-in automatically re-triggers STA on the gates
// through a targeted post.  It demonstrates that the same engine and
// language accommodate a methodology quite different from the EDTC
// example.
func RunDSMScenario() (*DSMResult, error) {
	bp, err := bpl.Parse(bpl.DSMExample)
	if err != nil {
		return nil, err
	}
	rec := &exec.Recorder{}
	reg := exec.NewRegistry()
	eng, err := engine.New(meta.NewDB(), bp, engine.WithExecutor(exec.Tee{reg, rec}))
	if err != nil {
		return nil, err
	}
	res := &DSMResult{}

	// The STA wrapper: invoked automatically via the run_sta exec rule.
	// After extraction the analysis accounts for real wire delays; this
	// simulation reports "met" (the design was fixed before extraction).
	reg.Register("sta_runner", func(inv exec.Invocation) error {
		res.AutoSTARuns++
		k, err := meta.ParseKey(inv.Args[0])
		if err != nil {
			return err
		}
		return eng.Post(engine.Event{
			Name: "sta", Dir: bpl.DirDown, Target: k, Args: []string{"met"}, User: "sta_runner",
		})
	})

	ckin := func(k meta.Key) error {
		return eng.PostAndDrain(engine.Event{
			Name: engine.EventCheckin, Dir: bpl.DirDown, Target: k, User: "dsm",
		})
	}
	post := func(name string, k meta.Key, arg string) error {
		return eng.PostAndDrain(engine.Event{
			Name: name, Dir: bpl.DirDown, Target: k, Args: []string{arg}, User: "dsm",
		})
	}

	// RTL, linted clean.
	if res.RTL, err = eng.CreateOID("core", "RTL", "dsm"); err != nil {
		return nil, err
	}
	if err := ckin(res.RTL); err != nil {
		return nil, err
	}
	if err := post("lint", res.RTL, "clean"); err != nil {
		return nil, err
	}

	// Gates: first STA fails timing.
	if res.Gates, err = eng.CreateOID("core", "gate_netlist", "dsm"); err != nil {
		return nil, err
	}
	if _, err := eng.CreateLink(meta.DeriveLink, res.RTL, res.Gates); err != nil {
		return nil, err
	}
	if err := ckin(res.Gates); err != nil {
		return nil, err
	}
	if err := post("gate_sim", res.Gates, "good"); err != nil {
		return nil, err
	}
	if err := post("sta", res.Gates, "violated -0.42ns"); err != nil {
		return nil, err
	}
	res.SlackBefore, _, _ = eng.DB().GetProp(res.Gates, "sta_slack")

	// Timing fix: a new gates version (the derived link shifts), then STA
	// passes.
	gates2, err := eng.CreateOID("core", "gate_netlist", "dsm")
	if err != nil {
		return nil, err
	}
	res.Gates = gates2
	if err := ckin(gates2); err != nil {
		return nil, err
	}
	if err := post("gate_sim", gates2, "good"); err != nil {
		return nil, err
	}
	if err := post("sta", gates2, "met"); err != nil {
		return nil, err
	}
	res.SlackAfter, _, _ = eng.DB().GetProp(gates2, "sta_slack")

	// Floorplan and extraction.  Checking in the SDF posts run_sta back
	// to the gate netlist, so STA re-runs automatically on annotated
	// delays.
	if res.Floorplan, err = eng.CreateOID("core", "floorplan", "dsm"); err != nil {
		return nil, err
	}
	if _, err := eng.CreateLink(meta.DeriveLink, gates2, res.Floorplan); err != nil {
		return nil, err
	}
	if err := ckin(res.Floorplan); err != nil {
		return nil, err
	}
	if err := post("fp_analysis", res.Floorplan, "ok"); err != nil {
		return nil, err
	}
	if res.SDF, err = eng.CreateOID("core", "sdf", "dsm"); err != nil {
		return nil, err
	}
	if _, err := eng.CreateLink(meta.DeriveLink, res.Floorplan, res.SDF); err != nil {
		return nil, err
	}
	if err := ckin(res.SDF); err != nil {
		return nil, err
	}

	res.Notifications = rec.Notifications()

	// Sanity: the scenario must leave the gates signed off.
	if v, _, _ := eng.DB().GetProp(gates2, "state"); v != "true" {
		o, _ := eng.DB().GetOID(gates2)
		return nil, fmt.Errorf("flow: gates not signed off: %v", o.Props)
	}
	return res, nil
}
