// netserver demonstrates the Figure 1 deployment: the DAMOCLES project
// server owning the meta-database, with wrapper programs posting events
// over the network.  The example starts an in-process server on a loopback
// port, then acts as two designers on separate connections and finally
// queries the project state remotely.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)

	proj, err := repro.NewProject(repro.EDTCExample)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(proj.Engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("project server listening on", addr)

	// Designer 1: creates and simulates the HDL model.
	yves, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer yves.Close()
	yves.User = "yves"

	hdl, err := yves.Create("CPU", "HDL_model")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("yves created", hdl)
	if err := yves.PostEvent("hdl_sim", "down", hdl, "good"); err != nil {
		log.Fatal(err)
	}

	// Designer 2: builds the schematic, links it, and checks it in — the
	// postEvent traffic of section 3.1, over TCP.
	marc, err := server.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer marc.Close()
	marc.User = "marc"

	sch, err := marc.Create("CPU", "schematic")
	if err != nil {
		log.Fatal(err)
	}
	if err := marc.Link("derive", hdl, sch); err != nil {
		log.Fatal(err)
	}
	if err := marc.PostEvent("ckin", "down", sch); err != nil {
		log.Fatal(err)
	}
	fmt.Println("marc created and checked in", sch)

	// Yves changes the model: the server-side outofdate wave invalidates
	// marc's schematic.
	hdl2, err := yves.Create("CPU", "HDL_model")
	if err != nil {
		log.Fatal(err)
	}
	if err := yves.PostEvent("ckin", "down", hdl2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("yves checked in", hdl2)

	st, err := marc.State(sch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremote state query for %v:\n  ready=%v uptodate=%s lvs_res=%q\n",
		sch, st.Ready, st.Props["uptodate"], st.Props["lvs_res"])
	for _, b := range st.Blocking {
		fmt.Println("  blocking:", b)
	}

	stats, err := marc.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nserver stats:", stats)
}
