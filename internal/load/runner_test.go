package load

import (
	"testing"
	"time"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/server"
)

// TestRunnerInProcess drives a small mixed scenario against an
// in-process server end to end: every class executes, nothing drops,
// nothing errors, and the emitted result document is self-consistent.
func TestRunnerInProcess(t *testing.T) {
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec := Scenario{
		Name:     "inproc",
		Seed:     7,
		Rate:     80,
		Duration: Dur{2 * time.Second},
		Workers:  4,
		Blocks:   8,
		Batch:    3,
		Mix: map[string]int{
			OpCheckin: 30, OpReport: 10, OpStorm: 15,
			OpChurn: 25, OpSwap: 5, OpState: 15,
		},
	}
	r := &Runner{Spec: spec, Primary: addr, Logf: t.Logf}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.ErrorsAll != 0 {
		t.Fatalf("dropped=%d errors=%d (kinds %v)", res.Dropped, res.ErrorsAll, res.ErrorKinds)
	}
	if res.Completed != res.Arrivals {
		t.Fatalf("completed %d of %d arrivals", res.Completed, res.Arrivals)
	}
	var total int64
	for class, op := range res.Ops {
		if op.Count == 0 {
			t.Errorf("class %q never ran", class)
		}
		if op.Count > 0 && op.P50Ms <= 0 {
			t.Errorf("class %q: zero p50 with %d samples", class, op.Count)
		}
		if op.P99Ms < op.P50Ms {
			t.Errorf("class %q: p99 %v < p50 %v", class, op.P99Ms, op.P50Ms)
		}
		total += op.Count
	}
	if total != res.Completed {
		t.Errorf("per-class counts sum %d != completed %d", total, res.Completed)
	}
	if res.Server["oids"] != int64(spec.Blocks)+res.Ops[OpChurn].Count {
		t.Errorf("server oids=%d, expected pool %d + churn %d",
			res.Server["oids"], spec.Blocks, res.Ops[OpChurn].Count)
	}
	// The swap ops really re-installed the blueprint (same source, so
	// semantics are unchanged — but the path executed).
	if res.Ops[OpSwap].Count == 0 {
		t.Error("no blueprint swaps executed")
	}
}

// TestRunnerSpawnedCluster exercises the process harness: spawn a real
// journaled primary with one follower, run a short write-heavy load
// with follower reads, and check replication lag was observed.  Skipped
// in -short mode (it builds and forks real processes).
func TestRunnerSpawnedCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	bin, err := BuildDamocles(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := StartCluster(bin, ClusterOpts{Followers: 1, Ack: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	spec := Scenario{
		Name:          "cluster-smoke",
		Seed:          3,
		Rate:          60,
		Duration:      Dur{2 * time.Second},
		Workers:       4,
		Blocks:        8,
		Batch:         3,
		Mix:           map[string]int{OpCheckin: 40, OpStorm: 30, OpChurn: 30},
		FollowerReads: true,
	}
	r := &Runner{
		Spec:      spec,
		Primary:   cluster.Primary.Addr,
		Followers: cluster.FollowerAddrs(),
		Logf:      t.Logf,
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorsAll != 0 {
		t.Fatalf("errors=%d kinds=%v", res.ErrorsAll, res.ErrorKinds)
	}
	if res.Replication == nil || res.Replication.Samples == 0 {
		t.Fatal("no replication lag samples collected")
	}
	if res.Ops[OpStorm].Count == 0 {
		t.Fatal("no storm reads executed")
	}
}
