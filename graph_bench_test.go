package repro

// Graph-query benchmarks: walk latency while writers keep committing.
// The pre-MVCC walks took every shard (or stripe) read lock for the whole
// traversal; the view walks read the versioned adjacency index and hold
// none, so latency under write load should sit near the idle baseline.
//
// Writers are paced exactly like benchWriteDB's (see mvcc_bench_test.go)
// so the benchmark measures lock contention, not CPU starvation.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/meta"
)

// benchGraphDB builds a project with n blocks, chains the first `chain`
// of them with derive links (blk i → blk i+1, no propagation events) and,
// for writers > 0, starts that many paced property writers mutating until
// the returned stop function is called.  It returns the chain root.
func benchGraphDB(b *testing.B, n, chain, writers int) (*Project, meta.Key, func()) {
	b.Helper()
	proj := mustProject(b, EDTCExample)
	keys := make([]meta.Key, n)
	for i := 0; i < n; i++ {
		k, err := proj.Engine.CreateOID(fmt.Sprintf("blk%04d", i), "schematic", "bench")
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
		if i > 0 && i < chain {
			if _, err := proj.Engine.CreateLink(meta.DeriveLink, keys[i-1], k); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := proj.Engine.Drain(); err != nil {
		b.Fatal(err)
	}
	proj.DB.EnableMVCC()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k, err := proj.DB.Latest(fmt.Sprintf("blk%04d", (w*31+i)%n), "schematic")
				if err == nil {
					_ = proj.DB.SetProp(k, "sim_result", fmt.Sprint(i))
				}
				i++
				time.Sleep(100 * time.Microsecond)
			}
		}(w)
	}
	return proj, keys[0], func() {
		close(stop)
		wg.Wait()
	}
}

// BenchmarkReachableUnderWrites measures a full-closure Reachable walk
// (every block, via the public DB method, which pins a read view when
// MVCC is on) on an idle database and under four concurrent paced
// writers.  The acceptance bar for the lock-free walks is the two
// sub-benchmarks staying close; the old rlockAll path degraded with
// writer activity.
func BenchmarkReachableUnderWrites(b *testing.B) {
	const blocks = 500
	for _, writers := range []int{0, 4} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			proj, root, stop := benchGraphDB(b, blocks, blocks, writers)
			defer stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				keys := proj.DB.Reachable(root, meta.FollowAllLinks)
				if len(keys) != blocks {
					b.Fatal(len(keys))
				}
			}
		})
	}
}

// BenchmarkQueryIndexLookup measures a small-closure walk (8 linked
// blocks) pinned on one long-lived view over a large database (2000
// blocks): the versioned-adjacency point-lookup cost, with the view pin
// amortised away.
func BenchmarkQueryIndexLookup(b *testing.B) {
	const blocks, chain = 2000, 8
	proj, root, stop := benchGraphDB(b, blocks, chain, 0)
	defer stop()
	v := proj.DB.ReadView()
	defer v.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := v.Reachable(root, meta.FollowAllLinks)
		if len(keys) != chain {
			b.Fatal(len(keys))
		}
	}
}
