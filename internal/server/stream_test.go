package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
)

// TestReportStreamsRowsBeforeTerminator: REPORT over a connection must
// flush rows as they are produced, not buffer the whole body.  The server
// side runs on a synchronous, unbuffered net.Pipe playing a slow reader:
// each flush rendezvouses with exactly one Read, so if the server built
// the entire response first, the very first Read would hand back the
// terminator along with everything else.  Streaming instead delivers the
// header and early rows while later rows have not been written — rows
// arrive before the terminator.
func TestReportStreamsRowsBeforeTerminator(t *testing.T) {
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	db := meta.NewDB()
	const rows = 6
	for _, block := range []string{"A", "B", "C", "D", "E", "F"} {
		if _, err := db.NewVersion(block, "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := engine.New(db, bp)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	defer s.Close()

	cli, srv := net.Pipe()
	defer cli.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.serveConn(srv)
	}()

	if _, err := cli.Write([]byte("REPORT\n")); err != nil {
		t.Fatal(err)
	}

	// Drain the response chunk by chunk.  The pipe is unbuffered, so each
	// Read returns at most one flushed write.
	var chunks []string
	var total strings.Builder
	buf := make([]byte, 64*1024)
	cli.SetReadDeadline(time.Now().Add(10 * time.Second))
	for !strings.Contains(total.String(), "\n.\n") {
		n, err := cli.Read(buf)
		if err != nil {
			t.Fatalf("read after %d chunks: %v\nso far:\n%s", len(chunks), err, total.String())
		}
		chunks = append(chunks, string(buf[:n]))
		total.WriteString(string(buf[:n]))
	}

	// The first chunk is the flushed header alone — no rows, certainly no
	// terminator.  A buffered implementation would deliver everything in
	// a single chunk.
	if strings.Contains(chunks[0], ".") || strings.Contains(chunks[0], "ready=") {
		t.Fatalf("first chunk carries more than the header — response was buffered, not streamed:\n%q", chunks[0])
	}
	if len(chunks) < rows {
		t.Fatalf("whole response arrived in %d chunks; per-row flushing would take at least %d", len(chunks), rows)
	}

	// And the reassembled response is a correct, sorted report.
	lines := strings.Split(strings.TrimRight(total.String(), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "OK+") {
		t.Fatalf("bad header %q", lines[0])
	}
	if lines[len(lines)-1] != "." {
		t.Fatalf("bad terminator %q", lines[len(lines)-1])
	}
	body := lines[1 : len(lines)-1]
	if len(body) != rows {
		t.Fatalf("%d body rows, want %d:\n%s", len(body), rows, total.String())
	}
	for i, l := range body {
		if !strings.HasPrefix(l, "|") {
			t.Fatalf("row %d lacks the body prefix: %q", i, l)
		}
	}
	if !strings.Contains(body[0], "A,HDL_model,1") || !strings.Contains(body[rows-1], "F,HDL_model,1") {
		t.Fatalf("rows not in sorted key order:\n%s", strings.Join(body, "\n"))
	}

	cli.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("serveConn never returned after hangup")
	}
}

// TestServerIgnoresTornRequestLine: a request cut off mid-send — the
// connection dies before the newline — must never be executed, because a
// truncated prefix can itself parse as a valid, different request; on a
// journaled primary the wrong mutation would be committed and replicated.
func TestServerIgnoresTornRequestLine(t *testing.T) {
	s, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A complete-looking CREATE torn from a longer line ("...HDL_modelX").
	if _, err := conn.Write([]byte("CREATE TORN HDL_model")); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A full round-trip on a fresh connection orders us after the torn
	// one was (not) processed only heuristically; give the server a beat.
	time.Sleep(100 * time.Millisecond)
	if _, err := s.eng.DB().Latest("TORN", "HDL_model"); err == nil {
		t.Fatal("server executed a torn request fragment")
	}

	// And a properly terminated line on a live connection still works.
	c := dial(t, addr)
	if _, err := c.Create("WHOLE", "HDL_model"); err != nil {
		t.Fatal(err)
	}
}

// TestReportMinLSNGate: the optional REPORT <min-lsn> argument needs an
// LSN space to compare against; a server with neither journal nor replica
// refuses it rather than silently serving unversioned state.
func TestReportMinLSNGate(t *testing.T) {
	_, addr := startServer(t) // no journal attached
	c := dial(t, addr)
	if _, err := c.ReportAt(1); err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("REPORT min-lsn without a journal: %v", err)
	}
}
