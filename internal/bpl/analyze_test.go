package bpl

import (
	"strings"
	"testing"
)

func diagsContaining(ds []Diagnostic, sev Severity, substr string) int {
	n := 0
	for _, d := range ds {
		if d.Sev == sev && strings.Contains(d.Msg, substr) {
			n++
		}
	}
	return n
}

func TestAnalyzeEDTCClean(t *testing.T) {
	bp := mustParse(t, EDTCExample)
	ds := Analyze(bp)
	if HasErrors(ds) {
		t.Errorf("EDTC example has errors: %v", ds)
	}
}

func TestAnalyzeDuplicateView(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
endview
view v
endview
endblueprint`)
	ds := Analyze(bp)
	if diagsContaining(ds, SevError, "duplicate view") != 1 {
		t.Errorf("diagnostics = %v", ds)
	}
}

func TestAnalyzeDuplicateProperty(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    property p default a
    property p default b
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevError, "duplicate property") != 1 {
		t.Error("duplicate property not flagged")
	}
}

func TestAnalyzeLetShadowsProperty(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    property state default bad
    let state = ($x == y)
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevError, "shadows") != 1 {
		t.Error("shadowing let not flagged")
	}
}

func TestAnalyzeSelfLink(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    link_from v propagates e
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevError, "itself") != 1 {
		t.Error("self link_from not flagged")
	}
}

func TestAnalyzeUndeclaredFromView(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    link_from ghost propagates e
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevWarning, "undeclared view") != 1 {
		t.Error("undeclared from view not flagged")
	}
}

func TestAnalyzeUndeclaredLetReference(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    let s = ($mystery == ok)
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevWarning, "undeclared property") != 1 {
		t.Error("undeclared reference not flagged")
	}
}

func TestAnalyzeBuiltinsAllowed(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    let s = ($user == yves) and ($arg1 == ok)
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevWarning, "undeclared property") != 0 {
		t.Errorf("builtins flagged: %v", Analyze(bp))
	}
}

func TestAnalyzeDefaultViewPropertiesVisible(t *testing.T) {
	bp := mustParse(t, `blueprint b
view default
    property uptodate default true
endview
view v
    let s = ($uptodate == true)
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevWarning, "undeclared property") != 0 {
		t.Errorf("default-view property flagged: %v", Analyze(bp))
	}
}

func TestAnalyzeUnpropagatedPost(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    when ckin do post orphan down done
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevInfo, "no link template") != 1 {
		t.Errorf("orphan post not reported: %v", Analyze(bp))
	}
}

func TestAnalyzePostToUndeclaredView(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    when ckin do post e down to nowhere done
endview
endblueprint`)
	if diagsContaining(Analyze(bp), SevWarning, "targets undeclared view") != 1 {
		t.Errorf("post-to undeclared view not flagged: %v", Analyze(bp))
	}
}

func TestAnalyzeSortedBySeverity(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    property p default a
    property p default b
    link_from ghost propagates e
    when ckin do post orphan down done
endview
endblueprint`)
	ds := Analyze(bp)
	for i := 1; i < len(ds); i++ {
		if ds[i].Sev < ds[i-1].Sev {
			t.Errorf("diagnostics unsorted: %v", ds)
		}
	}
}
