package meta

import "fmt"

// Election terms.  Every journaled database carries a term — a monotonic
// epoch counter that fences a deposed primary's divergent tail out of the
// replication plane.  History starts at term 1 (the genesis term, which
// has no table entry); every promotion appends one TermStart recording
// the term it began and the LSN of its term-bump record.  The table is
// part of the database state proper: it rides the canonical Save document
// (so snapshots carry the full term history to bootstrapped followers)
// and is keyed by LSN, so a point-in-time view filters it exactly like
// every other versioned fact.
//
// The table is stored copy-on-write behind an atomic pointer: appends are
// already serialized by the apply paths (recovery replay, a follower's
// ApplyAppend, promotion — all single-threaded or under the journal's
// apply mutex), while reads (Save, replication handshake validation)
// stay lock-free.

// TermStart records the beginning of one term: the term number and the
// LSN of the term-bump record that opened it.  Records with LSN ≥ LSN
// and below the next entry's LSN belong to Term.
type TermStart struct {
	Term int64
	LSN  int64
}

// termTable is the immutable slice behind DB.terms; entries are strictly
// increasing in both Term and LSN.
type termTable []TermStart

// CurrentTerm returns the database's election term: the newest term-bump
// applied, or 1 — the genesis term — when none ever was.
func (db *DB) CurrentTerm() int64 {
	if t := db.loadTerms(); len(t) > 0 {
		return t[len(t)-1].Term
	}
	return 1
}

// TermStarts returns a copy of the term table in ascending order.  The
// genesis term 1 has no entry.
func (db *DB) TermStarts() []TermStart {
	t := db.loadTerms()
	if len(t) == 0 {
		return nil
	}
	out := make([]TermStart, len(t))
	copy(out, t)
	return out
}

// FirstTermStartAfter returns the LSN of the oldest term-bump record that
// opened a term greater than term, and whether one exists.  It is the
// divergence bound of the replication handshake: a follower whose history
// ends in term T may resume below this LSN (its records are shared
// history) and must be refused at or beyond it (its records were written
// by a deposed primary after this lineage moved on).
func (db *DB) FirstTermStartAfter(term int64) (int64, bool) {
	for _, ts := range db.loadTerms() {
		if ts.Term > term {
			return ts.LSN, true
		}
	}
	return 0, false
}

// applyTermBump appends a term start to the table, validating that terms
// only ever move forward — a bump that does not exceed the current term
// is a record from a forked history and must fail loudly.
func (db *DB) applyTermBump(term, lsn int64) error {
	cur := db.loadTerms()
	if last := db.CurrentTerm(); term <= last {
		return fmt.Errorf("term %d does not exceed current term %d", term, last)
	}
	if len(cur) > 0 && lsn <= cur[len(cur)-1].LSN {
		return fmt.Errorf("term %d start lsn %d not beyond previous start %d", term, lsn, cur[len(cur)-1].LSN)
	}
	next := make(termTable, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = TermStart{Term: term, LSN: lsn}
	db.storeTerms(next)
	return nil
}

// termsUpTo returns the table entries with start LSN ≤ lsn — the term
// history as it stood at that journal position, feeding View.SaveTo so a
// point-in-time document equals what replay-up-to would produce.
func (db *DB) termsUpTo(lsn int64) termTable {
	t := db.loadTerms()
	n := len(t)
	for n > 0 && t[n-1].LSN > lsn {
		n--
	}
	return t[:n]
}

// setTermStarts installs a term table wholesale — the Load and
// RestoreFrom path.  Entries must be strictly increasing in both fields.
func (db *DB) setTermStarts(starts []TermStart) error {
	for i := range starts {
		if starts[i].Term < 2 || starts[i].LSN < 1 {
			return fmt.Errorf("invalid term start %+v", starts[i])
		}
		if i > 0 && (starts[i].Term <= starts[i-1].Term || starts[i].LSN <= starts[i-1].LSN) {
			return fmt.Errorf("term starts not strictly increasing: %+v after %+v", starts[i], starts[i-1])
		}
	}
	t := make(termTable, len(starts))
	copy(t, starts)
	db.storeTerms(t)
	return nil
}

func (db *DB) loadTerms() termTable {
	if p := db.terms.Load(); p != nil {
		return *p
	}
	return nil
}

func (db *DB) storeTerms(t termTable) { db.terms.Store(&t) }
