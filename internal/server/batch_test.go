package server

import (
	"strings"
	"testing"

	"repro/internal/meta"
	"repro/internal/wire"
)

// BATCH verb: many events, one round-trip, one drain.

func batchServerKeys(t *testing.T, s *Server, blocks ...string) []meta.Key {
	t.Helper()
	keys := make([]meta.Key, 0, len(blocks))
	for _, b := range blocks {
		k, err := s.Engine().CreateOID(b, "HDL_model", "tess")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := s.Engine().Drain(); err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestBatchPostsAllAndDrainsOnce(t *testing.T) {
	s, addr := startServer(t)
	keys := batchServerKeys(t, s, "alu", "reg", "shifter")
	c := dial(t, addr)

	items := make([]wire.BatchItem, len(keys))
	for i, k := range keys {
		items[i] = wire.BatchItem{Event: "hdl_sim", Dir: "down", OID: k.String(),
			Args: []string{"good result " + k.Block}}
	}
	posted, err := c.PostBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if posted != len(keys) {
		t.Fatalf("posted %d, want %d", posted, len(keys))
	}
	for _, k := range keys {
		v, ok, err := s.Engine().DB().GetProp(k, "sim_result")
		if err != nil || !ok {
			t.Fatalf("%v sim_result missing (%v)", k, err)
		}
		if v != "good result "+k.Block {
			t.Errorf("%v sim_result = %q", k, v)
		}
	}
}

func TestBatchReportsBadItemsAndPostsTheRest(t *testing.T) {
	s, addr := startServer(t)
	keys := batchServerKeys(t, s, "alu")
	c := dial(t, addr)

	items := []wire.BatchItem{
		{Event: "hdl_sim", Dir: "down", OID: keys[0].String(), Args: []string{"good"}},
		{Event: "hdl_sim", Dir: "sideways", OID: keys[0].String()},          // bad direction
		{Event: "hdl_sim", Dir: "down", OID: "missing,HDL_model,1"},         // unknown OID
		{Event: "hdl_sim", Dir: "down", OID: keys[0].String() + ",garbage"}, // bad key
	}
	posted, err := c.PostBatch(items)
	if err == nil {
		t.Fatal("batch with bad items reported no error")
	}
	if posted != 1 {
		t.Fatalf("posted %d, want 1", posted)
	}
	// The good item still went through.
	if v, _, _ := s.Engine().DB().GetProp(keys[0], "sim_result"); v != "good" {
		t.Errorf("good item not applied: sim_result=%q", v)
	}
}

func TestBatchQuotingRoundTrip(t *testing.T) {
	// Arguments with spaces, quotes and escapes survive the nested framing.
	s, addr := startServer(t)
	keys := batchServerKeys(t, s, "alu")
	c := dial(t, addr)

	nasty := `4 errors: "stuck\at zero"` + "\tand\nmore"
	if _, err := c.PostBatch([]wire.BatchItem{
		{Event: "hdl_sim", Dir: "down", OID: keys[0].String(), Args: []string{nasty}},
	}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s.Engine().DB().GetProp(keys[0], "sim_result"); v != nasty {
		t.Errorf("sim_result = %q, want %q", v, nasty)
	}
}

func TestBatchAsyncQueuesAndSyncs(t *testing.T) {
	bpSrv, addr := startAsyncServer(t)
	keys := batchServerKeys(t, bpSrv, "alu", "reg")
	c := dial(t, addr)

	items := make([]wire.BatchItem, len(keys))
	for i, k := range keys {
		items[i] = wire.BatchItem{Event: "hdl_sim", Dir: "down", OID: k.String(), Args: []string{"good"}}
	}
	posted, err := c.PostBatch(items)
	if err != nil {
		t.Fatal(err)
	}
	if posted != len(keys) {
		t.Fatalf("posted %d, want %d", posted, len(keys))
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, _, _ := bpSrv.Engine().DB().GetProp(k, "sim_result"); v != "good" {
			t.Errorf("%v sim_result = %q after sync", k, v)
		}
	}
}

func TestBatchHandleResponseShape(t *testing.T) {
	s, _ := startServer(t)
	keys := batchServerKeys(t, s, "alu")
	resp := s.Handle(wire.Request{Verb: wire.VerbBatch, Args: []string{
		wire.BatchItem{Event: "hdl_sim", Dir: "down", OID: keys[0].String(), Args: []string{"good"}}.Encode(),
	}})
	if !resp.OK {
		t.Fatalf("BATCH failed: %s", resp.Detail)
	}
	if !strings.HasPrefix(resp.Detail, "posted 1/1") {
		t.Errorf("detail = %q", resp.Detail)
	}
	if len(resp.Body) != 1 || !strings.HasPrefix(resp.Body[0], "0 ok") {
		t.Errorf("body = %v", resp.Body)
	}
	if resp := s.Handle(wire.Request{Verb: wire.VerbBatch}); resp.OK {
		t.Error("empty BATCH accepted")
	}
}
