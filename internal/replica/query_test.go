package replica_test

import (
	"strings"
	"testing"

	"repro/internal/journal"
	"repro/internal/meta"
)

// TestFollowerQueryAtMatchesPrimary is the wire-level acceptance check for
// QUERY <lsn>: every query kind, pinned at the same LSN, returns a
// byte-identical body from the primary and from a read-only follower —
// including time-travel queries at an LSN the graph has since moved past.
func TestFollowerQueryAtMatchesPrimary(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SnapshotEvery: -1})
	c.startFollower()

	pc := c.dial(c.paddr)
	defer pc.Close()

	blocks := []string{"CPU", "ALU", "REG", "IO"}
	var keys []meta.Key
	for i, b := range blocks {
		k, err := pc.Create(b, "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if i > 0 {
			if err := pc.Link("derive", keys[i-1], k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := pc.Snapshot("cfg1", "*"); err != nil {
		t.Fatal(err)
	}
	lsn := c.catchUp()

	fc := c.dial(c.faddr)
	defer fc.Close()

	root := keys[0]
	queries := [][]string{
		{"reach", root.String(), "all"},
		{"reach", root.String(), "use"},
		{"reach", root.String(), "type:" + meta.TypeEquivalence},
		{"deps", root.String()},
		{"deps", keys[1].String(), "all"},
		{"equiv", root.String()},
		{"resolve", "cfg1"},
	}
	bodies := make([]string, len(queries))
	for i, q := range queries {
		pb, err := pc.QueryAt(lsn, q[0], q[1:]...)
		if err != nil {
			t.Fatalf("primary QUERY %d %v: %v", lsn, q, err)
		}
		fb, err := fc.QueryAt(lsn, q[0], q[1:]...)
		if err != nil {
			t.Fatalf("follower QUERY %d %v: %v", lsn, q, err)
		}
		if strings.Join(pb, "\n") != strings.Join(fb, "\n") {
			t.Fatalf("QUERY %d %v diverges:\n--- primary\n%s\n--- follower\n%s",
				lsn, q, strings.Join(pb, "\n"), strings.Join(fb, "\n"))
		}
		bodies[i] = strings.Join(pb, "\n")
	}
	// reach all from the chain head covers the whole chain.
	if got := len(strings.Split(bodies[0], "\n")); got != len(keys) {
		t.Fatalf("reach all from %v returned %d keys, want %d:\n%s", root, got, len(keys), bodies[0])
	}

	// Move the graph past the pin: a new version and a new link.  The old
	// LSN must still answer with the old graph, identically on both nodes,
	// and differently from the new head.
	k2, err := pc.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.Link("derive", root, k2); err != nil {
		t.Fatal(err)
	}
	lsn2 := c.catchUp()
	if lsn2 <= lsn {
		t.Fatalf("catchUp did not advance: %d -> %d", lsn, lsn2)
	}
	pOld, err := pc.QueryAt(lsn, "reach", root.String(), "all")
	if err != nil {
		t.Fatal(err)
	}
	fOld, err := fc.QueryAt(lsn, "reach", root.String(), "all")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pOld, "\n") != bodies[0] || strings.Join(fOld, "\n") != bodies[0] {
		t.Fatalf("time-travel reach at lsn %d diverges from the original body:\nwas %s\nprimary now %s\nfollower now %s",
			lsn, bodies[0], strings.Join(pOld, "\n"), strings.Join(fOld, "\n"))
	}
	pNew, err := pc.QueryAt(lsn2, "reach", root.String(), "all")
	if err != nil {
		t.Fatal(err)
	}
	fNew, err := fc.QueryAt(lsn2, "reach", root.String(), "all")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pNew, "\n") != strings.Join(fNew, "\n") {
		t.Fatalf("QUERY at head lsn %d diverges between nodes", lsn2)
	}
	if len(pNew) != len(keys)+1 {
		t.Fatalf("reach at head returned %d keys, want %d", len(pNew), len(keys)+1)
	}
}
