package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{`POST ckin up reg,verilog,4 "logic sim passed"`,
			[]string{"POST", "ckin", "up", "reg,verilog,4", "logic sim passed"}},
		{``, nil},
		{`  a   b  `, []string{"a", "b"}},
		{`"a \"quoted\" word" plain`, []string{`a "quoted" word`, "plain"}},
		{`"tab\there" "nl\nthere" "bs\\"`, []string{"tab\there", "nl\nthere", `bs\`}},
		{`""`, []string{""}},
	}
	for _, tt := range tests {
		got, err := Tokenize(tt.in)
		if err != nil {
			t.Errorf("Tokenize(%q): %v", tt.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTokenizeErrors(t *testing.T) {
	for _, in := range []string{`"open`, `a"b`, `"esc\q"`, `"dangling\`} {
		if _, err := Tokenize(in); !errors.Is(err, ErrSyntax) {
			t.Errorf("Tokenize(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestQuoteRoundTrip(t *testing.T) {
	values := []string{
		"plain", "two words", `with "quotes"`, "tab\tnl\n", "", `back\slash`,
		"reg,verilog,4",
	}
	for _, v := range values {
		got, err := Tokenize(Quote(v))
		if err != nil {
			t.Errorf("Quote(%q) = %q does not tokenize: %v", v, Quote(v), err)
			continue
		}
		if len(got) != 1 || got[0] != v {
			t.Errorf("round trip %q -> %q -> %q", v, Quote(v), got)
		}
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Verb: "POST", Args: []string{"ckin", "up", "reg,verilog,4", "logic sim passed"}, User: "yves"},
		{Verb: "PING"},
		{Verb: "CREATE", Args: []string{"cpu", "schematic"}, User: "marc m"},
		{Verb: "STATE", Args: []string{"cpu,schematic,1"}},
	}
	for _, r := range reqs {
		got, err := ParseRequest(r.Encode())
		if err != nil {
			t.Errorf("ParseRequest(%q): %v", r.Encode(), err)
			continue
		}
		if got.Verb != r.Verb || got.User != r.User || !reflect.DeepEqual(got.Args, r.Args) {
			t.Errorf("round trip %+v -> %+v", r, got)
		}
	}
}

func TestParseRequestNormalizesVerb(t *testing.T) {
	r, err := ParseRequest("post ev down a,v,1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Verb != "POST" {
		t.Errorf("verb = %q", r.Verb)
	}
}

func TestParseRequestErrors(t *testing.T) {
	for _, in := range []string{"", "   ", `user=x`, `"unterminated`} {
		if _, err := ParseRequest(in); err == nil {
			t.Errorf("ParseRequest(%q) accepted", in)
		}
	}
}

func TestResponseSingleLine(t *testing.T) {
	r := Response{OK: true, Detail: "cpu,schematic,1"}
	if got := r.Encode(); got != "OK cpu,schematic,1" {
		t.Errorf("Encode = %q", got)
	}
	parsed, multi, err := ParseResponseHeader(r.Encode())
	if err != nil || multi || !parsed.OK || parsed.Detail != "cpu,schematic,1" {
		t.Errorf("parse = %+v %v %v", parsed, multi, err)
	}
	e := Response{OK: false, Detail: "no such OID"}
	parsed, multi, err = ParseResponseHeader(e.Encode())
	if err != nil || multi || parsed.OK || parsed.Detail != "no such OID" {
		t.Errorf("parse err resp = %+v %v %v", parsed, multi, err)
	}
	if got := (Response{OK: true}).Encode(); got != "OK" {
		t.Errorf("empty ok = %q", got)
	}
}

func TestResponseMultiLine(t *testing.T) {
	r := Response{OK: true, Detail: "2 rows", Body: []string{"row one", ". leading dot", ""}}
	enc := r.Encode()
	want := "OK+ 2 rows\n|row one\n|. leading dot\n|\n."
	if enc != want {
		t.Errorf("Encode = %q, want %q", enc, want)
	}
	// Parse back line by line.
	lines := splitLines(enc)
	head, multi, err := ParseResponseHeader(lines[0])
	if err != nil || !multi || !head.OK {
		t.Fatalf("header = %+v %v %v", head, multi, err)
	}
	var body []string
	for _, l := range lines[1:] {
		content, done, err := ParseBodyLine(l)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		body = append(body, content)
	}
	if !reflect.DeepEqual(body, r.Body) {
		t.Errorf("body = %q, want %q", body, r.Body)
	}
}

func TestParseBodyLineErrors(t *testing.T) {
	if _, _, err := ParseBodyLine("no prefix"); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v", err)
	}
}

func TestParseResponseHeaderErrors(t *testing.T) {
	if _, _, err := ParseResponseHeader("WAT 1"); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v", err)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func TestBatchItemRoundTrip(t *testing.T) {
	cases := []BatchItem{
		{Event: "ckin", Dir: "down", OID: "reg,verilog,4"},
		{Event: "hdl_sim", Dir: "down", OID: "cpu,HDL_model,1", Args: []string{"good"}},
		{Event: "nl_sim", Dir: "up", OID: "a,b,1", Args: []string{`4 errors: "stuck\at zero"`, "x\ty\nz", ""}},
	}
	for _, want := range cases {
		enc := want.Encode()
		got, err := ParseBatchItem(enc)
		if err != nil {
			t.Fatalf("ParseBatchItem(%q): %v", enc, err)
		}
		if got.Event != want.Event || got.Dir != want.Dir || got.OID != want.OID ||
			len(got.Args) != len(want.Args) {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		for i := range want.Args {
			if got.Args[i] != want.Args[i] {
				t.Errorf("arg %d: %q != %q", i, got.Args[i], want.Args[i])
			}
		}
	}
}

func TestBatchItemNestsInsideRequest(t *testing.T) {
	// A BATCH request carries each item as one quoted field; the nested
	// quoting must survive the outer request round trip.
	items := []BatchItem{
		{Event: "ckin", Dir: "down", OID: "a,v,1", Args: []string{"note with spaces"}},
		{Event: "drc", Dir: "down", OID: "b,v,2", Args: []string{`"quoted"`}},
	}
	req := Request{Verb: VerbBatch, User: "tess"}
	for _, it := range items {
		req.Args = append(req.Args, it.Encode())
	}
	parsed, err := ParseRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Verb != VerbBatch || len(parsed.Args) != len(items) {
		t.Fatalf("parsed %+v", parsed)
	}
	for i, raw := range parsed.Args {
		it, err := ParseBatchItem(raw)
		if err != nil {
			t.Fatal(err)
		}
		if it.Event != items[i].Event || it.Args[0] != items[i].Args[0] {
			t.Errorf("item %d: %+v != %+v", i, it, items[i])
		}
	}
}

func TestParseBatchItemErrors(t *testing.T) {
	for _, bad := range []string{"", "ckin", "ckin down", `ckin down "unterminated`} {
		if _, err := ParseBatchItem(bad); err == nil {
			t.Errorf("ParseBatchItem(%q) accepted", bad)
		}
	}
}
