package faultfs_test

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultfs"
)

func openInj(t *testing.T, inj *faultfs.Injector, dir, name string) faultfs.File {
	t.Helper()
	f, err := inj.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_CREATE, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSingleFaultFiresExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, faultfs.SingleFault(faultfs.OpWrite, 2, nil))
	f := openInj(t, inj, dir, "a.log")
	defer f.Close()

	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("write 2 = %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3 after a once-fault: %v", err)
	}
	if got := inj.Count(faultfs.OpWrite); got != 3 {
		t.Errorf("write count = %d, want 3", got)
	}
	if fired := inj.Fired(); len(fired) != 1 {
		t.Errorf("fired = %v, want exactly one entry", fired)
	}
	// The failed write must not have landed: only writes 1 and 3 did.
	data, err := os.ReadFile(filepath.Join(dir, "a.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "onethree" {
		t.Errorf("file = %q, want %q", data, "onethree")
	}
}

func TestStickyFaultKeepsFiring(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, faultfs.StickyFault(faultfs.OpSync, 2, nil))
	f := openInj(t, inj, dir, "a.log")
	defer f.Close()

	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1: %v", err)
	}
	for i := 2; i <= 5; i++ {
		if err := f.Sync(); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("sync %d = %v, want ErrInjected (sticky)", i, err)
		}
	}
}

func TestFaultPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, faultfs.Plan{Faults: []faultfs.Fault{
		{Op: faultfs.OpWrite, Path: "journal-", Sticky: true},
	}})
	seg := openInj(t, inj, dir, "journal-0001.log")
	defer seg.Close()
	snap := openInj(t, inj, dir, "snapshot-0001.json")
	defer snap.Close()

	if _, err := seg.Write([]byte("x")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("matching path write = %v, want ErrInjected", err)
	}
	if _, err := snap.Write([]byte("x")); err != nil {
		t.Fatalf("non-matching path write: %v", err)
	}
}

func TestDiskBudgetPartialWriteENOSPC(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, faultfs.Plan{DiskBytes: 10})
	f := openInj(t, inj, dir, "a.log")
	defer f.Close()

	if n, err := f.Write([]byte("12345678")); err != nil || n != 8 {
		t.Fatalf("write within budget = (%d, %v)", n, err)
	}
	// 2 bytes of budget left: the syscall-faithful partial write lands them
	// and reports ENOSPC for the rest.
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write past budget = %v, want ENOSPC", err)
	}
	if n != 2 {
		t.Errorf("partial write landed %d bytes, want 2", n)
	}
	data, _ := os.ReadFile(filepath.Join(dir, "a.log"))
	if string(data) != "12345678ab" {
		t.Errorf("file = %q, want the partial-write prefix %q", data, "12345678ab")
	}
	if used := inj.DiskUsed(); used != 10 {
		t.Errorf("DiskUsed = %d, want the full 10-byte budget", used)
	}
}

func TestRemoveCreditsDiskBudget(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS, faultfs.Plan{DiskBytes: 10})
	f := openInj(t, inj, dir, "old.log")
	if _, err := f.Write([]byte("12345678")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Budget nearly exhausted; deleting the file gives its bytes back —
	// the compaction-frees-space model.
	if err := inj.Remove(filepath.Join(dir, "old.log")); err != nil {
		t.Fatal(err)
	}
	if used := inj.DiskUsed(); used != 0 {
		t.Fatalf("DiskUsed after remove = %d, want 0", used)
	}
	g := openInj(t, inj, dir, "new.log")
	defer g.Close()
	if _, err := g.Write([]byte("abcdefgh")); err != nil {
		t.Fatalf("write after reclaim: %v", err)
	}
}

func TestLatencyOnlySlowsWithoutFailing(t *testing.T) {
	dir := t.TempDir()
	const delay = 30 * time.Millisecond
	inj := faultfs.New(faultfs.OS, faultfs.Plan{Faults: []faultfs.Fault{
		{Op: faultfs.OpWrite, LatencyOnly: true, Latency: delay},
	}})
	f := openInj(t, inj, dir, "a.log")
	defer f.Close()

	start := time.Now()
	if _, err := f.Write([]byte("slow")); err != nil {
		t.Fatalf("latency-only fault failed the write: %v", err)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("write took %v, want at least %v of injected latency", elapsed, delay)
	}
	if fired := inj.Fired(); len(fired) != 0 {
		t.Errorf("latency-only fault reported as fired: %v", fired)
	}
}

// TestCountsDeterministic pins the property the fault sweep relies on:
// the same call sequence yields the same per-op counters, so "fail the
// nth write" names the same write on every run.
func TestCountsDeterministic(t *testing.T) {
	workload := func(dir string, inj *faultfs.Injector) map[faultfs.Op]int64 {
		f, err := inj.OpenFile(filepath.Join(dir, "w.log"), os.O_WRONLY|os.O_CREATE, 0o666)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			f.Write([]byte("rec"))
			f.Sync()
		}
		f.Close()
		inj.ReadDir(dir)
		inj.Rename(filepath.Join(dir, "w.log"), filepath.Join(dir, "w2.log"))
		inj.Remove(filepath.Join(dir, "w2.log"))
		return inj.Counts()
	}
	a := workload(t.TempDir(), faultfs.New(faultfs.OS, faultfs.Plan{}))
	b := workload(t.TempDir(), faultfs.New(faultfs.OS, faultfs.Plan{}))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical workloads counted differently:\n%v\n%v", a, b)
	}
	if a[faultfs.OpWrite] != 3 || a[faultfs.OpSync] != 3 {
		t.Errorf("counts = %v, want 3 writes and 3 syncs", a)
	}
}
