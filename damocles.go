// Package repro is the public facade of the DAMOCLES / project BluePrint
// reproduction: a design data flow management system for IC design after
// Mathys, Morgan and Soudagar, "Controlling Change Propagation and Project
// Policies in IC Design" (EDTC 1995).
//
// The system tracks design data (OIDs identified by block, view and
// version), the relationships between them (use and derive links), and the
// project policy (a BluePrint rule file).  Design activities post events;
// the run-time engine executes the policy's run-time rules and propagates
// changes across the meta-data, so the project state is always current and
// queryable.
//
// Quick start:
//
//	proj, err := repro.NewProject(repro.EDTCExample)
//	key, _ := proj.Engine.CreateOID("CPU", "HDL_model", "yves")
//	_ = proj.Engine.PostAndDrain(repro.Event{
//	    Name: "hdl_sim", Dir: repro.DirDown, Target: key, Args: []string{"good"},
//	})
//	report := repro.Report(proj.DB, proj.Blueprint)
//
// The heavy lifting lives in the internal packages: meta (the
// meta-database), bpl (the BluePrint language), engine (the run-time
// engine), state (queries), server (the TCP project server), wrapper and
// tools (wrapper programs over a simulated EDA tool suite), flow (scenario
// and workload generation) and baseline (the NELSIS-style activity-driven
// comparison system).
package repro

import (
	"io"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/meta"
	"repro/internal/state"
)

// Re-exported core types.
type (
	// DB is the DAMOCLES meta-database.
	DB = meta.DB
	// Key identifies an OID: (block, view, version).
	Key = meta.Key
	// Link relates two OIDs.
	Link = meta.Link
	// LinkID addresses a link in the database.
	LinkID = meta.LinkID
	// LinkClass is UseLink or DeriveLink.
	LinkClass = meta.LinkClass
	// Configuration is a lightweight snapshot of database addresses.
	Configuration = meta.Configuration
	// OID is a meta-data object.
	OID = meta.OID

	// Blueprint is a parsed project policy.
	Blueprint = bpl.Blueprint
	// Direction is the propagation direction of an event (up or down).
	Direction = bpl.Direction

	// Engine is the BluePrint run-time engine.
	Engine = engine.Engine
	// Event is a design event message.
	Event = engine.Event
	// EngineOption configures an Engine.
	EngineOption = engine.Option

	// Executor runs exec/notify actions.
	Executor = exec.Executor
	// Invocation is one exec firing.
	Invocation = exec.Invocation

	// OIDState is a per-OID state report.
	OIDState = state.OIDState
)

// Re-exported constants.
const (
	// UseLink marks hierarchy links.
	UseLink = meta.UseLink
	// DeriveLink marks derivation/equivalence/dependency links.
	DeriveLink = meta.DeriveLink
	// DirUp propagates To→From.
	DirUp = bpl.DirUp
	// DirDown propagates From→To.
	DirDown = bpl.DirDown
	// EventCheckin is the conventional promotion event.
	EventCheckin = engine.EventCheckin
	// EventOutOfDate is the conventional invalidation event.
	EventOutOfDate = engine.EventOutOfDate
)

// EDTCExample is the complete BluePrint of section 3.4 of the paper.
const EDTCExample = bpl.EDTCExample

// NewDB returns an empty meta-database.
func NewDB() *DB { return meta.NewDB() }

// NewDBWithShards returns an empty meta-database lock-striped over n
// shards (rounded up to a power of two).  Shard count is a performance
// knob; results are identical for any n.
func NewDBWithShards(n int) *DB { return meta.NewDBWithShards(n) }

// LoadDB reads a database saved with (*DB).Save.
func LoadDB(r io.Reader) (*DB, error) { return meta.Load(r) }

// ParseBlueprint parses BluePrint source.
func ParseBlueprint(src string) (*Blueprint, error) { return bpl.Parse(src) }

// PrintBlueprint renders a blueprint in canonical source form.
func PrintBlueprint(bp *Blueprint) string { return bpl.Print(bp) }

// ParseKey parses the "block,view,version" OID syntax.
func ParseKey(s string) (Key, error) { return meta.ParseKey(s) }

// NewEngine creates a run-time engine over db with the given policy.
func NewEngine(db *DB, bp *Blueprint, opts ...EngineOption) (*Engine, error) {
	return engine.New(db, bp, opts...)
}

// WithExecutor configures the engine's executor for exec and notify rules.
func WithExecutor(x Executor) EngineOption { return engine.WithExecutor(x) }

// WithUser configures the engine's default user.
func WithUser(u string) EngineOption { return engine.WithUser(u) }

// WithDrainWorkers bounds the engine's drain worker pool; 1 forces
// strictly sequential wave processing.
func WithDrainWorkers(n int) EngineOption { return engine.WithDrainWorkers(n) }

// StreamReport hands the state of the latest version of every design
// object to fn without materializing property maps; see state.Stream for
// the aliasing contract.
func StreamReport(db *DB, bp *Blueprint, fn func(*OIDState) bool) { state.Stream(db, bp, fn) }

// Report evaluates the state of the latest version of every design object.
func Report(db *DB, bp *Blueprint) []OIDState { return state.Report(db, bp) }

// Gap returns only the objects that have not reached their planned state,
// with the blocking conditions.
func Gap(db *DB, bp *Blueprint) []OIDState { return state.Gap(db, bp) }

// FormatReport renders a state report as a table.
func FormatReport(report []OIDState) string { return state.Format(report) }

// Project bundles a database, policy and engine — the usual working set.
type Project struct {
	DB        *DB
	Blueprint *Blueprint
	Engine    *Engine
}

// NewProject parses a BluePrint and stands up a fresh database and engine
// behind it.
func NewProject(blueprintSrc string, opts ...EngineOption) (*Project, error) {
	bp, err := bpl.Parse(blueprintSrc)
	if err != nil {
		return nil, err
	}
	db := meta.NewDB()
	eng, err := engine.New(db, bp, opts...)
	if err != nil {
		return nil, err
	}
	return &Project{DB: db, Blueprint: bp, Engine: eng}, nil
}
