package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/bpl"
	"repro/internal/exec"
	"repro/internal/meta"
)

// ErrStepLimit reports that Drain stopped because rule-posted events kept
// generating work beyond the configured bound — almost always a feedback
// loop in the blueprint (an event whose rules post the same event back).
var ErrStepLimit = errors.New("engine: step limit exceeded (event feedback loop in blueprint?)")

// Engine is the BluePrint run-time engine bound to one meta-database and
// one loaded blueprint.  It is safe for concurrent use; event processing
// itself is serialized FIFO, as in the paper.
type Engine struct {
	db *meta.DB

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when the queue settles
	bp       *bpl.Blueprint
	queue    []queueItem
	pending  []func() // deferred exec-rule invocations (external tools)
	draining bool
	nextWave int64
	stats    Stats

	executor exec.Executor
	tracer   Tracer
	clock    func() time.Time
	user     string
	maxSteps int64
	dedup    bool
	maxHops  int
}

// Option configures an Engine.
type Option func(*Engine)

// WithExecutor sets the executor for exec and notify actions.  The default
// discards them.
func WithExecutor(x exec.Executor) Option { return func(e *Engine) { e.executor = x } }

// WithTracer sets the audit tracer.  The default discards trace entries.
func WithTracer(t Tracer) Option { return func(e *Engine) { e.tracer = t } }

// WithClock sets the time source used for $date; tests inject a fixed
// clock for determinism.
func WithClock(c func() time.Time) Option { return func(e *Engine) { e.clock = c } }

// WithUser sets the default user for events that carry none.
func WithUser(u string) Option { return func(e *Engine) { e.user = u } }

// WithMaxSteps bounds the number of deliveries one Drain may process.
func WithMaxSteps(n int64) Option { return func(e *Engine) { e.maxSteps = n } }

// WithWaveDedup toggles the per-wave visited set that makes each event
// instance visit every OID at most once.  It exists for ablation
// measurements only: with dedup off, propagation on graphs with shared
// substructure (diamonds) re-delivers along every path, bounded only by
// the hop limit.  Production engines must keep it on.
func WithWaveDedup(on bool) Option { return func(e *Engine) { e.dedup = on } }

// WithMaxHops bounds propagation depth per wave; it is the termination
// backstop when wave dedup is ablated away.
func WithMaxHops(n int) Option { return func(e *Engine) { e.maxHops = n } }

// New creates an engine over db with the given blueprint.  The blueprint
// must be free of analyzer errors.
func New(db *meta.DB, bp *bpl.Blueprint, opts ...Option) (*Engine, error) {
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		for _, d := range ds {
			if d.Sev == bpl.SevError {
				return nil, fmt.Errorf("engine: blueprint %s: %s", bp.Name, d)
			}
		}
	}
	e := &Engine{
		db:       db,
		bp:       bp,
		executor: exec.Nop{},
		tracer:   NopTracer{},
		clock:    time.Now,
		user:     "nobody",
		maxSteps: 1_000_000,
		dedup:    true,
		maxHops:  64,
	}
	e.idle = sync.NewCond(&e.mu)
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// WaitIdle blocks until the engine has no queued deliveries, no deferred
// exec invocations, and no Drain in progress.  Callers running the engine
// asynchronously (a server with a background drainer) use it to observe
// quiescence.
func (e *Engine) WaitIdle() {
	e.mu.Lock()
	for len(e.queue) > 0 || len(e.pending) > 0 || e.draining {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// DB returns the engine's meta-database.
func (e *Engine) DB() *meta.DB { return e.db }

// Blueprint returns the currently loaded blueprint.
func (e *Engine) Blueprint() *bpl.Blueprint {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bp
}

// SetBlueprint replaces the project policy — the paper's re-initialization
// of the BluePrint mechanism for a new project phase ("loosening").  Queued
// events are preserved and will be processed under the new rules.
func (e *Engine) SetBlueprint(bp *bpl.Blueprint) error {
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		return fmt.Errorf("engine: blueprint %s has errors", bp.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bp = bp
	return nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// QueueLen reports the number of pending deliveries.
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// ---------------------------------------------------------------------------
// Posting and draining

// Post validates an event and enqueues it for processing.  The target OID
// must exist.  Post does not process the queue; call Drain (or use
// PostAndDrain) to run the engine.
func (e *Engine) Post(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	if !e.db.HasOID(ev.Target) {
		return fmt.Errorf("engine: event %s: target %v: %w", ev.Name, ev.Target, meta.ErrNotFound)
	}
	if ev.User == "" {
		ev.User = e.user
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enqueueLocked(ev, false)
	return nil
}

// PostAndDrain posts one event and processes the queue to exhaustion.
func (e *Engine) PostAndDrain(ev Event) error {
	if err := e.Post(ev); err != nil {
		return err
	}
	return e.Drain()
}

// enqueueLocked appends a fresh-wave delivery.  Callers hold e.mu.
func (e *Engine) enqueueLocked(ev Event, skipRules bool) {
	e.nextWave++
	wv := &wave{id: e.nextWave, visited: map[meta.Key]bool{ev.Target: true}}
	e.queue = append(e.queue, queueItem{ev: ev, wv: wv, skipRules: skipRules})
	e.stats.Posted++
	e.tracer.Trace(TraceEntry{Kind: TraceEnqueue, OID: ev.Target.String(), Event: ev.Name})
}

// Drain processes queued events first-in first-out until the queue is
// empty.  Rule-posted events and propagations join the same queue.  Only
// one Drain runs at a time; concurrent calls return immediately so posters
// can call PostAndDrain freely.
func (e *Engine) Drain() error {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil
	}
	e.draining = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.draining = false
		e.idle.Broadcast()
		e.mu.Unlock()
	}()

	var steps int64
	for {
		e.mu.Lock()
		if len(e.queue) == 0 {
			// The queue has settled; now dispatch deferred exec-rule
			// invocations.  In the paper these are external wrapper
			// processes: the events they post arrive after the current
			// wave has fully propagated, never interleaved inside it.
			if len(e.pending) == 0 {
				e.mu.Unlock()
				return nil
			}
			run := e.pending[0]
			e.pending = e.pending[1:]
			e.mu.Unlock()
			steps++
			if steps > e.maxSteps {
				return fmt.Errorf("%w: after %d deliveries", ErrStepLimit, steps-1)
			}
			run()
			continue
		}
		item := e.queue[0]
		e.queue = e.queue[1:]
		bp := e.bp
		e.mu.Unlock()

		steps++
		if steps > e.maxSteps {
			return fmt.Errorf("%w: after %d deliveries", ErrStepLimit, steps-1)
		}
		e.deliver(bp, item)
	}
}

// deliver processes one queued delivery: run the matching run-time rules on
// the target OID (unless propagate-only), then propagate the event across
// the target's links.
func (e *Engine) deliver(bp *bpl.Blueprint, item queueItem) {
	ev := item.ev
	e.bumpStat(func(s *Stats) { s.Deliveries++ })
	if !e.db.HasOID(ev.Target) {
		e.bumpStat(func(s *Stats) { s.Drops++ })
		e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: ev.Target.String(), Event: ev.Name, Detail: "target missing"})
		return
	}
	e.tracer.Trace(TraceEntry{Kind: TraceDeliver, OID: ev.Target.String(), Event: ev.Name})

	if !item.skipRules {
		e.runRules(bp, ev)
	}
	e.propagate(item)
}

// runRules executes the run-time rules matching the event on its target,
// in the paper's phase order: assigns, continuous assignments, execs and
// notifies, posts.
func (e *Engine) runRules(bp *bpl.Blueprint, ev Event) {
	rules := bp.EffectiveRules(ev.Target.View, ev.Name)
	if len(rules) > 0 {
		e.bumpStat(func(s *Stats) { s.RulesFired += int64(len(rules)) })
	}
	lookup := e.lookupFor(ev)

	// Phase 1: assignments, in rule and action order.
	for _, r := range rules {
		for _, a := range r.Actions {
			aa, ok := a.(*bpl.AssignAction)
			if !ok {
				continue
			}
			val := aa.Value.Expand(lookup)
			if err := e.db.SetProp(ev.Target, aa.Prop, val); err != nil {
				e.traceError(ev, fmt.Sprintf("assign %s: %v", aa.Prop, err))
				continue
			}
			e.bumpStat(func(s *Stats) { s.Assigns++ })
			e.tracer.Trace(TraceEntry{Kind: TraceAssign, OID: ev.Target.String(), Event: ev.Name,
				Detail: aa.Prop + " = " + val})
		}
	}

	// Phase 2: re-evaluate continuous assignments.
	e.reevalLets(bp, ev.Target, lookup)

	// Phase 3: exec and notify actions.  Exec invocations are launched
	// like the paper's wrapper shell scripts: the environment is captured
	// now, but the external tool effectively runs after the current event
	// wave has settled (the engine defers the call until the queue is
	// empty), so a tool triggered by a check-in is not caught by that
	// check-in's own invalidation wave.
	for _, r := range rules {
		for _, a := range r.Actions {
			switch act := a.(type) {
			case *bpl.ExecAction:
				inv := exec.Invocation{
					Script: act.Argv[0].Expand(lookup),
					Env:    e.envSnapshot(ev),
				}
				for _, t := range act.Argv[1:] {
					inv.Args = append(inv.Args, t.Expand(lookup))
				}
				e.bumpStat(func(s *Stats) { s.Execs++ })
				e.tracer.Trace(TraceEntry{Kind: TraceExec, OID: ev.Target.String(), Event: ev.Name,
					Detail: inv.String()})
				e.mu.Lock()
				e.pending = append(e.pending, func() {
					if err := e.executor.Exec(inv); err != nil {
						e.bumpStat(func(s *Stats) { s.ExecErrors++ })
						e.traceError(ev, fmt.Sprintf("exec %s: %v", inv.Script, err))
					}
				})
				e.mu.Unlock()
			case *bpl.NotifyAction:
				msg := act.Message.Expand(lookup)
				e.bumpStat(func(s *Stats) { s.Notifies++ })
				e.tracer.Trace(TraceEntry{Kind: TraceNotify, OID: ev.Target.String(), Event: ev.Name,
					Detail: msg})
				if err := e.executor.Notify(msg); err != nil {
					e.bumpStat(func(s *Stats) { s.ExecErrors++ })
					e.traceError(ev, fmt.Sprintf("notify: %v", err))
				}
			}
		}
	}

	// Phase 4: post actions.
	for _, r := range rules {
		for _, a := range r.Actions {
			pa, ok := a.(*bpl.PostAction)
			if !ok {
				continue
			}
			e.execPost(ev, pa, lookup)
		}
	}
}

// execPost runs one post action in the context of event ev.
func (e *Engine) execPost(ev Event, pa *bpl.PostAction, lookup bpl.LookupFunc) {
	args := make([]string, 0, len(pa.Args))
	for _, t := range pa.Args {
		args = append(args, t.Expand(lookup))
	}
	nev := Event{Name: pa.Event, Dir: pa.Dir, Args: args, User: ev.User}
	skipRules := false
	if pa.ToView != "" {
		// Targeted post: address the latest version of the named view of
		// the same block; rules run there.
		target, err := e.db.Latest(ev.Target.Block, pa.ToView)
		if err != nil {
			e.traceError(ev, fmt.Sprintf("post %s to %s: no such OID", pa.Event, pa.ToView))
			return
		}
		nev.Target = target
	} else {
		// Direct propagation from the current OID: local rules do not run
		// again here; the event only travels outward.
		nev.Target = ev.Target
		skipRules = true
	}
	e.mu.Lock()
	e.enqueueLocked(nev, skipRules)
	e.stats.Posts++
	e.mu.Unlock()
	e.tracer.Trace(TraceEntry{Kind: TracePost, OID: nev.Target.String(), Event: pa.Event,
		Detail: "dir " + pa.Dir.String()})
}

// reevalLets re-evaluates every continuous assignment of the OID's view and
// stores the boolean results as properties.
func (e *Engine) reevalLets(bp *bpl.Blueprint, k meta.Key, lookup bpl.LookupFunc) {
	for _, l := range bp.EffectiveLets(k.View) {
		val := "false"
		if l.Expr.Eval(lookup) {
			val = "true"
		}
		e.bumpStat(func(s *Stats) { s.LetEvals++ })
		old, had, err := e.db.GetProp(k, l.Name)
		if err != nil {
			return
		}
		if had && old == val {
			continue
		}
		if err := e.db.SetProp(k, l.Name, val); err == nil {
			e.tracer.Trace(TraceEntry{Kind: TraceLet, OID: k.String(),
				Detail: l.Name + " = " + val})
		}
	}
}

// propagate crosses the target's links with the delivered event, enqueuing
// continuation deliveries within the same wave.
func (e *Engine) propagate(item queueItem) {
	ev := item.ev
	type hop struct{ to meta.Key }
	var hops []hop
	e.db.EachLinkOf(ev.Target, func(l *meta.Link) bool {
		if !l.CanPropagate(ev.Name) {
			e.bumpStat(func(s *Stats) { s.Blocked++ })
			return true
		}
		var next meta.Key
		switch {
		case ev.Dir == bpl.DirDown && l.From == ev.Target:
			next = l.To
		case ev.Dir == bpl.DirUp && l.To == ev.Target:
			next = l.From
		default:
			e.bumpStat(func(s *Stats) { s.Blocked++ })
			return true
		}
		hops = append(hops, hop{to: next})
		return true
	})

	if len(hops) == 0 {
		return
	}
	e.mu.Lock()
	for _, h := range hops {
		if e.dedup {
			if item.wv.visited[h.to] {
				e.stats.Drops++
				e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: h.to.String(), Event: ev.Name,
					Detail: "already visited in wave"})
				continue
			}
			item.wv.visited[h.to] = true
		} else if item.hops >= e.maxHops {
			e.stats.Drops++
			e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: h.to.String(), Event: ev.Name,
				Detail: "hop limit (dedup ablated)"})
			continue
		}
		nev := ev
		nev.Target = h.to
		e.queue = append(e.queue, queueItem{ev: nev, wv: item.wv, hops: item.hops + 1})
		e.stats.Propagations++
		e.tracer.Trace(TraceEntry{Kind: TracePropagate, OID: h.to.String(), Event: ev.Name,
			Detail: "from " + ev.Target.String()})
	}
	e.mu.Unlock()
}

func (e *Engine) bumpStat(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

func (e *Engine) traceError(ev Event, detail string) {
	e.tracer.Trace(TraceEntry{Kind: TraceError, OID: ev.Target.String(), Event: ev.Name, Detail: detail})
}
