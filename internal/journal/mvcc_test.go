package journal_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"testing/quick"

	"repro/internal/journal"
	"repro/internal/meta"
)

// TestQuickReadViewEqualsReplayUpTo is the MVCC-by-LSN consistency
// property: for a randomized op sequence on a journaled database, a view
// pinned at any recorded LSN must Save byte-identically to replaying the
// journal up to exactly that LSN — the live version histories and the
// on-disk record stream describe the same timeline.  Shard count is a
// pure performance knob, so the property is checked at 1, 4 and 64
// shards.
func TestQuickReadViewEqualsReplayUpTo(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := func(ops []byte) bool { return checkViewReplayProperty(t, shards, ops) }
			if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
				t.Error(err)
			}
		})
	}
}

func checkViewReplayProperty(t *testing.T, shards int, ops []byte) bool {
	t.Helper()
	dir, err := os.MkdirTemp("", "djl-mvcc-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// No auto-snapshots: ReplayUpTo needs the full record history from
	// LSN 1, and the writer stays open (read-only replay is safe on a
	// live directory once the tail is committed).
	w, db, err := journal.Open(dir, journal.Options{
		Shards:        shards,
		SegmentBytes:  512,
		SnapshotEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	blocks := []string{"cpu", "alu", "reg"}
	views := []string{"HDL_model", "netlist"}
	var keys []meta.Key
	var links []meta.LinkID
	var checkpoints []int64
	names := 0

	pick := func(b byte, n int) int { return int(b) % n }
	for i := 0; i+2 < len(ops); i += 3 {
		op, a, b := ops[i], ops[i+1], ops[i+2]
		switch op % 9 {
		case 0, 1:
			k, err := db.NewVersion(blocks[pick(a, len(blocks))], views[pick(b, len(views))])
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		case 2:
			if len(keys) > 0 {
				if err := db.SetProp(keys[pick(a, len(keys))], "p"+fmt.Sprint(b%3), fmt.Sprint(b)); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			if len(keys) > 0 {
				err := db.UpdateOID(keys[pick(a, len(keys))], func(o *meta.OID) {
					o.Props["batch"] = fmt.Sprint(a)
					delete(o.Props, "p"+fmt.Sprint(b%3))
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			if len(keys) > 1 {
				from, to := keys[pick(a, len(keys))], keys[pick(b, len(keys))]
				if id, err := db.AddLink(meta.DeriveLink, from, to, "", []string{"ckin"}, nil); err == nil {
					links = append(links, id)
				}
			}
		case 5:
			if len(links) > 0 {
				j := pick(a, len(links))
				if err := db.DeleteLink(links[j]); err != nil {
					t.Fatal(err)
				}
				links = append(links[:j], links[j+1:]...)
			}
		case 6:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				if _, err := db.PruneVersions(k.Block, k.View, 1+int(b)%2); err != nil {
					t.Fatal(err)
				}
				keys = liveKeys(db, keys)
				links = liveLinks(db, links)
			}
		case 7:
			names++
			if _, err := db.SnapshotQuery(fmt.Sprintf("cfg%d", names), func(o *meta.OID) bool {
				return o.Key.Version%2 == int(a)%2
			}); err != nil {
				t.Fatal(err)
			}
		case 8:
			names++
			ws := fmt.Sprintf("ws%d", names)
			if err := db.AddWorkspace(ws, "/data"); err != nil {
				t.Fatal(err)
			}
			if len(keys) > 0 {
				if err := db.BindPath(ws, keys[pick(a, len(keys))], "some/path"); err != nil {
					t.Fatal(err)
				}
			}
		}
		checkpoints = append(checkpoints, w.LastLSN())
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	// Spread a handful of probes across the recorded timeline (every
	// checkpoint would make the quadratic replay cost dominate).
	probes := checkpoints
	if len(probes) > 6 {
		step := len(probes) / 6
		sampled := make([]int64, 0, 8)
		for i := 0; i < len(probes); i += step {
			sampled = append(sampled, probes[i])
		}
		probes = append(sampled, checkpoints[len(checkpoints)-1])
	}
	for _, lsn := range probes {
		v, err := db.ReadViewAt(lsn)
		if err != nil {
			t.Errorf("ReadViewAt(%d): %v", lsn, err)
			return false
		}
		var viewDoc bytes.Buffer
		if err := v.SaveTo(&viewDoc); err != nil {
			t.Fatal(err)
		}
		v.Close()

		replayed, _, err := journal.ReplayUpTo(dir, shards, lsn)
		if err != nil {
			t.Errorf("ReplayUpTo(%d): %v", lsn, err)
			return false
		}
		replayDoc := saveBytes(t, replayed)
		if !bytes.Equal(viewDoc.Bytes(), replayDoc) {
			t.Errorf("view at lsn %d differs from replay-to-%d:\n--- view\n%s\n--- replay\n%s",
				lsn, lsn, viewDoc.Bytes(), replayDoc)
			return false
		}
	}
	return true
}
