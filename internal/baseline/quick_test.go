package baseline

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genDAG builds a random layered DAG manager: layer 0 primaries, later
// layers depending on earlier nodes.
func genDAG(rng *rand.Rand) (*Manager, []NodeID) {
	m := NewManager()
	var all []NodeID
	layers := rng.Intn(4) + 2
	prev := []NodeID{}
	for l := 0; l < layers; l++ {
		width := rng.Intn(4) + 1
		var cur []NodeID
		for w := 0; w < width; w++ {
			id := NodeID(fmt.Sprintf("n%d-%d", l, w))
			var inputs []NodeID
			if l > 0 {
				n := rng.Intn(len(prev)) + 1
				seen := map[NodeID]bool{}
				for i := 0; i < n; i++ {
					in := prev[rng.Intn(len(prev))]
					if !seen[in] {
						seen[in] = true
						inputs = append(inputs, in)
					}
				}
			}
			if err := m.AddNode(id, inputs...); err != nil {
				panic(err)
			}
			cur = append(cur, id)
			all = append(all, id)
		}
		prev = append(prev, cur...)
	}
	return m, all
}

// TestQuickDemandMakesFresh: after Demand(x), Stale(x) is always false,
// and a second immediate Demand rebuilds nothing.
func TestQuickDemandMakesFresh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, all := genDAG(rng)
		// Random edits.
		for i := 0; i < rng.Intn(5); i++ {
			if err := m.Touch(all[rng.Intn(len(all))]); err != nil {
				return false
			}
		}
		target := all[rng.Intn(len(all))]
		if _, err := m.Demand(target); err != nil {
			return false
		}
		stale, err := m.Stale(target)
		if err != nil || stale {
			t.Logf("seed %d: %s stale after demand", seed, target)
			return false
		}
		st, err := m.Demand(target)
		if err != nil || st.Rebuilt != 0 {
			t.Logf("seed %d: second demand rebuilt %d", seed, st.Rebuilt)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickPollMatchesStale: PollAll's stale count equals the number of
// nodes for which Stale reports true.
func TestQuickPollMatchesStale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, all := genDAG(rng)
		for i := 0; i < rng.Intn(4); i++ {
			if err := m.Touch(all[rng.Intn(len(all))]); err != nil {
				return false
			}
		}
		want := 0
		for _, id := range all {
			s, err := m.Stale(id)
			if err != nil {
				return false
			}
			if s {
				want++
			}
		}
		got := m.PollAll()
		return got.Stale == want && got.Checked == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
