package engine

import (
	"testing"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// TestFanInUpPropagation: an up event from a shared child reaches all
// parents (e.g. an LVS result reported from a layout used by several
// assemblies).
func TestFanInUpPropagation(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property heard default no
    when alert do heard = yes done
endview
view v
endview
endblueprint`)
	child := mustCreate(t, e, "child", "v")
	var parents []meta.Key
	for _, name := range []string{"p1", "p2", "p3"} {
		p := mustCreate(t, e, name, "v")
		if _, err := e.DB().AddLink(meta.DeriveLink, p, child, "", []string{"alert"}, nil); err != nil {
			t.Fatal(err)
		}
		parents = append(parents, p)
	}
	if err := e.PostAndDrain(Event{Name: "alert", Dir: bpl.DirUp, Target: child}); err != nil {
		t.Fatal(err)
	}
	for _, p := range parents {
		if got := prop(t, e, p, "heard"); got != "yes" {
			t.Errorf("%v heard = %q", p, got)
		}
	}
}

// TestDiamondSingleDelivery: within one wave, a diamond's sink receives
// the event exactly once (its rules fire once), even though two paths
// reach it.
func TestDiamondSingleDelivery(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property count default "0"
    when tick do count = "$count+1" done
endview
view v
endview
endblueprint`)
	a := mustCreate(t, e, "a", "v")
	b := mustCreate(t, e, "b", "v")
	c := mustCreate(t, e, "c", "v")
	d := mustCreate(t, e, "d", "v")
	for _, pair := range [][2]meta.Key{{a, b}, {a, c}, {b, d}, {c, d}} {
		if _, err := e.DB().AddLink(meta.DeriveLink, pair[0], pair[1], "", []string{"tick"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PostAndDrain(Event{Name: "tick", Dir: bpl.DirDown, Target: a}); err != nil {
		t.Fatal(err)
	}
	// The assign appends "+1" per firing: one firing means exactly one
	// "+1" suffix.
	if got := prop(t, e, d, "count"); got != "0+1" {
		t.Errorf("sink count = %q, want exactly one delivery", got)
	}
}

// TestTwoWavesRevisit: visited sets are per wave — a second event of the
// same type visits everything again.
func TestTwoWavesRevisit(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property count default "0"
    when tick do count = "$count." done
endview
view v
endview
endblueprint`)
	a := mustCreate(t, e, "a", "v")
	b := mustCreate(t, e, "b", "v")
	if _, err := e.DB().AddLink(meta.DeriveLink, a, b, "", []string{"tick"}, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.PostAndDrain(Event{Name: "tick", Dir: bpl.DirDown, Target: a}); err != nil {
			t.Fatal(err)
		}
	}
	if got := prop(t, e, b, "count"); got != "0..." {
		t.Errorf("count = %q, want three deliveries across three waves", got)
	}
}

// TestMixedDirectionIsolation: an up wave does not leak downward through
// links it arrived on.
func TestMixedDirectionIsolation(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property heard default no
    when ping do heard = yes done
endview
view v
endview
endblueprint`)
	top := mustCreate(t, e, "top", "v")
	mid := mustCreate(t, e, "mid", "v")
	bottom := mustCreate(t, e, "bottom", "v")
	for _, pair := range [][2]meta.Key{{top, mid}, {mid, bottom}} {
		if _, err := e.DB().AddLink(meta.DeriveLink, pair[0], pair[1], "", []string{"ping"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Up from mid reaches top only.
	if err := e.PostAndDrain(Event{Name: "ping", Dir: bpl.DirUp, Target: mid}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, top, "heard"); got != "yes" {
		t.Errorf("top heard = %q", got)
	}
	if got := prop(t, e, bottom, "heard"); got != "no" {
		t.Errorf("bottom heard = %q — up wave leaked downward", got)
	}
}
