package flow

import (
	"strings"
	"testing"

	"repro/internal/bpl"
)

func TestDSMBlueprintClean(t *testing.T) {
	bp, err := bpl.Parse(bpl.DSMExample)
	if err != nil {
		t.Fatal(err)
	}
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		t.Fatalf("DSM blueprint has errors: %v", ds)
	}
	// Round-trips through the printer like any policy.
	if _, err := bpl.Parse(bpl.Print(bp)); err != nil {
		t.Errorf("print/parse: %v", err)
	}
}

func TestRunDSMScenario(t *testing.T) {
	res, err := RunDSMScenario()
	if err != nil {
		t.Fatal(err)
	}
	if res.SlackBefore != "violated -0.42ns" {
		t.Errorf("slack before fix = %q", res.SlackBefore)
	}
	if res.SlackAfter != "met" {
		t.Errorf("slack after fix = %q", res.SlackAfter)
	}
	// The SDF check-in re-triggered STA automatically, exactly once.
	if res.AutoSTARuns != 1 {
		t.Errorf("auto STA runs = %d, want 1", res.AutoSTARuns)
	}
	// Timing notifications reached the designers: the manual fail, the
	// manual pass, and the automatic post-extraction run.
	if len(res.Notifications) != 3 {
		t.Fatalf("notifications = %v", res.Notifications)
	}
	if !strings.Contains(res.Notifications[0], "violated") {
		t.Errorf("first notification = %q", res.Notifications[0])
	}
	for _, n := range res.Notifications[1:] {
		if !strings.Contains(n, "met") {
			t.Errorf("notification = %q", n)
		}
	}
	// Version 2 of the gates carries the shifted derivation link.
	if res.Gates.Version != 2 {
		t.Errorf("gates = %v", res.Gates)
	}
}

func TestDSMScenarioDeterministic(t *testing.T) {
	a, err := RunDSMScenario()
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDSMScenario()
	if err != nil {
		t.Fatal(err)
	}
	if a.SlackAfter != b.SlackAfter || a.AutoSTARuns != b.AutoSTARuns ||
		len(a.Notifications) != len(b.Notifications) {
		t.Errorf("scenario not deterministic: %+v vs %+v", a, b)
	}
}
