package load

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
	"repro/internal/server"
	"repro/internal/wire"
)

const (
	dialTimeout  = 3 * time.Second
	opTimeout    = 5 * time.Second
	lagInterval  = 200 * time.Millisecond
	outageProbe  = 50 * time.Millisecond
	outageBudget = 30 * time.Second
)

// ChaosPlan arms the chaos mode: at KillAfter into the run the harness
// SIGKILLs the cluster's primary mid-traffic, promotes the most-advanced
// follower through the real CLI, re-points the survivors, and audits the
// fallout — zero acked-write loss and the SLO recovery time.
type ChaosPlan struct {
	Cluster   *Cluster
	KillAfter time.Duration
}

// PartitionPlan arms the partition chaos variant: at StartAfter into
// the run the harness blackholes one follower's replication link (both
// directions silent, nothing closed — the half-open partition), keeps
// it dark for Dark, then heals it.  The audit checks the liveness
// contract end to end: staleness reported the whole time, ack-gated
// writes recovering their SLO after the heal, and convergence.  The
// cluster must have been started with ProxyFollowers.
type PartitionPlan struct {
	Cluster    *Cluster
	Follower   int           // index of the follower whose link goes dark
	StartAfter time.Duration // blackhole offset into the run
	Dark       time.Duration // how long the link stays dark
}

// Runner executes one Scenario against a damocles primary (and optional
// follower fleet) and produces a Result.
type Runner struct {
	Spec      Scenario
	Primary   string
	Followers []string

	// Logf receives progress lines (nil: silent).
	Logf func(format string, args ...any)

	// Chaos, when set, arms the mid-run failover (requires the cluster
	// handle so real processes can be killed and promoted).
	Chaos *ChaosPlan

	// Partition, when set, arms the mid-run replication blackhole
	// (requires a cluster started with ProxyFollowers).
	Partition *PartitionPlan

	mix      mixTable
	pool     []meta.Key
	bpSrc    string
	pickRand *rand.Rand   // dispatcher goroutine only
	primAddr atomic.Value // string: current primary address
	folAddrs atomic.Value // []string: current follower addresses
	lastLSN  atomic.Int64 // recently observed primary applied LSN

	ackedMu sync.Mutex
	acked   []string // churn block names the cluster acknowledged

	sampMu       sync.Mutex
	writeSamples []writeSample // chaos mode only
}

// writeSample is one write-class op outcome retained for the post-hoc
// SLO-recovery computation: intended offset, measured latency, success.
type writeSample struct {
	due time.Duration
	lat time.Duration
	ok  bool
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) curPrimary() string { return r.primAddr.Load().(string) }

func (r *Runner) curFollowers() []string { return r.folAddrs.Load().([]string) }

// readAddr picks the node worker id's reads go to: round-robin across
// the follower fleet when FollowerReads is set, the primary otherwise.
func (r *Runner) readAddr(id int) string {
	if r.Spec.FollowerReads {
		if fs := r.curFollowers(); len(fs) > 0 {
			return fs[id%len(fs)]
		}
	}
	return r.curPrimary()
}

// errKind classifies an op error for the error-kind ledger.  The
// transport kinds ("timeout", "transport", "dial") are connection-fatal:
// the worker drops its connection and redials — against the new primary
// if a failover re-pointed the fleet meanwhile.
func errKind(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	switch {
	case strings.Contains(s, "operation timed out"):
		return "timeout"
	case strings.Contains(s, "overloaded"):
		return "overloaded"
	case strings.Contains(s, "quorum"):
		return "quorum"
	case strings.Contains(s, "read-only"), strings.Contains(s, "degraded"):
		return "refused"
	case strings.Contains(s, "dial"):
		return "dial"
	case strings.Contains(s, "send:"), strings.Contains(s, "recv:"),
		strings.Contains(s, "connection closed"), strings.Contains(s, "EOF"),
		strings.Contains(s, "broken pipe"), strings.Contains(s, "reset"):
		return "transport"
	default:
		return "op"
	}
}

func connFatal(kind string) bool {
	return kind == "timeout" || kind == "transport" || kind == "dial"
}

// workerResult is one virtual user's accounting, merged after the run.
type workerResult struct {
	hists    map[string]*Histogram
	errs     map[string]int64
	errKinds map[string]int64
}

// worker is one virtual user: a pair of cached connections (write →
// primary, read → its follower) executing tickets from the open-loop
// queue.  Workers never pace arrivals — a slow op here shows up as
// queueing delay on later tickets, which is exactly what the
// intended-arrival latency measurement charges.
type worker struct {
	r        *Runner
	id       int
	rng      *rand.Rand
	churnSeq int

	wcl, rcl     *server.Client
	wAddr, rAddr string

	res workerResult
}

func (w *worker) client(write bool) (*server.Client, error) {
	var want string
	if write {
		want = w.r.curPrimary()
	} else {
		want = w.r.readAddr(w.id)
	}
	cached, addr := w.rcl, w.rAddr
	if write {
		cached, addr = w.wcl, w.wAddr
	}
	if cached != nil && addr == want {
		return cached, nil
	}
	if cached != nil {
		cached.Hangup()
	}
	cl, err := server.DialTimeout(want, dialTimeout, opTimeout)
	if write {
		w.wcl, w.wAddr = cl, want
	} else {
		w.rcl, w.rAddr = cl, want
	}
	return cl, err
}

func (w *worker) dropConn(write bool) {
	if write {
		if w.wcl != nil {
			w.wcl.Hangup()
		}
		w.wcl = nil
	} else {
		if w.rcl != nil {
			w.rcl.Hangup()
		}
		w.rcl = nil
	}
}

func (w *worker) poolKey() meta.Key {
	return w.r.pool[w.rng.Intn(len(w.r.pool))]
}

// execute runs one ticket and returns the op error (nil on success).
func (w *worker) execute(t opTicket) error {
	write := t.class == OpCheckin || t.class == OpChurn || t.class == OpSwap
	cl, err := w.client(write)
	if err != nil {
		return err
	}
	switch t.class {
	case OpCheckin:
		items := make([]wire.BatchItem, w.r.Spec.Batch)
		for i := range items {
			items[i] = wire.BatchItem{Event: "ckin", Dir: "down", OID: w.poolKey().String()}
		}
		_, err = cl.PostBatch(items)
	case OpChurn:
		name := fmt.Sprintf("ld-w%02d-%06d", w.id, w.churnSeq)
		var k meta.Key
		k, err = cl.Create(name, "HDL_model")
		if err == nil {
			w.churnSeq++
			w.r.recordAcked(name)
			err = cl.Link("derive", k, w.poolKey())
		}
	case OpSwap:
		err = cl.SwapBlueprint(w.r.bpSrc)
	case OpReport:
		_, err = cl.Report()
	case OpStorm:
		lsn := w.r.lastLSN.Load()
		switch {
		case lsn <= 0:
			_, err = cl.Report()
		case w.rng.Intn(2) == 0:
			_, err = cl.ReportAt(lsn)
		default:
			_, err = cl.GapAt(lsn)
		}
	case OpState:
		_, err = cl.State(w.poolKey())
	case OpQuery:
		// A graph query pinned at the last observed primary LSN (0 before
		// the first write acks — the server serves its current state), on
		// the read connection: a follower waits until it has applied the
		// position, same as the storm reads.
		lsn := w.r.lastLSN.Load()
		if lsn < 0 {
			lsn = 0
		}
		if w.rng.Intn(2) == 0 {
			_, err = cl.QueryAt(lsn, "reach", w.poolKey().String(), "all")
		} else {
			_, err = cl.QueryAt(lsn, "deps", w.poolKey().String())
		}
	}
	return err
}

// run drains tickets until the queue closes.
func (w *worker) run(epoch time.Time, queue <-chan opTicket) {
	for t := range queue {
		start := epoch.Add(t.due)
		err := w.execute(t)
		lat := time.Since(start)
		if err == nil {
			h := w.res.hists[t.class]
			if h == nil {
				h = &Histogram{}
				w.res.hists[t.class] = h
			}
			h.Record(lat)
		} else {
			w.res.errs[t.class]++
			kind := errKind(err)
			w.res.errKinds[kind]++
			if connFatal(kind) {
				w.dropConn(t.class == OpCheckin || t.class == OpChurn || t.class == OpSwap)
				// Back off a beat so a dead primary doesn't turn the
				// worker into a dial hot-loop; queued tickets still keep
				// their intended times, so the outage stays measured.
				time.Sleep(10 * time.Millisecond)
			}
		}
		if isWriteClass(t.class) && (w.r.Chaos != nil || w.r.Partition != nil) {
			w.r.recordWrite(writeSample{due: t.due, lat: lat, ok: err == nil})
		}
	}
	if w.wcl != nil {
		w.wcl.Hangup()
	}
	if w.rcl != nil {
		w.rcl.Hangup()
	}
}

func (r *Runner) recordAcked(name string) {
	r.ackedMu.Lock()
	r.acked = append(r.acked, name)
	r.ackedMu.Unlock()
}

func (r *Runner) recordWrite(s writeSample) {
	r.sampMu.Lock()
	r.writeSamples = append(r.writeSamples, s)
	r.sampMu.Unlock()
}

// lagCollector accumulates replication-lag samples (LSN units) taken
// while traffic runs.
type lagCollector struct {
	mu       sync.Mutex
	follower Histogram
	journal  Histogram
	samples  int
}

func (l *lagCollector) record(journalLag, followerLag int64, haveFollower bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples++
	if journalLag >= 0 {
		l.journal.Record(time.Duration(journalLag))
	}
	if haveFollower && followerLag >= 0 {
		l.follower.Record(time.Duration(followerLag))
	}
}

func (l *lagCollector) stats() *ReplicationStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.samples == 0 {
		return nil
	}
	return &ReplicationStats{
		Samples:        l.samples,
		FollowerLagP50: int64(l.follower.Quantile(0.50)),
		FollowerLagP99: int64(l.follower.Quantile(0.99)),
		FollowerLagMax: int64(l.follower.Max()),
		JournalLagP99:  int64(l.journal.Quantile(0.99)),
		JournalLagMax:  int64(l.journal.Max()),
	}
}

// sample polls the primary's LSN/ROLE (feeding the storm pin) and each
// follower's applied position until done closes.  During a failover the
// polls error and the window simply has no samples — lag is measured,
// not interpolated.
func (r *Runner) sample(done <-chan struct{}, lag *lagCollector) {
	tick := time.NewTicker(lagInterval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		}
		prim := r.curPrimary()
		cl, err := server.DialTimeout(prim, time.Second, 2*time.Second)
		if err != nil {
			continue
		}
		ri, err := cl.Role()
		cl.Hangup()
		if err != nil {
			continue
		}
		r.lastLSN.Store(ri.Applied)
		journalLag := int64(-1)
		if ri.Watermark >= 0 && ri.Applied >= ri.Watermark {
			journalLag = ri.Applied - ri.Watermark
		}
		worst := int64(-1)
		have := false
		for _, addr := range r.curFollowers() {
			if applied := appliedOf(addr); applied >= 0 && ri.Applied >= applied {
				have = true
				if lagv := ri.Applied - applied; lagv > worst {
					worst = lagv
				}
			}
		}
		lag.record(journalLag, worst, have)
	}
}

// runChaos executes the armed ChaosPlan and fills the timing half of the
// ChaosResult; the write-loss audit happens after traffic ends.
func (r *Runner) runChaos(epoch time.Time) *ChaosResult {
	p := r.Chaos
	res := &ChaosResult{Enabled: true}
	time.Sleep(time.Until(epoch.Add(p.KillAfter)))
	p.Cluster.KillPrimary()
	killT := time.Now()
	res.KillAtMs = ms(killT.Sub(epoch))
	newAddr, err := p.Cluster.Failover()
	if err != nil {
		r.logf("chaos: failover failed: %v", err)
		return res
	}
	res.NewPrimary = newAddr
	res.FailoverMs = ms(time.Since(killT))
	r.primAddr.Store(newAddr)
	r.folAddrs.Store(p.Cluster.FollowerAddrs())
	r.logf("chaos: new primary %s after %.0fms, probing for first acked write", newAddr, res.FailoverMs)
	deadline := time.Now().Add(outageBudget)
	for probe := 0; time.Now().Before(deadline); probe++ {
		cl, err := server.DialTimeout(newAddr, time.Second, 2*time.Second)
		if err == nil {
			_, err = cl.Create(fmt.Sprintf("chaos-probe-%d", probe), "HDL_model")
			cl.Hangup()
			if err == nil {
				res.OutageMs = ms(time.Since(killT))
				r.logf("chaos: writes flowing again %.0fms after kill", res.OutageMs)
				return res
			}
		}
		time.Sleep(outageProbe)
	}
	r.logf("chaos: no acked write within %v of the kill", outageBudget)
	res.OutageMs = ms(outageBudget)
	return res
}

// runPartition executes the armed PartitionPlan: blackhole the chosen
// follower's replication link at StartAfter, poll its ROLE while dark
// (its serving socket is not proxied — only the upstream is, so reads
// keep answering and must admit their growing staleness), heal at
// StartAfter+Dark, then measure how long the follower takes to catch
// the primary's applied LSN.  The SLO-recovery and convergence halves
// are filled in by audit() after traffic ends.
func (r *Runner) runPartition(epoch time.Time) *PartitionResult {
	p := r.Partition
	res := &PartitionResult{Enabled: true}
	fols := p.Cluster.FollowerAddrs()
	if p.Follower < 0 || p.Follower >= len(fols) {
		r.logf("partition: follower index %d out of range", p.Follower)
		return res
	}
	res.Follower = fols[p.Follower]
	time.Sleep(time.Until(epoch.Add(p.StartAfter)))
	if err := p.Cluster.PartitionFollower(p.Follower); err != nil {
		r.logf("partition: %v", err)
		return res
	}
	start := time.Now()
	res.StartAtMs = ms(start.Sub(epoch))
	r.logf("partition: follower %s link dark for %v", res.Follower, p.Dark)

	// Staleness watch: every successful ROLE poll of the dark follower
	// must carry the staleness field, and the admitted age should grow
	// toward the dark span.
	res.StalenessSeen = true
	polls := 0
	tick := time.NewTicker(outageProbe)
	for time.Since(start) < p.Dark {
		<-tick.C
		ri, err := roleOf(res.Follower)
		if err != nil {
			continue
		}
		polls++
		if !ri.HasStaleness {
			res.StalenessSeen = false
		}
		if s := ms(ri.Staleness); s > res.MaxStalenessMs {
			res.MaxStalenessMs = s
		}
	}
	tick.Stop()
	if polls == 0 {
		res.StalenessSeen = false
	}
	res.DarkMs = ms(time.Since(start))
	if err := p.Cluster.HealFollower(p.Follower); err != nil {
		r.logf("partition: %v", err)
		return res
	}
	healT := time.Now()
	r.logf("partition: healed after %.0fms dark (max admitted staleness %.0fms), waiting for catch-up",
		res.DarkMs, res.MaxStalenessMs)

	deadline := healT.Add(outageBudget)
	for time.Now().Before(deadline) {
		prim := appliedOf(r.curPrimary())
		if prim >= 0 {
			if fol := appliedOf(res.Follower); fol >= prim {
				res.CatchupMs = ms(time.Since(healT))
				res.Recovered = true
				r.logf("partition: follower caught the primary %.0fms after the heal", res.CatchupMs)
				return res
			}
		}
		time.Sleep(outageProbe)
	}
	res.CatchupMs = ms(outageBudget)
	r.logf("partition: follower never caught the primary within %v of the heal", outageBudget)
	return res
}

// roleOf fetches one node's ROLE with short timeouts.
func roleOf(addr string) (server.RoleInfo, error) {
	cl, err := server.DialTimeout(addr, time.Second, 2*time.Second)
	if err != nil {
		return server.RoleInfo{}, err
	}
	defer cl.Hangup()
	return cl.Role()
}

// writeSLOCeiling is the p99 ceiling applied to write ops for the
// recovery computation: the strictest declared write-class ceiling, or
// 500ms when the scenario declares none.
func (s Scenario) writeSLOCeiling() float64 {
	ceiling := 0.0
	if s.SLO != nil {
		for class, v := range s.SLO.P99Ms {
			if isWriteClass(class) && (ceiling == 0 || v < ceiling) {
				ceiling = v
			}
		}
	}
	if ceiling == 0 {
		ceiling = 500
	}
	return ceiling
}

// computeRecovery derives the SLO recovery span from the retained write
// samples: the completion offset of the last write violating the ceiling
// (errors count as violations), measured from the kill.  recovered is
// false when violations persist into the final second of the window —
// there is no post-violation evidence of health.
func computeRecovery(samples []writeSample, killOff, wall time.Duration, ceilingMs float64) (recMs float64, recovered bool) {
	lastViol := killOff
	for _, s := range samples {
		done := s.due + s.lat
		if done < killOff {
			continue
		}
		if !s.ok || ms(s.lat) > ceilingMs {
			if done > lastViol {
				lastViol = done
			}
		}
	}
	return ms(lastViol - killOff), lastViol < wall-time.Second
}

// Run executes the scenario and returns the measured Result.  The
// cluster (local spawn or remote address) must already be serving.
func (r *Runner) Run() (*Result, error) {
	spec := r.Spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	r.Spec = spec
	sched, err := scheduleFor(spec)
	if err != nil {
		return nil, err
	}
	r.mix = newMixTable(spec.Mix)
	r.primAddr.Store(r.Primary)
	r.folAddrs.Store(append([]string{}, r.Followers...))

	if err := r.setup(); err != nil {
		return nil, err
	}

	queue := make(chan opTicket, spec.Backlog)
	resCh := make(chan *workerResult, spec.Workers)
	var wg sync.WaitGroup
	// A short lead keeps arrival 0 from starting life already late.
	epoch := time.Now().Add(50 * time.Millisecond)
	for i := 0; i < spec.Workers; i++ {
		wg.Add(1)
		w := &worker{
			r:   r,
			id:  i,
			rng: rand.New(rand.NewSource(spec.Seed + int64(i)*7919)),
			res: workerResult{
				hists:    map[string]*Histogram{},
				errs:     map[string]int64{},
				errKinds: map[string]int64{},
			},
		}
		go func() {
			defer wg.Done()
			w.run(epoch, queue)
			resCh <- &w.res
		}()
	}

	var lag lagCollector
	samplerDone := make(chan struct{})
	go r.sample(samplerDone, &lag)

	var chaos *ChaosResult
	chaosDone := make(chan struct{})
	if r.Chaos != nil {
		go func() {
			chaos = r.runChaos(epoch)
			close(chaosDone)
		}()
	} else {
		close(chaosDone)
	}

	var part *PartitionResult
	partDone := make(chan struct{})
	if r.Partition != nil {
		go func() {
			part = r.runPartition(epoch)
			close(partDone)
		}()
	} else {
		close(partDone)
	}

	r.logf("run %q: %d arrivals over %v (%d workers, backlog %d)",
		spec.Name, sched.Arrivals(), sched.Span(), spec.Workers, spec.Backlog)
	st := openLoop(epoch, sched, func(int) string {
		return r.mix.pick(r.pickRand.Intn(r.mix.total))
	}, queue, nil)
	close(queue)
	wg.Wait()
	wall := time.Since(epoch)
	close(samplerDone)
	<-chaosDone
	<-partDone
	close(resCh)

	res := &Result{
		Name:       spec.Name,
		Spec:       spec,
		WallS:      wall.Seconds(),
		Arrivals:   int64(sched.Arrivals()),
		Dispatched: st.Dispatched,
		Dropped:    st.Dropped,
		Ops:        map[string]*OpResult{},
		ErrorKinds: map[string]int64{},
	}
	merged := map[string]*Histogram{}
	errs := map[string]int64{}
	for wr := range resCh {
		for class, h := range wr.hists {
			if merged[class] == nil {
				merged[class] = &Histogram{}
			}
			merged[class].Merge(h)
		}
		for class, n := range wr.errs {
			errs[class] += n
		}
		for kind, n := range wr.errKinds {
			res.ErrorKinds[kind] += n
		}
	}
	classes := map[string]bool{}
	for c := range merged {
		classes[c] = true
	}
	for c := range errs {
		classes[c] = true
	}
	for class := range classes {
		h := merged[class]
		if h == nil {
			h = &Histogram{}
		}
		op := opResultFrom(h, errs[class], wall)
		res.Ops[class] = op
		res.Completed += op.Count + op.Errors
		res.ErrorsAll += op.Errors
	}
	res.Replication = lag.stats()
	res.Chaos = chaos
	res.Partition = part

	r.audit(res, chaos, wall)
	return res, nil
}

// setup dials the primary, creates the OID pool, captures the blueprint
// source for swap ops, and seeds the dispatcher RNG.
func (r *Runner) setup() error {
	cl, err := server.DialTimeout(r.Primary, dialTimeout, 10*time.Second)
	if err != nil {
		return fmt.Errorf("load: setup dial %s: %w", r.Primary, err)
	}
	defer cl.Hangup()
	r.pool = r.pool[:0]
	for i := 0; i < r.Spec.Blocks; i++ {
		k, err := cl.Create(fmt.Sprintf("ldblk%02d", i), "HDL_model")
		if err != nil {
			return fmt.Errorf("load: setup pool create: %w", err)
		}
		r.pool = append(r.pool, k)
	}
	if r.Spec.Mix[OpSwap] > 0 {
		src, err := cl.Blueprint()
		if err != nil {
			return fmt.Errorf("load: setup blueprint fetch: %w", err)
		}
		r.bpSrc = src
	}
	r.pickRand = rand.New(rand.NewSource(r.Spec.Seed))
	return nil
}

// audit runs the end-of-run verifications against the (possibly new)
// primary: server counter snapshot, the chaos acked-write ledger, the
// follower convergence check, and the SLO verdicts.
func (r *Runner) audit(res *Result, chaos *ChaosResult, wall time.Duration) {
	prim := r.curPrimary()
	fc, err := server.DialTimeout(prim, dialTimeout, 30*time.Second)
	if err != nil {
		r.logf("audit: dial %s: %v", prim, err)
		return
	}
	defer fc.Hangup()
	fc.Sync()
	if kv, err := fc.StatsKV(); err == nil {
		res.Server = kv
	} else {
		r.logf("audit: STATS: %v", err)
	}

	if chaos != nil && chaos.NewPrimary != "" {
		r.ackedMu.Lock()
		acked := append([]string{}, r.acked...)
		r.ackedMu.Unlock()
		chaos.AckedWrites = int64(len(acked))
		rows, err := fc.Report()
		if err != nil {
			r.logf("audit: final REPORT: %v", err)
		} else {
			have := map[string]bool{}
			for _, row := range rows {
				have[strings.SplitN(row, ",", 2)[0]] = true
			}
			for _, name := range acked {
				if !have[name] {
					chaos.AckedLost++
					r.logf("audit: ACKED WRITE LOST: %s", name)
				}
			}
		}
		ceiling := r.Spec.writeSLOCeiling()
		r.sampMu.Lock()
		samples := append([]writeSample{}, r.writeSamples...)
		r.sampMu.Unlock()
		killOff := time.Duration(chaos.KillAtMs * float64(time.Millisecond))
		chaos.SLORecoveryMs, chaos.Recovered = computeRecovery(samples, killOff, wall, ceiling)
		chaos.Converged = r.checkConverged(fc)
	}

	if part := res.Partition; part != nil && part.Enabled {
		// SLO recovery measured from the heal: -ack gated writes degrade
		// while the link is dark, so violations before the heal are
		// expected — the contract is that they stop after it.
		ceiling := r.Spec.writeSLOCeiling()
		r.sampMu.Lock()
		samples := append([]writeSample{}, r.writeSamples...)
		r.sampMu.Unlock()
		healOff := time.Duration((part.StartAtMs + part.DarkMs) * float64(time.Millisecond))
		part.SLORecoveryMs, part.SLORecovered = computeRecovery(samples, healOff, wall, ceiling)
		part.Converged = r.checkConverged(fc)
		if !part.StalenessSeen {
			res.SLOViolations = append(res.SLOViolations,
				"partition: dark follower served reads without admitting staleness")
		}
		if !part.Recovered {
			res.SLOViolations = append(res.SLOViolations,
				"partition: follower never caught the primary after the heal")
		}
		if !part.Converged {
			res.SLOViolations = append(res.SLOViolations,
				"partition: fleet did not converge after the heal")
		}
		if r.Spec.SLO != nil && r.Spec.SLO.RecoveryMs > 0 && part.SLORecoveryMs > r.Spec.SLO.RecoveryMs {
			res.SLOViolations = append(res.SLOViolations,
				fmt.Sprintf("partition: SLO recovery %.0fms > budget %.0fms", part.SLORecoveryMs, r.Spec.SLO.RecoveryMs))
		}
	}

	if r.Spec.SLO != nil {
		for class, ceiling := range r.Spec.SLO.P99Ms {
			op := res.Ops[class]
			if op == nil || op.Count < 20 {
				continue
			}
			if op.P99Ms > ceiling {
				res.SLOViolations = append(res.SLOViolations,
					fmt.Sprintf("%s: p99 %.1fms > ceiling %.1fms", class, op.P99Ms, ceiling))
			}
		}
		if chaos != nil && r.Spec.SLO.RecoveryMs > 0 && chaos.SLORecoveryMs > r.Spec.SLO.RecoveryMs {
			res.SLOViolations = append(res.SLOViolations,
				fmt.Sprintf("chaos: SLO recovery %.0fms > budget %.0fms", chaos.SLORecoveryMs, r.Spec.SLO.RecoveryMs))
		}
	}
	if chaos != nil && chaos.AckedLost > 0 {
		res.SLOViolations = append(res.SLOViolations,
			fmt.Sprintf("chaos: %d acked writes lost", chaos.AckedLost))
	}
	sort.Strings(res.SLOViolations)
}

// checkConverged compares a surviving follower's REPORT at the final LSN
// to the new primary's — byte-identical rows mean the fleet converged.
func (r *Runner) checkConverged(fc *server.Client) bool {
	fols := r.curFollowers()
	if len(fols) == 0 {
		return true
	}
	finalLSN, err := fc.LSN()
	if err != nil {
		return false
	}
	want, err := fc.ReportAt(finalLSN)
	if err != nil {
		return false
	}
	cl, err := server.DialTimeout(fols[0], dialTimeout, 30*time.Second)
	if err != nil {
		return false
	}
	defer cl.Hangup()
	got, err := cl.ReportAt(finalLSN)
	if err != nil {
		return false
	}
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		if want[i] != got[i] {
			return false
		}
	}
	return true
}
