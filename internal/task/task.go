// Package task implements design tasks, the extension the paper's
// conclusion announces: "we are currently investigating ways to incorporate
// the notion of design tasks to the project BluePrint which gives a higher
// level of description of design activities and their environment."
//
// A Task is a named, ordered sequence of design steps.  Each step declares
// the state its inputs must be in (the same permission discipline wrapper
// programs apply, lifted to the task level) and an action that drives the
// wrapper session.  The runner tracks task execution in the meta-database
// itself: every run creates an OID of the task view, whose properties
// (status, step, failure) evolve as the task progresses, and posts
// task_start / task_step / task_done / task_failed events — so project
// BluePrints can attach run-time rules to tasks exactly as they do to
// design data.
package task

import (
	"errors"
	"fmt"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/wrapper"
)

// View is the view type under which task runs are tracked in the
// meta-database.
const View = "task"

// Task event names posted by the runner.
const (
	EventStart  = "task_start"
	EventStep   = "task_step"
	EventDone   = "task_done"
	EventFailed = "task_failed"
)

// ErrRequirement reports a step refusing to run because an input is not in
// the required state.
var ErrRequirement = errors.New("task: requirement not met")

// Requirement is a pre-condition on the latest version of a design object.
type Requirement struct {
	Block string
	View  string
	Prop  string
	Want  string
}

// Check evaluates the requirement against the database.
func (r Requirement) Check(db *meta.DB) error {
	k, err := db.Latest(r.Block, r.View)
	if err != nil {
		return fmt.Errorf("%w: no %s.%s exists", ErrRequirement, r.Block, r.View)
	}
	v, _, err := db.GetProp(k, r.Prop)
	if err != nil {
		return err
	}
	if v != r.Want {
		return fmt.Errorf("%w: %v %s=%q, want %q", ErrRequirement, k, r.Prop, v, r.Want)
	}
	return nil
}

// Step is one unit of a task.
type Step struct {
	Name    string
	Require []Requirement
	// Run performs the step against the session.
	Run func(*wrapper.Session) error
}

// Task is a named sequence of steps — a reusable, higher-level description
// of a design activity.
type Task struct {
	Name  string
	Steps []Step
}

// Validate checks the task shape.
func (t Task) Validate() error {
	if err := meta.ValidateName(t.Name); err != nil {
		return fmt.Errorf("task name: %w", err)
	}
	if len(t.Steps) == 0 {
		return fmt.Errorf("task %s: no steps", t.Name)
	}
	for i, s := range t.Steps {
		if s.Name == "" {
			return fmt.Errorf("task %s: step %d unnamed", t.Name, i)
		}
		if s.Run == nil {
			return fmt.Errorf("task %s: step %s has no action", t.Name, s.Name)
		}
	}
	return nil
}

// Record is the outcome of one task run.
type Record struct {
	// Key is the task-tracking OID; its properties mirror the fields
	// below.
	Key meta.Key
	// Status is "done" or "failed".
	Status string
	// StepsRun counts completed steps.
	StepsRun int
	// Failure holds the failing step's error text, if any.
	Failure string
}

// Runner executes tasks against a wrapper session.
type Runner struct {
	Sess *wrapper.Session
}

// NewRunner returns a task runner bound to a session.
func NewRunner(sess *wrapper.Session) *Runner { return &Runner{Sess: sess} }

// Run executes the task.  A failing requirement or step action marks the
// task failed but is not itself returned as an error; hard errors (broken
// database, bad task) are.  The returned record mirrors the tracking OID.
func (r *Runner) Run(t Task) (*Record, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	eng := r.Sess.Eng
	db := eng.DB()
	key, err := eng.CreateOID(t.Name, View, r.Sess.User)
	if err != nil {
		return nil, err
	}
	rec := &Record{Key: key, Status: "running"}
	set := func(name, value string) error { return db.SetProp(key, name, value) }
	if err := set("status", "running"); err != nil {
		return nil, err
	}
	if err := set("step", ""); err != nil {
		return nil, err
	}
	if err := r.post(EventStart, key, t.Name); err != nil {
		return nil, err
	}

	for i, s := range t.Steps {
		if err := set("step", s.Name); err != nil {
			return nil, err
		}
		if err := r.post(EventStep, key, s.Name); err != nil {
			return nil, err
		}
		if err := r.runStep(s); err != nil {
			rec.Status = "failed"
			rec.Failure = err.Error()
			if err := set("status", "failed"); err != nil {
				return nil, err
			}
			if err := set("failure", rec.Failure); err != nil {
				return nil, err
			}
			if err := r.post(EventFailed, key, s.Name); err != nil {
				return nil, err
			}
			return rec, nil
		}
		rec.StepsRun = i + 1
	}
	rec.Status = "done"
	if err := set("status", "done"); err != nil {
		return nil, err
	}
	if err := r.post(EventDone, key, t.Name); err != nil {
		return nil, err
	}
	return rec, nil
}

// runStep checks requirements then executes the action.
func (r *Runner) runStep(s Step) error {
	for _, req := range s.Require {
		if err := req.Check(r.Sess.Eng.DB()); err != nil {
			return err
		}
	}
	return s.Run(r.Sess)
}

// post emits a task event at the tracking OID and drains.
func (r *Runner) post(event string, key meta.Key, arg string) error {
	return r.Sess.Eng.PostAndDrain(engine.Event{
		Name: event, Dir: bpl.DirDown, Target: key,
		Args: []string{arg}, User: r.Sess.User,
	})
}

// Status reads the tracked status of a task run.
func Status(db *meta.DB, key meta.Key) (status, step, failure string, err error) {
	o, err := db.GetOID(key)
	if err != nil {
		return "", "", "", err
	}
	return o.Props["status"], o.Props["step"], o.Props["failure"], nil
}

// History lists all runs of a named task, oldest first.
func History(db *meta.DB, name string) []meta.Key {
	var out []meta.Key
	for _, v := range db.Versions(name, View) {
		out = append(out, meta.Key{Block: name, View: View, Version: v})
	}
	return out
}
