package state

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// genExprAndOID builds a random boolean expression over a small property
// alphabet plus a random property assignment for one OID.
func genExprAndOID(rng *rand.Rand) (bpl.Expr, *meta.OID) {
	props := []string{"a", "b", "c", "d"}
	vals := []string{"good", "bad", "true", "false"}
	operand := func() bpl.Operand {
		if rng.Intn(2) == 0 {
			return bpl.Operand{Var: props[rng.Intn(len(props))]}
		}
		return bpl.Operand{Lit: vals[rng.Intn(len(vals))]}
	}
	var gen func(depth int) bpl.Expr
	gen = func(depth int) bpl.Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return &bpl.BoolExpr{X: operand()}
			}
			return &bpl.CmpExpr{Neq: rng.Intn(2) == 0, L: operand(), R: operand()}
		}
		switch rng.Intn(3) {
		case 0:
			return &bpl.AndExpr{L: gen(depth - 1), R: gen(depth - 1)}
		case 1:
			return &bpl.OrExpr{L: gen(depth - 1), R: gen(depth - 1)}
		default:
			return &bpl.NotExpr{X: gen(depth - 1)}
		}
	}
	o := &meta.OID{Key: meta.Key{Block: "b", View: "v", Version: 1}, Props: map[string]string{}}
	for _, p := range props {
		o.Props[p] = vals[rng.Intn(len(vals))]
	}
	return gen(3), o
}

// TestQuickExplainFailureConsistency: ExplainFailure returns reasons
// exactly when the expression fails, and every reason names a concrete
// leaf.
func TestQuickExplainFailureConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, o := genExprAndOID(rng)
		lookup := func(n string) string { return o.Props[n] }
		pass := e.Eval(lookup)
		reasons := bpl.ExplainFailure(e, lookup)
		if pass && reasons != nil {
			t.Logf("seed %d: passing expr %s explained: %v", seed, e.String(), reasons)
			return false
		}
		if !pass && len(reasons) == 0 {
			t.Logf("seed %d: failing expr %s unexplained", seed, e.String())
			return false
		}
		for _, r := range reasons {
			if r == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEvaluateMatchesLets: Evaluate's Ready field is exactly the
// conjunction of the view's continuous assignments.
func TestQuickEvaluateMatchesLets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e1, o := genExprAndOID(rng)
		e2, _ := genExprAndOID(rng)
		bp := &bpl.Blueprint{Name: "q", Views: []*bpl.View{{
			Name: "v",
			Lets: []*bpl.LetDecl{
				{Name: "s1", Expr: e1},
				{Name: "s2", Expr: e2},
			},
		}}}
		lookup := func(n string) string { return o.Props[n] }
		st := Evaluate(bp, o)
		want := e1.Eval(lookup) && e2.Eval(lookup)
		return st.Ready == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
