package meta

// LSN-keyed MVCC read epochs.
//
// Every committed mutation of the meta-database carries a stamp: the
// journal LSN of its record when a Recorder is attached, a database-local
// epoch counter otherwise, and the original record's LSN during replay.
// With MVCC enabled, each mutation additionally publishes an immutable
// version of every object it changed — OID property maps, version chains,
// link objects, configurations, workspaces — into lock-free version
// histories, stamped with that LSN.
//
// A View (ReadView / ReadViewAt) pins one stamp and resolves every read
// against the versions at or below it.  Pinning takes one small mutex
// (the epoch gate, never a shard lock) and reading takes no locks at all:
// version nodes are immutable once published and reached through atomic
// pointers, so snapshots, state reports and follower read-your-LSN queries
// proceed while writers keep committing — the paper's single-writer pause
// points become wait-free reads.
//
// # The epoch gate
//
// Stamps are assigned under the gate mutex, in monotonically increasing
// order, and a mutation's stamp stays "in flight" until its versions are
// installed (mutators install while still holding the locks that
// serialize the mutation, then retire the stamp).  A view must never pin
// a stamp with an earlier mutation still in flight — it would read the
// old version now and a newer one on a re-read, tearing byte-stability —
// so ReadView and ReadViewAt wait (briefly: an in-flight mutation is
// already past its journal append) until everything at or below the
// pinned position has installed.  The wait is for installs only, never
// for writer lock acquisition, and writers are never blocked.
//
// # Reclamation
//
// Version histories are trimmed by an amortized background pass: every
// reclaimEvery stamps, the mutation crossing the boundary spawns one
// reclaim goroutine that cuts each history down to its newest version at
// or below the reclaim floor — the oldest pinned view, or the stable
// epoch when nothing is pinned — and deletes histories that are tombstone
// at every retained stamp.  The floor becomes the new horizon: ReadViewAt
// below it reports ErrViewReclaimed and callers fall back to a current
// view.  Trimming takes each shard/stripe lock briefly (a writer-side
// cost); readers are never blocked.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrViewReclaimed reports a ReadViewAt position older than the retained
// version horizon (reclaimed, or before MVCC was enabled).
var ErrViewReclaimed = errors.New("meta: view lsn below the retained version horizon")

// reclaimEvery is the stamp interval between amortized reclaim passes.
const reclaimEvery = 1024

// ver is one immutable version of an object, valid from its stamp until
// the next version's.  val and del are never written after publication;
// next is atomically cut during reclamation but only below every pinned
// view, so readers never traverse a severed link.
type ver[T any] struct {
	lsn  int64
	val  T
	del  bool
	next atomic.Pointer[ver[T]]
}

// hist is a lock-free-readable version list, newest first.  Writers are
// serialized by the lock owning the object (shard, stripe or control
// plane); readers only load atomic pointers.
type hist[T any] struct {
	head atomic.Pointer[ver[T]]
}

// push publishes a new version.  Callers hold the owning lock.
func (h *hist[T]) push(lsn int64, val T, del bool) {
	v := &ver[T]{lsn: lsn, val: val, del: del}
	v.next.Store(h.head.Load())
	h.head.Store(v)
}

// at returns the newest version at or below lsn, or nil if the object did
// not exist yet.
func (h *hist[T]) at(lsn int64) *ver[T] {
	for v := h.head.Load(); v != nil; v = v.next.Load() {
		if v.lsn <= lsn {
			return v
		}
	}
	return nil
}

// trim cuts versions older than the newest one at or below floor and
// reports whether the history is dead — deleted at every retained stamp —
// so the caller can drop it entirely.  Callers hold the owning lock.
func (h *hist[T]) trim(floor int64) bool {
	base := h.at(floor)
	if base != nil {
		base.next.Store(nil)
	}
	head := h.head.Load()
	return head != nil && head == base && head.del
}

// oidVal is the versioned payload of an OID: its creation stamp and an
// immutable property map (nil when empty).
type oidVal struct {
	seq   int64
	props map[string]string
}

// shardHist holds one shard's version histories.  The containers are
// replaced wholesale on RestoreFrom (snapshot re-bootstrap), so views
// capture the pointers at pin time and stay consistent across a re-base.
//
// out and in are the versioned reachability index: per-key adjacency
// postings, one immutable []*Link per stamp at which the key's incident
// link set changed.  Graph walks at a view resolve each visited key with
// one index lookup instead of scanning every link stripe, so a closure
// query costs O(closure), not O(graph).  Link objects are immutable, so
// the postings share them with the stripe histories.
type shardHist struct {
	oids   sync.Map // Key -> *hist[oidVal]
	chains sync.Map // BlockView -> *hist[[]int]
	out    sync.Map // Key -> *hist[[]*Link] (links with From == key)
	in     sync.Map // Key -> *hist[[]*Link] (links with To == key)
}

// stripeHist holds one link stripe's version histories.
type stripeHist struct {
	links sync.Map // LinkID -> *hist[*Link]
}

// ctlHist holds the control plane's version histories.
type ctlHist struct {
	configs    sync.Map // string -> *hist[*Configuration]
	workspaces sync.Map // string -> *hist[*Workspace]
}

// gateSlot is one in-flight stamp.
type gateSlot struct {
	s    int64
	done bool
}

// metaVer records the database header values as of one stamp: the logical
// clock observed at emission (exactly the Seq the journal record carries)
// and the highest link ID allocated so far (cumulative), which together
// make a view's Save header byte-identical to a replay-to-LSN Save.
type metaVer struct {
	lsn     int64
	seq     int64
	linkMax int64 // link ID created by this mutation, 0 otherwise
	linkCum int64 // running max of linkMax up to and including this entry
}

// mvccState is the per-DB MVCC bookkeeping: the enable flag, the epoch
// (highest mutation stamp), the horizon (lowest pinnable stamp), and the
// gate tracking in-flight stamps, pinned views and the header history.
type mvccState struct {
	on      atomic.Bool
	epoch   atomic.Int64
	horizon atomic.Int64

	mu           sync.Mutex
	inflight     []gateSlot
	doneCh       chan struct{} // created by waiters, closed on each retire
	pins         map[int64]int // pinned stamp -> view count
	meta         []metaVer     // sorted by lsn
	reclaiming   bool
	sinceReclaim int64
}

// beginLocked registers an in-flight stamp.  Stamps arrive in increasing
// order on every live path; the sorted insert tolerates replay overlap.
func (m *mvccState) beginLocked(s int64) {
	i := len(m.inflight)
	for i > 0 && m.inflight[i-1].s > s {
		i--
	}
	m.inflight = append(m.inflight, gateSlot{})
	copy(m.inflight[i+1:], m.inflight[i:])
	m.inflight[i] = gateSlot{s: s}
}

// doneLocked retires a stamp and pops the completed prefix.
func (m *mvccState) doneLocked(s int64) {
	for i := range m.inflight {
		if m.inflight[i].s == s {
			m.inflight[i].done = true
			break
		}
	}
	n := 0
	for n < len(m.inflight) && m.inflight[n].done {
		n++
	}
	if n > 0 {
		m.inflight = append(m.inflight[:0], m.inflight[n:]...)
	}
}

// stableLocked returns the newest stamp at or below which every mutation
// has fully installed its versions.
func (m *mvccState) stableLocked() int64 {
	if len(m.inflight) > 0 {
		return m.inflight[0].s - 1
	}
	return m.epoch.Load()
}

// metaPushLocked inserts a header entry in stamp order and restores the
// cumulative link-ID maximum from the insertion point on.
func (m *mvccState) metaPushLocked(e metaVer) {
	i := len(m.meta)
	for i > 0 && m.meta[i-1].lsn > e.lsn {
		i--
	}
	m.meta = append(m.meta, metaVer{})
	copy(m.meta[i+1:], m.meta[i:])
	m.meta[i] = e
	for j := i; j < len(m.meta); j++ {
		cum := m.meta[j].linkMax
		if j > 0 && m.meta[j-1].linkCum > cum {
			cum = m.meta[j-1].linkCum
		}
		m.meta[j].linkCum = cum
	}
}

// metaAtLocked resolves the Save header (seq, next_link) as of lsn.
func (m *mvccState) metaAtLocked(lsn int64) (seq, nextLink int64) {
	i := sort.Search(len(m.meta), func(i int) bool { return m.meta[i].lsn > lsn })
	if i == 0 {
		return 0, 0
	}
	return m.meta[i-1].seq, m.meta[i-1].linkCum
}

// mutTok is the per-mutation commit token handed out by beginMut: the
// stamp to install versions under, and whether installation is wanted.
type mutTok struct {
	s  int64
	on bool
}

// beginMut is the single commit point of every mutation: it emits the
// journal record (when a Recorder is attached), assigns the mutation's
// MVCC stamp, and registers the stamp as in flight.  It must be called
// while the locks serializing the mutation are held, after the live maps
// reflect the change.  args builds the record argument list and is only
// invoked when a Recorder is attached.  linkID names a link created by
// this mutation (0 otherwise) so views can reconstruct the next_link
// counter.  When the token's on flag is set the caller must install its
// version-history entries stamped s and then call endMut.
func (db *DB) beginMut(op string, linkID int64, args func() []string) mutTok {
	on := db.mvcc.on.Load()
	if db.rec == nil && !on {
		return mutTok{}
	}
	// Build the record arguments before taking the gate mutex: the
	// caller's object locks already make the snapshot consistent, and
	// the sorting/formatting inside the arg builders must not serialize
	// every shard's write hot path through the one global gate.
	var a []string
	if db.rec != nil {
		a = args()
	}
	m := &db.mvcc
	m.mu.Lock()
	seq := db.seq.Load()
	var s int64
	if r := db.replayAt.Load(); r > 0 {
		// Replay: stamp with the original record's LSN — and its Seq —
		// so a recovered or follower database keys its versions by the
		// primary's numbering and its view headers match the primary's
		// byte for byte (the local clock is only floored after the apply).
		// A Recorder, if attached, still sees the re-emission.
		s = r
		if rs := db.replaySeq.Load(); rs > seq {
			seq = rs
		}
		if db.rec != nil {
			db.rec.Record(Record{Seq: seq, Op: op, Args: a})
		}
	} else if db.rec != nil {
		s = db.rec.Record(Record{Seq: seq, Op: op, Args: a})
	} else {
		s = m.epoch.Load() + 1
	}
	if !on {
		m.mu.Unlock()
		return mutTok{}
	}
	if s > m.epoch.Load() {
		m.epoch.Store(s)
	}
	m.metaPushLocked(metaVer{lsn: s, seq: seq, linkMax: linkID})
	m.beginLocked(s)
	m.mu.Unlock()
	return mutTok{s: s, on: true}
}

// endMut retires a mutation's stamp after its versions are installed and
// occasionally kicks the amortized reclaim pass.
func (db *DB) endMut(t mutTok) {
	if !t.on {
		return
	}
	m := &db.mvcc
	m.mu.Lock()
	m.doneLocked(t.s)
	if m.doneCh != nil {
		close(m.doneCh)
		m.doneCh = nil
	}
	m.sinceReclaim++
	kick := m.sinceReclaim >= reclaimEvery && !m.reclaiming
	if kick {
		m.reclaiming = true
		m.sinceReclaim = 0
	}
	m.mu.Unlock()
	if kick {
		go db.reclaimPass()
	}
}

// MVCCEnabled reports whether version tracking is on.
func (db *DB) MVCCEnabled() bool { return db.mvcc.on.Load() }

// EnableMVCC turns on version tracking: a one-time genesis capture copies
// the current state into version histories stamped at the current epoch
// (the applied journal LSN on a recovered database), and every later
// mutation appends LSN-stamped versions.  The journal enables it on Open
// and OpenFollower; plain databases pay nothing until it is enabled.
// Idempotent; safe to call concurrently with readers and writers.
func (db *DB) EnableMVCC() {
	if db.mvcc.on.Load() {
		return
	}
	db.ctl.Lock()
	db.lockAll()
	if !db.mvcc.on.Load() {
		s := db.mvcc.epoch.Load()
		if a := db.appliedLSN.Load(); a > s {
			s = a
		}
		db.genesisLocked(s)
		db.mvcc.on.Store(true)
	}
	db.unlockAll()
	db.ctl.Unlock()
}

// genesisLocked rebuilds every version history from the live maps, as one
// version per object stamped s, and resets the gate to that horizon.
// Callers hold the control-plane lock and every shard and stripe lock, so
// no mutation is in flight.  The gate mutex is additionally held across
// the container swap: view pinning goes through it, so a reader racing a
// follower re-bootstrap can never capture a torn mix of old and new
// per-shard containers under the new epoch.
func (db *DB) genesisLocked(s int64) {
	m := &db.mvcc
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epoch.Store(s)
	m.horizon.Store(s)
	m.inflight = m.inflight[:0]
	m.meta = append(m.meta[:0], metaVer{
		lsn: s, seq: db.seq.Load(),
		linkMax: db.nextLink.Load(), linkCum: db.nextLink.Load(),
	})
	for _, sh := range db.shards {
		h := &shardHist{}
		for k, o := range sh.oids {
			oh := &hist[oidVal]{}
			oh.push(s, oidVal{seq: o.Seq, props: copyProps(o.Props)}, false)
			h.oids.Store(k, oh)
		}
		for bv, chain := range sh.chains {
			chh := &hist[[]int]{}
			chh.push(s, append([]int(nil), chain...), false)
			h.chains.Store(bv, chh)
		}
		for k, refs := range sh.outLinks {
			if len(refs) > 0 {
				ah := &hist[[]*Link]{}
				ah.push(s, refLinks(refs), false)
				h.out.Store(k, ah)
			}
		}
		for k, refs := range sh.inLinks {
			if len(refs) > 0 {
				ah := &hist[[]*Link]{}
				ah.push(s, refLinks(refs), false)
				h.in.Store(k, ah)
			}
		}
		sh.hist.Store(h)
	}
	for _, st := range db.stripes {
		h := &stripeHist{}
		for id, l := range st.links {
			lh := &hist[*Link]{}
			lh.push(s, l, false)
			h.links.Store(id, lh)
		}
		st.hist.Store(h)
	}
	ch := &ctlHist{}
	for name, c := range db.configs {
		x := &hist[*Configuration]{}
		x.push(s, c, false)
		ch.configs.Store(name, x)
	}
	for name, w := range db.workspaces {
		x := &hist[*Workspace]{}
		x.push(s, w.clone(), false)
		ch.workspaces.Store(name, x)
	}
	db.ctlH.Store(ch)
}

// copyProps returns an immutable snapshot of a property map, nil when
// empty (nil map reads are free and well-defined).
func copyProps(props map[string]string) map[string]string {
	if len(props) == 0 {
		return nil
	}
	c := make(map[string]string, len(props))
	for k, v := range props {
		c[k] = v
	}
	return c
}

// ---------------------------------------------------------------------------
// Version-install helpers.  All run while the lock owning the object is
// held, with a token whose on flag is set.

// histOIDPush publishes an OID version (or, with del, a tombstone).
func (db *DB) histOIDPush(sh *dbShard, k Key, s int64, o *OID, del bool) {
	h := sh.hist.Load()
	hi, ok := h.oids.Load(k)
	if !ok {
		hi, _ = h.oids.LoadOrStore(k, &hist[oidVal]{})
	}
	if del {
		hi.(*hist[oidVal]).push(s, oidVal{}, true)
		return
	}
	hi.(*hist[oidVal]).push(s, oidVal{seq: o.Seq, props: copyProps(o.Props)}, false)
}

// histOIDPrev returns the newest published property map of an OID — with
// MVCC on it always mirrors the live map, so UpdateOID can diff against
// it without a pre-copy.
func (db *DB) histOIDPrev(sh *dbShard, k Key) map[string]string {
	if hi, ok := sh.hist.Load().oids.Load(k); ok {
		if x := hi.(*hist[oidVal]).head.Load(); x != nil && !x.del {
			return x.val.props
		}
	}
	return nil
}

// histChainPush publishes the current version list of a chain.
func (db *DB) histChainPush(sh *dbShard, bv BlockView, s int64) {
	h := sh.hist.Load()
	hi, ok := h.chains.Load(bv)
	if !ok {
		hi, _ = h.chains.LoadOrStore(bv, &hist[[]int]{})
	}
	hi.(*hist[[]int]).push(s, append([]int(nil), sh.chains[bv]...), false)
}

// refLinks snapshots an adjacency ref list as an immutable link slice
// (nil when empty, so an empty posting reads like an absent one).
func refLinks(refs []linkRef) []*Link {
	if len(refs) == 0 {
		return nil
	}
	out := make([]*Link, len(refs))
	for i, r := range refs {
		out[i] = r.l
	}
	return out
}

// histAdjPush publishes the current adjacency posting of k — the
// reachability index's incremental update.  Every link mutation calls it
// for each endpoint whose incident set (or a member object) changed,
// while holding that endpoint's shard lock, so a view walk resolves
// adjacency with one lookup instead of a whole-graph link scan.  An empty
// posting is pushed as a tombstone: "no links" and "never had links" read
// identically, and reclamation can drop dead postings.
func (db *DB) histAdjPush(sh *dbShard, k Key, s int64, out bool) {
	h := sh.hist.Load()
	m, refs := &h.in, sh.inLinks[k]
	if out {
		m, refs = &h.out, sh.outLinks[k]
	}
	hi, ok := m.Load(k)
	if !ok {
		if len(refs) == 0 {
			return // nothing indexed and nothing to index
		}
		hi, _ = m.LoadOrStore(k, &hist[[]*Link]{})
	}
	links := refLinks(refs)
	hi.(*hist[[]*Link]).push(s, links, links == nil)
}

// histLinkPushLocked publishes a link version (nil = deleted).  Callers
// hold the owning stripe's lock.
func (db *DB) histLinkPushLocked(id LinkID, s int64, l *Link) {
	h := db.stripeOf(id).hist.Load()
	hi, ok := h.links.Load(id)
	if !ok {
		hi, _ = h.links.LoadOrStore(id, &hist[*Link]{})
	}
	hi.(*hist[*Link]).push(s, l, l == nil)
}

// histConfigPushLocked publishes a configuration version (nil = deleted).
// Callers hold the control-plane lock.
func (db *DB) histConfigPushLocked(name string, s int64, c *Configuration) {
	h := db.ctlH.Load()
	hi, ok := h.configs.Load(name)
	if !ok {
		hi, _ = h.configs.LoadOrStore(name, &hist[*Configuration]{})
	}
	hi.(*hist[*Configuration]).push(s, c, c == nil)
}

// histWorkspacePushLocked publishes a workspace version.  w must be a
// private snapshot (clone) the live side will never mutate.  Callers hold
// the control-plane lock.
func (db *DB) histWorkspacePushLocked(name string, s int64, w *Workspace) {
	h := db.ctlH.Load()
	hi, ok := h.workspaces.Load(name)
	if !ok {
		hi, _ = h.workspaces.LoadOrStore(name, &hist[*Workspace]{})
	}
	hi.(*hist[*Workspace]).push(s, w, false)
}

// ---------------------------------------------------------------------------
// Views

// View is a consistent point-in-time read of the whole database, pinned
// at one stamp (journal LSN on a journaled database).  Reads take no
// locks: they resolve immutable versions through atomic pointers, so a
// view is byte-stable — re-reading it always yields identical results —
// while writers keep committing.  Close releases the pin so reclamation
// can trim behind it; a view left open only delays reclamation, never
// correctness.
type View struct {
	db       *DB
	lsn      int64
	seq      int64
	nextLink int64
	shards   []*shardHist
	stripes  []*stripeHist
	ctl      *ctlHist
	closed   atomic.Bool
}

// ReadView pins a view at the current epoch — the newest assigned
// mutation stamp — waiting (briefly) for any older mutation still
// installing its versions, so a write that committed before the call is
// always visible: read-your-writes holds exactly as it did on the locked
// paths.  The wait is only ever for mutations already past their journal
// append (installs run in microseconds); it never blocks on writer lock
// acquisition and never blocks writers.  On a database without MVCC
// enabled it enables it first (one-time capture).
func (db *DB) ReadView() *View {
	if !db.mvcc.on.Load() {
		db.EnableMVCC()
	}
	m := &db.mvcc
	m.mu.Lock()
	for {
		e := m.epoch.Load()
		for len(m.inflight) > 0 && m.inflight[0].s <= e {
			if m.doneCh == nil {
				m.doneCh = make(chan struct{})
			}
			ch := m.doneCh
			m.mu.Unlock()
			<-ch
			m.mu.Lock()
		}
		if m.horizon.Load() <= e {
			v := db.pinLocked(e)
			m.mu.Unlock()
			return v
		}
		// A reclaim pass advanced the horizon past the captured epoch
		// while we waited; retry at the newer epoch (horizon never
		// exceeds the current epoch, so this converges).
	}
}

// ReadViewAt pins a view at exactly lsn: it contains the effect of every
// mutation stamped at or below lsn and nothing newer.  It waits (briefly)
// for in-flight mutations at or below lsn to finish installing, and
// returns ErrViewReclaimed when lsn predates the retained horizon.  The
// caller must not pass an lsn beyond the journal's assigned positions —
// the read-your-LSN paths check the journal (or the replica's applied
// position) first, which also guarantees the wait terminates.
func (db *DB) ReadViewAt(lsn int64) (*View, error) {
	if !db.mvcc.on.Load() {
		db.EnableMVCC()
	}
	m := &db.mvcc
	m.mu.Lock()
	for {
		if lsn < m.horizon.Load() {
			h := m.horizon.Load()
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: lsn %d < horizon %d", ErrViewReclaimed, lsn, h)
		}
		if len(m.inflight) == 0 || m.inflight[0].s > lsn {
			v := db.pinLocked(lsn)
			m.mu.Unlock()
			return v, nil
		}
		if m.doneCh == nil {
			m.doneCh = make(chan struct{})
		}
		ch := m.doneCh
		m.mu.Unlock()
		<-ch
		m.mu.Lock()
	}
}

// pinLocked registers a pin and captures the history containers.  Callers
// hold the gate mutex.
func (db *DB) pinLocked(l int64) *View {
	m := &db.mvcc
	if m.pins == nil {
		m.pins = make(map[int64]int)
	}
	m.pins[l]++
	seq, nl := m.metaAtLocked(l)
	v := &View{
		db: db, lsn: l, seq: seq, nextLink: nl,
		shards:  make([]*shardHist, len(db.shards)),
		stripes: make([]*stripeHist, len(db.stripes)),
		ctl:     db.ctlH.Load(),
	}
	for i, sh := range db.shards {
		v.shards[i] = sh.hist.Load()
	}
	for i, st := range db.stripes {
		v.stripes[i] = st.hist.Load()
	}
	return v
}

// Close releases the view's pin.  Idempotent.
func (v *View) Close() {
	if v == nil || v.closed.Swap(true) {
		return
	}
	m := &v.db.mvcc
	m.mu.Lock()
	if n := m.pins[v.lsn]; n > 1 {
		m.pins[v.lsn] = n - 1
	} else {
		delete(m.pins, v.lsn)
	}
	m.mu.Unlock()
}

// LSN returns the stamp the view is pinned at.
func (v *View) LSN() int64 { return v.lsn }

// Seq returns the database logical clock as of the view.
func (v *View) Seq() int64 { return v.seq }

// oidAt resolves an OID's version at the view, nil when absent/deleted.
func (v *View) oidAt(k Key) *ver[oidVal] {
	hi, ok := v.shards[v.db.shardIndex(k.Block)].oids.Load(k)
	if !ok {
		return nil
	}
	x := hi.(*hist[oidVal]).at(v.lsn)
	if x == nil || x.del {
		return nil
	}
	return x
}

// HasOID reports whether the OID exists at the view.
func (v *View) HasOID(k Key) bool { return v.oidAt(k) != nil }

// GetOID returns the OID as of the view.  Props is the view's immutable
// version map (possibly nil): callers may retain it but must not mutate.
func (v *View) GetOID(k Key) (*OID, error) {
	x := v.oidAt(k)
	if x == nil {
		return nil, fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	return &OID{Key: k, Seq: x.val.seq, Props: x.val.props}, nil
}

// Latest returns the newest version of (block, view) at the view.
func (v *View) Latest(block, view string) (Key, bool) {
	bv := BlockView{Block: block, View: view}
	hi, ok := v.shards[v.db.shardIndex(block)].chains.Load(bv)
	if !ok {
		return Key{}, false
	}
	x := hi.(*hist[[]int]).at(v.lsn)
	if x == nil || x.del || len(x.val) == 0 {
		return Key{}, false
	}
	return Key{Block: block, View: view, Version: x.val[len(x.val)-1]}, true
}

// EachOID invokes fn for every OID live at the view, in unspecified
// order, until fn returns false.  The *OID is reused across calls: fn
// must not retain it, though it may retain Props (immutable).
func (v *View) EachOID(fn func(*OID) bool) {
	var o OID
	for _, h := range v.shards {
		cont := true
		h.oids.Range(func(key, hv any) bool {
			x := hv.(*hist[oidVal]).at(v.lsn)
			if x == nil || x.del {
				return true
			}
			o = OID{Key: key.(Key), Seq: x.val.seq, Props: x.val.props}
			cont = fn(&o)
			return cont
		})
		if !cont {
			return
		}
	}
}

// EachLatestOID invokes fn for the newest version of every chain live at
// the view, in unspecified order, until fn returns false.  The *OID is
// reused across calls; Props may be retained (immutable).
func (v *View) EachLatestOID(fn func(*OID) bool) {
	var o OID
	for i, h := range v.shards {
		oids := &v.shards[i].oids
		cont := true
		h.chains.Range(func(key, hv any) bool {
			x := hv.(*hist[[]int]).at(v.lsn)
			if x == nil || x.del || len(x.val) == 0 {
				return true
			}
			bv := key.(BlockView)
			k := Key{Block: bv.Block, View: bv.View, Version: x.val[len(x.val)-1]}
			hi, ok := oids.Load(k)
			if !ok {
				return true
			}
			ox := hi.(*hist[oidVal]).at(v.lsn)
			if ox == nil || ox.del {
				return true
			}
			o = OID{Key: k, Seq: ox.val.seq, Props: ox.val.props}
			cont = fn(&o)
			return cont
		})
		if !cont {
			return
		}
	}
}

// EachLink invokes fn for every link live at the view, in unspecified
// order, until fn returns false.  Link objects are immutable and may be
// retained.
func (v *View) EachLink(fn func(*Link) bool) {
	for _, h := range v.stripes {
		cont := true
		h.links.Range(func(_, hv any) bool {
			x := hv.(*hist[*Link]).at(v.lsn)
			if x == nil || x.del {
				return true
			}
			cont = fn(x.val)
			return cont
		})
		if !cont {
			return
		}
	}
}

// eachChain invokes fn for every version chain live at the view with its
// ascending version list (immutable; must not be mutated).
func (v *View) eachChain(fn func(bv BlockView, chain []int) bool) {
	for _, h := range v.shards {
		cont := true
		h.chains.Range(func(key, hv any) bool {
			x := hv.(*hist[[]int]).at(v.lsn)
			if x == nil || x.del || len(x.val) == 0 {
				return true
			}
			cont = fn(key.(BlockView), x.val)
			return cont
		})
		if !cont {
			return
		}
	}
}

// eachConfiguration / eachWorkspace feed the view Save path; the objects
// handed out are the immutable stored versions.
func (v *View) eachConfiguration(fn func(*Configuration)) {
	v.ctl.configs.Range(func(_, hv any) bool {
		if x := hv.(*hist[*Configuration]).at(v.lsn); x != nil && !x.del {
			fn(x.val)
		}
		return true
	})
}

func (v *View) eachWorkspace(fn func(*Workspace)) {
	v.ctl.workspaces.Range(func(_, hv any) bool {
		if x := hv.(*hist[*Workspace]).at(v.lsn); x != nil && !x.del {
			fn(x.val)
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Reclamation

// reclaimPass runs one amortized reclaim and clears the in-progress flag.
func (db *DB) reclaimPass() {
	db.ReclaimVersions()
	db.mvcc.mu.Lock()
	db.mvcc.reclaiming = false
	db.mvcc.mu.Unlock()
}

// ReclaimVersions trims every version history down to its newest version
// at or below the reclaim floor — the oldest pinned view, or the stable
// epoch when nothing is pinned — and advances the horizon to the floor.
// It runs automatically every reclaimEvery stamps; exported for tests and
// for operators forcing a trim.  Readers are never blocked; writers wait
// at most one shard's trim.
func (db *DB) ReclaimVersions() {
	m := &db.mvcc
	if !m.on.Load() {
		return
	}
	m.mu.Lock()
	floor := m.stableLocked()
	for l := range m.pins {
		if l < floor {
			floor = l
		}
	}
	if h := m.horizon.Load(); floor > h {
		m.horizon.Store(floor)
	} else {
		floor = h
	}
	if i := sort.Search(len(m.meta), func(i int) bool { return m.meta[i].lsn > floor }); i > 1 {
		m.meta = append(m.meta[:0], m.meta[i-1:]...)
	}
	m.mu.Unlock()

	for _, sh := range db.shards {
		sh.mu.Lock()
		h := sh.hist.Load()
		h.oids.Range(func(key, hv any) bool {
			if hv.(*hist[oidVal]).trim(floor) {
				h.oids.Delete(key)
			}
			return true
		})
		h.chains.Range(func(key, hv any) bool {
			if hv.(*hist[[]int]).trim(floor) {
				h.chains.Delete(key)
			}
			return true
		})
		h.out.Range(func(key, hv any) bool {
			if hv.(*hist[[]*Link]).trim(floor) {
				h.out.Delete(key)
			}
			return true
		})
		h.in.Range(func(key, hv any) bool {
			if hv.(*hist[[]*Link]).trim(floor) {
				h.in.Delete(key)
			}
			return true
		})
		sh.mu.Unlock()
	}
	for _, st := range db.stripes {
		st.mu.Lock()
		h := st.hist.Load()
		h.links.Range(func(key, hv any) bool {
			if hv.(*hist[*Link]).trim(floor) {
				h.links.Delete(key)
			}
			return true
		})
		st.mu.Unlock()
	}
	db.ctl.Lock()
	h := db.ctlH.Load()
	h.configs.Range(func(key, hv any) bool {
		if hv.(*hist[*Configuration]).trim(floor) {
			h.configs.Delete(key)
		}
		return true
	})
	h.workspaces.Range(func(key, hv any) bool {
		if hv.(*hist[*Workspace]).trim(floor) {
			h.workspaces.Delete(key)
		}
		return true
	})
	db.ctl.Unlock()
}

// VersionHorizon returns the oldest stamp a view may still pin.
func (db *DB) VersionHorizon() int64 { return db.mvcc.horizon.Load() }
