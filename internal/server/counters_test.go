package server

// Tests for the shed/refusal counter export and the BPSWAP verb: the
// counters exist so a load generator's client-side error accounting can
// be reconciled exactly against the server's own refusal tallies.

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestStatsExportsCounters(t *testing.T) {
	srv, addr := startServerWith(t, WithLimits(Limits{MaxBatchItems: 2}))
	c := dial(t, addr)
	kv, err := c.StatsKV()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"oids", "posted", "conns_shed", "inflight_shed",
		"readonly_refused", "degraded_refused", "batch_oversize", "panics"} {
		if _, ok := kv[key]; !ok {
			t.Errorf("STATS missing %q (have %v)", key, kv)
		}
	}
	if kv["batch_oversize"] != 0 {
		t.Fatalf("fresh server batch_oversize=%d", kv["batch_oversize"])
	}
	// An oversize BATCH is refused and counted.
	k, err := c.Create("cnt", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	items := make([]wire.BatchItem, 3)
	for i := range items {
		items[i] = wire.BatchItem{Event: "ckin", Dir: "down", OID: k.String()}
	}
	if _, err := c.PostBatch(items); err == nil {
		t.Fatal("oversize batch accepted")
	}
	kv, err = c.StatsKV()
	if err != nil {
		t.Fatal(err)
	}
	if kv["batch_oversize"] != 1 {
		t.Errorf("batch_oversize=%d after one refusal", kv["batch_oversize"])
	}
	if got := srv.CountersSnapshot()["batch_oversize"]; got != 1 {
		t.Errorf("CountersSnapshot batch_oversize=%d", got)
	}
}

func TestBPSwapInstallsBlueprint(t *testing.T) {
	_, addr := startServerWith(t)
	c := dial(t, addr)
	src, err := c.Blueprint()
	if err != nil {
		t.Fatal(err)
	}
	// Swapping the server's own canonical source round-trips: the
	// printed form must parse and install.
	if err := c.SwapBlueprint(src); err != nil {
		t.Fatalf("self-swap: %v", err)
	}
	// A distinct blueprint really replaces the policy.
	alt := "blueprint alt\nview V\n    property ready default false\n    when ckin do ready = true done\nendview\nendblueprint\n"
	if err := c.SwapBlueprint(alt); err != nil {
		t.Fatalf("alt swap: %v", err)
	}
	after, err := c.Blueprint()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after, "alt") {
		t.Errorf("blueprint after swap:\n%s", after)
	}
	// Events keep flowing under the new policy.
	k, err := c.Create("postswap", "V")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PostEvent("ckin", "down", k); err != nil {
		t.Fatal(err)
	}
}

func TestBPSwapRejectsGarbage(t *testing.T) {
	_, addr := startServerWith(t)
	c := dial(t, addr)
	before, err := c.Blueprint()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SwapBlueprint("when in doubt, mumble"); err == nil {
		t.Fatal("garbage source accepted")
	}
	if err := c.SwapBlueprint(""); err == nil {
		t.Fatal("empty source accepted")
	}
	after, err := c.Blueprint()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Error("failed swap changed the installed blueprint")
	}
}
