// Command dquery queries project state from a running DAMOCLES server —
// the designer-side "what still needs to be modified before reaching a
// planned state" tool.
//
// Usage:
//
//	dquery [-addr host:port] state <block,view,version>
//	dquery [-addr host:port] report
//	dquery [-addr host:port] gap
//	dquery [-addr host:port] stats
//	dquery [-addr host:port] blueprint
//	dquery [-addr host:port] snapshot <name> <root-oid|*>
//	dquery [-addr host:port] dot <flow|state>
//	dquery [-addr host:port] links <block,view,version>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dquery: ")
	addr := flag.String("addr", "127.0.0.1:7495", "project server address")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dquery [-addr host:port] <state|report|gap|stats|blueprint|snapshot|dot|links> [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := cli.DQuery(os.Stdout, c, flag.Args()); err != nil {
		log.Fatal(err)
	}
}
