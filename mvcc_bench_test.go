package repro

// MVCC benchmarks: reader latency while writers keep committing.  The
// pre-MVCC read paths gated on the writers' shard locks (REPORT rows) or
// on every shard lock at once (snapshot collection); with LSN-keyed read
// views both are lock-free, so reader latency under write load should sit
// near the idle-database baseline instead of scaling with writer activity.
//
// Writers are paced (a short sleep between checkins) so the benchmark
// measures lock contention rather than raw CPU starvation — on the
// single-core CI runner, four busy-spinning writers would starve any
// reader regardless of locking design.

import (
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"repro/internal/state"
)

// benchWriteDB builds a project with n blocks and, for writers > 0,
// starts that many paced writer goroutines mutating properties until the
// returned stop function is called.
func benchWriteDB(b *testing.B, n, writers int) (*Project, func()) {
	b.Helper()
	proj := mustProject(b, EDTCExample)
	for i := 0; i < n; i++ {
		if _, err := proj.Engine.CreateOID(fmt.Sprintf("blk%04d", i), "schematic", "bench"); err != nil {
			b.Fatal(err)
		}
	}
	if err := proj.Engine.Drain(); err != nil {
		b.Fatal(err)
	}
	proj.DB.EnableMVCC()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k, err := proj.DB.Latest(fmt.Sprintf("blk%04d", (w*31+i)%n), "schematic")
				if err == nil {
					_ = proj.DB.SetProp(k, "sim_result", fmt.Sprint(i))
				}
				i++
				time.Sleep(100 * time.Microsecond)
			}
		}(w)
	}
	return proj, func() {
		close(stop)
		wg.Wait()
	}
}

// BenchmarkReportUnderWrites measures full-REPORT latency (the streaming
// sorted form the wire verbs use) on an idle database and under four
// concurrent paced writers.  With MVCC views the two should be close;
// the old per-row shard-locked path degraded with writer activity.
func BenchmarkReportUnderWrites(b *testing.B) {
	const blocks = 500
	for _, writers := range []int{0, 4} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			proj, stop := benchWriteDB(b, blocks, writers)
			defer stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows := 0
				state.StreamSorted(proj.DB, proj.Blueprint, func(*state.OIDState) bool {
					rows++
					return true
				})
				if rows != blocks {
					b.Fatal(rows)
				}
			}
		})
	}
}

// BenchmarkSnapshotUnderLoad measures whole-database snapshot collection
// (the journal's Save document) on an idle database and under four
// concurrent paced writers.  The pre-MVCC path held every shard read
// lock for the collection phase; the view path holds none.
func BenchmarkSnapshotUnderLoad(b *testing.B) {
	const blocks = 500
	for _, writers := range []int{0, 4} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			proj, stop := benchWriteDB(b, blocks, writers)
			defer stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := proj.DB.ReadView()
				if err := v.SaveTo(io.Discard); err != nil {
					b.Fatal(err)
				}
				v.Close()
			}
		})
	}
}
