package engine

import (
	"testing"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// TestFig2PropertyCopy reproduces Figure 2 of the paper: view GDSII has
// "property DRC default bad copy"; creating version 6 of alu copies DRC=ok
// from version 5, while a fresh chain starts at the default.
func TestFig2PropertyCopy(t *testing.T) {
	e := newTestEngine(t, `blueprint fig2
view GDSII
    property DRC default bad copy
endview
endblueprint`)
	v1 := mustCreate(t, e, "alu", "GDSII")
	if got := prop(t, e, v1, "DRC"); got != "bad" {
		t.Errorf("first version DRC = %q, want default bad", got)
	}
	// Versions 2..5.
	var v5 meta.Key
	for i := 2; i <= 5; i++ {
		v5 = mustCreate(t, e, "alu", "GDSII")
	}
	if err := e.DB().SetProp(v5, "DRC", "ok"); err != nil {
		t.Fatal(err)
	}
	v6 := mustCreate(t, e, "alu", "GDSII")
	if v6.Version != 6 {
		t.Fatalf("v6 = %v", v6)
	}
	if got := prop(t, e, v6, "DRC"); got != "ok" {
		t.Errorf("copied DRC = %q, want ok", got)
	}
	// Copy leaves the old version's property intact.
	if got := prop(t, e, v5, "DRC"); got != "ok" {
		t.Errorf("v5 DRC after copy = %q, want ok", got)
	}
}

func TestPropertyMoveSemantics(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property hist default empty move
endview
endblueprint`)
	v1 := mustCreate(t, e, "blk", "v")
	if err := e.DB().SetProp(v1, "hist", "rev-a"); err != nil {
		t.Fatal(err)
	}
	v2 := mustCreate(t, e, "blk", "v")
	if got := prop(t, e, v2, "hist"); got != "rev-a" {
		t.Errorf("moved hist = %q", got)
	}
	if _, ok, _ := e.DB().GetProp(v1, "hist"); ok {
		t.Error("move left the property on the old version")
	}
}

func TestPropertyNoneAlwaysDefault(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property fresh default clean
endview
endblueprint`)
	v1 := mustCreate(t, e, "blk", "v")
	if err := e.DB().SetProp(v1, "fresh", "dirty"); err != nil {
		t.Fatal(err)
	}
	v2 := mustCreate(t, e, "blk", "v")
	if got := prop(t, e, v2, "fresh"); got != "clean" {
		t.Errorf("fresh = %q, want default clean", got)
	}
	if got := prop(t, e, v1, "fresh"); got != "dirty" {
		t.Errorf("old version changed: %q", got)
	}
}

// TestFig3LinkMove reproduces Figure 3: a move-tagged derive link from
// NetList to GDSII shifts from GDSII version 5 to version 6 when the new
// version is created.
func TestFig3LinkMove(t *testing.T) {
	e := newTestEngine(t, `blueprint fig3
view NetList
endview
view GDSII
    link_from NetList move propagates OutOfDate type derive_from
endview
endblueprint`)
	db := e.DB()
	var nl8 meta.Key
	for i := 1; i <= 8; i++ {
		nl8 = mustCreate(t, e, "alu", "NetList")
	}
	var g5 meta.Key
	for i := 1; i <= 5; i++ {
		g5 = mustCreate(t, e, "alu", "GDSII")
	}
	id, err := e.CreateLink(meta.DeriveLink, nl8, g5)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := db.GetLink(id)
	if l.Type() != "derive_from" || !l.CanPropagate("OutOfDate") {
		t.Fatalf("template not applied: %+v", l)
	}

	g6 := mustCreate(t, e, "alu", "GDSII")
	l, err = db.GetLink(id)
	if err != nil {
		t.Fatal(err)
	}
	if l.To != g6 {
		t.Errorf("link To = %v, want shifted to %v", l.To, g6)
	}
	if l.From != nl8 {
		t.Errorf("link From = %v, want unchanged %v", l.From, nl8)
	}
	if got := db.LinksTo(g5); len(got) != 0 {
		t.Errorf("old version keeps %d links after move", len(got))
	}
	if s := e.Stats(); s.LinksShifted != 1 {
		t.Errorf("LinksShifted = %d", s.LinksShifted)
	}
}

// TestLinkMoveOnUpstreamVersion checks the synth_lib scenario: installing a
// new version of the library shifts the depend_on link (the library is the
// From end), so the installation's ckin invalidates dependents.
func TestLinkMoveOnUpstreamVersion(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view synth_lib
endview
view schematic
    link_from synth_lib move propagates outofdate type depend_on
endview
endblueprint`)
	lib1 := mustCreate(t, e, "stdcells", "synth_lib")
	sch := mustCreate(t, e, "cpu", "schematic")
	if _, err := e.CreateLink(meta.DeriveLink, lib1, sch); err != nil {
		t.Fatal(err)
	}
	// Install a new library version: the depend_on link must shift to it.
	lib2 := mustCreate(t, e, "stdcells", "synth_lib")
	if got := e.DB().LinksFrom(lib2); len(got) != 1 {
		t.Fatalf("link not shifted to new library: %v", got)
	}
	// Checking in the new library invalidates the schematic.
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: lib2}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, sch, "uptodate"); got != "false" {
		t.Errorf("schematic uptodate = %q after library install", got)
	}
}

func TestLinkCopySemantics(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view src
endview
view dst
    link_from src copy propagates ev type derived
endview
endblueprint`)
	db := e.DB()
	src := mustCreate(t, e, "blk", "src")
	dst1 := mustCreate(t, e, "blk", "dst")
	if _, err := e.CreateLink(meta.DeriveLink, src, dst1); err != nil {
		t.Fatal(err)
	}
	dst2 := mustCreate(t, e, "blk", "dst")
	if got := db.LinksTo(dst1); len(got) != 1 {
		t.Errorf("copy removed the old link: %v", got)
	}
	links2 := db.LinksTo(dst2)
	if len(links2) != 1 {
		t.Fatalf("no copied link on new version: %v", links2)
	}
	if links2[0].From != src || links2[0].Type() != "derived" || !links2[0].CanPropagate("ev") {
		t.Errorf("copied link wrong: %+v", links2[0])
	}
}

func TestUseLinkShiftFromPaper(t *testing.T) {
	// "if a new OID <REG.schematic.2> were created, the use link between
	// <CPU.schematic.1> and <REG.schematic.1> would be shifted to link
	// <CPU.schematic.1> to <REG.schematic.2>".
	e := newTestEngine(t, `blueprint b
view schematic
    use_link move propagates outofdate
endview
endblueprint`)
	db := e.DB()
	cpu1 := mustCreate(t, e, "CPU", "schematic")
	reg1 := mustCreate(t, e, "REG", "schematic")
	id, err := e.CreateLink(meta.UseLink, cpu1, reg1)
	if err != nil {
		t.Fatal(err)
	}
	reg2 := mustCreate(t, e, "REG", "schematic")
	l, _ := db.GetLink(id)
	if l.From != cpu1 || l.To != reg2 {
		t.Errorf("use link = %v -> %v, want %v -> %v", l.From, l.To, cpu1, reg2)
	}
}

func TestRawLinksDoNotShift(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
endview
endblueprint`)
	db := e.DB()
	a := mustCreate(t, e, "a", "v")
	b1 := mustCreate(t, e, "b", "v")
	// Raw link, created outside any template.
	id, err := db.AddLink(meta.DeriveLink, a, b1, "", []string{"ev"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, e, "b", "v")
	l, _ := db.GetLink(id)
	if l.To != b1 {
		t.Errorf("raw link shifted: %v", l.To)
	}
}

func TestCreateEventPosted(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property born default no
    when create do born = yes done
endview
endblueprint`)
	k := mustCreate(t, e, "blk", "v")
	if got := prop(t, e, k, "born"); got != "yes" {
		t.Errorf("born = %q, create event not delivered", got)
	}
}

func TestCreateLinkWithoutTemplate(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
endview
view w
endview
endblueprint`)
	a := mustCreate(t, e, "a", "v")
	b := mustCreate(t, e, "b", "w")
	id, err := e.CreateLink(meta.DeriveLink, a, b)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := e.DB().GetLink(id)
	if l.Template != "" || len(l.PropagateList()) != 0 {
		t.Errorf("bare link decorated: %+v", l)
	}
}
