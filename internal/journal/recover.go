package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math"
	"path/filepath"
	"sort"

	"repro/internal/faultfs"
	"repro/internal/meta"
)

// replayState is the result of reading a journal directory.
type replayState struct {
	db      *meta.DB
	lastLSN int64 // newest record applied or covered by the snapshot
	snapLSN int64 // LSN the loaded snapshot covers (0 when none)
	hdrTerm int64 // newest segment-header term seen; headers must never regress
}

// Replay restores a database from a journal directory without modifying
// it: the newest snapshot is loaded and the record tail applied, but a
// torn final record is merely ignored, never truncated away on disk, and
// no writer state is created.  It is the read-only inspection path (dquery
// -journal) and is safe to run against the directory of a live server —
// the result is simply the state as of the last committed record.
func Replay(dir string, shards int) (*meta.DB, int64, error) {
	return ReplayUpTo(dir, shards, math.MaxInt64)
}

// ReplayUpTo is Replay bounded at a journal position: records with LSN
// beyond upTo are not applied, so the result is the database exactly as
// it stood at that LSN — the ground truth the MVCC property tests compare
// ReadViewAt(lsn) against.  The newest snapshot at or below upTo seeds
// the replay; when every snapshot is newer, the history below upTo has
// been compacted away and the call fails.
func ReplayUpTo(dir string, shards int, upTo int64) (*meta.DB, int64, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		st, err := replayFS(faultfs.OS, dir, shards, false, upTo)
		if err == nil {
			return st.db, st.lastLSN, nil
		}
		if !errors.Is(err, fs.ErrNotExist) {
			return nil, 0, err
		}
		// A live writer's compaction deleted a file between our directory
		// listing and the read; the fresh listing is consistent again.
		lastErr = err
	}
	return nil, 0, lastErr
}

// replayFS reads dir through vfs.  With repair set, a torn final record is
// truncated off the last segment and leftover temporary snapshot files are
// removed, so a Writer can resume appending at a clean tail.  Records
// beyond upTo are scanned (the continuity checks still run) but not
// applied.
func replayFS(vfs faultfs.FS, dir string, shards int, repair bool, upTo int64) (replayState, error) {
	if shards <= 0 {
		shards = meta.DefaultShards
	}
	entries, err := vfs.ReadDir(dir)
	if err != nil {
		return replayState{}, fmt.Errorf("journal: %w", err)
	}

	var snapLSNs []int64
	type segment struct {
		start int64
		path  string
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseSeqName(e.Name(), "snapshot-", ".json"); ok {
			snapLSNs = append(snapLSNs, lsn)
			continue
		}
		if lsn, ok := parseSeqName(e.Name(), "journal-", ".log"); ok {
			segs = append(segs, segment{start: lsn, path: filepath.Join(dir, e.Name())})
			continue
		}
		if repair && filepath.Ext(e.Name()) == ".tmp" {
			// A crash mid-snapshot leaves its temporary file behind; it was
			// never renamed into place, so it holds nothing recovery wants.
			vfs.Remove(filepath.Join(dir, e.Name()))
		}
	}
	sort.Slice(snapLSNs, func(i, j int) bool { return snapLSNs[i] > snapLSNs[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	if upTo < math.MaxInt64 {
		// Bounded replay: only a snapshot at or below the bound may seed
		// it.  When none qualifies the replay starts from empty, and the
		// segment continuity check below fails loudly if the history below
		// the bound has already been compacted away.
		trimmed := snapLSNs[:0]
		for _, lsn := range snapLSNs {
			if lsn <= upTo {
				trimmed = append(trimmed, lsn)
			}
		}
		snapLSNs = trimmed
	}

	// Load the newest snapshot.  Snapshots are written to a temporary file
	// and renamed, so a crash cannot leave a torn one under a valid name;
	// if the newest still fails to load, that is disk corruption — fail
	// loudly rather than silently fall back to an older snapshot whose
	// covering segments compaction may already have deleted.
	st := replayState{db: meta.NewDBWithShards(shards)}
	if len(snapLSNs) > 0 {
		st.snapLSN = snapLSNs[0]
		path := filepath.Join(dir, snapshotName(st.snapLSN))
		f, err := vfs.Open(path)
		if err != nil {
			return replayState{}, fmt.Errorf("journal: %w", err)
		}
		db, err := meta.LoadShards(f, shards)
		f.Close()
		if err != nil {
			return replayState{}, fmt.Errorf("journal: snapshot %s: %w", filepath.Base(path), err)
		}
		st.db = db
		st.lastLSN = st.snapLSN
	}

	// next tracks the LSN the record stream must continue at, across
	// segment boundaries: a gap means a lost or deleted segment, and the
	// surviving records must not be replayed onto a state that is missing
	// the middle of its history.
	next := int64(-1)
	for i, sg := range segs {
		last := i == len(segs)-1
		if !last && segs[i+1].start <= st.snapLSN+1 {
			// Every record this segment can hold is older than the next
			// segment's first, hence covered by the snapshot.
			continue
		}
		switch {
		case next == -1:
			if sg.start > st.snapLSN+1 {
				return replayState{}, fmt.Errorf(
					"journal: gap between snapshot lsn %d and first segment %s",
					st.snapLSN, filepath.Base(sg.path))
			}
		case sg.start != next:
			return replayState{}, fmt.Errorf(
				"journal: gap in record stream: segment %s starts at lsn %d, want %d",
				filepath.Base(sg.path), sg.start, next)
		}
		n, err := replaySegment(vfs, &st, sg.path, sg.start, last, repair, upTo)
		if err != nil {
			return replayState{}, err
		}
		next = n
	}
	// The snapshot may have advanced the state without individual record
	// applies; keep the applied-LSN marker in step with what the database
	// actually reflects.
	st.db.FloorAppliedLSN(st.lastLSN)
	return st, nil
}

// replaySegment applies one segment's records with LSN beyond the loaded
// snapshot and returns the LSN the stream continues at in the next
// segment.  On the last segment a torn tail stops the replay (and, with
// repair, is truncated off the file); anywhere else it is corruption.
func replaySegment(vfs faultfs.FS, st *replayState, path string, start int64, last, repair bool, upTo int64) (int64, error) {
	data, err := vfs.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	name := filepath.Base(path)

	// torn classifies a damaged frame at offset off.  A genuine torn write
	// can only be the suffix of the last segment — a single appender never
	// writes anything after an unfinished record — so damage is tolerated
	// (and with repair truncated away) only on the last segment AND only
	// when no decodable frame exists beyond it; a valid frame after the
	// damage proves mid-stream corruption of acknowledged history, which
	// must fail loudly, never be silently cut off.
	torn := func(off int, what string) (bool, error) {
		if !last {
			return false, fmt.Errorf("journal: segment %s: %s at offset %d (not the journal tail)", name, what, off)
		}
		for cand := off + 1; cand+frameHeader <= len(data); cand++ {
			if validFrameAt(data, cand) {
				return false, fmt.Errorf("journal: segment %s: %s at offset %d (valid records follow — corruption, not a torn tail)", name, what, off)
			}
		}
		if repair {
			if err := vfs.Truncate(path, int64(off)); err != nil {
				return false, fmt.Errorf("journal: truncate torn tail of %s: %w", name, err)
			}
		}
		return true, nil
	}

	hdrTerm, hdrLen, herr := parseSegHeader(data)
	if herr != nil {
		if tornSegHeaderPrefix(data) {
			// A strict prefix of a valid header: the segment was torn at
			// creation, before any record could have been acknowledged.
			_, err := torn(0, "torn segment header")
			return start, err
		}
		return 0, fmt.Errorf("journal: segment %s: %v", name, herr)
	}
	// Election terms only ever move forward, so segment headers are
	// non-decreasing along the journal; a regression means shuffled or
	// doctored files (truncation must not paper over it).
	if hdrTerm < st.hdrTerm {
		return 0, fmt.Errorf("journal: segment %s: header term %d regresses below %d", name, hdrTerm, st.hdrTerm)
	}
	st.hdrTerm = hdrTerm

	off := hdrLen
	next := start
	for off < len(data) {
		rest := len(data) - off
		if rest < frameHeader {
			stop, err := torn(off, "short frame header")
			if err != nil {
				return 0, err
			}
			if stop {
				return next, nil
			}
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen || rest-frameHeader < n {
			stop, err := torn(off, "torn or oversized record")
			if err != nil {
				return 0, err
			}
			if stop {
				return next, nil
			}
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			stop, err := torn(off, "record checksum mismatch")
			if err != nil {
				return 0, err
			}
			if stop {
				return next, nil
			}
		}
		rec, err := decodePayload(payload)
		if err != nil {
			stop, terr := torn(off, fmt.Sprintf("undecodable record (%v)", err))
			if terr != nil {
				return 0, terr
			}
			if stop {
				return next, nil
			}
		}
		// A record that passed its checksum must carry the expected LSN:
		// a mismatch means shuffled or doctored files, which truncation
		// must not paper over.
		if rec.LSN != next {
			return 0, fmt.Errorf("journal: segment %s: record lsn %d at offset %d, want %d", name, rec.LSN, off, next)
		}
		if rec.LSN > st.snapLSN && rec.LSN <= upTo {
			if err := st.db.ApplyRecord(rec); err != nil {
				return 0, fmt.Errorf("journal: segment %s: %w", name, err)
			}
			st.lastLSN = rec.LSN
		}
		next++
		off += frameHeader + n
	}
	return next, nil
}
