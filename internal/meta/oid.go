package meta

import "sort"

// Well-known property names.  The paper notes that "certain generic property
// names are strongly recommended" even though most names are chosen by the
// project administrator.
const (
	// PropOwner records the designer responsible for the OID; the run-time
	// engine exposes it to rules as $owner.
	PropOwner = "owner"

	// PropState is the conventional name of the continuous assignment that
	// summarizes an OID's design state, e.g.
	// let state = ($drc_result == good) and ($uptodate == true).
	PropState = "state"
)

// OID is a meta-data object: the database-side representative of one version
// of one design view of one block.  Properties carry the design state (e.g.
// DRC = ok, sim_result = "4 errors").
//
// OIDs are owned by a DB; mutate them only through DB methods so that index
// maintenance and locking stay correct.
type OID struct {
	Key   Key
	Props map[string]string

	// Seq is the logical creation timestamp: a database-wide counter that
	// totally orders object creation.  Configurations use it to interpret
	// "state of the design at snapshot time".
	Seq int64
}

// clone returns a deep copy, used by snapshot resolution so callers can not
// mutate database internals.
func (o *OID) clone() *OID {
	c := &OID{Key: o.Key, Seq: o.Seq, Props: make(map[string]string, len(o.Props))}
	for k, v := range o.Props {
		c.Props[k] = v
	}
	return c
}

// Prop returns the value of a property and whether it is set.
func (o *OID) Prop(name string) (string, bool) {
	v, ok := o.Props[name]
	return v, ok
}

// PropNames returns the property names in sorted order, for deterministic
// reports and persistence.
func (o *OID) PropNames() []string {
	names := make([]string, 0, len(o.Props))
	for n := range o.Props {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
