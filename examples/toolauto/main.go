// toolauto demonstrates tool scheduling (section 3.3): wrapper programs
// query the meta-database for permission before running, and exec run-time
// rules invoke tools automatically.  The example shows both faces:
//
//  1. a stale netlist makes the simulator wrapper refuse to run, and
//  2. a schematic check-in re-runs the netlister without designer action,
//     after which the simulation is permitted again.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/wrapper"
)

func main() {
	log.SetFlags(0)
	sess, _, err := flow.NewEDTCSession(42)
	if err != nil {
		log.Fatal(err)
	}

	// Build the front of the flow: verified model, library, synthesis
	// (which auto-netlists via the "when ckin do exec netlister" rule).
	hdl, err := sess.CheckinHDL("CPU", 80, 0)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sess.RunHDLSim(hdl); err != nil {
		log.Fatal(err)
	}
	lib, err := sess.InstallLibrary("stdlib")
	if err != nil {
		log.Fatal(err)
	}
	sch, err := sess.Synthesize(hdl, lib)
	if err != nil {
		log.Fatal(err)
	}
	nl, err := sess.Eng.DB().Latest("CPU", "netlist")
	if err != nil {
		log.Fatal("expected the exec rule to have netlisted automatically")
	}
	fmt.Printf("synthesis checked in %v; the exec rule produced %v automatically\n", sch, nl)

	res, err := sess.RunNetlistSim(nl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist simulation permitted and run: %q\n\n", res)

	// Now the model changes: a new version is checked in, the outofdate
	// wave invalidates the schematic and netlist.
	if _, err := sess.CheckinHDL("CPU", 90, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("a new model version was checked in; downstream data is now stale")

	// The wrapper's permission query refuses the stale netlist — the
	// paper's exact example: "prior to running a simulation, the wrapper
	// makes sure that the input netlist is up to date".
	if _, err := sess.RunNetlistSim(nl); errors.Is(err, wrapper.ErrStale) {
		fmt.Printf("simulator wrapper refused: %v\n\n", err)
	} else {
		log.Fatalf("expected refusal, got %v", err)
	}

	// The repair is the flow itself: re-simulate the model, re-synthesize
	// (auto-netlisting again), and the permission returns.
	hdl2, _ := sess.Eng.DB().Latest("CPU", "HDL_model")
	if _, err := sess.RunHDLSim(hdl2); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Synthesize(hdl2, lib); err != nil {
		log.Fatal(err)
	}
	nl2, err := sess.Eng.DB().Latest("CPU", "netlist")
	if err != nil {
		log.Fatal(err)
	}
	res, err = sess.RunNetlistSim(nl2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after re-synthesis the new netlist %v simulates: %q\n", nl2, res)
}
