package server

// Overload, timeout and fault hardening: connection and in-flight
// admission gates shed with an explicit "overloaded" error, a panicking
// handler costs exactly its own connection, stalled and silent peers are
// disconnected by deadline, the accept loop rides out temporary errors,
// and a degraded journal refuses writes loudly while reads keep serving.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/wire"
)

func startServerWith(t *testing.T, opts ...Option) (*Server, string) {
	t.Helper()
	s := newTestServer(t, opts...)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func newTestServer(t *testing.T, opts ...Option) *Server {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng, opts...)
}

func TestMaxConnsShedsExplicitly(t *testing.T) {
	_, addr := startServerWith(t, WithLimits(Limits{MaxConns: 2}))
	c1 := dial(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, addr)
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}

	// The third connection gets one explicit shed line, then closes —
	// load must never look like a network failure.
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("shed connection closed without the explicit overload line: %v", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "ERR") || !strings.Contains(line, "overloaded") {
		t.Fatalf("shed line = %q, want an ERR naming the overload", line)
	}
	if sc.Scan() {
		t.Errorf("shed connection stayed open: %q", sc.Text())
	}

	// Hanging up releases the slot.
	c1.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		c4, err := Dial(addr)
		if err == nil {
			pingErr := c4.Ping()
			c4.Close()
			if pingErr == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("connection slot was not released after a client hung up")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInflightGateSheds(t *testing.T) {
	s, addr := startServerWith(t, WithLimits(Limits{MaxInflight: 1}))
	block := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.testHookHandle = func(req wire.Request) {
		if req.Verb == wire.VerbPing {
			entered <- struct{}{}
			<-block
		}
	}

	c1 := dial(t, addr)
	pingDone := make(chan error, 1)
	go func() { pingDone <- c1.Ping() }()
	select {
	case <-entered:
	case <-time.After(3 * time.Second):
		t.Fatal("first request never reached the handler")
	}

	// The slot is held; the next request is refused immediately, not queued.
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "STATS\n")
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no shed response: %v", sc.Err())
	}
	if line := sc.Text(); !strings.Contains(line, "overloaded") {
		t.Fatalf("saturated server answered %q, want an explicit overload", line)
	}

	// Releasing the slot lets both the parked and new requests through.
	close(block)
	if err := <-pingDone; err != nil {
		t.Fatalf("parked request failed after the gate reopened: %v", err)
	}
	fmt.Fprintf(conn, "STATS\n")
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "OK") {
		t.Fatalf("request after release = %q, want OK", sc.Text())
	}
}

func TestHandlerPanicIsolatedToConnection(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	s, addr := startServerWith(t, WithLogger(func(f string, a ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		mu.Unlock()
	}))
	s.testHookHandle = func(req wire.Request) {
		if req.Verb == wire.VerbStats {
			panic("injected handler panic")
		}
	}

	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "STATS\n")
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if sc := bufio.NewScanner(conn); sc.Scan() {
		t.Fatalf("panicking handler produced a response: %q", sc.Text())
	}

	// Only that connection died; the server and other clients carry on.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("server down after a handler panic: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "panic") && strings.Contains(l, "injected handler panic") {
			found = true
		}
	}
	if !found {
		t.Errorf("panic was not logged with its message: %v", logs)
	}
}

func TestIdleTimeoutClosesSilentConnection(t *testing.T) {
	_, addr := startServerWith(t, WithLimits(Limits{IdleTimeout: 100 * time.Millisecond}))
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "PING\n")
	sc := bufio.NewScanner(conn)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if !sc.Scan() || !strings.Contains(sc.Text(), "pong") {
		t.Fatalf("live connection did not answer: %q", sc.Text())
	}
	// Fall silent: the idle deadline must close the connection, and well
	// before the client-side guard below expires.
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if sc.Scan() {
		t.Fatalf("idle server sent data: %q", sc.Text())
	}
	if ne, ok := sc.Err().(net.Error); ok && ne.Timeout() {
		t.Fatal("idle connection was never closed by the server")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("idle close took %v, want around the 100ms deadline", elapsed)
	}
}

func TestFollowExemptFromIdleTimeout(t *testing.T) {
	idle := 100 * time.Millisecond
	_, addr := startServerWith(t,
		WithLimits(Limits{IdleTimeout: idle}),
		WithFollowSource(parkedSource{}))
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "FOLLOW 0\n")
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(3 * time.Second))
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, "OK+") {
		t.Fatalf("FOLLOW header = %q, %v", line, err)
	}
	// A write-idle primary is healthy silence: the stream must outlive
	// many idle windows instead of being reaped by the idle deadline.
	conn.SetReadDeadline(time.Now().Add(6 * idle))
	if _, err := br.ReadString('\n'); err == nil {
		t.Fatal("unexpected data on a parked follow stream")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("follow stream closed during healthy silence: %v", err)
	}
}

// parkedSource is a FollowSource that sends nothing until the stream is
// stopped — a write-idle primary.
type parkedSource struct{}

func (parkedSource) ServeFollow(from, fromTerm int64, stop <-chan struct{}, send func(string) error) error {
	<-stop
	return nil
}

func TestWriteTimeoutUnblocksStalledClient(t *testing.T) {
	s := newTestServer(t, WithLimits(Limits{WriteTimeout: 100 * time.Millisecond}))
	// net.Pipe has no buffering: a write the peer never reads blocks
	// immediately, exactly the stalled-consumer case.
	cli, srv := net.Pipe()
	defer cli.Close()
	done := make(chan struct{})
	go func() {
		s.serveConn(srv)
		close(done)
	}()
	go fmt.Fprintf(cli, "PING\n")
	// The client never reads the response; the write deadline must free
	// the handler instead of parking it forever.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still parked on a write the client never consumed")
	}
}

func TestBatchItemBound(t *testing.T) {
	s, _ := startServerWith(t, WithLimits(Limits{MaxBatchItems: 3}))
	items := []string{"a b c", "d e f", "g h i", "j k l"}
	resp := s.Handle(wire.Request{Verb: wire.VerbBatch, Args: items})
	if resp.OK || !strings.Contains(resp.Detail, "exceeds") {
		t.Fatalf("over-bound BATCH = %+v, want a refusal naming the bound", resp)
	}
	resp = s.Handle(wire.Request{Verb: wire.VerbBatch, Args: items[:3]})
	if strings.Contains(resp.Detail, "exceeds") {
		t.Fatalf("in-bound BATCH refused: %+v", resp)
	}

	// The default bound always applies — one request must never expand
	// into unbounded queued work.
	s2, _ := startServerWith(t)
	big := make([]string, DefaultMaxBatchItems+1)
	for i := range big {
		big[i] = "a b c"
	}
	resp = s2.Handle(wire.Request{Verb: wire.VerbBatch, Args: big})
	if resp.OK || !strings.Contains(resp.Detail, "exceeds") {
		t.Fatalf("BATCH above the default bound = %+v, want a refusal", resp)
	}
}

// tempNetErr mimics the transient accept failures (EMFILE et al.) the
// accept loop must ride out.
type tempNetErr struct{}

func (tempNetErr) Error() string   { return "accept: too many open files" }
func (tempNetErr) Timeout() bool   { return false }
func (tempNetErr) Temporary() bool { return true }

// scriptedListener replays a fixed Accept sequence; a closed channel ends
// the script with a permanent error.
type scriptedListener struct {
	steps chan any // error or net.Conn
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	v, ok := <-l.steps
	if !ok {
		return nil, errors.New("use of closed network connection")
	}
	if c, isConn := v.(net.Conn); isConn {
		return c, nil
	}
	return nil, v.(error)
}

func (l *scriptedListener) Close() error   { return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{} }

func TestAcceptBackoffRecoversFromTemporaryErrors(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	s := newTestServer(t, WithLogger(func(f string, a ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		mu.Unlock()
	}))
	cli, srvConn := net.Pipe()
	defer cli.Close()
	ln := &scriptedListener{steps: make(chan any, 3)}
	ln.steps <- tempNetErr{}
	ln.steps <- tempNetErr{}
	ln.steps <- srvConn
	close(ln.steps)

	s.wg.Add(1)
	done := make(chan struct{})
	go func() {
		s.acceptLoop(ln)
		close(done)
	}()

	// The loop survived two transient failures and still serves the
	// connection that follows them.
	go fmt.Fprintf(cli, "PING\n")
	cli.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := bufio.NewReader(cli).ReadString('\n')
	if err != nil || !strings.Contains(line, "pong") {
		t.Fatalf("connection after backoff answered (%q, %v), want pong", line, err)
	}
	cli.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("accept loop did not exit on the permanent error")
	}
	mu.Lock()
	defer mu.Unlock()
	retries := 0
	for _, l := range logs {
		if strings.Contains(l, "retrying") {
			retries++
		}
	}
	if retries != 2 {
		t.Errorf("logged %d accept retries, want 2: %v", retries, logs)
	}
}

// TestJournalDegradedServerContract drives the wedged-disk contract over
// the wire: the commit that hits the fault fails its own request loudly,
// every later write is refused up front with the sticky reason, reads
// keep serving, and ROLE reports health=degraded for failover drivers.
func TestJournalDegradedServerContract(t *testing.T) {
	dir := t.TempDir()
	// Write 1 is the segment header at Open; write 2 — the first commit —
	// wedges the disk for good.
	inj := faultfs.New(faultfs.OS, faultfs.StickyFault(faultfs.OpWrite, 2, nil))
	w, db, err := journal.Open(dir, journal.Options{SnapshotEvery: -1, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Abort)
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(db, bp, engine.WithJournal(w))
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithJournal(w))
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := dial(t, addr)

	// The write that hits the fault: an explicit journal error, never an OK.
	if _, err := c.Create("CPU", "HDL_model"); err == nil {
		t.Fatal("CREATE acknowledged over a failed journal append")
	} else if !strings.Contains(err.Error(), "journal") {
		t.Fatalf("commit failure does not name the journal: %v", err)
	}

	// Degraded now: writes are refused up front with the contract line.
	if _, err := c.Create("ALU", "HDL_model"); err == nil {
		t.Fatal("degraded server accepted CREATE")
	} else if !strings.Contains(err.Error(), "degraded") || !strings.Contains(err.Error(), "journal-io") {
		t.Fatalf("refusal does not state the degraded contract: %v", err)
	}

	// Reads keep serving.
	if _, err := c.Report(); err != nil {
		t.Fatalf("degraded server stopped serving reads: %v", err)
	}

	// ROLE carries the health for failover drivers — and the client
	// parses it.
	ri, err := c.Role()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Role != "primary" || ri.Health != "degraded" || ri.Reason == "" {
		t.Fatalf("ROLE = %+v, want primary/degraded with a reason", ri)
	}
}

func TestClientOperationTimeout(t *testing.T) {
	// A server that accepts and reads but never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn)
		}
	}()

	c, err := DialTimeout(ln.Addr().String(), 2*time.Second, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("ping against a mute server = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("timeout took %v, want around the 150ms deadline", elapsed)
	}
}
