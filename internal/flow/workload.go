package flow

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/meta"
	"repro/internal/wrapper"
)

// Workload drives a wrapper session with a seeded random stream of designer
// activities over a set of blocks — the synthetic stand-in for a design
// team working on a project.  Activities respect the flow: stale or
// unverified inputs make wrappers refuse, and the workload then performs
// the repair a designer would (re-simulate, re-netlist, ...), so the event
// traffic reaching the BluePrint is realistic.
type Workload struct {
	Seed   int64
	Blocks int
	Steps  int

	// EditDefectRate is the chance (0..100) that an HDL edit introduces
	// defects.
	EditDefectRate int
}

// WorkloadStats summarizes a run.
type WorkloadStats struct {
	Edits       int
	Sims        int
	Syntheses   int
	Netlists    int
	NetlistSims int
	Placements  int
	DRCRuns     int
	LVSRuns     int
	Refusals    int // wrapper permission denials encountered (and repaired)
}

// String renders the stats for reports.
func (w WorkloadStats) String() string {
	return fmt.Sprintf("edits=%d sims=%d synth=%d netlists=%d nlsims=%d place=%d drc=%d lvs=%d refusals=%d",
		w.Edits, w.Sims, w.Syntheses, w.Netlists, w.NetlistSims, w.Placements, w.DRCRuns, w.LVSRuns, w.Refusals)
}

// Run executes the workload.  The session's engine must be loaded with the
// EDTC_example blueprint (or a compatible one declaring the same views).
func (w Workload) Run(sess *wrapper.Session) (WorkloadStats, error) {
	if w.Blocks < 1 || w.Steps < 1 {
		return WorkloadStats{}, fmt.Errorf("flow: bad workload %+v", w)
	}
	rng := rand.New(rand.NewSource(w.Seed))
	var stats WorkloadStats

	lib, err := sess.InstallLibrary("stdlib")
	if err != nil {
		return stats, err
	}

	blocks := make([]string, w.Blocks)
	for i := range blocks {
		blocks[i] = fmt.Sprintf("blk%02d", i)
	}

	// ensureGoodModel gets a block to the simulated-good state.
	ensureGoodModel := func(block string) (meta.Key, error) {
		db := sess.Eng.DB()
		if k, err := db.Latest(block, "HDL_model"); err == nil {
			if v, _, _ := db.GetProp(k, "sim_result"); v == "good" {
				return k, nil
			}
			// Re-simulate; if the data is defective, fix it first.
			if res, err := sess.RunHDLSim(k); err == nil && res == "good" {
				stats.Sims++
				return k, nil
			}
			stats.Refusals++
		}
		k, err := sess.CheckinHDL(block, 20+rng.Intn(200), 0)
		if err != nil {
			return meta.Key{}, err
		}
		stats.Edits++
		if _, err := sess.RunHDLSim(k); err != nil {
			return meta.Key{}, err
		}
		stats.Sims++
		return k, nil
	}

	for step := 0; step < w.Steps; step++ {
		block := blocks[rng.Intn(len(blocks))]
		db := sess.Eng.DB()
		switch rng.Intn(8) {
		case 0, 1: // edit the model
			defects := 0
			if rng.Intn(100) < w.EditDefectRate {
				defects = rng.Intn(5) + 1
			}
			if _, err := sess.CheckinHDL(block, 20+rng.Intn(200), defects); err != nil {
				return stats, err
			}
			stats.Edits++
		case 2: // simulate the model
			k, err := db.Latest(block, "HDL_model")
			if err != nil {
				continue
			}
			if _, err := sess.RunHDLSim(k); err != nil {
				return stats, err
			}
			stats.Sims++
		case 3: // synthesize
			hdl, err := ensureGoodModel(block)
			if err != nil {
				return stats, err
			}
			if _, err := sess.Synthesize(hdl, lib); err != nil {
				if errors.Is(err, wrapper.ErrStale) || errors.Is(err, wrapper.ErrNotReady) {
					stats.Refusals++
					continue
				}
				return stats, err
			}
			stats.Syntheses++
		case 4: // netlist
			sch, err := db.Latest(block, "schematic")
			if err != nil {
				continue
			}
			if _, err := sess.RunNetlister(sch); err != nil {
				if errors.Is(err, wrapper.ErrStale) {
					stats.Refusals++
					continue
				}
				return stats, err
			}
			stats.Netlists++
		case 5: // simulate the netlist
			nl, err := db.Latest(block, "netlist")
			if err != nil {
				continue
			}
			if _, err := sess.RunNetlistSim(nl); err != nil {
				if errors.Is(err, wrapper.ErrStale) {
					stats.Refusals++
					continue
				}
				return stats, err
			}
			stats.NetlistSims++
		case 6: // place & route
			nl, err := db.Latest(block, "netlist")
			if err != nil {
				continue
			}
			if _, err := sess.PlaceRoute(nl); err != nil {
				if errors.Is(err, wrapper.ErrStale) || errors.Is(err, wrapper.ErrNotReady) {
					stats.Refusals++
					continue
				}
				return stats, err
			}
			stats.Placements++
		case 7: // verification on the latest layout
			lay, err := db.Latest(block, "layout")
			if err != nil {
				continue
			}
			if _, err := sess.RunDRC(lay); err != nil {
				return stats, err
			}
			stats.DRCRuns++
			if nl, err := db.Latest(block, "netlist"); err == nil {
				if _, err := sess.RunLVS(lay, nl); err != nil {
					return stats, err
				}
				stats.LVSRuns++
			}
		}
	}
	return stats, nil
}
