// Command damocles runs the DAMOCLES project server: it loads a BluePrint
// policy file and an optional saved meta-database, listens for wrapper
// connections, and processes design events (Figure 1 of the paper).
//
// Usage:
//
//	damocles [-addr host:port] [-blueprint file] [-db file | -journal dir [-fsync]] [-ack n [-ack-timeout d]] [-follow-ping d] [-max-conns n] [-idle-timeout d] [-write-timeout d] [-trace]
//	damocles -follow primary:port -journal dir [-addr host:port] [-blueprint file] [-stall-timeout d] [-follow-ping d]
//	damocles -promote follower:port
//
// With no -blueprint, the EDTC_example policy from section 3.4 of the
// paper is loaded.  With -db, the meta-database is loaded at startup (if
// the file exists) and saved back on SIGINT/SIGTERM shutdown — the
// original stop-the-world persistence.  With -journal, the database lives
// in an append-only record log with periodic snapshots under the given
// directory: every acknowledged mutation is handed to the operating
// system before its response, so a crashed process (even SIGKILL)
// restarts into the exact acknowledged state by loading the newest
// snapshot and replaying the record tail.  Surviving an OS crash or
// power loss additionally needs -fsync, which forces every commit to
// stable storage at a per-request latency cost.  A journaled server is
// also a replication primary: followers attach with the FOLLOW verb.
//
// With -ack n, a primary additionally holds each write's acknowledgement
// until n follower watermarks cover its LSN; a write that cannot gather
// its quorum within -ack-timeout degrades to an explicit "quorum-timeout"
// error (the write is committed locally, never silently lost).
//
// The overload flags harden the serving plane: -max-conns sheds excess
// connections with an explicit "overloaded" error, -idle-timeout closes
// connections whose next request never arrives, and -write-timeout closes
// clients too slow to consume their responses — each misbehaving client
// costs exactly its own connection, never the node.  If the journal disk
// fails (ENOSPC that compaction cannot fix, a failed fsync), the node
// flips to an explicit degraded state: writes are refused with a
// journal-io error, reads keep serving, and ROLE reports
// health=degraded — see docs/OPERATIONS.md.
//
// Replication streams carry a liveness contract: a serving node pings
// idle FOLLOW streams every -follow-ping (so silence is never healthy),
// and a follower declares a stream that stays silent past -stall-timeout
// dead — it tears the connection down, counts a stall, reconnects with
// backoff, and meanwhile ROLE reports staleness=<ms>, the wall-clock age
// of its last upstream freshness evidence.  This is what turns a
// half-open TCP link after a partition from an invisible hazard into a
// bounded, observable event; see docs/REPLICATION.md.
//
// With -follow, the process runs as a replication follower instead: it
// mirrors the primary's record stream into its own -journal directory
// (resuming from the persisted applied position across restarts, even
// after SIGKILL) and serves the read verbs — REPORT, GAP, STATE, LSN,
// ROLE — from the replicated database while refusing writes.  A follower
// also serves FOLLOW from its own journal, so followers chain: a
// downstream replica may point at any node that shares its history.  The
// PROMOTE verb (or damocles -promote, which sends it) flips a follower
// into a full primary under a bumped election term; the deposed primary's
// divergent tail is then fenced off by term checks.  See
// docs/REPLICATION.md and docs/FAILOVER.md.
//
// On SIGINT/SIGTERM both modes shut down gracefully — the journal is
// flushed and committed (the follower's applied marker with it) before
// exit; a second signal force-exits without the clean shutdown.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bpl"
	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/replica"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("damocles: ")
	addr := flag.String("addr", "127.0.0.1:7495", "listen address")
	bpFile := flag.String("blueprint", "", "BluePrint policy file (default: built-in EDTC example)")
	dbFile := flag.String("db", "", "meta-database file to load/save")
	jdir := flag.String("journal", "", "journal directory (append-only log + snapshots; excludes -db)")
	fsync := flag.Bool("fsync", false, "with -journal, fsync every commit (survive OS crashes, not just process crashes)")
	follow := flag.String("follow", "", "run as a read-only replication follower of this primary address (requires -journal)")
	promote := flag.String("promote", "", "promote the read-only follower at this address to primary, then exit")
	ack := flag.Int("ack", 0, "hold each write until this many follower watermarks cover it (0: no quorum gate)")
	ackTimeout := flag.Duration("ack-timeout", 5*time.Second, "with -ack, degrade to an explicit quorum-timeout error after this long")
	stallTimeout := flag.Duration("stall-timeout", replica.DefaultStallTimeout, "with -follow, declare a silent replication stream dead after this long, count a stall, and reconnect (0: never — the legacy unbounded read)")
	followPing := flag.Duration("follow-ping", replica.DefaultPingInterval, "liveness ping cadence on idle FOLLOW streams this node serves (0: silent idle)")
	maxConns := flag.Int("max-conns", 0, "shed connections past this count with an explicit overloaded error (0: unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close a connection whose next request does not arrive in time (0: never)")
	writeTimeout := flag.Duration("write-timeout", 0, "close a connection that stalls a response write this long (0: never)")
	trace := flag.Bool("trace", false, "log engine trace to stderr")
	flag.Parse()

	limits := server.Limits{MaxConns: *maxConns, IdleTimeout: *idleTimeout, WriteTimeout: *writeTimeout}
	if *promote != "" {
		if err := runPromote(*promote); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *follow != "" {
		if *dbFile != "" {
			log.Fatal("-follow replicates into -journal; -db does not apply")
		}
		if err := runFollower(*addr, *bpFile, *jdir, *follow, *fsync, *ack, *ackTimeout, *stallTimeout, *followPing, limits, *trace); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := run(*addr, *bpFile, *dbFile, *jdir, *fsync, *ack, *ackTimeout, *followPing, limits, *trace); err != nil {
		log.Fatal(err)
	}
}

// runPromote is the one-shot failover client: send PROMOTE to a follower
// and report the new term.
func runPromote(addr string) error {
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	term, lsn, err := c.Promote()
	if err != nil {
		return err
	}
	log.Printf("promoted %s: term %d, bump record at lsn %d", addr, term, lsn)
	return nil
}

// watchSignals relays the first SIGINT/SIGTERM on the returned channel
// and force-exits the process on a second — the escape hatch when a
// graceful shutdown wedges.
func watchSignals() <-chan struct{} {
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ch := make(chan struct{})
	go func() {
		<-sig
		close(ch)
		<-sig
		log.SetOutput(os.Stderr)
		log.Print("second signal: exiting without a clean shutdown")
		os.Exit(1)
	}()
	return ch
}

// runFollower mirrors a primary's journal stream into jdir and serves the
// read verbs from the replicated database.  The follower also serves
// FOLLOW from its own journal (follower chaining) and accepts PROMOTE.
func runFollower(addr, bpFile, jdir, primary string, fsync bool, ack int, ackTimeout, stall, ping time.Duration, limits server.Limits, trace bool) error {
	if jdir == "" {
		return fmt.Errorf("-follow requires -journal DIR for the replica's local log")
	}
	bp, err := cli.LoadBlueprint(bpFile)
	if err != nil {
		return err
	}
	fol, err := replica.Start(jdir, primary, journal.Options{Fsync: fsync},
		replica.WithStallTimeout(stall))
	if err != nil {
		return err
	}
	// Streams this node serves onward (chaining now, primary duty after a
	// promotion) carry the same liveness cadence it expects upstream.
	newSource := func(w *journal.Writer) *replica.Source {
		s := replica.NewSource(w)
		s.SetPing(ping)
		return s
	}
	log.Printf("following %s from applied lsn %d: %+v", primary, fol.AppliedLSN(), fol.DB().Stats())
	var engOpts []engine.Option
	if trace {
		engOpts = append(engOpts, engine.WithTracer(logTracer{}))
	}
	eng, err := engine.New(fol.DB(), bp, engOpts...)
	if err != nil {
		fol.Close()
		return err
	}
	// The promotion hook is built here because the daemon owns the
	// replication plumbing: stop the apply loop, bump the term (the
	// journal's term-bump record is the atomic hinge — a SIGKILL before
	// its commit restarts as a follower, after it as a primary), and hand
	// the now-primary journal to the engine and the server.
	hook := func() (server.Promotion, error) {
		term, lsn, err := fol.Promote()
		if err != nil {
			return server.Promotion{}, err
		}
		w := fol.Writer()
		eng.AttachJournal(w)
		log.Printf("promoted: term %d, bump record at lsn %d", term, lsn)
		return server.Promotion{Journal: w, Source: newSource(w), Term: term, LSN: lsn}, nil
	}
	srv := server.New(eng,
		server.WithReadOnly(fol),
		// Chaining: serve FOLLOW from the follower's own journal.  The
		// tailer never passes the local commit watermark, so a downstream
		// replica can never get ahead of this node's applied position.
		server.WithFollowSource(newSource(fol.Writer())),
		server.WithPromote(hook),
		// Dormant while read-only; gates writes after a promotion.
		server.WithQuorum(ack, ackTimeout),
		server.WithLimits(limits))
	bound, err := srv.Listen(addr)
	if err != nil {
		fol.Close()
		return err
	}
	log.Printf("replica of %s serving on %s", primary, bound)

	sig := watchSignals()
	promoted := false
	select {
	case <-sig:
		log.Printf("shutting down")
	case <-fol.Done():
		if !fol.Promoted() {
			// The loop only stops on its own for a terminal error (gap,
			// refusal, divergent history); dying loudly beats serving
			// ever-staler reads that look healthy.
			err := fol.Err()
			srv.Close()
			fol.Close()
			if err == nil {
				err = fmt.Errorf("replication loop stopped")
			}
			return fmt.Errorf("replication failed at applied lsn %d: %w", fol.AppliedLSN(), err)
		}
		// Promotion flipped this process into a primary; keep serving
		// under the new role until a signal arrives.
		promoted = true
		<-sig
		log.Printf("shutting down")
	}
	if err := srv.Close(); err != nil {
		if promoted {
			fol.Writer().Abort()
		} else {
			fol.Close()
		}
		return err
	}
	if promoted {
		// The journal moved to the primary plane at promotion; close it
		// directly (Follower.Close must not touch it any more).
		jw := fol.Writer()
		if err := jw.Close(); err != nil {
			return err
		}
		log.Printf("journal closed at lsn %d (term %d): %+v", jw.LastLSN(), jw.Term(), fol.DB().Stats())
		return nil
	}
	if err := fol.Close(); err != nil {
		return err
	}
	st := fol.Stats()
	log.Printf("follower closed at applied lsn %d (connects=%d bootstraps=%d records=%d acks=%d stalls=%d): %+v",
		fol.AppliedLSN(), st.Connects, st.Bootstraps, st.Records, st.Acks, st.Stalls, fol.DB().Stats())
	return nil
}

func run(addr, bpFile, dbFile, jdir string, fsync bool, ack int, ackTimeout, ping time.Duration, limits server.Limits, trace bool) error {
	if dbFile != "" && jdir != "" {
		return fmt.Errorf("-db and -journal are mutually exclusive persistence modes")
	}
	if ack > 0 && jdir == "" {
		return fmt.Errorf("-ack needs -journal (quorum acks gate journaled writes)")
	}
	bp, err := cli.LoadBlueprint(bpFile)
	if err != nil {
		return err
	}
	for _, d := range bpl.Analyze(bp) {
		log.Printf("blueprint %s: %s", bp.Name, d)
	}

	db := meta.NewDB()
	var jw *journal.Writer
	if jdir != "" {
		var err error
		jw, db, err = journal.Open(jdir, journal.Options{Fsync: fsync})
		if err != nil {
			return err
		}
		log.Printf("recovered journal %s at lsn %d (term %d): %+v", jdir, jw.LastLSN(), jw.Term(), db.Stats())
	} else if dbFile != "" {
		f, err := os.Open(dbFile)
		switch {
		case err == nil:
			db, err = meta.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("load %s: %w", dbFile, err)
			}
			log.Printf("loaded %s: %+v", dbFile, db.Stats())
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("%s not found, starting empty", dbFile)
		default:
			return err
		}
	}

	var opts []engine.Option
	if trace {
		opts = append(opts, engine.WithTracer(logTracer{}))
	}
	srvOpts := []server.Option{server.WithLimits(limits)}
	if jw != nil {
		opts = append(opts, engine.WithJournal(jw))
		src := replica.NewSource(jw)
		src.SetPing(ping)
		srvOpts = append(srvOpts,
			server.WithJournal(jw),
			// A journaled server is a replication primary for free: the
			// FOLLOW verb tails the same log that makes it durable.
			server.WithFollowSource(src),
			server.WithQuorum(ack, ackTimeout))
	}
	eng, err := engine.New(db, bp, opts...)
	if err != nil {
		return err
	}
	srv := server.New(eng, srvOpts...)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("project %s serving on %s", bp.Name, bound)

	<-watchSignals()
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			return err
		}
		log.Printf("journal closed at lsn %d: %+v", jw.LastLSN(), db.Stats())
	}
	if dbFile != "" {
		f, err := os.Create(dbFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		log.Printf("saved %s: %+v", dbFile, db.Stats())
	}
	return nil
}

// logTracer streams engine trace entries to the log.
type logTracer struct{}

func (logTracer) Trace(e engine.TraceEntry) { log.Print(e.String()) }
