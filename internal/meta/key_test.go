package meta

import (
	"errors"
	"testing"
)

func TestKeyString(t *testing.T) {
	k := Key{Block: "reg", View: "verilog", Version: 4}
	if got, want := k.String(), "reg,verilog,4"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseKey(t *testing.T) {
	tests := []struct {
		in      string
		want    Key
		wantErr bool
	}{
		{"reg,verilog,4", Key{"reg", "verilog", 4}, false},
		{"cpu,SCHEMA,1", Key{"cpu", "SCHEMA", 1}, false},
		{" alu , GDSII , 5 ", Key{"alu", "GDSII", 5}, false},
		{"reg,verilog", Key{}, true},
		{"reg,verilog,4,extra", Key{}, true},
		{"reg,verilog,x", Key{}, true},
		{"reg,verilog,0", Key{}, true},
		{"reg,verilog,-1", Key{}, true},
		{",verilog,1", Key{}, true},
		{"reg,,1", Key{}, true},
		{"", Key{}, true},
	}
	for _, tt := range tests {
		got, err := ParseKey(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseKey(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseKey(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	keys := []Key{
		{"cpu", "HDL_model", 1},
		{"REG", "schematic", 2},
		{"alu", "GDSII", 6},
	}
	for _, k := range keys {
		got, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
}

func TestKeyValidate(t *testing.T) {
	bad := []Key{
		{},
		{Block: "a", View: "b", Version: 0},
		{Block: "a b", View: "c", Version: 1},
		{Block: "a", View: "c,d", Version: 1},
		{Block: "a", View: "$v", Version: 1},
		{Block: "a#", View: "v", Version: 1},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", k)
		}
	}
	good := Key{Block: "cpu", View: "HDL_model", Version: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(%+v) = %v, want nil", good, err)
	}
}

func TestKeyIsZeroAndBV(t *testing.T) {
	var z Key
	if !z.IsZero() {
		t.Error("zero key IsZero() = false")
	}
	k := Key{Block: "cpu", View: "netlist", Version: 2}
	if k.IsZero() {
		t.Error("non-zero key IsZero() = true")
	}
	if bv := k.BV(); bv != (BlockView{Block: "cpu", View: "netlist"}) {
		t.Errorf("BV() = %+v", bv)
	}
}

func TestValidateNameErrors(t *testing.T) {
	if err := ValidateName(""); !errors.Is(err, ErrBadName) {
		t.Errorf("ValidateName(\"\") = %v, want ErrBadName", err)
	}
	if err := ValidateName("ok_name-1.2"); err != nil {
		t.Errorf("ValidateName(ok_name-1.2) = %v", err)
	}
}
