package cli

import (
	"fmt"
	"os"

	"repro/internal/bpl"
)

// LoadBlueprint parses the BluePrint policy in path, or the built-in EDTC
// example (section 3.4 of the paper) when path is empty — the policy
// resolution every DAMOCLES command shares.
func LoadBlueprint(path string) (*bpl.Blueprint, error) {
	src := bpl.EDTCExample
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	bp, err := bpl.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("blueprint: %w", err)
	}
	return bp, nil
}
