package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/meta"
)

// Options tunes a journal Writer.  The zero value picks sensible defaults.
type Options struct {
	// Shards is the shard count of the recovered database; 0 means
	// meta.DefaultShards.
	Shards int

	// SegmentBytes rotates the log to a fresh segment once the current one
	// reaches this size; 0 means 4 MiB.
	SegmentBytes int64

	// SnapshotEvery takes a snapshot after this many records have been
	// committed since the last one; 0 means 4096, negative disables the
	// record-count trigger.
	SnapshotEvery int64

	// SnapshotInterval additionally snapshots on a timer when records have
	// been committed since the last snapshot; 0 disables the timer.
	SnapshotInterval time.Duration

	// Fsync forces the segment file to stable storage on every Commit.
	// Off by default: a process crash (the failure the journal defends
	// against first) loses nothing without it, only an OS crash can, and
	// per-commit fsync is the dominant latency cost.  Snapshots are always
	// fsynced before they are renamed into place.
	Fsync bool
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = meta.DefaultShards
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	return o
}

// bufFlushBytes bounds the in-memory record buffer: past it, Record writes
// the buffer through even before the next Commit, so a long drain cannot
// hold an unbounded journal in memory.
const bufFlushBytes = 1 << 20

// Writer is an open journal: the meta.Recorder end that appends records,
// and the snapshot/compaction machinery behind it.  One Writer owns its
// directory; running two against the same directory corrupts the log.
//
// Record is safe to call from any goroutine (the database calls it under
// its own locks) and never performs blocking I/O beyond an occasional
// buffer spill; Commit, Snapshot and Close may block on the filesystem.
type Writer struct {
	dir string
	opt Options
	db  *meta.DB

	mu      sync.Mutex
	seg     *os.File
	segSize int64
	buf     []byte
	pending int64 // records buffered since the last flush
	ioErr   error // first write failure; sticky, surfaced by Commit
	closed  bool

	lastLSN   atomic.Int64 // newest assigned record number
	snapLSN   atomic.Int64 // LSN covered by the newest snapshot
	sinceSnap atomic.Int64 // records flushed since the newest snapshot

	snapMu sync.Mutex // serializes Snapshot
	snapCh chan struct{}
	quit   chan struct{}
	wg     sync.WaitGroup
}

// Open recovers the database persisted in dir (creating the directory if
// needed: an empty directory is an empty project) and returns a Writer
// already attached to it as its mutation recorder.  A torn final record
// left by a crash is truncated away before appending resumes.
func Open(dir string, opt Options) (*Writer, *meta.DB, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := replay(dir, opt.Shards, true)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		dir:    dir,
		opt:    opt,
		db:     st.db,
		snapCh: make(chan struct{}, 1),
		quit:   make(chan struct{}),
	}
	w.lastLSN.Store(st.lastLSN)
	w.snapLSN.Store(st.snapLSN)
	if err := w.openTail(); err != nil {
		return nil, nil, err
	}
	st.db.SetRecorder(w)
	w.wg.Add(1)
	go w.snapshotLoop()
	return w, st.db, nil
}

// openTail opens the newest segment for appending, creating the first one
// in an empty journal.  A tail torn down to less than the magic is reset.
func (w *Writer) openTail() error {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var tail string
	var best int64 = -1
	for _, e := range entries {
		if lsn, ok := parseSeqName(e.Name(), "journal-", ".log"); ok && lsn > best {
			best, tail = lsn, e.Name()
		}
	}
	if tail == "" {
		return w.newSegmentLocked()
	}
	path := filepath.Join(w.dir, tail)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	w.seg, w.segSize = f, fi.Size()
	if w.segSize < int64(len(segMagic)) {
		// Torn at creation (replay truncated it to zero): restart the
		// segment header before any record lands in it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		w.segSize = int64(len(segMagic))
	}
	return nil
}

// newSegmentLocked starts the next segment, named after the first LSN it
// can contain.  Callers hold w.mu (or are single-threaded in Open).
func (w *Writer) newSegmentLocked() error {
	if w.seg != nil {
		if err := w.seg.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		w.seg = nil
	}
	path := filepath.Join(w.dir, segmentName(w.lastLSN.Load()+1))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	w.seg, w.segSize = f, int64(len(segMagic))
	return nil
}

// DB returns the recovered database the Writer records for.
func (w *Writer) DB() *meta.DB { return w.db }

// LastLSN returns the newest assigned record number.
func (w *Writer) LastLSN() int64 { return w.lastLSN.Load() }

// SnapshotLSN returns the position the newest snapshot covers.
func (w *Writer) SnapshotLSN() int64 { return w.snapLSN.Load() }

// Record implements meta.Recorder: it stamps the record with the next LSN
// and buffers its encoding.  It is called with database locks held, so it
// must not block on the journal's own Commit I/O — it only appends to the
// buffer, spilling to the segment file when the buffer outgrows its bound.
// I/O errors are sticky and surface at the next Commit.
func (w *Writer) Record(r meta.Record) {
	w.mu.Lock()
	r.LSN = w.lastLSN.Add(1)
	w.buf = appendFrame(w.buf, encodePayload(r))
	w.pending++
	if len(w.buf) >= bufFlushBytes {
		w.flushLocked()
	}
	w.mu.Unlock()
}

// flushLocked writes the buffered records through to the segment file and
// rotates it past the size threshold.  Callers hold w.mu.  The first I/O
// failure is recorded and the journal stops accepting writes — a half
// written frame at the tail is exactly the torn-record case recovery
// already truncates, so the log stays valid up to the failure point.
func (w *Writer) flushLocked() {
	if w.ioErr != nil || len(w.buf) == 0 {
		w.buf = w.buf[:0]
		w.pending = 0
		return
	}
	if w.seg == nil {
		w.ioErr = fmt.Errorf("journal: writer is closed")
		return
	}
	n, err := w.seg.Write(w.buf)
	w.segSize += int64(n)
	w.sinceSnap.Add(w.pending)
	w.buf = w.buf[:0]
	w.pending = 0
	if err != nil {
		w.ioErr = fmt.Errorf("journal: append: %w", err)
		return
	}
	if w.opt.Fsync {
		if err := w.seg.Sync(); err != nil {
			w.ioErr = fmt.Errorf("journal: fsync: %w", err)
			return
		}
	}
	if w.segSize >= w.opt.SegmentBytes {
		if err := w.newSegmentLocked(); err != nil {
			w.ioErr = err
		}
	}
}

// Commit writes every buffered record through to the operating system.
// It is the durability point: the engine commits after each drain and the
// server after each non-drain mutation, so a state change is on disk
// before the request that caused it is acknowledged.  Commit also arms
// the snapshot trigger when enough records have accumulated.
func (w *Writer) Commit() error {
	w.mu.Lock()
	w.flushLocked()
	err := w.ioErr
	w.mu.Unlock()
	if err != nil {
		return err
	}
	if w.opt.SnapshotEvery > 0 && w.sinceSnap.Load() >= w.opt.SnapshotEvery {
		select {
		case w.snapCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// Snapshot writes a consistent whole-database snapshot and compacts the
// log behind it.  The document is collected under the database's read
// locks only — concurrent checkins proceed on other shards and are never
// blocked for the encode or the file write — and the LSN captured under
// those locks names the file, so recovery knows exactly which records the
// snapshot covers.  The write goes to a temporary file that is fsynced
// and renamed, making snapshot installation atomic under crashes.
func (w *Writer) Snapshot() error {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()

	f, err := os.CreateTemp(w.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	tmp := f.Name()
	var lsn int64
	err = w.db.SnapshotTo(f, func() { lsn = w.lastLSN.Load() })
	if err == nil {
		// Flush the log through the pinned LSN before the snapshot becomes
		// visible.  The pinned records may still sit in the in-memory
		// buffer; installing a snapshot that covers them while the tail
		// segment ends short of them would let a crash leave a log whose
		// next append is discontinuous with its last record — which a
		// later recovery must (and does) refuse.
		err = w.Commit()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if lsn <= w.snapLSN.Load() {
		// Nothing newer than the snapshot already on disk.
		os.Remove(tmp)
		return nil
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, snapshotName(lsn))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	w.snapLSN.Store(lsn)
	w.sinceSnap.Store(0)
	w.compact(lsn)
	return nil
}

// compact deletes log segments fully covered by the snapshot at lsn — a
// segment is disposable once a successor segment exists whose records all
// fit under the snapshot horizon — and every older snapshot.  Compaction
// races harmlessly with rotation: a segment created concurrently starts
// past lsn and is never considered.
func (w *Writer) compact(lsn int64) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return // compaction is best-effort; recovery tolerates extra files
	}
	var starts []int64
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "journal-", ".log"); ok {
			starts = append(starts, s)
		}
		if s, ok := parseSeqName(e.Name(), "snapshot-", ".json"); ok && s < lsn {
			os.Remove(filepath.Join(w.dir, e.Name()))
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1] <= lsn+1 {
			os.Remove(filepath.Join(w.dir, segmentName(starts[i])))
		}
	}
}

// snapshotLoop services the record-count trigger and the optional timer.
func (w *Writer) snapshotLoop() {
	defer w.wg.Done()
	var tick <-chan time.Time
	if w.opt.SnapshotInterval > 0 {
		t := time.NewTicker(w.opt.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-w.quit:
			return
		case <-w.snapCh:
		case <-tick:
			if w.sinceSnap.Load() == 0 {
				continue
			}
		}
		if err := w.Snapshot(); err != nil {
			w.mu.Lock()
			if w.ioErr == nil {
				w.ioErr = err
			}
			w.mu.Unlock()
		}
	}
}

// Close flushes the journal, writes a final snapshot (so the next Open
// replays nothing), detaches from the database and closes the segment.
// The caller must have quiesced writers first.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.ioErr
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	w.wg.Wait()

	err := w.Commit()
	if err == nil && w.lastLSN.Load() > w.snapLSN.Load() {
		// Anything beyond the newest snapshot — fresh records or a tail
		// this process merely replayed at Open — gets folded in, so the
		// next Open loads one document and replays nothing.
		err = w.Snapshot()
	}
	w.db.SetRecorder(nil)
	w.mu.Lock()
	if w.seg != nil {
		if cerr := w.seg.Close(); err == nil {
			err = cerr
		}
		w.seg = nil
	}
	w.mu.Unlock()
	return err
}
