package repro_test

// Godoc examples: compilable, asserted usage of the public facade.

import (
	"fmt"

	repro "repro"
)

// ExampleNewProject shows the minimal lifecycle: create a project from the
// paper's policy, track a design object through an event, query its state.
func ExampleNewProject() {
	proj, err := repro.NewProject(repro.EDTCExample)
	if err != nil {
		panic(err)
	}
	hdl, err := proj.Engine.CreateOID("CPU", "HDL_model", "yves")
	if err != nil {
		panic(err)
	}
	err = proj.Engine.PostAndDrain(repro.Event{
		Name: "hdl_sim", Dir: repro.DirDown, Target: hdl, Args: []string{"good"},
	})
	if err != nil {
		panic(err)
	}
	v, _, _ := proj.DB.GetProp(hdl, "sim_result")
	fmt.Println(hdl, "sim_result:", v)
	// Output: CPU,HDL_model,1 sim_result: good
}

// ExampleParseBlueprint demonstrates policy validation and canonical
// printing.
func ExampleParseBlueprint() {
	bp, err := repro.ParseBlueprint(`blueprint demo
view netlist
    property sim_result default bad
    when nl_sim do sim_result = $arg done
endview
endblueprint`)
	if err != nil {
		panic(err)
	}
	fmt.Println(bp.Name, "views:", bp.ViewNames())
	// Output: demo views: [netlist]
}

// ExampleGap shows the designers' query: what still needs modification
// before the planned state.
func ExampleGap() {
	proj, err := repro.NewProject(repro.EDTCExample)
	if err != nil {
		panic(err)
	}
	if _, err := proj.Engine.CreateOID("CPU", "schematic", "marc"); err != nil {
		panic(err)
	}
	if err := proj.Engine.Drain(); err != nil {
		panic(err)
	}
	for _, st := range repro.Gap(proj.DB, proj.Blueprint) {
		fmt.Println(st.Key, "ready:", st.Ready)
	}
	// Output: CPU,schematic,1 ready: false
}

// ExampleParseKey shows the wire syntax for OID keys used throughout the
// protocol and the postEvent command.
func ExampleParseKey() {
	k, err := repro.ParseKey("reg,verilog,4")
	if err != nil {
		panic(err)
	}
	fmt.Println(k.Block, k.View, k.Version)
	// Output: reg verilog 4
}
