package bpl

import (
	"fmt"
	"sort"
)

// Severity grades analyzer diagnostics.
type Severity uint8

const (
	// SevError marks a blueprint the engine must refuse to load.
	SevError Severity = iota
	// SevWarning marks suspicious constructs the engine tolerates.
	SevWarning
	// SevInfo marks observations useful when reviewing a policy.
	SevInfo
)

// String returns "error", "warning" or "info".
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Sev  Severity
	View string // affected view, "" for blueprint-level findings
	Msg  string
}

// String renders the diagnostic for display.
func (d Diagnostic) String() string {
	if d.View == "" {
		return fmt.Sprintf("%s: %s", d.Sev, d.Msg)
	}
	return fmt.Sprintf("%s: view %s: %s", d.Sev, d.View, d.Msg)
}

// Analyze performs semantic checks on a parsed blueprint and returns its
// findings sorted by severity.  Errors make the blueprint unusable:
// duplicate view declarations, duplicate property declarations within a
// view, a link_from naming the declaring view itself, or a let shadowing a
// declared property.  Warnings cover references to undeclared views and
// properties; infos report events that are posted but propagate through no
// link template.
func Analyze(bp *Blueprint) []Diagnostic {
	var ds []Diagnostic
	add := func(sev Severity, view, format string, args ...any) {
		ds = append(ds, Diagnostic{Sev: sev, View: view, Msg: fmt.Sprintf(format, args...)})
	}

	seenView := map[string]bool{}
	for _, v := range bp.Views {
		if seenView[v.Name] {
			add(SevError, v.Name, "duplicate view declaration")
		}
		seenView[v.Name] = true
	}

	// Event names allowed through some link template, for reachability
	// infos.
	propagated := map[string]bool{}
	for _, v := range bp.Views {
		for _, l := range v.Links {
			for _, e := range l.Propagates {
				propagated[e] = true
			}
		}
	}

	for _, v := range bp.Views {
		seenProp := map[string]bool{}
		for _, p := range v.Properties {
			if seenProp[p.Name] {
				add(SevError, v.Name, "duplicate property %q", p.Name)
			}
			seenProp[p.Name] = true
		}
		seenLet := map[string]bool{}
		for _, l := range v.Lets {
			if seenProp[l.Name] {
				add(SevError, v.Name, "let %q shadows a declared property", l.Name)
			}
			if seenLet[l.Name] {
				add(SevError, v.Name, "duplicate let %q", l.Name)
			}
			seenLet[l.Name] = true
		}
		for _, l := range v.Links {
			if l.Use {
				continue
			}
			if l.FromView == v.Name {
				add(SevError, v.Name, "link_from the view itself")
				continue
			}
			if !seenView[l.FromView] {
				add(SevWarning, v.Name, "link_from undeclared view %q", l.FromView)
			}
		}

		// References from let expressions to properties: warn when a
		// $reference names neither a property/let of the view or of the
		// default view nor a builtin.
		known := map[string]bool{}
		for _, p := range v.Properties {
			known[p.Name] = true
		}
		for _, l := range v.Lets {
			known[l.Name] = true
		}
		if dv := bp.DefaultView(); dv != nil && dv != v {
			for _, p := range dv.Properties {
				known[p.Name] = true
			}
			for _, l := range dv.Lets {
				known[l.Name] = true
			}
		}
		for _, l := range v.Lets {
			for _, ref := range ExprVars(l.Expr) {
				if !known[ref] && !builtinVar(ref) {
					add(SevWarning, v.Name, "let %q references undeclared property $%s", l.Name, ref)
				}
			}
		}

		for _, r := range v.Rules {
			for _, a := range r.Actions {
				pa, ok := a.(*PostAction)
				if !ok {
					continue
				}
				if pa.ToView != "" && !seenView[pa.ToView] {
					add(SevWarning, v.Name, "post targets undeclared view %q", pa.ToView)
				}
				if pa.ToView == "" && !propagated[pa.Event] {
					add(SevInfo, v.Name,
						"event %q is posted for propagation but no link template propagates it",
						pa.Event)
				}
			}
		}
	}

	sort.SliceStable(ds, func(i, j int) bool { return ds[i].Sev < ds[j].Sev })
	return ds
}

// HasErrors reports whether the diagnostics include at least one error.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Sev == SevError {
			return true
		}
	}
	return false
}

// builtinVar reports whether the name is one of the run-time engine's
// built-in variables, always available to rules and expressions.
func builtinVar(name string) bool {
	switch name {
	case "oid", "OID", "arg", "user", "date", "owner", "block", "view", "version", "event", "dir":
		return true
	}
	// $arg1..$argN
	if len(name) > 3 && name[:3] == "arg" {
		for _, c := range name[3:] {
			if c < '0' || c > '9' {
				return false
			}
		}
		return true
	}
	return false
}
