// Package server implements the DAMOCLES project server of Figure 1: a TCP
// daemon owning the meta-database and the BluePrint engine.  Wrapper
// programs connect, post design events, create OIDs and links, and query
// project state; the engine processes events sequentially, first-in
// first-out.
package server

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/state"
	"repro/internal/viz"
	"repro/internal/wire"
)

// Server is a running project server.
type Server struct {
	eng     *engine.Engine
	journal *journal.Writer

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup

	async    bool
	wake     chan struct{}
	quit     chan struct{}
	drainErr error
}

// Option configures a Server.
type Option func(*Server)

// WithAsyncDrain decouples event intake from processing, matching Figure 1
// literally: POST enqueues and returns immediately ("queued"), and a
// dedicated drainer goroutine processes the queue.  Clients observe
// quiescence with the SYNC verb.  Without this option every mutating
// request drains synchronously before responding.
func WithAsyncDrain() Option { return func(s *Server) { s.async = true } }

// WithJournal tells the server which journal persists its database, so
// mutations that do not ride a synchronous drain commit it before their
// response is written — LINK, SNAPSHOT, CREATE (whose OID is created
// outside the drain), and SYNC (the async mode's settlement point) — the
// same on-disk-before-ack guarantee the engine provides for event
// processing.  The engine should carry the same journal via
// engine.WithJournal.
func WithJournal(j *journal.Writer) Option { return func(s *Server) { s.journal = j } }

// New creates a server around an engine.
func New(eng *engine.Engine, opts ...Option) *Server {
	s := &Server{
		eng:   eng,
		conns: make(map[net.Conn]bool),
		wake:  make(chan struct{}, 1),
		quit:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.async {
		s.wg.Add(1)
		go s.drainLoop()
	}
	return s
}

// drainLoop is the background event processor of async mode.
func (s *Server) drainLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.wake:
			if err := s.eng.Drain(); err != nil {
				s.mu.Lock()
				s.drainErr = err
				s.mu.Unlock()
			}
		}
	}
}

// kick requests a drain: synchronously in the default mode, via the
// drainer goroutine in async mode.
func (s *Server) kick() error {
	if !s.async {
		return s.eng.Drain()
	}
	select {
	case s.wake <- struct{}{}:
	default: // a wake-up is already pending
	}
	return nil
}

// Engine exposes the underlying engine, e.g. for in-process inspection in
// tests and tools.
func (s *Server) Engine() *engine.Engine { return s.eng }

// commitJournal flushes the journal, if one is attached — called by
// mutating verbs whose changes do not pass through a drain.
func (s *Server) commitJournal() error {
	if s.journal == nil {
		return nil
	}
	return s.journal.Commit()
}

// Listen starts accepting connections on addr ("host:port"; port 0 picks a
// free port) and returns the bound address.  Serving happens on background
// goroutines; call Close to stop.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("server: already closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener and all connections and waits for handlers to
// finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	close(s.quit)
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	// Handlers have retired; park any straggling records on disk.  The
	// journal itself stays open — its owner (the daemon) closes it.
	return s.commitJournal()
}

func (s *Server) dropConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.dropConn(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		req, err := wire.ParseRequest(line)
		var resp wire.Response
		var quit bool
		if err != nil {
			resp = wire.Response{OK: false, Detail: err.Error()}
		} else {
			resp, quit = s.handle(req)
		}
		if _, err := w.WriteString(resp.Encode() + "\n"); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
		if quit {
			return
		}
	}
}

// Handle processes one request against the engine and database.  It is
// exported for in-process use (the flow simulator drives the same code path
// without TCP).
func (s *Server) Handle(req wire.Request) wire.Response {
	resp, _ := s.handle(req)
	return resp
}

func (s *Server) handle(req wire.Request) (wire.Response, bool) {
	fail := func(format string, args ...any) (wire.Response, bool) {
		return wire.Response{OK: false, Detail: fmt.Sprintf(format, args...)}, false
	}
	ok := func(format string, args ...any) (wire.Response, bool) {
		return wire.Response{OK: true, Detail: fmt.Sprintf(format, args...)}, false
	}
	switch req.Verb {
	case wire.VerbPing:
		return ok("pong")

	case wire.VerbSync:
		s.eng.WaitIdle()
		s.mu.Lock()
		err := s.drainErr
		s.drainErr = nil
		s.mu.Unlock()
		if err != nil {
			return fail("%v", err)
		}
		// SYNC is the async mode's settlement point: quiescence may be
		// observed a moment before the drainer's own commit runs, so
		// commit here too — "idle" then always means "settled and on
		// disk".
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		return ok("idle")

	case wire.VerbQuit:
		return wire.Response{OK: true, Detail: "bye"}, true

	case wire.VerbPost:
		if len(req.Args) < 3 {
			return fail("POST wants <event> <up|down> <oid> [args...]")
		}
		dir, err := bpl.ParseDirection(req.Args[1])
		if err != nil {
			return fail("%v", err)
		}
		target, err := meta.ParseKey(req.Args[2])
		if err != nil {
			return fail("%v", err)
		}
		ev := engine.Event{Name: req.Args[0], Dir: dir, Target: target, Args: req.Args[3:], User: req.User}
		if err := s.eng.Post(ev); err != nil {
			return fail("%v", err)
		}
		if err := s.kick(); err != nil {
			return fail("%v", err)
		}
		if s.async {
			return ok("queued %s", ev.Name)
		}
		return ok("posted %s", ev.Name)

	case wire.VerbBatch:
		// Many events, one round-trip, one drain — the batched form of
		// POST a hierarchy check-in uses.  Items are validated and posted
		// in order; a bad item is reported in the body without blocking
		// the rest.  The drain kicks once after every accepted item is
		// queued.
		if len(req.Args) == 0 {
			return fail("BATCH wants at least one <event dir oid [args...]> item")
		}
		body := make([]string, 0, len(req.Args))
		posted := 0
		for i, raw := range req.Args {
			it, err := wire.ParseBatchItem(raw)
			if err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			dir, err := bpl.ParseDirection(it.Dir)
			if err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			target, err := meta.ParseKey(it.OID)
			if err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			ev := engine.Event{Name: it.Event, Dir: dir, Target: target, Args: it.Args, User: req.User}
			if err := s.eng.Post(ev); err != nil {
				body = append(body, fmt.Sprintf("%d err %s", i, err))
				continue
			}
			body = append(body, fmt.Sprintf("%d ok %s", i, it.Event))
			posted++
		}
		if posted > 0 {
			if err := s.kick(); err != nil {
				return fail("%v", err)
			}
		}
		verb := "posted"
		if s.async {
			verb = "queued"
		}
		return wire.Response{OK: posted == len(req.Args),
			Detail: fmt.Sprintf("%s %d/%d", verb, posted, len(req.Args)), Body: body}, false

	case wire.VerbCreate:
		if len(req.Args) != 2 {
			return fail("CREATE wants <block> <view>")
		}
		k, err := s.eng.CreateOID(req.Args[0], req.Args[1], req.User)
		if err != nil {
			return fail("%v", err)
		}
		if err := s.kick(); err != nil {
			return fail("%v", err)
		}
		// The OID itself was created synchronously above; in async mode
		// the kick has not committed anything yet, so make the creation
		// durable before acknowledging it.
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		return ok("%s", k)

	case wire.VerbLink:
		if len(req.Args) != 3 {
			return fail("LINK wants <use|derive> <from-oid> <to-oid>")
		}
		class, err := meta.ParseLinkClass(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		from, err := meta.ParseKey(req.Args[1])
		if err != nil {
			return fail("from: %v", err)
		}
		to, err := meta.ParseKey(req.Args[2])
		if err != nil {
			return fail("to: %v", err)
		}
		id, err := s.eng.CreateLink(class, from, to)
		if err != nil {
			return fail("%v", err)
		}
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		return ok("%d", id)

	case wire.VerbState:
		if len(req.Args) != 1 {
			return fail("STATE wants <oid>")
		}
		k, err := meta.ParseKey(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		o, err := s.eng.DB().GetOID(k)
		if err != nil {
			return fail("%v", err)
		}
		st := state.Evaluate(s.eng.Blueprint(), o)
		body := []string{fmt.Sprintf("ready %v", st.Ready)}
		for _, name := range o.PropNames() {
			body = append(body, fmt.Sprintf("prop %s %s", name, wire.Quote(o.Props[name])))
		}
		for _, r := range st.Reasons {
			body = append(body, "blocking "+r)
		}
		return wire.Response{OK: true, Detail: k.String(), Body: body}, false

	case wire.VerbReport, wire.VerbGap:
		// Stream the report: each row is formatted from the live OID under
		// the shard read lock, so no property map is ever materialized —
		// only the output lines exist.  Rows arrive in shard order and are
		// key-sorted afterwards to keep the wire format stable.
		type row struct {
			key  meta.Key
			line string
		}
		var rows []row
		state.Stream(s.eng.DB(), s.eng.Blueprint(), func(st *state.OIDState) bool {
			if req.Verb == wire.VerbGap && st.Ready {
				return true
			}
			line := fmt.Sprintf("%s ready=%v", st.Key, st.Ready)
			if len(st.Reasons) > 0 {
				line += " " + wire.Quote(strings.Join(st.Reasons, "; "))
			}
			rows = append(rows, row{key: st.Key, line: line})
			return true
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].key.Less(rows[j].key) })
		body := make([]string, len(rows))
		for i, r := range rows {
			body[i] = r.line
		}
		return wire.Response{OK: true, Detail: fmt.Sprintf("%d rows", len(body)), Body: body}, false

	case wire.VerbSnapshot:
		if len(req.Args) != 2 {
			return fail("SNAPSHOT wants <name> <root-oid|*>")
		}
		name := req.Args[0]
		var cfg *meta.Configuration
		var err error
		if req.Args[1] == "*" {
			cfg, err = s.eng.DB().SnapshotQuery(name, func(*meta.OID) bool { return true })
		} else {
			var root meta.Key
			root, err = meta.ParseKey(req.Args[1])
			if err == nil {
				cfg, err = s.eng.DB().SnapshotHierarchy(name, root, meta.FollowAllLinks)
			}
		}
		if err != nil {
			return fail("%v", err)
		}
		if err := s.commitJournal(); err != nil {
			return fail("%v", err)
		}
		return ok("%d oids %d links", len(cfg.OIDs), len(cfg.Links))

	case wire.VerbStats:
		es := s.eng.Stats()
		ds := s.eng.DB().Stats()
		return ok("oids=%d links=%d posted=%d deliveries=%d propagations=%d rules=%d execs=%d",
			ds.OIDs, ds.Links, es.Posted, es.Deliveries, es.Propagations, es.RulesFired, es.Execs)

	case wire.VerbLatest:
		if len(req.Args) != 2 {
			return fail("LATEST wants <block> <view>")
		}
		k, err := s.eng.DB().Latest(req.Args[0], req.Args[1])
		if err != nil {
			return fail("%v", err)
		}
		return ok("%s", k)

	case wire.VerbProp:
		if len(req.Args) != 2 {
			return fail("PROP wants <oid> <name>")
		}
		k, err := meta.ParseKey(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		v, set, err := s.eng.DB().GetProp(k, req.Args[1])
		if err != nil {
			return fail("%v", err)
		}
		if !set {
			return ok("unset")
		}
		return ok("set %s", wire.Quote(v))

	case wire.VerbLinks:
		if len(req.Args) != 1 {
			return fail("LINKS wants <oid>")
		}
		k, err := meta.ParseKey(req.Args[0])
		if err != nil {
			return fail("%v", err)
		}
		if !s.eng.DB().HasOID(k) {
			return fail("oid %v: not found", k)
		}
		var body []string
		for _, l := range s.eng.DB().LinksOf(k) {
			line := fmt.Sprintf("%d %s %s %s", l.ID, l.Class, l.From, l.To)
			if t := l.Type(); t != "" {
				line += " type=" + wire.Quote(t)
			}
			if evs := l.PropagateList(); len(evs) > 0 {
				line += " propagates=" + wire.Quote(strings.Join(evs, ","))
			}
			body = append(body, line)
		}
		return wire.Response{OK: true, Detail: fmt.Sprintf("%d links", len(body)), Body: body}, false

	case wire.VerbDot:
		if len(req.Args) != 1 {
			return fail("DOT wants flow or state")
		}
		var doc string
		switch strings.ToLower(req.Args[0]) {
		case "flow":
			doc = viz.FlowDOT(s.eng.Blueprint())
		case "state":
			doc = viz.StateDOT(s.eng.DB(), s.eng.Blueprint())
		default:
			return fail("DOT wants flow or state")
		}
		body := strings.Split(strings.TrimRight(doc, "\n"), "\n")
		return wire.Response{OK: true, Detail: req.Args[0], Body: body}, false

	case wire.VerbBlueprint:
		src := bpl.Print(s.eng.Blueprint())
		body := strings.Split(strings.TrimRight(src, "\n"), "\n")
		return wire.Response{OK: true, Detail: s.eng.Blueprint().Name, Body: body}, false

	default:
		return fail("unknown verb %q", req.Verb)
	}
}
