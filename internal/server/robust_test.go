package server

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"
)

// rawConn opens a plain TCP connection for protocol-level abuse.
func rawConn(t *testing.T, addr string) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sc := bufio.NewScanner(conn)
	return conn, sc
}

func TestServerSurvivesGarbageLines(t *testing.T) {
	_, addr := startServer(t)
	conn, sc := rawConn(t, addr)
	lines := []string{
		"",                          // blank: ignored
		"   ",                       // whitespace: ignored
		"\"unterminated quote",      // lexical error
		"FROB a b c",                // unknown verb
		"POST",                      // missing args
		"user=",                     // user with no verb
		"POST ev down not-a-key",    // bad key
		"LINK use a,v,1",            // arity
		"STATE ghost,v,1",           // missing OID
		"SNAPSHOT onlyname",         // arity
		"DOT sideways",              // bad kind
		"PROP a,v,1 p extra-arg",    // arity
		"LATEST onlyblock",          // arity
		"CREATE bad..ok strange},{", // names survive as opaque tokens or fail cleanly
	}
	for _, line := range lines {
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		if line == "" || strings.TrimSpace(line) == "" {
			continue // no response expected for blank lines
		}
		if !sc.Scan() {
			t.Fatalf("connection died on %q", line)
		}
		resp := sc.Text()
		if !strings.HasPrefix(resp, "ERR") && !strings.HasPrefix(resp, "OK") {
			t.Errorf("line %q -> malformed response %q", line, resp)
		}
	}
	// The connection is still healthy.
	if _, err := conn.Write([]byte("PING\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), "OK") {
		t.Fatalf("PING after garbage: %q", sc.Text())
	}
}

func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	s, addr := startServer(t)
	// Half-written command, then slam the connection.
	conn, _ := rawConn(t, addr)
	if _, err := conn.Write([]byte("POST hdl_sim do")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The server keeps serving others.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	_ = s
}

func TestServerOversizeLineRejected(t *testing.T) {
	_, addr := startServer(t)
	conn, sc := rawConn(t, addr)
	// Beyond the 1 MiB scanner limit the connection is dropped rather
	// than buffering unboundedly.
	huge := strings.Repeat("x", 2*1024*1024)
	if _, err := conn.Write([]byte("PING " + huge + "\n")); err != nil {
		// Write error is acceptable: the server may close mid-write.
		return
	}
	deadline := time.Now().Add(5 * time.Second)
	conn.SetReadDeadline(deadline)
	for sc.Scan() {
		// Drain whatever the server said before closing.
	}
	// Either way, new connections still work.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestListenAfterCloseFails(t *testing.T) {
	s, _ := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen on closed server accepted")
	}
}
