package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// Policy-snapshot semantics: Drain resolves the blueprint (and its compiled
// index) once per delivery at dequeue time.  A SetBlueprint mid-drain — the
// paper's policy loosening — must govern every event dequeued afterwards,
// while a delivery already started keeps the policy it was dequeued under.

const strictChainSrc = `blueprint strict
view node
    use_link move propagates ping
    when ping do hit = yes done
endview
endblueprint`

const loosenedChainSrc = `blueprint loosened
view node
    use_link move propagates ping
endview
endblueprint`

// swapTracer calls swap exactly once, on the first delivery at trigger.
type swapTracer struct {
	trigger string
	swap    func()
	mu      sync.Mutex
	done    bool
}

func (t *swapTracer) Trace(e TraceEntry) {
	if e.Kind != TraceDeliver || e.OID != t.trigger {
		return
	}
	t.mu.Lock()
	fired := t.done
	t.done = true
	t.mu.Unlock()
	if !fired {
		t.swap()
	}
}

func TestSetBlueprintMidDrain(t *testing.T) {
	strict, err := bpl.Parse(strictChainSrc)
	if err != nil {
		t.Fatal(err)
	}
	loosened, err := bpl.Parse(loosenedChainSrc)
	if err != nil {
		t.Fatal(err)
	}

	tr := &swapTracer{}
	e, err := New(meta.NewDB(), strict, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	tr.swap = func() {
		if err := e.SetBlueprint(loosened); err != nil {
			t.Errorf("SetBlueprint mid-drain: %v", err)
		}
	}

	// A use-link chain a -> b -> c; ping propagates down it.
	var keys []meta.Key
	for _, name := range []string{"a", "b", "c"} {
		k, err := e.CreateOID(name, "node", "tess")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for i := 0; i+1 < len(keys); i++ {
		if _, err := e.CreateLink(meta.UseLink, keys[i], keys[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}

	// Swap to the loosened policy when b's delivery begins.  b was dequeued
	// under the strict policy, so its rule still fires; c is dequeued after
	// the swap and must run under the loosened policy (no rule).
	tr.trigger = keys[1].String()
	if err := e.PostAndDrain(Event{Name: "ping", Dir: bpl.DirDown, Target: keys[0]}); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{"a": true, "b": true, "c": false}
	for i, name := range []string{"a", "b", "c"} {
		_, hit, err := e.DB().GetProp(keys[i], "hit")
		if err != nil {
			t.Fatal(err)
		}
		if hit != want[name] {
			t.Errorf("%s: hit=%v, want %v", name, hit, want[name])
		}
	}
	if got := e.Blueprint(); got != loosened {
		t.Errorf("Blueprint() = %v, want the loosened blueprint", got.Name)
	}
}

// TestConcurrentEngineAccess hammers the engine's public surface from many
// goroutines; run with -race.  It asserts no deadlock, no panic, and a
// consistent final state: after everything settles, every posted event was
// delivered.
func TestConcurrentEngineAccess(t *testing.T) {
	strict, err := bpl.Parse(strictChainSrc)
	if err != nil {
		t.Fatal(err)
	}
	loosened, err := bpl.Parse(loosenedChainSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(meta.NewDB(), strict)
	if err != nil {
		t.Fatal(err)
	}
	var keys []meta.Key
	for i := 0; i < 4; i++ {
		k, err := e.CreateOID(fmt.Sprintf("blk%d", i), "node", "tess")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	for i := 0; i+1 < len(keys); i++ {
		if _, err := e.CreateLink(meta.UseLink, keys[i], keys[i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	base := e.Stats()

	const posters, rounds = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < posters; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ev := Event{Name: "ping", Dir: bpl.DirDown, Target: keys[(p+i)%len(keys)]}
				if err := e.PostAndDrain(ev); err != nil {
					t.Errorf("post: %v", err)
					return
				}
				switch i % 3 {
				case 0:
					_ = e.Stats()
					_ = e.QueueLen()
				case 1:
					bp := strict
					if i%2 == 1 {
						bp = loosened
					}
					if err := e.SetBlueprint(bp); err != nil {
						t.Errorf("set blueprint: %v", err)
						return
					}
				case 2:
					_ = e.Blueprint()
					if _, err := e.CreateOID(fmt.Sprintf("extra%d-%d", p, i), "node", "tess"); err != nil {
						t.Errorf("create: %v", err)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	e.WaitIdle()

	s := e.Stats()
	if s.Posted <= base.Posted || s.Deliveries <= base.Deliveries {
		t.Fatalf("no activity recorded: %+v", s)
	}
	if e.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", e.QueueLen())
	}
	// Every posted delivery was either delivered in place or dropped as a
	// duplicate within its wave; nothing may be lost.
	if s.Deliveries < s.Posted {
		t.Fatalf("deliveries %d < posted %d", s.Deliveries, s.Posted)
	}
}
