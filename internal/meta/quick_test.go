package meta

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on core meta-database invariants.

// TestQuickVersionChainsContiguous checks that any interleaving of
// NewVersion calls across several chains yields, for every chain, version
// numbers 1..n with no gaps, and that Latest always reports the count.
func TestQuickVersionChainsContiguous(t *testing.T) {
	f := func(ops []uint8) bool {
		db := NewDB()
		blocks := []string{"cpu", "reg", "alu"}
		views := []string{"HDL_model", "SCHEMA", "netlist"}
		counts := map[BlockView]int{}
		for _, op := range ops {
			b := blocks[int(op)%len(blocks)]
			v := views[int(op/3)%len(views)]
			k, err := db.NewVersion(b, v)
			if err != nil {
				return false
			}
			bv := BlockView{Block: b, View: v}
			counts[bv]++
			if k.Version != counts[bv] {
				return false
			}
		}
		for bv, n := range counts {
			vs := db.Versions(bv.Block, bv.View)
			if len(vs) != n {
				return false
			}
			for i, v := range vs {
				if v != i+1 {
					return false
				}
			}
			latest, err := db.Latest(bv.Block, bv.View)
			if err != nil || latest.Version != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickReachableTerminatesAndIsClosed builds random link graphs —
// including cycles — and checks that Reachable terminates, includes the
// root, and is transitively closed.
func TestQuickReachableTerminatesAndIsClosed(t *testing.T) {
	f := func(seed int64, nOIDs, nLinks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOIDs)%20 + 2
		m := int(nLinks) % 60
		db := NewDB()
		keys := make([]Key, n)
		for i := range keys {
			k, err := db.NewVersion("b"+string(rune('a'+i%26)), "v")
			if err != nil {
				return false
			}
			keys[i] = k
		}
		for i := 0; i < m; i++ {
			from := keys[rng.Intn(n)]
			to := keys[rng.Intn(n)]
			if from == to {
				continue
			}
			// Derive links have no view constraint; ignore duplicates.
			if _, err := db.AddLink(DeriveLink, from, to, "", nil, nil); err != nil {
				return false
			}
		}
		root := keys[rng.Intn(n)]
		reach := db.Reachable(root, FollowAllLinks)
		inReach := map[Key]bool{}
		for _, k := range reach {
			inReach[k] = true
		}
		if !inReach[root] {
			return false
		}
		// Closure: every link leaving a reachable OID lands in the set.
		closed := true
		for _, k := range reach {
			for _, l := range db.LinksFrom(k) {
				if !inReach[l.To] {
					closed = false
				}
			}
		}
		return closed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSaveLoadIdempotent round-trips randomly built databases through
// Save/Load and compares observable state.
func TestQuickSaveLoadIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		var keys []Key
		for i := 0; i < rng.Intn(15)+1; i++ {
			k, err := db.NewVersion("blk"+string(rune('a'+rng.Intn(4))), "view"+string(rune('a'+rng.Intn(3))))
			if err != nil {
				return false
			}
			if rng.Intn(2) == 0 {
				if err := db.SetProp(k, "p", "v"); err != nil {
					return false
				}
			}
			keys = append(keys, k)
		}
		for i := 0; i < rng.Intn(10); i++ {
			a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
			if a == b {
				continue
			}
			if _, err := db.AddLink(DeriveLink, a, b, "t", []string{"outofdate"}, nil); err != nil {
				return false
			}
		}
		roundTripped := func(d *DB) *DB {
			var buf bytes.Buffer
			if err := d.Save(&buf); err != nil {
				t.Fatal(err)
			}
			d2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			return d2
		}
		db2 := roundTripped(db)
		if db.Stats() != db2.Stats() {
			return false
		}
		k1, k2 := db.Keys(), db2.Keys()
		if len(k1) != len(k2) {
			return false
		}
		for i := range k1 {
			if k1[i] != k2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickShardCountInvariant builds the same randomly generated database
// under shard counts 1, 4 and 64 and checks that every query and link walk
// — including walks whose links cross shards — yields identical results.
// Shard count must be a pure performance knob.
func TestQuickShardCountInvariant(t *testing.T) {
	build := func(db *DB, rng *rand.Rand) ([]Key, bool) {
		blocks := []string{"cpu", "alu", "reg", "shifter", "dec", "mmu"}
		views := []string{"HDL_model", "schematic", "netlist"}
		var keys []Key
		for i := 0; i < rng.Intn(25)+5; i++ {
			k, err := db.NewVersion(blocks[rng.Intn(len(blocks))], views[rng.Intn(len(views))])
			if err != nil {
				return nil, false
			}
			if rng.Intn(2) == 0 {
				if err := db.SetProp(k, "p", fmt.Sprintf("v%d", rng.Intn(3))); err != nil {
					return nil, false
				}
			}
			keys = append(keys, k)
		}
		for i := 0; i < rng.Intn(30); i++ {
			a, b := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
			if a == b {
				continue
			}
			props := map[string]string{PropType: TypeEquivalence}
			if rng.Intn(3) > 0 {
				props = nil
			}
			if _, err := db.AddLink(DeriveLink, a, b, "t", []string{"outofdate"}, props); err != nil {
				return nil, false
			}
		}
		// A couple of retargets and deletions exercise the cross-shard
		// mutation protocol too.
		ids := db.LinkIDs()
		for i := 0; i < rng.Intn(4) && len(ids) > 0; i++ {
			id := ids[rng.Intn(len(ids))]
			if rng.Intn(2) == 0 {
				_ = db.DeleteLink(id)
			} else if l, err := db.GetLink(id); err == nil {
				_ = db.RetargetLink(id, l.To, keys[rng.Intn(len(keys))])
			}
		}
		return keys, true
	}

	f := func(seed int64) bool {
		dbs := []*DB{NewDBWithShards(1), NewDBWithShards(4), NewDBWithShards(64)}
		var ref []Key
		for i, db := range dbs {
			keys, ok := build(db, rand.New(rand.NewSource(seed)))
			if !ok {
				return false
			}
			if i == 0 {
				ref = keys
			}
		}
		fingerprint := func(db *DB) string {
			var sb bytes.Buffer
			for _, k := range db.Keys() {
				fmt.Fprintf(&sb, "K%v;", k)
			}
			for _, o := range db.LatestOIDs() {
				fmt.Fprintf(&sb, "L%v=%v;", o.Key, o.Props)
			}
			for _, id := range db.LinkIDs() {
				l, err := db.GetLink(id)
				if err != nil {
					return "err"
				}
				fmt.Fprintf(&sb, "E%d:%v->%v;", id, l.From, l.To)
			}
			for _, root := range ref {
				if !db.HasOID(root) {
					continue
				}
				fmt.Fprintf(&sb, "R%v=%v;", root, db.Reachable(root, FollowAllLinks))
				fmt.Fprintf(&sb, "D%v=%v;", root, db.Dependents(root, FollowAllLinks))
				fmt.Fprintf(&sb, "Q%v=%v;", root, db.Equivalents(root))
				for _, l := range db.LinksOf(root) {
					fmt.Fprintf(&sb, "O%d;", l.ID)
				}
			}
			fmt.Fprintf(&sb, "S%+v", db.Stats())
			return sb.String()
		}
		want := fingerprint(dbs[0])
		for _, db := range dbs[1:] {
			if got := fingerprint(db); got != want {
				t.Logf("seed %d: shard fingerprints diverge", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
