package server

import (
	"strings"
	"testing"

	"repro/internal/meta"
)

func mustParse(t *testing.T, s string) meta.Key {
	t.Helper()
	k, err := meta.ParseKey(s)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestLinksVerb(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.User = "x"
	hdl, err := c.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := c.Create("CPU", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("derive", hdl, sch); err != nil {
		t.Fatal(err)
	}
	lines, err := c.Links(sch)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("links = %v", lines)
	}
	line := lines[0]
	for _, want := range []string{"derive", "CPU,HDL_model,1", "CPU,schematic,1", "type=derived", "propagates=outofdate"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// Both endpoints report the link.
	lines2, err := c.Links(hdl)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines2) != 1 {
		t.Errorf("hdl links = %v", lines2)
	}
	// Missing OID errors.
	if _, err := c.Links(mustParse(t, "ghost,schematic,1")); err == nil {
		t.Error("missing OID accepted")
	}
}
