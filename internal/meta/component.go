package meta

import "sync"

// Block connectivity tracking for the engine's parallel wave scheduler.
//
// Two event waves may drain concurrently only if they cannot touch a common
// OID.  Propagation crosses a link only when the event name is in the
// link's PROPAGATE set (stamped from the blueprint's compiled link
// templates at creation), and rule-posted events always target a view of
// the same block — so the set of blocks a wave can reach is bounded by the
// connected component of its seed block in the graph whose edges are links
// with a non-empty PROPAGATE set.
//
// The DB maintains that component structure as a union-find over block
// names: AddLink, RetargetLink and SetLinkPropagates merge the endpoint
// blocks (before the link becomes visible, so the analysis never
// underestimates), and nothing ever splits a component — deleting or
// pruning links leaves the partition conservatively coarse.  Components
// therefore only merge, which is exactly the monotonicity the scheduler's
// cached footprints rely on: ComponentGen bumps on every merge so cached
// roots can be revalidated cheaply.

// Component returns a canonical representative of the block's connected
// component under propagating links.  Two blocks can share a propagation
// path only if their Component results are equal (the converse does not
// hold: the analysis is conservative and never splits).  A block with no
// propagating links is its own component.
func (db *DB) Component(block string) string {
	if db.compGen.Load() == 0 {
		// No propagating link has ever merged two blocks: every block is
		// its own component, no lock needed.  (A merge racing with this
		// read is indistinguishable from reading just before it.)
		return block
	}
	db.compMu.Lock()
	defer db.compMu.Unlock()
	return db.findLocked(block)
}

// SameComponent reports whether two blocks may be connected by propagating
// links.
func (db *DB) SameComponent(a, b string) bool {
	if a == b {
		return true
	}
	db.compMu.Lock()
	defer db.compMu.Unlock()
	return db.findLocked(a) == db.findLocked(b)
}

// ComponentGen returns a generation counter that increases whenever two
// components merge.  Callers caching Component results revalidate when the
// generation moves.
func (db *DB) ComponentGen() int64 { return db.compGen.Load() }

// findLocked resolves the root of a block with path halving.  Callers hold
// compMu.  Unknown blocks are their own root and are not materialized.
func (db *DB) findLocked(block string) string {
	cur := block
	for {
		parent, ok := db.comp[cur]
		if !ok || parent == cur {
			return cur
		}
		if gp, ok := db.comp[parent]; ok && gp != parent {
			db.comp[cur] = gp // path halving
			cur = gp
			continue
		}
		cur = parent
	}
}

// unionBlocks merges the components of two blocks.
func (db *DB) unionBlocks(a, b string) {
	if a == b {
		return
	}
	db.compMu.Lock()
	ra, rb := db.findLocked(a), db.findLocked(b)
	if ra != rb {
		db.comp[ra] = rb
		db.compGen.Add(1)
	}
	db.compMu.Unlock()
}

// ComponentChurn counts propagating-link removals and retargets since the
// last RebuildComponents — mutations the merge-only union-find cannot
// reflect, each a chance that the partition is now coarser than the real
// link graph.  The engine uses it to schedule periodic exact rebuilds.
func (db *DB) ComponentChurn() int64 { return db.compChurn.Load() }

// RebuildComponents recomputes the block partition exactly from the
// current propagating links, replacing the merge-only approximation —
// components that converged toward one blob as links were pruned or
// retargeted split apart again, restoring drain parallelism on long-lived
// graphs.  It locks the whole database for the scan (O(links)), so
// callers should run it at quiet points; the engine triggers it at drain
// start when the queue holds only fresh seed events (a wave that already
// propagated across a since-removed link must keep its conservative
// footprint) and enough churn has accumulated or the blueprint was
// reloaded.
func (db *DB) RebuildComponents() {
	db.lockAll()
	comp := make(map[string]string)
	var find func(string) string
	find = func(b string) string {
		for {
			p, ok := comp[b]
			if !ok || p == b {
				return b
			}
			if gp, ok := comp[p]; ok && gp != p {
				comp[b] = gp
				b = gp
				continue
			}
			b = p
		}
	}
	for _, st := range db.stripes {
		for _, l := range st.links {
			if len(l.Propagates) == 0 || l.From.Block == l.To.Block {
				continue
			}
			ra, rb := find(l.From.Block), find(l.To.Block)
			if ra != rb {
				comp[ra] = rb
			}
		}
	}
	db.compMu.Lock()
	db.comp = comp
	db.compMu.Unlock()
	// Bump after the swap so schedulers that cached roots under the old
	// generation revalidate against the rebuilt partition.
	db.compGen.Add(1)
	db.compChurn.Store(0)
	// With MVCC on, audit the versioned adjacency index against the live
	// maps and re-publish any diverged posting — the same safety-net role
	// the exact union-find pass above plays for the merge-only partition.
	// Incremental maintenance keeps the index exact, so the scan normally
	// publishes nothing.
	tok := db.beginMut("", 0, nil)
	if tok.on {
		for _, sh := range db.shards {
			h := sh.hist.Load()
			for k, refs := range sh.outLinks {
				if !adjCurrent(&h.out, k, refs) {
					db.histAdjPush(sh, k, tok.s, true)
				}
			}
			for k, refs := range sh.inLinks {
				if !adjCurrent(&h.in, k, refs) {
					db.histAdjPush(sh, k, tok.s, false)
				}
			}
			// Postings whose key has no live refs anymore must read empty.
			h.out.Range(func(ki, _ any) bool {
				k := ki.(Key)
				if len(sh.outLinks[k]) == 0 && !adjCurrent(&h.out, k, nil) {
					db.histAdjPush(sh, k, tok.s, true)
				}
				return true
			})
			h.in.Range(func(ki, _ any) bool {
				k := ki.(Key)
				if len(sh.inLinks[k]) == 0 && !adjCurrent(&h.in, k, nil) {
					db.histAdjPush(sh, k, tok.s, false)
				}
				return true
			})
		}
	}
	db.endMut(tok)
	db.unlockAll()
}

// adjCurrent reports whether the head of an adjacency posting matches the
// live ref list exactly (same link objects, same order).
func adjCurrent(m *sync.Map, k Key, refs []linkRef) bool {
	hi, ok := m.Load(k)
	if !ok {
		return len(refs) == 0
	}
	x := hi.(*hist[[]*Link]).at(1 << 62)
	if x == nil || x.del {
		return len(refs) == 0
	}
	if len(x.val) != len(refs) {
		return false
	}
	for i, r := range refs {
		if x.val[i] != r.l {
			return false
		}
	}
	return true
}
