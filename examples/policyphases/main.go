// policyphases demonstrates per-phase project policies (end of section
// 3.2): "early in the design cycle, when the data has not yet been
// validated and changes occur very often, the BluePrint can be 'loosened'
// thereby limiting change propagation."  The same design and the same
// check-in produce a full invalidation wave under the signoff policy and
// almost none under the exploration policy — swapped at run time by
// re-initializing the BluePrint.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/flow"
)

const loosePolicy = `blueprint exploration_phase
# Exploration: check-ins do not invalidate derived data; designers churn
# freely and re-verify later.
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view node
    use_link move propagates outofdate
endview
endblueprint
`

func main() {
	log.SetFlags(0)

	strictBP, err := flow.PropagationBlueprint("signoff_phase", "node", []string{"outofdate"})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := repro.NewEngine(repro.NewDB(), strictBP)
	if err != nil {
		log.Fatal(err)
	}
	root, all, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: 4, Fanout: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design hierarchy: %d blocks\n\n", len(all))

	countStale := func() int {
		n := 0
		for _, k := range all {
			if v, _, _ := eng.DB().GetProp(k, "uptodate"); v == "false" {
				n++
			}
		}
		return n
	}
	revalidate := func() {
		for _, k := range all {
			if err := eng.DB().SetProp(k, "uptodate", "true"); err != nil {
				log.Fatal(err)
			}
		}
	}
	ckin := repro.Event{Name: repro.EventCheckin, Dir: repro.DirDown, Target: root, User: "demo"}

	// Phase 1: signoff policy — every change propagates.
	before := eng.Stats()
	if err := eng.PostAndDrain(ckin); err != nil {
		log.Fatal(err)
	}
	after := eng.Stats()
	fmt.Println("signoff policy (strict):")
	fmt.Printf("  one root check-in invalidated %d blocks (%d deliveries)\n\n",
		countStale(), after.Deliveries-before.Deliveries)

	// Phase switch: the administrator re-initializes the BluePrint.
	looseBP, err := repro.ParseBlueprint(loosePolicy)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetBlueprint(looseBP); err != nil {
		log.Fatal(err)
	}
	revalidate()

	before = eng.Stats()
	if err := eng.PostAndDrain(ckin); err != nil {
		log.Fatal(err)
	}
	after = eng.Stats()
	fmt.Println("exploration policy (loosened):")
	fmt.Printf("  the same check-in invalidated %d blocks (%d deliveries)\n",
		countStale(), after.Deliveries-before.Deliveries)
	fmt.Println("\nsame data, same event, different project policy — the flow definition")
	fmt.Println("lives in the BluePrint file, not in the tools.")
}
