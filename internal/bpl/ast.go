package bpl

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Blueprint is the parsed form of one "blueprint ... endblueprint" block.
// Blueprints are immutable once parsed; mutating one after Index has been
// called leaves the cached index stale.
type Blueprint struct {
	Name  string
	Views []*View

	// idx caches the compiled policy index (see index.go).  Lazily set by
	// Index; nil until then, so freshly parsed blueprints still compare
	// equal under reflect.DeepEqual.
	idx atomic.Pointer[Index]
}

// Index returns the compiled policy index of the blueprint, building it on
// first use.  Concurrent callers may race to build; all observe the same
// winning index afterwards.
func (bp *Blueprint) Index() *Index {
	if ix := bp.idx.Load(); ix != nil {
		return ix
	}
	bp.idx.CompareAndSwap(nil, NewIndex(bp))
	return bp.idx.Load()
}

// DefaultViewName is the name of the special view whose template and
// run-time rules apply to every view ("the special default view which
// applies to all the views", section 3.4).
const DefaultViewName = "default"

// View returns the declaration of the named view.
func (bp *Blueprint) View(name string) (*View, bool) {
	for _, v := range bp.Views {
		if v.Name == name {
			return v, true
		}
	}
	return nil, false
}

// DefaultView returns the special default view, or nil if the blueprint has
// none.
func (bp *Blueprint) DefaultView() *View {
	v, ok := bp.View(DefaultViewName)
	if !ok {
		return nil
	}
	return v
}

// ViewNames returns the declared view names in declaration order.
func (bp *Blueprint) ViewNames() []string {
	names := make([]string, len(bp.Views))
	for i, v := range bp.Views {
		names[i] = v.Name
	}
	return names
}

// View is one "view NAME ... endview" declaration: the template rules
// (properties, links, continuous assignments) and run-time rules for OIDs of
// this view type.
type View struct {
	Name       string
	Properties []*PropertyDecl
	Lets       []*LetDecl
	Links      []*LinkDecl
	Rules      []*Rule
}

// Property returns the property declaration with the given name.
func (v *View) Property(name string) (*PropertyDecl, bool) {
	for _, p := range v.Properties {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// RulesFor returns the run-time rules of this view triggered by the event.
func (v *View) RulesFor(event string) []*Rule {
	var out []*Rule
	for _, r := range v.Rules {
		if r.Event == event {
			out = append(out, r)
		}
	}
	return out
}

// InheritMode is the version-inheritance mode of a property or link
// template: what happens to the property value or link instance when a new
// version of an OID is created (Figures 2 and 3 of the paper).
type InheritMode uint8

const (
	// InheritNone: the new version gets the default value (properties) or
	// no automatic treatment (links).
	InheritNone InheritMode = iota
	// InheritCopy: the value/link is copied from the previous version; the
	// previous version keeps its own.
	InheritCopy
	// InheritMove: the value/link is moved — the previous version loses it.
	// For links this is the "shift" of Figure 3.
	InheritMove
)

// String returns the keyword used in the BluePrint language.
func (m InheritMode) String() string {
	switch m {
	case InheritNone:
		return ""
	case InheritCopy:
		return "copy"
	case InheritMove:
		return "move"
	default:
		return fmt.Sprintf("InheritMode(%d)", uint8(m))
	}
}

// PropertyDecl is "property NAME default VALUE [copy|move]".
type PropertyDecl struct {
	Name    string
	Default string
	Inherit InheritMode
}

// LetDecl is a continuous assignment: "let NAME = EXPR".  The expression is
// re-evaluated whenever the engine processes an event on an OID of the view,
// and its boolean result ("true"/"false") is stored in property NAME.
type LetDecl struct {
	Name string
	Expr Expr
}

// LinkDecl is a link template: either "use_link [move|copy] propagates ..."
// or "link_from VIEW [move|copy] propagates ... [type NAME]".
type LinkDecl struct {
	// Use distinguishes use links (hierarchy) from derive links.  A use
	// link template has no FromView: both ends are of the declaring view's
	// type.
	Use bool

	// FromView is the parent view of a derive link template.  The declaring
	// view is the To (downstream) end.
	FromView string

	// Inherit controls version shifting: move-tagged links are shifted from
	// the old version to the new one when a new version is created.
	Inherit InheritMode

	// Propagates is the PROPAGATE property applied to link instances.
	Propagates []string

	// Type is the TYPE property for derive links (derived, equivalence,
	// depend_on, composition, ...).
	Type string

	// TemplateID is a deterministic identifier ("viewname#index") assigned
	// by the parser; link instances stamped with it are recognized during
	// version inheritance.
	TemplateID string
}

// Rule is one run-time rule: "when EVENT do ACTION; ACTION... done".
type Rule struct {
	Event   string
	Actions []Action
}

// Action is one of the three run-time action kinds the paper defines —
// property assignment, script execution, event posting — plus notify, which
// the paper shows as a built-in messaging action.
type Action interface {
	actionNode()
	String() string
}

// AssignAction sets a property of the target OID:
// "oid_is_checked_out = false" or "lvs_res = "$oid changed by $user"".
type AssignAction struct {
	Prop  string
	Value Template
}

// ExecAction invokes a script: "exec netlister.sh "$OID"".
type ExecAction struct {
	Argv []Template
}

// NotifyAction sends a message to users:
// "notify "$owner: Your oid $OID has been modified"".
type NotifyAction struct {
	Message Template
}

// Direction is the propagation direction of an event through links:
// down travels From→To (e.g. from a source view to the views derived from
// it, or from a hierarchy parent to its components), up travels To→From.
type Direction uint8

const (
	// DirDown propagates From→To.
	DirDown Direction = iota
	// DirUp propagates To→From.
	DirUp
)

// String returns "down" or "up".
func (d Direction) String() string {
	if d == DirUp {
		return "up"
	}
	return "down"
}

// ParseDirection parses "up" or "down".
func ParseDirection(s string) (Direction, error) {
	switch strings.ToLower(s) {
	case "up":
		return DirUp, nil
	case "down":
		return DirDown, nil
	default:
		return 0, fmt.Errorf("bpl: direction %q: want up or down", s)
	}
}

// PostAction posts a new event.  With ToView set, the event is targeted at
// the OID of that view of the same block ("post behavioral_sim_ok down to
// VerilogNetList"); without it, the event is directly propagated from the
// current OID ("post out_of_date up") — local rules do not run again on the
// current OID.
type PostAction struct {
	Event  string
	Dir    Direction
	ToView string
	Args   []Template
}

func (*AssignAction) actionNode() {}
func (*ExecAction) actionNode()   {}
func (*NotifyAction) actionNode() {}
func (*PostAction) actionNode()   {}

// String renders the action in canonical BluePrint syntax.
func (a *AssignAction) String() string {
	return a.Prop + " = " + a.Value.Source()
}

// String renders the action in canonical BluePrint syntax.
func (a *ExecAction) String() string {
	parts := make([]string, 0, len(a.Argv)+1)
	parts = append(parts, "exec")
	for _, t := range a.Argv {
		parts = append(parts, t.Source())
	}
	return strings.Join(parts, " ")
}

// String renders the action in canonical BluePrint syntax.
func (a *NotifyAction) String() string {
	return "notify " + a.Message.Source()
}

// String renders the action in canonical BluePrint syntax.
func (a *PostAction) String() string {
	var sb strings.Builder
	sb.WriteString("post ")
	sb.WriteString(a.Event)
	sb.WriteByte(' ')
	sb.WriteString(a.Dir.String())
	if a.ToView != "" {
		sb.WriteString(" to ")
		sb.WriteString(a.ToView)
	}
	for _, t := range a.Args {
		sb.WriteByte(' ')
		sb.WriteString(t.Source())
	}
	return sb.String()
}
