package meta

import (
	"fmt"
	"sort"
	"sync"
)

// DB is the DAMOCLES meta-database: an in-memory, concurrency-safe store of
// OIDs, Links, Configurations and workspace bindings.  A DB models one
// project; the paper's project server owns exactly one.
//
// All mutation goes through DB methods.  Read accessors either return deep
// copies (safe to retain) or, for the Each* iterators, expose internal
// objects under the read lock: iterator callbacks must not retain or mutate
// the objects they are handed and must not call DB methods (which would
// deadlock).
type DB struct {
	mu sync.RWMutex

	oids   map[Key]*OID
	chains map[BlockView][]int // ascending version numbers
	links  map[LinkID]*Link

	// Adjacency indexes: links where the key is the From / To endpoint.
	outLinks map[Key][]LinkID
	inLinks  map[Key][]LinkID

	configs    map[string]*Configuration
	workspaces map[string]*Workspace

	nextLink LinkID
	seq      int64
}

// NewDB returns an empty meta-database.
func NewDB() *DB {
	return &DB{
		oids:       make(map[Key]*OID),
		chains:     make(map[BlockView][]int),
		links:      make(map[LinkID]*Link),
		outLinks:   make(map[Key][]LinkID),
		inLinks:    make(map[Key][]LinkID),
		configs:    make(map[string]*Configuration),
		workspaces: make(map[string]*Workspace),
	}
}

// tick advances and returns the logical clock.  Callers must hold mu.
func (db *DB) tick() int64 {
	db.seq++
	return db.seq
}

// Seq returns the current logical time: the Seq of the most recently created
// object.
func (db *DB) Seq() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.seq
}

// ---------------------------------------------------------------------------
// OIDs and version chains

// NewVersion creates the next version of (block, view) and returns its key.
// The first version of a chain is 1.  Properties start empty; the run-time
// engine applies BluePrint template rules on top.
func (db *DB) NewVersion(block, view string) (Key, error) {
	if err := ValidateName(block); err != nil {
		return Key{}, fmt.Errorf("block: %w", err)
	}
	if err := ValidateName(view); err != nil {
		return Key{}, fmt.Errorf("view: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	bv := BlockView{Block: block, View: view}
	chain := db.chains[bv]
	next := 1
	if len(chain) > 0 {
		next = chain[len(chain)-1] + 1
	}
	k := Key{Block: block, View: view, Version: next}
	db.oids[k] = &OID{Key: k, Props: make(map[string]string), Seq: db.tick()}
	db.chains[bv] = append(chain, next)
	return k, nil
}

// InsertOID inserts an OID with an explicit version number.  It is used by
// persistence reload; NewVersion is the normal creation path.  The version
// must be greater than the newest version in the chain — gaps are legal
// because old versions may have been pruned (see PruneVersions).
func (db *DB) InsertOID(k Key) error {
	if err := k.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.oids[k]; ok {
		return fmt.Errorf("oid %v: %w", k, ErrExists)
	}
	bv := k.BV()
	chain := db.chains[bv]
	if len(chain) > 0 && k.Version <= chain[len(chain)-1] {
		return fmt.Errorf("oid %v: chain is already at version %d: %w",
			k, chain[len(chain)-1], ErrBadVersion)
	}
	db.oids[k] = &OID{Key: k, Props: make(map[string]string), Seq: db.tick()}
	db.chains[bv] = append(chain, k.Version)
	return nil
}

// PruneVersions removes all but the newest keep versions of (block, view)
// from the database, along with every link incident to the removed OIDs —
// the archival purge a long-running project performs on validated history
// (cf. Silva et al., "Protection and Versioning for OCT", DAC 1989, which
// the paper cites).  Version numbering is preserved: the chain keeps
// counting from its highest version.  It returns the number of OIDs
// removed.  keep must be at least 1.
func (db *DB) PruneVersions(block, view string, keep int) (int, error) {
	if keep < 1 {
		return 0, fmt.Errorf("prune %s.%s: keep %d: %w", block, view, keep, ErrBadVersion)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	bv := BlockView{Block: block, View: view}
	chain := db.chains[bv]
	if len(chain) == 0 {
		return 0, fmt.Errorf("prune %s.%s: %w", block, view, ErrNotFound)
	}
	if len(chain) <= keep {
		return 0, nil
	}
	drop := chain[:len(chain)-keep]
	for _, v := range drop {
		k := Key{Block: block, View: view, Version: v}
		// Remove incident links first.
		for _, id := range append(append([]LinkID(nil), db.outLinks[k]...), db.inLinks[k]...) {
			l, ok := db.links[id]
			if !ok {
				continue
			}
			delete(db.links, id)
			db.outLinks[l.From] = removeID(db.outLinks[l.From], id)
			db.inLinks[l.To] = removeID(db.inLinks[l.To], id)
		}
		delete(db.outLinks, k)
		delete(db.inLinks, k)
		delete(db.oids, k)
	}
	db.chains[bv] = append([]int(nil), chain[len(chain)-keep:]...)
	return len(drop), nil
}

// HasOID reports whether the OID exists.
func (db *DB) HasOID(k Key) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.oids[k]
	return ok
}

// GetOID returns a deep copy of the OID.
func (db *DB) GetOID(k Key) (*OID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.oids[k]
	if !ok {
		return nil, fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	return o.clone(), nil
}

// Latest returns the key of the newest version of (block, view).
func (db *DB) Latest(block, view string) (Key, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	chain := db.chains[BlockView{Block: block, View: view}]
	if len(chain) == 0 {
		return Key{}, fmt.Errorf("no versions of %s.%s: %w", block, view, ErrNotFound)
	}
	return Key{Block: block, View: view, Version: chain[len(chain)-1]}, nil
}

// Versions returns the version numbers of (block, view) in ascending order.
func (db *DB) Versions(block, view string) []int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	chain := db.chains[BlockView{Block: block, View: view}]
	out := make([]int, len(chain))
	copy(out, chain)
	return out
}

// Predecessor returns the key of the version immediately preceding k in its
// chain, or ok=false if k is the first version.
func (db *DB) Predecessor(k Key) (Key, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	chain := db.chains[k.BV()]
	for i, v := range chain {
		if v == k.Version {
			if i == 0 {
				return Key{}, false
			}
			return Key{Block: k.Block, View: k.View, Version: chain[i-1]}, true
		}
	}
	return Key{}, false
}

// SetProp sets a property on an OID.
func (db *DB) SetProp(k Key, name, value string) error {
	if err := ValidateName(name); err != nil {
		return fmt.Errorf("property: %w", err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	o, ok := db.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	o.Props[name] = value
	return nil
}

// WithOID runs fn on the live OID under the read lock — a batched read
// path for callers that need several properties at once without paying for
// a deep copy (GetOID) or one lock round-trip per GetProp.  fn must not
// retain or mutate the OID and must not call other DB methods.
func (db *DB) WithOID(k Key, fn func(o *OID)) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	fn(o)
	return nil
}

// UpdateOID runs fn on the live OID under the write lock.  It is the
// batched read-modify-write path of the run-time engine: one delivery's
// property assignments and continuous re-evaluations read and write Props
// in a single lock round-trip instead of one GetProp/SetProp pair each.
// fn may read and mutate o.Props directly but must not retain o or the map
// and must not call other DB methods (which would deadlock).  Property
// names written by fn must satisfy ValidateName; the caller validates
// because fn has no error channel.
func (db *DB) UpdateOID(k Key, fn func(o *OID)) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	o, ok := db.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	fn(o)
	return nil
}

// GetProp returns a property value of an OID.  Missing properties return
// ("", false, nil); a missing OID is an error.
func (db *DB) GetProp(k Key, name string) (string, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	o, ok := db.oids[k]
	if !ok {
		return "", false, fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	v, ok := o.Props[name]
	return v, ok, nil
}

// DelProp removes a property from an OID.  Removing an absent property is a
// no-op.
func (db *DB) DelProp(k Key, name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	o, ok := db.oids[k]
	if !ok {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	delete(o.Props, name)
	return nil
}

// ---------------------------------------------------------------------------
// Links

// AddLink inserts a link between two existing OIDs and returns its ID.
// Class-specific invariants are checked (a use link must not cross view
// types).  propagates may be nil; template and props may be empty.
func (db *DB) AddLink(class LinkClass, from, to Key, template string, propagates []string, props map[string]string) (LinkID, error) {
	l := &Link{
		Class:      class,
		From:       from,
		To:         to,
		Template:   template,
		Props:      make(map[string]string, len(props)),
		Propagates: make(map[string]bool, len(propagates)),
	}
	for k, v := range props {
		l.Props[k] = v
	}
	for _, e := range propagates {
		l.Propagates[e] = true
	}
	if err := l.validate(); err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.oids[from]; !ok {
		return 0, fmt.Errorf("link from %v: %w", from, ErrNotFound)
	}
	if _, ok := db.oids[to]; !ok {
		return 0, fmt.Errorf("link to %v: %w", to, ErrNotFound)
	}
	db.nextLink++
	l.ID = db.nextLink
	l.Seq = db.tick()
	db.links[l.ID] = l
	db.outLinks[from] = append(db.outLinks[from], l.ID)
	db.inLinks[to] = append(db.inLinks[to], l.ID)
	return l.ID, nil
}

// GetLink returns a deep copy of the link.
func (db *DB) GetLink(id LinkID) (*Link, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	l, ok := db.links[id]
	if !ok {
		return nil, fmt.Errorf("link %d: %w", id, ErrNotFound)
	}
	return l.clone(), nil
}

// DeleteLink removes a link.
func (db *DB) DeleteLink(id LinkID) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	l, ok := db.links[id]
	if !ok {
		return fmt.Errorf("link %d: %w", id, ErrNotFound)
	}
	delete(db.links, id)
	db.outLinks[l.From] = removeID(db.outLinks[l.From], id)
	db.inLinks[l.To] = removeID(db.inLinks[l.To], id)
	return nil
}

// RetargetLink moves one endpoint of a link from oldEnd to newEnd.  It
// implements the link "shifting" of Figure 3: when a new version of an OID
// is created, move-mode links are shifted from the previous version to the
// new one.  oldEnd must currently be an endpoint of the link.
func (db *DB) RetargetLink(id LinkID, oldEnd, newEnd Key) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	l, ok := db.links[id]
	if !ok {
		return fmt.Errorf("link %d: %w", id, ErrNotFound)
	}
	if _, ok := db.oids[newEnd]; !ok {
		return fmt.Errorf("retarget to %v: %w", newEnd, ErrNotFound)
	}
	moved := *l
	switch oldEnd {
	case l.From:
		moved.From = newEnd
	case l.To:
		moved.To = newEnd
	default:
		return fmt.Errorf("link %d: %v is not an endpoint: %w", id, oldEnd, ErrBadLink)
	}
	if err := moved.validate(); err != nil {
		return err
	}
	if oldEnd == l.From {
		db.outLinks[oldEnd] = removeID(db.outLinks[oldEnd], id)
		db.outLinks[newEnd] = append(db.outLinks[newEnd], id)
		l.From = newEnd
	} else {
		db.inLinks[oldEnd] = removeID(db.inLinks[oldEnd], id)
		db.inLinks[newEnd] = append(db.inLinks[newEnd], id)
		l.To = newEnd
	}
	return nil
}

// SetLinkProp sets an annotation property on a link.
func (db *DB) SetLinkProp(id LinkID, name, value string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	l, ok := db.links[id]
	if !ok {
		return fmt.Errorf("link %d: %w", id, ErrNotFound)
	}
	l.Props[name] = value
	return nil
}

// SetLinkPropagates replaces the PROPAGATE set of a link.
func (db *DB) SetLinkPropagates(id LinkID, events []string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	l, ok := db.links[id]
	if !ok {
		return fmt.Errorf("link %d: %w", id, ErrNotFound)
	}
	l.Propagates = make(map[string]bool, len(events))
	for _, e := range events {
		l.Propagates[e] = true
	}
	return nil
}

// LinksFrom returns copies of all links whose From endpoint is k.
func (db *DB) LinksFrom(k Key) []*Link {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cloneLinks(db.outLinks[k])
}

// LinksTo returns copies of all links whose To endpoint is k.
func (db *DB) LinksTo(k Key) []*Link {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cloneLinks(db.inLinks[k])
}

// LinksOf returns copies of all links incident to k, in either direction.
func (db *DB) LinksOf(k Key) []*Link {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := db.cloneLinks(db.outLinks[k])
	return append(out, db.cloneLinks(db.inLinks[k])...)
}

func (db *DB) cloneLinks(ids []LinkID) []*Link {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Link, 0, len(ids))
	for _, id := range ids {
		if l, ok := db.links[id]; ok {
			out = append(out, l.clone())
		}
	}
	return out
}

// EachLinkOf invokes fn for every link incident to k, outgoing first, under
// the read lock.  fn must not retain or mutate the link and must not call
// other DB methods.  Returning false stops the iteration.
func (db *DB) EachLinkOf(k Key, fn func(*Link) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, id := range db.outLinks[k] {
		if l, ok := db.links[id]; ok && !fn(l) {
			return
		}
	}
	for _, id := range db.inLinks[k] {
		if l, ok := db.links[id]; ok && !fn(l) {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Enumeration and statistics

// EachOID invokes fn for every OID under the read lock, in unspecified
// order.  fn must not retain or mutate the OID and must not call other DB
// methods.  Returning false stops the iteration.
func (db *DB) EachOID(fn func(*OID) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, o := range db.oids {
		if !fn(o) {
			return
		}
	}
}

// EachLatestOID invokes fn for the newest version of every version chain
// under the read lock, in unspecified order.  It is the allocation-free
// form of LatestOIDs: fn must not retain or mutate the OID and must not
// call other DB methods.  Returning false stops the iteration.
func (db *DB) EachLatestOID(fn func(*OID) bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for bv, chain := range db.chains {
		if len(chain) == 0 {
			continue
		}
		k := Key{Block: bv.Block, View: bv.View, Version: chain[len(chain)-1]}
		if o, ok := db.oids[k]; ok && !fn(o) {
			return
		}
	}
}

// Keys returns every OID key, sorted by block, view, version.
func (db *DB) Keys() []Key {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]Key, 0, len(db.oids))
	for k := range db.oids {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

// BlockViews returns every version chain identity, sorted.
func (db *DB) BlockViews() []BlockView {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bvs := make([]BlockView, 0, len(db.chains))
	for bv := range db.chains {
		bvs = append(bvs, bv)
	}
	sort.Slice(bvs, func(i, j int) bool {
		if bvs[i].Block != bvs[j].Block {
			return bvs[i].Block < bvs[j].Block
		}
		return bvs[i].View < bvs[j].View
	})
	return bvs
}

// LinkIDs returns every link ID in ascending order.
func (db *DB) LinkIDs() []LinkID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ids := make([]LinkID, 0, len(db.links))
	for id := range db.links {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Stats summarizes database size.
type Stats struct {
	OIDs           int
	Links          int
	Chains         int
	Configurations int
	Workspaces     int
}

// Stats returns current object counts.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{
		OIDs:           len(db.oids),
		Links:          len(db.links),
		Chains:         len(db.chains),
		Configurations: len(db.configs),
		Workspaces:     len(db.workspaces),
	}
}

func removeID(ids []LinkID, id LinkID) []LinkID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

func sortKeys(keys []Key) {
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
}
