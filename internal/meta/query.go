package meta

import "sort"

// Query helpers.  Designers "retrieve the state of the project by performing
// queries" (section 1); these are the volume-query primitives the higher
// level state package builds on.
//
// The Select*/Latest* scans visit shards one at a time (per-shard
// consistent, not a whole-database snapshot).  The graph walks (Reachable,
// Dependents, Equivalents) have two tiers: with MVCC enabled they pin a
// lock-free ReadView and resolve adjacency through the versioned
// reachability index (graphview.go) without touching a single shard or
// stripe lock; without it they read-lock every shard and stripe in the
// canonical ascending order so a cross-shard link walk sees one consistent
// graph.  All four walks (including Resolve) return nil for a root that
// does not exist.

// SelectOIDs returns deep copies of every OID accepted by pred, sorted by
// key.
func (db *DB) SelectOIDs(pred func(*OID) bool) []*OID {
	var out []*OID
	for _, sh := range db.shards {
		sh.mu.RLock()
		if out == nil && len(sh.oids) > 0 {
			out = make([]*OID, 0, len(sh.oids))
		}
		for _, o := range sh.oids {
			if pred(o) {
				out = append(out, o.clone())
			}
		}
		sh.mu.RUnlock()
	}
	sortOIDs(out)
	return out
}

// OIDsByView returns every OID of the given view type, sorted by key.
func (db *DB) OIDsByView(view string) []*OID {
	return db.SelectOIDs(func(o *OID) bool { return o.Key.View == view })
}

// OIDsByBlock returns every OID of the given block, sorted by key.
func (db *DB) OIDsByBlock(block string) []*OID {
	return db.SelectOIDs(func(o *OID) bool { return o.Key.Block == block })
}

// OIDsWithProp returns every OID whose named property equals value.
func (db *DB) OIDsWithProp(name, value string) []*OID {
	return db.SelectOIDs(func(o *OID) bool { return o.Props[name] == value })
}

// LatestOIDs returns a deep copy of the newest version of every version
// chain, sorted by key.  This is the usual working set for state queries:
// designers care about the state of the latest data.  Chains are already
// version-ordered, so each shard contributes its newest versions without
// re-scanning; only the final cross-shard key sort remains.
func (db *DB) LatestOIDs() []*OID {
	out := make([]*OID, 0, db.countChains())
	for _, sh := range db.shards {
		sh.mu.RLock()
		for bv, chain := range sh.chains {
			if len(chain) == 0 {
				continue
			}
			k := Key{Block: bv.Block, View: bv.View, Version: chain[len(chain)-1]}
			if o, ok := sh.oids[k]; ok {
				out = append(out, o.clone())
			}
		}
		sh.mu.RUnlock()
	}
	sortOIDs(out)
	return out
}

func (db *DB) countChains() int {
	n := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		n += len(sh.chains)
		sh.mu.RUnlock()
	}
	return n
}

// SelectLinks returns deep copies of every link accepted by pred, in ID
// order.
func (db *DB) SelectLinks(pred func(*Link) bool) []*Link {
	var out []*Link
	for _, st := range db.stripes {
		st.mu.RLock()
		if out == nil && len(st.links) > 0 {
			out = make([]*Link, 0, len(st.links))
		}
		for _, l := range st.links {
			if pred(l) {
				out = append(out, l.clone())
			}
		}
		st.mu.RUnlock()
	}
	sortLinks(out)
	return out
}

// LinksByType returns every derive link whose TYPE property matches.
func (db *DB) LinksByType(linkType string) []*Link {
	return db.SelectLinks(func(l *Link) bool {
		return l.Class == DeriveLink && l.Type() == linkType
	})
}

// Reachable returns the set of keys reachable from root by traversing links
// downward (From→To) through links admitted by follow, including root
// itself.  It is the query primitive behind hierarchy snapshots and
// transitive-dependency analyses.
func (db *DB) Reachable(root Key, follow FollowFunc) []Key {
	if follow == nil {
		follow = FollowUseLinks
	}
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		return v.Reachable(root, follow)
	}
	db.rlockAll()
	defer db.runlockAll()
	if _, ok := db.shardOf(root).oids[root]; !ok {
		return nil
	}
	visited := map[Key]bool{root: true}
	queue := []Key{root}
	var out []Key
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		out = append(out, k)
		for _, r := range db.shardOf(k).outLinks[k] {
			if !follow(r.l) || visited[r.l.To] {
				continue
			}
			visited[r.l.To] = true
			queue = append(queue, r.l.To)
		}
	}
	sortKeys(out)
	return out
}

// Dependents returns the downstream closure of root: every OID reachable by
// repeatedly following admitted links From→To.  This is the set of data
// invalidated when root changes.  root itself is excluded; a root that does
// not exist returns nil, matching Reachable and Equivalents.
func (db *DB) Dependents(root Key, follow FollowFunc) []Key {
	if follow == nil {
		follow = FollowAllLinks
	}
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		return v.Dependents(root, follow)
	}
	db.rlockAll()
	defer db.runlockAll()
	if _, ok := db.shardOf(root).oids[root]; !ok {
		return nil
	}
	visited := map[Key]bool{root: true}
	queue := []Key{root}
	var out []Key
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, r := range db.shardOf(k).outLinks[k] {
			if !follow(r.l) || visited[r.l.To] {
				continue
			}
			visited[r.l.To] = true
			out = append(out, r.l.To)
			queue = append(queue, r.l.To)
		}
	}
	sortKeys(out)
	return out
}

// Equivalents returns the transitive set of OIDs tied to k by derive links
// whose TYPE property is "equivalence" — the equivalence plane of Katz's
// version server, which the paper's link types reference.  Links are
// followed in both directions; k itself is included.
func (db *DB) Equivalents(k Key) []Key {
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		return v.Equivalents(k)
	}
	db.rlockAll()
	defer db.runlockAll()
	if _, ok := db.shardOf(k).oids[k]; !ok {
		return nil
	}
	visited := map[Key]bool{k: true}
	queue := []Key{k}
	out := []Key{k}
	step := func(next Key) {
		if !visited[next] {
			visited[next] = true
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		sh := db.shardOf(cur)
		for _, r := range sh.outLinks[cur] {
			if r.l.Class == DeriveLink && r.l.Type() == TypeEquivalence {
				step(r.l.To)
			}
		}
		for _, r := range sh.inLinks[cur] {
			if r.l.Class == DeriveLink && r.l.Type() == TypeEquivalence {
				step(r.l.From)
			}
		}
	}
	sortKeys(out)
	return out
}

func sortOIDs(oids []*OID) {
	// Map iteration hands us a random permutation, so an insertion sort
	// here is quadratic on large databases (it dominated state reports at
	// a thousand blocks); use the library sort.
	sort.Slice(oids, func(i, j int) bool { return keyLess(oids[i].Key, oids[j].Key) })
}

func sortLinks(links []*Link) {
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
}
