package load

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Facts are the runner-machine facts stamped into every LOAD_<n>.json
// (and, via scripts/bench.sh, every BENCH_<n>.json): the
// "single-core container" caveat as machine-readable data instead of
// tribal knowledge.  A reader comparing numbers across files checks
// these first.
type Facts struct {
	// GOMAXPROCS is the Go scheduler's parallelism at run time.
	GOMAXPROCS int `json:"gomaxprocs"`

	// NumCPU is what the runtime sees as usable CPUs.
	NumCPU int `json:"numcpu"`

	// Affinity is the size of the process CPU affinity mask
	// (Cpus_allowed_list on Linux; NumCPU where unavailable) — the
	// container quota truth even when the host has more cores.
	Affinity int `json:"affinity"`
}

// RunnerFacts samples the current process's facts.
func RunnerFacts() Facts {
	f := Facts{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Affinity: runtime.NumCPU()}
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if rest, ok := strings.CutPrefix(line, "Cpus_allowed_list:"); ok {
				if n := countCPUList(strings.TrimSpace(rest)); n > 0 {
					f.Affinity = n
				}
				break
			}
		}
	}
	return f
}

// countCPUList counts CPUs in a Linux list like "0-3,7,9-10".
func countCPUList(s string) int {
	n := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			var a, b int
			if _, err := fmt.Sscanf(lo, "%d", &a); err != nil {
				continue
			}
			if _, err := fmt.Sscanf(hi, "%d", &b); err != nil {
				continue
			}
			if b >= a {
				n += b - a + 1
			}
		} else {
			n++
		}
	}
	return n
}

// OpResult is one op class's measured outcome: latency quantiles from
// the merged histogram (milliseconds, intended-arrival based), counts,
// and sustained throughput.
type OpResult struct {
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	P50Ms      float64 `json:"p50_ms"`
	P90Ms      float64 `json:"p90_ms"`
	P99Ms      float64 `json:"p99_ms"`
	P999Ms     float64 `json:"p999_ms"`
	MeanMs     float64 `json:"mean_ms"`
	MaxMs      float64 `json:"max_ms"`
	Throughput float64 `json:"throughput_ops_s"`
}

// ReplicationStats summarizes the lag samples the collector took via
// LSN/ROLE while traffic ran: follower lag is primary-applied minus
// follower-applied (LSN units), journal lag is the primary's applied
// minus its commit watermark.
type ReplicationStats struct {
	Samples        int   `json:"samples"`
	FollowerLagP50 int64 `json:"follower_lag_lsn_p50"`
	FollowerLagP99 int64 `json:"follower_lag_lsn_p99"`
	FollowerLagMax int64 `json:"follower_lag_lsn_max"`
	JournalLagP99  int64 `json:"journal_lag_lsn_p99"`
	JournalLagMax  int64 `json:"journal_lag_lsn_max"`
}

// ChaosResult is the failover audit of a chaos run.
type ChaosResult struct {
	Enabled    bool    `json:"enabled"`
	KillAtMs   float64 `json:"kill_at_ms"`
	FailoverMs float64 `json:"failover_ms"` // kill → promote+re-point complete
	OutageMs   float64 `json:"outage_ms"`   // kill → first write acked by the new primary

	// AckedWrites counts churn creations the cluster acknowledged;
	// AckedLost counts those missing from the final REPORT — the
	// zero-acked-write-loss contract holds iff it is 0.
	AckedWrites int64 `json:"acked_writes"`
	AckedLost   int64 `json:"acked_lost"`

	// SLORecoveryMs is the span from the kill until the completion of
	// the last write op violating its SLO ceiling (later-arriving writes
	// all meet it again); Recovered is false when violations ran into
	// the end of the measurement window.
	SLORecoveryMs float64 `json:"slo_recovery_ms"`
	Recovered     bool    `json:"recovered"`

	// Converged reports that a surviving follower's REPORT at the final
	// LSN is byte-identical to the new primary's.
	Converged  bool   `json:"converged"`
	NewPrimary string `json:"new_primary"`
}

// PartitionResult is the audit of a -partition run: a follower's
// replication link blackholed mid-traffic (both directions silent, no
// connection closed), then healed.  The contract it checks: the dark
// follower's ROLE must report a growing staleness the whole time
// (reads stay age-bounded, never silently stale), writes gated on its
// acks must recover their SLO after the heal, and the fleet must
// converge byte-identically once the link is back.
type PartitionResult struct {
	Enabled  bool   `json:"enabled"`
	Follower string `json:"follower"` // address of the darkened follower

	StartAtMs float64 `json:"start_at_ms"` // blackhole offset into the run
	DarkMs    float64 `json:"dark_ms"`     // blackhole span

	// StalenessSeen reports that every successful ROLE poll of the dark
	// follower carried the staleness field; MaxStalenessMs is the
	// largest age it admitted to — it should approach DarkMs.
	StalenessSeen  bool    `json:"staleness_seen"`
	MaxStalenessMs float64 `json:"max_staleness_ms"`

	// CatchupMs is the span from the heal until the follower's applied
	// LSN caught the primary's; Recovered is false when it never did
	// within the audit budget.
	CatchupMs float64 `json:"catchup_ms"`
	Recovered bool    `json:"recovered"`

	// SLORecoveryMs is the span from the heal until the completion of
	// the last write op violating its SLO ceiling (with -ack gating,
	// writes degrade while the link is dark and must recover after it
	// heals); SLORecovered is false when violations ran into the end of
	// the window.
	SLORecoveryMs float64 `json:"slo_recovery_ms"`
	SLORecovered  bool    `json:"slo_recovered"`

	// Converged reports that the healed follower's REPORT at the final
	// LSN is byte-identical to the primary's.
	Converged bool `json:"converged"`
}

// Result is the full outcome of one load run — the LOAD_<n>.json
// document.
type Result struct {
	Name   string   `json:"name"`
	Index  int      `json:"index"`
	Date   string   `json:"date"`
	Go     string   `json:"go"`
	Commit string   `json:"commit"`
	Runner Facts    `json:"runner"`
	Spec   Scenario `json:"scenario"`

	WallS      float64 `json:"wall_s"`
	Arrivals   int64   `json:"arrivals"`
	Dispatched int64   `json:"dispatched"`
	Dropped    int64   `json:"dropped"`
	Completed  int64   `json:"completed"`
	ErrorsAll  int64   `json:"errors"`

	Ops        map[string]*OpResult `json:"ops"`
	ErrorKinds map[string]int64     `json:"error_kinds,omitempty"`

	// Server is the primary's STATS counter line at the end of the run
	// (engine counters plus the shed/refusal counters), for reconciling
	// client-side accounting against the server's own.
	Server map[string]int64 `json:"server,omitempty"`

	Replication *ReplicationStats `json:"replication,omitempty"`
	Chaos       *ChaosResult      `json:"chaos,omitempty"`
	Partition   *PartitionResult  `json:"partition,omitempty"`

	// SLOViolations lists op classes whose measured p99 exceeded the
	// scenario's declared ceiling, plus a chaos recovery overrun.
	SLOViolations []string `json:"slo_violations,omitempty"`
}

// Stamp fills the provenance fields — called after the measurement
// window closes so reading git state cannot perturb it.
func (r *Result) Stamp(index int) {
	r.Index = index
	r.Date = time.Now().UTC().Format(time.RFC3339)
	r.Go = runtime.Version()
	r.Runner = RunnerFacts()
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		r.Commit = strings.TrimSpace(string(out))
	} else {
		r.Commit = "unknown"
	}
}

// WriteJSON writes the result document to path, indented.
func (r *Result) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadResult loads a LOAD_<n>.json document.
func ReadResult(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("load: %s: %w", path, err)
	}
	return &r, nil
}

// ms converts a duration to float milliseconds for the JSON document.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// opResultFrom folds a merged histogram into the JSON form.
func opResultFrom(h *Histogram, errs int64, wall time.Duration) *OpResult {
	r := &OpResult{Count: int64(h.Count()), Errors: errs}
	if h.Count() > 0 {
		r.P50Ms = ms(h.Quantile(0.50))
		r.P90Ms = ms(h.Quantile(0.90))
		r.P99Ms = ms(h.Quantile(0.99))
		r.P999Ms = ms(h.Quantile(0.999))
		r.MeanMs = ms(h.Mean())
		r.MaxMs = ms(h.Max())
	}
	if wall > 0 {
		r.Throughput = float64(r.Count) / wall.Seconds()
	}
	return r
}
