package server

// Client-side silence detection against scripted peers: the per-op
// timeout must bound peer silence (not total transfer time — the
// whole-op deadline bug made big slow bodies indistinguishable from
// hangs), a server that goes mute mid-body must surface ErrTimeout
// within two timeout windows, and a follow stream that falls silent
// must trip StreamTimeout the same way.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// muteServer accepts one connection, reads one request line, writes the
// scripted lines (one flush each, gap apart), then goes mute — holding
// the connection open without closing it, the half-open peer whose
// silence only a deadline can detect.
func muteServer(t *testing.T, gap time.Duration, lines ...string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hold := make(chan struct{})
	t.Cleanup(func() {
		close(hold)
		ln.Close()
	})
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, err := bufio.NewReader(c).ReadString('\n'); err != nil {
			return
		}
		for _, l := range lines {
			if gap > 0 {
				time.Sleep(gap)
			}
			if _, err := c.Write([]byte(l + "\n")); err != nil {
				return
			}
		}
		<-hold // mute: never another byte, never a close
	}()
	return ln.Addr().String()
}

// TestClientTimeoutBoundsSilenceNotTransfer: eight body lines, each gap
// well inside the per-op timeout, total well past it.  A slow-but-live
// body is progress and must complete — the deadline refreshes per line
// read, it does not cap the whole response.
func TestClientTimeoutBoundsSilenceNotTransfer(t *testing.T) {
	const op = 150 * time.Millisecond
	lines := []string{"OK+ rows"}
	for i := 0; i < 8; i++ {
		lines = append(lines, fmt.Sprintf("|row%d", i))
	}
	lines = append(lines, ".")
	addr := muteServer(t, 60*time.Millisecond, lines...)

	c, err := DialTimeout(addr, time.Second, op)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Hangup()
	rows, err := c.Report()
	if err != nil {
		t.Fatalf("slow-but-live response tripped the per-op timeout: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(rows))
	}
}

// TestClientReadStallMidBody: the peer sends the header and one row,
// then nothing — ever.  The client must surface ErrTimeout within two
// timeout windows instead of hanging on the open connection.
func TestClientReadStallMidBody(t *testing.T) {
	const op = 250 * time.Millisecond
	addr := muteServer(t, 0, "OK+ rows", "|row0")

	c, err := DialTimeout(addr, time.Second, op)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Hangup()
	start := time.Now()
	_, err = c.Report()
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("mute-after-header server = %v, want ErrTimeout", err)
	}
	if elapsed > 2*op {
		t.Fatalf("stall surfaced after %v, want within %v", elapsed, 2*op)
	}
}

// TestClientFollowStreamStall: a follow stream delivers its handshake
// and one frame, then falls silent.  StreamTimeout must turn that
// silence into ErrTimeout within two windows — after delivering the
// frame that did arrive.
func TestClientFollowStreamStall(t *testing.T) {
	const stall = 250 * time.Millisecond
	addr := muteServer(t, 0, "OK+ streaming", "|watermark 7")

	c, err := DialTimeout(addr, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Hangup()
	c.StreamTimeout = stall

	var marks int
	start := time.Now()
	err = c.Follow(0, func(fr FollowFrame) error {
		if fr.Mark {
			marks++
			if fr.Watermark != 7 {
				t.Errorf("watermark %d, want 7", fr.Watermark)
			}
		}
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent follow stream = %v, want ErrTimeout", err)
	}
	if marks != 1 {
		t.Fatalf("delivered %d frames before the stall, want 1", marks)
	}
	if elapsed > 2*stall {
		t.Fatalf("stream stall surfaced after %v, want within %v", elapsed, 2*stall)
	}
}
