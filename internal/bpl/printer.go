package bpl

import (
	"strings"
)

// Print renders the blueprint in canonical source form.  The output parses
// back to a tree equal to the input (the round-trip property tested by the
// package tests), which makes Print suitable for archiving the effective
// project policy.
func Print(bp *Blueprint) string {
	var sb strings.Builder
	sb.WriteString("blueprint ")
	sb.WriteString(bp.Name)
	sb.WriteString("\n")
	for _, v := range bp.Views {
		printView(&sb, v)
	}
	sb.WriteString("endblueprint\n")
	return sb.String()
}

func printView(sb *strings.Builder, v *View) {
	sb.WriteString("view ")
	sb.WriteString(v.Name)
	sb.WriteString("\n")
	for _, p := range v.Properties {
		sb.WriteString("    property ")
		sb.WriteString(p.Name)
		sb.WriteString(" default ")
		sb.WriteString(constSource(p.Default))
		if p.Inherit != InheritNone {
			sb.WriteString(" ")
			sb.WriteString(p.Inherit.String())
		}
		sb.WriteString("\n")
	}
	for _, l := range v.Lets {
		sb.WriteString("    let ")
		sb.WriteString(l.Name)
		sb.WriteString(" = ")
		sb.WriteString(l.Expr.String())
		sb.WriteString("\n")
	}
	for _, l := range v.Links {
		sb.WriteString("    ")
		if l.Use {
			sb.WriteString("use_link")
		} else {
			sb.WriteString("link_from ")
			sb.WriteString(l.FromView)
		}
		if l.Inherit != InheritNone {
			sb.WriteString(" ")
			sb.WriteString(l.Inherit.String())
		}
		sb.WriteString(" propagates ")
		sb.WriteString(strings.Join(l.Propagates, ", "))
		if !l.Use && l.Type != "" {
			sb.WriteString(" type ")
			sb.WriteString(l.Type)
		}
		sb.WriteString("\n")
	}
	for _, r := range v.Rules {
		sb.WriteString("    when ")
		sb.WriteString(r.Event)
		sb.WriteString(" do ")
		for i, a := range r.Actions {
			if i > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(a.String())
		}
		sb.WriteString(" done\n")
	}
	sb.WriteString("endview\n")
}

// constSource renders a constant value as identifier or quoted string.
func constSource(s string) string {
	if s != "" && isBareIdent(s) && !strings.Contains(s, "$") {
		return s
	}
	return quote(strings.ReplaceAll(s, "$", `\$`))
}
