package replica_test

// The deterministic two-node replication harness: an in-process primary
// (journaled engine + server with a FOLLOW endpoint) and a follower
// (replica.Follower + read-only server), both on loopback TCP — the full
// wire path, no mocks.  The harness drives primary traffic, kills and
// restarts the follower at arbitrary LSNs (Abort simulates a crash: the
// uncommitted buffer is lost, the persisted applied position survives),
// and asserts convergence: the caught-up follower's canonical Save output
// is byte-identical to the primary's, and follower REPORT at the same LSN
// matches primary REPORT.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/replica"
	"repro/internal/server"
)

// cluster is one primary + one (restartable) follower.
type cluster struct {
	t      *testing.T
	shards int

	primDir string
	pw      *journal.Writer
	pdb     *meta.DB
	eng     *engine.Engine
	psrv    *server.Server
	paddr   string

	folDir string
	fol    *replica.Follower
	fsrv   *server.Server
	faddr  string
}

func testBlueprint(t *testing.T) *bpl.Blueprint {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

// newCluster starts the primary; the follower starts separately so tests
// control when it first attaches (cold vs warm).
func newCluster(t *testing.T, shards int, opt journal.Options) *cluster {
	t.Helper()
	opt.Shards = shards
	c := &cluster{t: t, shards: shards, primDir: t.TempDir(), folDir: t.TempDir()}

	var err error
	c.pw, c.pdb, err = journal.Open(c.primDir, opt)
	if err != nil {
		t.Fatal(err)
	}
	c.eng, err = engine.New(c.pdb, testBlueprint(t), engine.WithJournal(c.pw))
	if err != nil {
		t.Fatal(err)
	}
	c.psrv = server.New(c.eng,
		server.WithJournal(c.pw),
		server.WithFollowSource(replica.NewSource(c.pw)))
	c.paddr, err = c.psrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if c.fol != nil {
			c.fsrv.Close()
			c.fol.Abort()
		}
		c.psrv.Close()
		c.pw.Close()
	})
	return c
}

// startFollower attaches (or re-attaches) the follower to the primary and
// serves its replicated database read-only.
func (c *cluster) startFollower() {
	c.t.Helper()
	if c.fol != nil {
		c.t.Fatal("follower already running")
	}
	fol, err := replica.Start(c.folDir, c.paddr, journal.Options{Shards: c.shards})
	if err != nil {
		c.t.Fatal(err)
	}
	eng, err := engine.New(fol.DB(), testBlueprint(c.t))
	if err != nil {
		c.t.Fatal(err)
	}
	srv := server.New(eng, server.WithReadOnly(fol))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		c.t.Fatal(err)
	}
	c.fol, c.fsrv, c.faddr = fol, srv, addr
}

// killFollower tears the follower down abruptly: the server drops its
// connections and the replication loop aborts without flushing, exactly
// what a crash leaves behind.
func (c *cluster) killFollower() {
	c.t.Helper()
	if c.fol == nil {
		c.t.Fatal("no follower to kill")
	}
	c.fsrv.Close()
	c.fol.Abort()
	c.fol, c.fsrv, c.faddr = nil, nil, ""
}

func (c *cluster) restartFollower() {
	c.killFollower()
	c.startFollower()
}

// catchUp quiesces the primary (drain + commit), waits for the follower
// to apply everything, and returns the converged LSN.
func (c *cluster) catchUp() int64 {
	c.t.Helper()
	if err := c.eng.Drain(); err != nil {
		c.t.Fatal(err)
	}
	if err := c.pw.Commit(); err != nil {
		c.t.Fatal(err)
	}
	lsn := c.pw.LastLSN()
	if at, err := c.fol.WaitApplied(lsn, 15*time.Second); err != nil {
		c.t.Fatalf("follower stuck at lsn %d waiting for %d: %v (follower err: %v)", at, lsn, err, c.fol.Err())
	}
	return lsn
}

func saveBytes(t *testing.T, db *meta.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertConverged is the harness's core assertion: byte-identical
// canonical Save output, and identical REPORT bodies at the same LSN
// through both servers' wire paths.
func (c *cluster) assertConverged() {
	c.t.Helper()
	lsn := c.catchUp()

	prim := saveBytes(c.t, c.pdb)
	foll := saveBytes(c.t, c.fol.DB())
	if !bytes.Equal(prim, foll) {
		c.t.Fatalf("follower Save differs from primary at lsn %d:\n--- primary\n%s\n--- follower\n%s", lsn, prim, foll)
	}

	pc := c.dial(c.paddr)
	defer pc.Close()
	fc := c.dial(c.faddr)
	defer fc.Close()
	pr, err := pc.ReportAt(lsn)
	if err != nil {
		c.t.Fatal(err)
	}
	fr, err := fc.ReportAt(lsn)
	if err != nil {
		c.t.Fatal(err)
	}
	if strings.Join(pr, "\n") != strings.Join(fr, "\n") {
		c.t.Fatalf("REPORT mismatch at lsn %d:\n--- primary\n%s\n--- follower\n%s",
			lsn, strings.Join(pr, "\n"), strings.Join(fr, "\n"))
	}
}

func (c *cluster) dial(addr string) *server.Client {
	c.t.Helper()
	cl, err := server.Dial(addr)
	if err != nil {
		c.t.Fatal(err)
	}
	return cl
}

// TestTwoNodeFollowerReplication is the acceptance path: wire traffic on
// the primary, follower killed and restarted at arbitrary points, then
// convergence — byte-identical Save, identical REPORT at the same LSN —
// and the follower refusing writes throughout.
func TestTwoNodeFollowerReplication(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SegmentBytes: 2048, SnapshotEvery: -1})
	c.startFollower()

	pc := c.dial(c.paddr)
	defer pc.Close()
	pc.User = "yves"

	blocks := []string{"CPU", "ALU", "REG", "IO", "FPU"}
	var keys []meta.Key
	for i, b := range blocks {
		k, err := pc.Create(b, "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if err := pc.PostEvent("ckin", "up", k, "initial"); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := pc.Link("derive", keys[i-1], k); err != nil {
				t.Fatal(err)
			}
		}
		// Kill/restart the follower at scattered LSNs, mid-stream.
		switch i {
		case 1:
			c.restartFollower()
		case 3:
			c.killFollower()
		}
		if c.fol == nil && i == 4 {
			c.startFollower()
		}
	}
	for _, k := range keys {
		if err := pc.PostEvent("hdl_sim", "down", k, "good"); err != nil {
			t.Fatal(err)
		}
	}
	c.assertConverged()

	// The follower must refuse every mutating verb.
	fc := c.dial(c.faddr)
	defer fc.Close()
	if _, err := fc.Create("ROGUE", "HDL_model"); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted CREATE: %v", err)
	}
	if err := fc.PostEvent("ckin", "up", keys[0]); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted POST: %v", err)
	}
	if err := fc.Link("use", keys[0], keys[1]); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted LINK: %v", err)
	}
	if _, err := fc.Snapshot("cfg", "*"); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted SNAPSHOT: %v", err)
	}
	// Reads still work, and LSN reports the applied position.
	lsn, err := fc.LSN()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != c.pw.LastLSN() {
		t.Fatalf("follower LSN %d, primary at %d", lsn, c.pw.LastLSN())
	}

	// More traffic after the refusals: the replica keeps converging.
	for i := 0; i < 8; i++ {
		k, err := pc.Create(fmt.Sprintf("LATE%d", i), "SCHEMA")
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.PostEvent("ckin", "up", k, "late"); err != nil {
			t.Fatal(err)
		}
	}
	c.assertConverged()
}

// TestFollowerStaleRebootstrap: a follower left so far behind that the
// primary has snapshotted and compacted past its position must re-base on
// the shipped snapshot (FOLLOW answers with a snapshot frame) and still
// converge byte-identically.
func TestFollowerStaleRebootstrap(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SegmentBytes: 512, SnapshotEvery: -1})
	c.startFollower()

	pc := c.dial(c.paddr)
	defer pc.Close()
	for i := 0; i < 4; i++ {
		if _, err := pc.Create(fmt.Sprintf("EARLY%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	c.assertConverged()
	c.killFollower()

	// Advance the primary well past the follower and compact its history.
	for i := 0; i < 20; i++ {
		k, err := pc.Create(fmt.Sprintf("MID%d", i), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.PostEvent("ckin", "up", k, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.pw.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if c.pw.SnapshotLSN() <= 4 {
		t.Fatalf("primary snapshot lsn %d did not pass the follower's position", c.pw.SnapshotLSN())
	}

	c.startFollower()
	c.assertConverged()
	if got := c.fol.DB().Stats().OIDs; got != 24 {
		t.Fatalf("re-bootstrapped follower has %d oids, want 24", got)
	}
}

// TestQuickFollowerConvergence is the replication property test: for a
// randomized op program with mid-stream follower kills and restarts, the
// caught-up follower's canonical Save output equals the primary's —
// byte-identical — at 1, 4 and 64 shards.  It reuses the op-program shape
// of the journal's persistence-equivalence quick test, driven against the
// journaled primary database directly so every mutation kind appears in
// the stream.
func TestQuickFollowerConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("spins a TCP cluster per case")
	}
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Deterministic program bytes: a fixed-seed PRNG unrolled by
			// case index, so failures replay exactly.
			for caseNo := 0; caseNo < 3; caseNo++ {
				ops := make([]byte, 180)
				x := uint32(2463534242 + caseNo*977 + shards)
				for i := range ops {
					x ^= x << 13
					x ^= x >> 17
					x ^= x << 5
					ops[i] = byte(x)
				}
				runFollowerProgram(t, shards, ops)
			}
		})
	}
}

// runFollowerProgram interprets ops as a mutation program against the
// primary's database (tiny segments so rotation, snapshots and follower
// restarts all trigger), then asserts convergence.
func runFollowerProgram(t *testing.T, shards int, ops []byte) {
	t.Helper()
	c := newCluster(t, shards, journal.Options{SegmentBytes: 512, SnapshotEvery: -1})
	c.startFollower()
	db, w := c.pdb, c.pw

	blocks := []string{"cpu", "alu", "reg", "io"}
	views := []string{"HDL_model", "SCHEMA", "netlist"}
	events := [][]string{nil, {"ckin"}, {"ckin", "outofdate"}}
	var keys []meta.Key
	var links []meta.LinkID
	names := 0

	pick := func(b byte, n int) int { return int(b) % n }
	for i := 0; i+2 < len(ops); i += 3 {
		op, a, b := ops[i], ops[i+1], ops[i+2]
		switch op % 14 {
		case 0, 1: // create a version (common)
			k, err := db.NewVersion(blocks[pick(a, len(blocks))], views[pick(b, len(views))])
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		case 2:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				if err := db.SetProp(k, "p"+fmt.Sprint(b%4), fmt.Sprint(b)); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				err := db.UpdateOID(k, func(o *meta.OID) {
					o.Props["batch"] = fmt.Sprint(a)
					delete(o.Props, "p"+fmt.Sprint(b%4))
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			if len(keys) > 1 {
				from, to := keys[pick(a, len(keys))], keys[pick(b, len(keys))]
				if id, err := db.AddLink(meta.DeriveLink, from, to, "", events[pick(a^b, len(events))], nil); err == nil {
					links = append(links, id)
				}
			}
		case 5:
			if len(links) > 0 {
				if err := db.SetLinkProp(links[pick(a, len(links))], "TYPE", "equivalence"); err != nil {
					t.Fatal(err)
				}
			}
		case 6:
			if len(links) > 0 {
				j := pick(a, len(links))
				if err := db.DeleteLink(links[j]); err != nil {
					t.Fatal(err)
				}
				links = append(links[:j], links[j+1:]...)
			}
		case 7:
			if len(links) > 0 && len(keys) > 0 {
				id := links[pick(a, len(links))]
				if l, err := db.GetLink(id); err == nil {
					_ = db.RetargetLink(id, l.From, keys[pick(b, len(keys))])
				}
			}
		case 8:
			names++
			if _, err := db.SnapshotQuery(fmt.Sprintf("cfg%d", names), func(o *meta.OID) bool {
				return o.Key.Version%2 == int(a)%2
			}); err != nil {
				t.Fatal(err)
			}
		case 9:
			names++
			ws := fmt.Sprintf("ws%d", names)
			if err := db.AddWorkspace(ws, "/data"); err != nil {
				t.Fatal(err)
			}
			if len(keys) > 0 {
				if err := db.BindPath(ws, keys[pick(a, len(keys))], "some/path"); err != nil {
					t.Fatal(err)
				}
			}
		case 10:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				if _, err := db.PruneVersions(k.Block, k.View, 1+int(b)%2); err != nil {
					t.Fatal(err)
				}
				keys = liveKeys(db, keys)
				links = liveLinks(db, links)
			}
		case 11:
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			if a%3 == 0 {
				if err := w.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
		case 12: // kill the follower mid-stream at an arbitrary LSN
			if c.fol != nil {
				c.killFollower()
			}
		case 13: // ...and bring it back
			if c.fol == nil {
				c.startFollower()
			}
		}
	}
	if c.fol == nil {
		c.startFollower()
	}
	c.assertConverged()
}

func liveKeys(db *meta.DB, keys []meta.Key) []meta.Key {
	out := keys[:0]
	for _, k := range keys {
		if db.HasOID(k) {
			out = append(out, k)
		}
	}
	return out
}

func liveLinks(db *meta.DB, links []meta.LinkID) []meta.LinkID {
	out := links[:0]
	for _, id := range links {
		if _, err := db.GetLink(id); err == nil {
			out = append(out, id)
		}
	}
	return out
}

// TestFollowerReadYourLSN: a write acknowledged by the primary at LSN n
// is visible in a follower REPORT gated on n — the read-your-writes
// contract across the primary/follower boundary over the real wire path.
func TestFollowerReadYourLSN(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SnapshotEvery: -1})
	c.startFollower()

	pc := c.dial(c.paddr)
	defer pc.Close()
	k, err := pc.Create("RYW", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if err := pc.PostEvent("ckin", "up", k, "v1"); err != nil {
		t.Fatal(err)
	}
	lsn, err := pc.LSN()
	if err != nil {
		t.Fatal(err)
	}
	fc := c.dial(c.faddr)
	defer fc.Close()
	rows, err := fc.ReportAt(lsn) // waits server-side for the replica to reach lsn
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if strings.HasPrefix(r, "RYW,") {
			found = true
		}
	}
	if !found {
		t.Fatalf("follower REPORT at lsn %d is missing the acknowledged row:\n%s", lsn, strings.Join(rows, "\n"))
	}

	// A horizon the replica cannot have reached yet times out loudly
	// rather than serving stale data.
	if _, err := c.fol.WaitApplied(lsn+1000, 50*time.Millisecond); err == nil {
		t.Fatal("WaitApplied at an unreachable lsn should fail")
	}
}
