// Package wrapper implements the wrapper programs of sections 3.1 and 3.3
// of the paper.  "The invocation of the tools is encapsulated into shell
// scripts called wrapper programs" which post event messages to the
// BluePrint; and "Tool scheduling is implemented by the wrapper programs.
// The program queries the meta-database, requesting the permission to
// access data and to run the tool.  The permission is given based on the
// state of the input data."
//
// A Session binds the run-time engine (meta-database side) to the simulated
// tool suite (design-data side).  Each wrapper method performs the three
// wrapper duties: permission query, tool run, event posting.
package wrapper

import (
	"errors"
	"fmt"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/meta"
	"repro/internal/tools"
)

// ErrStale reports that a wrapper refused to run because its input data is
// not up to date — the paper's example: "prior to running a simulation, the
// wrapper makes sure that the input netlist is up to date".
var ErrStale = errors.New("wrapper: input data is not up to date")

// ErrNotReady reports that an input fails a required-state check other
// than freshness (e.g. synthesizing an unverified HDL model).
var ErrNotReady = errors.New("wrapper: input data does not meet required state")

// Session is a designer's working context: engine, workspace, identity.
type Session struct {
	Eng   *engine.Engine
	Suite *tools.Suite
	User  string

	// Workspace, when set, names a registered meta.Workspace; every OID
	// the session checks in gets its design-data path bound there, tying
	// the meta-database to the repository as DAMOCLES does.
	Workspace string
}

// NewSession creates a session.
func NewSession(eng *engine.Engine, suite *tools.Suite, user string) *Session {
	return &Session{Eng: eng, Suite: suite, User: user}
}

// UseWorkspace registers (or reuses) a workspace in the meta-database and
// makes the session bind checked-in data into it.
func (s *Session) UseWorkspace(name, root string) error {
	err := s.Eng.DB().AddWorkspace(name, root)
	if err != nil && !errors.Is(err, meta.ErrExists) {
		return err
	}
	s.Workspace = name
	return nil
}

// bindPath records the storage location of an OID's design data in the
// session workspace, if one is configured.
func (s *Session) bindPath(k meta.Key) error {
	if s.Workspace == "" {
		return nil
	}
	path := fmt.Sprintf("%s/%s/v%d", k.Block, k.View, k.Version)
	return s.Eng.DB().BindPath(s.Workspace, k, path)
}

// ---------------------------------------------------------------------------
// Permission queries (section 3.3)

// RequireUpToDate checks the uptodate property of an input OID.
func (s *Session) RequireUpToDate(k meta.Key) error {
	v, ok, err := s.Eng.DB().GetProp(k, "uptodate")
	if err != nil {
		return err
	}
	if !ok || v != "true" {
		return fmt.Errorf("%w: %v (uptodate=%q)", ErrStale, k, v)
	}
	return nil
}

// RequireProp checks that a property of an input OID has the wanted value.
func (s *Session) RequireProp(k meta.Key, name, want string) error {
	v, _, err := s.Eng.DB().GetProp(k, name)
	if err != nil {
		return err
	}
	if v != want {
		return fmt.Errorf("%w: %v (%s=%q, want %q)", ErrNotReady, k, name, v, want)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Primary-data wrappers

// CheckinHDL creates a new HDL model version with the given content and
// checks it in.
func (s *Session) CheckinHDL(block string, gates, defects int) (meta.Key, error) {
	k, err := s.Eng.CreateOID(block, "HDL_model", s.User)
	if err != nil {
		return meta.Key{}, err
	}
	s.Suite.WriteHDL(k, gates, defects)
	if err := s.checkin(k); err != nil {
		return meta.Key{}, err
	}
	return k, nil
}

// InstallLibrary registers a new synthesis library version and checks it
// in, which invalidates dependents through the depend_on links.
func (s *Session) InstallLibrary(block string) (meta.Key, error) {
	k, err := s.Eng.CreateOID(block, "synth_lib", s.User)
	if err != nil {
		return meta.Key{}, err
	}
	s.Suite.InstallLibrary(k)
	if err := s.checkin(k); err != nil {
		return meta.Key{}, err
	}
	return k, nil
}

// checkin binds the data location and posts the ckin event.
func (s *Session) checkin(k meta.Key) error {
	if err := s.bindPath(k); err != nil {
		return err
	}
	return s.Eng.PostAndDrain(engine.Event{
		Name: engine.EventCheckin, Dir: bpl.DirDown, Target: k, User: s.User,
	})
}

// ---------------------------------------------------------------------------
// Tool wrappers

// RunHDLSim simulates an HDL model and posts the interpreted result as an
// hdl_sim event.
func (s *Session) RunHDLSim(k meta.Key) (string, error) {
	res, err := s.Suite.SimulateHDL(k)
	if err != nil {
		return "", err
	}
	err = s.Eng.PostAndDrain(engine.Event{
		Name: "hdl_sim", Dir: bpl.DirDown, Target: k, Args: []string{res}, User: s.User,
	})
	return res, err
}

// Synthesize derives a schematic for the model's block.  Permission: the
// model must be up to date and have passed simulation.  The wrapper creates
// the schematic OID, the derived link from the model, the depend_on link
// from the library, produces the design data and checks the schematic in.
func (s *Session) Synthesize(hdl, lib meta.Key) (meta.Key, error) {
	if err := s.RequireUpToDate(hdl); err != nil {
		return meta.Key{}, err
	}
	if err := s.RequireProp(hdl, "sim_result", "good"); err != nil {
		return meta.Key{}, err
	}
	sch, err := s.Eng.CreateOID(hdl.Block, "schematic", s.User)
	if err != nil {
		return meta.Key{}, err
	}
	if _, err := s.Eng.CreateLink(meta.DeriveLink, hdl, sch); err != nil {
		return meta.Key{}, err
	}
	if _, err := s.Eng.CreateLink(meta.DeriveLink, lib, sch); err != nil {
		return meta.Key{}, err
	}
	if _, err := s.Suite.Synthesize(hdl, lib, sch); err != nil {
		return meta.Key{}, err
	}
	if err := s.checkin(sch); err != nil {
		return meta.Key{}, err
	}
	return sch, nil
}

// AddComponent records that child is a hierarchical component of parent
// (both schematics) with a use link.
func (s *Session) AddComponent(parent, child meta.Key) error {
	_, err := s.Eng.CreateLink(meta.UseLink, parent, child)
	return err
}

// RunNetlister derives a netlist from a schematic.  Permission: the
// schematic must be up to date.
func (s *Session) RunNetlister(sch meta.Key) (meta.Key, error) {
	if err := s.RequireUpToDate(sch); err != nil {
		return meta.Key{}, err
	}
	nl, err := s.Eng.CreateOID(sch.Block, "netlist", s.User)
	if err != nil {
		return meta.Key{}, err
	}
	if _, err := s.Eng.CreateLink(meta.DeriveLink, sch, nl); err != nil {
		return meta.Key{}, err
	}
	if _, err := s.Suite.Netlist(sch, nl); err != nil {
		return meta.Key{}, err
	}
	if err := s.checkin(nl); err != nil {
		return meta.Key{}, err
	}
	return nl, nil
}

// RunNetlistSim simulates a netlist — the paper's permission example: the
// wrapper makes sure the input netlist is up to date before running.  The
// result travels up so the schematic's nl_sim_res is updated through the
// derived link.
func (s *Session) RunNetlistSim(nl meta.Key) (string, error) {
	if err := s.RequireUpToDate(nl); err != nil {
		return "", err
	}
	res, err := s.Suite.SimulateNetlist(nl)
	if err != nil {
		return "", err
	}
	err = s.Eng.PostAndDrain(engine.Event{
		Name: "nl_sim", Dir: bpl.DirUp, Target: nl, Args: []string{res}, User: s.User,
	})
	return res, err
}

// PlaceRoute derives a layout from a netlist and records the equivalence
// link from the block's schematic.  Permission: netlist up to date and
// simulated good.
func (s *Session) PlaceRoute(nl meta.Key) (meta.Key, error) {
	if err := s.RequireUpToDate(nl); err != nil {
		return meta.Key{}, err
	}
	if err := s.RequireProp(nl, "sim_result", "good"); err != nil {
		return meta.Key{}, err
	}
	lay, err := s.Eng.CreateOID(nl.Block, "layout", s.User)
	if err != nil {
		return meta.Key{}, err
	}
	if sch, err := s.Eng.DB().Latest(nl.Block, "schematic"); err == nil {
		if _, err := s.Eng.CreateLink(meta.DeriveLink, sch, lay); err != nil {
			return meta.Key{}, err
		}
	}
	if _, err := s.Suite.PlaceRoute(nl, lay); err != nil {
		return meta.Key{}, err
	}
	if err := s.checkin(lay); err != nil {
		return meta.Key{}, err
	}
	return lay, nil
}

// RunDRC checks a layout and posts the drc event.
func (s *Session) RunDRC(lay meta.Key) (string, error) {
	res, err := s.Suite.DRC(lay)
	if err != nil {
		return "", err
	}
	err = s.Eng.PostAndDrain(engine.Event{
		Name: "drc", Dir: bpl.DirDown, Target: lay, Args: []string{res}, User: s.User,
	})
	return res, err
}

// RunLVS compares layout and netlist and posts the lvs event at the layout.
func (s *Session) RunLVS(lay, nl meta.Key) (string, error) {
	res, err := s.Suite.LVS(lay, nl)
	if err != nil {
		return "", err
	}
	err = s.Eng.PostAndDrain(engine.Event{
		Name: "lvs", Dir: bpl.DirDown, Target: lay, Args: []string{res}, User: s.User,
	})
	return res, err
}

// FixLayout edits the layout to clear DRC violations and checks it in.
func (s *Session) FixLayout(lay meta.Key) error {
	if _, err := s.Suite.FixLayout(lay); err != nil {
		return err
	}
	return s.checkin(lay)
}

// ---------------------------------------------------------------------------
// Automatic tool invocation (section 3.3)

// AutoExecutor returns an executor registry implementing the automatic tool
// invocations the EDTC blueprint requests via exec rules: the "netlister"
// script re-netlists a schematic whenever it is checked in.  Install it on
// the engine with engine.WithExecutor.
func (s *Session) AutoExecutor() *exec.Registry {
	reg := exec.NewRegistry()
	reg.Register("netlister", func(inv exec.Invocation) error {
		if len(inv.Args) == 0 {
			return fmt.Errorf("netlister: missing OID argument")
		}
		sch, err := meta.ParseKey(inv.Args[0])
		if err != nil {
			return err
		}
		_, err = s.RunNetlister(sch)
		return err
	})
	return reg
}
