// Package exec abstracts the execution of wrapper scripts by the BluePrint
// run-time engine.  The paper's exec run-time rules invoke shell scripts
// ("when ckin do exec netlister.sh "$OID" done") and its notify rules send
// warnings to users.  In this reproduction the engine delegates both to an
// Executor so tests can record invocations, simulations can route them to
// the simulated EDA tool suite, and deployments can run real commands.
package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Invocation describes one exec rule firing.
type Invocation struct {
	// Script is the expanded first argument of the exec action, e.g.
	// "netlister.sh".
	Script string
	// Args are the remaining expanded arguments.
	Args []string
	// Env carries the engine environment at firing time: $oid, $event,
	// $user and the target OID's properties.
	Env map[string]string
}

// String renders the invocation as a command line.
func (inv Invocation) String() string {
	if len(inv.Args) == 0 {
		return inv.Script
	}
	return inv.Script + " " + strings.Join(inv.Args, " ")
}

// Executor runs exec actions and delivers notify messages.
type Executor interface {
	// Exec runs a script invocation.  A non-nil error is recorded in the
	// engine trace but does not abort event processing — the tracking
	// system is non-obstructive.
	Exec(inv Invocation) error
	// Notify delivers a user-facing message.
	Notify(message string) error
}

// Nop discards all invocations and notifications.
type Nop struct{}

// Exec implements Executor.
func (Nop) Exec(Invocation) error { return nil }

// Notify implements Executor.
func (Nop) Notify(string) error { return nil }

// Recorder remembers every invocation and notification, for tests and
// audit.  It is safe for concurrent use.
type Recorder struct {
	mu            sync.Mutex
	invocations   []Invocation
	notifications []string
}

// Exec implements Executor.
func (r *Recorder) Exec(inv Invocation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Deep-copy env so later engine mutations don't alias.
	cp := inv
	cp.Args = append([]string(nil), inv.Args...)
	cp.Env = make(map[string]string, len(inv.Env))
	for k, v := range inv.Env {
		cp.Env[k] = v
	}
	r.invocations = append(r.invocations, cp)
	return nil
}

// Notify implements Executor.
func (r *Recorder) Notify(msg string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.notifications = append(r.notifications, msg)
	return nil
}

// Invocations returns a copy of the recorded invocations in order.
func (r *Recorder) Invocations() []Invocation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Invocation(nil), r.invocations...)
}

// Notifications returns a copy of the recorded notifications in order.
func (r *Recorder) Notifications() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.notifications...)
}

// Scripts returns the recorded script names in order.
func (r *Recorder) Scripts() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.invocations))
	for i, inv := range r.invocations {
		out[i] = inv.Script
	}
	return out
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invocations = nil
	r.notifications = nil
}

// Registry dispatches script names to registered Go handlers — the
// substitute for the paper's shell wrapper programs.  Unknown scripts are
// an error unless a Fallback is installed.  Registry is safe for concurrent
// use once populated; Register must not race with Exec.
type Registry struct {
	handlers map[string]func(Invocation) error
	notify   func(string) error

	// Fallback handles scripts with no registered handler.
	Fallback func(Invocation) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[string]func(Invocation) error)}
}

// Register installs a handler for a script name, replacing any previous
// handler.
func (g *Registry) Register(script string, h func(Invocation) error) {
	g.handlers[script] = h
}

// OnNotify installs the notification sink.
func (g *Registry) OnNotify(h func(string) error) { g.notify = h }

// Scripts lists registered script names in sorted order.
func (g *Registry) Scripts() []string {
	out := make([]string, 0, len(g.handlers))
	for s := range g.handlers {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Exec implements Executor.
func (g *Registry) Exec(inv Invocation) error {
	if h, ok := g.handlers[inv.Script]; ok {
		return h(inv)
	}
	if g.Fallback != nil {
		return g.Fallback(inv)
	}
	return fmt.Errorf("exec: no handler for script %q", inv.Script)
}

// Notify implements Executor.
func (g *Registry) Notify(msg string) error {
	if g.notify != nil {
		return g.notify(msg)
	}
	return nil
}

// Tee duplicates invocations and notifications to several executors,
// returning the first error after all have run.  Useful to record while
// simulating.
type Tee []Executor

// Exec implements Executor.
func (t Tee) Exec(inv Invocation) error {
	var first error
	for _, e := range t {
		if err := e.Exec(inv); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Notify implements Executor.
func (t Tee) Notify(msg string) error {
	var first error
	for _, e := range t {
		if err := e.Notify(msg); err != nil && first == nil {
			first = err
		}
	}
	return first
}
