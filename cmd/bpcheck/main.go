// Command bpcheck validates BluePrint policy files: it parses them, runs
// the semantic analyzer, and optionally prints the canonical form.  The
// project administrator runs it before re-initializing the BluePrint for a
// new project phase.
//
// Usage:
//
//	bpcheck [-print] [-quiet] <file.bp> [more files...]
//
// Exit status is non-zero if any file fails to parse or has analyzer
// errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
)

func main() {
	printForm := flag.Bool("print", false, "print the canonical form of each valid blueprint")
	quiet := flag.Bool("quiet", false, "suppress warnings and infos")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bpcheck [-print] [-quiet] <file.bp>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if !cli.BPCheckFiles(os.Stdout, os.Stderr, flag.Args(), *printForm, *quiet) {
		os.Exit(1)
	}
}
