package meta

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	root, nl := buildHierarchy(t, db)
	if err := db.SetProp(root, "uptodate", "true"); err != nil {
		t.Fatal(err)
	}
	if err := db.SetProp(nl, "sim_result", "4 errors"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SnapshotHierarchy("snap", root, FollowAllLinks); err != nil {
		t.Fatal(err)
	}
	if err := db.AddWorkspace("ws", "/proj/data"); err != nil {
		t.Fatal(err)
	}
	if err := db.BindPath("ws", root, "cpu/schema/1"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(db.Stats(), db2.Stats()) {
		t.Errorf("stats differ: %+v vs %+v", db.Stats(), db2.Stats())
	}
	if !reflect.DeepEqual(db.Keys(), db2.Keys()) {
		t.Errorf("keys differ")
	}
	v, ok, err := db2.GetProp(nl, "sim_result")
	if err != nil || !ok || v != "4 errors" {
		t.Errorf("prop lost: %q %v %v", v, ok, err)
	}
	// Links with identical IDs and contents.
	for _, id := range db.LinkIDs() {
		l1, _ := db.GetLink(id)
		l2, err := db2.GetLink(id)
		if err != nil {
			t.Fatalf("link %d lost: %v", id, err)
		}
		if !reflect.DeepEqual(l1, l2) {
			t.Errorf("link %d differs:\n%+v\n%+v", id, l1, l2)
		}
	}
	// Configuration survives.
	c1, _ := db.GetConfiguration("snap")
	c2, err := db2.GetConfiguration("snap")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("configuration differs")
	}
	// Workspace binding survives.
	w, err := db2.GetWorkspace("ws")
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := w.Path(root); !ok || p != "cpu/schema/1" {
		t.Errorf("workspace path = %q %v", p, ok)
	}
	// Seq counters survive so new objects don't collide.
	if db.Seq() != db2.Seq() {
		t.Errorf("seq differs: %d vs %d", db.Seq(), db2.Seq())
	}
	k, err := db2.NewVersion("cpu", "SCHEMA")
	if err != nil {
		t.Fatal(err)
	}
	if k.Version != 2 {
		t.Errorf("post-load NewVersion = %v, want version 2", k)
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewDB().Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.OIDs != 0 || s.Links != 0 {
		t.Errorf("empty load stats = %+v", s)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"dup oid":       `{"oids":[{"block":"a","view":"v","version":1},{"block":"a","view":"v","version":1}]}`,
		"dangling link": `{"oids":[{"block":"a","view":"v","version":1}],"links":[{"id":1,"class":"use","from":"a,v,1","to":"b,v,1"}]}`,
		"bad class":     `{"oids":[{"block":"a","view":"v","version":1},{"block":"b","view":"v","version":1}],"links":[{"id":1,"class":"weird","from":"a,v,1","to":"b,v,1"}]}`,
		"bad key":       `{"oids":[{"block":"a","view":"v","version":1},{"block":"b","view":"v","version":1}],"links":[{"id":1,"class":"use","from":"nokey","to":"b,v,1"}]}`,
		"self link":     `{"oids":[{"block":"a","view":"v","version":1}],"links":[{"id":1,"class":"use","from":"a,v,1","to":"a,v,1"}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Load accepted corrupt input", name)
		}
	}
}

func TestLoadRejectsDuplicates(t *testing.T) {
	cases := map[string]struct{ doc, wantSub string }{
		"oid": {
			doc: `{"oids":[
				{"block":"a","view":"v","version":1,"props":{"p":"first"}},
				{"block":"b","view":"v","version":1},
				{"block":"a","view":"v","version":1,"props":{"p":"second"}}
			]}`,
			wantSub: "duplicate oid a,v,1",
		},
		"configuration": {
			doc:     `{"configurations":[{"name":"c","oids":[]},{"name":"c","oids":[]}]}`,
			wantSub: `duplicate configuration "c"`,
		},
		"workspace": {
			doc:     `{"workspaces":[{"name":"w","root":"/a"},{"name":"w","root":"/b"}]}`,
			wantSub: `duplicate workspace "w"`,
		},
	}
	for name, tc := range cases {
		_, err := Load(strings.NewReader(tc.doc))
		if err == nil {
			t.Errorf("%s: Load accepted a duplicate (last-wins would silently drop data)", name)
			continue
		}
		if !errors.Is(err, ErrExists) {
			t.Errorf("%s: err = %v, want ErrExists", name, err)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err %q does not describe the duplicate (want %q)", name, err, tc.wantSub)
		}
	}
}

func TestLoadVersionChainOutOfOrderInput(t *testing.T) {
	// Versions listed out of order in the document must still load.
	doc := `{"oids":[
		{"block":"a","view":"v","version":3},
		{"block":"a","view":"v","version":1},
		{"block":"a","view":"v","version":2}
	]}`
	db, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Versions("a", "v"); len(got) != 3 {
		t.Errorf("Versions = %v", got)
	}
}
