package load

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"
)

// TestBucketMapping pins the bucket geometry: indices are monotone in
// the value, every value is bounded above by its bucket max, and the
// bucket max maps back into the same bucket.
func TestBucketMapping(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 63, 64, 127, 128, 129, 1 << 20, 1<<20 + 1, 1 << 40, 1<<62 - 1} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d)=%d below earlier index %d", v, i, prev)
		}
		prev = i
		if ub := bucketMax(i); ub < v {
			t.Errorf("bucketMax(%d)=%d < value %d", i, ub, v)
		}
		if back := bucketIndex(bucketMax(i)); back != i {
			t.Errorf("bucketMax(%d)=%d maps to bucket %d", i, bucketMax(i), back)
		}
	}
	// Exhaustive round trip over every bucket.
	for i := 0; i < histBuckets-1; i++ {
		if back := bucketIndex(bucketMax(i)); back != i {
			t.Fatalf("bucket %d: max %d maps back to %d", i, bucketMax(i), back)
		}
	}
}

// TestHistogramQuantileBounds is the accuracy contract: the estimate
// never understates the exact quantile and overstates it by at most the
// 1/2^histSubBits sub-bucket resolution.
func TestHistogramQuantileBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	values := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~9 decades, the realistic latency shape.
		v := uint64(1) << uint(rng.Intn(30))
		v += uint64(rng.Int63n(int64(v)))
		values = append(values, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0} {
		rank := int(q*float64(len(values))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := values[rank]
		got := uint64(h.Quantile(q))
		if got < exact {
			t.Errorf("q=%v: estimate %d understates exact %d", q, got, exact)
		}
		bound := exact + exact>>histSubBits + 1
		if got > bound {
			t.Errorf("q=%v: estimate %d exceeds resolution bound %d (exact %d)", q, got, bound, exact)
		}
	}
	if h.Max() != time.Duration(values[len(values)-1]) {
		t.Errorf("Max=%v, exact %d", h.Max(), values[len(values)-1])
	}
	if h.Min() != time.Duration(values[0]) {
		t.Errorf("Min=%v, exact %d", h.Min(), values[0])
	}
}

// TestHistogramMergeAssociativity is the mergeability contract: folding
// per-worker histograms in any order and any grouping is bit-identical.
func TestHistogramMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	parts := make([]*Histogram, 4)
	for i := range parts {
		parts[i] = &Histogram{}
		for j := 0; j < 1000+rng.Intn(1000); j++ {
			parts[i].Record(time.Duration(rng.Int63n(int64(10 * time.Second))))
		}
	}
	// ((a+b)+c)+d
	left := &Histogram{}
	for _, p := range parts {
		left.Merge(p)
	}
	// a+((b+c)+d) in reversed order
	inner := &Histogram{}
	for i := len(parts) - 1; i >= 1; i-- {
		inner.Merge(parts[i])
	}
	right := &Histogram{}
	right.Merge(parts[0])
	right.Merge(inner)
	if !reflect.DeepEqual(left, right) {
		t.Fatalf("merge grouping/order changed the histogram:\nleft  %v\nright %v", left, right)
	}
	var total uint64
	for _, p := range parts {
		total += p.Count()
	}
	if left.Count() != total {
		t.Errorf("merged count %d, parts sum %d", left.Count(), total)
	}
	// Merging an empty histogram is the identity.
	before := *left
	left.Merge(&Histogram{})
	left.Merge(nil)
	if !reflect.DeepEqual(&before, left) {
		t.Error("merging empty/nil changed the histogram")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram must read as zero")
	}
	h.Record(-5 * time.Second) // clamps to 0
	h.Record(time.Millisecond)
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 0 {
		t.Errorf("negative record did not clamp: min %v", h.Min())
	}
	if got := h.Quantile(1); got != time.Millisecond {
		t.Errorf("p100 %v", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Errorf("q=0 returned %v, want min", got)
	}
}
