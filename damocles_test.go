package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestNewProjectQuickstart(t *testing.T) {
	proj, err := NewProject(EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	k, err := proj.Engine.CreateOID("CPU", "HDL_model", "yves")
	if err != nil {
		t.Fatal(err)
	}
	if err := proj.Engine.PostAndDrain(Event{
		Name: "hdl_sim", Dir: DirDown, Target: k, Args: []string{"good"},
	}); err != nil {
		t.Fatal(err)
	}
	v, _, err := proj.DB.GetProp(k, "sim_result")
	if err != nil || v != "good" {
		t.Fatalf("sim_result = %q, %v", v, err)
	}
	rep := Report(proj.DB, proj.Blueprint)
	if len(rep) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	out := FormatReport(rep)
	if !strings.Contains(out, "CPU,HDL_model,1") {
		t.Errorf("formatted report:\n%s", out)
	}
}

func TestNewProjectBadBlueprint(t *testing.T) {
	if _, err := NewProject("not a blueprint"); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := NewProject(`blueprint b
view v
    property p default a
    property p default b
endview
endblueprint`); err == nil {
		t.Error("analyzer errors accepted")
	}
}

func TestFacadeRoundTrips(t *testing.T) {
	bp, err := ParseBlueprint(EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseBlueprint(PrintBlueprint(bp)); err != nil {
		t.Errorf("print/parse: %v", err)
	}
	k, err := ParseKey("reg,verilog,4")
	if err != nil || k.Version != 4 {
		t.Errorf("ParseKey: %v %v", k, err)
	}
	db := NewDB()
	if _, err := db.NewVersion("a", "v"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats().OIDs != 1 {
		t.Error("load lost data")
	}
}

func TestGapFacade(t *testing.T) {
	proj, err := NewProject(EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proj.Engine.CreateOID("CPU", "schematic", "x"); err != nil {
		t.Fatal(err)
	}
	if err := proj.Engine.Drain(); err != nil {
		t.Fatal(err)
	}
	gap := Gap(proj.DB, proj.Blueprint)
	if len(gap) != 1 || gap[0].Ready {
		t.Errorf("gap = %+v", gap)
	}
}
