package engine

import (
	"strings"
	"testing"

	"repro/internal/bpl"
	"repro/internal/exec"
	"repro/internal/meta"
)

// TestEDTCScenario replays the designer scenario narrated in section 3.4 of
// the paper against the paper's own EDTC_example BluePrint and asserts every
// state the narrative mentions.
func TestEDTCScenario(t *testing.T) {
	reg := exec.NewRegistry()
	rec := &exec.Recorder{}
	e := newTestEngine(t, bpl.EDTCExample, WithExecutor(exec.Tee{reg, rec}))
	db := e.DB()

	// The netlister wrapper: invoked automatically on schematic check-in,
	// it creates the next netlist version and links it to the schematic.
	reg.Register("netlister", func(inv exec.Invocation) error {
		schKey, err := meta.ParseKey(inv.Args[0])
		if err != nil {
			return err
		}
		nl, err := e.CreateOID(schKey.Block, "netlist", inv.Env["user"])
		if err != nil {
			return err
		}
		_, err = e.CreateLink(meta.DeriveLink, schKey, nl)
		return err
	})

	// "A group of designers starts out by writing an HDL model for their
	// new design. The top block name is CPU. So they create an OID
	// <CPU.HDL_model.1>."
	hdl1 := mustCreate(t, e, "CPU", "HDL_model")
	if hdl1 != (meta.Key{Block: "CPU", View: "HDL_model", Version: 1}) {
		t.Fatalf("hdl1 = %v", hdl1)
	}
	// "This property has a value of bad each time a new OID is created."
	if got := prop(t, e, hdl1, "sim_result"); got != "bad" {
		t.Errorf("initial sim_result = %q, want bad", got)
	}

	// "They then simulate the model and get a negative result."
	if err := e.PostAndDrain(Event{Name: "hdl_sim", Dir: bpl.DirDown, Target: hdl1, Args: []string{"4 errors"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, hdl1, "sim_result"); got != "4 errors" {
		t.Errorf("sim_result = %q, want \"4 errors\"", got)
	}

	// "The designers then modify their model and save it as a new version
	// <CPU.HDL_model.2>. They run the simulation again and this time get a
	// good result."
	hdl2 := mustCreate(t, e, "CPU", "HDL_model")
	if hdl2.Version != 2 {
		t.Fatalf("hdl2 = %v", hdl2)
	}
	if got := prop(t, e, hdl2, "sim_result"); got != "bad" {
		t.Errorf("new version sim_result = %q, want default bad", got)
	}
	if err := e.PostAndDrain(Event{Name: "hdl_sim", Dir: bpl.DirDown, Target: hdl2, Args: []string{"good"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, hdl2, "sim_result"); got != "good" {
		t.Errorf("sim_result = %q, want good", got)
	}

	// A synthesis library is installed; schematics depend on it.
	lib := mustCreate(t, e, "stdlib", "synth_lib")

	// "They then synthesize the design from their model. This creates OIDs
	// <CPU.schematic.1> and <REG.schematic.1>. The second OID is part of
	// the hierarchy of the CPU schematic.  It has a use link which points
	// to it from the CPU schematic."  The synthesis wrapper also records
	// the derivation from the HDL model and the library dependency, then
	// checks the schematic in.
	cpuSch := mustCreate(t, e, "CPU", "schematic")
	regSch := mustCreate(t, e, "REG", "schematic")
	if _, err := e.CreateLink(meta.UseLink, cpuSch, regSch); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateLink(meta.DeriveLink, hdl2, cpuSch); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateLink(meta.DeriveLink, lib, cpuSch); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: cpuSch, User: "marc"}); err != nil {
		t.Fatal(err)
	}
	// The CPU check-in invalidated its hierarchical component via the use
	// link; the synthesis wrapper checks the component in as well.
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: regSch, User: "marc"}); err != nil {
		t.Fatal(err)
	}

	// "The BluePrint in this example has been set up to automatically
	// create a new netlist each time a new schematic is checked in."
	nl, err := db.Latest("CPU", "netlist")
	if err != nil {
		t.Fatalf("netlister did not run: %v", err)
	}
	if nl.Version != 1 {
		t.Errorf("netlist version = %d", nl.Version)
	}
	if !containsScript(rec.Scripts(), "netlister") {
		t.Errorf("netlister not invoked: %v", rec.Scripts())
	}
	// The ckin rule also recorded who touched the schematic.
	if got := prop(t, e, cpuSch, "lvs_res"); got != "CPU,schematic,1 changed by marc" {
		t.Errorf("lvs_res = %q", got)
	}

	// "Now the designers look at their CPU schematic and decide to change
	// part of the design so they modify their HDL model thereby creating a
	// new OID <CPU.HDL_model.3>."  The move-tagged derived link shifts
	// from version 2 to version 3.
	hdl3 := mustCreate(t, e, "CPU", "HDL_model")
	if hdl3.Version != 3 {
		t.Fatalf("hdl3 = %v", hdl3)
	}
	if got := db.LinksFrom(hdl3); len(got) != 1 || got[0].To != cpuSch {
		t.Fatalf("derived link did not shift to hdl3: %v", got)
	}
	if got := db.LinksFrom(hdl2); len(got) != 0 {
		t.Errorf("hdl2 still has outgoing links: %v", got)
	}

	// Everything is up to date before the check-in.
	for _, k := range []meta.Key{cpuSch, regSch} {
		if got := prop(t, e, k, "uptodate"); got != "true" {
			t.Errorf("%v uptodate = %q before ckin", k, got)
		}
	}

	// "when they check in their new model <CPU.HDL_model.3>, the ckin
	// event is used to post an outofdate event to all the derived views...
	// the CPU schematic and all of its hierarchical components receive the
	// event."
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: hdl3, User: "yves"}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, hdl3, "uptodate"); got != "true" {
		t.Errorf("hdl3 uptodate = %q (the checked-in OID itself stays current)", got)
	}
	if got := prop(t, e, cpuSch, "uptodate"); got != "false" {
		t.Errorf("CPU schematic uptodate = %q, want false", got)
	}
	if got := prop(t, e, regSch, "uptodate"); got != "false" {
		t.Errorf("REG schematic uptodate = %q, want false (hierarchy)", got)
	}
	// The netlist is downstream of the schematic via a derived link that
	// propagates outofdate, so it is invalidated too.
	if got := prop(t, e, nl, "uptodate"); got != "false" {
		t.Errorf("netlist uptodate = %q, want false", got)
	}
	// The upstream library is untouched.
	if got := prop(t, e, lib, "uptodate"); got != "true" {
		t.Errorf("synth_lib uptodate = %q", got)
	}

	// The schematic state summary reflects the failure reasons.
	if got := prop(t, e, cpuSch, "state"); got != "false" {
		t.Errorf("schematic state = %q", got)
	}
}

// TestEDTCLayoutLVSFlow exercises the layout view rules of the EDTC
// blueprint: drc/lvs result events and the lvs re-posting on layout
// check-in.
func TestEDTCLayoutLVSFlow(t *testing.T) {
	e := newTestEngine(t, bpl.EDTCExample)
	sch := mustCreate(t, e, "CPU", "schematic")
	lay := mustCreate(t, e, "CPU", "layout")
	if _, err := e.CreateLink(meta.DeriveLink, sch, lay); err != nil {
		t.Fatal(err)
	}
	// Initial layout state is false: bad drc, not_equiv lvs.
	if got := prop(t, e, lay, "state"); got != "false" {
		t.Errorf("initial layout state = %q", got)
	}

	// DRC and LVS pass.
	if err := e.PostAndDrain(Event{Name: "drc", Dir: bpl.DirDown, Target: lay, Args: []string{"good"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: "lvs", Dir: bpl.DirDown, Target: lay, Args: []string{"is_equiv"}}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, lay, "drc_result"); got != "good" {
		t.Errorf("drc_result = %q", got)
	}
	if got := prop(t, e, lay, "lvs_result"); got != "is_equiv" {
		t.Errorf("lvs_result = %q", got)
	}
	if got := prop(t, e, lay, "state"); got != "true" {
		t.Errorf("layout state = %q, want true", got)
	}

	// Layout check-in resets its lvs_result and posts lvs up toward the
	// schematic through the equivalence link.
	if err := e.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirUp, Target: lay, User: "salma"}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, lay, "lvs_result"); got != "CPU,layout,1 changed by salma" {
		t.Errorf("lvs_result after ckin = %q", got)
	}
	if got := prop(t, e, lay, "state"); got != "false" {
		t.Errorf("layout state after ckin = %q, want false", got)
	}
}

// TestEDTCSchematicStateExpression pins down the three-way conjunction of
// the schematic's continuous assignment.
func TestEDTCSchematicStateExpression(t *testing.T) {
	e := newTestEngine(t, bpl.EDTCExample)
	sch := mustCreate(t, e, "CPU", "schematic")
	set := func(name, v string) {
		t.Helper()
		if err := e.DB().SetProp(sch, name, v); err != nil {
			t.Fatal(err)
		}
	}
	eval := func() string {
		t.Helper()
		// Any event on the OID re-evaluates lets; use a no-rule event.
		if err := e.PostAndDrain(Event{Name: "poke", Dir: bpl.DirDown, Target: sch}); err != nil {
			t.Fatal(err)
		}
		return prop(t, e, sch, "state")
	}
	if got := eval(); got != "false" {
		t.Errorf("state = %q at defaults", got)
	}
	set("nl_sim_res", "good")
	set("lvs_res", "is_equiv")
	if got := eval(); got != "true" {
		t.Errorf("state = %q with all conditions met", got)
	}
	set("uptodate", "false")
	if got := eval(); got != "false" {
		t.Errorf("state = %q with stale data", got)
	}
}

func containsScript(scripts []string, name string) bool {
	for _, s := range scripts {
		if strings.HasPrefix(s, name) {
			return true
		}
	}
	return false
}
