package task

import (
	"fmt"

	"repro/internal/wrapper"
)

// Standard task library: the design activities of the paper's example
// flow packaged as reusable tasks.

// VerifyModel simulates a block's HDL model and requires a good result.
func VerifyModel(block string) Task {
	return Task{
		Name: "verify_" + block,
		Steps: []Step{
			{
				Name: "simulate",
				Run: func(s *wrapper.Session) error {
					k, err := s.Eng.DB().Latest(block, "HDL_model")
					if err != nil {
						return err
					}
					res, err := s.RunHDLSim(k)
					if err != nil {
						return err
					}
					if res != "good" {
						return fmt.Errorf("simulation failed: %s", res)
					}
					return nil
				},
			},
		},
	}
}

// ImplementBlock carries a verified model through synthesis, netlisting
// and netlist simulation — the front half of Figure 4's flow, with the
// task-level state requirements the paper's conclusion gestures at.
func ImplementBlock(block, library string) Task {
	return Task{
		Name: "implement_" + block,
		Steps: []Step{
			{
				Name: "synthesize",
				Require: []Requirement{
					{Block: block, View: "HDL_model", Prop: "sim_result", Want: "good"},
					{Block: block, View: "HDL_model", Prop: "uptodate", Want: "true"},
				},
				Run: func(s *wrapper.Session) error {
					hdl, err := s.Eng.DB().Latest(block, "HDL_model")
					if err != nil {
						return err
					}
					lib, err := s.Eng.DB().Latest(library, "synth_lib")
					if err != nil {
						return err
					}
					_, err = s.Synthesize(hdl, lib)
					return err
				},
			},
			{
				Name: "netlist",
				Require: []Requirement{
					{Block: block, View: "schematic", Prop: "uptodate", Want: "true"},
				},
				Run: func(s *wrapper.Session) error {
					sch, err := s.Eng.DB().Latest(block, "schematic")
					if err != nil {
						return err
					}
					_, err = s.RunNetlister(sch)
					return err
				},
			},
			{
				Name: "simulate_netlist",
				Require: []Requirement{
					{Block: block, View: "netlist", Prop: "uptodate", Want: "true"},
				},
				Run: func(s *wrapper.Session) error {
					nl, err := s.Eng.DB().Latest(block, "netlist")
					if err != nil {
						return err
					}
					res, err := s.RunNetlistSim(nl)
					if err != nil {
						return err
					}
					if res != "good" {
						return fmt.Errorf("netlist simulation failed: %s", res)
					}
					return nil
				},
			},
		},
	}
}

// PhysicalSignoff carries a simulated netlist through placement, DRC and
// LVS — the back half of the flow.
func PhysicalSignoff(block string) Task {
	return Task{
		Name: "signoff_" + block,
		Steps: []Step{
			{
				Name: "place_route",
				Require: []Requirement{
					{Block: block, View: "netlist", Prop: "sim_result", Want: "good"},
					{Block: block, View: "netlist", Prop: "uptodate", Want: "true"},
				},
				Run: func(s *wrapper.Session) error {
					nl, err := s.Eng.DB().Latest(block, "netlist")
					if err != nil {
						return err
					}
					_, err = s.PlaceRoute(nl)
					return err
				},
			},
			{
				Name: "drc",
				Run: func(s *wrapper.Session) error {
					lay, err := s.Eng.DB().Latest(block, "layout")
					if err != nil {
						return err
					}
					res, err := s.RunDRC(lay)
					if err != nil {
						return err
					}
					if res != "good" {
						// One repair attempt, as a designer would.
						if err := s.FixLayout(lay); err != nil {
							return err
						}
						if res, err = s.RunDRC(lay); err != nil {
							return err
						}
						if res != "good" {
							return fmt.Errorf("drc still failing: %s", res)
						}
					}
					return nil
				},
			},
			{
				Name: "lvs",
				Run: func(s *wrapper.Session) error {
					lay, err := s.Eng.DB().Latest(block, "layout")
					if err != nil {
						return err
					}
					nl, err := s.Eng.DB().Latest(block, "netlist")
					if err != nil {
						return err
					}
					res, err := s.RunLVS(lay, nl)
					if err != nil {
						return err
					}
					if res != "is_equiv" {
						return fmt.Errorf("lvs mismatch: %s", res)
					}
					return nil
				},
			},
		},
	}
}
