package meta

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func viewSave(t *testing.T, v *View) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := v.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadViewPointInTime pins views at successive epochs and checks each
// reads exactly the state of its moment — later mutations invisible,
// earlier ones present — and that a view Save equals a live Save taken at
// the same quiesced point.
func TestReadViewPointInTime(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "cpu", "HDL_model")
	db.EnableMVCC()

	if err := db.SetProp(a, "state", "old"); err != nil {
		t.Fatal(err)
	}
	v1 := db.ReadView()
	defer v1.Close()
	liveAtV1 := saveDB(t, db)

	b := mustNewVersion(t, db, "alu", "HDL_model")
	if err := db.SetProp(a, "state", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddLink(DeriveLink, a, b, "", []string{"ckin"}, nil); err != nil {
		t.Fatal(err)
	}
	v2 := db.ReadView()
	defer v2.Close()

	// v1: pre-mutation state, byte-stable, equal to the live Save taken then.
	if v1.HasOID(b) {
		t.Error("v1 sees an OID created after it was pinned")
	}
	o, err := v1.GetOID(a)
	if err != nil || o.Props["state"] != "old" {
		t.Errorf("v1 GetOID(a) = %v, %v; want state=old", o, err)
	}
	if got := viewSave(t, v1); !bytes.Equal(got, liveAtV1) {
		t.Errorf("v1 Save differs from the live Save at pin time:\n%s\nvs\n%s", got, liveAtV1)
	}
	v1.EachLink(func(l *Link) bool {
		t.Errorf("v1 sees link %d created after it", l.ID)
		return true
	})

	// v2: current state, equal to a live Save now.
	o2, err := v2.GetOID(a)
	if err != nil || o2.Props["state"] != "new" {
		t.Errorf("v2 GetOID(a) = %v, %v; want state=new", o2, err)
	}
	if !v2.HasOID(b) {
		t.Error("v2 misses OID b")
	}
	if got, live := viewSave(t, v2), saveDB(t, db); !bytes.Equal(got, live) {
		t.Errorf("v2 Save differs from live Save:\n%s\nvs\n%s", got, live)
	}

	// Re-reading v1 after everything still yields the same bytes.
	if got := viewSave(t, v1); !bytes.Equal(got, liveAtV1) {
		t.Error("v1 is not byte-stable after later mutations")
	}

	// ReadViewAt re-pins the same positions exactly.
	r1, err := db.ReadViewAt(v1.LSN())
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	if got := viewSave(t, r1); !bytes.Equal(got, liveAtV1) {
		t.Error("ReadViewAt(v1.LSN) differs from v1")
	}
}

func saveDB(t *testing.T, db *DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadViewTombstones checks deletions are versioned: a view pinned
// before a DeleteLink/PruneVersions still sees the objects, one pinned
// after does not.
func TestReadViewTombstones(t *testing.T) {
	db := NewDB()
	db.EnableMVCC()
	a := mustNewVersion(t, db, "cpu", "HDL_model")
	b := mustNewVersion(t, db, "alu", "HDL_model")
	mustNewVersion(t, db, "cpu", "HDL_model") // version 2
	id, err := db.AddLink(DeriveLink, a, b, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	before := db.ReadView()
	defer before.Close()

	if err := db.DeleteLink(id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.PruneVersions("cpu", "HDL_model", 1); err != nil {
		t.Fatal(err)
	}
	after := db.ReadView()
	defer after.Close()

	if !before.HasOID(a) {
		t.Error("pre-prune view lost cpu v1")
	}
	found := false
	before.EachLink(func(l *Link) bool { found = found || l.ID == id; return true })
	if !found {
		t.Error("pre-delete view lost the link")
	}
	if after.HasOID(a) {
		t.Error("post-prune view still sees pruned cpu v1")
	}
	after.EachLink(func(l *Link) bool {
		if l.ID == id {
			t.Error("post-delete view still sees the link")
		}
		return true
	})
	if k, ok := after.Latest("cpu", "HDL_model"); !ok || k.Version != 2 {
		t.Errorf("after.Latest = %v, %v; want cpu v2", k, ok)
	}
}

// TestViewByteStableUnderWriters is the -race hammer: four writers mutate
// continuously while readers pin views and assert each is byte-stable —
// two Saves of one view, and a re-pin of the same LSN, all identical.
func TestViewByteStableUnderWriters(t *testing.T) {
	db := NewDBWithShards(4)
	db.EnableMVCC()
	var seed []Key
	for i := 0; i < 8; i++ {
		seed = append(seed, mustNewVersion(t, db, fmt.Sprintf("blk%d", i), "HDL_model"))
	}

	const writerOps = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var links []LinkID
			for i := 0; i < writerOps; i++ {
				k := seed[(w*7+i)%len(seed)]
				switch i % 5 {
				case 0:
					if _, err := db.NewVersion(k.Block, "netlist"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if err := db.SetProp(k, "state", fmt.Sprintf("w%d-%d", w, i)); err != nil {
						t.Error(err)
						return
					}
				case 2:
					err := db.UpdateOID(k, func(o *OID) {
						o.Props["count"] = fmt.Sprint(i)
						delete(o.Props, "tmp")
					})
					if err != nil {
						t.Error(err)
						return
					}
				case 3:
					to := seed[(w*3+i+1)%len(seed)]
					if id, err := db.AddLink(DeriveLink, k, to, "", []string{"ckin"}, nil); err == nil {
						links = append(links, id)
					}
				case 4:
					if len(links) > 0 {
						id := links[len(links)-1]
						links = links[:len(links)-1]
						if err := db.DeleteLink(id); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	readers := 3
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := db.ReadView()
				b1 := viewSave(t, v)
				b2 := viewSave(t, v)
				if !bytes.Equal(b1, b2) {
					t.Errorf("view at lsn %d not byte-stable across re-reads", v.LSN())
					v.Close()
					return
				}
				rv, err := db.ReadViewAt(v.LSN())
				if err != nil {
					t.Errorf("re-pin lsn %d: %v", v.LSN(), err)
					v.Close()
					return
				}
				if b3 := viewSave(t, rv); !bytes.Equal(b1, b3) {
					t.Errorf("ReadViewAt(%d) differs from the view pinned there", v.LSN())
				}
				rv.Close()
				v.Close()
			}
		}()
	}
	rg.Wait()

	// Quiesced: a fresh view equals the live Save.
	if got, live := viewSave(t, db.ReadView()), saveDB(t, db); !bytes.Equal(got, live) {
		t.Error("final view differs from live Save")
	}
}

// TestReclaimVersions checks the reclaimer trims below the floor: with no
// pins the horizon advances to the stable epoch, old positions refuse
// with ErrViewReclaimed, and a pinned view holds the floor back.
func TestReclaimVersions(t *testing.T) {
	db := NewDB()
	db.EnableMVCC()
	k := mustNewVersion(t, db, "cpu", "HDL_model")
	for i := 0; i < 10; i++ {
		if err := db.SetProp(k, "state", fmt.Sprint(i)); err != nil {
			t.Fatal(err)
		}
	}
	tip := db.ReadView()
	tipLSN := tip.LSN()
	tip.Close()
	old, err := db.ReadViewAt(tipLSN - 5)
	if err != nil {
		t.Fatal(err)
	}

	// A pinned view holds the floor at its LSN.
	db.ReclaimVersions()
	if h := db.VersionHorizon(); h > old.LSN() {
		t.Fatalf("horizon %d advanced past the pinned view at %d", h, old.LSN())
	}
	if got := viewState(t, old, k); got != "4" {
		t.Errorf("pinned view reads state=%q, want 4", got)
	}

	cur := db.ReadView()
	old.Close()
	db.ReclaimVersions()
	if h := db.VersionHorizon(); h != cur.LSN() {
		t.Errorf("horizon = %d, want stable epoch %d", h, cur.LSN())
	}
	if _, err := db.ReadViewAt(cur.LSN() - 1); !errors.Is(err, ErrViewReclaimed) {
		t.Errorf("ReadViewAt below horizon: err = %v, want ErrViewReclaimed", err)
	}
	// The retained base still serves current reads.
	if got := viewState(t, cur, k); got != "9" {
		t.Errorf("current view reads state=%q, want 9", got)
	}
	cur.Close()
}

// viewState reads the "state" property of one OID through a view.
func viewState(t *testing.T, v *View, k Key) string {
	t.Helper()
	o, err := v.GetOID(k)
	if err != nil {
		t.Fatal(err)
	}
	return o.Props["state"]
}

// TestRebuildComponentsSplits checks the satellite: deleting the only
// propagating link between two blocks leaves the merge-only partition
// coarse, and RebuildComponents splits it again.
func TestRebuildComponentsSplits(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "cpu", "HDL_model")
	b := mustNewVersion(t, db, "alu", "HDL_model")
	id, err := db.AddLink(DeriveLink, a, b, "", []string{"ckin"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !db.SameComponent("cpu", "alu") {
		t.Fatal("propagating link did not merge components")
	}
	if err := db.DeleteLink(id); err != nil {
		t.Fatal(err)
	}
	if !db.SameComponent("cpu", "alu") {
		t.Fatal("merge-only partition split without a rebuild (unexpected)")
	}
	if db.ComponentChurn() == 0 {
		t.Error("deleting a propagating link did not count as churn")
	}
	gen := db.ComponentGen()
	db.RebuildComponents()
	if db.SameComponent("cpu", "alu") {
		t.Error("RebuildComponents did not split the stale component")
	}
	if db.ComponentGen() == gen {
		t.Error("RebuildComponents did not bump the generation")
	}
	if db.ComponentChurn() != 0 {
		t.Error("RebuildComponents did not reset churn")
	}

	// A still-linked pair stays merged across a rebuild.
	c := mustNewVersion(t, db, "reg", "HDL_model")
	if _, err := db.AddLink(DeriveLink, b, c, "", []string{"ckin"}, nil); err != nil {
		t.Fatal(err)
	}
	db.RebuildComponents()
	if !db.SameComponent("alu", "reg") {
		t.Error("rebuild lost a live propagating link's merge")
	}
}
