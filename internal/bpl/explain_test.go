package bpl

import (
	"reflect"
	"testing"
)

func TestExplainerMatchesExplainFailure(t *testing.T) {
	exprs := []string{
		`($drc == good)`,
		`($drc != bad)`,
		`$uptodate`,
		`not $broken`,
		`($a == x) and ($b == y)`,
		`($a == x) or ($b == y)`,
		`not (($a == x) and ($b == y))`,
		`(($a == x) or ($b == y)) and not $c and ($d != z)`,
	}
	lookups := []LookupFunc{
		func(string) string { return "" },
		func(n string) string { return n },
		func(n string) string {
			return map[string]string{"a": "x", "b": "y", "c": "true", "d": "z",
				"drc": "good", "uptodate": "true", "broken": "false"}[n]
		},
		func(n string) string {
			return map[string]string{"a": "wrong", "b": "y", "c": "false",
				"drc": "bad", "uptodate": "false", "broken": "true"}[n]
		},
	}
	for _, src := range exprs {
		bp, err := Parse("blueprint x\nview v\n    let t = " + src + "\nendview\nendblueprint")
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e := bp.Views[0].Lets[0].Expr
		x := CompileExplainer(e)
		for i, lookup := range lookups {
			want := ExplainFailure(e, lookup)
			got := x.Explain(lookup)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%q lookup %d: Explain = %q, want %q", src, i, got, want)
			}
		}
	}
}
