// Package cli implements the command-line tools' logic behind thin main
// wrappers, so the commands themselves are testable: blueprint checking,
// state queries against a server, and the flow simulator.
package cli

import (
	"fmt"
	"io"
	"os"

	"repro/internal/bpl"
)

// BPCheckFiles validates each BluePrint file: parse, analyze, optionally
// print the canonical form to out.  Diagnostics go to errw.  It returns
// true when every file is error-free.
func BPCheckFiles(out, errw io.Writer, paths []string, printForm, quiet bool) bool {
	allOK := true
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(errw, "bpcheck: %v\n", err)
			allOK = false
			continue
		}
		if !BPCheckSource(out, errw, path, string(data), printForm, quiet) {
			allOK = false
		}
	}
	return allOK
}

// BPCheckSource validates one BluePrint source text labelled with name.
func BPCheckSource(out, errw io.Writer, name, src string, printForm, quiet bool) bool {
	bp, err := bpl.Parse(src)
	if err != nil {
		fmt.Fprintf(errw, "%s:%v\n", name, err)
		return false
	}
	ds := bpl.Analyze(bp)
	ok := !bpl.HasErrors(ds)
	for _, d := range ds {
		if quiet && d.Sev != bpl.SevError {
			continue
		}
		fmt.Fprintf(errw, "%s: %s\n", name, d)
	}
	if ok {
		fmt.Fprintf(out, "%s: blueprint %s ok (%d views, %d events)\n",
			name, bp.Name, len(bp.Views), len(bp.Events()))
		if printForm {
			fmt.Fprint(out, bpl.Print(bp))
		}
	}
	return ok
}
