// edtcflow replays the complete designer scenario of section 3.4 of the
// paper — three HDL model versions, synthesis into a two-block hierarchy,
// automatic netlisting through the exec rule, and the outofdate wave that
// follows the final check-in — then prints every state the narrative
// mentions, side by side with the paper's claims.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/state"
)

func main() {
	log.SetFlags(0)
	sess, rec, err := flow.NewEDTCSession(1995)
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.RunEDTCScenario(sess)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The story of section 3.4, replayed:")
	fmt.Println()
	fmt.Printf("1. %v written and simulated       -> %q (paper: negative result)\n", res.HDL1, res.FirstSim)
	fmt.Printf("2. %v fixed and re-simulated      -> %q (paper: good)\n", res.HDL2, res.SecondSim)
	fmt.Printf("3. synthesis created %v and its component %v\n", res.CPUSchematic, res.REGSchematic)
	fmt.Printf("4. the netlister ran automatically on check-in -> %v\n", res.Netlist)
	fmt.Printf("5. the designers changed the model again -> %v\n", res.HDL3)
	fmt.Printf("   the ckin event posted outofdate down the derived links;\n")
	fmt.Printf("   invalidated: %v\n", res.StaleAfterChange)
	fmt.Println()

	fmt.Println("Automatic tool invocations observed by the executor:")
	for _, inv := range rec.Invocations() {
		fmt.Printf("   exec %s (event %s at %s)\n", inv.String(), inv.Env["event"], inv.Env["oid"])
	}
	fmt.Println()

	fmt.Println("Project state after the change (the designers' query):")
	fmt.Print(state.Format(state.Gap(sess.Eng.DB(), sess.Eng.Blueprint())))
}
