package bpl

import (
	"reflect"
	"testing"
)

// indexTestSrc exercises every override dimension: default-view rules, lets
// and properties overridden (and not) by a specific view, plus link
// templates of both classes.
const indexTestSrc = `blueprint idx
view default
    property uptodate default true copy
    property shared default x
    let state = ($uptodate == true)
    let common = ($shared == x)
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
view schematic
    property shared default y
    let state = ($uptodate == true) and ($drc == good)
    use_link move propagates outofdate
    link_from HDL_model copy propagates outofdate type derived
    when ckin do drc = unknown; notify "ckin $oid"; exec check.sh "$oid" done
    when drc_run do drc = $arg1 done
endview
view HDL_model
endview
endblueprint`

func indexViewsAndEvents(bp *Blueprint) ([]string, []string) {
	views := append(bp.ViewNames(), "undeclared_view")
	events := append(bp.Events(), "no_such_event")
	return views, events
}

func TestIndexMatchesEffectiveResolution(t *testing.T) {
	for _, src := range []string{indexTestSrc, EDTCExample, DSMExample} {
		bp, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		ix := NewIndex(bp)
		views, events := indexViewsAndEvents(bp)
		for _, v := range views {
			if got, want := ix.Lets(v), bp.EffectiveLets(v); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Lets(%q) = %v, want %v", bp.Name, v, got, want)
			}
			if got, want := ix.Properties(v), bp.EffectiveProperties(v); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Properties(%q) = %v, want %v", bp.Name, v, got, want)
			}
			if got, want := ix.Links(v), bp.EffectiveLinks(v); !reflect.DeepEqual(got, want) {
				t.Errorf("%s: Links(%q) = %v, want %v", bp.Name, v, got, want)
			}
			for _, ev := range events {
				if got, want := ix.Rules(v, ev), bp.EffectiveRules(v, ev); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: Rules(%q, %q) = %v, want %v", bp.Name, v, ev, got, want)
				}
			}
			for _, w := range views {
				for _, use := range []bool{true, false} {
					gd, gok := ix.LinkTemplate(use, w, v)
					wd, wok := bp.LinkTemplate(use, w, v)
					if gd != wd || gok != wok {
						t.Errorf("%s: LinkTemplate(%v, %q, %q) = %v,%v want %v,%v",
							bp.Name, use, w, v, gd, gok, wd, wok)
					}
				}
			}
		}
	}
}

func TestIndexProgramPhases(t *testing.T) {
	bp, err := Parse(indexTestSrc)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ix := NewIndex(bp)
	p := ix.Program("schematic", "ckin")
	if p == nil {
		t.Fatal("no program for (schematic, ckin)")
	}
	rules := bp.EffectiveRules("schematic", "ckin")
	if !reflect.DeepEqual(p.Rules, rules) {
		t.Fatalf("Rules = %v, want %v", p.Rules, rules)
	}
	// Re-partition the effective rules by phase and compare.
	var assigns []*AssignAction
	var execs []Action
	var posts []*PostAction
	for _, r := range rules {
		for _, a := range r.Actions {
			switch act := a.(type) {
			case *AssignAction:
				assigns = append(assigns, act)
			case *ExecAction, *NotifyAction:
				execs = append(execs, a)
			case *PostAction:
				posts = append(posts, act)
			}
		}
	}
	if !reflect.DeepEqual(p.Assigns, assigns) {
		t.Errorf("Assigns = %v, want %v", p.Assigns, assigns)
	}
	if !reflect.DeepEqual(p.Execs, execs) {
		t.Errorf("Execs = %v, want %v", p.Execs, execs)
	}
	if !reflect.DeepEqual(p.Posts, posts) {
		t.Errorf("Posts = %v, want %v", p.Posts, posts)
	}
	if got := ix.Program("schematic", "no_such_event"); got != nil {
		t.Errorf("Program for unknown event = %v, want nil", got)
	}
	if got := ix.Program("undeclared_view", "outofdate"); got == nil ||
		!reflect.DeepEqual(got.Rules, bp.EffectiveRules("undeclared_view", "outofdate")) {
		t.Errorf("Program for undeclared view did not fall back to default rules: %v", got)
	}
}
