package engine

import (
	"strings"
	"testing"

	"repro/internal/bpl"
	"repro/internal/exec"
	"repro/internal/meta"
)

// TestRulePhaseOrdering pins down the paper's processing order within one
// event: assign rules first, then continuous-assignment re-evaluation,
// then exec/notify, then posts — across *all* matching rules, grouped by
// phase, not rule by rule.
func TestRulePhaseOrdering(t *testing.T) {
	tr := &BufferTracer{}
	rec := &exec.Recorder{}
	e := newTestEngine(t, `blueprint order
view v
    property a default x
    property b default x
    let ready = ($a == set) and ($b == set)
    when go do exec tool_one; a = set done
    when go do b = set; exec tool_two done
endview
endblueprint`, WithTracer(tr), WithExecutor(rec))
	k := mustCreate(t, e, "blk", "v")
	if err := e.PostAndDrain(Event{Name: "go", Dir: bpl.DirDown, Target: k}); err != nil {
		t.Fatal(err)
	}
	// Both assigns ran before the lets were re-evaluated: ready is true
	// even though rule 1's exec textually precedes its assign and rule 2's
	// assign follows rule 1 entirely.
	if got := prop(t, e, k, "ready"); got != "true" {
		t.Errorf("ready = %q: assigns did not all precede let re-evaluation", got)
	}
	// Both execs ran, in rule order.
	scripts := rec.Scripts()
	if len(scripts) != 2 || scripts[0] != "tool_one" || scripts[1] != "tool_two" {
		t.Errorf("scripts = %v", scripts)
	}
	// The trace shows the phase grouping: all assigns before all execs.
	var seq []string
	for _, en := range tr.Entries() {
		switch en.Kind {
		case TraceAssign:
			seq = append(seq, "assign")
		case TraceExec:
			seq = append(seq, "exec")
		}
	}
	joined := strings.Join(seq, ",")
	if joined != "assign,assign,exec,exec" {
		t.Errorf("phase sequence = %s", joined)
	}
}

// TestExecSeesPhase1Assignments: the exec environment snapshot includes
// property values already updated by the assign phase of the same event.
func TestExecSeesPhase1Assignments(t *testing.T) {
	rec := &exec.Recorder{}
	e := newTestEngine(t, `blueprint b
view v
    property result default old
    when go do result = new; exec tool "$result" done
endview
endblueprint`, WithExecutor(rec))
	k := mustCreate(t, e, "blk", "v")
	if err := e.PostAndDrain(Event{Name: "go", Dir: bpl.DirDown, Target: k}); err != nil {
		t.Fatal(err)
	}
	invs := rec.Invocations()
	if len(invs) != 1 || invs[0].Args[0] != "new" {
		t.Errorf("exec saw %v, want the phase-1 value", invs)
	}
	if invs[0].Env["result"] != "new" {
		t.Errorf("env = %v", invs[0].Env)
	}
}

// TestDeferredExecOrdering: exec invocations fire after the triggering
// wave has fully propagated, so data the tool derives is not invalidated
// by the wave that requested it (the auto-netlister property).
func TestDeferredExecOrdering(t *testing.T) {
	var duringExec string
	reg := exec.NewRegistry()
	// The probe executor observes dst's state at the moment the exec rule
	// actually runs.
	e2 := newTestEngine(t, `blueprint b
view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down; exec probe done
    when outofdate do uptodate = false done
endview
view src
endview
view dst
    link_from src move propagates outofdate type derived
endview
endblueprint`, WithExecutor(reg))
	src2 := mustCreate(t, e2, "cpu", "src")
	dst2 := mustCreate(t, e2, "cpu", "dst")
	if _, err := e2.CreateLink(meta.DeriveLink, src2, dst2); err != nil {
		t.Fatal(err)
	}
	reg.Register("probe", func(exec.Invocation) error {
		duringExec, _, _ = e2.DB().GetProp(dst2, "uptodate")
		return nil
	})
	if err := e2.PostAndDrain(Event{Name: EventCheckin, Dir: bpl.DirDown, Target: src2}); err != nil {
		t.Fatal(err)
	}
	// By the time the probe ran, the wave had already invalidated dst:
	// exec is deferred past propagation.
	if duringExec != "false" {
		t.Errorf("probe saw uptodate=%q; exec ran before the wave settled", duringExec)
	}
}

// TestMaxHopsBackstop: with dedup ablated, the hop limit terminates
// propagation on cycles.
func TestMaxHopsBackstop(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view v
endview
endblueprint`, WithWaveDedup(false), WithMaxHops(10), WithMaxSteps(10_000))
	a := mustCreate(t, e, "a", "v")
	b := mustCreate(t, e, "b", "v")
	for _, pair := range [][2]meta.Key{{a, b}, {b, a}} {
		if _, err := e.DB().AddLink(meta.DeriveLink, pair[0], pair[1], "", []string{"outofdate"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PostAndDrain(Event{Name: EventOutOfDate, Dir: bpl.DirDown, Target: a}); err != nil {
		t.Fatalf("hop limit did not terminate the cycle: %v", err)
	}
	if got := prop(t, e, b, "uptodate"); got != "false" {
		t.Errorf("b uptodate = %q", got)
	}
}

func TestQueueLen(t *testing.T) {
	e := newTestEngine(t, tinyBP)
	k := mustCreate(t, e, "cpu", "src")
	if got := e.QueueLen(); got != 0 {
		t.Errorf("idle QueueLen = %d", got)
	}
	for i := 0; i < 3; i++ {
		if err := e.Post(Event{Name: "poke", Dir: bpl.DirDown, Target: k}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.QueueLen(); got != 3 {
		t.Errorf("QueueLen = %d, want 3", got)
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := e.QueueLen(); got != 0 {
		t.Errorf("post-drain QueueLen = %d", got)
	}
}

// TestOwnerFallsBackToEventUser: $owner resolves to the owner property
// when set and to the posting user otherwise.
func TestOwnerFallsBackToEventUser(t *testing.T) {
	e := newTestEngine(t, `blueprint b
view v
    property who default nobody
    when go do who = $owner done
endview
endblueprint`)
	k := mustCreate(t, e, "blk", "v") // owner = default engine user "yves"
	if err := e.PostAndDrain(Event{Name: "go", Dir: bpl.DirDown, Target: k, User: "poster"}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "who"); got != "yves" {
		t.Errorf("who = %q, want the owner property", got)
	}
	if err := e.DB().DelProp(k, meta.PropOwner); err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(Event{Name: "go", Dir: bpl.DirDown, Target: k, User: "poster"}); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, e, k, "who"); got != "poster" {
		t.Errorf("who = %q, want the posting user", got)
	}
}
