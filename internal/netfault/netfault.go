// Package netfault is the network twin of faultfs: an injectable seam
// under every outbound connection the system makes, plus deterministic
// fault injection over it.  Where faultfs models a disk that lies
// (ENOSPC, torn writes, wedged sync), netfault models a network that
// lies — added latency, bandwidth collapse, connections that die at the
// Nth read, and the worst case of all: the silent half-open link after
// a partition, where packets simply vanish and neither end is told.
//
// Two layers share one fault vocabulary:
//
//   - The Dialer seam (Dialer, FaultDialer, Injector): code dials
//     through a Dialer value instead of net.Dial, a passthrough by
//     default; a FaultDialer wraps the dial and every conn it produces,
//     applying a Plan with faultfs-style determinism (the Nth read
//     across the injector fails, sticky or once).
//
//   - The Proxy (proxy.go): an in-process TCP relay between two real
//     endpoints with independently faultable directions — the tool for
//     whole-cluster partition scripting between named nodes, where the
//     processes under test stay unmodified.
//
// The determinism contract matches faultfs: counters advance once per
// call in call order, so a single-threaded workload replays the same
// fault at the same op every run, and a sweep can enumerate (op, nth)
// pairs from a counting pre-run.
package netfault

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the default error an un-parameterized fault returns.
// Callers distinguish an injected failure from a real one with errors.Is.
var ErrInjected = errors.New("netfault: injected network error")

// Op selects which operation kind a fault applies to.
type Op int

const (
	// OpDial is a connection attempt through the dialer.
	OpDial Op = iota
	// OpRead is one Read call on a wrapped conn.
	OpRead
	// OpWrite is one Write call on a wrapped conn.
	OpWrite
	// OpClose is one Close call on a wrapped conn.
	OpClose

	opCount
)

var opNames = [opCount]string{"dial", "read", "write", "close"}

func (o Op) String() string {
	if o < 0 || o >= opCount {
		return fmt.Sprintf("op(%d)", int(o))
	}
	return opNames[o]
}

// Ops lists every operation kind, the axis of a fault sweep.
var Ops = []Op{OpDial, OpRead, OpWrite, OpClose}

// Fault is one rule of a Plan: when the Nth matching call of Op happens
// (counted across the whole Injector, 1-based), fail it — or, for the
// shaping and blackhole modes, distort every matching call from the Nth
// onward.
type Fault struct {
	// Op selects which operation kind the fault applies to.
	Op Op

	// Addr, when non-empty, restricts the fault to conns whose remote
	// address contains it as a substring.
	Addr string

	// Nth is the 1-based matching-call count the fault fires at; 0 means
	// the first matching call.
	Nth int64

	// Err is the error returned; nil means ErrInjected.  The conn is not
	// closed — the caller sees the error exactly as it would a kernel
	//-level reset, and owns the teardown.
	Err error

	// Sticky keeps the fault firing on every later matching call — the
	// dead-NIC model.  A non-sticky fault fires exactly once — the
	// transient-glitch model.
	Sticky bool

	// Latency is added to every matching call from Nth onward (fired or
	// not), the slow-link model.  Set LatencyOnly for a pure slowdown
	// that never errors.
	LatencyOnly bool
	Latency     time.Duration

	// Bandwidth, when positive, paces every matching call from Nth
	// onward to that many bytes per second — the congested-link model.
	// Like Latency it is a continuing distortion, not a one-shot error.
	Bandwidth int64

	// Blackhole silently swallows every matching call from Nth onward —
	// the half-open link: writes report success and vanish, reads block
	// until the conn's deadline (or Close), dials hang until the context
	// gives up.  No error, no RST — exactly what a partition looks like
	// from inside.
	Blackhole bool
}

func (f Fault) String() string {
	mode := "once"
	if f.Sticky {
		mode = "sticky"
	}
	if f.LatencyOnly {
		mode = "latency-only"
	}
	if f.Blackhole {
		mode = "blackhole"
	}
	s := fmt.Sprintf("%s#%d %s", f.Op, f.nth(), mode)
	if f.Addr != "" {
		s += " addr~" + f.Addr
	}
	if f.Latency > 0 {
		s += fmt.Sprintf(" +%v", f.Latency)
	}
	if f.Bandwidth > 0 {
		s += fmt.Sprintf(" %dB/s", f.Bandwidth)
	}
	return s
}

func (f Fault) nth() int64 {
	if f.Nth <= 0 {
		return 1
	}
	return f.Nth
}

// Plan is a deterministic fault schedule.  The zero Plan injects
// nothing (a pure counter).
type Plan struct {
	Faults []Fault
}

// SingleFault is the sweep constructor: a plan that fails exactly the
// nth call of op, once, with err (nil → ErrInjected).
func SingleFault(op Op, nth int64, err error) Plan {
	return Plan{Faults: []Fault{{Op: op, Nth: nth, Err: err}}}
}

// StickyFault is SingleFault with the dead-NIC model: the nth call of
// op and every matching call after it fail.
func StickyFault(op Op, nth int64, err error) Plan {
	return Plan{Faults: []Fault{{Op: op, Nth: nth, Err: err, Sticky: true}}}
}

// Dialer is the injectable network seam: anything that can open an
// outbound connection.  *net.Dialer satisfies it, so the passthrough
// default costs nothing.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

// System is the passthrough dialer — the real network.
var System Dialer = &net.Dialer{}

// timeoutError is the net.Error a blackholed read reports when the
// conn's read deadline expires: callers classifying stalls with
// net.Error.Timeout see exactly what a kernel-level deadline produces.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netfault: i/o timeout (blackholed)" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Injector applies a Plan to the calls flowing through wrapped conns
// and dials.  All counters are deterministic per call sequence; the
// Injector is safe for concurrent use (counts serialize under one
// mutex).
type Injector struct {
	mu       sync.Mutex
	plan     Plan
	counts   [opCount]int64
	fired    []string
	consumed []bool
}

// NewInjector builds an Injector over plan.  A zero Plan makes a pure
// counting wrapper — the pre-run half of a sweep.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, consumed: make([]bool, len(plan.Faults))}
}

// Count returns how many calls of op have been observed so far.
func (i *Injector) Count(op Op) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[op]
}

// Counts returns a copy of every per-op call counter.
func (i *Injector) Counts() map[Op]int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	m := make(map[Op]int64, len(Ops))
	for _, op := range Ops {
		if i.counts[op] > 0 {
			m[op] = i.counts[op]
		}
	}
	return m
}

// Fired returns a description of every fault that has fired, in order —
// empty means the plan never triggered.
func (i *Injector) Fired() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.fired...)
}

// verdict is one call's fate: shaping to apply, then either a clean
// pass, an injected error, or a blackhole.
type verdict struct {
	delay     time.Duration
	bandwidth int64 // min across matching faults; 0 = unshaped
	err       error
	blackhole bool
}

// check counts one call of op against addr and decides its fate.
func (i *Injector) check(op Op, addr string) verdict {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[op]++
	n := i.counts[op]
	var v verdict
	for fi := range i.plan.Faults {
		f := &i.plan.Faults[fi]
		if f.Op != op || (f.Addr != "" && !strings.Contains(addr, f.Addr)) {
			continue
		}
		if n < f.nth() {
			continue
		}
		if f.Latency > 0 {
			v.delay += f.Latency
		}
		if f.Bandwidth > 0 && (v.bandwidth == 0 || f.Bandwidth < v.bandwidth) {
			v.bandwidth = f.Bandwidth
		}
		if f.Blackhole {
			if !i.consumed[fi] {
				i.consumed[fi] = true
				i.fired = append(i.fired, fmt.Sprintf("%s @%s blackholed", f.String(), addr))
			}
			v.blackhole = true
			continue
		}
		if f.LatencyOnly {
			continue
		}
		if !f.Sticky && i.consumed[fi] {
			continue
		}
		if !f.Sticky && n != f.nth() {
			continue
		}
		i.consumed[fi] = true
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		i.fired = append(i.fired, fmt.Sprintf("%s @%s %s", f.String(), addr, err))
		v.err = &net.OpError{Op: op.String(), Net: "tcp", Err: err}
	}
	return v
}

// Wrap threads a live connection's reads and writes through the
// injector.  addr labels the conn for Addr-filtered faults; empty uses
// the conn's own remote address.
func (i *Injector) Wrap(c net.Conn, addr string) net.Conn {
	if addr == "" && c.RemoteAddr() != nil {
		addr = c.RemoteAddr().String()
	}
	return &faultConn{Conn: c, inj: i, addr: addr, done: make(chan struct{})}
}

// FaultDialer is a Dialer that applies an Injector's plan to every dial
// and to every connection the dials produce.
type FaultDialer struct {
	// Base performs the real dial; nil means System.
	Base Dialer

	// Inj holds the plan and the deterministic counters.
	Inj *Injector
}

// NewFaultDialer wraps the system dialer with plan and returns the
// dialer together with its injector (for counter/Fired inspection).
func NewFaultDialer(plan Plan) (*FaultDialer, *Injector) {
	inj := NewInjector(plan)
	return &FaultDialer{Inj: inj}, inj
}

// DialContext dials through the plan: an OpDial fault can delay, fail,
// or blackhole the attempt (hang until ctx gives up — the unanswered
// SYN), and the resulting conn is wrapped for read/write faults.
func (d *FaultDialer) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	v := d.Inj.check(OpDial, address)
	if v.delay > 0 {
		t := time.NewTimer(v.delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, &net.OpError{Op: "dial", Net: network, Err: ctx.Err()}
		}
	}
	if v.blackhole {
		<-ctx.Done()
		return nil, &net.OpError{Op: "dial", Net: network, Err: ctx.Err()}
	}
	if v.err != nil {
		return nil, v.err
	}
	base := d.Base
	if base == nil {
		base = System
	}
	c, err := base.DialContext(ctx, network, address)
	if err != nil {
		return nil, err
	}
	return d.Inj.Wrap(c, address), nil
}

// faultConn is a conn whose reads and writes flow through an Injector.
// It tracks deadlines itself so a blackholed read still honors
// SetReadDeadline — silence must end in a timeout, like the real thing.
type faultConn struct {
	net.Conn
	inj  *Injector
	addr string

	mu        sync.Mutex
	readDL    time.Time
	closeOnce sync.Once
	done      chan struct{}
}

// park blocks a blackholed read until the read deadline, Close, or —
// with no deadline — forever, mirroring a half-open link with no
// keepalive.
func (c *faultConn) park() error {
	c.mu.Lock()
	dl := c.readDL
	c.mu.Unlock()
	var timer *time.Timer
	var expire <-chan time.Time
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return timeoutError{}
		}
		timer = time.NewTimer(d)
		expire = timer.C
		defer timer.Stop()
	}
	select {
	case <-expire:
		return timeoutError{}
	case <-c.done:
		return net.ErrClosed
	}
}

// pace sleeps the transfer time of n bytes at the capped bandwidth.
func pace(n int, bytesPerSec int64) {
	if bytesPerSec <= 0 || n <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(n) / float64(bytesPerSec) * float64(time.Second)))
}

func (c *faultConn) Read(p []byte) (int, error) {
	v := c.inj.check(OpRead, c.addr)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.blackhole {
		return 0, c.park()
	}
	if v.err != nil {
		return 0, v.err
	}
	n, err := c.Conn.Read(p)
	pace(n, v.bandwidth)
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	v := c.inj.check(OpWrite, c.addr)
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if v.blackhole {
		// The half-open write: reported delivered, never arrives.
		return len(p), nil
	}
	if v.err != nil {
		return 0, v.err
	}
	pace(len(p), v.bandwidth)
	return c.Conn.Write(p)
}

func (c *faultConn) Close() error {
	v := c.inj.check(OpClose, c.addr)
	c.closeOnce.Do(func() { close(c.done) })
	if v.err != nil {
		// The handle must still be released, or a faulted run leaks it.
		c.Conn.Close()
		return v.err
	}
	return c.Conn.Close()
}

func (c *faultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *faultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}
