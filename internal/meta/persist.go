package meta

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// JSON persistence of the meta-database.  The on-disk form is a plain,
// human-inspectable document; load rebuilds all indexes.  Version chains
// are reconstructed from the OID set in ascending order; gaps left by
// PruneVersions are preserved.

type dbJSON struct {
	Seq        int64           `json:"seq"`
	NextLink   int64           `json:"next_link"`
	OIDs       []oidJSON       `json:"oids"`
	Links      []linkJSON      `json:"links"`
	Configs    []configJSON    `json:"configurations,omitempty"`
	Workspaces []workspaceJSON `json:"workspaces,omitempty"`

	// Terms is the election-term history (term.go), one entry per
	// promotion, ascending.  omitempty keeps documents from databases that
	// never lived through a promotion byte-identical to the pre-term
	// format.
	Terms []termJSON `json:"terms,omitempty"`
}

type termJSON struct {
	Term int64 `json:"term"`
	LSN  int64 `json:"lsn"`
}

func termsToJSON(starts []TermStart) []termJSON {
	if len(starts) == 0 {
		return nil
	}
	out := make([]termJSON, len(starts))
	for i, ts := range starts {
		out[i] = termJSON{Term: ts.Term, LSN: ts.LSN}
	}
	return out
}

type oidJSON struct {
	Block   string            `json:"block"`
	View    string            `json:"view"`
	Version int               `json:"version"`
	Seq     int64             `json:"seq"`
	Props   map[string]string `json:"props,omitempty"`
}

type linkJSON struct {
	ID         int64             `json:"id"`
	Class      string            `json:"class"`
	From       string            `json:"from"`
	To         string            `json:"to"`
	Template   string            `json:"template,omitempty"`
	Propagates []string          `json:"propagates,omitempty"`
	Props      map[string]string `json:"props,omitempty"`
	Seq        int64             `json:"seq"`
}

type configJSON struct {
	Name  string   `json:"name"`
	Seq   int64    `json:"seq"`
	OIDs  []string `json:"oids"`
	Links []int64  `json:"links"`
}

type workspaceJSON struct {
	Name  string            `json:"name"`
	Root  string            `json:"root"`
	Paths map[string]string `json:"paths,omitempty"`
}

// Save writes the whole meta-database as indented JSON.  With MVCC
// enabled the document is collected from a pinned read view — no lock of
// any kind is held during collection or encoding, and writers proceed
// throughout; otherwise collection happens under every read lock (control
// plane, shards, stripes) while the JSON encoding — the expensive part —
// runs after the locks are released.
func (db *DB) Save(w io.Writer) error {
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		return v.SaveTo(w)
	}
	return db.SnapshotTo(w, nil)
}

// SnapshotTo is the legacy locked collection path with a coordination
// hook: capture, if non-nil, runs while every lock is still held, after
// the document has been collected.  The append-only journal used it to
// read its last assigned record number; journal snapshots now collect
// from a pinned View (View.SaveTo), which carries its LSN explicitly, so
// this path remains for databases without MVCC enabled.  capture must not
// call back into the DB.
func (db *DB) SnapshotTo(w io.Writer, capture func()) error {
	db.ctl.RLock()
	db.rlockAll()
	doc := dbJSON{Seq: db.seq.Load(), NextLink: db.nextLink.Load()}
	for _, sh := range db.shards {
		for _, o := range sh.oids {
			oj := oidJSON{Block: o.Key.Block, View: o.Key.View, Version: o.Key.Version, Seq: o.Seq}
			if len(o.Props) > 0 {
				oj.Props = make(map[string]string, len(o.Props))
				for k, v := range o.Props {
					oj.Props[k] = v
				}
			}
			doc.OIDs = append(doc.OIDs, oj)
		}
	}
	for _, st := range db.stripes {
		for _, l := range st.links {
			lj := linkJSON{
				ID:       int64(l.ID),
				Class:    l.Class.String(),
				From:     l.From.String(),
				To:       l.To.String(),
				Template: l.Template,
				Seq:      l.Seq,
			}
			lj.Propagates = l.PropagateList()
			if len(l.Props) > 0 {
				lj.Props = make(map[string]string, len(l.Props))
				for k, v := range l.Props {
					lj.Props[k] = v
				}
			}
			doc.Links = append(doc.Links, lj)
		}
	}
	for _, c := range db.configs {
		cj := configJSON{Name: c.Name, Seq: c.Seq}
		for _, k := range c.OIDs {
			cj.OIDs = append(cj.OIDs, k.String())
		}
		for _, id := range c.Links {
			cj.Links = append(cj.Links, int64(id))
		}
		doc.Configs = append(doc.Configs, cj)
	}
	for _, ws := range db.workspaces {
		wj := workspaceJSON{Name: ws.Name, Root: ws.Root}
		if len(ws.paths) > 0 {
			wj.Paths = make(map[string]string, len(ws.paths))
			for k, p := range ws.paths {
				wj.Paths[k.String()] = p
			}
		}
		doc.Workspaces = append(doc.Workspaces, wj)
	}
	doc.Terms = termsToJSON(db.TermStarts())
	if capture != nil {
		capture()
	}
	db.runlockAll()
	db.ctl.RUnlock()

	return encodeDoc(w, &doc)
}

// encodeDoc sorts a collected document into the canonical order and
// writes it as indented JSON — the shared tail of the locked and
// view-based collection paths, so both produce byte-identical output for
// identical state.
func encodeDoc(w io.Writer, doc *dbJSON) error {
	sort.Slice(doc.OIDs, func(i, j int) bool {
		a, b := doc.OIDs[i], doc.OIDs[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.View != b.View {
			return a.View < b.View
		}
		return a.Version < b.Version
	})
	sort.Slice(doc.Links, func(i, j int) bool { return doc.Links[i].ID < doc.Links[j].ID })
	sort.Slice(doc.Configs, func(i, j int) bool { return doc.Configs[i].Name < doc.Configs[j].Name })
	sort.Slice(doc.Workspaces, func(i, j int) bool { return doc.Workspaces[i].Name < doc.Workspaces[j].Name })

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(*doc)
}

// SaveTo writes the database exactly as it stood at the view's LSN, in
// the same canonical JSON form as Save — byte-identical to what replaying
// the journal up to that LSN and saving would produce.  No locks are
// taken; writers proceed throughout.
func (v *View) SaveTo(w io.Writer) error {
	doc := dbJSON{Seq: v.seq, NextLink: v.nextLink}
	v.EachOID(func(o *OID) bool {
		oj := oidJSON{Block: o.Key.Block, View: o.Key.View, Version: o.Key.Version, Seq: o.Seq}
		if len(o.Props) > 0 {
			oj.Props = o.Props // immutable version map; the encoder only reads
		}
		doc.OIDs = append(doc.OIDs, oj)
		return true
	})
	v.EachLink(func(l *Link) bool {
		lj := linkJSON{
			ID:       int64(l.ID),
			Class:    l.Class.String(),
			From:     l.From.String(),
			To:       l.To.String(),
			Template: l.Template,
			Seq:      l.Seq,
		}
		lj.Propagates = l.PropagateList()
		if len(l.Props) > 0 {
			lj.Props = l.Props // immutable once published
		}
		doc.Links = append(doc.Links, lj)
		return true
	})
	v.eachConfiguration(func(c *Configuration) {
		cj := configJSON{Name: c.Name, Seq: c.Seq}
		for _, k := range c.OIDs {
			cj.OIDs = append(cj.OIDs, k.String())
		}
		for _, id := range c.Links {
			cj.Links = append(cj.Links, int64(id))
		}
		doc.Configs = append(doc.Configs, cj)
	})
	v.eachWorkspace(func(ws *Workspace) {
		wj := workspaceJSON{Name: ws.Name, Root: ws.Root}
		if len(ws.paths) > 0 {
			wj.Paths = make(map[string]string, len(ws.paths))
			for k, p := range ws.paths {
				wj.Paths[k.String()] = p
			}
		}
		doc.Workspaces = append(doc.Workspaces, wj)
	})
	// The term table is LSN-keyed rather than versioned: filtering it by
	// the view's pin reproduces exactly what replaying up to that LSN
	// would have accumulated.
	doc.Terms = termsToJSON(v.db.termsUpTo(v.lsn))
	return encodeDoc(w, &doc)
}

// Load reads a database previously written by Save and returns a fresh DB
// with all indexes rebuilt.
func Load(r io.Reader) (*DB, error) { return LoadShards(r, DefaultShards) }

// LoadShards is Load with an explicit shard count for the rebuilt DB —
// shard count is a performance knob the document deliberately does not
// record, so recovery paths that tune it pick it here.
func LoadShards(r io.Reader, shards int) (*DB, error) {
	var doc dbJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("meta: decode: %w", err)
	}
	db := NewDBWithShards(shards)

	// OIDs must be inserted in version order per chain.
	sort.Slice(doc.OIDs, func(i, j int) bool {
		a, b := doc.OIDs[i], doc.OIDs[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.View != b.View {
			return a.View < b.View
		}
		return a.Version < b.Version
	})
	for i, oj := range doc.OIDs {
		k := Key{Block: oj.Block, View: oj.View, Version: oj.Version}
		if i > 0 {
			// The sort puts duplicates side by side.  Reject them here with
			// a clear message: InsertOID would refuse too, but with a
			// confusing chain-version error, and the duplicate's properties
			// must never silently overwrite the first occurrence's.
			p := doc.OIDs[i-1]
			if p.Block == oj.Block && p.View == oj.View && p.Version == oj.Version {
				return nil, fmt.Errorf("meta: load: duplicate oid %v in document: %w", k, ErrExists)
			}
		}
		if err := db.InsertOID(k); err != nil {
			return nil, fmt.Errorf("meta: load oid: %w", err)
		}
		o := db.shardOf(k).oids[k]
		o.Seq = oj.Seq
		for name, v := range oj.Props {
			o.Props[name] = v
		}
	}

	sort.Slice(doc.Links, func(i, j int) bool { return doc.Links[i].ID < doc.Links[j].ID })
	for _, lj := range doc.Links {
		class, err := ParseLinkClass(lj.Class)
		if err != nil {
			return nil, fmt.Errorf("meta: load link %d: %w", lj.ID, err)
		}
		from, err := ParseKey(lj.From)
		if err != nil {
			return nil, fmt.Errorf("meta: load link %d: %w", lj.ID, err)
		}
		to, err := ParseKey(lj.To)
		if err != nil {
			return nil, fmt.Errorf("meta: load link %d: %w", lj.ID, err)
		}
		l := &Link{
			ID:         LinkID(lj.ID),
			Class:      class,
			From:       from,
			To:         to,
			Template:   lj.Template,
			Seq:        lj.Seq,
			Props:      make(map[string]string, len(lj.Props)),
			Propagates: make(map[string]bool, len(lj.Propagates)),
		}
		for k, v := range lj.Props {
			l.Props[k] = v
		}
		for _, e := range lj.Propagates {
			l.Propagates[e] = true
		}
		if err := l.validate(); err != nil {
			return nil, fmt.Errorf("meta: load link %d: %w", lj.ID, err)
		}
		stripe := db.stripeOf(l.ID)
		if _, ok := stripe.links[l.ID]; ok {
			return nil, fmt.Errorf("meta: load link %d: %w", lj.ID, ErrExists)
		}
		fs, ts := db.shardOf(from), db.shardOf(to)
		if _, ok := fs.oids[from]; !ok {
			return nil, fmt.Errorf("meta: load link %d: from %v: %w", lj.ID, from, ErrNotFound)
		}
		if _, ok := ts.oids[to]; !ok {
			return nil, fmt.Errorf("meta: load link %d: to %v: %w", lj.ID, to, ErrNotFound)
		}
		stripe.links[l.ID] = l
		fs.outLinks[from] = append(fs.outLinks[from], linkRef{id: l.ID, l: l})
		ts.inLinks[to] = append(ts.inLinks[to], linkRef{id: l.ID, l: l})
		if len(l.Propagates) > 0 {
			db.unionBlocks(from.Block, to.Block)
		}
	}

	for _, cj := range doc.Configs {
		if _, ok := db.configs[cj.Name]; ok {
			return nil, fmt.Errorf("meta: load: duplicate configuration %q in document: %w", cj.Name, ErrExists)
		}
		c := &Configuration{Name: cj.Name, Seq: cj.Seq}
		for _, ks := range cj.OIDs {
			k, err := ParseKey(ks)
			if err != nil {
				return nil, fmt.Errorf("meta: load configuration %q: %w", cj.Name, err)
			}
			c.OIDs = append(c.OIDs, k)
		}
		for _, id := range cj.Links {
			c.Links = append(c.Links, LinkID(id))
		}
		db.configs[c.Name] = c
	}

	for _, wj := range doc.Workspaces {
		if _, ok := db.workspaces[wj.Name]; ok {
			return nil, fmt.Errorf("meta: load: duplicate workspace %q in document: %w", wj.Name, ErrExists)
		}
		ws := &Workspace{Name: wj.Name, Root: wj.Root, paths: make(map[Key]string, len(wj.Paths))}
		for ks, p := range wj.Paths {
			k, err := ParseKey(ks)
			if err != nil {
				return nil, fmt.Errorf("meta: load workspace %q: %w", wj.Name, err)
			}
			ws.paths[k] = p
		}
		db.workspaces[ws.Name] = ws
	}

	if len(doc.Terms) > 0 {
		starts := make([]TermStart, len(doc.Terms))
		for i, tj := range doc.Terms {
			starts[i] = TermStart{Term: tj.Term, LSN: tj.LSN}
		}
		if err := db.setTermStarts(starts); err != nil {
			return nil, fmt.Errorf("meta: load: %w", err)
		}
	}

	db.seq.Store(doc.Seq)
	db.nextLink.Store(doc.NextLink)
	return db, nil
}

// RestoreFrom atomically replaces the database's entire contents with
// src's, in place — the follower-side snapshot re-bootstrap path: engines
// and servers hold the *DB pointer, so re-basing on a primary snapshot
// must swap the guts rather than the pointer.  lsn is the journal
// position the restored document covers; with MVCC enabled the version
// histories are rebuilt from the new content at that stamp (views pinned
// before the re-base captured the old containers and stay consistent;
// the horizon jumps to lsn).  src must have the same shard count (both
// sides of a bootstrap build it from the same Options) and must not be
// used afterwards: db adopts its maps.
func (db *DB) RestoreFrom(src *DB, lsn int64) error {
	if len(db.shards) != len(src.shards) || len(db.stripes) != len(src.stripes) {
		return fmt.Errorf("meta: restore: shard count mismatch (%d vs %d)",
			len(db.shards), len(src.shards))
	}
	db.ctl.Lock()
	db.lockAll()
	for i, sh := range db.shards {
		s := src.shards[i]
		sh.oids, sh.chains, sh.outLinks, sh.inLinks = s.oids, s.chains, s.outLinks, s.inLinks
	}
	for i, st := range db.stripes {
		st.links = src.stripes[i].links
	}
	db.configs = src.configs
	db.workspaces = src.workspaces
	db.seq.Store(src.seq.Load())
	db.nextLink.Store(src.nextLink.Load())
	// Adopt the source's term history wholesale: a bootstrap document from
	// a post-promotion primary carries bumps the stale follower never saw,
	// and forgetting them would leave this replica unable to fence the
	// deposed primary's tail.
	db.storeTerms(src.loadTerms())
	if db.mvcc.on.Load() {
		db.genesisLocked(lsn)
	}
	db.unlockAll()
	db.ctl.Unlock()
	db.compMu.Lock()
	db.comp = src.comp
	db.compMu.Unlock()
	// Cached component roots are stale regardless of content overlap; the
	// bump is ordered after the swap so a racing reader that cached a new
	// root under the old generation revalidates on its next check.
	db.compGen.Add(1)
	return nil
}
