package repro

// Full-stack integration tests: TCP server, remote wrappers, persistence,
// tasks — the subsystems exercised together the way a real deployment
// would compose them.

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/task"
	"repro/internal/tools"
	"repro/internal/wrapper"
)

// TestIntegrationRemoteTeamFlow runs a two-designer flow entirely over
// TCP, then checks the project state from a third connection and persists
// the database through a save/load cycle.
func TestIntegrationRemoteTeamFlow(t *testing.T) {
	proj, err := NewProject(EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(proj.Engine)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	dialRemote := func(user string, seed uint64) *wrapper.Remote {
		t.Helper()
		c, err := server.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		c.User = user
		return wrapper.NewRemote(c, tools.NewSuite(seed))
	}

	// Designer 1 owns the front end.  Both designers share one tool
	// suite's workspace in reality; here each has a local suite and they
	// hand off at the meta-data level, which is all the tracking system
	// sees.
	yves := dialRemote("yves", 1)
	hdl, err := yves.CheckinHDL("CPU", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := yves.RunHDLSim(hdl); err != nil || res != "good" {
		t.Fatalf("sim: %q %v", res, err)
	}
	lib, err := yves.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := yves.Synthesize(hdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := yves.RunNetlister(sch)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := yves.RunNetlistSim(nl); err != nil || res != "good" {
		t.Fatalf("nl sim: %q %v", res, err)
	}

	// Designer 2 changes the model; designer 1's netlist goes stale and
	// the permission system notices on the next attempt.
	marc := dialRemote("marc", 2)
	if _, err := marc.CheckinHDL("CPU", 101, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := yves.RunNetlistSim(nl); err == nil {
		t.Fatal("stale netlist simulated")
	}

	// A third connection audits the project.
	audit, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()
	gap, err := audit.Gap()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(gap, "\n")
	if !strings.Contains(joined, "CPU,schematic,1") {
		t.Errorf("gap missing stale schematic:\n%s", joined)
	}
	// Ownership was attributed per connection user.
	v, ok, err := audit.Prop(sch, "owner")
	if err != nil || !ok || v != "yves" {
		t.Errorf("owner = %q %v %v", v, ok, err)
	}
	hdl2, err := audit.Latest("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	v, _, _ = audit.Prop(hdl2, "owner")
	if v != "marc" {
		t.Errorf("hdl2 owner = %q", v)
	}

	// Persist and reload the database; state survives byte-for-byte.
	var buf bytes.Buffer
	if err := proj.DB.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats() != proj.DB.Stats() {
		t.Errorf("stats differ after reload: %+v vs %+v", db2.Stats(), proj.DB.Stats())
	}
	rep := state.Report(db2, proj.Blueprint)
	var found bool
	for _, st := range rep {
		if st.Key == sch && !st.Ready {
			found = true
		}
	}
	if !found {
		t.Error("reloaded database lost the stale schematic state")
	}
}

// TestIntegrationTasksOverScenario stacks the design-task layer on the
// scenario rig: the implement task fails while the model is stale and
// succeeds after re-verification.
func TestIntegrationTasksOverScenario(t *testing.T) {
	sess, _, err := flow.NewEDTCSession(555)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.CheckinHDL("CPU", 60, 2); err != nil { // defective
		t.Fatal(err)
	}
	if _, err := sess.InstallLibrary("stdlib"); err != nil {
		t.Fatal(err)
	}
	runner := task.NewRunner(sess)

	rec, err := runner.Run(task.VerifyModel("CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "failed" {
		t.Fatalf("verify on defective model: %+v", rec)
	}
	rec, err = runner.Run(task.ImplementBlock("CPU", "stdlib"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "failed" || !strings.Contains(rec.Failure, "sim_result") {
		t.Fatalf("implement gated: %+v", rec)
	}

	// Fix, verify, implement.
	if _, err := sess.CheckinHDL("CPU", 60, 0); err != nil {
		t.Fatal(err)
	}
	if rec, err = runner.Run(task.VerifyModel("CPU")); err != nil || rec.Status != "done" {
		t.Fatalf("verify: %+v %v", rec, err)
	}
	if rec, err = runner.Run(task.ImplementBlock("CPU", "stdlib")); err != nil || rec.Status != "done" {
		t.Fatalf("implement: %+v %v", rec, err)
	}
	// The failed and successful runs are both in the task history.
	if got := task.History(sess.Eng.DB(), "implement_CPU"); len(got) != 2 {
		t.Errorf("history = %v", got)
	}
}

// TestIntegrationEngineSurvivesExecutorFailures injects executor failures
// and checks the tracking system stays non-obstructive: event processing
// completes, state is updated, failures are counted and traced.
func TestIntegrationEngineSurvivesExecutorFailures(t *testing.T) {
	tr := &engine.BufferTracer{}
	proj, err := NewProject(EDTCExample,
		WithExecutor(failingExecutor{}), engine.WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	sch, err := proj.Engine.CreateOID("CPU", "schematic", "x")
	if err != nil {
		t.Fatal(err)
	}
	// ckin fires the netlister exec rule, which fails.
	if err := proj.Engine.PostAndDrain(Event{Name: EventCheckin, Dir: DirDown, Target: sch}); err != nil {
		t.Fatal(err)
	}
	// State was still maintained.
	v, _, err := proj.DB.GetProp(sch, "uptodate")
	if err != nil || v != "true" {
		t.Errorf("uptodate = %q %v", v, err)
	}
	s := proj.Engine.Stats()
	if s.ExecErrors == 0 {
		t.Error("executor failure not counted")
	}
	var traced bool
	for _, e := range tr.OfKind(engine.TraceError) {
		if strings.Contains(e.Detail, "boom") {
			traced = true
		}
	}
	if !traced {
		t.Error("executor failure not traced")
	}
}

type failingExecutor struct{}

func (failingExecutor) Exec(Invocation) error { return errBoom }
func (failingExecutor) Notify(string) error   { return errBoom }

var errBoom = &toolBoom{}

type toolBoom struct{}

func (*toolBoom) Error() string { return "boom: simulated tool crash" }
