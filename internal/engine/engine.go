package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bpl"
	"repro/internal/exec"
	"repro/internal/meta"
)

// ErrStepLimit reports that Drain stopped because rule-posted events kept
// generating work beyond the configured bound — almost always a feedback
// loop in the blueprint (an event whose rules post the same event back).
var ErrStepLimit = errors.New("engine: step limit exceeded (event feedback loop in blueprint?)")

// policy pairs a loaded blueprint with its compiled index.  The two are
// immutable and always swapped together, so a single atomic pointer load
// gives a delivery a consistent view of the project rules.
type policy struct {
	bp  *bpl.Blueprint
	idx *bpl.Index
}

// Engine is the BluePrint run-time engine bound to one meta-database and
// one loaded blueprint.  It is safe for concurrent use; event processing
// itself is serialized FIFO, as in the paper.
type Engine struct {
	db *meta.DB

	// pol is the current policy.  Drain captures it once per delivery at
	// dequeue time: an event processed after SetBlueprint runs under the
	// new rules even if it was posted under the old ones (the paper's
	// policy loosening applies to queued work), while a delivery already
	// in flight finishes under the policy it started with.
	pol atomic.Pointer[policy]

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when the queue settles
	queue    []queueItem
	qhead    int      // queue[:qhead] has been consumed; see dequeue in Drain
	pending  []func() // deferred exec-rule invocations (external tools)
	draining bool
	nextWave int64

	stats counters

	executor exec.Executor
	tracer   Tracer
	tracing  bool // false iff tracer is a NopTracer; gates all entry construction
	clock    func() time.Time
	user     string
	maxSteps int64
	dedup    bool
	maxHops  int

	// hopBuf is reused across propagate calls.  Only the single active
	// drainer touches it (Drain is exclusive), so no lock is needed.
	hopBuf []meta.Key
}

// Option configures an Engine.
type Option func(*Engine)

// WithExecutor sets the executor for exec and notify actions.  The default
// discards them.
func WithExecutor(x exec.Executor) Option { return func(e *Engine) { e.executor = x } }

// WithTracer sets the audit tracer.  The default discards trace entries.
func WithTracer(t Tracer) Option { return func(e *Engine) { e.tracer = t } }

// WithClock sets the time source used for $date; tests inject a fixed
// clock for determinism.
func WithClock(c func() time.Time) Option { return func(e *Engine) { e.clock = c } }

// WithUser sets the default user for events that carry none.
func WithUser(u string) Option { return func(e *Engine) { e.user = u } }

// WithMaxSteps bounds the number of deliveries one Drain may process.
func WithMaxSteps(n int64) Option { return func(e *Engine) { e.maxSteps = n } }

// WithWaveDedup toggles the per-wave visited set that makes each event
// instance visit every OID at most once.  It exists for ablation
// measurements only: with dedup off, propagation on graphs with shared
// substructure (diamonds) re-delivers along every path, bounded only by
// the hop limit.  Production engines must keep it on.
func WithWaveDedup(on bool) Option { return func(e *Engine) { e.dedup = on } }

// WithMaxHops bounds propagation depth per wave; it is the termination
// backstop when wave dedup is ablated away.
func WithMaxHops(n int) Option { return func(e *Engine) { e.maxHops = n } }

// New creates an engine over db with the given blueprint.  The blueprint
// must be free of analyzer errors.
func New(db *meta.DB, bp *bpl.Blueprint, opts ...Option) (*Engine, error) {
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		for _, d := range ds {
			if d.Sev == bpl.SevError {
				return nil, fmt.Errorf("engine: blueprint %s: %s", bp.Name, d)
			}
		}
	}
	e := &Engine{
		db:       db,
		executor: exec.Nop{},
		tracer:   NopTracer{},
		clock:    time.Now,
		user:     "nobody",
		maxSteps: 1_000_000,
		dedup:    true,
		maxHops:  64,
	}
	e.pol.Store(&policy{bp: bp, idx: bp.Index()})
	e.idle = sync.NewCond(&e.mu)
	for _, o := range opts {
		o(e)
	}
	if e.tracer == nil {
		e.tracer = NopTracer{}
	}
	_, nop := e.tracer.(NopTracer)
	e.tracing = !nop
	return e, nil
}

// WaitIdle blocks until the engine has no queued deliveries, no deferred
// exec invocations, and no Drain in progress.  Callers running the engine
// asynchronously (a server with a background drainer) use it to observe
// quiescence.
func (e *Engine) WaitIdle() {
	e.mu.Lock()
	for e.qlenLocked() > 0 || len(e.pending) > 0 || e.draining {
		e.idle.Wait()
	}
	e.mu.Unlock()
}

// qlenLocked reports the number of queued deliveries.  Callers hold e.mu.
func (e *Engine) qlenLocked() int { return len(e.queue) - e.qhead }

// DB returns the engine's meta-database.
func (e *Engine) DB() *meta.DB { return e.db }

// Blueprint returns the currently loaded blueprint.
func (e *Engine) Blueprint() *bpl.Blueprint { return e.pol.Load().bp }

// SetBlueprint replaces the project policy — the paper's re-initialization
// of the BluePrint mechanism for a new project phase ("loosening").  Queued
// events are preserved and will be processed under the new rules: Drain
// resolves the policy per delivery at dequeue time, so loosening takes
// effect for all not-yet-delivered events, including mid-drain.
func (e *Engine) SetBlueprint(bp *bpl.Blueprint) error {
	if ds := bpl.Analyze(bp); bpl.HasErrors(ds) {
		return fmt.Errorf("engine: blueprint %s has errors", bp.Name)
	}
	e.pol.Store(&policy{bp: bp, idx: bp.Index()})
	return nil
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return e.stats.snapshot()
}

// QueueLen reports the number of pending deliveries.
func (e *Engine) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.qlenLocked()
}

// ---------------------------------------------------------------------------
// Posting and draining

// Post validates an event and enqueues it for processing.  The target OID
// must exist.  Post does not process the queue; call Drain (or use
// PostAndDrain) to run the engine.
func (e *Engine) Post(ev Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	if !e.db.HasOID(ev.Target) {
		return fmt.Errorf("engine: event %s: target %v: %w", ev.Name, ev.Target, meta.ErrNotFound)
	}
	if ev.User == "" {
		ev.User = e.user
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enqueueLocked(ev, false)
	return nil
}

// PostAndDrain posts one event and processes the queue to exhaustion.
func (e *Engine) PostAndDrain(ev Event) error {
	if err := e.Post(ev); err != nil {
		return err
	}
	return e.Drain()
}

// wavePool recycles wave descriptors; a wave is returned to the pool once
// its last delivery retires (see retireWave).  visitedPool recycles the
// per-wave visited sets, which are allocated lazily at the wave's first
// propagation — most events never cross a link and then need no set at
// all.  Sets that grew beyond maxPooledVisited are dropped instead of
// recycled: clearing a large-capacity map costs O(capacity) on every
// later small wave that draws it.
var (
	wavePool = sync.Pool{
		New: func() any { return new(wave) },
	}
	visitedPool = sync.Pool{
		New: func() any { return make(map[meta.Key]bool, 8) },
	}
)

const (
	maxPooledVisited = 64
	// maxRetainedQueue bounds the queue capacity kept across drains; a
	// larger backing array (one huge wave) is dropped on settle instead of
	// holding burst-sized memory for the engine's lifetime.
	maxRetainedQueue = 4096
)

// enqueueLocked appends a fresh-wave delivery.  Callers hold e.mu.
func (e *Engine) enqueueLocked(ev Event, skipRules bool) {
	e.nextWave++
	wv := wavePool.Get().(*wave)
	wv.id = e.nextWave
	wv.visited = nil
	wv.pending = 1
	e.queue = append(e.queue, queueItem{ev: ev, wv: wv, skipRules: skipRules})
	e.stats.posted.Add(1)
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TraceEnqueue, OID: ev.Target.String(), Event: ev.Name})
	}
}

// retireWave marks one delivery of the wave finished and recycles the
// descriptor when it was the last.
func (e *Engine) retireWave(wv *wave) {
	e.mu.Lock()
	wv.pending--
	done := wv.pending == 0
	e.mu.Unlock()
	if done {
		if m := wv.visited; m != nil && len(m) <= maxPooledVisited {
			clear(m)
			visitedPool.Put(m)
		}
		wv.visited = nil
		wavePool.Put(wv)
	}
}

// Drain processes queued events first-in first-out until the queue is
// empty.  Rule-posted events and propagations join the same queue.  Only
// one Drain runs at a time; concurrent calls return immediately so posters
// can call PostAndDrain freely.
func (e *Engine) Drain() error {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		return nil
	}
	e.draining = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		e.draining = false
		e.idle.Broadcast()
		e.mu.Unlock()
	}()

	var steps int64
	for {
		e.mu.Lock()
		if e.qhead >= len(e.queue) {
			// The queue has settled; reset it so the backing array is
			// reused by the next wave instead of reallocated.  A burst-sized
			// array is released rather than pinned for the engine's
			// lifetime.
			if cap(e.queue) > maxRetainedQueue {
				e.queue = nil
			} else {
				e.queue = e.queue[:0]
			}
			e.qhead = 0
			// Now dispatch deferred exec-rule invocations.  In the paper
			// these are external wrapper processes: the events they post
			// arrive after the current wave has fully propagated, never
			// interleaved inside it.
			if len(e.pending) == 0 {
				e.mu.Unlock()
				return nil
			}
			run := e.pending[0]
			e.pending = e.pending[1:]
			e.mu.Unlock()
			steps++
			if steps > e.maxSteps {
				return fmt.Errorf("%w: after %d deliveries", ErrStepLimit, steps-1)
			}
			run()
			continue
		}
		// Head-index dequeue: O(1) with a reusable backing array, where
		// re-slicing queue[1:] forced append to grow a fresh array every
		// wave.  The consumed slot is zeroed to release its references.
		item := e.queue[e.qhead]
		e.queue[e.qhead] = queueItem{}
		e.qhead++
		e.mu.Unlock()

		steps++
		if steps > e.maxSteps {
			// The dequeued item is dropped, not delivered: retire it so its
			// wave's pending count still reaches zero.
			e.retireWave(item.wv)
			return fmt.Errorf("%w: after %d deliveries", ErrStepLimit, steps-1)
		}
		// The policy is resolved at dequeue time, not post time: see the
		// field comment on pol for the SetBlueprint semantics.
		e.deliver(e.pol.Load(), item)
		e.retireWave(item.wv)
	}
}

// deliver processes one queued delivery: run the matching run-time rules on
// the target OID (unless propagate-only), then propagate the event across
// the target's links.
func (e *Engine) deliver(pol *policy, item queueItem) {
	ev := item.ev
	e.stats.deliveries.Add(1)
	if !e.db.HasOID(ev.Target) {
		e.stats.drops.Add(1)
		if e.tracing {
			e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: ev.Target.String(), Event: ev.Name, Detail: "target missing"})
		}
		return
	}
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TraceDeliver, OID: ev.Target.String(), Event: ev.Name})
	}

	if !item.skipRules {
		e.runRules(pol, ev)
	}
	e.propagate(item)
}

// runRules executes the run-time rules matching the event on its target,
// in the paper's phase order: assigns, continuous assignments, execs and
// notifies, posts.  The compiled program has the actions pre-partitioned
// by phase, so no per-delivery scan of the rule set is needed.
func (e *Engine) runRules(pol *policy, ev Event) {
	prog := pol.idx.Program(ev.Target.View, ev.Name)
	lets := pol.idx.Lets(ev.Target.View)
	if prog != nil {
		e.stats.rulesFired.Add(int64(len(prog.Rules)))
	}

	// Phases 1 and 2: property assignments, then re-evaluation of the
	// continuous assignments — batched into one locked database
	// round-trip (UpdateOID) instead of a GetProp/SetProp pair per value.
	if (prog != nil && len(prog.Assigns) > 0) || len(lets) > 0 {
		e.applyAssignsAndLets(ev, prog, lets)
	}
	if prog == nil {
		return
	}

	var lookup bpl.LookupFunc
	if len(prog.Execs) > 0 || len(prog.Posts) > 0 {
		lookup = e.lookupFor(ev)
	}

	// Phase 3: exec and notify actions.  Exec invocations are launched
	// like the paper's wrapper shell scripts: the environment is captured
	// now, but the external tool effectively runs after the current event
	// wave has settled (the engine defers the call until the queue is
	// empty), so a tool triggered by a check-in is not caught by that
	// check-in's own invalidation wave.
	for _, a := range prog.Execs {
		switch act := a.(type) {
		case *bpl.ExecAction:
			inv := exec.Invocation{
				Script: act.Argv[0].Expand(lookup),
				Env:    e.envSnapshot(ev),
			}
			for _, t := range act.Argv[1:] {
				inv.Args = append(inv.Args, t.Expand(lookup))
			}
			e.stats.execs.Add(1)
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceExec, OID: ev.Target.String(), Event: ev.Name,
					Detail: inv.String()})
			}
			e.mu.Lock()
			e.pending = append(e.pending, func() {
				if err := e.executor.Exec(inv); err != nil {
					e.stats.execErrors.Add(1)
					if e.tracing {
						e.traceError(ev, fmt.Sprintf("exec %s: %v", inv.Script, err))
					}
				}
			})
			e.mu.Unlock()
		case *bpl.NotifyAction:
			msg := act.Message.Expand(lookup)
			e.stats.notifies.Add(1)
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceNotify, OID: ev.Target.String(), Event: ev.Name,
					Detail: msg})
			}
			if err := e.executor.Notify(msg); err != nil {
				e.stats.execErrors.Add(1)
				if e.tracing {
					e.traceError(ev, fmt.Sprintf("notify: %v", err))
				}
			}
		}
	}

	// Phase 4: post actions.
	for _, pa := range prog.Posts {
		e.execPost(ev, pa, lookup)
	}
}

// applyAssignsAndLets runs delivery phases 1 and 2 on the target OID in a
// single write-locked round-trip.  Phase-1 assignments are visible to the
// phase-2 continuous assignments (and to later phases) because both read
// and write the live property map.  Trace entries are recorded inside the
// critical section (only when tracing) and emitted after it, in execution
// order, so a slow tracer never extends the database lock hold time.
func (e *Engine) applyAssignsAndLets(ev Event, prog *bpl.Program, lets []*bpl.LetDecl) {
	type rec struct {
		kind   TraceKind
		detail string
	}
	var recs []rec
	err := e.db.UpdateOID(ev.Target, func(o *meta.OID) {
		lookup := e.lookupOver(ev, o.Props)
		if prog != nil {
			for _, aa := range prog.Assigns {
				val := aa.Value.Expand(lookup)
				if verr := meta.ValidateName(aa.Prop); verr != nil {
					if e.tracing {
						recs = append(recs, rec{TraceError,
							fmt.Sprintf("assign %s: property: %v", aa.Prop, verr)})
					}
					continue
				}
				o.Props[aa.Prop] = val
				e.stats.assigns.Add(1)
				if e.tracing {
					recs = append(recs, rec{TraceAssign, aa.Prop + " = " + val})
				}
			}
		}
		for _, l := range lets {
			val := "false"
			if l.Expr.Eval(lookup) {
				val = "true"
			}
			e.stats.letEvals.Add(1)
			if old, had := o.Props[l.Name]; had && old == val {
				continue
			}
			if meta.ValidateName(l.Name) != nil {
				continue
			}
			o.Props[l.Name] = val
			if e.tracing {
				recs = append(recs, rec{TraceLet, l.Name + " = " + val})
			}
		}
	})
	if err != nil {
		// The target vanished between the delivery check and the update
		// (concurrent prune); drop the phases silently like the unbatched
		// path did.
		return
	}
	if e.tracing {
		oid := ev.Target.String()
		for _, r := range recs {
			switch r.kind {
			case TraceLet:
				e.tracer.Trace(TraceEntry{Kind: TraceLet, OID: oid, Detail: r.detail})
			default:
				e.tracer.Trace(TraceEntry{Kind: r.kind, OID: oid, Event: ev.Name, Detail: r.detail})
			}
		}
	}
}

// execPost runs one post action in the context of event ev.
func (e *Engine) execPost(ev Event, pa *bpl.PostAction, lookup bpl.LookupFunc) {
	var args []string
	if len(pa.Args) > 0 {
		args = make([]string, 0, len(pa.Args))
		for _, t := range pa.Args {
			args = append(args, t.Expand(lookup))
		}
	}
	nev := Event{Name: pa.Event, Dir: pa.Dir, Args: args, User: ev.User}
	skipRules := false
	if pa.ToView != "" {
		// Targeted post: address the latest version of the named view of
		// the same block; rules run there.
		target, err := e.db.Latest(ev.Target.Block, pa.ToView)
		if err != nil {
			if e.tracing {
				e.traceError(ev, fmt.Sprintf("post %s to %s: no such OID", pa.Event, pa.ToView))
			}
			return
		}
		nev.Target = target
	} else {
		// Direct propagation from the current OID: local rules do not run
		// again here; the event only travels outward.
		nev.Target = ev.Target
		skipRules = true
	}
	e.mu.Lock()
	e.enqueueLocked(nev, skipRules)
	e.mu.Unlock()
	e.stats.posts.Add(1)
	if e.tracing {
		e.tracer.Trace(TraceEntry{Kind: TracePost, OID: nev.Target.String(), Event: pa.Event,
			Detail: "dir " + pa.Dir.String()})
	}
}

// reevalLets re-evaluates every continuous assignment of the OID's view and
// stores the boolean results as properties.  ev supplies the variable
// context; CreateOID passes a synthetic create event.
func (e *Engine) reevalLets(idx *bpl.Index, ev Event) {
	lets := idx.Lets(ev.Target.View)
	if len(lets) == 0 {
		return
	}
	e.applyAssignsAndLets(ev, nil, lets)
}

// propagate crosses the target's links with the delivered event, enqueuing
// continuation deliveries within the same wave.
func (e *Engine) propagate(item queueItem) {
	ev := item.ev
	hops := e.hopBuf[:0]
	var blocked int64
	e.db.EachLinkOf(ev.Target, func(l *meta.Link) bool {
		if !l.CanPropagate(ev.Name) {
			blocked++
			return true
		}
		var next meta.Key
		switch {
		case ev.Dir == bpl.DirDown && l.From == ev.Target:
			next = l.To
		case ev.Dir == bpl.DirUp && l.To == ev.Target:
			next = l.From
		default:
			blocked++
			return true
		}
		hops = append(hops, next)
		return true
	})
	e.hopBuf = hops
	if blocked > 0 {
		e.stats.blocked.Add(blocked)
	}
	if len(hops) == 0 {
		return
	}

	var drops, propagations int64
	e.mu.Lock()
	if e.dedup && item.wv.visited == nil {
		// First propagation of the wave.  FIFO order guarantees it happens
		// at the wave's origin, so marking the current target seeds the
		// set exactly as marking at enqueue time would.
		item.wv.visited = visitedPool.Get().(map[meta.Key]bool)
		item.wv.visited[ev.Target] = true
	}
	for _, to := range hops {
		if e.dedup {
			if item.wv.visited[to] {
				drops++
				if e.tracing {
					e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: to.String(), Event: ev.Name,
						Detail: "already visited in wave"})
				}
				continue
			}
			item.wv.visited[to] = true
		} else if item.hops >= e.maxHops {
			drops++
			if e.tracing {
				e.tracer.Trace(TraceEntry{Kind: TraceDrop, OID: to.String(), Event: ev.Name,
					Detail: "hop limit (dedup ablated)"})
			}
			continue
		}
		nev := ev
		nev.Target = to
		item.wv.pending++
		e.queue = append(e.queue, queueItem{ev: nev, wv: item.wv, hops: item.hops + 1})
		propagations++
		if e.tracing {
			e.tracer.Trace(TraceEntry{Kind: TracePropagate, OID: to.String(), Event: ev.Name,
				Detail: "from " + ev.Target.String()})
		}
	}
	e.mu.Unlock()
	if drops > 0 {
		e.stats.drops.Add(drops)
	}
	e.stats.propagations.Add(propagations)
}

func (e *Engine) traceError(ev Event, detail string) {
	e.tracer.Trace(TraceEntry{Kind: TraceError, OID: ev.Target.String(), Event: ev.Name, Detail: detail})
}
