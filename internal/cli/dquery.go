package cli

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/meta"
	"repro/internal/server"
)

// DQuery executes one dquery subcommand against a connected client and
// writes the result to out.  args[0] is the subcommand.
func DQuery(out io.Writer, c *server.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("dquery: missing subcommand")
	}
	switch args[0] {
	case "state":
		if len(args) != 2 {
			return fmt.Errorf("state wants one OID argument")
		}
		k, err := meta.ParseKey(args[1])
		if err != nil {
			return err
		}
		st, err := c.State(k)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s ready=%v\n", st.Key, st.Ready)
		names := make([]string, 0, len(st.Props))
		for name := range st.Props {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(out, "  %s = %s\n", name, st.Props[name])
		}
		for _, r := range st.Blocking {
			fmt.Fprintf(out, "  blocking: %s\n", r)
		}
		return nil
	case "report", "gap":
		var lines []string
		var err error
		if args[0] == "report" {
			lines, err = c.Report()
		} else {
			lines, err = c.Gap()
		}
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		return nil
	case "stats":
		s, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, s)
		return nil
	case "blueprint":
		src, err := c.Blueprint()
		if err != nil {
			return err
		}
		fmt.Fprint(out, src)
		return nil
	case "snapshot":
		if len(args) != 3 {
			return fmt.Errorf("snapshot wants <name> <root-oid|*>")
		}
		detail, err := c.Snapshot(args[1], args[2])
		if err != nil {
			return err
		}
		fmt.Fprintln(out, detail)
		return nil
	case "dot":
		if len(args) != 2 {
			return fmt.Errorf("dot wants flow or state")
		}
		doc, err := c.Dot(args[1])
		if err != nil {
			return err
		}
		fmt.Fprint(out, doc)
		return nil
	case "query":
		// query [<lsn>] <reach|deps|equiv|resolve> <args...> — graph query
		// pinned at an LSN (omitted or 0 = current state).  Works against a
		// primary or a read-only follower; the follower waits until it has
		// applied the LSN, so the output matches the primary's at the same
		// position.
		rest := args[1:]
		var lsn int64
		if len(rest) > 0 {
			if n, err := strconv.ParseInt(rest[0], 10, 64); err == nil {
				lsn = n
				rest = rest[1:]
			}
		}
		if len(rest) == 0 {
			return fmt.Errorf("query wants [<lsn>] <reach|deps|equiv|resolve> <args...>")
		}
		lines, err := c.QueryAt(lsn, rest[0], rest[1:]...)
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		return nil
	case "links":
		if len(args) != 2 {
			return fmt.Errorf("links wants one OID argument")
		}
		k, err := meta.ParseKey(args[1])
		if err != nil {
			return err
		}
		lines, err := c.Links(k)
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
