package repro

// Follower crash-recovery acceptance test: a real damocles -follow
// process, SIGKILLed mid-apply while the primary keeps writing, must
// restart from its persisted applied-LSN (not from zero, and without
// re-applying or skipping records) and converge to a REPORT identical to
// the primary's at the same LSN.

import (
	"bufio"
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

var followingRE = regexp.MustCompile(`following \S+ from applied lsn (\d+)`)

// startFollowerProc launches damocles -follow against the primary and
// returns the process, its bound address, and the applied LSN it reported
// resuming from.
func startFollowerProc(t *testing.T, bin, jdir, primary string) (*exec.Cmd, string, int64) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal", jdir, "-follow", primary)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	lsnCh := make(chan int64, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := followingRE.FindStringSubmatch(sc.Text()); m != nil {
				n, _ := strconv.ParseInt(m[1], 10, 64)
				lsnCh <- n
			}
			if m := servingRE.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	var resumedAt int64
	select {
	case resumedAt = <-lsnCh:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("follower never reported its applied lsn")
	}
	select {
	case addr := <-addrCh:
		return cmd, addr, resumedAt
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("follower did not start serving")
		return nil, "", 0
	}
}

func TestFollowerCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	bin, err := buildDamocles()
	if err != nil {
		t.Fatal(err)
	}
	pdir, fdir := t.TempDir(), t.TempDir()

	prim, paddr := startDamocles(t, bin, pdir)
	defer func() {
		prim.Process.Kill()
		prim.Wait()
	}()
	fol, faddr, resumedAt := startFollowerProc(t, bin, fdir, paddr)
	defer func() {
		if fol.Process != nil {
			fol.Process.Kill()
			fol.Wait()
		}
	}()
	if resumedAt != 0 {
		t.Fatalf("fresh follower resumed at lsn %d, want 0", resumedAt)
	}

	pc, err := server.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	pc.User = "yves"

	// Settled phase: build state, let the follower catch up and commit
	// (it commits on the stream's caught-up watermark).
	for _, block := range []string{"CPU", "ALU", "REG"} {
		k, err := pc.Create(block, "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.PostEvent("ckin", "up", k, "initial"); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Sync(); err != nil {
		t.Fatal(err)
	}
	settledLSN, err := pc.LSN()
	if err != nil {
		t.Fatal(err)
	}
	fc, err := server.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.ReportAt(settledLSN); err != nil {
		t.Fatalf("follower never caught up with the settled state: %v", err)
	}
	fc.Hangup()
	time.Sleep(150 * time.Millisecond) // let the idle-point commit land

	// Mid-apply phase: hammer the primary so the stream is busy when the
	// kill hits.
	pc2, err := server.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	pc2.User = "marc"
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for i := 0; ; i++ {
			select {
			case <-stopTraffic:
				return
			default:
			}
			k, err := pc2.Create(fmt.Sprintf("SCRATCH%d", i), "HDL_model")
			if err != nil {
				return
			}
			if err := pc2.PostEvent("ckin", "up", k, "mid-crash"); err != nil {
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	if err := fol.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	fol.Wait()
	time.Sleep(100 * time.Millisecond) // primary keeps writing past the kill
	close(stopTraffic)
	<-trafficDone
	if err := pc.Sync(); err != nil {
		t.Fatal(err)
	}
	finalLSN, err := pc.LSN()
	if err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: the follower must resume from its
	// persisted applied position — after the settled catch-up commit,
	// that position cannot be zero — and converge without gaps or
	// duplicate application (either would be terminal, and REPORT at the
	// final LSN would never answer).
	fol2, faddr2, resumedAt2 := startFollowerProc(t, bin, fdir, paddr)
	defer func() {
		fol2.Process.Kill()
		fol2.Wait()
	}()
	if resumedAt2 < settledLSN {
		t.Errorf("follower resumed at lsn %d, want at least the settled commit %d", resumedAt2, settledLSN)
	}
	if resumedAt2 > finalLSN {
		t.Errorf("follower resumed at lsn %d, beyond the primary's %d", resumedAt2, finalLSN)
	}

	fc2, err := server.Dial(faddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer fc2.Hangup()
	var followerReport []string
	deadline := time.Now().Add(30 * time.Second)
	for {
		followerReport, err = fc2.ReportAt(finalLSN)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted follower never reached lsn %d: %v", finalLSN, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	primaryReport, err := pc.ReportAt(finalLSN)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(followerReport, "\n"), strings.Join(primaryReport, "\n"); got != want {
		t.Errorf("follower REPORT differs from primary at lsn %d:\n--- primary\n%s\n--- follower\n%s", finalLSN, want, got)
	}
	t.Logf("killed at ~lsn %d, resumed at %d, converged at %d with %d rows",
		settledLSN, resumedAt2, finalLSN, len(followerReport))
}
