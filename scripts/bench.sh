#!/usr/bin/env bash
# Runs the key engine benchmarks and emits BENCH_<n>.json so the perf
# trajectory across PRs is machine-readable.
#
#   BENCH_INDEX=2 BENCH_COUNT=3 BENCH_CPU=1,4 scripts/bench.sh
#
# BENCH_INDEX (default 1) selects the output file BENCH_<n>.json;
# BENCH_COUNT (default 1) is passed to -count; BENCH_CPU, when set, is
# passed to -cpu and the GOMAXPROCS suffix is kept in the recorded name as
# "@cN" (without it, names stay bare for continuity with BENCH_1).  With
# -count > 1 the JSON records, per benchmark, the run with the lowest
# ns/op — the least-noise estimate on a shared/virtualized host; every raw
# run is kept next to the JSON as BENCH_<n>.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

INDEX="${BENCH_INDEX:-1}"
COUNT="${BENCH_COUNT:-1}"
CPU="${BENCH_CPU:-}"
# The legacy trio runs in its own process, in the same order as BENCH_1,
# so numbers stay comparable across PRs (a long-lived benchmark process
# accumulates heap/GC state that skews whatever runs last).  Families
# added later run in a second process.
LEGACY="BenchmarkEventThroughput\$|BenchmarkPropagationScaling|BenchmarkStateReport"
EXTRA="BenchmarkEventThroughputParallel\$|BenchmarkParallelDrain|BenchmarkBatchPost"
# MVCC reader-latency family (PR 5, extended PR 9): report, snapshot and
# graph-walk latency with paced concurrent writers vs. the idle baseline,
# plus the versioned-adjacency point-lookup cost.
MVCC="BenchmarkReportUnderWrites|BenchmarkSnapshotUnderLoad|BenchmarkReachableUnderWrites|BenchmarkQueryIndexLookup"
OUT="BENCH_${INDEX}.json"
RAW="BENCH_${INDEX}.txt"

CPUFLAGS=()
if [ -n "$CPU" ]; then
  CPUFLAGS=(-cpu "$CPU")
fi
if [ -n "${BENCH_PATTERN:-}" ]; then
  go test -run '^$' -bench "$BENCH_PATTERN" -benchmem -count "$COUNT" "${CPUFLAGS[@]}" . | tee "$RAW"
else
  go test -run '^$' -bench "$LEGACY" -benchmem -count "$COUNT" "${CPUFLAGS[@]}" . | tee "$RAW"
  go test -run '^$' -bench "$EXTRA" -benchmem -count "$COUNT" "${CPUFLAGS[@]}" . | tee -a "$RAW"
  go test -run '^$' -bench "$MVCC" -benchmem -count "$COUNT" "${CPUFLAGS[@]}" . | tee -a "$RAW"
fi

{
  printf '{\n'
  printf '  "index": %s,\n' "$INDEX"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  # Runner facts (GOMAXPROCS, visible CPUs, affinity-mask size) so a
  # reader comparing BENCH files across machines sees the quota truth.
  printf '  "runner": %s,\n' "$(go run ./cmd/loadgen -facts)"
  printf '  "benchmarks": [\n'
  awk -v keepcpu="$CPU" '
    /^Benchmark/ {
      name = $1
      if (keepcpu != "" && match(name, /-[0-9]+$/)) {
        name = substr(name, 1, RSTART - 1) "@c" substr(name, RSTART + 1)
      } else {
        sub(/-[0-9]+$/, "", name)
      }
      ns = ""
      json = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", name, $2)
      sep = ""
      for (i = 3; i < NF; i += 2) {
        if ($(i+1) == "ns/op") ns = $i + 0
        json = json sprintf("%s\"%s\": %s", sep, $(i+1), $i)
        sep = ", "
      }
      json = json "}}"
      # Keep the fastest of -count runs per benchmark.
      if (!(name in best) || (ns != "" && ns < bestns[name])) {
        if (!(name in best)) order[++n] = name
        best[name] = json
        bestns[name] = ns
      }
    }
    END {
      for (i = 1; i <= n; i++) {
        printf "%s%s\n", best[order[i]], (i < n ? "," : "")
      }
    }
  ' "$RAW"
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
