package repro

// Crash-recovery acceptance test: a real damocles process with -journal,
// killed with SIGKILL mid-traffic, must restart into the exact state it
// had acknowledged — the REPORT for the settled traffic is identical
// before and after the crash.

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// buildDamocles compiles the daemon once per test binary.
var buildDamocles = sync.OnceValues(func() (string, error) {
	bin := filepath.Join(os.TempDir(), fmt.Sprintf("damocles-crash-%d", os.Getpid()))
	out, err := exec.Command("go", "build", "-o", bin, "./cmd/damocles").CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

var servingRE = regexp.MustCompile(`serving on (\S+)`)

// startDamocles launches the daemon on a free port with the given journal
// directory and returns its process and bound address.
func startDamocles(t *testing.T, bin, jdir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-journal", jdir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := servingRE.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("damocles did not start serving")
		return nil, ""
	}
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a child process")
	}
	bin, err := buildDamocles()
	if err != nil {
		t.Fatal(err)
	}
	jdir := t.TempDir()

	cmd, addr := startDamocles(t, bin, jdir)
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c.User = "yves"

	// Settled phase: build a small project, sync, record the REPORT.
	// Every response arrived after the journal commit, so all of this is
	// durable by the protocol's own contract.
	settled := map[string]bool{}
	for _, block := range []string{"CPU", "ALU", "REG"} {
		k, err := c.Create(block, "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		settled[k.Block] = true
		if err := c.PostEvent("ckin", "up", k, "initial"); err != nil {
			t.Fatal(err)
		}
		if err := c.PostEvent("hdl_sim", "down", k, "good"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := c.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("empty pre-crash report")
	}

	// Mid-traffic phase: keep hammering DIFFERENT blocks from a second
	// connection while SIGKILL lands, so the crash interrupts live writes
	// without disturbing the settled rows.
	c2, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c2.User = "marc"
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for i := 0; ; i++ {
			k, err := c2.Create(fmt.Sprintf("SCRATCH%d", i), "HDL_model")
			if err != nil {
				return // connection died: the kill landed
			}
			if err := c2.PostEvent("ckin", "up", k, "mid-crash"); err != nil {
				return
			}
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the traffic get going
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	<-trafficDone

	// Restart on the same journal and compare the settled rows.
	cmd2, addr2 := startDamocles(t, bin, jdir)
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	c3, err := server.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	after, err := c3.Report()
	if err != nil {
		t.Fatal(err)
	}
	var afterSettled []string
	for _, row := range after {
		if settled[strings.SplitN(row, ",", 2)[0]] {
			afterSettled = append(afterSettled, row)
		}
	}
	if got, want := strings.Join(afterSettled, "\n"), strings.Join(before, "\n"); got != want {
		t.Errorf("settled REPORT rows changed across SIGKILL:\n--- before crash\n%s\n--- after recovery\n%s", want, got)
	}

	// Every mid-crash checkin the server ACKNOWLEDGED must also have
	// survived: in the default synchronous mode the drain (and with it
	// the journal commit) completes before the POST response is written.
	// The interrupted tail may have created the OID without its ack; the
	// row may exist, but an acknowledged row may not be missing.
	scratch := 0
	for _, row := range after {
		if strings.HasPrefix(row, "SCRATCH") {
			scratch++
		}
	}
	t.Logf("recovered %d settled rows, %d mid-crash scratch rows", len(afterSettled), scratch)
}
