package repro

// Failover acceptance tests against real damocles processes: the
// three-node SIGKILL/promote/re-point chaos path with -ack 1, the
// SIGKILL-during-PROMOTE atomicity sweep, and graceful SIGTERM shutdown.
// All of them drive the built binary over TCP — no in-process shortcuts —
// and verify recovered state by replaying the journal directories
// directly.

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/server"
)

// proc is a spawned damocles process with its accumulated stderr, so
// tests can wait for arbitrary log lines (bound address, applied lsn,
// shutdown confirmations).
type proc struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string

	mu    sync.Mutex
	lines []string
	eof   bool
}

// startProc launches the binary with the given arguments and waits until
// it logs its serving address.
func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := spawnProc(t, bin, args...)
	m := p.waitFor(servingRE, 15*time.Second)
	if m == nil {
		p.kill()
		t.Fatal("damocles did not start serving")
	}
	p.addr = m[1]
	return p
}

func spawnProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{t: t, cmd: cmd}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
		p.mu.Lock()
		p.eof = true
		p.mu.Unlock()
	}()
	t.Cleanup(p.kill)
	return p
}

// waitFor polls the accumulated stderr for the first line matching re and
// returns its submatches (nil on timeout).
func (p *proc) waitFor(re *regexp.Regexp, timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	seen := 0
	for {
		p.mu.Lock()
		for ; seen < len(p.lines); seen++ {
			if m := re.FindStringSubmatch(p.lines[seen]); m != nil {
				p.mu.Unlock()
				return m
			}
		}
		eof := p.eof
		p.mu.Unlock()
		if eof || time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

func (p *proc) kill() {
	if p.cmd.Process != nil && p.cmd.ProcessState == nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

// sigterm sends SIGTERM and waits for a clean (exit 0) shutdown.
func (p *proc) sigterm() {
	p.t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		p.t.Fatal(err)
	}
	if err := p.cmd.Wait(); err != nil {
		p.t.Fatalf("graceful shutdown exited dirty: %v\n%s", err, p.output())
	}
}

var (
	appliedLSNRE = regexp.MustCompile(`following \S+ from applied lsn (\d+)`)
	promotedRE   = regexp.MustCompile(`promoted \S+: term (\d+), bump record at lsn (\d+)`)
)

// replaySave replays a journal directory read-only and returns the
// database's canonical Save bytes plus the last LSN.
func replaySave(t *testing.T, dir string) ([]byte, int64) {
	t.Helper()
	db, lsn, err := journal.Replay(dir, meta.DefaultShards)
	if err != nil {
		t.Fatalf("replay %s: %v", dir, err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), lsn
}

// roleOf asks a node for its ROLE line.
func roleOf(t *testing.T, addr string) server.RoleInfo {
	t.Helper()
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ri, err := c.Role()
	if err != nil {
		t.Fatal(err)
	}
	return ri
}

// TestFailoverChaosSIGKILL is the acceptance chaos path: a primary under
// -ack 1 with two follower processes, SIGKILLed mid-traffic at an
// arbitrary LSN.  The most-advanced follower is promoted with the
// `damocles -promote` CLI, the survivor re-points to it, both converge
// byte-identically, no acknowledged write is lost, and the revived old
// primary is fenced when its tail diverges.
func TestFailoverChaosSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	bin, err := buildDamocles()
	if err != nil {
		t.Fatal(err)
	}
	pdir, adir, bdir := t.TempDir(), t.TempDir(), t.TempDir()

	prim := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", pdir, "-ack", "1")
	folA := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", adir, "-follow", prim.addr)
	folB := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", bdir, "-follow", prim.addr)

	// Traffic under quorum acks: every Create that returns OK was
	// committed on the primary AND covered by at least one follower's
	// applied watermark — those writes must survive the failover.
	var ackedMu sync.Mutex
	var acked []string
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		tc, err := server.Dial(prim.addr)
		if err != nil {
			return
		}
		defer tc.Hangup()
		for i := 0; ; i++ {
			name := fmt.Sprintf("ACKED%d", i)
			if _, err := tc.Create(name, "HDL_model"); err != nil {
				return // the kill landed (or quorum degraded mid-kill)
			}
			ackedMu.Lock()
			acked = append(acked, name)
			ackedMu.Unlock()
		}
	}()

	// Let the cluster make progress, then SIGKILL the primary mid-stream.
	deadline := time.Now().Add(15 * time.Second)
	for {
		ackedMu.Lock()
		n := len(acked)
		ackedMu.Unlock()
		if n >= 8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cluster made no acknowledged progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := prim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	prim.cmd.Wait()
	<-trafficDone
	ackedMu.Lock()
	ackedWrites := append([]string(nil), acked...)
	ackedMu.Unlock()

	// Pick the most-advanced follower once both applied positions settle
	// (the stream may still be draining received frames).
	applied := func(addr string) int64 { return roleOf(t, addr).Applied }
	var aLSN, bLSN int64
	for settle := 0; settle < 3; {
		a2, b2 := applied(folA.addr), applied(folB.addr)
		if a2 == aLSN && b2 == bLSN {
			settle++
		} else {
			aLSN, bLSN, settle = a2, b2, 0
		}
		time.Sleep(50 * time.Millisecond)
	}
	winner, winnerDir, survivor, survivorDir := folA, adir, folB, bdir
	if bLSN > aLSN {
		winner, winnerDir, survivor, survivorDir = folB, bdir, folA, adir
	}
	t.Logf("killed primary; follower positions a=%d b=%d, promoting %s", aLSN, bLSN, winner.addr)

	// Promote through the CLI — the operator's real failover command.
	out, err := exec.Command(bin, "-promote", winner.addr).CombinedOutput()
	if err != nil {
		t.Fatalf("damocles -promote: %v\n%s", err, out)
	}
	m := promotedRE.FindStringSubmatch(string(out))
	if m == nil {
		t.Fatalf("-promote output missing the promotion line:\n%s", out)
	}
	bump, _ := strconv.ParseInt(m[2], 10, 64)
	if ri := roleOf(t, winner.addr); ri.Role != "primary" || ri.Term != 2 {
		t.Fatalf("promoted node ROLE = %+v, want primary at term 2", ri)
	}

	// The new primary serves writes; push fresh traffic under term 2.
	wc, err := server.Dial(winner.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Hangup()
	for i := 0; i < 5; i++ {
		if _, err := wc.Create(fmt.Sprintf("NEWTERM%d", i), "HDL_model"); err != nil {
			t.Fatalf("write to the promoted primary: %v", err)
		}
	}
	if err := wc.Sync(); err != nil {
		t.Fatal(err)
	}
	finalLSN, err := wc.LSN()
	if err != nil {
		t.Fatal(err)
	}

	// Re-point the survivor: restart its process against the new primary
	// (the CLI's re-point path), resuming from its persisted position.
	survivor.sigterm()
	survivor2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", survivorDir, "-follow", winner.addr)
	sc, err := server.Dial(survivor2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Hangup()
	var survivorReport []string
	deadline = time.Now().Add(30 * time.Second)
	for {
		survivorReport, err = sc.ReportAt(finalLSN)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-pointed survivor never reached lsn %d: %v\n%s", finalLSN, err, survivor2.output())
		}
		time.Sleep(100 * time.Millisecond)
	}
	winnerReport, err := wc.ReportAt(finalLSN)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(survivorReport, "\n"), strings.Join(winnerReport, "\n"); got != want {
		t.Errorf("survivor REPORT differs from the new primary at lsn %d:\n--- new primary\n%s\n--- survivor\n%s", finalLSN, want, got)
	}
	// Zero acked-write loss: every quorum-acknowledged block is present.
	rows := map[string]bool{}
	for _, r := range winnerReport {
		rows[strings.SplitN(r, ",", 2)[0]] = true
	}
	for _, name := range ackedWrites {
		if !rows[name] {
			t.Errorf("acknowledged write %s lost across the failover", name)
		}
	}

	// The revived old primary rejoins as a follower of the new one.  Its
	// journal replays to an arbitrary kill LSN: a tail reaching into the
	// new lineage (≥ the bump) is divergent and must be fenced with a
	// terminal term error; a tail that stops short is shared history and
	// must converge instead.
	_, oldLSN := replaySave(t, pdir)
	ghost := spawnProc(t, bin, "-addr", "127.0.0.1:0", "-journal", pdir, "-follow", winner.addr)
	if oldLSN >= bump {
		werr := ghost.cmd.Wait()
		if werr == nil {
			t.Fatalf("deposed primary (lsn %d ≥ bump %d) rejoined without being fenced:\n%s", oldLSN, bump, ghost.output())
		}
		if !strings.Contains(ghost.output(), "divergent tail") {
			t.Fatalf("deposed primary died without the divergent-tail fence:\n%s", ghost.output())
		}
		t.Logf("deposed primary at lsn %d fenced (bump %d)", oldLSN, bump)
	} else {
		if m := ghost.waitFor(servingRE, 15*time.Second); m == nil {
			t.Fatalf("shared-history old primary (lsn %d < bump %d) did not rejoin:\n%s", oldLSN, bump, ghost.output())
		} else {
			gc, err := server.Dial(m[1])
			if err != nil {
				t.Fatal(err)
			}
			defer gc.Hangup()
			if _, err := gc.ReportAt(finalLSN); err != nil {
				t.Fatalf("rejoined old primary never converged: %v", err)
			}
		}
		t.Logf("old primary at lsn %d rejoined below the bump %d", oldLSN, bump)
	}

	// Byte-identical convergence on disk: shut both nodes down cleanly and
	// replay their journals.
	winner.sigterm()
	survivor2.sigterm()
	wSave, wLSN := replaySave(t, winnerDir)
	sSave, sLSN := replaySave(t, survivorDir)
	if wLSN != sLSN || !bytes.Equal(wSave, sSave) {
		t.Errorf("replayed journals diverge: new primary lsn %d vs survivor lsn %d", wLSN, sLSN)
	}
}

// TestPromoteSIGKILLSweep: SIGKILL the follower at staggered delays after
// a PROMOTE lands.  Whatever the stage, the journal must recover into
// exactly one of {still-follower (term 1), fully-primary (term 2)} — the
// term-bump record's commit is the atomic hinge — and the process must be
// restartable in the recovered role.
func TestPromoteSIGKILLSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	bin, err := buildDamocles()
	if err != nil {
		t.Fatal(err)
	}
	delays := []time.Duration{0, time.Millisecond, 3 * time.Millisecond,
		8 * time.Millisecond, 20 * time.Millisecond, 60 * time.Millisecond}
	var sawFollower, sawPrimary bool
	for i, delay := range delays {
		t.Run(fmt.Sprintf("delay=%v", delay), func(t *testing.T) {
			pdir, fdir := t.TempDir(), t.TempDir()
			prim := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", pdir)
			pc, err := server.Dial(prim.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer pc.Hangup()
			for j := 0; j <= i; j++ {
				if _, err := pc.Create(fmt.Sprintf("SW%d", j), "HDL_model"); err != nil {
					t.Fatal(err)
				}
			}
			lsn, err := pc.LSN()
			if err != nil {
				t.Fatal(err)
			}
			fol := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", fdir, "-follow", prim.addr)
			fc, err := server.Dial(fol.addr)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fc.ReportAt(lsn); err != nil {
				t.Fatalf("follower never caught up: %v", err)
			}
			fc.Hangup()

			// Fire PROMOTE asynchronously and SIGKILL into its window.
			go exec.Command(bin, "-promote", fol.addr).Run()
			time.Sleep(delay)
			if err := fol.cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			fol.cmd.Wait()

			db, flsn, err := journal.Replay(fdir, meta.DefaultShards)
			if err != nil {
				t.Fatalf("post-kill replay: %v", err)
			}
			switch db.CurrentTerm() {
			case 1:
				// Still a follower: a restart must resume replicating.
				sawFollower = true
				if _, err := pc.Create("POSTKILL", "HDL_model"); err != nil {
					t.Fatal(err)
				}
				lsn2, err := pc.LSN()
				if err != nil {
					t.Fatal(err)
				}
				fol2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", fdir, "-follow", prim.addr)
				fc2, err := server.Dial(fol2.addr)
				if err != nil {
					t.Fatal(err)
				}
				defer fc2.Hangup()
				if _, err := fc2.ReportAt(lsn2); err != nil {
					t.Fatalf("still-follower restart never converged: %v", err)
				}
			case 2:
				// Fully primary: the bump committed; a restart on the same
				// journal is a standalone primary that accepts writes.
				sawPrimary = true
				if flsn < lsn+1 {
					t.Fatalf("term 2 recovered but lsn %d predates the bump window (settled %d)", flsn, lsn)
				}
				np := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", fdir)
				nc, err := server.Dial(np.addr)
				if err != nil {
					t.Fatal(err)
				}
				defer nc.Hangup()
				if ri, err := nc.Role(); err != nil || ri.Role != "primary" || ri.Term != 2 {
					t.Fatalf("restarted promoted node ROLE = %+v, %v, want primary term 2", ri, err)
				}
				if _, err := nc.Create("POSTPROMO", "HDL_model"); err != nil {
					t.Fatalf("restarted promoted node refused a write: %v", err)
				}
			default:
				t.Fatalf("recovered term %d, want exactly 1 (follower) or 2 (primary)", db.CurrentTerm())
			}
		})
	}
	t.Logf("sweep outcomes: still-follower=%v fully-primary=%v", sawFollower, sawPrimary)
}

// TestGracefulShutdownSIGTERM: SIGTERM exits cleanly on both roles, the
// follower's applied marker is committed (a restart resumes from exactly
// the shutdown position, not an earlier commit point), and the primary's
// journal is flushed and snapshotted.
func TestGracefulShutdownSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	bin, err := buildDamocles()
	if err != nil {
		t.Fatal(err)
	}
	pdir, fdir := t.TempDir(), t.TempDir()
	prim := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", pdir)
	pc, err := server.Dial(prim.addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"CPU", "ALU", "REG"} {
		k, err := pc.Create(b, "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if err := pc.PostEvent("ckin", "up", k, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Sync(); err != nil {
		t.Fatal(err)
	}
	lsn, err := pc.LSN()
	if err != nil {
		t.Fatal(err)
	}

	fol := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", fdir, "-follow", prim.addr)
	fc, err := server.Dial(fol.addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.ReportAt(lsn); err != nil {
		t.Fatalf("follower never caught up: %v", err)
	}
	fc.Hangup()

	// Follower SIGTERM: clean exit, closing log line, applied marker
	// committed at exactly the caught-up position.
	fol.sigterm()
	if !strings.Contains(fol.output(), "follower closed at applied lsn") {
		t.Fatalf("follower shutdown without its closing line:\n%s", fol.output())
	}
	if _, flsn := replaySave(t, fdir); flsn != lsn {
		t.Fatalf("follower journal replays to lsn %d after graceful shutdown, want %d", flsn, lsn)
	}
	fol2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", fdir, "-follow", prim.addr)
	if m := appliedLSNRE.FindStringSubmatch(fol2.output()); m == nil || m[1] != strconv.FormatInt(lsn, 10) {
		t.Fatalf("restarted follower did not resume from the shutdown position %d:\n%s", lsn, fol2.output())
	}
	fol2.sigterm()

	// Primary SIGTERM: clean exit, journal flushed + final snapshot, and
	// the state replays identically.
	before, err := pc.Report()
	if err != nil {
		t.Fatal(err)
	}
	pc.Hangup()
	prim.sigterm()
	if !strings.Contains(prim.output(), "journal closed at lsn") {
		t.Fatalf("primary shutdown without its closing line:\n%s", prim.output())
	}
	if _, plsn := replaySave(t, pdir); plsn != lsn {
		t.Fatalf("primary journal replays to lsn %d after graceful shutdown, want %d", plsn, lsn)
	}
	prim2 := startProc(t, bin, "-addr", "127.0.0.1:0", "-journal", pdir)
	pc2, err := server.Dial(prim2.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Hangup()
	after, err := pc2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(after, "\n"), strings.Join(before, "\n"); got != want {
		t.Errorf("REPORT changed across a graceful restart:\n--- before\n%s\n--- after\n%s", want, got)
	}
}
