package journal

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/faultfs"
	"repro/internal/meta"
)

// Options tunes a journal Writer.  The zero value picks sensible defaults.
type Options struct {
	// Shards is the shard count of the recovered database; 0 means
	// meta.DefaultShards.
	Shards int

	// SegmentBytes rotates the log to a fresh segment once the current one
	// reaches this size; 0 means 4 MiB.
	SegmentBytes int64

	// SnapshotEvery takes a snapshot after this many records have been
	// committed since the last one; 0 means 4096, negative disables the
	// record-count trigger.
	SnapshotEvery int64

	// SnapshotInterval additionally snapshots on a timer when records have
	// been committed since the last snapshot; 0 disables the timer.
	SnapshotInterval time.Duration

	// Fsync forces the segment file to stable storage on every Commit.
	// Off by default: a process crash (the failure the journal defends
	// against first) loses nothing without it, only an OS crash can, and
	// per-commit fsync is the dominant latency cost.  Snapshots are always
	// fsynced before they are renamed into place.
	Fsync bool

	// FS is the filesystem the journal performs every open, write, sync,
	// rename and remove through; nil means the real one (faultfs.OS).
	// Tests substitute a faultfs.Injector to drive the journal through
	// deterministic disk faults — ENOSPC, failed fsync, wedged writes.
	FS faultfs.FS
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = meta.DefaultShards
	}
	if o.SegmentBytes == 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.FS == nil {
		o.FS = faultfs.OS
	}
	return o
}

// bufFlushBytes bounds the in-memory record buffer: past it, the
// dedicated spill goroutine is woken to Commit even before the caller's
// next explicit Commit, so a long drain cannot hold an unbounded journal
// in memory.  The spill is asynchronous because Record runs under the
// MVCC epoch gate (and the database locks serializing the mutation): a
// segment-file write — or, in fsync mode, a disk flush — inside that
// critical section would stall every shard's writers and all view
// pinning for the syscall's duration.
const bufFlushBytes = 1 << 20

// Writer is an open journal: the meta.Recorder end that appends records,
// and the snapshot/compaction machinery behind it.  One Writer owns its
// directory; running two against the same directory corrupts the log.
//
// Record is safe to call from any goroutine (the database calls it under
// its own locks) and never performs blocking I/O beyond an occasional
// buffer spill; Commit, Snapshot and Close may block on the filesystem.
type Writer struct {
	dir      string
	opt      Options
	fs       faultfs.FS
	db       *meta.DB
	follower bool // opened by OpenFollower: records arrive pre-numbered via ApplyAppend

	// flushMu serializes flushers (Commit), ordered outside mu: the
	// buffer write happens under mu, the fsync with mu released, so
	// Record keeps buffering — and the MVCC gate keeps pinning —
	// through a disk flush.
	flushMu sync.Mutex

	mu       sync.Mutex
	seg      faultfs.File
	segSize  int64
	segFirst int64 // first LSN the open segment can contain (its name)
	buf      []byte
	scratch  []byte // reused payload-encode buffer; guarded by mu
	pending  int64  // records buffered since the last flush
	ioErr    error  // first sticky I/O failure — the degraded state's reason
	closed   bool

	// hlCh is closed exactly once, when the first sticky I/O error flips
	// the journal into the degraded state — the health signal tailers
	// block on so a parked follower stream learns the primary stopped
	// accepting writes instead of waiting forever for a watermark that
	// will never advance.
	hlCh chan struct{}

	lastLSN   atomic.Int64 // newest assigned record number
	snapLSN   atomic.Int64 // LSN covered by the newest snapshot
	sinceSnap atomic.Int64 // records flushed since the newest snapshot

	// term is the writer's election term (≥ 1), mirrored from the
	// database's term table: recovery seeds it, an applied term-bump
	// record raises it on a follower, and Promote bumps it.  New segment
	// headers stamp it; the replication handshake fences on it.
	term atomic.Int64

	// watermark is the commit watermark: the newest LSN whose frame has
	// been written through to the operating system.  Everything at or below
	// it is exactly as durable as a committed record and safe to ship to a
	// follower; wmCh is closed and replaced each time it advances, so
	// tailers can block on the next advance without polling.
	watermark atomic.Int64
	wmMu      sync.Mutex
	wmCh      chan struct{}

	// applyMu serializes a follower's apply+append pairs against snapshot
	// collection, standing in for the emission-under-database-locks
	// atomicity the primary gets for free (see ApplyAppend).
	applyMu sync.Mutex

	snapMu  sync.Mutex // serializes Snapshot
	snapCh  chan struct{}
	spillCh chan struct{} // wakes the background loop to Commit an outgrown buffer
	quit    chan struct{}
	wg      sync.WaitGroup
}

// Open recovers the database persisted in dir (creating the directory if
// needed: an empty directory is an empty project) and returns a Writer
// already attached to it as its mutation recorder.  A torn final record
// left by a crash is truncated away before appending resumes.  MVCC is
// enabled on the recovered database — a journaled database keys its read
// views by the journal LSN, which is what makes snapshots, reports and
// read-your-LSN queries pause-free.
func Open(dir string, opt Options) (*Writer, *meta.DB, error) {
	w, db, err := open(dir, opt, false)
	if err != nil {
		return nil, nil, err
	}
	db.SetRecorder(w)
	db.EnableMVCC()
	return w, db, nil
}

// OpenFollower recovers dir like Open but leaves the database without a
// recorder and the Writer in follower mode: records arrive from a primary
// with their LSNs already assigned and are persisted through ApplyAppend,
// which preserves the primary's numbering so the follower's log is
// record-for-record identical to the primary's.  The recovered database's
// LastLSN is the follower's persisted applied position — the resume point
// a restarted follower hands the primary's FOLLOW verb.  MVCC is enabled
// with versions keyed by the primary's LSNs, so a follower REPORT at a
// given LSN reads exactly the state the primary had at that LSN.
func OpenFollower(dir string, opt Options) (*Writer, *meta.DB, error) {
	w, db, err := open(dir, opt, true)
	if err != nil {
		return nil, nil, err
	}
	db.EnableMVCC()
	return w, db, nil
}

func open(dir string, opt Options, follower bool) (*Writer, *meta.DB, error) {
	opt = opt.withDefaults()
	if err := opt.FS.MkdirAll(dir, 0o777); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := replayFS(opt.FS, dir, opt.Shards, true, math.MaxInt64)
	if err != nil {
		return nil, nil, err
	}
	w := &Writer{
		dir:      dir,
		opt:      opt,
		fs:       opt.FS,
		db:       st.db,
		follower: follower,
		wmCh:     make(chan struct{}),
		hlCh:     make(chan struct{}),
		snapCh:   make(chan struct{}, 1),
		quit:     make(chan struct{}),
	}
	w.lastLSN.Store(st.lastLSN)
	w.snapLSN.Store(st.snapLSN)
	w.watermark.Store(st.lastLSN)
	w.term.Store(st.db.CurrentTerm())
	w.spillCh = make(chan struct{}, 1)
	if err := w.openTail(); err != nil {
		return nil, nil, err
	}
	w.wg.Add(2)
	go w.snapshotLoop()
	go w.spillLoop()
	return w, st.db, nil
}

// openTail opens the newest segment for appending, creating the first one
// in an empty journal.  A tail torn down to less than the magic is reset.
func (w *Writer) openTail() error {
	entries, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var tail string
	var best int64 = -1
	for _, e := range entries {
		if lsn, ok := parseSeqName(e.Name(), "journal-", ".log"); ok && lsn > best {
			best, tail = lsn, e.Name()
		}
	}
	if tail == "" {
		return w.newSegmentLocked()
	}
	path := filepath.Join(w.dir, tail)
	f, err := w.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	w.seg, w.segSize, w.segFirst = f, fi.Size(), best
	if w.segSize < int64(len(segMagic)) {
		// Torn at creation (replay truncated it to zero): restart the
		// segment header before any record lands in it.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		hdr := encodeSegHeader(w.term.Load())
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		w.segSize = int64(len(hdr))
	}
	return nil
}

// newSegmentLocked starts the next segment, named after the first LSN it
// can contain.  Callers hold w.mu (or are single-threaded in Open).
func (w *Writer) newSegmentLocked() error {
	if w.seg != nil {
		if err := w.seg.Close(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		w.seg = nil
	}
	path := filepath.Join(w.dir, segmentName(w.lastLSN.Load()+1))
	f, err := w.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o666)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	hdr := encodeSegHeader(w.term.Load())
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	w.seg, w.segSize, w.segFirst = f, int64(len(hdr)), w.lastLSN.Load()+1
	return nil
}

// DB returns the recovered database the Writer records for.
func (w *Writer) DB() *meta.DB { return w.db }

// LastLSN returns the newest assigned record number.
func (w *Writer) LastLSN() int64 { return w.lastLSN.Load() }

// SnapshotLSN returns the position the newest snapshot covers.
func (w *Writer) SnapshotLSN() int64 { return w.snapLSN.Load() }

// CommittedLSN returns the commit watermark: the newest record number
// written through to the operating system.  Replication ships records up
// to and including it — nothing above the watermark is offered to a
// follower, because a primary crash could still lose it.
func (w *Writer) CommittedLSN() int64 { return w.watermark.Load() }

// Term returns the writer's current election term (≥ 1; 1 is the genesis
// term of a history that never lived through a promotion).
func (w *Writer) Term() int64 { return w.term.Load() }

// ValidateFollowPosition decides whether a follower resuming at position
// from with history ending in term fromTerm may be served from this
// journal — the fencing half of the FOLLOW handshake.  fromTerm 0 marks a
// legacy handshake that carries no term and skips the term checks.
//
// The rules, term checks first because they carry the sharper diagnosis:
// a follower term NEWER than ours means this node is the deposed one —
// serving would feed a stale lineage to a replica that already moved on.
// A follower term OLDER than ours is fine only below the promotion point
// that ended it: the oldest term-bump past fromTerm bounds the shared
// history, and a follower claiming records at or beyond that bound holds
// a divergent tail written by a deposed primary (a revived old primary is
// the canonical case — its raw position may even exceed our watermark) —
// refused loudly, never resumed over.  Finally, a position ahead of the
// commit watermark within the same (or a legacy, term-less) lineage means
// divergent histories outright: journal reset or wrong primary.
func (w *Writer) ValidateFollowPosition(from, fromTerm int64) error {
	if fromTerm > 0 {
		myTerm := w.term.Load()
		switch {
		case fromTerm > myTerm:
			return fmt.Errorf("journal: follower at term %d is ahead of this node's term %d — this primary is deposed", fromTerm, myTerm)
		case fromTerm < myTerm:
			bound, ok := w.db.FirstTermStartAfter(fromTerm)
			if !ok {
				// myTerm > fromTerm guarantees a bump past fromTerm
				// happened; a missing table entry means lost term history.
				// Nothing but a cold bootstrap can be validated against it.
				if from == 0 {
					return nil
				}
				return fmt.Errorf("journal: no term history past term %d to validate follower position %d against", fromTerm, from)
			}
			if from >= bound {
				return fmt.Errorf("journal: follower tail at lsn %d term %d reaches past this lineage's promotion point (term bump at lsn %d) — divergent tail, refusing to serve", from, fromTerm, bound)
			}
			// Below the bound the histories are shared; the watermark
			// check below still applies while the bump is uncommitted.
		}
	}
	if wm := w.CommittedLSN(); from > wm {
		return fmt.Errorf("journal: follower position %d is ahead of the primary's committed lsn %d — journal reset or wrong primary", from, wm)
	}
	return nil
}

// advanceWatermark publishes a new commit watermark and wakes every tailer
// blocked in waitCommitted.  Callers hold w.mu.
func (w *Writer) advanceWatermark(lsn int64) {
	if lsn <= w.watermark.Load() {
		return
	}
	w.watermark.Store(lsn)
	w.wmMu.Lock()
	close(w.wmCh)
	w.wmCh = make(chan struct{})
	w.wmMu.Unlock()
}

// waitCommitted blocks until the commit watermark exceeds after, the stop
// channel closes, or the writer closes.  It returns the watermark and
// whether waiting may continue (false on stop/close).  A non-nil health
// channel additionally wakes the wait (returning true) when it closes —
// the degraded-journal signal; the caller must pass nil once it has
// consumed that signal, or a closed channel would spin the wait.  A
// non-nil wake channel (a timer) likewise ends the wait early with
// woke=true — the idle-ping tick a tailer uses to prove stream liveness
// to its follower.
func (w *Writer) waitCommitted(after int64, stop, health <-chan struct{}, wake <-chan time.Time) (lsn int64, ok, woke bool) {
	for {
		w.wmMu.Lock()
		ch := w.wmCh
		w.wmMu.Unlock()
		if wm := w.watermark.Load(); wm > after {
			return wm, true, false
		}
		select {
		case <-ch:
		case <-health:
			return w.watermark.Load(), true, false
		case <-wake:
			return w.watermark.Load(), true, true
		case <-stop:
			return w.watermark.Load(), false, false
		case <-w.quit:
			return w.watermark.Load(), false, false
		}
	}
}

// Record implements meta.Recorder: it stamps the record with the next
// LSN, buffers its encoding, and returns the assigned LSN (the MVCC
// version stamp of the mutation it describes).  It is called with
// database locks and the MVCC epoch gate held, so it performs no I/O at
// all — it only appends to the buffer (through a reused scratch buffer,
// so the hot path allocates nothing per record) and, when the buffer
// outgrows its bound, wakes the background loop to commit it.  I/O
// errors are sticky and surface at the next Commit.
func (w *Writer) Record(r meta.Record) int64 {
	w.mu.Lock()
	r.LSN = w.lastLSN.Add(1)
	w.scratch = appendPayload(w.scratch[:0], r)
	w.buf = appendFrame(w.buf, w.scratch)
	w.pending++
	spill := len(w.buf) >= bufFlushBytes
	w.mu.Unlock()
	if spill {
		select {
		case w.spillCh <- struct{}{}:
		default: // a spill wake-up is already pending
		}
	}
	return r.LSN
}

// writeBufLocked writes the buffered records through to the segment file
// and reports the write error without deciding its fate — Commit owns the
// degrade-or-retry decision.  Callers hold w.mu.  On failure the
// unwritten suffix of the buffer is retained so a retry (the ENOSPC
// free-space-and-try-again path) continues exactly where the short write
// stopped: a half-written frame at the tail is the torn-record case
// recovery already truncates, and completing it keeps the log seamless.
func (w *Writer) writeBufLocked() error {
	if w.ioErr != nil || len(w.buf) == 0 {
		w.buf = w.buf[:0]
		w.pending = 0
		return nil
	}
	if w.seg == nil {
		return errors.New("writer is closed")
	}
	n, err := w.seg.Write(w.buf)
	w.segSize += int64(n)
	if err != nil {
		w.buf = append(w.buf[:0], w.buf[n:]...)
		return err
	}
	w.sinceSnap.Add(w.pending)
	w.buf = w.buf[:0]
	w.pending = 0
	return nil
}

// failLocked records the first sticky I/O failure, flipping the journal
// into the degraded state: writes are refused with this reason from now
// on, while reads and the already-durable history stay servable.  The
// health channel is closed exactly once so watchers (the follower tailer,
// the server's ROLE verb) learn of the flip without polling.  Callers
// hold w.mu.
func (w *Writer) failLocked(err error) {
	if w.ioErr != nil || err == nil {
		return
	}
	w.ioErr = err
	close(w.hlCh)
}

// Health reports whether the journal is accepting writes.  A degraded
// journal (healthy == false) carries its first sticky I/O failure as the
// reason; the degraded contract keeps MVCC reads serving and the log
// valid through the commit watermark, but refuses every new write.
func (w *Writer) Health() (healthy bool, reason string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.ioErr == nil {
		return true, ""
	}
	return false, w.ioErr.Error()
}

// healthChan returns the channel closed when the journal degrades.
func (w *Writer) healthChan() <-chan struct{} { return w.hlCh }

// emergencyFree tries to reclaim disk space after an ENOSPC append by
// compacting the log behind the newest snapshot — the one recovery source
// that makes every older segment and snapshot disposable.  Called with
// flushMu held and w.mu released; compaction only touches files recovery
// tolerates losing, so a crash mid-free is safe.
func (w *Writer) emergencyFree() {
	w.compact(w.snapLSN.Load())
}

// Commit writes every buffered record through to the operating system.
// It is the durability point: the engine commits after each drain and the
// server after each non-drain mutation, so a state change is on disk
// before the request that caused it is acknowledged.  Commit also arms
// the snapshot trigger when enough records have accumulated.
//
// In fsync mode the Sync runs while w.mu is released (flushMu alone
// serializes flushers): Record is called under the MVCC epoch gate, so
// an fsync performed — or waited on — while w.mu is held would stall
// every shard's writers and all view pinning for the disk flush's
// duration.  The watermark advances only after the sync succeeds, and
// only to the position captured at write time: replication must never
// ship records an OS crash could still erase from the primary —
// permanent silent divergence, because the reconnect protocol skips
// LSNs the follower already applied.
func (w *Writer) Commit() error {
	w.flushMu.Lock()
	w.mu.Lock()
	werr := w.writeBufLocked()
	if werr != nil && errors.Is(werr, syscall.ENOSPC) && w.ioErr == nil {
		// Full disk: before degrading, compact away everything the newest
		// snapshot already covers and retry the append once.  The retained
		// buffer suffix resumes exactly where the short write stopped, so
		// a successful retry leaves the log seamless.
		w.mu.Unlock()
		w.emergencyFree()
		w.mu.Lock()
		werr = w.writeBufLocked()
	}
	if werr != nil {
		w.failLocked(fmt.Errorf("journal: append: %w", werr))
	}
	seg := w.seg
	lsn := w.lastLSN.Load()
	needSync := w.opt.Fsync && w.ioErr == nil && seg != nil
	w.mu.Unlock()
	syncOK := true
	if needSync {
		if serr := seg.Sync(); serr != nil {
			syncOK = false
			w.mu.Lock()
			if w.seg == seg {
				// A sync failure on a segment that was retired underneath
				// us (snapshot re-bootstrap swapped the log) is moot — its
				// records were superseded wholesale; on the live segment it
				// is a real durability failure and sticks.
				w.failLocked(fmt.Errorf("journal: fsync: %w", serr))
			}
			w.mu.Unlock()
		}
	}
	w.mu.Lock()
	if w.ioErr == nil && syncOK {
		w.advanceWatermark(lsn)
	}
	// Rotate only when the segment actually holds a record: a fresh
	// segment whose header alone exceeds a tiny SegmentBytes would
	// otherwise re-rotate on an empty commit into the same name (segments
	// are named by first containable LSN) and trip the O_EXCL create.
	if w.ioErr == nil && w.seg != nil && w.segSize >= w.opt.SegmentBytes && w.lastLSN.Load()+1 > w.segFirst {
		if err := w.newSegmentLocked(); err != nil {
			w.failLocked(err)
		}
	}
	err := w.ioErr
	w.mu.Unlock()
	w.flushMu.Unlock()
	if err != nil {
		return err
	}
	if w.opt.SnapshotEvery > 0 && w.sinceSnap.Load() >= w.opt.SnapshotEvery {
		select {
		case w.snapCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// ApplyAppend is the follower-side ingestion point: it applies one
// primary-shipped record to the database and appends it to the local log
// with the primary's LSN preserved, so the follower's journal is
// record-for-record identical to the primary's and a restart resumes from
// exactly the persisted position.  A record at or below the current
// position is a duplicate from a reconnect overlap and is skipped; a
// record that skips ahead is a gap and fails loudly — silently applying
// it would hide lost history.
//
// The apply+append pair runs under applyMu, which Snapshot also holds
// across its collection: on the primary, record emission happens under
// the database locks the snapshot collector takes, which is what makes
// the pinned LSN match the collected state; applyMu restores that
// atomicity here, where records are applied from outside the database.
func (w *Writer) ApplyAppend(r meta.Record) error {
	if !w.follower {
		return fmt.Errorf("journal: ApplyAppend on a primary-mode writer")
	}
	w.applyMu.Lock()
	defer w.applyMu.Unlock()
	last := w.lastLSN.Load()
	if r.LSN <= last {
		return nil // duplicate: already applied and persisted
	}
	if r.LSN != last+1 {
		return fmt.Errorf("journal: follower gap: record lsn %d arrived at applied lsn %d", r.LSN, last)
	}
	if err := w.db.ApplyRecord(r); err != nil {
		return err
	}
	if r.Op == meta.OpTerm {
		// The primary promoted somewhere upstream of us: adopt its term so
		// our next reconnect handshakes with it and our next segment header
		// stamps it.  ApplyRecord already validated monotonicity.
		w.term.Store(w.db.CurrentTerm())
	}
	w.mu.Lock()
	w.lastLSN.Store(r.LSN)
	w.scratch = appendPayload(w.scratch[:0], r)
	w.buf = appendFrame(w.buf, w.scratch)
	w.pending++
	spill := len(w.buf) >= bufFlushBytes
	err := w.ioErr
	w.mu.Unlock()
	if spill {
		// Deferred like Record's spill: rotation and fsync belong to the
		// flushMu-serialized Commit path, never under w.mu.
		select {
		case w.spillCh <- struct{}{}:
		default:
		}
	}
	return err
}

// BootstrapSnapshot installs a primary-shipped snapshot as the follower's
// new base state: the document becomes snapshot-<lsn>.json, a fresh
// segment starting at lsn+1 replaces the tail, every older segment and
// snapshot is deleted, and the in-memory database is reset to the
// document.  This is the cold or stale-follower path — the primary has
// compacted away the records between the follower's applied position and
// its retained history, so tailing cannot continue and the follower must
// re-base.  The file order (snapshot renamed into place, new segment
// created, then old files deleted) keeps every crash window recoverable.
func (w *Writer) BootstrapSnapshot(lsn int64, doc []byte) error {
	if !w.follower {
		return fmt.Errorf("journal: BootstrapSnapshot on a primary-mode writer")
	}
	w.snapMu.Lock()
	defer w.snapMu.Unlock()
	w.applyMu.Lock()
	defer w.applyMu.Unlock()
	if lsn <= w.lastLSN.Load() {
		return fmt.Errorf("journal: bootstrap snapshot lsn %d is not ahead of applied lsn %d", lsn, w.lastLSN.Load())
	}

	// Validate the document before touching any file: a torn or corrupt
	// snapshot must leave the follower's current state untouched.
	restored, err := meta.LoadShards(bytes.NewReader(doc), w.opt.Shards)
	if err != nil {
		return fmt.Errorf("journal: bootstrap snapshot: %w", err)
	}

	f, err := w.fs.CreateTemp(w.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: bootstrap snapshot: %w", err)
	}
	_, werr := f.Write(doc)
	if err := w.sealSnapshot(f, werr, lsn); err != nil {
		return err
	}

	// The document may carry term bumps this stale follower never saw as
	// records; adopt them before the fresh segment below stamps its header.
	w.term.Store(restored.CurrentTerm())

	w.mu.Lock()
	w.buf = w.buf[:0]
	w.pending = 0
	w.lastLSN.Store(lsn)
	if err := w.newSegmentLocked(); err != nil {
		w.failLocked(err)
		w.mu.Unlock()
		return err
	}
	w.advanceWatermark(lsn)
	w.mu.Unlock()
	w.snapLSN.Store(lsn)
	w.sinceSnap.Store(0)

	// Old segments hold LSNs below the new base and would read as a gap;
	// they are dead history now that the snapshot is in place.
	if entries, err := w.fs.ReadDir(w.dir); err == nil {
		for _, e := range entries {
			if s, ok := parseSeqName(e.Name(), "journal-", ".log"); ok && s != lsn+1 {
				w.fs.Remove(filepath.Join(w.dir, e.Name()))
			}
			if s, ok := parseSeqName(e.Name(), "snapshot-", ".json"); ok && s != lsn {
				w.fs.Remove(filepath.Join(w.dir, e.Name()))
			}
		}
	}
	if err := w.db.RestoreFrom(restored, lsn); err != nil {
		return err
	}
	w.db.FloorAppliedLSN(lsn)
	return nil
}

// Promote atomically flips a follower-mode writer into a primary: it
// bumps the election term, applies and appends the term-bump record that
// opens the new term, commits it, and attaches the writer as the
// database's recorder so local mutations journal from here on.  The
// caller must have stopped the replication apply loop first (no
// ApplyAppend may race this); applyMu additionally serializes against a
// snapshot pinning its LSN.
//
// The commit of the bump record is the atomicity hinge: a crash before it
// recovers as a follower still in the old term (the bump was never
// acknowledged and is truncated as a torn tail at worst), a crash after
// it recovers with the new term in the database's term table — exactly
// one of {still-follower, fully-primary}, never a half-promoted state.
// The returned term and LSN identify the new lineage.
func (w *Writer) Promote() (term, lsn int64, err error) {
	w.applyMu.Lock()
	defer w.applyMu.Unlock()
	if !w.follower {
		return 0, 0, fmt.Errorf("journal: Promote on a primary-mode writer")
	}
	newTerm := w.term.Load() + 1
	rec := meta.Record{
		LSN:  w.lastLSN.Load() + 1,
		Seq:  w.db.Seq(),
		Op:   meta.OpTerm,
		Args: []string{strconv.FormatInt(newTerm, 10)},
	}
	if err := w.db.ApplyRecord(rec); err != nil {
		return 0, 0, fmt.Errorf("journal: promote: %w", err)
	}
	w.mu.Lock()
	w.lastLSN.Store(rec.LSN)
	w.scratch = appendPayload(w.scratch[:0], rec)
	w.buf = appendFrame(w.buf, w.scratch)
	w.pending++
	w.mu.Unlock()
	w.term.Store(newTerm)
	if err := w.Commit(); err != nil {
		return 0, 0, fmt.Errorf("journal: promote: %w", err)
	}
	w.follower = false
	w.db.SetRecorder(w)
	return newTerm, rec.LSN, nil
}

// Abort closes the writer without flushing the in-memory buffer — the
// crash-simulation exit: records not yet flushed are lost exactly as a
// SIGKILL would lose them, while the on-disk log stays valid through the
// commit watermark.  Tests use it to exercise restart-from-persisted-LSN
// paths without a child process.
func (w *Writer) Abort() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.buf = nil
	w.pending = 0
	if w.seg != nil {
		w.seg.Close()
		w.seg = nil
	}
	w.mu.Unlock()
	close(w.quit)
	w.wg.Wait()
	w.db.SetRecorder(nil)
}

// Snapshot writes a consistent whole-database snapshot and compacts the
// log behind it.  The document is collected from a pinned MVCC read view
// at the journal's newest assigned LSN — no database lock of any kind is
// held for the collection, the encode or the file write, so checkins on
// every shard proceed for the snapshot's whole duration — and that LSN
// names the file, so recovery knows exactly which records the snapshot
// covers.  The write goes to a temporary file that is fsynced and
// renamed, making snapshot installation atomic under crashes.
func (w *Writer) Snapshot() error {
	w.snapMu.Lock()
	defer w.snapMu.Unlock()

	f, err := w.fs.CreateTemp(w.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	tmp := f.Name()
	// On a follower, applied records reach the database outside its own
	// lock-held emission path; holding applyMu across the pin keeps the
	// chosen LSN and the applied state in step, and is released the moment
	// the view is pinned so the encode, the file I/O and the compaction
	// below all run with replication apply flowing.  On a primary the
	// lock is uncontended and the pin waits only for mutations already
	// past their journal append to finish installing.
	w.applyMu.Lock()
	lsn := w.lastLSN.Load()
	v, err := w.db.ReadViewAt(lsn)
	w.applyMu.Unlock()
	if err != nil {
		f.Close()
		w.fs.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	defer v.Close()
	if lsn <= w.snapLSN.Load() {
		// Nothing newer than the snapshot already on disk.
		f.Close()
		w.fs.Remove(tmp)
		return nil
	}
	err = v.SaveTo(f)
	if err == nil {
		// Flush the log through the pinned LSN before the snapshot becomes
		// visible.  The pinned records may still sit in the in-memory
		// buffer; installing a snapshot that covers them while the tail
		// segment ends short of them would let a crash leave a log whose
		// next append is discontinuous with its last record — which a
		// later recovery must (and does) refuse.
		err = w.Commit()
	}
	if err := w.sealSnapshot(f, err, lsn); err != nil {
		return err
	}
	w.snapLSN.Store(lsn)
	w.sinceSnap.Store(0)
	w.compact(lsn)
	return nil
}

// sealSnapshot finishes a snapshot temporary file: fsync, close, and
// atomic rename into place under the canonical name for lsn.  werr is the
// error state of the writes so far; on any failure the temporary file is
// removed and nothing is installed.  Both snapshot producers (Snapshot
// and BootstrapSnapshot) install through here, so crash-safety fixes to
// the sequence apply to both.
func (w *Writer) sealSnapshot(f faultfs.File, werr error, lsn int64) error {
	tmp := f.Name()
	err := werr
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = w.fs.Rename(tmp, filepath.Join(w.dir, snapshotName(lsn)))
	}
	if err != nil {
		w.fs.Remove(tmp)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	return nil
}

// compact deletes log segments fully covered by the snapshot at lsn — a
// segment is disposable once a successor segment exists whose records all
// fit under the snapshot horizon — and every older snapshot.  Compaction
// races harmlessly with rotation: a segment created concurrently starts
// past lsn and is never considered.
func (w *Writer) compact(lsn int64) {
	entries, err := w.fs.ReadDir(w.dir)
	if err != nil {
		return // compaction is best-effort; recovery tolerates extra files
	}
	var starts []int64
	for _, e := range entries {
		if s, ok := parseSeqName(e.Name(), "journal-", ".log"); ok {
			starts = append(starts, s)
		}
		if s, ok := parseSeqName(e.Name(), "snapshot-", ".json"); ok && s < lsn {
			w.fs.Remove(filepath.Join(w.dir, e.Name()))
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for i := 0; i+1 < len(starts); i++ {
		if starts[i+1] <= lsn+1 {
			w.fs.Remove(filepath.Join(w.dir, segmentName(starts[i])))
		}
	}
}

// snapshotLoop services the record-count trigger and the optional timer.
func (w *Writer) snapshotLoop() {
	defer w.wg.Done()
	var tick <-chan time.Time
	if w.opt.SnapshotInterval > 0 {
		t := time.NewTicker(w.opt.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-w.quit:
			return
		case <-w.snapCh:
		case <-tick:
			if w.sinceSnap.Load() == 0 {
				continue
			}
		}
		if err := w.Snapshot(); err != nil {
			// A full disk is not yet fatal: the append path frees space by
			// compacting behind the last good snapshot and the trigger
			// stays armed, so the snapshot retries once space returns.
			// Anything else is a durability failure and degrades the node.
			if errors.Is(err, syscall.ENOSPC) {
				continue
			}
			w.mu.Lock()
			w.failLocked(err)
			w.mu.Unlock()
		}
	}
}

// spillLoop services buffer-overflow wake-ups from Record and ApplyAppend
// on its own goroutine — deliberately not snapshotLoop, whose Snapshot
// calls take seconds on a large database and would let the buffer grow
// unboundedly past its bound while one is in flight.  Commit failures are
// already sticky in ioErr and surface at the caller's next Commit.
func (w *Writer) spillLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.quit:
			return
		case <-w.spillCh:
			_ = w.Commit()
		}
	}
}

// Close flushes the journal, writes a final snapshot (so the next Open
// replays nothing), detaches from the database and closes the segment.
// The caller must have quiesced writers first.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		err := w.ioErr
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.quit)
	w.wg.Wait()

	err := w.Commit()
	if err == nil && w.lastLSN.Load() > w.snapLSN.Load() {
		// Anything beyond the newest snapshot — fresh records or a tail
		// this process merely replayed at Open — gets folded in, so the
		// next Open loads one document and replays nothing.
		err = w.Snapshot()
	}
	w.db.SetRecorder(nil)
	w.mu.Lock()
	if w.seg != nil {
		if cerr := w.seg.Close(); err == nil {
			err = cerr
		}
		w.seg = nil
	}
	w.mu.Unlock()
	return err
}
