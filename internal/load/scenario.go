package load

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Op classes a scenario can mix.  Each maps to one wire-level operation
// shape against the cluster; weights in Scenario.Mix set their relative
// frequency.
const (
	// OpCheckin posts a hierarchy check-in: one BATCH of Batch events
	// ("ckin up <oid>") over random OIDs from the pool — the bulk write
	// path of a design team checking in a subtree.
	OpCheckin = "checkin"

	// OpReport streams a full REPORT — the whole-project read.
	OpReport = "report"

	// OpStorm is the read-your-writes storm: REPORT/GAP pinned to a
	// recently observed primary LSN (ReportAt/GapAt), served by a
	// follower when FollowerReads is set — the MVCC epoch-pinning path.
	OpStorm = "storm"

	// OpChurn is workspace churn: CREATE a fresh version of a random
	// pool block and LINK it to an existing OID — the version-chain and
	// adjacency write path.  Churn creations are the chaos mode's
	// acked-write ledger: every acknowledged name must survive failover.
	OpChurn = "churn"

	// OpSwap swaps the blueprint mid-traffic (BPSWAP with the server's
	// own current source): a full policy re-compile and atomic index
	// swap under live load.
	OpSwap = "swap"

	// OpState reads one OID's state — the cheap point read.
	OpState = "state"

	// OpQuery runs a graph query (QUERY <lsn> reach) pinned to a recently
	// observed primary LSN, against a follower when FollowerReads is set —
	// the MVCC reachability-index read path.
	OpQuery = "query"
)

// writeClasses are the op classes whose acknowledgements the chaos mode
// audits and whose latency defines SLO recovery.
func isWriteClass(class string) bool {
	return class == OpCheckin || class == OpChurn
}

// Dur is a time.Duration that marshals as a Go duration string ("15s"),
// keeping scenario specs human-writable.
type Dur struct{ D time.Duration }

// MarshalJSON implements json.Marshaler.
func (d Dur) MarshalJSON() ([]byte, error) { return json.Marshal(d.D.String()) }

// UnmarshalJSON implements json.Unmarshaler.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("load: bad duration %q: %w", s, err)
		}
		d.D = v
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("load: bad duration %s", b)
	}
	d.D = time.Duration(ns)
	return nil
}

// SLO declares the latency contract a run is held to: per-op-class p99
// ceilings, and (in chaos mode) how quickly writes must be back under
// their ceiling after a failover.
type SLO struct {
	// P99Ms maps op class → p99 ceiling in milliseconds.  Classes not
	// listed are unconstrained.
	P99Ms map[string]float64 `json:"p99_ms,omitempty"`

	// RecoveryMs bounds the chaos SLO-recovery time: the span from the
	// primary SIGKILL until every later-arriving write completes within
	// its p99 ceiling again.  0 means report, don't enforce.
	RecoveryMs float64 `json:"recovery_ms,omitempty"`
}

// Scenario is the declarative spec of one load run — the single source
// of truth the CLI, the CI smoke lane and the soak test all express
// their workloads in, so they cannot drift apart.
type Scenario struct {
	Name string `json:"name"`

	// Seed drives every random choice (op pick, target pick) so a run is
	// reproducible given the same cluster.
	Seed int64 `json:"seed"`

	// Rate is the open-loop arrival rate in ops/sec; RampTo, when set,
	// ramps linearly from Rate to RampTo over Duration.
	Rate     float64 `json:"rate"`
	RampTo   float64 `json:"ramp_to,omitempty"`
	Duration Dur     `json:"duration"`

	// Workers is the virtual-user pool size: concurrent connections
	// executing ops.  Arrivals keep their intended times even when every
	// worker is busy — the pool never stalls the clock.
	Workers int `json:"workers"`

	// Backlog bounds the dispatched-but-not-started queue; past it,
	// arrivals are counted as dropped (default 4× expected arrivals per
	// second, min 1024).
	Backlog int `json:"backlog,omitempty"`

	// Mix weights the op classes (see Op* constants); a class absent or
	// ≤ 0 never fires.
	Mix map[string]int `json:"mix"`

	// Blocks sizes the pre-created OID pool the read/checkin classes
	// target (default 24).
	Blocks int `json:"blocks,omitempty"`

	// Batch is the events-per-BATCH of a checkin (default 8).
	Batch int `json:"batch,omitempty"`

	// FollowerReads routes report/storm reads round-robin across the
	// follower fleet instead of the primary.
	FollowerReads bool `json:"follower_reads,omitempty"`

	// SLO is the latency contract (optional).
	SLO *SLO `json:"slo,omitempty"`
}

// withDefaults fills the optional knobs.
func (s Scenario) withDefaults() Scenario {
	if s.Workers <= 0 {
		s.Workers = 8
	}
	if s.Blocks <= 0 {
		s.Blocks = 24
	}
	if s.Batch <= 0 {
		s.Batch = 8
	}
	if s.Backlog <= 0 {
		perSec := s.Rate
		if s.RampTo > perSec {
			perSec = s.RampTo
		}
		s.Backlog = int(4 * perSec)
		if s.Backlog < 1024 {
			s.Backlog = 1024
		}
	}
	return s
}

// validate rejects specs the runner cannot execute.
func (s Scenario) validate() error {
	if s.Rate <= 0 || s.Duration.D <= 0 {
		return fmt.Errorf("load: scenario %q: rate and duration must be positive", s.Name)
	}
	total := 0
	for class, w := range s.Mix {
		switch class {
		case OpCheckin, OpReport, OpStorm, OpChurn, OpSwap, OpState, OpQuery:
		default:
			return fmt.Errorf("load: scenario %q: unknown op class %q", s.Name, class)
		}
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return fmt.Errorf("load: scenario %q: mix has no positive weights", s.Name)
	}
	return nil
}

// mixTable flattens the weighted mix into a cumulative table for O(log n)
// deterministic picks; classes iterate sorted so the same seed always
// yields the same op sequence.
type mixTable struct {
	classes []string
	cum     []int
	total   int
}

func newMixTable(mix map[string]int) mixTable {
	classes := make([]string, 0, len(mix))
	for c, w := range mix {
		if w > 0 {
			classes = append(classes, c)
		}
	}
	sort.Strings(classes)
	t := mixTable{classes: classes}
	for _, c := range classes {
		t.total += mix[c]
		t.cum = append(t.cum, t.total)
	}
	return t
}

func (t mixTable) pick(r int) string {
	r = r % t.total
	i := sort.SearchInts(t.cum, r+1)
	return t.classes[i]
}

// ParseScenario decodes a JSON scenario spec.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return Scenario{}, fmt.Errorf("load: scenario spec: %w", err)
	}
	if err := s.validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads a JSON scenario spec from a file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	return ParseScenario(data)
}

// Preset returns a built-in scenario by name:
//
//   - "smoke": the CI load lane — low-rate, short, single-core-honest
//     mixed traffic with follower storm reads.
//   - "mixed": the LOAD_<n> acceptance scenario — sustained mixed load
//     with every op class, sized for a small container.
//   - "soak": the soak-test workload — longer, write-heavy, with
//     periodic swaps, expressed here so the soak and the harness share
//     one spec.
func Preset(name string) (Scenario, error) {
	switch name {
	case "smoke":
		return Scenario{
			Name:     "smoke",
			Seed:     1,
			Rate:     120,
			Duration: Dur{8 * time.Second},
			Workers:  6,
			Blocks:   16,
			Batch:    4,
			Mix: map[string]int{
				OpCheckin: 30, OpReport: 10, OpStorm: 15,
				OpChurn: 20, OpState: 20, OpQuery: 5,
			},
			FollowerReads: true,
			SLO:           &SLO{P99Ms: map[string]float64{OpState: 250, OpStorm: 400}},
		}, nil
	case "mixed":
		return Scenario{
			Name:     "mixed",
			Seed:     2,
			Rate:     200,
			Duration: Dur{20 * time.Second},
			Workers:  10,
			Blocks:   32,
			Batch:    8,
			Mix: map[string]int{
				OpCheckin: 28, OpReport: 7, OpStorm: 15,
				OpChurn: 25, OpSwap: 2, OpState: 18, OpQuery: 5,
			},
			FollowerReads: true,
			SLO: &SLO{
				P99Ms:      map[string]float64{OpCheckin: 400, OpChurn: 400, OpState: 250},
				RecoveryMs: 10000,
			},
		}, nil
	case "soak":
		return Scenario{
			Name:     "soak",
			Seed:     20240612,
			Rate:     150,
			Duration: Dur{12 * time.Second},
			Workers:  8,
			Blocks:   20,
			Batch:    6,
			Mix: map[string]int{
				OpCheckin: 35, OpReport: 8, OpStorm: 12,
				OpChurn: 30, OpSwap: 1, OpState: 14,
			},
		}, nil
	}
	return Scenario{}, fmt.Errorf("load: unknown preset %q (smoke, mixed, soak)", name)
}
