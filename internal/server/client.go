package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/meta"
	"repro/internal/wire"
)

// Client is a wrapper-program connection to the project server — the
// library behind the postEvent command of section 3.1.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// User attributes subsequent requests to a designer.
	User string

	// Timeout bounds each request/response round-trip (and the FOLLOW
	// handshake) when positive: a hung server surfaces as ErrTimeout
	// instead of blocking the caller forever.  The deadline refreshes on
	// every successfully-read body line, so it bounds peer silence, not
	// total transfer time — a large streaming REPORT/GAP body over a
	// slow-but-live link keeps resetting it and never trips it
	// spuriously.  It deliberately does not bound the reads between
	// follow-stream frames; see StreamTimeout for that.
	Timeout time.Duration

	// StreamTimeout, when positive, bounds the silence between two
	// follow-stream frames: each frame read arms a fresh read deadline.
	// With a primary that pings idle streams (FollowFramePing), any
	// healthy link delivers a frame well inside the window, so an expiry
	// is a dead link — the half-open connection after a partition — and
	// surfaces as ErrTimeout from Follow.  Zero keeps the legacy
	// unbounded stream reads.
	StreamTimeout time.Duration
}

// ErrTimeout marks an I/O deadline expiry on a client operation — the
// hung-server case, distinguishable from a refused or broken connection.
var ErrTimeout = errors.New("client: operation timed out")

// Dial connects to a project server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 5*time.Second, 0)
}

// DialTimeout connects to a project server with an explicit dial timeout
// and a per-operation I/O timeout (0 disables the latter, matching Dial).
func DialTimeout(addr string, dial, op time.Duration) (*Client, error) {
	if dial <= 0 {
		dial = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dial)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return nil, fmt.Errorf("%w: dial %s: %v", ErrTimeout, addr, err)
		}
		return nil, fmt.Errorf("client: %w", err)
	}
	return NewClient(conn, op), nil
}

// NewClient wraps an already-established connection — the injectable
// transport seam: a netfault dialer (or test harness) owns the dial and
// hands the conn over, and everything above the transport behaves
// exactly as after DialTimeout.  op is the per-operation I/O timeout
// (0 disables it).
func NewClient(conn net.Conn, op time.Duration) *Client {
	return &Client{conn: conn, r: bufio.NewReaderSize(conn, 64*1024), w: bufio.NewWriter(conn), Timeout: op}
}

// arm sets the connection deadline one operation ahead; disarm clears it
// so a deliberately long-lived wait (the follow stream) is not cut short.
func (c *Client) arm() {
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
}

func (c *Client) disarm() {
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
}

// armStream sets the read deadline one follow-stream frame ahead — the
// stall detector: a healthy pinged stream always delivers a frame
// inside the window, so an expiry means the link is dead.
func (c *Client) armStream() {
	if c.StreamTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.StreamTimeout))
	}
}

// wrapTimeout converts a deadline expiry into the typed ErrTimeout while
// passing every other error through untouched.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// Close terminates the connection politely.
func (c *Client) Close() error {
	_, _ = c.roundTrip(wire.Request{Verb: wire.VerbQuit})
	return c.conn.Close()
}

// Hangup closes the transport without the QUIT exchange — the only way to
// leave a Follow stream, whose connection no longer answers requests.
func (c *Client) Hangup() error { return c.conn.Close() }

// errTornLine reports a line the transport cut off before its newline —
// the write that produced it never completed, so its content must not be
// trusted (a truncated line could parse as a different, valid one).
var errTornLine = errors.New("torn line at stream boundary")

// errLineTooLong reports a protocol line past maxLineBytes.
var errLineTooLong = fmt.Errorf("protocol line exceeds %d bytes", maxLineBytes)

// maxLineBytes bounds one protocol line on both sides of the connection:
// a peer streaming bytes without a newline must fail fast, not accumulate
// without bound in a long-lived server or follower.
const maxLineBytes = 1 << 20

// readProtocolLine reads one newline-terminated protocol line from r.  A
// final fragment without its newline is reported as errTornLine, never
// returned as data — both the server's request loop and the client's
// response/stream readers refuse to act on fragments, because a torn
// prefix of a longer line can itself be a valid, different line.
func readProtocolLine(r *bufio.Reader) (string, error) {
	var line []byte
	for {
		frag, err := r.ReadSlice('\n')
		line = append(line, frag...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(line) > maxLineBytes {
				return "", errLineTooLong
			}
			continue
		}
		if (err == io.EOF || errors.Is(err, net.ErrClosed)) && len(line) > 0 {
			return "", errTornLine
		}
		return "", err
	}
	if len(line) > maxLineBytes {
		return "", errLineTooLong
	}
	return strings.TrimRight(string(line), "\r\n"), nil
}

// readLine reads one response line from the server.
func (c *Client) readLine() (string, error) {
	line, err := readProtocolLine(c.r)
	if err != nil && err != io.EOF {
		return "", fmt.Errorf("client: %w", wrapTimeout(err))
	}
	return line, err
}

// roundTrip sends one request and reads the complete response.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	if req.User == "" {
		req.User = c.User
	}
	c.arm()
	defer c.disarm()
	if _, err := c.w.WriteString(req.Encode() + "\n"); err != nil {
		return wire.Response{}, fmt.Errorf("client: send: %w", wrapTimeout(err))
	}
	if err := c.w.Flush(); err != nil {
		return wire.Response{}, fmt.Errorf("client: send: %w", wrapTimeout(err))
	}
	line, err := c.readLine()
	if err != nil {
		if err == io.EOF {
			return wire.Response{}, fmt.Errorf("client: connection closed")
		}
		return wire.Response{}, fmt.Errorf("client: recv: %w", err)
	}
	resp, multi, err := wire.ParseResponseHeader(line)
	if err != nil {
		return wire.Response{}, err
	}
	for multi {
		// Refresh the deadline per successfully-read body line: the
		// timeout bounds peer silence, and a huge REPORT/GAP body over a
		// slow-but-live link is progress, not a hang.
		c.arm()
		line, err := c.readLine()
		if err != nil {
			return wire.Response{}, fmt.Errorf("client: truncated response: %w", err)
		}
		content, done, err := wire.ParseBodyLine(line)
		if err != nil {
			return wire.Response{}, err
		}
		if done {
			break
		}
		resp.Body = append(resp.Body, content)
	}
	return resp, nil
}

// do performs a request and converts ERR responses into errors.
func (c *Client) do(verb string, args ...string) (wire.Response, error) {
	resp, err := c.roundTrip(wire.Request{Verb: verb, Args: args})
	if err != nil {
		return wire.Response{}, err
	}
	if !resp.OK {
		return wire.Response{}, fmt.Errorf("client: %s: %s", verb, resp.Detail)
	}
	return resp, nil
}

// Ping checks the server is alive.
func (c *Client) Ping() error {
	_, err := c.do(wire.VerbPing)
	return err
}

// Sync blocks until the server's event queue has settled (meaningful in
// async-drain mode; an immediate no-op otherwise) and surfaces any drain
// error encountered since the last Sync.
func (c *Client) Sync() error {
	_, err := c.do(wire.VerbSync)
	return err
}

// PostEvent posts a design event:
//
//	client.PostEvent("ckin", "up", key, "logic sim passed")
func (c *Client) PostEvent(event, dir string, target meta.Key, args ...string) error {
	_, err := c.do(wire.VerbPost, append([]string{event, dir, target.String()}, args...)...)
	return err
}

// PostBatch posts many events in one round-trip — the BATCH verb.  The
// server posts every well-formed item, drains once, and reports per-item
// status.  It returns the number of accepted events; err is non-nil when
// the transport failed or any item was rejected (the per-item reasons are
// folded into the error).
func (c *Client) PostBatch(items []wire.BatchItem) (int, error) {
	if len(items) == 0 {
		return 0, nil
	}
	args := make([]string, len(items))
	for i, it := range items {
		args[i] = it.Encode()
	}
	resp, err := c.roundTrip(wire.Request{Verb: wire.VerbBatch, Args: args})
	if err != nil {
		return 0, err
	}
	posted := 0
	var failures []string
	for _, line := range resp.Body {
		fields, err := wire.Tokenize(line)
		if err != nil || len(fields) < 2 {
			continue
		}
		if fields[1] == "ok" {
			posted++
		} else {
			failures = append(failures, line)
		}
	}
	if !resp.OK {
		return posted, fmt.Errorf("client: BATCH: %s: %s", resp.Detail, strings.Join(failures, "; "))
	}
	return posted, nil
}

// Create makes a new version of (block, view) and returns its key.
func (c *Client) Create(block, view string) (meta.Key, error) {
	resp, err := c.do(wire.VerbCreate, block, view)
	if err != nil {
		return meta.Key{}, err
	}
	return meta.ParseKey(resp.Detail)
}

// Link relates two OIDs; class is "use" or "derive".
func (c *Client) Link(class string, from, to meta.Key) error {
	_, err := c.do(wire.VerbLink, class, from.String(), to.String())
	return err
}

// OIDState is the client-side decoding of a STATE response.
type OIDState struct {
	Key      meta.Key
	Ready    bool
	Props    map[string]string
	Blocking []string
}

// State queries the state of one OID.
func (c *Client) State(k meta.Key) (OIDState, error) {
	resp, err := c.do(wire.VerbState, k.String())
	if err != nil {
		return OIDState{}, err
	}
	st := OIDState{Key: k, Props: map[string]string{}}
	for _, line := range resp.Body {
		fields, err := wire.Tokenize(line)
		if err != nil || len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "ready":
			st.Ready = len(fields) > 1 && fields[1] == "true"
		case "prop":
			if len(fields) == 3 {
				st.Props[fields[1]] = fields[2]
			}
		case "blocking":
			st.Blocking = append(st.Blocking, strings.TrimPrefix(line, "blocking "))
		}
	}
	return st, nil
}

// Report retrieves the full project state report lines.
func (c *Client) Report() ([]string, error) {
	resp, err := c.do(wire.VerbReport)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Gap retrieves the not-ready report lines.
func (c *Client) Gap() ([]string, error) {
	resp, err := c.do(wire.VerbGap)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// ReportAt retrieves the project state report as of at least the given
// journal LSN: on a follower the server first waits until the replica has
// applied that position, so a client that just wrote through the primary
// (and learned its LSN) reads its own write from any replica.
func (c *Client) ReportAt(lsn int64) ([]string, error) {
	resp, err := c.do(wire.VerbReport, strconv.FormatInt(lsn, 10))
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// GapAt is Gap with the same minimum-LSN horizon as ReportAt.
func (c *Client) GapAt(lsn int64) ([]string, error) {
	resp, err := c.do(wire.VerbGap, strconv.FormatInt(lsn, 10))
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// QueryAt runs a graph query pinned at the given journal LSN (0 = the
// server's current state).  kind is reach, deps, equiv or resolve; args
// are the kind's operands (an OID, optionally followed by a follow spec
// — use, all or type:t1,t2,... — for reach/deps; a configuration name
// for resolve).  On a follower the server first waits until the replica
// has applied the position, so the body at a given LSN is byte-identical
// on every node that has reached it.
func (c *Client) QueryAt(lsn int64, kind string, args ...string) ([]string, error) {
	resp, err := c.do(wire.VerbQuery, append([]string{strconv.FormatInt(lsn, 10), kind}, args...)...)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// LSN reports the server's journal position: the last journaled LSN on a
// primary, the applied LSN on a follower.
func (c *Client) LSN() (int64, error) {
	resp, err := c.do(wire.VerbLSN)
	if err != nil {
		return 0, err
	}
	fields, err := wire.Tokenize(resp.Detail)
	if err != nil || len(fields) != 2 || fields[0] != "lsn" {
		return 0, fmt.Errorf("client: LSN: bad response %q", resp.Detail)
	}
	return strconv.ParseInt(fields[1], 10, 64)
}

// FollowFrame is one decoded frame of a replication stream.
type FollowFrame struct {
	// Rec is set on a record frame.
	Rec *meta.Record

	// Snapshot/SnapLSN are set on a snapshot-bootstrap frame: the follower
	// must re-base on the document; records resume at SnapLSN+1.
	Snapshot []byte
	SnapLSN  int64

	// Mark is true on a watermark frame: the stream has delivered every
	// record the primary has committed up to Watermark.
	Mark      bool
	Watermark int64

	// Health is true on a health frame: the upstream journal degraded and
	// refuses writes, so the last watermark is final until its disk fault
	// is resolved.  HealthReason carries the upstream's sticky error.
	Health       bool
	HealthReason string

	// Ping is true on an idle-stream liveness tick: the primary is alive
	// and caught up at commit position PingLSN, with nothing new to ship.
	// Its arrival is freshness evidence; its absence past the stall
	// timeout is a dead link.
	Ping    bool
	PingLSN int64
}

// ErrFollowRefused marks a FOLLOW the server rejected outright (not a
// replication primary, malformed position): retrying the same request
// cannot succeed.
var ErrFollowRefused = errors.New("follow refused")

// ErrFollowStream marks a terminal primary-side stream failure reported
// in-band (tail corruption, a position ahead of the primary's history):
// reconnecting with the same position cannot succeed.
var ErrFollowStream = errors.New("follow stream failed")

// Follow switches the connection into replication-stream mode: it sends
// FOLLOW <after> and invokes fn for every frame until the stream ends (nil
// return: the server shut down politely), the transport fails, or fn
// returns an error (returned verbatim).  A rejection wraps
// ErrFollowRefused; a primary-reported terminal failure wraps
// ErrFollowStream — both are pointless to retry, unlike transport errors.
// A line cut off mid-write at the stream boundary is reported as an
// error, never delivered as data — a truncated record could otherwise
// parse as a different, valid record.  The connection cannot be reused
// for request/response traffic afterwards.
func (c *Client) Follow(after int64, fn func(FollowFrame) error) error {
	return c.FollowFrom(after, 0, fn)
}

// FollowFrom is Follow carrying the follower's election term at its
// resume position, letting the primary fence a divergent tail: a
// follower whose history extends past the primary lineage's promotion
// point is refused (ErrFollowStream) instead of silently diverging.
// term 0 omits the argument — the legacy, unfenced form.
func (c *Client) FollowFrom(after, term int64, fn func(FollowFrame) error) error {
	args := []string{strconv.FormatInt(after, 10)}
	if term > 0 {
		args = append(args, strconv.FormatInt(term, 10))
	}
	// The handshake is a bounded round-trip and gets the deadline; the
	// stream after it may legitimately sit idle forever and must not.
	c.arm()
	if _, err := c.w.WriteString(wire.Request{Verb: wire.VerbFollow, Args: args}.Encode() + "\n"); err != nil {
		c.disarm()
		return fmt.Errorf("client: send: %w", wrapTimeout(err))
	}
	if err := c.w.Flush(); err != nil {
		c.disarm()
		return fmt.Errorf("client: send: %w", wrapTimeout(err))
	}
	line, err := c.readLine()
	c.disarm()
	if err != nil {
		return fmt.Errorf("client: recv: %w", err)
	}
	resp, multi, err := wire.ParseResponseHeader(line)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("client: FOLLOW: %s: %w", resp.Detail, ErrFollowRefused)
	}
	if !multi {
		return fmt.Errorf("client: FOLLOW: expected a streaming response, got %q", line)
	}
	for {
		c.armStream()
		line, err := c.readLine()
		if err != nil {
			return fmt.Errorf("client: follow stream: %w", err)
		}
		content, done, err := wire.ParseBodyLine(line)
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		fields, err := wire.Tokenize(content)
		if err != nil || len(fields) == 0 {
			return fmt.Errorf("client: follow stream: bad frame %q", content)
		}
		var frame FollowFrame
		switch fields[0] {
		case wire.FollowFrameRecord:
			lsn, seq, op, args, err := wire.ParseFollowRecord(fields)
			if err != nil {
				return err
			}
			frame.Rec = &meta.Record{LSN: lsn, Seq: seq, Op: op, Args: args}

		case wire.FollowFrameSnapshot:
			if len(fields) != 3 {
				return fmt.Errorf("client: follow stream: bad snapshot frame %q", content)
			}
			lsn, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return fmt.Errorf("client: follow stream: snapshot lsn %q", fields[1])
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return fmt.Errorf("client: follow stream: snapshot line count %q", fields[2])
			}
			var doc strings.Builder
			for i := 0; i < n; i++ {
				// Per-line refresh: a large bootstrap document arriving
				// slowly is progress, not a stall.
				c.armStream()
				line, err := c.readLine()
				if err != nil {
					return fmt.Errorf("client: follow stream: snapshot body: %w", err)
				}
				raw, done, err := wire.ParseBodyLine(line)
				if err != nil || done {
					return fmt.Errorf("client: follow stream: snapshot body cut short at line %d", i)
				}
				doc.WriteString(raw)
				doc.WriteByte('\n')
			}
			frame.SnapLSN = lsn
			frame.Snapshot = []byte(doc.String())

		case wire.FollowFrameWatermark:
			if len(fields) != 2 {
				return fmt.Errorf("client: follow stream: bad watermark frame %q", content)
			}
			lsn, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return fmt.Errorf("client: follow stream: watermark lsn %q", fields[1])
			}
			frame.Mark = true
			frame.Watermark = lsn

		case wire.FollowFrameHealth:
			if len(fields) < 2 {
				return fmt.Errorf("client: follow stream: bad health frame %q", content)
			}
			frame.Health = true
			frame.HealthReason = strings.Join(fields[2:], " ")

		case wire.FollowFramePing:
			if len(fields) != 2 {
				return fmt.Errorf("client: follow stream: bad ping frame %q", content)
			}
			lsn, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return fmt.Errorf("client: follow stream: ping lsn %q", fields[1])
			}
			frame.Ping = true
			frame.PingLSN = lsn

		case wire.FollowFrameError:
			return fmt.Errorf("client: %s: %w", strings.Join(fields[1:], " "), ErrFollowStream)

		default:
			return fmt.Errorf("client: follow stream: unknown frame kind %q", fields[0])
		}
		if err := fn(frame); err != nil {
			return err
		}
	}
}

// SendAck reports an applied-and-committed position upstream on a
// connection that is inside Follow: the one line a follower may write on
// the stream, feeding the primary's quorum-ack accounting.  It must only
// be called from within the Follow frame callback (the same goroutine
// owns both directions there).
func (c *Client) SendAck(lsn int64) error {
	if _, err := c.w.WriteString(wire.AckPrefix + " " + strconv.FormatInt(lsn, 10) + "\n"); err != nil {
		return fmt.Errorf("client: ack: %w", err)
	}
	if err := c.w.Flush(); err != nil {
		return fmt.Errorf("client: ack: %w", err)
	}
	return nil
}

// RoleInfo is the decoded ROLE response: the server's replication role
// and standing in one snapshot.
type RoleInfo struct {
	Role      string // "primary" or "follower"
	Term      int64
	Applied   int64
	Watermark int64
	Health    string // "ok" or "degraded" ("" from a server predating health)
	Reason    string // degraded reason, spaces folded to underscores on the wire

	// Staleness is a follower's wall-clock age of its last upstream
	// freshness evidence (an applied record, a caught-up watermark, or a
	// liveness ping), reported as staleness=<ms>.  A bounded value means
	// the replication link was provably alive that recently; a growing
	// one means the follower may be serving arbitrarily old reads.
	// false on a primary (its data is by definition current) and on
	// servers predating the field.
	HasStaleness bool
	Staleness    time.Duration
}

// Role queries the server's replication role, election term, applied LSN,
// commit watermark and health.
func (c *Client) Role() (RoleInfo, error) {
	resp, err := c.do(wire.VerbRole)
	if err != nil {
		return RoleInfo{}, err
	}
	info := RoleInfo{}
	for _, f := range strings.Fields(resp.Detail) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return RoleInfo{}, fmt.Errorf("client: ROLE: bad field %q in %q", f, resp.Detail)
		}
		switch k {
		case "role":
			info.Role = v
		case "health":
			info.Health = v
		case "reason":
			info.Reason = v
		case "term", "applied", "watermark", "staleness":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return RoleInfo{}, fmt.Errorf("client: ROLE: bad field %q in %q", f, resp.Detail)
			}
			switch k {
			case "term":
				info.Term = n
			case "applied":
				info.Applied = n
			case "watermark":
				info.Watermark = n
			case "staleness":
				info.HasStaleness = true
				info.Staleness = time.Duration(n) * time.Millisecond
			}
		}
	}
	if info.Role == "" || info.Term == 0 {
		return RoleInfo{}, fmt.Errorf("client: ROLE: bad response %q", resp.Detail)
	}
	return info, nil
}

// Promote asks a read-only follower server to become a primary, and
// returns the new election term and the LSN of its term-bump record.
func (c *Client) Promote() (term, lsn int64, err error) {
	resp, err := c.do(wire.VerbPromote)
	if err != nil {
		return 0, 0, err
	}
	fields, err := wire.Tokenize(resp.Detail)
	if err != nil || len(fields) != 5 || fields[0] != "promoted" || fields[1] != "term" || fields[3] != "lsn" {
		return 0, 0, fmt.Errorf("client: PROMOTE: bad response %q", resp.Detail)
	}
	term, err = strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("client: PROMOTE: bad response %q", resp.Detail)
	}
	lsn, err = strconv.ParseInt(fields[4], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("client: PROMOTE: bad response %q", resp.Detail)
	}
	return term, lsn, nil
}

// Snapshot stores a configuration server-side; root "*" captures the whole
// database.
func (c *Client) Snapshot(name, root string) (string, error) {
	resp, err := c.do(wire.VerbSnapshot, name, root)
	if err != nil {
		return "", err
	}
	return resp.Detail, nil
}

// Stats retrieves the server's one-line statistics summary.
func (c *Client) Stats() (string, error) {
	resp, err := c.do(wire.VerbStats)
	if err != nil {
		return "", err
	}
	return resp.Detail, nil
}

// StatsKV retrieves the server statistics parsed into a counter map —
// the engine counters plus the shed/refusal counters, so a load
// generator can reconcile its client-side error accounting against the
// server's own tallies.
func (c *Client) StatsKV() (map[string]int64, error) {
	detail, err := c.Stats()
	if err != nil {
		return nil, err
	}
	kv := map[string]int64{}
	for _, f := range strings.Fields(detail) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("client: STATS: bad field %q in %q", f, detail)
		}
		kv[k] = n
	}
	return kv, nil
}

// SwapBlueprint installs a new blueprint on a live server (BPSWAP): the
// source is parsed, analyzed and atomically swapped in while events keep
// flowing.  The swap is node-local configuration — it is not journaled
// and does not replicate to followers.
func (c *Client) SwapBlueprint(source string) error {
	_, err := c.do(wire.VerbBPSwap, source)
	return err
}

// Latest asks the server for the newest version of (block, view).
func (c *Client) Latest(block, view string) (meta.Key, error) {
	resp, err := c.do(wire.VerbLatest, block, view)
	if err != nil {
		return meta.Key{}, err
	}
	return meta.ParseKey(resp.Detail)
}

// Prop reads one property of an OID; ok reports whether it is set.
func (c *Client) Prop(k meta.Key, name string) (value string, ok bool, err error) {
	resp, err := c.do(wire.VerbProp, k.String(), name)
	if err != nil {
		return "", false, err
	}
	if resp.Detail == "unset" {
		return "", false, nil
	}
	fields, err := wire.Tokenize(resp.Detail)
	if err != nil || len(fields) != 2 || fields[0] != "set" {
		return "", false, fmt.Errorf("client: PROP: bad response %q", resp.Detail)
	}
	return fields[1], true, nil
}

// Links lists the links incident to an OID, one formatted line per link.
func (c *Client) Links(k meta.Key) ([]string, error) {
	resp, err := c.do(wire.VerbLinks, k.String())
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Dot retrieves a Graphviz rendering from the server: kind is "flow" (the
// BluePrint diagram, Figure 5) or "state" (the live project state).
func (c *Client) Dot(kind string) (string, error) {
	resp, err := c.do(wire.VerbDot, kind)
	if err != nil {
		return "", err
	}
	return strings.Join(resp.Body, "\n") + "\n", nil
}

// Blueprint retrieves the canonical source of the loaded blueprint.
func (c *Client) Blueprint() (string, error) {
	resp, err := c.do(wire.VerbBlueprint)
	if err != nil {
		return "", err
	}
	return strings.Join(resp.Body, "\n") + "\n", nil
}
