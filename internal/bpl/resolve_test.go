package bpl

import (
	"reflect"
	"testing"
)

func TestEffectivePropertiesMerge(t *testing.T) {
	bp := mustParse(t, `blueprint b
view default
    property uptodate default true
    property shared default fromdefault
endview
view v
    property own default x
    property shared default fromview
endview
endblueprint`)
	props := bp.EffectiveProperties("v")
	names := make([]string, len(props))
	for i, p := range props {
		names[i] = p.Name + "=" + p.Default
	}
	want := []string{"uptodate=true", "own=x", "shared=fromview"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("EffectiveProperties = %v, want %v", names, want)
	}
}

func TestEffectivePropertiesUndeclaredView(t *testing.T) {
	bp := mustParse(t, `blueprint b
view default
    property uptodate default true
endview
endblueprint`)
	props := bp.EffectiveProperties("never_declared")
	if len(props) != 1 || props[0].Name != "uptodate" {
		t.Errorf("EffectiveProperties(undeclared) = %+v", props)
	}
}

func TestEffectiveRulesOrder(t *testing.T) {
	bp := mustParse(t, EDTCExample)
	rules := bp.EffectiveRules("schematic", "ckin")
	// default ckin rule first, then the two schematic ckin rules.
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	if _, ok := rules[0].Actions[0].(*AssignAction); !ok {
		t.Errorf("first rule not the default uptodate rule: %+v", rules[0])
	}
	if _, ok := rules[2].Actions[0].(*ExecAction); !ok {
		t.Errorf("last rule not the netlister exec: %+v", rules[2])
	}
}

func TestEffectiveLetsOverride(t *testing.T) {
	bp := mustParse(t, `blueprint b
view default
    let state = ($uptodate == true)
endview
view v
    let state = ($x == ok)
endview
endblueprint`)
	lets := bp.EffectiveLets("v")
	if len(lets) != 1 {
		t.Fatalf("lets = %d", len(lets))
	}
	if got := lets[0].Expr.String(); got != "($x == ok)" {
		t.Errorf("winning let = %s", got)
	}
}

func TestLinkTemplateLookup(t *testing.T) {
	bp := mustParse(t, EDTCExample)
	// use link on schematic.
	d, ok := bp.LinkTemplate(true, "schematic", "schematic")
	if !ok || !d.Use || d.Inherit != InheritMove {
		t.Errorf("use template = %+v %v", d, ok)
	}
	// derive link HDL_model -> schematic.
	d, ok = bp.LinkTemplate(false, "HDL_model", "schematic")
	if !ok || d.Type != "derived" {
		t.Errorf("derive template = %+v %v", d, ok)
	}
	// derive schematic -> layout (equivalence).
	d, ok = bp.LinkTemplate(false, "schematic", "layout")
	if !ok || d.Type != "equivalence" || !reflect.DeepEqual(d.Propagates, []string{"lvs", "outofdate"}) {
		t.Errorf("layout template = %+v %v", d, ok)
	}
	// Unknown combination.
	if _, ok := bp.LinkTemplate(false, "layout", "HDL_model"); ok {
		t.Error("phantom template found")
	}
}

func TestEventsEnumeration(t *testing.T) {
	bp := mustParse(t, EDTCExample)
	evs := bp.Events()
	want := map[string]bool{
		"ckin": true, "outofdate": true, "hdl_sim": true,
		"nl_sim": true, "lvs": true, "drc": true,
	}
	got := map[string]bool{}
	for _, e := range evs {
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("event %q missing from %v", e, evs)
		}
	}
}
