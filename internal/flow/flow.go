// Package flow generates design structures and designer activity for
// experiments: hierarchy trees of configurable depth and fan-out, the
// paper's section 3.4 scenario as a reusable program, and a seeded random
// workload that drives the wrapper programs the way a design team would.
package flow

import (
	"fmt"
	"strconv"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
)

// TreeSpec describes a design hierarchy: a root block with Fanout children
// per node, Depth levels deep (Depth 1 = root only).
type TreeSpec struct {
	View   string // view type of the nodes, e.g. "schematic"
	Depth  int
	Fanout int
}

// Size returns the number of nodes the spec generates.
func (ts TreeSpec) Size() int {
	n, level := 0, 1
	for d := 0; d < ts.Depth; d++ {
		n += level
		level *= ts.Fanout
	}
	return n
}

// BuildTree creates the hierarchy in the engine's database: one OID per
// node and a use link from each parent to each child (templates from the
// engine's blueprint decorate the links).  It returns the root key and all
// keys in breadth-first order.
func BuildTree(eng *engine.Engine, spec TreeSpec) (meta.Key, []meta.Key, error) {
	if spec.Depth < 1 || spec.Fanout < 1 {
		return meta.Key{}, nil, fmt.Errorf("flow: bad tree spec %+v", spec)
	}
	root, err := eng.CreateOID("n0", spec.View, "flow")
	if err != nil {
		return meta.Key{}, nil, err
	}
	all := []meta.Key{root}
	frontier := []meta.Key{root}
	id := 1
	for d := 1; d < spec.Depth; d++ {
		var next []meta.Key
		for _, parent := range frontier {
			for f := 0; f < spec.Fanout; f++ {
				child, err := eng.CreateOID("n"+strconv.Itoa(id), spec.View, "flow")
				if err != nil {
					return meta.Key{}, nil, err
				}
				id++
				if _, err := eng.CreateLink(meta.UseLink, parent, child); err != nil {
					return meta.Key{}, nil, err
				}
				next = append(next, child)
				all = append(all, child)
			}
		}
		frontier = next
	}
	if err := eng.Drain(); err != nil {
		return meta.Key{}, nil, err
	}
	return root, all, nil
}

// ChainSpec describes a linear derivation chain: view[0] -> view[1] -> ...
// with derive links, one block.
type ChainSpec struct {
	Block string
	Views []string
}

// BuildChain creates one OID per view linked head-to-tail with derive
// links.
func BuildChain(eng *engine.Engine, spec ChainSpec) ([]meta.Key, error) {
	if len(spec.Views) == 0 {
		return nil, fmt.Errorf("flow: empty chain")
	}
	keys := make([]meta.Key, len(spec.Views))
	for i, view := range spec.Views {
		k, err := eng.CreateOID(spec.Block, view, "flow")
		if err != nil {
			return nil, err
		}
		keys[i] = k
		if i > 0 {
			if _, err := eng.CreateLink(meta.DeriveLink, keys[i-1], k); err != nil {
				return nil, err
			}
		}
	}
	if err := eng.Drain(); err != nil {
		return nil, err
	}
	return keys, nil
}

// PropagationBlueprint builds a blueprint for propagation experiments: a
// default view whose ckin invalidates downstream data, and a node view
// whose use links propagate the listed events.  Filtering is controlled by
// which events appear in propagates — the paper's selective-propagation
// mechanism.
func PropagationBlueprint(name, view string, propagates []string) (*bpl.Blueprint, error) {
	src := "blueprint " + name + "\n"
	src += `view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview
`
	src += "view " + view + "\n"
	if len(propagates) > 0 {
		src += "    use_link move propagates "
		for i, e := range propagates {
			if i > 0 {
				src += ", "
			}
			src += e
		}
		src += "\n"
	} else {
		// A link template must propagate at least one event; use a
		// never-posted placeholder so instances exist but filter
		// everything the experiment posts.
		src += "    use_link move propagates never_posted\n"
	}
	src += "endview\nendblueprint\n"
	return bpl.Parse(src)
}
