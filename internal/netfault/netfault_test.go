package netfault

import (
	"context"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func dialEcho(t *testing.T, d Dialer, addr string) net.Conn {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return c
}

func roundTrip(t *testing.T, c net.Conn, msg string) string {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(buf)
}

func TestPassthroughAndCounts(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d, inj := NewFaultDialer(Plan{})
	c := dialEcho(t, d, addr)
	defer c.Close()
	if got := roundTrip(t, c, "hello"); got != "hello" {
		t.Fatalf("echo = %q", got)
	}
	if inj.Count(OpDial) != 1 || inj.Count(OpWrite) != 1 || inj.Count(OpRead) == 0 {
		t.Fatalf("counts = %v", inj.Counts())
	}
	if fired := inj.Fired(); len(fired) != 0 {
		t.Fatalf("zero plan fired %v", fired)
	}
}

func TestNthReadFaultOnceAndSticky(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d, inj := NewFaultDialer(SingleFault(OpRead, 2, nil))
	c := dialEcho(t, d, addr)
	defer c.Close()
	if got := roundTrip(t, c, "a"); got != "a" {
		t.Fatalf("first echo = %q", got)
	}
	if _, err := c.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd read err = %v, want ErrInjected", err)
	}
	// Non-sticky: the third read succeeds (the echoed "b" is waiting).
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil || buf[0] != 'b' {
		t.Fatalf("3rd read = %q, %v", buf, err)
	}
	if len(inj.Fired()) != 1 {
		t.Fatalf("fired = %v", inj.Fired())
	}

	ds, _ := NewFaultDialer(StickyFault(OpWrite, 1, nil))
	cs := dialEcho(t, ds, addr)
	defer cs.Close()
	for i := 0; i < 3; i++ {
		if _, err := cs.Write([]byte("x")); !errors.Is(err, ErrInjected) {
			t.Fatalf("sticky write %d err = %v", i, err)
		}
	}
}

func TestAddrFilter(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d, _ := NewFaultDialer(Plan{Faults: []Fault{{Op: OpDial, Addr: "no-such-host", Sticky: true}}})
	c := dialEcho(t, d, addr) // filter does not match: dial succeeds
	c.Close()
}

func TestBlackholeConn(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d, _ := NewFaultDialer(Plan{Faults: []Fault{
		{Op: OpRead, Nth: 1, Blackhole: true},
		{Op: OpWrite, Nth: 1, Blackhole: true},
	}})
	c := dialEcho(t, d, addr)
	defer c.Close()
	// Blackholed write: reports success, nothing arrives.
	if n, err := c.Write([]byte("vanish")); n != 6 || err != nil {
		t.Fatalf("blackholed write = %d, %v", n, err)
	}
	// Blackholed read with a deadline: times out like a real silent peer.
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackholed read err = %v, want timeout", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatalf("blackholed read returned too early")
	}
}

func TestBlackholeDial(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d, _ := NewFaultDialer(Plan{Faults: []Fault{{Op: OpDial, Nth: 1, Blackhole: true}}})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := d.DialContext(ctx, "tcp", addr); err == nil {
		t.Fatal("blackholed dial succeeded")
	}
}

func TestLatencyShaping(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	d, _ := NewFaultDialer(Plan{Faults: []Fault{
		{Op: OpWrite, Nth: 1, LatencyOnly: true, Latency: 30 * time.Millisecond},
	}})
	c := dialEcho(t, d, addr)
	defer c.Close()
	start := time.Now()
	if got := roundTrip(t, c, "slow"); got != "slow" {
		t.Fatalf("echo = %q", got)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("latency fault did not delay the write")
	}
}

func TestProxyRelayAndBlackholeHeal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := roundTripT(t, c, "through"); got != "through" {
		t.Fatalf("proxied echo = %q", got)
	}

	// Partition: bytes written during the blackhole are held, not lost.
	p.Blackhole()
	if _, err := c.Write([]byte("parked")); err != nil {
		t.Fatalf("write into blackhole: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read during blackhole returned data")
	}
	c.SetReadDeadline(time.Time{})

	p.Heal()
	buf := make([]byte, 6)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "parked" {
		t.Fatalf("post-heal read = %q, %v — held bytes lost", buf, err)
	}
}

func TestProxyAsymmetricBlackhole(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTripT(t, c, "warm")

	// Down blackholed: our bytes reach the echo server (Up flows), its
	// replies vanish.
	p.BlackholeDir(Down)
	if _, err := c.Write([]byte("oneway")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("reply crossed a blackholed downlink")
	}
	c.SetReadDeadline(time.Time{})
	p.Heal()
	buf := make([]byte, 6)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "oneway" {
		t.Fatalf("post-heal read = %q, %v", buf, err)
	}
}

func TestProxyDropAfter(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.DropAfter(Up, 2)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTripT(t, c, "one") // chunk 1 forwarded
	c.Write([]byte("two"))  // chunk 2 trips the drop
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived the drop trigger")
	}
}

func TestProxyBlackholedDialUnserviced(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.Blackhole()
	// The TCP connect itself succeeds (local listener) but nothing
	// answers — the dialing side's handshake deadline is the only out.
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("hello?"))
	c.SetReadDeadline(time.Now().Add(80 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("blackholed proxy serviced a new connection")
	}
}

func TestNetPartitionScripting(t *testing.T) {
	addrA, stopA := echoServer(t)
	defer stopA()
	addrB, stopB := echoServer(t)
	defer stopB()

	nw := NewNet()
	defer nw.Close()
	abAddr, err := nw.Connect("a", "b", addrB)
	if err != nil {
		t.Fatal(err)
	}
	baAddr, err := nw.Connect("b", "a", addrA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Connect("a", "b", addrB); err == nil {
		t.Fatal("duplicate Connect accepted")
	}

	ab, err := net.Dial("tcp", abAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ab.Close()
	ba, err := net.Dial("tcp", baAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	roundTripT(t, ab, "a->b")
	roundTripT(t, ba, "b->a")

	// Full partition: both pair links fall silent.
	nw.Partition("a", "b")
	for _, c := range []net.Conn{ab, ba} {
		c.Write([]byte("x"))
		c.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("byte crossed a full partition")
		}
		c.SetReadDeadline(time.Time{})
	}
	nw.Heal("a", "b")
	drainN(t, ab, 1)
	drainN(t, ba, 1)

	// Asymmetric a→b loss: a's requests toward b vanish, but b's own
	// requests toward a (and a's replies to them) still flow.
	nw.PartitionDir("a", "b")
	ab.Write([]byte("lost"))
	ab.SetReadDeadline(time.Now().Add(60 * time.Millisecond))
	if _, err := ab.Read(make([]byte, 1)); err == nil {
		t.Fatal("a->b byte crossed an asymmetric partition")
	}
	ab.SetReadDeadline(time.Time{})
	// Note b→a replies on the reverse relay carry a→b data too (Down on
	// proxy b->a is a-to-b flow), so only the b→a request direction is
	// guaranteed: b's bytes still reach a's echo server and return.
	if nw.Proxy("b", "a").Blackholed(Up) {
		t.Fatal("asymmetric partition silenced the reverse uplink")
	}
	nw.HealAll()
	drainN(t, ab, 4)
	if got := roundTripT(t, ba, "alive"); got != "alive" {
		t.Fatalf("reverse path broken after heal: %q", got)
	}
}

// roundTripT is roundTrip with a read deadline so a proxy bug hangs the
// test visibly rather than forever.
func roundTripT(t *testing.T, c net.Conn, msg string) string {
	t.Helper()
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(buf)
}

// drainN reads exactly n held-over bytes after a heal.
func drainN(t *testing.T, c net.Conn, n int) {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	if _, err := io.ReadFull(c, make([]byte, n)); err != nil {
		t.Fatalf("drain %d: %v", n, err)
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Op: OpRead, Nth: 3, Sticky: true, Addr: "7077", Latency: time.Millisecond}
	s := f.String()
	for _, want := range []string{"read#3", "sticky", "addr~7077"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
