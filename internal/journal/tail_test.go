package journal_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/meta"
)

// collectTail drains a tailer until it reports a caught-up watermark,
// returning the records delivered before it.
func collectTail(t *testing.T, tl *journal.Tailer) ([]meta.Record, int64) {
	t.Helper()
	var recs []meta.Record
	stop := make(chan struct{})
	timer := time.AfterFunc(10*time.Second, func() { close(stop) })
	defer timer.Stop()
	for {
		ev, err := tl.Next(stop)
		if err != nil {
			t.Fatalf("tail: %v (after %d records)", err, len(recs))
		}
		switch ev.Kind {
		case journal.FollowRecord:
			recs = append(recs, ev.Rec)
		case journal.FollowSnapshot:
			t.Fatalf("unexpected snapshot bootstrap at lsn %d", ev.SnapLSN)
		case journal.FollowMark:
			return recs, ev.Watermark
		}
	}
}

// TestTailerStreamsCommittedRecords: a tail from zero delivers exactly
// the committed records in contiguous LSN order, keeps delivering as the
// writer commits more, and never delivers anything still sitting in the
// writer's uncommitted buffer.
func TestTailerStreamsCommittedRecords(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 5; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("blk%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	tl := w.NewTailer(0)
	defer tl.Close()
	recs, wm := collectTail(t, tl)
	if len(recs) != 5 || wm != 5 {
		t.Fatalf("got %d records, watermark %d, want 5 and 5", len(recs), wm)
	}
	for i, r := range recs {
		if r.LSN != int64(i+1) {
			t.Fatalf("record %d has lsn %d, want %d", i, r.LSN, i+1)
		}
		if r.Op != meta.OpOID {
			t.Fatalf("record %d op %q, want %q", i, r.Op, meta.OpOID)
		}
	}

	// Mutations that are buffered but not committed must stay invisible.
	if err := db.SetProp(meta.Key{Block: "blk0", View: "HDL_model", Version: 1}, "state", "good"); err != nil {
		t.Fatal(err)
	}
	got := make(chan journal.FollowEvent, 1)
	stop := make(chan struct{})
	go func() {
		ev, err := tl.Next(stop)
		if err == nil {
			got <- ev
		}
	}()
	select {
	case ev := <-got:
		t.Fatalf("tailer delivered uncommitted data: %+v", ev)
	case <-time.After(100 * time.Millisecond):
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-got:
		if ev.Kind != journal.FollowRecord || ev.Rec.LSN != 6 || ev.Rec.Op != meta.OpUpdate {
			t.Fatalf("after commit, got %+v, want the lsn-6 update record", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tailer never woke up after the commit")
	}
	close(stop)
}

// TestTailerCrossesSegmentRotation: tiny segments force rotations; the
// tail must follow the record stream across segment boundaries without a
// gap.
func TestTailerCrossesSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SegmentBytes: 256, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const n = 60
	for i := 0; i < n; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("b%02d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	tl := w.NewTailer(0)
	defer tl.Close()
	recs, _ := collectTail(t, tl)
	if len(recs) != n {
		t.Fatalf("got %d records across rotations, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.LSN != int64(i+1) {
			t.Fatalf("record %d has lsn %d, want %d", i, r.LSN, i+1)
		}
	}
}

// TestTailerStaleLSNBootstrapsFromSnapshot: when compaction has deleted
// the segments behind a tail position, the tail must hand over the newest
// snapshot (which loads cleanly and reflects exactly its LSN) and resume
// records immediately after it — the stale-follower re-bootstrap path.
func TestTailerStaleLSNBootstrapsFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	w, db, err := journal.Open(dir, journal.Options{SegmentBytes: 256, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	for i := 0; i < 30; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("b%02d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Snapshot(); err != nil { // compacts covered segments away
		t.Fatal(err)
	}
	snapLSN := w.SnapshotLSN()
	if snapLSN != 30 {
		t.Fatalf("snapshot lsn %d, want 30", snapLSN)
	}
	for i := 30; i < 35; i++ {
		if _, err := db.NewVersion(fmt.Sprintf("b%02d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	tl := w.NewTailer(1) // position 1 predates every retained segment
	defer tl.Close()
	stop := make(chan struct{})
	defer close(stop)
	ev, err := tl.Next(stop)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != journal.FollowSnapshot || ev.SnapLSN != snapLSN {
		t.Fatalf("first event %+v, want a snapshot bootstrap at lsn %d", ev, snapLSN)
	}
	restored, err := meta.Load(bytes.NewReader(ev.Snapshot))
	if err != nil {
		t.Fatalf("bootstrap document does not load: %v", err)
	}
	if got := restored.Stats().OIDs; got != 30 {
		t.Fatalf("bootstrap document has %d oids, want 30", got)
	}
	recs, wm := collectTail(t, tl)
	if len(recs) != 5 || wm != 35 {
		t.Fatalf("got %d post-snapshot records, watermark %d, want 5 and 35", len(recs), wm)
	}
	if recs[0].LSN != snapLSN+1 {
		t.Fatalf("records resume at lsn %d, want %d", recs[0].LSN, snapLSN+1)
	}
}

// TestFollowerLogResumeAndDuplicates: the follower-side journal preserves
// primary LSNs across Abort (crash) restarts, skips duplicate records,
// and refuses gaps.
func TestFollowerLogResumeAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	w, _, err := journal.OpenFollower(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(lsn int64, block string) meta.Record {
		return meta.Record{LSN: lsn, Seq: lsn, Op: meta.OpOID,
			Args: []string{block + ",HDL_model,1", fmt.Sprint(lsn)}}
	}
	for i := 1; i <= 3; i++ {
		if err := w.ApplyAppend(rec(int64(i), fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// A duplicate is skipped silently (reconnect overlap)...
	if err := w.ApplyAppend(rec(2, "a2")); err != nil {
		t.Fatalf("duplicate record should be skipped, got %v", err)
	}
	if w.LastLSN() != 3 {
		t.Fatalf("lastLSN %d after duplicate, want 3", w.LastLSN())
	}
	// ...a gap is terminal.
	if err := w.ApplyAppend(rec(5, "a5")); err == nil {
		t.Fatal("gap record (lsn 5 after 3) must be refused")
	}

	// Crash: the buffer beyond the last commit is lost, the persisted
	// position survives, and a reopened follower resumes exactly there.
	if err := w.ApplyAppend(rec(4, "a4")); err != nil {
		t.Fatal(err)
	}
	w.Abort() // record 4 was never committed

	w2, db2, err := journal.OpenFollower(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.LastLSN() != 3 {
		t.Fatalf("reopened follower at lsn %d, want 3 (uncommitted tail lost)", w2.LastLSN())
	}
	if got := db2.Stats().OIDs; got != 3 {
		t.Fatalf("reopened follower has %d oids, want 3", got)
	}
	// Re-fetching the lost record resumes without duplicate application.
	if err := w2.ApplyAppend(rec(4, "a4")); err != nil {
		t.Fatal(err)
	}
	if w2.LastLSN() != 4 || db2.Stats().OIDs != 4 {
		t.Fatalf("resume: lsn %d oids %d, want 4 and 4", w2.LastLSN(), db2.Stats().OIDs)
	}
}
