#!/usr/bin/env bash
# benchgate.sh — fail when the PR's smoke benches regress past a limit.
#
# Usage: benchgate.sh BASE.txt PR.txt [LIMIT_PERCENT]
#
# BASE.txt and PR.txt are `go test -bench` outputs (same benches, same
# -count) from the base branch and the PR.  The gate runs benchstat and
# reads the geomean delta of the sec/op table: a positive delta above
# LIMIT_PERCENT (default 15) fails.  Deltas benchstat reports as
# statistically indistinguishable ("~"), improvements, and a missing
# geomean row (too few benches) all pass.
set -euo pipefail

base=${1:?usage: benchgate.sh BASE.txt PR.txt [LIMIT_PERCENT]}
pr=${2:?usage: benchgate.sh BASE.txt PR.txt [LIMIT_PERCENT]}
limit=${3:-15}

if ! command -v benchstat >/dev/null; then
    echo "benchgate: benchstat not found (go install golang.org/x/perf/cmd/benchstat@latest)" >&2
    exit 2
fi

out=$(benchstat "$base" "$pr")
printf '%s\n' "$out"

# The sec/op table comes first; take its geomean row's delta column
# (benchstat prints e.g. "+3.45%", "-1.20%" or "~").
delta=$(printf '%s\n' "$out" | awk '
    /sec\/op/ { intable = 1 }
    intable && $1 == "geomean" {
        for (i = NF; i > 0; i--) if ($i ~ /%$/ || $i == "~") { print $i; exit }
    }')

if [ -z "$delta" ] || [ "$delta" = "~" ]; then
    echo "benchgate: no significant sec/op geomean change"
    exit 0
fi
case $delta in
-*) echo "benchgate: geomean improved ($delta)"; exit 0 ;;
esac

value=${delta#+}
value=${value%\%}
if awk -v v="$value" -v l="$limit" 'BEGIN { exit !(v > l) }'; then
    echo "benchgate: FAIL — sec/op geomean regressed $delta (limit ${limit}%)" >&2
    exit 1
fi
echo "benchgate: geomean regression $delta within the ${limit}% limit"
