package meta

import (
	"fmt"
	"sort"
	"strconv"
)

// Change capture and replay.  Every committed mutation of the meta-database
// can be described by a Record — a small, order-sensitive description of
// what changed, with absolute values (never increments), so that replaying
// a record stream against a consistent base state reconstructs the exact
// database.  The append-only journal (internal/journal) persists these
// records; ApplyRecord is the replay side.
//
// # Emission ordering
//
// A database with a Recorder attached (SetRecorder) emits each record
// while still holding the locks that serialize the mutation it describes.
// Two mutations of the same object are therefore journaled in the order
// they were applied, and a mutation that observes another (a link creation
// that found its endpoint OID) is journaled after the record it depends
// on.  Mutations of unrelated objects may interleave in any order in the
// journal — they commute under replay.
//
// The Recorder is called with the emitting shard/stripe/control locks
// held: implementations must not call back into the DB and should only
// buffer (the journal writer appends to an in-memory buffer and performs
// file I/O later, at an explicit commit point).

// Record ops.  The argument layout of each op is documented on
// ApplyRecord, which is the authoritative decoder.
const (
	OpOID        = "oid"        // insert an OID with explicit seq
	OpUpdate     = "update"     // set/delete properties of an OID
	OpLink       = "link"       // insert a link with explicit id and seq
	OpDelLink    = "dellink"    // delete a link
	OpRetarget   = "retarget"   // move one link endpoint
	OpLinkUpdate = "linkupdate" // set/delete annotation properties of a link
	OpPropagates = "propagates" // replace a link's PROPAGATE set
	OpPrune      = "prune"      // prune old versions of a chain
	OpConfig     = "config"     // install a configuration snapshot
	OpDelConfig  = "delconfig"  // delete a configuration
	OpWorkspace  = "workspace"  // register a workspace
	OpBind       = "bind"       // bind an OID path inside a workspace
	OpEvent      = "event"      // audit: a design event entered the engine
	OpTerm       = "term"       // election-term bump: a follower was promoted to primary
)

// Record is one replayable mutation (or, for OpEvent, one audit entry).
// Args carry the op-specific fields as strings in wire-friendly form; keys
// use the block,view,version syntax of ParseKey.
type Record struct {
	// LSN is the journal sequence number, assigned by the log appender at
	// emission time; zero until then.  Recovery uses it to decide which
	// records a snapshot already covers.
	LSN int64

	// Seq is the database logical clock observed at emission.  Replay
	// raises the clock to at least this value, so a recovered database
	// never re-issues logical timestamps that existed before the crash.
	Seq int64

	Op   string
	Args []string
}

// Recorder receives one Record per committed mutation and returns the
// log sequence number it assigned — the journal writer's LSN, which the
// MVCC layer uses as the mutation's version stamp.  See the package
// comment on emission ordering and the locking constraints.
type Recorder interface {
	Record(Record) int64
}

// SetRecorder attaches (or, with nil, detaches) the mutation recorder.
// It must be called before the database is shared between goroutines —
// typically right after NewDB or after recovery replay, before serving.
func (db *DB) SetRecorder(r Recorder) { db.rec = r }

// propArgs encodes a property diff as the argument tail shared by OpUpdate
// and OpLinkUpdate: the set count, then name/value pairs, then deleted
// names.  Pairs and deletions are sorted by name so identical diffs encode
// identically regardless of map iteration order.  The result is allocated
// at exact capacity — this sits on the journaled delivery hot path.
func propArgs(prefix []string, sets map[string]string, dels []string) []string {
	names := make([]string, 0, len(sets))
	for n := range sets {
		names = append(names, n)
	}
	sort.Strings(names)
	sort.Strings(dels)
	args := make([]string, 0, len(prefix)+1+2*len(names)+len(dels))
	args = append(args, prefix...)
	args = append(args, strconv.Itoa(len(names)))
	for _, n := range names {
		args = append(args, n, sets[n])
	}
	return append(args, dels...)
}

// parsePropArgs decodes the tail produced by propArgs.
func parsePropArgs(args []string) (sets [][2]string, dels []string, err error) {
	if len(args) == 0 {
		return nil, nil, fmt.Errorf("missing set count")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 || len(args) < 1+2*n {
		return nil, nil, fmt.Errorf("bad set count %q", args[0])
	}
	args = args[1:]
	for i := 0; i < n; i++ {
		sets = append(sets, [2]string{args[2*i], args[2*i+1]})
	}
	return sets, args[2*n:], nil
}

// linkArgs encodes a complete link object: id, class, endpoints, template,
// seq, the PROPAGATE set (count-prefixed) and the annotation properties as
// name/value pairs.
func linkArgs(l *Link) []string {
	evs := l.PropagateList()
	args := make([]string, 0, 7+len(evs)+2*len(l.Props))
	args = append(args,
		strconv.FormatInt(int64(l.ID), 10),
		l.Class.String(),
		l.From.String(),
		l.To.String(),
		l.Template,
		strconv.FormatInt(l.Seq, 10),
		strconv.Itoa(len(evs)))
	args = append(args, evs...)
	names := make([]string, 0, len(l.Props))
	for n := range l.Props {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		args = append(args, n, l.Props[n])
	}
	return args
}

// parseLinkArgs decodes the layout produced by linkArgs.
func parseLinkArgs(args []string) (*Link, error) {
	if len(args) < 7 {
		return nil, fmt.Errorf("link record wants at least 7 args, got %d", len(args))
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("link id %q: %v", args[0], err)
	}
	class, err := ParseLinkClass(args[1])
	if err != nil {
		return nil, err
	}
	from, err := ParseKey(args[2])
	if err != nil {
		return nil, fmt.Errorf("from: %w", err)
	}
	to, err := ParseKey(args[3])
	if err != nil {
		return nil, fmt.Errorf("to: %w", err)
	}
	seq, err := strconv.ParseInt(args[5], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("link seq %q: %v", args[5], err)
	}
	np, err := strconv.Atoi(args[6])
	if err != nil || np < 0 || len(args) < 7+np {
		return nil, fmt.Errorf("bad propagate count %q", args[6])
	}
	rest := args[7:]
	l := &Link{
		ID:         LinkID(id),
		Class:      class,
		From:       from,
		To:         to,
		Template:   args[4],
		Seq:        seq,
		Props:      make(map[string]string),
		Propagates: make(map[string]bool, np),
	}
	for _, e := range rest[:np] {
		l.Propagates[e] = true
	}
	rest = rest[np:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd property tail on link %d", id)
	}
	for i := 0; i < len(rest); i += 2 {
		l.Props[rest[i]] = rest[i+1]
	}
	return l, nil
}

// seqFloor raises the logical clock to at least s.
func (db *DB) seqFloor(s int64) {
	for {
		cur := db.seq.Load()
		if s <= cur || db.seq.CompareAndSwap(cur, s) {
			return
		}
	}
}

// nextLinkFloor raises the link-ID counter to at least s.
func (db *DB) nextLinkFloor(s int64) {
	for {
		cur := db.nextLink.Load()
		if s <= cur || db.nextLink.CompareAndSwap(cur, s) {
			return
		}
	}
}

// ApplyRecord replays one captured mutation.  Replay expects the records
// of a journal tail in emission order against the consistent base state
// the matching snapshot restored; a record that contradicts the database
// (an OID that already exists, a link endpoint that does not) is reported
// as an error rather than papered over — journal corruption should fail
// recovery loudly, not produce a silently wrong project.
//
// A database being replayed into normally has no Recorder attached (the
// journal attaches it after recovery); with one attached, applied records
// are re-emitted like any other mutation, which is the desired behavior
// for a follower mirroring a leader's stream.
//
// Calls must be serialized (recovery is single-threaded; a follower's
// ApplyAppend holds its apply mutex): with MVCC enabled, the record's LSN
// is carried to the inner mutation so its versions are stamped with the
// original numbering, through a single replay slot.
func (db *DB) ApplyRecord(r Record) error {
	if r.LSN > 0 && db.mvcc.on.Load() {
		db.replayAt.Store(r.LSN)
		db.replaySeq.Store(r.Seq)
		defer func() {
			db.replayAt.Store(0)
			db.replaySeq.Store(0)
		}()
	}
	return db.applyRecord(r)
}

func (db *DB) applyRecord(r Record) error {
	fail := func(err error) error {
		return fmt.Errorf("meta: apply %s record (lsn %d): %w", r.Op, r.LSN, err)
	}
	switch r.Op {
	case OpOID:
		// Args: key, seq.
		if len(r.Args) != 2 {
			return fail(fmt.Errorf("want 2 args, got %d", len(r.Args)))
		}
		k, err := ParseKey(r.Args[0])
		if err != nil {
			return fail(err)
		}
		seq, err := strconv.ParseInt(r.Args[1], 10, 64)
		if err != nil {
			return fail(err)
		}
		if err := db.insertOIDSeq(k, seq); err != nil {
			return fail(err)
		}

	case OpUpdate:
		// Args: key, then the propArgs tail (set count, name/value pairs,
		// deleted names).
		if len(r.Args) < 1 {
			return fail(fmt.Errorf("missing key"))
		}
		k, err := ParseKey(r.Args[0])
		if err != nil {
			return fail(err)
		}
		sets, dels, err := parsePropArgs(r.Args[1:])
		if err != nil {
			return fail(err)
		}
		err = db.UpdateOID(k, func(o *OID) {
			for _, s := range sets {
				o.Props[s[0]] = s[1]
			}
			for _, n := range dels {
				delete(o.Props, n)
			}
		})
		if err != nil {
			return fail(err)
		}

	case OpLink:
		l, err := parseLinkArgs(r.Args)
		if err != nil {
			return fail(err)
		}
		if err := db.insertLinkObject(l); err != nil {
			return fail(err)
		}

	case OpDelLink:
		id, err := parseLinkID(r.Args)
		if err != nil {
			return fail(err)
		}
		if err := db.DeleteLink(id); err != nil {
			return fail(err)
		}

	case OpRetarget:
		// Args: id, old endpoint, new endpoint.
		if len(r.Args) != 3 {
			return fail(fmt.Errorf("want 3 args, got %d", len(r.Args)))
		}
		id, err := parseLinkID(r.Args[:1])
		if err != nil {
			return fail(err)
		}
		oldEnd, err := ParseKey(r.Args[1])
		if err != nil {
			return fail(err)
		}
		newEnd, err := ParseKey(r.Args[2])
		if err != nil {
			return fail(err)
		}
		if err := db.RetargetLink(id, oldEnd, newEnd); err != nil {
			return fail(err)
		}

	case OpLinkUpdate:
		// Args: id, then the propArgs tail.
		if len(r.Args) < 1 {
			return fail(fmt.Errorf("missing link id"))
		}
		id, err := parseLinkID(r.Args[:1])
		if err != nil {
			return fail(err)
		}
		sets, dels, err := parsePropArgs(r.Args[1:])
		if err != nil {
			return fail(err)
		}
		err = db.replaceLink(id, func(nl *Link) {
			for _, s := range sets {
				nl.Props[s[0]] = s[1]
			}
			for _, n := range dels {
				delete(nl.Props, n)
			}
		}, func(*Link) (string, []string) { return OpLinkUpdate, r.Args })
		if err != nil {
			return fail(err)
		}

	case OpPropagates:
		// Args: id, event names.
		if len(r.Args) < 1 {
			return fail(fmt.Errorf("missing link id"))
		}
		id, err := parseLinkID(r.Args[:1])
		if err != nil {
			return fail(err)
		}
		if err := db.SetLinkPropagates(id, r.Args[1:]); err != nil {
			return fail(err)
		}

	case OpPrune:
		// Args: block, view, keep.
		if len(r.Args) != 3 {
			return fail(fmt.Errorf("want 3 args, got %d", len(r.Args)))
		}
		keep, err := strconv.Atoi(r.Args[2])
		if err != nil {
			return fail(err)
		}
		if _, err := db.PruneVersions(r.Args[0], r.Args[1], keep); err != nil {
			return fail(err)
		}

	case OpConfig:
		// Args: name, seq, oid count, keys, link ids.
		c, err := parseConfigArgs(r.Args)
		if err != nil {
			return fail(err)
		}
		if err := db.installConfig(c); err != nil {
			return fail(err)
		}

	case OpDelConfig:
		if len(r.Args) != 1 {
			return fail(fmt.Errorf("want 1 arg, got %d", len(r.Args)))
		}
		if err := db.DeleteConfiguration(r.Args[0]); err != nil {
			return fail(err)
		}

	case OpWorkspace:
		// Args: name, root.
		if len(r.Args) != 2 {
			return fail(fmt.Errorf("want 2 args, got %d", len(r.Args)))
		}
		if err := db.AddWorkspace(r.Args[0], r.Args[1]); err != nil {
			return fail(err)
		}

	case OpBind:
		// Args: workspace, key, path.
		if len(r.Args) != 3 {
			return fail(fmt.Errorf("want 3 args, got %d", len(r.Args)))
		}
		k, err := ParseKey(r.Args[1])
		if err != nil {
			return fail(err)
		}
		if err := db.BindPath(r.Args[0], k, r.Args[2]); err != nil {
			return fail(err)
		}

	case OpEvent:
		// Audit only: the engine's event stream, not a database mutation.
		// No version is stamped either — a view at an event record's LSN
		// equals the view at the last mutation before it.

	case OpTerm:
		// Args: new term.  Opens a new election term at this record's LSN.
		// The table is LSN-keyed rather than MVCC-versioned: a view filters
		// it by its pinned LSN, so no version stamp is needed.  A bump that
		// does not move the term forward is a record from a forked history
		// — exactly what term fencing exists to catch — and fails loudly.
		if len(r.Args) != 1 {
			return fail(fmt.Errorf("want 1 arg, got %d", len(r.Args)))
		}
		term, err := strconv.ParseInt(r.Args[0], 10, 64)
		if err != nil {
			return fail(err)
		}
		if err := db.applyTermBump(term, r.LSN); err != nil {
			return fail(err)
		}

	default:
		return fail(fmt.Errorf("unknown op"))
	}
	db.seqFloor(r.Seq)
	db.lsnFloor(r.LSN)
	return nil
}

// AppliedLSN returns the journal position of the newest record applied via
// ApplyRecord — the follower-side read horizon.  Databases that never
// replayed a record report 0.
func (db *DB) AppliedLSN() int64 { return db.appliedLSN.Load() }

// FloorAppliedLSN raises the applied-LSN marker to at least l.  Recovery
// and snapshot bootstrap use it when a whole document — rather than
// individual records — advances the database to a journal position, so
// AppliedLSN never under-reports the state it describes.
func (db *DB) FloorAppliedLSN(l int64) { db.lsnFloor(l) }

// lsnFloor raises the applied-LSN marker to at least l.
func (db *DB) lsnFloor(l int64) {
	for {
		cur := db.appliedLSN.Load()
		if l <= cur || db.appliedLSN.CompareAndSwap(cur, l) {
			return
		}
	}
}

func parseLinkID(args []string) (LinkID, error) {
	if len(args) < 1 {
		return 0, fmt.Errorf("missing link id")
	}
	id, err := strconv.ParseInt(args[0], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("link id %q: %v", args[0], err)
	}
	return LinkID(id), nil
}

// configArgs encodes a configuration: name, seq, OID count, keys, link ids.
func configArgs(c *Configuration) []string {
	args := make([]string, 0, 3+len(c.OIDs)+len(c.Links))
	args = append(args, c.Name, strconv.FormatInt(c.Seq, 10), strconv.Itoa(len(c.OIDs)))
	for _, k := range c.OIDs {
		args = append(args, k.String())
	}
	for _, id := range c.Links {
		args = append(args, strconv.FormatInt(int64(id), 10))
	}
	return args
}

func parseConfigArgs(args []string) (*Configuration, error) {
	if len(args) < 3 {
		return nil, fmt.Errorf("config record wants at least 3 args, got %d", len(args))
	}
	seq, err := strconv.ParseInt(args[1], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("config seq %q: %v", args[1], err)
	}
	n, err := strconv.Atoi(args[2])
	if err != nil || n < 0 || len(args) < 3+n {
		return nil, fmt.Errorf("bad oid count %q", args[2])
	}
	c := &Configuration{Name: args[0], Seq: seq}
	rest := args[3:]
	for _, ks := range rest[:n] {
		k, err := ParseKey(ks)
		if err != nil {
			return nil, err
		}
		c.OIDs = append(c.OIDs, k)
	}
	for _, ids := range rest[n:] {
		id, err := strconv.ParseInt(ids, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("config link id %q: %v", ids, err)
		}
		c.Links = append(c.Links, LinkID(id))
	}
	return c, nil
}

// insertOIDSeq inserts an OID with an explicit logical timestamp — the
// replay form of InsertOID, which must not advance the clock.
func (db *DB) insertOIDSeq(k Key, seq int64) error {
	if err := k.Validate(); err != nil {
		return err
	}
	sh := db.shardOf(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.oids[k]; ok {
		return fmt.Errorf("oid %v: %w", k, ErrExists)
	}
	bv := k.BV()
	chain := sh.chains[bv]
	if len(chain) > 0 && k.Version <= chain[len(chain)-1] {
		return fmt.Errorf("oid %v: chain is already at version %d: %w",
			k, chain[len(chain)-1], ErrBadVersion)
	}
	o := &OID{Key: k, Props: make(map[string]string), Seq: seq}
	sh.oids[k] = o
	sh.chains[bv] = append(chain, k.Version)
	tok := db.beginMut(OpOID, 0, func() []string {
		return []string{k.String(), strconv.FormatInt(seq, 10)}
	})
	if tok.on {
		db.histOIDPush(sh, k, tok.s, o, false)
		db.histChainPush(sh, bv, tok.s)
	}
	db.endMut(tok)
	return nil
}

// insertLinkObject installs a fully described link — the replay form of
// AddLink, which must keep the recorded id and seq instead of allocating.
func (db *DB) insertLinkObject(l *Link) error {
	if err := l.validate(); err != nil {
		return err
	}
	sf, st := db.lockPair(l.From, l.To)
	defer unlockPair(sf, st)
	if _, ok := sf.oids[l.From]; !ok {
		return fmt.Errorf("link from %v: %w", l.From, ErrNotFound)
	}
	if _, ok := st.oids[l.To]; !ok {
		return fmt.Errorf("link to %v: %w", l.To, ErrNotFound)
	}
	stripe := db.stripeOf(l.ID)
	stripe.mu.Lock()
	if _, ok := stripe.links[l.ID]; ok {
		stripe.mu.Unlock()
		return fmt.Errorf("link %d: %w", l.ID, ErrExists)
	}
	if len(l.Propagates) > 0 {
		db.unionBlocks(l.From.Block, l.To.Block)
	}
	stripe.links[l.ID] = l
	stripe.mu.Unlock()
	sf.outLinks[l.From] = append(sf.outLinks[l.From], linkRef{id: l.ID, l: l})
	st.inLinks[l.To] = append(st.inLinks[l.To], linkRef{id: l.ID, l: l})
	db.nextLinkFloor(int64(l.ID))
	tok := db.beginMut(OpLink, int64(l.ID), func() []string { return linkArgs(l) })
	if tok.on {
		stripe.mu.Lock()
		db.histLinkPushLocked(l.ID, tok.s, l)
		stripe.mu.Unlock()
		db.histAdjPush(sf, l.From, tok.s, true)
		db.histAdjPush(st, l.To, tok.s, false)
	}
	db.endMut(tok)
	return nil
}

// installConfig installs a configuration under its recorded name and seq —
// the replay form of the Snapshot* constructors.
func (db *DB) installConfig(c *Configuration) error {
	if err := ValidateName(c.Name); err != nil {
		return fmt.Errorf("configuration: %w", err)
	}
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.configs[c.Name]; ok {
		return fmt.Errorf("configuration %q: %w", c.Name, ErrExists)
	}
	db.configs[c.Name] = c
	tok := db.beginMut(OpConfig, 0, func() []string { return configArgs(c) })
	if tok.on {
		db.histConfigPushLocked(c.Name, tok.s, c)
	}
	db.endMut(tok)
	return nil
}
