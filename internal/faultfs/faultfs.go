// Package faultfs is the filesystem seam the persistence layer does its
// I/O through — and the deterministic fault-injection harness behind the
// durability test suite.
//
// Production code takes an FS (defaulting to OS, a thin passthrough to the
// os package) and performs every open, write, sync, rename, remove and
// directory read through it.  Tests wrap the same code over an Injector
// carrying a Plan: "fail the 3rd fsync, once", "ENOSPC once 64 KiB have
// been written", "every rename takes 5ms".  Because the plan keys on
// deterministic per-operation counters — not wall-clock time or
// goroutine scheduling — a failing case replays exactly, and a sweep can
// enumerate every I/O site a workload touches (CountRun, then one run per
// (op, n) pair) without guessing.
package faultfs

import (
	"io"
	"os"
)

// Op classifies a filesystem operation for counting and fault matching.
type Op uint8

const (
	OpOpen     Op = iota // OpenFile, Open, CreateTemp
	OpRead               // File.Read and whole-file ReadFile
	OpWrite              // File.Write
	OpSync               // File.Sync
	OpClose              // File.Close
	OpSeek               // File.Seek
	OpRename             // Rename
	OpRemove             // Remove
	OpTruncate           // Truncate (by path or handle)
	OpReadDir            // ReadDir
	OpStat               // File.Stat
	OpMkdir              // MkdirAll
	opCount              // sentinel: number of ops
)

// Ops lists every operation kind, in a stable order — the sweep's axis.
var Ops = []Op{OpOpen, OpRead, OpWrite, OpSync, OpClose, OpSeek, OpRename, OpRemove, OpTruncate, OpReadDir, OpStat, OpMkdir}

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpSeek:
		return "seek"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpReadDir:
		return "readdir"
	case OpStat:
		return "stat"
	case OpMkdir:
		return "mkdir"
	}
	return "op?"
}

// File is the handle surface the persistence layer needs: the subset of
// *os.File it actually calls.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Stat() (os.FileInfo, error)
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem surface: every durability-relevant path operation
// the journal, snapshot and follower code performs.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the production filesystem: a direct passthrough to the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error) { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
