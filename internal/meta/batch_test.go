package meta

import (
	"errors"
	"reflect"
	"testing"
)

func TestWithOIDAndUpdateOID(t *testing.T) {
	db := NewDB()
	k, err := db.NewVersion("cpu", "netlist")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetProp(k, "a", "1"); err != nil {
		t.Fatal(err)
	}

	// WithOID exposes the live properties under the read lock.
	var seen map[string]string
	if err := db.WithOID(k, func(o *OID) {
		seen = map[string]string{}
		for n, v := range o.Props {
			seen[n] = v
		}
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seen, map[string]string{"a": "1"}) {
		t.Fatalf("WithOID saw %v", seen)
	}

	// UpdateOID batches a read-modify-write; later reads observe it.
	if err := db.UpdateOID(k, func(o *OID) {
		if o.Props["a"] != "1" {
			t.Errorf("UpdateOID read a=%q", o.Props["a"])
		}
		o.Props["a"] = "2"
		o.Props["b"] = "3"
	}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.GetProp(k, "a"); v != "2" {
		t.Errorf("a = %q after UpdateOID", v)
	}
	if v, _, _ := db.GetProp(k, "b"); v != "3" {
		t.Errorf("b = %q after UpdateOID", v)
	}

	missing := Key{Block: "nope", View: "v", Version: 1}
	if err := db.WithOID(missing, func(*OID) {}); !errors.Is(err, ErrNotFound) {
		t.Errorf("WithOID missing: %v", err)
	}
	if err := db.UpdateOID(missing, func(*OID) {}); !errors.Is(err, ErrNotFound) {
		t.Errorf("UpdateOID missing: %v", err)
	}
}

func TestEachLatestOID(t *testing.T) {
	db := NewDB()
	for _, bv := range []struct {
		block    string
		versions int
	}{{"alu", 3}, {"cpu", 1}, {"reg", 2}} {
		for i := 0; i < bv.versions; i++ {
			if _, err := db.NewVersion(bv.block, "netlist"); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := map[Key]bool{}
	db.EachLatestOID(func(o *OID) bool {
		got[o.Key] = true
		return true
	})
	want := map[Key]bool{
		{Block: "alu", View: "netlist", Version: 3}: true,
		{Block: "cpu", View: "netlist", Version: 1}: true,
		{Block: "reg", View: "netlist", Version: 2}: true,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("EachLatestOID = %v, want %v", got, want)
	}

	// Must agree with the cloning form.
	latest := db.LatestOIDs()
	if len(latest) != len(want) {
		t.Fatalf("LatestOIDs returned %d", len(latest))
	}
	for _, o := range latest {
		if !want[o.Key] {
			t.Errorf("LatestOIDs unexpected %v", o.Key)
		}
	}

	// Early stop.
	n := 0
	db.EachLatestOID(func(*OID) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}
