package repro

// Soak test: a long random design-team workload over TCP with periodic
// state queries, snapshots and a final persistence round trip — the
// whole system under sustained realistic load.  Skipped with -short.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/flow"
	"repro/internal/server"
	"repro/internal/state"
)

func TestSoakWorkloadWithServer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	sess, _, err := flow.NewEDTCSession(20240612)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sess.Eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const rounds = 10
	for round := 0; round < rounds; round++ {
		st, err := flow.Workload{
			Seed: int64(round), Blocks: 5, Steps: 150, EditDefectRate: 30,
		}.Run(sess)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st.Edits == 0 {
			t.Fatalf("round %d did nothing: %v", round, st)
		}
		// Remote queries stay consistent with in-process state.
		gapRemote, err := c.Gap()
		if err != nil {
			t.Fatalf("round %d gap: %v", round, err)
		}
		gapLocal := state.Gap(sess.Eng.DB(), sess.Eng.Blueprint())
		if len(gapRemote) != len(gapLocal) {
			t.Fatalf("round %d: remote gap %d != local %d", round, len(gapRemote), len(gapLocal))
		}
		// Periodic snapshot.
		if _, err := c.Snapshot(fmt.Sprintf("round%d", round), "*"); err != nil {
			t.Fatalf("round %d snapshot: %v", round, err)
		}
	}

	db := sess.Eng.DB()
	stats := db.Stats()
	if stats.OIDs < 50 {
		t.Errorf("soak produced only %d OIDs", stats.OIDs)
	}
	if stats.Configurations != rounds {
		t.Errorf("configurations = %d", stats.Configurations)
	}
	// No chain ever skips or repeats versions (pruning never ran here).
	for _, bv := range db.BlockViews() {
		vs := db.Versions(bv.Block, bv.View)
		for i, v := range vs {
			if v != i+1 {
				t.Fatalf("chain %v broken: %v", bv, vs)
			}
		}
	}
	// Engine accounting is self-consistent.
	es := sess.Eng.Stats()
	if es.Deliveries < es.Posted {
		t.Errorf("deliveries %d < posted %d", es.Deliveries, es.Posted)
	}
	if es.OIDsCreated != int64(stats.OIDs) {
		t.Errorf("engine created %d, database holds %d", es.OIDsCreated, stats.OIDs)
	}

	// Full persistence round trip of the soaked database.
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats() != stats {
		t.Errorf("reload stats differ: %+v vs %+v", db2.Stats(), stats)
	}
	rep1 := state.Report(db, sess.Eng.Blueprint())
	rep2 := state.Report(db2, sess.Eng.Blueprint())
	if len(rep1) != len(rep2) {
		t.Fatalf("report sizes differ: %d vs %d", len(rep1), len(rep2))
	}
	for i := range rep1 {
		if rep1[i].Key != rep2[i].Key || rep1[i].Ready != rep2[i].Ready {
			t.Errorf("report row %d differs: %+v vs %+v", i, rep1[i], rep2[i])
		}
	}
}
