package journal

// Election-term plumbing: v2 segment headers, the term-bump record a
// promotion writes, recovery of the term from disk, and the follow-fence
// that keeps a deposed primary's divergent tail out of a new lineage.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/meta"
)

func TestSegHeaderRoundTrip(t *testing.T) {
	for _, term := range []int64{1, 2, 7, 1 << 40} {
		hdr := encodeSegHeader(term)
		if len(hdr) != segHeaderLen {
			t.Fatalf("header for term %d is %d bytes, want %d", term, len(hdr), segHeaderLen)
		}
		got, n, err := parseSegHeader(append(hdr, "rest"...))
		if err != nil || got != term || n != segHeaderLen {
			t.Fatalf("parse(encode(%d)) = %d, %d, %v", term, got, n, err)
		}
	}
	// Legacy v1 magic implies the genesis term.
	got, n, err := parseSegHeader([]byte(segMagic + "payload"))
	if err != nil || got != 1 || n != len(segMagic) {
		t.Fatalf("v1 parse = %d, %d, %v, want 1, %d, nil", got, n, err, len(segMagic))
	}
	for _, bad := range []string{"", "DJL", "DJL3 0000000000000001\n", "DJL2 00000000000000zz\n", "DJL2 0000000000000000\n"} {
		if _, _, err := parseSegHeader([]byte(bad)); err == nil {
			t.Fatalf("parseSegHeader(%q) accepted", bad)
		}
	}
}

func TestTornSegHeaderPrefix(t *testing.T) {
	for _, term := range []int64{1, 9} {
		hdr := encodeSegHeader(term)
		for i := 0; i < len(hdr); i++ {
			if !tornSegHeaderPrefix(hdr[:i]) {
				t.Fatalf("prefix %q of a v2 header not classified torn", hdr[:i])
			}
		}
	}
	for i := 0; i < len(segMagic); i++ {
		if !tornSegHeaderPrefix([]byte(segMagic[:i])) {
			t.Fatalf("prefix %q of the v1 magic not classified torn", segMagic[:i])
		}
	}
	for _, bad := range []string{"X", "DJX", "DJL2 xyz", segMagic} {
		// segMagic itself is a COMPLETE v1 header, not a torn prefix.
		if tornSegHeaderPrefix([]byte(bad)) {
			t.Fatalf("%q wrongly classified as a torn header prefix", bad)
		}
	}
}

// TestPromoteBumpsAndRecovers: a follower-mode writer promoted to primary
// writes a term-bump record; reopening the directory recovers the new
// term, fresh segments carry v2 headers stamped with it, and the database
// term table survives snapshot+compaction round-trips.
func TestPromoteBumpsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	w, db, err := OpenFollower(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		r := meta.Record{LSN: int64(i), Seq: int64(i), Op: meta.OpOID,
			Args: []string{fmt.Sprintf("b%d,HDL_model,1", i), fmt.Sprint(i)}}
		if err := w.ApplyAppend(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Term(); got != 1 {
		t.Fatalf("pre-promotion term %d, want 1", got)
	}
	term, lsn, err := w.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if term != 2 || lsn != 6 {
		t.Fatalf("Promote = term %d lsn %d, want 2, 6", term, lsn)
	}
	if got := db.CurrentTerm(); got != 2 {
		t.Fatalf("db term %d after promotion, want 2", got)
	}
	// The writer is a primary now: local records append and the term
	// table knows where the new lineage starts.
	if n := w.Record(meta.Record{Seq: db.Seq(), Op: meta.OpWorkspace, Args: []string{"w1", "/data"}}); n != 7 {
		t.Fatalf("post-promotion record at lsn %d, want 7", n)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if start, ok := db.FirstTermStartAfter(1); !ok || start != 6 {
		t.Fatalf("FirstTermStartAfter(1) = %d, %v, want 6, true", start, ok)
	}
	// Double promotion is a primary-mode error.
	if _, _, err := w.Promote(); err == nil {
		t.Fatal("Promote on a primary-mode writer accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery must seed the term from the records on disk.
	w2, db2, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Term(); got != 2 {
		t.Fatalf("recovered term %d, want 2", got)
	}
	if got := db2.CurrentTerm(); got != 2 {
		t.Fatalf("recovered db term %d, want 2", got)
	}
	// A snapshot + compaction must carry the table: replay then starts
	// from the document, not from the bump record.
	if err := w2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	// Tiny SegmentBytes: the first committed record forces a rotation, so
	// a fresh segment stamped with the recovered term must appear.
	w3, db3, err := Open(dir, Options{Shards: 4, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Abort()
	if got := w3.Term(); got != 2 {
		t.Fatalf("post-compaction recovered term %d, want 2", got)
	}
	if start, ok := db3.FirstTermStartAfter(1); !ok || start != 6 {
		t.Fatalf("post-compaction FirstTermStartAfter(1) = %d, %v, want 6, true", start, ok)
	}
	// New segments after recovery open with a v2 header at the new term.
	w3.Record(meta.Record{Seq: db3.Seq(), Op: meta.OpWorkspace, Args: []string{"w2", "/e"}})
	if err := w3.Commit(); err != nil {
		t.Fatal(err)
	}
	w3.Record(meta.Record{Seq: db3.Seq(), Op: meta.OpWorkspace, Args: []string{"w3", "/f"}})
	if err := w3.Commit(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawV2 := false
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".log") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hdrTerm, _, err := parseSegHeader(data)
		if err != nil {
			t.Fatalf("segment %s: %v", e.Name(), err)
		}
		if hdrTerm == 2 {
			sawV2 = true
		}
	}
	if !sawV2 {
		t.Fatal("no segment carries a term-2 header after recovery at term 2")
	}
}

// TestValidateFollowPosition drives the divergent-tail fence table.
func TestValidateFollowPosition(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenFollower(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	for i := 1; i <= 5; i++ {
		r := meta.Record{LSN: int64(i), Seq: int64(i), Op: meta.OpOID,
			Args: []string{fmt.Sprintf("v%d,HDL_model,1", i), fmt.Sprint(i)}}
		if err := w.ApplyAppend(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Promote(); err != nil { // bump at lsn 6, term 2
		t.Fatal(err)
	}
	w.Record(meta.Record{Seq: w.DB().Seq(), Op: meta.OpWorkspace, Args: []string{"w", "/d"}}) // lsn 7
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		from, fromTerm int64
		wantErr        string // "" means allowed
	}{
		{0, 0, ""},                     // cold, legacy
		{7, 0, ""},                     // at the watermark, legacy
		{8, 0, "ahead of the primary"}, // beyond everything committed
		{3, 1, ""},                     // old-term tail short of the bump: shared history
		{5, 1, ""},                     // last old-term record: the bump at 6 is the boundary
		{6, 1, "divergent tail"},       // old-term history reaching INTO the new lineage
		{7, 1, "divergent tail"},       // further past it
		{7, 2, ""},                     // same term: same lineage by construction
		{6, 2, ""},                     // same term, at the bump
		{3, 3, "deposed"},              // follower from the future: this primary lost an election
	}
	for _, c := range cases {
		err := w.ValidateFollowPosition(c.from, c.fromTerm)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateFollowPosition(%d, %d) = %v, want allowed", c.from, c.fromTerm, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ValidateFollowPosition(%d, %d) = %v, want %q", c.from, c.fromTerm, err, c.wantErr)
		}
	}
}

// TestHeaderTermRegressionRefused: segment headers must be non-decreasing
// along the journal; a regression (shuffled or doctored files) fails
// recovery loudly instead of replaying a franken-history.
func TestHeaderTermRegressionRefused(t *testing.T) {
	dir := t.TempDir()
	w, db, err := OpenFollower(dir, Options{Shards: 4, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		r := meta.Record{LSN: int64(i), Seq: int64(i), Op: meta.OpOID,
			Args: []string{fmt.Sprintf("r%d,HDL_model,1", i), fmt.Sprint(i)}}
		if err := w.ApplyAppend(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := w.Promote(); err != nil {
		t.Fatal(err)
	}
	// Tiny SegmentBytes: every commit rotates, so post-promotion records
	// land in fresh segments headed with term 2.
	w.Record(meta.Record{Seq: db.Seq(), Op: meta.OpWorkspace, Args: []string{"wa", "/a"}})
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	w.Record(meta.Record{Seq: db.Seq(), Op: meta.OpWorkspace, Args: []string{"wb", "/b"}})
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Abort, not Close: Close folds everything into a final snapshot and
	// compacts the very segments this test wants to doctor.
	w.Abort()

	// Sanity: the directory recovers as written.
	if _, _, err := Replay(dir, 4); err != nil {
		t.Fatalf("pristine directory failed replay: %v", err)
	}

	// Doctor a later segment's header back to term 1.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			names = append(names, e.Name())
		}
	}
	if len(names) < 2 {
		t.Fatalf("want ≥2 segments, got %v", names)
	}
	last := filepath.Join(dir, names[len(names)-1])
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	hdrTerm, hdrLen, err := parseSegHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if hdrTerm != 2 {
		t.Fatalf("last segment header term %d, want 2", hdrTerm)
	}
	doctored := append(encodeSegHeader(1), data[hdrLen:]...)
	if err := os.WriteFile(last, doctored, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Replay(dir, 4)
	if err == nil || !strings.Contains(err.Error(), "regresses") {
		t.Fatalf("replay of a term-regressing journal = %v, want a header-term regression error", err)
	}
}
