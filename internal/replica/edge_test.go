package replica_test

// Wire-level edge cases of the FOLLOW stream, driven by a fake primary
// that speaks raw bytes: a record torn at the stream boundary (the
// connection dies mid-line) must never be applied — even when the
// truncated prefix parses as a different, VALID record — and the follower
// must reconnect and resume from its persisted position.

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/replica"
	"repro/internal/server"
	"repro/internal/wire"
)

// fakePrimary accepts FOLLOW connections and plays scripted byte streams:
// script[i] is written to the i-th connection verbatim after the OK+
// header, then the connection closes (except the last script, which stays
// open so the follower parks instead of spinning).
type fakePrimary struct {
	t       *testing.T
	ln      net.Listener
	scripts []string
	conns   atomic.Int32
	follows chan string // the FOLLOW request line of each connection
}

func startFakePrimary(t *testing.T, scripts []string) *fakePrimary {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fp := &fakePrimary{t: t, ln: ln, scripts: scripts, follows: make(chan string, 16)}
	go fp.loop()
	t.Cleanup(func() { ln.Close() })
	return fp
}

func (fp *fakePrimary) loop() {
	for {
		conn, err := fp.ln.Accept()
		if err != nil {
			return
		}
		n := int(fp.conns.Add(1)) - 1
		go fp.serve(conn, n)
	}
}

func (fp *fakePrimary) serve(conn net.Conn, n int) {
	r := bufio.NewReader(conn)
	line, err := r.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	fp.follows <- strings.TrimRight(line, "\r\n")
	if n >= len(fp.scripts) {
		// No script left: hold the connection open silently so the
		// follower waits instead of reconnect-spinning.
		return
	}
	if _, err := conn.Write([]byte("OK+ following\n" + fp.scripts[n])); err != nil {
		conn.Close()
		return
	}
	if n < len(fp.scripts)-1 {
		conn.Close() // the tear: mid-line for scripts that end without \n
	}
}

func record(lsn int64, op string, args ...string) meta.Record {
	return meta.Record{LSN: lsn, Seq: lsn, Op: op, Args: args}
}

func frameLine(r meta.Record) string {
	return "|" + wire.EncodeFollowRecord(r.LSN, r.Seq, r.Op, r.Args) + "\n"
}

// TestFollowerIgnoresTornRecordAtStreamBoundary: the third record's line
// is cut off exactly where the truncated prefix still parses as a valid —
// but wrong — record (workspace root "/d" instead of "/data").  The
// follower must discard the fragment, reconnect with FOLLOW 2, and apply
// only the authoritative replay.
func TestFollowerIgnoresTornRecordAtStreamBoundary(t *testing.T) {
	r1 := record(1, meta.OpOID, "cpu,HDL_model,1", "1")
	r2 := record(2, meta.OpOID, "alu,HDL_model,1", "2")
	r3 := record(3, meta.OpWorkspace, "w33", "/data")
	r4 := record(4, meta.OpBind, "w33", "cpu,HDL_model,1", "some/path")

	full3 := frameLine(r3)
	torn3 := strings.TrimSuffix(full3, "ata\n") // "|record 3 3 workspace w33 /d" — no newline
	if !strings.HasSuffix(torn3, "/d") {
		t.Fatalf("tear landed wrong: %q", torn3)
	}

	scripts := []string{
		// Connection 1: two good records, then the torn line, then the
		// transport dies.
		frameLine(r1) + frameLine(r2) + torn3,
		// Connection 2: the resume — must be asked from lsn 2 — replays
		// the real record 3 and continues.  Ends with a watermark and
		// stays open.
		frameLine(r3) + frameLine(r4) + "|watermark 4\n",
	}
	fp := startFakePrimary(t, scripts)

	fol, err := replica.Start(t.TempDir(), fp.ln.Addr().String(), journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Abort()

	want := func(req string) {
		t.Helper()
		select {
		case got := <-fp.follows:
			if got != req {
				t.Fatalf("primary saw %q, want %q", got, req)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %q", req)
		}
	}
	// The follower announces its history's term (genesis 1) with every
	// FOLLOW so the primary can fence divergent tails.
	want("FOLLOW 0 1")
	// The reconnect must resume from the persisted position — record 3
	// (torn) not applied, records 1-2 kept.
	want("FOLLOW 2 1")

	if _, err := fol.WaitApplied(4, 10*time.Second); err != nil {
		t.Fatalf("follower never caught up: %v (terminal: %v)", err, fol.Err())
	}
	ws, err := fol.DB().GetWorkspace("w33")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Root != "/data" {
		t.Fatalf("workspace root %q — the torn record's valid-looking prefix was applied", ws.Root)
	}
	if p, ok := ws.Path(meta.Key{Block: "cpu", View: "HDL_model", Version: 1}); !ok || p != "some/path" {
		t.Fatalf("bind missing after resume: %q %v", p, ok)
	}
	if err := fol.Err(); err != nil {
		t.Fatalf("follower reported terminal error: %v", err)
	}
}

// TestFollowerRejectsGapInStream: a primary that skips an LSN must stop
// the follower terminally — applying around a hole would silently fork
// the replica.
func TestFollowerRejectsGapInStream(t *testing.T) {
	r1 := record(1, meta.OpOID, "cpu,HDL_model,1", "1")
	r3 := record(3, meta.OpOID, "reg,HDL_model,1", "3") // 2 never sent
	fp := startFakePrimary(t, []string{frameLine(r1) + frameLine(r3) + "|watermark 3\n"})

	fol, err := replica.Start(t.TempDir(), fp.ln.Addr().String(), journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Abort()

	deadline := time.Now().Add(10 * time.Second)
	for fol.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("follower never flagged the gap")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(fol.Err().Error(), "gap") {
		t.Fatalf("terminal error %v, want a gap report", fol.Err())
	}
	if got := fol.AppliedLSN(); got != 1 {
		t.Fatalf("applied lsn %d after gap, want 1 (nothing beyond the hole)", got)
	}
}

// TestFollowerAheadOfPrimaryIsTerminal: a follower whose position exceeds
// everything the primary has committed means divergent histories (reset
// primary journal, or the wrong primary entirely); the stream must refuse
// with an in-band error frame and the follower must stop terminally
// instead of waiting to apply the new history's records under old LSNs.
func TestFollowerAheadOfPrimaryIsTerminal(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SnapshotEvery: -1})
	pc := c.dial(c.paddr)
	defer pc.Close()
	if _, err := pc.Create("ONLY", "HDL_model"); err != nil {
		t.Fatal(err)
	}

	// Pre-seed the follower's directory with a journal that is AHEAD of
	// the primary (as if the primary's directory had been wiped).
	folDir := t.TempDir()
	fw, _, err := journal.OpenFollower(folDir, journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if err := fw.ApplyAppend(record(int64(i), meta.OpOID, fmt.Sprintf("old%d,HDL_model,1", i), fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	fol, err := replica.Start(folDir, c.paddr, journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Abort()
	deadline := time.Now().Add(10 * time.Second)
	for fol.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("ahead-of-primary follower never stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(fol.Err().Error(), "ahead of the primary") {
		t.Fatalf("terminal error %v, want the ahead-of-primary report", fol.Err())
	}
	if got := fol.AppliedLSN(); got != 40 {
		t.Fatalf("applied lsn %d changed, want the untouched 40", got)
	}
}

// TestFollowerRefusedByNonPrimary: pointing -follow at a server without a
// replication source is a configuration error; the follower must stop
// terminally rather than reconnect-spin against a permanent refusal.
func TestFollowerRefusedByNonPrimary(t *testing.T) {
	eng, err := engineNoJournal(t)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng) // no WithFollowSource
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fol, err := replica.Start(t.TempDir(), addr, journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Abort()
	deadline := time.Now().Add(10 * time.Second)
	for fol.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("refused follower never stopped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(fol.Err().Error(), "not a replication primary") {
		t.Fatalf("terminal error %v, want the not-a-primary refusal", fol.Err())
	}
}

func engineNoJournal(t *testing.T) (*engine.Engine, error) {
	t.Helper()
	return engine.New(meta.NewDB(), testBlueprint(t))
}

// TestFollowerColdBootstrapOverWire: a cold follower attaching to a
// primary whose history is already compacted receives the snapshot frame
// and converges — the FOLLOW framing of the re-bootstrap path, checked
// against the real server rather than the fake.
func TestFollowerColdBootstrapOverWire(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SegmentBytes: 256, SnapshotEvery: -1})
	pc := c.dial(c.paddr)
	defer pc.Close()
	for i := 0; i < 12; i++ {
		if _, err := pc.Create(fmt.Sprintf("COLD%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.pw.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Only now does the follower first attach: its FOLLOW 0 predates the
	// oldest retained segment, so the stream must open with a snapshot.
	c.startFollower()
	c.assertConverged()
	if got := c.fol.DB().Stats().OIDs; got != 12 {
		t.Fatalf("cold-bootstrapped follower has %d oids, want 12", got)
	}
}
