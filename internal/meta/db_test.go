package meta

import (
	"bytes"
	"errors"
	"testing"
)

func mustNewVersion(t *testing.T, db *DB, block, view string) Key {
	t.Helper()
	k, err := db.NewVersion(block, view)
	if err != nil {
		t.Fatalf("NewVersion(%s,%s): %v", block, view, err)
	}
	return k
}

func TestNewVersionSequence(t *testing.T) {
	db := NewDB()
	for i := 1; i <= 5; i++ {
		k := mustNewVersion(t, db, "cpu", "HDL_model")
		if k.Version != i {
			t.Fatalf("version %d on creation %d", k.Version, i)
		}
	}
	if got := db.Versions("cpu", "HDL_model"); len(got) != 5 {
		t.Fatalf("Versions = %v, want 5 entries", got)
	}
	latest, err := db.Latest("cpu", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != 5 {
		t.Errorf("Latest = %v, want version 5", latest)
	}
}

func TestNewVersionIndependentChains(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "cpu", "HDL_model")
	b := mustNewVersion(t, db, "cpu", "schematic")
	c := mustNewVersion(t, db, "reg", "HDL_model")
	for _, k := range []Key{a, b, c} {
		if k.Version != 1 {
			t.Errorf("first version of %v = %d, want 1", k.BV(), k.Version)
		}
	}
}

func TestNewVersionValidation(t *testing.T) {
	db := NewDB()
	if _, err := db.NewVersion("", "v"); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := db.NewVersion("b", "bad view"); err == nil {
		t.Error("bad view name accepted")
	}
}

func TestLatestMissing(t *testing.T) {
	db := NewDB()
	if _, err := db.Latest("nope", "nv"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Latest on missing chain = %v, want ErrNotFound", err)
	}
}

func TestPredecessor(t *testing.T) {
	db := NewDB()
	v1 := mustNewVersion(t, db, "alu", "GDSII")
	v2 := mustNewVersion(t, db, "alu", "GDSII")
	if _, ok := db.Predecessor(v1); ok {
		t.Error("v1 has a predecessor")
	}
	p, ok := db.Predecessor(v2)
	if !ok || p != v1 {
		t.Errorf("Predecessor(v2) = %v,%v, want %v,true", p, ok, v1)
	}
	if _, ok := db.Predecessor(Key{Block: "alu", View: "GDSII", Version: 99}); ok {
		t.Error("phantom version has a predecessor")
	}
}

func TestProps(t *testing.T) {
	db := NewDB()
	k := mustNewVersion(t, db, "alu", "GDSII")
	if err := db.SetProp(k, "DRC", "ok"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.GetProp(k, "DRC")
	if err != nil || !ok || v != "ok" {
		t.Fatalf("GetProp = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := db.GetProp(k, "missing"); ok {
		t.Error("missing property reported present")
	}
	if err := db.DelProp(k, "DRC"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.GetProp(k, "DRC"); ok {
		t.Error("deleted property still present")
	}
	// Errors on missing OID.
	bad := Key{Block: "x", View: "y", Version: 1}
	if err := db.SetProp(bad, "p", "v"); !errors.Is(err, ErrNotFound) {
		t.Errorf("SetProp on missing OID: %v", err)
	}
	if _, _, err := db.GetProp(bad, "p"); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetProp on missing OID: %v", err)
	}
	if err := db.DelProp(bad, "p"); !errors.Is(err, ErrNotFound) {
		t.Errorf("DelProp on missing OID: %v", err)
	}
	if err := db.SetProp(k, "bad name", "v"); err == nil {
		t.Error("bad property name accepted")
	}
}

func TestGetOIDReturnsCopy(t *testing.T) {
	db := NewDB()
	k := mustNewVersion(t, db, "alu", "GDSII")
	if err := db.SetProp(k, "DRC", "ok"); err != nil {
		t.Fatal(err)
	}
	o, err := db.GetOID(k)
	if err != nil {
		t.Fatal(err)
	}
	o.Props["DRC"] = "tampered"
	v, _, _ := db.GetProp(k, "DRC")
	if v != "ok" {
		t.Error("mutating GetOID result changed database state")
	}
}

func TestAddLinkAndIndexes(t *testing.T) {
	db := NewDB()
	cpu := mustNewVersion(t, db, "cpu", "SCHEMA")
	reg := mustNewVersion(t, db, "reg", "SCHEMA")
	id, err := db.AddLink(UseLink, cpu, reg, "use:SCHEMA", []string{"outofdate"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := db.GetLink(id)
	if err != nil {
		t.Fatal(err)
	}
	if l.From != cpu || l.To != reg || l.Class != UseLink {
		t.Errorf("link = %+v", l)
	}
	if !l.CanPropagate("outofdate") || l.CanPropagate("ckin") {
		t.Error("PROPAGATE set wrong")
	}
	if got := db.LinksFrom(cpu); len(got) != 1 || got[0].ID != id {
		t.Errorf("LinksFrom(cpu) = %v", got)
	}
	if got := db.LinksTo(reg); len(got) != 1 || got[0].ID != id {
		t.Errorf("LinksTo(reg) = %v", got)
	}
	if got := db.LinksOf(cpu); len(got) != 1 {
		t.Errorf("LinksOf(cpu) = %v", got)
	}
}

func TestAddLinkValidation(t *testing.T) {
	db := NewDB()
	cpu := mustNewVersion(t, db, "cpu", "SCHEMA")
	hdl := mustNewVersion(t, db, "cpu", "HDL_model")
	// Use link crossing view types.
	if _, err := db.AddLink(UseLink, hdl, cpu, "", nil, nil); !errors.Is(err, ErrBadLink) {
		t.Errorf("cross-view use link: %v, want ErrBadLink", err)
	}
	// Self link.
	if _, err := db.AddLink(DeriveLink, cpu, cpu, "", nil, nil); !errors.Is(err, ErrBadLink) {
		t.Errorf("self link: %v, want ErrBadLink", err)
	}
	// Missing endpoint.
	ghost := Key{Block: "ghost", View: "SCHEMA", Version: 1}
	if _, err := db.AddLink(UseLink, cpu, ghost, "", nil, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing endpoint: %v, want ErrNotFound", err)
	}
	// Derive link across views is fine.
	if _, err := db.AddLink(DeriveLink, hdl, cpu, "t", nil, map[string]string{PropType: TypeDeriveFrom}); err != nil {
		t.Errorf("derive link: %v", err)
	}
}

func TestDeleteLink(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "a", "netlist")
	b := mustNewVersion(t, db, "b", "netlist")
	id, err := db.AddLink(UseLink, a, b, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteLink(id); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetLink(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetLink after delete: %v", err)
	}
	if got := db.LinksFrom(a); len(got) != 0 {
		t.Errorf("LinksFrom after delete = %v", got)
	}
	if got := db.LinksTo(b); len(got) != 0 {
		t.Errorf("LinksTo after delete = %v", got)
	}
	if err := db.DeleteLink(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestRetargetLink(t *testing.T) {
	// Figure 3: link NetList.8 -> GDSII.5 shifts to NetList.8 -> GDSII.6.
	db := NewDB()
	nl := mustNewVersion(t, db, "alu", "NetList")
	for i := 0; i < 7; i++ {
		mustNewVersion(t, db, "alu", "NetList")
	}
	nl8, _ := db.Latest("alu", "NetList")
	if nl8.Version != 8 {
		t.Fatalf("setup: %v", nl8)
	}
	_ = nl
	var g5 Key
	for i := 0; i < 5; i++ {
		g5 = mustNewVersion(t, db, "alu", "GDSII")
	}
	id, err := db.AddLink(DeriveLink, nl8, g5, "tmpl", []string{"OutOfDate"}, map[string]string{PropType: TypeDeriveFrom})
	if err != nil {
		t.Fatal(err)
	}
	g6 := mustNewVersion(t, db, "alu", "GDSII")
	if err := db.RetargetLink(id, g5, g6); err != nil {
		t.Fatal(err)
	}
	l, _ := db.GetLink(id)
	if l.To != g6 || l.From != nl8 {
		t.Errorf("after retarget: %v -> %v", l.From, l.To)
	}
	if got := db.LinksTo(g5); len(got) != 0 {
		t.Errorf("old version still indexed: %v", got)
	}
	if got := db.LinksTo(g6); len(got) != 1 {
		t.Errorf("new version not indexed: %v", got)
	}
	// Retarget with a non-endpoint.
	if err := db.RetargetLink(id, g5, g6); !errors.Is(err, ErrBadLink) {
		t.Errorf("retarget from non-endpoint: %v", err)
	}
	// Retarget the From side.
	nl9 := mustNewVersion(t, db, "alu", "NetList")
	if err := db.RetargetLink(id, nl8, nl9); err != nil {
		t.Fatal(err)
	}
	l, _ = db.GetLink(id)
	if l.From != nl9 {
		t.Errorf("from not retargeted: %v", l.From)
	}
	if got := db.LinksFrom(nl9); len(got) != 1 {
		t.Errorf("from index: %v", got)
	}
}

func TestRetargetLinkInvariantViolation(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "a", "SCHEMA")
	b := mustNewVersion(t, db, "b", "SCHEMA")
	c := mustNewVersion(t, db, "c", "OTHER")
	id, err := db.AddLink(UseLink, a, b, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Retargeting a use link across view types must fail and leave state
	// unchanged.
	if err := db.RetargetLink(id, b, c); !errors.Is(err, ErrBadLink) {
		t.Fatalf("cross-view retarget: %v", err)
	}
	l, _ := db.GetLink(id)
	if l.To != b {
		t.Errorf("failed retarget mutated link: %v", l.To)
	}
	if got := db.LinksTo(b); len(got) != 1 {
		t.Errorf("index damaged: %v", got)
	}
}

func TestLinkProps(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "a", "v")
	b := mustNewVersion(t, db, "b", "v")
	id, err := db.AddLink(DeriveLink, a, b, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SetLinkProp(id, PropType, TypeEquivalence); err != nil {
		t.Fatal(err)
	}
	if err := db.SetLinkPropagates(id, []string{"lvs", "outofdate"}); err != nil {
		t.Fatal(err)
	}
	l, _ := db.GetLink(id)
	if l.Type() != TypeEquivalence {
		t.Errorf("Type = %q", l.Type())
	}
	if got := l.PropagateList(); len(got) != 2 || got[0] != "lvs" || got[1] != "outofdate" {
		t.Errorf("PropagateList = %v", got)
	}
}

func TestLinkOther(t *testing.T) {
	l := &Link{From: Key{"a", "v", 1}, To: Key{"b", "v", 1}}
	if o, ok := l.Other(l.From); !ok || o != l.To {
		t.Error("Other(From) wrong")
	}
	if o, ok := l.Other(l.To); !ok || o != l.From {
		t.Error("Other(To) wrong")
	}
	if _, ok := l.Other(Key{"c", "v", 1}); ok {
		t.Error("Other(stranger) ok")
	}
}

func TestEachLinkOfStops(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "a", "v")
	for i := 0; i < 4; i++ {
		b := mustNewVersion(t, db, "b", "v")
		if _, err := db.AddLink(DeriveLink, a, b, "", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	db.EachLinkOf(a, func(*Link) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("iteration did not stop: n=%d", n)
	}
}

func TestStats(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "a", "v")
	b := mustNewVersion(t, db, "b", "v")
	if _, err := db.AddLink(UseLink, a, b, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.AddWorkspace("ws", "/tmp/ws"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SnapshotHierarchy("snap", a, nil); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	want := Stats{OIDs: 2, Links: 1, Chains: 2, Configurations: 1, Workspaces: 1}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestInsertOIDChainOrdering(t *testing.T) {
	db := NewDB()
	// Gaps are legal (pruned-history reload)...
	if err := db.InsertOID(Key{Block: "a", View: "v", Version: 2}); err != nil {
		t.Errorf("gap insert: %v", err)
	}
	// ...but going backwards or duplicating is not.
	if err := db.InsertOID(Key{Block: "a", View: "v", Version: 1}); !errors.Is(err, ErrBadVersion) {
		t.Errorf("backward insert: %v", err)
	}
	if err := db.InsertOID(Key{Block: "a", View: "v", Version: 2}); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate insert: %v", err)
	}
	if err := db.InsertOID(Key{Block: "a", View: "v", Version: 5}); err != nil {
		t.Errorf("forward insert: %v", err)
	}
	// NewVersion continues from the highest version.
	k, err := db.NewVersion("a", "v")
	if err != nil {
		t.Fatal(err)
	}
	if k.Version != 6 {
		t.Errorf("NewVersion after gap = %v", k)
	}
}

func TestPruneVersions(t *testing.T) {
	db := NewDB()
	var keys []Key
	for i := 0; i < 6; i++ {
		keys = append(keys, mustNewVersion(t, db, "cpu", "netlist"))
	}
	other := mustNewVersion(t, db, "cpu", "schematic")
	// Links touching an old version and the newest version.
	oldLink, err := db.AddLink(DeriveLink, other, keys[1], "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	newLink, err := db.AddLink(DeriveLink, other, keys[5], "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	removed, err := db.PruneVersions("cpu", "netlist", 2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Errorf("removed = %d", removed)
	}
	if got := db.Versions("cpu", "netlist"); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Errorf("Versions = %v", got)
	}
	for _, k := range keys[:4] {
		if db.HasOID(k) {
			t.Errorf("%v survived prune", k)
		}
	}
	if _, err := db.GetLink(oldLink); !errors.Is(err, ErrNotFound) {
		t.Errorf("link to pruned OID survived: %v", err)
	}
	if _, err := db.GetLink(newLink); err != nil {
		t.Errorf("link to kept OID removed: %v", err)
	}
	if got := db.LinksFrom(other); len(got) != 1 {
		t.Errorf("adjacency index stale: %v", got)
	}
	// Numbering continues after pruning.
	k, err := db.NewVersion("cpu", "netlist")
	if err != nil {
		t.Fatal(err)
	}
	if k.Version != 7 {
		t.Errorf("post-prune version = %v", k)
	}
	// Edge cases.
	if _, err := db.PruneVersions("cpu", "netlist", 0); !errors.Is(err, ErrBadVersion) {
		t.Errorf("keep=0: %v", err)
	}
	if _, err := db.PruneVersions("ghost", "v", 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing chain: %v", err)
	}
	if n, err := db.PruneVersions("cpu", "netlist", 10); err != nil || n != 0 {
		t.Errorf("over-keep prune: %d %v", n, err)
	}
}

func TestPrunedDatabaseSaveLoad(t *testing.T) {
	db := NewDB()
	for i := 0; i < 5; i++ {
		mustNewVersion(t, db, "cpu", "netlist")
	}
	if _, err := db.PruneVersions("cpu", "netlist", 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatalf("pruned database does not reload: %v", err)
	}
	if got := db2.Versions("cpu", "netlist"); len(got) != 2 || got[0] != 4 {
		t.Errorf("reloaded versions = %v", got)
	}
	k, err := db2.NewVersion("cpu", "netlist")
	if err != nil {
		t.Fatal(err)
	}
	if k.Version != 6 {
		t.Errorf("post-reload version = %v", k)
	}
}

func TestEquivalents(t *testing.T) {
	db := NewDB()
	sch := mustNewVersion(t, db, "cpu", "schematic")
	lay := mustNewVersion(t, db, "cpu", "layout")
	vnl := mustNewVersion(t, db, "cpu", "VerilogNetList")
	enl := mustNewVersion(t, db, "cpu", "EdifNetlist")
	hdl := mustNewVersion(t, db, "cpu", "HDL_model")
	eq := map[string]string{PropType: TypeEquivalence}
	if _, err := db.AddLink(DeriveLink, sch, lay, "", nil, eq); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddLink(DeriveLink, vnl, enl, "", nil, eq); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddLink(DeriveLink, enl, sch, "", nil, eq); err != nil {
		t.Fatal(err)
	}
	// A non-equivalence link must not be followed.
	if _, err := db.AddLink(DeriveLink, hdl, sch, "", nil, map[string]string{PropType: TypeDeriveFrom}); err != nil {
		t.Fatal(err)
	}
	got := db.Equivalents(sch)
	if len(got) != 4 {
		t.Fatalf("Equivalents = %v", got)
	}
	for _, k := range got {
		if k == hdl {
			t.Error("derive_from link followed as equivalence")
		}
	}
	// Symmetric: starting anywhere in the plane gives the same set.
	got2 := db.Equivalents(vnl)
	if len(got2) != len(got) {
		t.Errorf("asymmetric equivalence plane: %v vs %v", got, got2)
	}
	if got := db.Equivalents(Key{Block: "ghost", View: "v", Version: 1}); got != nil {
		t.Errorf("Equivalents(ghost) = %v", got)
	}
}

func TestKeysSorted(t *testing.T) {
	db := NewDB()
	mustNewVersion(t, db, "b", "v2")
	mustNewVersion(t, db, "a", "v1")
	mustNewVersion(t, db, "a", "v1")
	keys := db.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keyLess(keys[i], keys[i-1]) {
			t.Errorf("keys out of order: %v", keys)
		}
	}
	bvs := db.BlockViews()
	if len(bvs) != 2 || bvs[0].Block != "a" || bvs[1].Block != "b" {
		t.Errorf("BlockViews = %v", bvs)
	}
}

// TestFailedLinkOpsDoNotMergeComponents: components only ever merge, so a
// rejected AddLink or RetargetLink (missing endpoint) must not coarsen
// the footprint partition the engine's parallel drain scheduler relies on.
func TestFailedLinkOpsDoNotMergeComponents(t *testing.T) {
	db := NewDB()
	a, err := db.NewVersion("blk-a", "v")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.NewVersion("blk-b", "v")
	if err != nil {
		t.Fatal(err)
	}
	ghost := Key{Block: "blk-ghost", View: "v", Version: 1}

	if _, err := db.AddLink(DeriveLink, a, ghost, "", []string{"ev"}, nil); err == nil {
		t.Fatal("link to missing OID accepted")
	}
	if db.SameComponent("blk-a", "blk-ghost") {
		t.Error("failed AddLink merged components")
	}

	id, err := db.AddLink(DeriveLink, a, b, "", []string{"ev"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !db.SameComponent("blk-a", "blk-b") {
		t.Error("successful propagating AddLink did not merge components")
	}
	if err := db.RetargetLink(id, b, ghost); err == nil {
		t.Fatal("retarget to missing OID accepted")
	}
	if db.SameComponent("blk-a", "blk-ghost") {
		t.Error("failed RetargetLink merged components")
	}
}
