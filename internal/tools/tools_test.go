package tools

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/meta"
)

func key(block, view string, v int) meta.Key {
	return meta.Key{Block: block, View: view, Version: v}
}

func TestWriteAndSimulateHDL(t *testing.T) {
	s := NewSuite(1)
	k := key("CPU", "HDL_model", 1)
	a := s.WriteHDL(k, 100, 4)
	if a.Checksum == 0 {
		t.Error("zero checksum")
	}
	res, err := s.SimulateHDL(k)
	if err != nil {
		t.Fatal(err)
	}
	if res != "4 errors" {
		t.Errorf("sim = %q", res)
	}
	// Fixing the defects gives "good".
	s.WriteHDL(key("CPU", "HDL_model", 2), 100, 0)
	res, err = s.SimulateHDL(key("CPU", "HDL_model", 2))
	if err != nil {
		t.Fatal(err)
	}
	if res != "good" {
		t.Errorf("sim = %q", res)
	}
}

func TestDeterminism(t *testing.T) {
	a := NewSuite(7).WriteHDL(key("b", "HDL_model", 1), 50, 0)
	b := NewSuite(7).WriteHDL(key("b", "HDL_model", 1), 50, 0)
	if a.Checksum != b.Checksum {
		t.Error("same seed, different content")
	}
	c := NewSuite(8).WriteHDL(key("b", "HDL_model", 1), 50, 0)
	if a.Checksum == c.Checksum {
		t.Error("different seed, same content")
	}
	d := NewSuite(7).WriteHDL(key("b", "HDL_model", 2), 50, 0)
	if a.Checksum == d.Checksum {
		t.Error("different version, same content")
	}
}

func TestSynthesisChain(t *testing.T) {
	s := NewSuite(42)
	hdl := key("CPU", "HDL_model", 1)
	lib := key("stdlib", "synth_lib", 1)
	sch := key("CPU", "schematic", 1)
	nl := key("CPU", "netlist", 1)
	lay := key("CPU", "layout", 1)

	s.WriteHDL(hdl, 100, 0)
	s.InstallLibrary(lib)
	sa, err := s.Synthesize(hdl, lib, sch)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Gates != 400 || sa.Kind != KindSchematic {
		t.Errorf("schematic = %+v", sa)
	}
	na, err := s.Netlist(sch, nl)
	if err != nil {
		t.Fatal(err)
	}
	if na.Source != sa.Checksum {
		t.Error("netlist lineage broken")
	}
	if res, err := s.SimulateNetlist(nl); err != nil || res != "good" {
		t.Errorf("nl_sim = %q %v", res, err)
	}
	la, err := s.PlaceRoute(nl, lay)
	if err != nil {
		t.Fatal(err)
	}
	if la.Source != na.Checksum {
		t.Error("layout lineage broken")
	}
	// LVS against the right netlist is equivalent.
	if res, err := s.LVS(lay, nl); err != nil || res != "is_equiv" {
		t.Errorf("lvs = %q %v", res, err)
	}
}

func TestLVSDetectsStaleLayout(t *testing.T) {
	s := NewSuite(3)
	hdl := key("CPU", "HDL_model", 1)
	lib := key("l", "synth_lib", 1)
	sch := key("CPU", "schematic", 1)
	nl1 := key("CPU", "netlist", 1)
	nl2 := key("CPU", "netlist", 2)
	lay := key("CPU", "layout", 1)
	s.WriteHDL(hdl, 60, 0)
	s.InstallLibrary(lib)
	if _, err := s.Synthesize(hdl, lib, sch); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Netlist(sch, nl1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlaceRoute(nl1, lay); err != nil {
		t.Fatal(err)
	}
	// The schematic is edited and re-netlisted; the old layout no longer
	// matches.
	if _, err := s.EditSchematic(sch, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Netlist(sch, nl2); err != nil {
		t.Fatal(err)
	}
	res, err := s.LVS(lay, nl2)
	if err != nil {
		t.Fatal(err)
	}
	if res != "not_equiv" {
		t.Errorf("lvs = %q, want not_equiv", res)
	}
}

func TestEditSchematicDefects(t *testing.T) {
	s := NewSuite(5)
	hdl := key("b", "HDL_model", 1)
	lib := key("l", "synth_lib", 1)
	sch := key("b", "schematic", 1)
	s.WriteHDL(hdl, 10, 0)
	s.InstallLibrary(lib)
	if _, err := s.Synthesize(hdl, lib, sch); err != nil {
		t.Fatal(err)
	}
	a, err := s.EditSchematic(sch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Defects != 2 {
		t.Errorf("defects = %d", a.Defects)
	}
	a, err = s.EditSchematic(sch, -5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Defects != 0 {
		t.Errorf("defects clamped = %d", a.Defects)
	}
}

func TestDRCAndFix(t *testing.T) {
	s := NewSuite(11)
	nl := key("big", "netlist", 1)
	// Manufacture a large netlist directly to reach the DRC-defect path.
	s.Store.Put(Artifact{Key: nl, Kind: KindNetlist, Checksum: 12345, Gates: 1000})
	// Find a version whose placement has DRC defects by iterating layouts.
	var lay meta.Key
	var bad bool
	for v := 1; v <= 40; v++ {
		lay = key("big", "layout", v)
		a, err := s.PlaceRoute(nl, lay)
		if err != nil {
			t.Fatal(err)
		}
		if a.Defects > 0 {
			bad = true
			break
		}
		// Perturb the netlist content to vary placement results.
		s.Store.Put(Artifact{Key: nl, Kind: KindNetlist, Checksum: a.Checksum, Gates: 1000})
	}
	if !bad {
		t.Skip("defect path not reached in 40 placements (seed-dependent)")
	}
	if res, _ := s.DRC(lay); res != "bad" {
		t.Errorf("DRC = %q, want bad", res)
	}
	if _, err := s.FixLayout(lay); err != nil {
		t.Fatal(err)
	}
	if res, _ := s.DRC(lay); res != "good" {
		t.Errorf("DRC after fix = %q", res)
	}
}

func TestToolErrors(t *testing.T) {
	s := NewSuite(1)
	missing := key("ghost", "HDL_model", 1)
	if _, err := s.SimulateHDL(missing); err == nil {
		t.Error("missing input accepted")
	}
	var te *ErrTool
	_, err := s.SimulateHDL(missing)
	if !errors.As(err, &te) || te.Tool != "hdl_sim" {
		t.Errorf("error type = %v", err)
	}
	// Wrong kind.
	k := key("b", "HDL_model", 1)
	s.WriteHDL(k, 10, 0)
	if _, err := s.Netlist(k, key("b", "netlist", 1)); err == nil {
		t.Error("netlister accepted HDL input")
	} else if !strings.Contains(err.Error(), "want schematic") {
		t.Errorf("err = %v", err)
	}
}

func TestStoreKeysSorted(t *testing.T) {
	s := NewStore()
	s.Put(Artifact{Key: key("b", "v", 2)})
	s.Put(Artifact{Key: key("a", "v", 1)})
	s.Put(Artifact{Key: key("b", "v", 1)})
	keys := s.Keys()
	if len(keys) != 3 || keys[0].Block != "a" || keys[1].Version != 1 || keys[2].Version != 2 {
		t.Errorf("Keys = %v", keys)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if _, ok := s.Get(key("ghost", "v", 1)); ok {
		t.Error("phantom artifact")
	}
}
