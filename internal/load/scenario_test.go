package load

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestParseScenario(t *testing.T) {
	spec := `{
	  "name": "ci-mix",
	  "seed": 42,
	  "rate": 120,
	  "ramp_to": 240,
	  "duration": "15s",
	  "workers": 6,
	  "mix": {"checkin": 30, "storm": 20, "state": 50},
	  "slo": {"p99_ms": {"state": 250}, "recovery_ms": 8000}
	}`
	s, err := ParseScenario([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration.D != 15*time.Second {
		t.Errorf("duration %v", s.Duration.D)
	}
	if s.RampTo != 240 || s.Workers != 6 || s.Seed != 42 {
		t.Errorf("fields: %+v", s)
	}
	if s.SLO == nil || s.SLO.P99Ms["state"] != 250 || s.SLO.RecoveryMs != 8000 {
		t.Errorf("slo: %+v", s.SLO)
	}
	// Round trip through JSON keeps the human-readable duration form.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"duration":"15s"`) {
		t.Errorf("duration not marshalled as a string: %s", data)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration.D != s.Duration.D || back.Rate != s.Rate {
		t.Errorf("round trip drifted: %+v", back)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"unknown class": `{"name":"x","rate":10,"duration":"1s","mix":{"frobnicate":1}}`,
		"no weights":    `{"name":"x","rate":10,"duration":"1s","mix":{"state":0}}`,
		"zero rate":     `{"name":"x","rate":0,"duration":"1s","mix":{"state":1}}`,
		"bad duration":  `{"name":"x","rate":10,"duration":"soon","mix":{"state":1}}`,
	}
	for label, spec := range cases {
		if _, err := ParseScenario([]byte(spec)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestScenarioDefaults(t *testing.T) {
	s := Scenario{Name: "d", Rate: 500, Duration: Dur{time.Second}, Mix: map[string]int{OpState: 1}}
	d := s.withDefaults()
	if d.Workers != 8 || d.Blocks != 24 || d.Batch != 8 {
		t.Errorf("defaults: %+v", d)
	}
	if d.Backlog != 2000 { // 4 × peak rate
		t.Errorf("backlog %d", d.Backlog)
	}
	low := Scenario{Name: "l", Rate: 10, Duration: Dur{time.Second}, Mix: map[string]int{OpState: 1}}.withDefaults()
	if low.Backlog != 1024 { // floor
		t.Errorf("backlog floor %d", low.Backlog)
	}
}

// TestMixTableDeterminism: the same seed yields the same op sequence —
// runs are reproducible — and the picks respect the declared weights.
func TestMixTableDeterminism(t *testing.T) {
	mix := map[string]int{OpCheckin: 30, OpReport: 10, OpChurn: 60}
	tab := newMixTable(mix)
	seq := func() []string {
		rng := rand.New(rand.NewSource(99))
		out := make([]string, 5000)
		for i := range out {
			out[i] = tab.pick(rng.Intn(tab.total))
		}
		return out
	}
	a, b := seq(), seq()
	counts := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pick %d diverged: %s vs %s", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	for class, w := range mix {
		want := float64(w) / 100 * float64(len(a))
		got := float64(counts[class])
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("%s: %v picks, weight says ~%v", class, got, want)
		}
	}
	if tab.pick(0) != OpCheckin { // sorted classes: checkin, churn, report
		t.Errorf("first pick %q", tab.pick(0))
	}
}

func TestPresets(t *testing.T) {
	for _, name := range []string{"smoke", "mixed", "soak"} {
		s, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.withDefaults().validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("preset %s named %q", name, s.Name)
		}
	}
	if _, err := Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestComputeRecovery(t *testing.T) {
	kill := 5 * time.Second
	wall := 10 * time.Second
	samples := []writeSample{
		{due: time.Second, lat: 2 * time.Millisecond, ok: true},                // pre-kill, ignored
		{due: 4900 * time.Millisecond, lat: 400 * time.Millisecond, ok: false}, // in-flight at kill, fails
		{due: 5100 * time.Millisecond, lat: 900 * time.Millisecond, ok: true},  // slow during outage
		{due: 6500 * time.Millisecond, lat: 3 * time.Millisecond, ok: true},    // recovered
		{due: 9 * time.Second, lat: 2 * time.Millisecond, ok: true},            // still fine
	}
	rec, ok := computeRecovery(samples, kill, wall, 500)
	if !ok {
		t.Fatal("should be recovered")
	}
	// Last violation completes at 5.1s+0.9s = 6.0s → 1000ms after the kill.
	if rec != 1000 {
		t.Errorf("recovery %vms", rec)
	}
	// A violation running into the final second means not recovered.
	tail := append(samples, writeSample{due: 9800 * time.Millisecond, lat: 600 * time.Millisecond, ok: true})
	if _, ok := computeRecovery(tail, kill, wall, 500); ok {
		t.Error("tail violation reported as recovered")
	}
	// No violations at all: zero recovery time.
	if rec, ok := computeRecovery(samples[:1], kill, wall, 500); rec != 0 || !ok {
		t.Errorf("clean run: rec=%v ok=%v", rec, ok)
	}
}
