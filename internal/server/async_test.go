package server

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/wire"
)

func startAsyncServer(t *testing.T) (*Server, string) {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng, WithAsyncDrain())
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

// TestAsyncPostQueuesAndSyncSettles: in async mode POST acknowledges
// immediately; SYNC observes the settled state.
func TestAsyncPostQueuesAndSyncSettles(t *testing.T) {
	s, addr := startAsyncServer(t)
	c := dial(t, addr)
	c.User = "x"
	hdl, err := c.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := c.Create("CPU", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("derive", hdl, sch); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.PostEvent("ckin", "down", hdl); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := c.State(sch)
	if err != nil {
		t.Fatal(err)
	}
	if st.Props["uptodate"] != "false" {
		t.Errorf("after sync, schematic uptodate = %q", st.Props["uptodate"])
	}
	// The engine really is idle.
	if n := s.Engine().QueueLen(); n != 0 {
		t.Errorf("queue length after sync = %d", n)
	}
}

// TestAsyncManyClients hammers the async server from several goroutines
// and checks nothing is lost.
func TestAsyncManyClients(t *testing.T) {
	s, addr := startAsyncServer(t)
	const clients, posts = 6, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			k, err := c.Create(string(rune('a'+i)), "HDL_model")
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < posts; j++ {
				if err := c.PostEvent("hdl_sim", "down", k, "good"); err != nil {
					errs <- err
					return
				}
			}
			if err := c.Sync(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	eng := s.Engine()
	eng.WaitIdle()
	if got := eng.Stats().Posted; got < clients*posts {
		t.Errorf("posted = %d, want >= %d", got, clients*posts)
	}
	for i := 0; i < clients; i++ {
		k, err := eng.DB().Latest(string(rune('a'+i)), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		if v, _, _ := eng.DB().GetProp(k, "sim_result"); v != "good" {
			t.Errorf("%v sim_result = %q", k, v)
		}
	}
}

// TestAsyncPostResponseSaysQueued distinguishes the two server modes at
// the protocol level.
func TestAsyncPostResponseSaysQueued(t *testing.T) {
	s, _ := startAsyncServer(t)
	k, err := s.Engine().CreateOID("CPU", "HDL_model", "x")
	if err != nil {
		t.Fatal(err)
	}
	resp := s.Handle(wire.Request{Verb: wire.VerbPost, User: "x",
		Args: []string{"hdl_sim", "down", k.String(), "good"}})
	if !resp.OK || !strings.HasPrefix(resp.Detail, "queued") {
		t.Errorf("async POST response = %+v", resp)
	}
	s.Engine().WaitIdle()
}
