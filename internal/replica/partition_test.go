package replica_test

// The partition chaos suite: every test here drives the replication
// stack through netfault blackholes — silence, not resets — and asserts
// the liveness contract the half-open link used to break: a blackholed
// follower declares its stream dead within the stall window (while ROLE
// admits the data's age), reconnects resume at the exact LSN, a primary
// isolated from every follower degrades instead of losing acked writes,
// an asymmetric partition is told apart from a dead link, PROMOTE works
// mid-partition, and a deposed primary's divergent tail is fenced at
// the FOLLOW handshake the moment the network heals.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/netfault"
	"repro/internal/replica"
	"repro/internal/server"
)

// fastLink scales the follower's dead-link detector and reconnect
// ladder to test time; upstream pings must tick several times per stall
// window (the tests pair it with a 50ms ping cadence).
func fastLink(stall time.Duration) []replica.Option {
	return []replica.Option{
		replica.WithStallTimeout(stall),
		replica.WithBackoff(10*time.Millisecond, 50*time.Millisecond),
	}
}

// waitStalls blocks until the follower's stall counter reaches want and
// returns how long detection took; the caller asserts the bound.
func waitStalls(t *testing.T, f *replica.Follower, want int64, within time.Duration) time.Duration {
	t.Helper()
	start := time.Now()
	for f.Stats().Stalls < want {
		if time.Since(start) > within {
			t.Fatalf("stall never detected within %v: %+v", within, f.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return time.Since(start)
}

// TestStallDetectorHalfOpenLink is the half-open FOLLOW regression: a
// blackhole silences an idle stream without closing it (TCP keeps the
// connection "established" for minutes), the follower must declare it
// dead within 2x the stall timeout, count the stall, keep serving reads
// while admitting their age, and — after heal — resume at the exact LSN
// with no bootstrap and no record applied twice.
func TestStallDetectorHalfOpenLink(t *testing.T) {
	const stall = 600 * time.Millisecond
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	p.src.SetPing(50 * time.Millisecond)
	pc := dialT(t, p.addr)

	proxy, err := netfault.NewProxy(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	a := startNode(t, t.TempDir(), proxy.Addr(), journal.Options{}, fastLink(stall)...)

	for i := 0; i < 3; i++ {
		if _, err := pc.Create(fmt.Sprintf("PRE%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	lsn := p.quiesce()
	waitApplied(t, a, lsn)

	// Silence, not a close: the kernel on both ends still believes in
	// this connection.  Only the stall detector can tell the truth.
	proxy.Blackhole()
	detect := waitStalls(t, a.fol, 1, 10*time.Second)
	if detect > 2*stall {
		t.Fatalf("half-open link detected after %v, want within 2x stall timeout (%v)", detect, 2*stall)
	}
	if err := a.fol.Err(); err != nil {
		t.Fatalf("a stall must reconnect, not kill the loop: %v", err)
	}

	// The partitioned follower keeps serving, but its reads confess how
	// old they are — locally and through the ROLE verb.
	if d, known := a.fol.Staleness(); !known || d < stall/2 {
		t.Fatalf("staleness = %v (known=%v) after a %v-old blackhole", d, known, detect)
	}
	ri, err := dialT(t, a.addr).Role()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Role != "follower" || !ri.HasStaleness || ri.Staleness <= 0 {
		t.Fatalf("partitioned follower ROLE = %+v, want follower with growing staleness", ri)
	}

	proxy.Heal()
	for i := 0; i < 3; i++ {
		if _, err := pc.Create(fmt.Sprintf("POST%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	lsn2 := p.quiesce()
	waitApplied(t, a, lsn2)
	// Exact-LSN resume: the stall committed the applied tail, so the
	// reconnect re-fetches nothing — every record applied exactly once,
	// and no snapshot re-base was needed.
	st := a.fol.Stats()
	if st.Bootstraps != 0 || st.Records != lsn2 {
		t.Fatalf("resume was not exact: %+v, want 0 bootstraps and exactly %d records", st, lsn2)
	}
	if st.Stalls < 1 {
		t.Fatalf("stall not counted: %+v", st)
	}
	if got := saveBytes(t, a.fol.DB()); !bytes.Equal(saveBytes(t, p.db), got) {
		t.Fatal("follower diverged across the half-open link")
	}
}

// TestIdleStreamPingsKeepFollowerFresh: pings are what make silence
// meaningful.  A completely idle — but healthy — stream must ride
// through many stall windows with zero stalls, zero reconnects, and a
// staleness that keeps snapping back under the ping cadence.
func TestIdleStreamPingsKeepFollowerFresh(t *testing.T) {
	const stall = 400 * time.Millisecond
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	p.src.SetPing(50 * time.Millisecond)
	pc := dialT(t, p.addr)
	a := startNode(t, t.TempDir(), p.addr, journal.Options{}, fastLink(stall)...)

	if _, err := pc.Create("IDLE", "HDL_model"); err != nil {
		t.Fatal(err)
	}
	lsn := p.quiesce()
	waitApplied(t, a, lsn)

	time.Sleep(3 * stall) // three full stall windows of pure idleness
	st := a.fol.Stats()
	if st.Stalls != 0 || st.Connects != 1 {
		t.Fatalf("idle pinged stream churned: %+v, want 0 stalls on the first connection", st)
	}
	if d, known := a.fol.Staleness(); !known || d > stall {
		t.Fatalf("staleness = %v (known=%v) on an idle pinged stream, want fresh under %v", d, known, stall)
	}
	if wm := a.fol.Watermark(); wm != lsn {
		t.Fatalf("ping did not carry the watermark: %d, want %d", wm, lsn)
	}

	// The staleness field is a follower statement: a primary's ROLE
	// never carries it (its data is current by definition).
	if ri, err := pc.Role(); err != nil || ri.HasStaleness {
		t.Fatalf("primary ROLE = %+v (%v), want no staleness field", ri, err)
	}
	fi, err := dialT(t, a.addr).Role()
	if err != nil {
		t.Fatal(err)
	}
	if !fi.HasStaleness || fi.Staleness > stall {
		t.Fatalf("idle follower ROLE = %+v, want staleness under %v", fi, stall)
	}
}

// TestPartitionPrimaryIsolatedFromBothFollowers is the split the
// quorum machinery exists for: the primary alone on its side of the
// partition, both followers on the other.  Acked writes (quorum 1)
// survive everywhere; writes during the partition degrade loudly and
// are the sacrifice; a follower promoted on the majority side takes
// over at the next term; and when the network heals, the deposed
// primary's divergent tail is refused at the FOLLOW handshake — and
// the two survivors are byte-identical.
func TestPartitionPrimaryIsolatedFromBothFollowers(t *testing.T) {
	const stall = 500 * time.Millisecond
	nn := netfault.NewNet()
	defer nn.Close()

	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1},
		server.WithQuorum(1, 400*time.Millisecond))
	p.src.SetPing(50 * time.Millisecond)
	pc := dialT(t, p.addr)

	addrA, err := nn.Connect("a", "p", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	addrB, err := nn.Connect("b", "p", p.addr)
	if err != nil {
		t.Fatal(err)
	}
	a := startNode(t, t.TempDir(), addrA, journal.Options{}, fastLink(stall)...)
	b := startNode(t, t.TempDir(), addrB, journal.Options{}, fastLink(stall)...)

	// The acked epoch: with two live followers, quorum-1 writes are
	// acknowledged cleanly.  These are the writes that must survive.
	var acked []meta.Key
	for i := 0; i < 5; i++ {
		k, err := pc.Create(fmt.Sprintf("ACKED%d", i), "HDL_model")
		if err != nil {
			t.Fatalf("acked write %d failed with live followers: %v", i, err)
		}
		acked = append(acked, k)
	}
	shared := p.quiesce()
	waitApplied(t, a, shared)
	waitApplied(t, b, shared)

	// The split: the primary can reach no follower, and vice versa.
	nn.Partition("a", "p")
	nn.Partition("b", "p")

	// The doomed epoch: every write on the minority side degrades to a
	// quorum-timeout — committed locally, never acknowledged, and
	// therefore fair game for the failover to discard.
	for i := 0; i < 2; i++ {
		_, err := pc.Create(fmt.Sprintf("DOOMED%d", i), "HDL_model")
		if err == nil || !strings.Contains(err.Error(), "quorum-timeout") {
			t.Fatalf("isolated-primary write = %v, want a quorum-timeout degradation", err)
		}
	}
	divergent := p.quiesce()
	if divergent <= shared {
		t.Fatalf("divergent lsn %d did not pass shared %d", divergent, shared)
	}

	// Both followers notice their dead links and stay read-only: one
	// writable node per term, even mid-split.
	waitStalls(t, a.fol, 1, 10*time.Second)
	waitStalls(t, b.fol, 1, 10*time.Second)
	if _, err := dialT(t, a.addr).Create("ROGUE", "HDL_model"); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("partitioned follower accepted a write: %v", err)
	}

	// Failover on the majority side; the old primary dies isolated.
	p.crash()
	ac := dialT(t, a.addr)
	term, bump, err := ac.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if term != 2 || bump != shared+1 {
		t.Fatalf("Promote = term %d bump %d, want term 2 bump %d", term, bump, shared+1)
	}
	if _, err := ac.Create("NEWERA", "HDL_model"); err != nil {
		t.Fatalf("promoted node refused a write: %v", err)
	}
	post := a.quiesce()

	// The survivor re-points at the new primary — through its own
	// faultable link — and still exactly one node per term is writable.
	addrBA, err := nn.Connect("b", "a", a.addr)
	if err != nil {
		t.Fatal(err)
	}
	b.fol.Repoint(addrBA)
	waitApplied(t, b, post)
	if got := b.fol.Term(); got != 2 {
		t.Fatalf("survivor term %d after repoint, want 2", got)
	}
	if _, err := dialT(t, b.addr).Create("ROGUE2", "HDL_model"); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower of the new primary accepted a write: %v", err)
	}
	if ri, err := ac.Role(); err != nil || ri.Role != "primary" || ri.Term != 2 {
		t.Fatalf("new primary ROLE = %+v (%v), want primary at term 2", ri, err)
	}

	// Heal, then revive the deposed primary as a follower of the new
	// one: its term-1 tail past the promotion point must be fenced at
	// the handshake — refused terminally, never silently merged.
	nn.HealAll()
	addrPA, err := nn.Connect("p", "a", a.addr)
	if err != nil {
		t.Fatal(err)
	}
	ghost, err := replica.Start(p.dir, addrPA, journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Abort()
	deadline := time.Now().Add(15 * time.Second)
	for ghost.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("deposed primary was never fenced after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(ghost.Err().Error(), "divergent tail") {
		t.Fatalf("deposed primary stopped with %v, want the divergent-tail fence", ghost.Err())
	}
	if got := ghost.AppliedLSN(); got != divergent {
		t.Fatalf("fenced ghost's position moved to %d, want the untouched %d", got, divergent)
	}

	// Zero acked-write loss, and byte-identical survivors.
	for _, k := range acked {
		if !a.fol.DB().HasOID(k) || !b.fol.DB().HasOID(k) {
			t.Fatalf("acked write %v lost across the failover", k)
		}
	}
	if av, bv := saveBytes(t, a.fol.DB()), saveBytes(t, b.fol.DB()); !bytes.Equal(av, bv) {
		t.Fatal("survivors diverged after heal")
	}
}

// TestAsymmetricPartitionAckLoss: only the follower→primary direction
// is lost (the A→B-only partition).  Records and pings still flow down,
// so the follower stays fresh and never stalls — but the primary's
// quorum acks vanish and its writes degrade.  The two failure modes
// must stay distinguishable: dead link on one side, ack starvation on
// the other.
func TestAsymmetricPartitionAckLoss(t *testing.T) {
	const stall = 500 * time.Millisecond
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1},
		server.WithQuorum(1, 300*time.Millisecond))
	p.src.SetPing(50 * time.Millisecond)
	pc := dialT(t, p.addr)

	proxy, err := netfault.NewProxy(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	a := startNode(t, t.TempDir(), proxy.Addr(), journal.Options{}, fastLink(stall)...)

	if _, err := pc.Create("PRE", "HDL_model"); err != nil {
		t.Fatalf("acked write with a live follower: %v", err)
	}

	// Lose only the uplink: the follower's acks (and nothing else).
	proxy.BlackholeDir(netfault.Up)
	if _, err := pc.Create("UNACKED", "HDL_model"); err == nil || !strings.Contains(err.Error(), "quorum-timeout") {
		t.Fatalf("ack-starved write = %v, want a quorum-timeout degradation", err)
	}
	// ...but the record still reached the follower: the downlink lives.
	waitApplied(t, a, p.w.LastLSN())
	st := a.fol.Stats()
	if st.Stalls != 0 {
		t.Fatalf("follower stalled on a live downlink: %+v", st)
	}
	if d, known := a.fol.Staleness(); !known || d > stall {
		t.Fatalf("staleness = %v (known=%v) with records flowing, want fresh", d, known)
	}

	// Heal: the parked acks drain and quorum service resumes.
	proxy.Heal()
	healed := false
	for i := 0; i < 10 && !healed; i++ {
		_, err := pc.Create(fmt.Sprintf("HEAL%d", i), "HDL_model")
		healed = err == nil
	}
	if !healed {
		t.Fatal("writes never re-acked after the uplink healed")
	}
}

// TestAsymmetricPartitionDownlinkStalls is the mirror image: the
// primary→follower direction goes dark while the follower's own bytes
// still flow.  From the follower's seat this is indistinguishable from
// a dead link — and must be treated as one: stall, tear down, retry
// (each handshake dies on the same silence), then converge on heal.
func TestAsymmetricPartitionDownlinkStalls(t *testing.T) {
	const stall = 400 * time.Millisecond
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	p.src.SetPing(50 * time.Millisecond)
	pc := dialT(t, p.addr)

	proxy, err := netfault.NewProxy(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	a := startNode(t, t.TempDir(), proxy.Addr(), journal.Options{}, fastLink(stall)...)

	if _, err := pc.Create("DOWN0", "HDL_model"); err != nil {
		t.Fatal(err)
	}
	lsn := p.quiesce()
	waitApplied(t, a, lsn)

	proxy.BlackholeDir(netfault.Down)
	detect := waitStalls(t, a.fol, 1, 10*time.Second)
	if detect > 2*stall {
		t.Fatalf("dark downlink detected after %v, want within 2x stall timeout (%v)", detect, 2*stall)
	}
	if err := a.fol.Err(); err != nil {
		t.Fatalf("downlink stall must not be terminal: %v", err)
	}

	proxy.Heal()
	if _, err := pc.Create("DOWN1", "HDL_model"); err != nil {
		t.Fatal(err)
	}
	lsn2 := p.quiesce()
	waitApplied(t, a, lsn2)
	if got := saveBytes(t, a.fol.DB()); !bytes.Equal(saveBytes(t, p.db), got) {
		t.Fatal("follower diverged across the asymmetric partition")
	}
	if err := a.fol.Err(); err != nil {
		t.Fatalf("follower terminal after heal: %v", err)
	}
}

// TestPromoteDuringPartition: the operator promotes the survivor while
// its upstream link is blackholed — the exact moment failovers happen.
// The promotion must not wait out a dial parked on the dead address
// (Repoint/halt cancel it), the split-brain window must keep the two
// writable nodes in different terms, and the deposed primary's
// partition-era tail must be fenced after heal.
func TestPromoteDuringPartition(t *testing.T) {
	const stall = 400 * time.Millisecond
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	p.src.SetPing(50 * time.Millisecond)
	pc := dialT(t, p.addr)

	proxy, err := netfault.NewProxy(p.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	a := startNode(t, t.TempDir(), proxy.Addr(), journal.Options{}, fastLink(stall)...)

	for i := 0; i < 4; i++ {
		if _, err := pc.Create(fmt.Sprintf("SHARED%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	shared := p.quiesce()
	waitApplied(t, a, shared)

	// Partition, and wait until the follower is provably mid-reconnect
	// against the blackhole before promoting through it.
	proxy.Blackhole()
	waitStalls(t, a.fol, 1, 10*time.Second)

	ac := dialT(t, a.addr)
	start := time.Now()
	term, bump, err := ac.Promote()
	if took := time.Since(start); err != nil || took > 3*time.Second {
		t.Fatalf("Promote mid-partition took %v (%v), must not wait out a blackholed dial", took, err)
	}
	if term != 2 || bump != shared+1 {
		t.Fatalf("Promote = term %d bump %d, want term 2 bump %d", term, bump, shared+1)
	}

	// The split-brain window: both sides are writable — in different
	// terms, which is exactly what makes the later fence decidable.
	if _, err := pc.Create("OLDSIDE", "HDL_model"); err != nil {
		t.Fatalf("old primary refused a write on its own side: %v", err)
	}
	if _, err := ac.Create("NEWSIDE", "HDL_model"); err != nil {
		t.Fatalf("promoted node refused a write: %v", err)
	}
	divergent := p.quiesce()
	pri, err := pc.Role()
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ac.Role()
	if err != nil {
		t.Fatal(err)
	}
	if pri.Role != "primary" || ari.Role != "primary" || pri.Term != 1 || ari.Term != 2 {
		t.Fatalf("split-brain roles = %+v / %+v, want primaries at terms 1 and 2", pri, ari)
	}

	// Heal, depose the old primary, and re-attach it: the tail it wrote
	// during the partition is exactly what the handshake must refuse.
	proxy.Heal()
	p.crash()
	ghost, err := replica.Start(p.dir, a.addr, journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Abort()
	deadline := time.Now().Add(15 * time.Second)
	for ghost.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("deposed primary was never fenced after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(ghost.Err().Error(), "divergent tail") {
		t.Fatalf("deposed primary stopped with %v, want the divergent-tail fence", ghost.Err())
	}
	if got := ghost.AppliedLSN(); got != divergent {
		t.Fatalf("fenced ghost's position moved to %d, want the untouched %d", got, divergent)
	}
}
