package meta

import "fmt"

// View-based graph walks.  Each walk resolves adjacency through the
// versioned reachability index (shardHist.out/in): one lock-free lookup
// per visited key, so a closure query costs O(closure) index lookups —
// never a whole-graph link scan, and never a shard or stripe lock.  The
// results are byte-identical to the locked walks at the same state
// (property-tested in graphview_test.go) and byte-stable: re-running a
// walk on the same view always yields the same slice.

// outAt returns the view's outgoing-adjacency posting of k (links with
// From == k).  The slice and its links are immutable; callers must not
// mutate them.
func (v *View) outAt(k Key) []*Link {
	return v.adjAt(k, true)
}

// inAt returns the view's incoming-adjacency posting of k (links with
// To == k).
func (v *View) inAt(k Key) []*Link {
	return v.adjAt(k, false)
}

func (v *View) adjAt(k Key, out bool) []*Link {
	h := v.shards[v.db.shardIndex(k.Block)]
	m := &h.in
	if out {
		m = &h.out
	}
	hi, ok := m.Load(k)
	if !ok {
		return nil
	}
	x := hi.(*hist[[]*Link]).at(v.lsn)
	if x == nil || x.del {
		return nil
	}
	return x.val
}

// linkAt resolves a link by ID at the view, nil when absent/deleted.
// The returned object is immutable and may be retained.
func (v *View) linkAt(id LinkID) *Link {
	hi, ok := v.stripes[uint32(id)&v.db.lmask].links.Load(id)
	if !ok {
		return nil
	}
	x := hi.(*hist[*Link]).at(v.lsn)
	if x == nil || x.del {
		return nil
	}
	return x.val
}

// configAt resolves a stored configuration at the view, nil when
// absent/deleted.  The returned object is the immutable stored version.
func (v *View) configAt(name string) *Configuration {
	hi, ok := v.ctl.configs.Load(name)
	if !ok {
		return nil
	}
	x := hi.(*hist[*Configuration]).at(v.lsn)
	if x == nil || x.del {
		return nil
	}
	return x.val
}

// Reachable is DB.Reachable evaluated at the view: the set of keys
// reachable from root by traversing admitted links From→To, including
// root itself; nil when root does not exist at the view.
func (v *View) Reachable(root Key, follow FollowFunc) []Key {
	if follow == nil {
		follow = FollowUseLinks
	}
	if !v.HasOID(root) {
		return nil
	}
	visited := map[Key]bool{root: true}
	queue := []Key{root}
	var out []Key
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		out = append(out, k)
		for _, l := range v.outAt(k) {
			if !follow(l) || visited[l.To] {
				continue
			}
			visited[l.To] = true
			queue = append(queue, l.To)
		}
	}
	sortKeys(out)
	return out
}

// Dependents is DB.Dependents evaluated at the view: the downstream
// closure of root, root itself excluded; nil when root does not exist at
// the view.
func (v *View) Dependents(root Key, follow FollowFunc) []Key {
	if follow == nil {
		follow = FollowAllLinks
	}
	if !v.HasOID(root) {
		return nil
	}
	visited := map[Key]bool{root: true}
	queue := []Key{root}
	var out []Key
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, l := range v.outAt(k) {
			if !follow(l) || visited[l.To] {
				continue
			}
			visited[l.To] = true
			out = append(out, l.To)
			queue = append(queue, l.To)
		}
	}
	sortKeys(out)
	return out
}

// Equivalents is DB.Equivalents evaluated at the view: the transitive
// equivalence plane of k over derive links typed "equivalence", followed
// in both directions, k included; nil when k does not exist at the view.
func (v *View) Equivalents(k Key) []Key {
	if !v.HasOID(k) {
		return nil
	}
	visited := map[Key]bool{k: true}
	queue := []Key{k}
	out := []Key{k}
	step := func(next Key) {
		if !visited[next] {
			visited[next] = true
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, l := range v.outAt(cur) {
			if l.Class == DeriveLink && l.Type() == TypeEquivalence {
				step(l.To)
			}
		}
		for _, l := range v.inAt(cur) {
			if l.Class == DeriveLink && l.Type() == TypeEquivalence {
				step(l.From)
			}
		}
	}
	sortKeys(out)
	return out
}

// Resolve materializes a stored configuration at the view — both the
// configuration and every referenced object resolve at the same LSN, and
// the clone-heavy materialization runs without any database lock.
func (v *View) Resolve(name string) (*ResolvedConfiguration, error) {
	c := v.configAt(name)
	if c == nil {
		return nil, fmt.Errorf("configuration %q: %w", name, ErrNotFound)
	}
	r := &ResolvedConfiguration{Config: c.clone()}
	r.OIDs = make([]*OID, 0, len(c.OIDs))
	for _, k := range c.OIDs {
		if x := v.oidAt(k); x != nil {
			o := &OID{Key: k, Seq: x.val.seq, Props: make(map[string]string, len(x.val.props))}
			for pk, pv := range x.val.props {
				o.Props[pk] = pv
			}
			r.OIDs = append(r.OIDs, o)
		} else {
			r.MissingOIDs = append(r.MissingOIDs, k)
		}
	}
	r.Links = make([]*Link, 0, len(c.Links))
	for _, id := range c.Links {
		if l := v.linkAt(id); l != nil {
			r.Links = append(r.Links, l.clone())
		} else {
			r.MissingLinks = append(r.MissingLinks, id)
		}
	}
	return r, nil
}
