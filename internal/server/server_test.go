package server

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/wire"
)

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingAndStats(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats, "oids=0") {
		t.Errorf("stats = %q", stats)
	}
}

func TestCreatePostStateOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.User = "yves"

	hdl, err := c.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	if hdl != (meta.Key{Block: "CPU", View: "HDL_model", Version: 1}) {
		t.Fatalf("created %v", hdl)
	}
	if err := c.PostEvent("hdl_sim", "down", hdl, "4 errors"); err != nil {
		t.Fatal(err)
	}
	st, err := c.State(hdl)
	if err != nil {
		t.Fatal(err)
	}
	if st.Props["sim_result"] != "4 errors" {
		t.Errorf("sim_result = %q", st.Props["sim_result"])
	}
	if st.Props["owner"] != "yves" {
		t.Errorf("owner = %q", st.Props["owner"])
	}
}

func TestLinkAndPropagationOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	c.User = "marc"

	hdl, err := c.Create("CPU", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := c.Create("CPU", "schematic")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Link("derive", hdl, sch); err != nil {
		t.Fatal(err)
	}
	if err := c.PostEvent(engine.EventCheckin, "down", hdl); err != nil {
		t.Fatal(err)
	}
	st, err := c.State(sch)
	if err != nil {
		t.Fatal(err)
	}
	if st.Props["uptodate"] != "false" {
		t.Errorf("schematic uptodate = %q", st.Props["uptodate"])
	}
	if st.Ready {
		t.Error("stale schematic reported ready")
	}
	if len(st.Blocking) == 0 {
		t.Error("no blocking conditions reported")
	}

	gap, err := c.Gap()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range gap {
		if strings.HasPrefix(line, "CPU,schematic,1") {
			found = true
		}
	}
	if !found {
		t.Errorf("gap lines = %v", gap)
	}
}

func TestSnapshotAndBlueprintOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, err := c.Create("CPU", "schematic"); err != nil {
		t.Fatal(err)
	}
	detail, err := c.Snapshot("snap1", "*")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(detail, "1 oids") {
		t.Errorf("snapshot detail = %q", detail)
	}
	src, err := c.Blueprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bpl.Parse(src); err != nil {
		t.Errorf("served blueprint does not parse: %v", err)
	}
}

func TestServerErrors(t *testing.T) {
	s, _ := startServer(t)
	cases := []wire.Request{
		{Verb: "WAT"},
		{Verb: wire.VerbPost, Args: []string{"ev"}},
		{Verb: wire.VerbPost, Args: []string{"ev", "sideways", "a,v,1"}},
		{Verb: wire.VerbPost, Args: []string{"ev", "down", "nokey"}},
		{Verb: wire.VerbPost, Args: []string{"ev", "down", "ghost,v,1"}},
		{Verb: wire.VerbCreate, Args: []string{"onlyblock"}},
		{Verb: wire.VerbLink, Args: []string{"use", "a,v,1"}},
		{Verb: wire.VerbLink, Args: []string{"weird", "a,v,1", "b,v,1"}},
		{Verb: wire.VerbState, Args: []string{"ghost,v,1"}},
		{Verb: wire.VerbSnapshot, Args: []string{"s"}},
	}
	for _, req := range cases {
		if resp := s.Handle(req); resp.OK {
			t.Errorf("request %+v accepted: %+v", req, resp)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			block := string(rune('a' + i))
			k, err := c.Create(block, "schematic")
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				if err := c.PostEvent("nl_sim", "down", k, "good"); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.Engine().DB().Stats().OIDs; got != n {
		t.Errorf("OIDs = %d, want %d", got, n)
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s, _ := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
