package engine

import (
	"strconv"
	"strings"
	"time"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// Variable resolution for rules, templates and continuous assignments.
// Built-ins take precedence; any other name reads a property of the target
// OID, live, so phase-1 assignments are visible to phase-2 continuous
// assignments and later phases.
//
// Built-in variables:
//
//	$oid, $OID      target OID as "block,view,version"
//	$block, $view, $version
//	$arg            all event arguments joined with spaces
//	$arg1..$argN    individual event arguments
//	$user           posting designer
//	$owner          target's owner property, falling back to $user
//	$date           current date/time (engine clock), RFC 3339
//	$event, $dir    event name and direction
func (e *Engine) lookupFor(ev Event) bpl.LookupFunc {
	return func(name string) string {
		switch name {
		case "oid", "OID":
			return ev.Target.String()
		case "block":
			return ev.Target.Block
		case "view":
			return ev.Target.View
		case "version":
			return strconv.Itoa(ev.Target.Version)
		case "arg":
			return strings.Join(ev.Args, " ")
		case "user":
			return ev.User
		case "owner":
			if v, ok, _ := e.db.GetProp(ev.Target, meta.PropOwner); ok && v != "" {
				return v
			}
			return ev.User
		case "date":
			return e.clock().Format(time.RFC3339)
		case "event":
			return ev.Name
		case "dir":
			return ev.Dir.String()
		}
		if n, ok := argIndex(name); ok {
			if n >= 1 && n <= len(ev.Args) {
				return ev.Args[n-1]
			}
			return ""
		}
		v, _, _ := e.db.GetProp(ev.Target, name)
		return v
	}
}

// lookupOver resolves the same variables as lookupFor but reads properties
// straight from a live property map instead of through the database.  It is
// used inside the batched phase-1/phase-2 round-trip (meta.DB UpdateOID),
// where the database lock is already held: earlier assignments in the batch
// are visible to later expansions because both touch props directly.
func (e *Engine) lookupOver(ev Event, props map[string]string) bpl.LookupFunc {
	return func(name string) string {
		switch name {
		case "oid", "OID":
			return ev.Target.String()
		case "block":
			return ev.Target.Block
		case "view":
			return ev.Target.View
		case "version":
			return strconv.Itoa(ev.Target.Version)
		case "arg":
			return strings.Join(ev.Args, " ")
		case "user":
			return ev.User
		case "owner":
			if v := props[meta.PropOwner]; v != "" {
				return v
			}
			return ev.User
		case "date":
			return e.clock().Format(time.RFC3339)
		case "event":
			return ev.Name
		case "dir":
			return ev.Dir.String()
		}
		if n, ok := argIndex(name); ok {
			if n >= 1 && n <= len(ev.Args) {
				return ev.Args[n-1]
			}
			return ""
		}
		return props[name]
	}
}

// argIndex parses "argN" names.
func argIndex(name string) (int, bool) {
	if len(name) < 4 || name[:3] != "arg" {
		return 0, false
	}
	n, err := strconv.Atoi(name[3:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// envSnapshot materializes the environment for an exec invocation: the
// built-ins plus every property of the target OID.
func (e *Engine) envSnapshot(ev Event) map[string]string {
	env := map[string]string{
		"oid":     ev.Target.String(),
		"OID":     ev.Target.String(),
		"block":   ev.Target.Block,
		"view":    ev.Target.View,
		"version": strconv.Itoa(ev.Target.Version),
		"arg":     strings.Join(ev.Args, " "),
		"user":    ev.User,
		"event":   ev.Name,
		"dir":     ev.Dir.String(),
		"date":    e.clock().Format(time.RFC3339),
	}
	for i, a := range ev.Args {
		env["arg"+strconv.Itoa(i+1)] = a
	}
	_ = e.db.WithOID(ev.Target, func(o *meta.OID) {
		for name, v := range o.Props {
			if _, exists := env[name]; !exists {
				env[name] = v
			}
		}
		if owner, ok := o.Props[meta.PropOwner]; ok && owner != "" {
			env["owner"] = owner
		} else {
			env["owner"] = ev.User
		}
	})
	return env
}
