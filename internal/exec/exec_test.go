package exec

import (
	"errors"
	"testing"
)

func TestRecorder(t *testing.T) {
	r := &Recorder{}
	env := map[string]string{"oid": "a,v,1"}
	if err := r.Exec(Invocation{Script: "netlister", Args: []string{"a,v,1"}, Env: env}); err != nil {
		t.Fatal(err)
	}
	if err := r.Notify("hello"); err != nil {
		t.Fatal(err)
	}
	env["oid"] = "tampered"
	invs := r.Invocations()
	if len(invs) != 1 || invs[0].Script != "netlister" {
		t.Fatalf("Invocations = %+v", invs)
	}
	if invs[0].Env["oid"] != "a,v,1" {
		t.Error("recorder aliased caller env")
	}
	if got := r.Notifications(); len(got) != 1 || got[0] != "hello" {
		t.Errorf("Notifications = %v", got)
	}
	if got := r.Scripts(); len(got) != 1 || got[0] != "netlister" {
		t.Errorf("Scripts = %v", got)
	}
	r.Reset()
	if len(r.Invocations())+len(r.Notifications()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestInvocationString(t *testing.T) {
	inv := Invocation{Script: "drc.sh", Args: []string{"a", "b"}}
	if got := inv.String(); got != "drc.sh a b" {
		t.Errorf("String = %q", got)
	}
	if got := (Invocation{Script: "x"}).String(); got != "x" {
		t.Errorf("String = %q", got)
	}
}

func TestRegistryDispatch(t *testing.T) {
	g := NewRegistry()
	var ran []string
	g.Register("netlister", func(inv Invocation) error {
		ran = append(ran, "netlister:"+inv.Args[0])
		return nil
	})
	g.Register("drc", func(Invocation) error { return errors.New("drc blew up") })
	if err := g.Exec(Invocation{Script: "netlister", Args: []string{"x"}}); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 1 || ran[0] != "netlister:x" {
		t.Errorf("ran = %v", ran)
	}
	if err := g.Exec(Invocation{Script: "drc"}); err == nil {
		t.Error("handler error swallowed")
	}
	if err := g.Exec(Invocation{Script: "ghost"}); err == nil {
		t.Error("unknown script accepted")
	}
	g.Fallback = func(Invocation) error { return nil }
	if err := g.Exec(Invocation{Script: "ghost"}); err != nil {
		t.Errorf("fallback not used: %v", err)
	}
	if got := g.Scripts(); len(got) != 2 || got[0] != "drc" {
		t.Errorf("Scripts = %v", got)
	}
}

func TestRegistryNotify(t *testing.T) {
	g := NewRegistry()
	if err := g.Notify("no sink is fine"); err != nil {
		t.Fatal(err)
	}
	var got string
	g.OnNotify(func(m string) error { got = m; return nil })
	if err := g.Notify("ping"); err != nil {
		t.Fatal(err)
	}
	if got != "ping" {
		t.Errorf("notify sink got %q", got)
	}
}

func TestTee(t *testing.T) {
	r1, r2 := &Recorder{}, &Recorder{}
	bad := NewRegistry() // no handlers: always errors
	tee := Tee{r1, bad, r2}
	err := tee.Exec(Invocation{Script: "s"})
	if err == nil {
		t.Error("tee swallowed error")
	}
	if len(r1.Invocations()) != 1 || len(r2.Invocations()) != 1 {
		t.Error("tee did not fan out despite error")
	}
	if err := tee.Notify("m"); err != nil {
		t.Fatal(err)
	}
	if len(r1.Notifications()) != 1 || len(r2.Notifications()) != 1 {
		t.Error("notify did not fan out")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	if err := n.Exec(Invocation{Script: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := n.Notify("y"); err != nil {
		t.Fatal(err)
	}
}
