// Command damocles runs the DAMOCLES project server: it loads a BluePrint
// policy file and an optional saved meta-database, listens for wrapper
// connections, and processes design events (Figure 1 of the paper).
//
// Usage:
//
//	damocles [-addr host:port] [-blueprint file] [-db file] [-trace]
//
// With no -blueprint, the EDTC_example policy from section 3.4 of the
// paper is loaded.  With -db, the meta-database is loaded at startup (if
// the file exists) and saved back on SIGINT/SIGTERM shutdown.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("damocles: ")
	addr := flag.String("addr", "127.0.0.1:7495", "listen address")
	bpFile := flag.String("blueprint", "", "BluePrint policy file (default: built-in EDTC example)")
	dbFile := flag.String("db", "", "meta-database file to load/save")
	trace := flag.Bool("trace", false, "log engine trace to stderr")
	flag.Parse()

	if err := run(*addr, *bpFile, *dbFile, *trace); err != nil {
		log.Fatal(err)
	}
}

func run(addr, bpFile, dbFile string, trace bool) error {
	src := bpl.EDTCExample
	if bpFile != "" {
		data, err := os.ReadFile(bpFile)
		if err != nil {
			return err
		}
		src = string(data)
	}
	bp, err := bpl.Parse(src)
	if err != nil {
		return fmt.Errorf("blueprint: %w", err)
	}
	for _, d := range bpl.Analyze(bp) {
		log.Printf("blueprint %s: %s", bp.Name, d)
	}

	db := meta.NewDB()
	if dbFile != "" {
		f, err := os.Open(dbFile)
		switch {
		case err == nil:
			db, err = meta.Load(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("load %s: %w", dbFile, err)
			}
			log.Printf("loaded %s: %+v", dbFile, db.Stats())
		case errors.Is(err, fs.ErrNotExist):
			log.Printf("%s not found, starting empty", dbFile)
		default:
			return err
		}
	}

	var opts []engine.Option
	if trace {
		opts = append(opts, engine.WithTracer(logTracer{}))
	}
	eng, err := engine.New(db, bp, opts...)
	if err != nil {
		return err
	}
	srv := server.New(eng)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	log.Printf("project %s serving on %s", bp.Name, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		return err
	}
	if dbFile != "" {
		f, err := os.Create(dbFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		log.Printf("saved %s: %+v", dbFile, db.Stats())
	}
	return nil
}

// logTracer streams engine trace entries to the log.
type logTracer struct{}

func (logTracer) Trace(e engine.TraceEntry) { log.Print(e.String()) }
