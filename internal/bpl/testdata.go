package bpl

// EDTCExample is the complete BluePrint from section 3.4 of the paper,
// transcribed from the printed listing (with the endview the printed paper
// omits after the schematic view restored).  It drives the paper's example
// design flow: five tracked views, the outofdate invalidation policy on the
// default view, automatic netlisting on schematic check-in, and LVS
// re-posting between schematic and layout.
const EDTCExample = `# The complete BluePrint of section 3.4 of
# "Controlling Change Propagation and Project Policies in IC Design".
blueprint EDTC_example

view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview

view HDL_model
    property sim_result default bad
    when hdl_sim do sim_result = $arg done
endview

view synth_lib
endview

view schematic
    property nl_sim_res default bad
    property lvs_res default not_equiv
    let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
    # The printed listing omits "move" here, but the narrative of section
    # 3.4 states "Both links are tagged with the move keyword" for the
    # use link and this derived link; the scenario (outofdate posted from
    # the freshly checked-in HDL_model version 3 reaching the schematic)
    # only works with move semantics.
    link_from HDL_model move propagates outofdate type derived
    link_from synth_lib move propagates outofdate type depend_on
    use_link move propagates outofdate
    when nl_sim do nl_sim_res = $arg done
    when ckin do lvs_res = "$oid changed by $user"; post lvs down "$lvs_res" done
    when ckin do exec netlister "$oid" done
endview

view netlist
    property sim_result default bad
    link_from schematic propagates nl_sim, outofdate type derived
    when nl_sim do sim_result = $arg done
endview

view layout
    property drc_result default bad
    property lvs_result default not_equiv
    let state = ($drc_result == good) and ($lvs_result == is_equiv) and ($uptodate == true)
    link_from schematic propagates lvs, outofdate type equivalence
    when drc do drc_result = $arg done
    when lvs do lvs_result = $arg done
    when ckin do lvs_result = "$oid changed by $user"; post lvs up "$lvs_result" done
endview

endblueprint
`
