package bpl

import (
	"reflect"
	"testing"
)

func TestParseTemplateParts(t *testing.T) {
	tests := []struct {
		raw  string
		want []TemplatePart
	}{
		{"plain", []TemplatePart{{Lit: "plain"}}},
		{"$arg", []TemplatePart{{Var: "arg"}}},
		{"$oid changed by $user", []TemplatePart{
			{Var: "oid"}, {Lit: " changed by "}, {Var: "user"},
		}},
		{"a$x!b", []TemplatePart{{Lit: "a"}, {Var: "x"}, {Lit: "!b"}}},
		{`\$literal`, []TemplatePart{{Lit: "$literal"}}},
		{"$ alone", []TemplatePart{{Lit: "$ alone"}}},
		{"", nil},
		{"$a$b", []TemplatePart{{Var: "a"}, {Var: "b"}}},
	}
	for _, tt := range tests {
		got := ParseTemplate(tt.raw)
		if !reflect.DeepEqual(got.Parts, tt.want) {
			t.Errorf("ParseTemplate(%q) = %+v, want %+v", tt.raw, got.Parts, tt.want)
		}
	}
}

func TestTemplateExpand(t *testing.T) {
	tpl := ParseTemplate("$owner: Your oid $OID has been modified")
	got := tpl.Expand(func(n string) string {
		switch n {
		case "owner":
			return "marc"
		case "OID":
			return "cpu,schematic,2"
		}
		return ""
	})
	if got != "marc: Your oid cpu,schematic,2 has been modified" {
		t.Errorf("Expand = %q", got)
	}
	// Nil lookup expands variables to "".
	if got := tpl.Expand(nil); got != ": Your oid  has been modified" {
		t.Errorf("Expand(nil) = %q", got)
	}
}

func TestTemplateIsConstAndVars(t *testing.T) {
	if !LitTemplate("x").IsConst() {
		t.Error("literal template not const")
	}
	if VarTemplate("v").IsConst() {
		t.Error("var template const")
	}
	tpl := ParseTemplate("$a-$b-$a")
	if got := tpl.Vars(); !reflect.DeepEqual(got, []string{"a", "b", "a"}) {
		t.Errorf("Vars = %v", got)
	}
}

func TestTemplateSourceRoundTrip(t *testing.T) {
	raws := []string{
		"plain",
		"two words",
		"$arg",
		"$oid changed by $user",
		`with "quotes"`,
		`\$dollar`,
		"",
	}
	for _, raw := range raws {
		tpl := ParseTemplate(raw)
		src := tpl.Source()
		// Re-lex the source form the way the parser does.
		toks, err := Lex(src + " ")
		if err != nil {
			t.Fatalf("Source(%q) = %q does not lex: %v", raw, src, err)
		}
		var back Template
		switch toks[0].Kind {
		case TokString:
			back = ParseTemplate(toks[0].Text)
		case TokVar:
			back = VarTemplate(toks[0].Text)
		case TokIdent:
			back = LitTemplate(toks[0].Text)
		case TokEOF:
			back = Template{}
		}
		if !reflect.DeepEqual(tpl, back) {
			t.Errorf("Source round trip %q -> %q -> %+v, want %+v", raw, src, back, tpl)
		}
	}
}

func TestExplainFailure(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    let state = ($nl_sim_res == good) and ($lvs_res == is_equiv) and ($uptodate == true)
endview
endblueprint`)
	v, _ := bp.View("v")
	e := v.Lets[0].Expr
	lookup := func(vals map[string]string) LookupFunc {
		return func(n string) string { return vals[n] }
	}
	// All good: no failures.
	ok := lookup(map[string]string{"nl_sim_res": "good", "lvs_res": "is_equiv", "uptodate": "true"})
	if got := ExplainFailure(e, ok); got != nil {
		t.Errorf("passing expr explained: %v", got)
	}
	// Two failing conjuncts.
	bad := lookup(map[string]string{"nl_sim_res": "4 errors", "lvs_res": "is_equiv", "uptodate": "false"})
	got := ExplainFailure(e, bad)
	if len(got) != 2 {
		t.Fatalf("ExplainFailure = %v, want 2 findings", got)
	}
	if got[0] == "" || got[1] == "" {
		t.Errorf("empty explanations: %v", got)
	}
}

func TestExplainFailureNot(t *testing.T) {
	bp := mustParse(t, `blueprint b
view v
    let s = not ($frozen == true)
endview
endblueprint`)
	v, _ := bp.View("v")
	e := v.Lets[0].Expr
	got := ExplainFailure(e, func(string) string { return "true" })
	if len(got) != 1 {
		t.Fatalf("ExplainFailure = %v", got)
	}
}
