package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// per-wave visited set in the propagation engine, and the zero-copy link
// iteration the engine uses against the naive cloning alternative.

import (
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/meta"
)

// buildDiamondLattice creates k chained diamonds:
//
//	a0 -> {b0, c0} -> a1 -> {b1, c1} -> a2 ...
//
// There are 2^k distinct paths from a0 to ak, so propagation without wave
// dedup re-delivers exponentially while dedup visits each OID once.
func buildDiamondLattice(b *testing.B, eng *Engine, k int) Key {
	b.Helper()
	mk := func(name string) Key {
		key, err := eng.CreateOID(name, "node", "bench")
		if err != nil {
			b.Fatal(err)
		}
		return key
	}
	link := func(from, to Key) {
		if _, err := eng.DB().AddLink(meta.DeriveLink, from, to, "", []string{"outofdate"}, nil); err != nil {
			b.Fatal(err)
		}
	}
	a := mk("a0")
	root := a
	for i := 0; i < k; i++ {
		bn := mk(fmt.Sprintf("b%d", i))
		cn := mk(fmt.Sprintf("c%d", i))
		next := mk(fmt.Sprintf("a%d", i+1))
		link(a, bn)
		link(a, cn)
		link(bn, next)
		link(cn, next)
		a = next
	}
	if err := eng.Drain(); err != nil {
		b.Fatal(err)
	}
	return root
}

// BenchmarkAblationWaveDedup contrasts propagation with the per-wave
// visited set on (production) and off (ablated, hop-capped) over diamond
// lattices.  The deliveries/op metric shows the exponential blowup the
// visited set prevents.
func BenchmarkAblationWaveDedup(b *testing.B) {
	const blueprint = `blueprint ab
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view node
endview
endblueprint`
	for _, k := range []int{4, 8, 12} {
		for _, dedup := range []bool{true, false} {
			name := fmt.Sprintf("diamonds=%d/dedup=%v", k, dedup)
			b.Run(name, func(b *testing.B) {
				bp, err := ParseBlueprint(blueprint)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := NewEngine(NewDB(), bp,
					engine.WithWaveDedup(dedup), engine.WithMaxSteps(1<<40))
				if err != nil {
					b.Fatal(err)
				}
				root := buildDiamondLattice(b, eng, k)
				ev := Event{Name: EventOutOfDate, Dir: DirDown, Target: root}
				before := eng.Stats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := eng.PostAndDrain(ev); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				after := eng.Stats()
				b.ReportMetric(float64(after.Deliveries-before.Deliveries)/float64(b.N), "deliveries/op")
			})
		}
	}
}

// BenchmarkAblationLinkIteration contrasts the engine's zero-copy
// EachLinkOf traversal with the naive LinksOf (deep clone) alternative, at
// several link counts per OID.
func BenchmarkAblationLinkIteration(b *testing.B) {
	for _, n := range []int{4, 32, 256} {
		db := NewDB()
		hub, err := db.NewVersion("hub", "v")
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			k, err := db.NewVersion(fmt.Sprintf("n%03d", i), "v")
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.AddLink(meta.DeriveLink, hub, k, "t", []string{"outofdate"}, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("each/links=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				db.EachLinkOf(hub, func(l *meta.Link) bool {
					if l.CanPropagate("outofdate") {
						count++
					}
					return true
				})
				if count != n {
					b.Fatal(count)
				}
			}
		})
		b.Run(fmt.Sprintf("clone/links=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				for _, l := range db.LinksOf(hub) {
					if l.CanPropagate("outofdate") {
						count++
					}
				}
				if count != n {
					b.Fatal(count)
				}
			}
		})
	}
}

// BenchmarkAblationDefaultViewMerge measures rule resolution with and
// without a default view, quantifying the cost of the paper's "special
// default view which applies to all the views" merge on the hot path.
func BenchmarkAblationDefaultViewMerge(b *testing.B) {
	withDefault := `blueprint w
view default
    property uptodate default true
    when ckin do uptodate = true done
endview
view node
    property x default a
    when ckin do x = b done
endview
endblueprint`
	withoutDefault := `blueprint wo
view node
    property uptodate default true
    property x default a
    when ckin do uptodate = true; x = b done
endview
endblueprint`
	for name, src := range map[string]string{"merged": withDefault, "flat": withoutDefault} {
		b.Run(name, func(b *testing.B) {
			proj := mustProject(b, src)
			k := mustKey(b, proj.Engine, "blk", "node")
			ev := Event{Name: EventCheckin, Dir: DirDown, Target: k}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := proj.Engine.PostAndDrain(ev); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAblationWaveDedupEquivalence checks the ablated engine still reaches
// the same final state on DAGs (it must — it only does redundant work).
func TestAblationWaveDedupEquivalence(t *testing.T) {
	const blueprint = `blueprint ab
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view node
endview
endblueprint`
	run := func(dedup bool) map[string]string {
		bp, err := ParseBlueprint(blueprint)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(NewDB(), bp, engine.WithWaveDedup(dedup))
		if err != nil {
			t.Fatal(err)
		}
		// Small diamond chain.
		mk := func(name string) Key {
			k, err := eng.CreateOID(name, "node", "t")
			if err != nil {
				t.Fatal(err)
			}
			return k
		}
		link := func(a, c Key) {
			if _, err := eng.DB().AddLink(meta.DeriveLink, a, c, "", []string{"outofdate"}, nil); err != nil {
				t.Fatal(err)
			}
		}
		a := mk("a")
		b1, c1, d := mk("b"), mk("c"), mk("d")
		link(a, b1)
		link(a, c1)
		link(b1, d)
		link(c1, d)
		if err := eng.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := eng.PostAndDrain(Event{Name: EventOutOfDate, Dir: DirDown, Target: a}); err != nil {
			t.Fatal(err)
		}
		state := map[string]string{}
		eng.DB().EachOID(func(o *OID) bool {
			state[o.Key.String()] = o.Props["uptodate"]
			return true
		})
		return state
	}
	on, off := run(true), run(false)
	for k, v := range on {
		if off[k] != v {
			t.Errorf("state differs at %s: dedup=%q ablated=%q", k, v, off[k])
		}
	}
}
