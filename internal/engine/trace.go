package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TraceKind classifies audit-trace entries.
type TraceKind uint8

const (
	// TraceEnqueue records an event entering the queue.
	TraceEnqueue TraceKind = iota
	// TraceDeliver records an event being processed on an OID.
	TraceDeliver
	// TraceAssign records a property assignment by a rule.
	TraceAssign
	// TraceLet records a continuous-assignment re-evaluation that changed
	// the stored value.
	TraceLet
	// TraceExec records a script invocation.
	TraceExec
	// TraceNotify records a notify action.
	TraceNotify
	// TracePost records a post action emitting a new event.
	TracePost
	// TracePropagate records an event crossing a link.
	TracePropagate
	// TraceCreateOID records a new OID with applied templates.
	TraceCreateOID
	// TraceShiftLink records a move-mode link shifted to a new version.
	TraceShiftLink
	// TraceCopyLink records a copy-mode link duplicated to a new version.
	TraceCopyLink
	// TraceCreateLink records a new link decorated from a template.
	TraceCreateLink
	// TraceDrop records a delivery dropped (visited, missing OID, ...).
	TraceDrop
	// TraceError records a non-fatal error (executor failure, bad post
	// target).
	TraceError
)

// String names the kind.
func (k TraceKind) String() string {
	names := [...]string{
		"enqueue", "deliver", "assign", "let", "exec", "notify", "post",
		"propagate", "create-oid", "shift-link", "copy-link", "create-link",
		"drop", "error",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// TraceEntry is one audit record.
type TraceEntry struct {
	Kind   TraceKind
	OID    string // target OID, if any
	Event  string // event name, if any
	Detail string
}

// String renders the entry for logs.
func (e TraceEntry) String() string {
	s := e.Kind.String()
	if e.Event != "" {
		s += " " + e.Event
	}
	if e.OID != "" {
		s += " @" + e.OID
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Tracer receives audit records from the engine.
type Tracer interface {
	Trace(TraceEntry)
}

// NopTracer discards all records.
type NopTracer struct{}

// Trace implements Tracer.
func (NopTracer) Trace(TraceEntry) {}

// BufferTracer accumulates records in memory, optionally bounded.  It is
// safe for concurrent use.
type BufferTracer struct {
	// Max bounds the number of retained entries; 0 means unbounded.  When
	// full, older entries are discarded.
	Max int

	mu      sync.Mutex
	entries []TraceEntry
	dropped int
}

// Trace implements Tracer.
func (b *BufferTracer) Trace(e TraceEntry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.Max > 0 && len(b.entries) >= b.Max {
		// Drop the oldest half to amortize copying.
		n := len(b.entries) / 2
		if n == 0 {
			n = 1
		}
		b.dropped += n
		b.entries = append(b.entries[:0], b.entries[n:]...)
	}
	b.entries = append(b.entries, e)
}

// Entries returns a copy of the retained entries in order.
func (b *BufferTracer) Entries() []TraceEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]TraceEntry(nil), b.entries...)
}

// Dropped reports how many entries were discarded due to the bound.
func (b *BufferTracer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// OfKind returns the retained entries of one kind, in order.
func (b *BufferTracer) OfKind(k TraceKind) []TraceEntry {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []TraceEntry
	for _, e := range b.entries {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Reset clears the buffer.
func (b *BufferTracer) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.entries = nil
	b.dropped = 0
}

// Stats counts engine activity.  All counters are cumulative.
type Stats struct {
	// Posted counts events accepted by Post (including engine-internal
	// posts from rules and creations).
	Posted int64
	// Deliveries counts event deliveries processed (rule execution plus
	// propagate-only visits).
	Deliveries int64
	// RulesFired counts run-time rules whose event matched a delivery.
	RulesFired int64
	// Assigns counts property assignments performed by rules.
	Assigns int64
	// LetEvals counts continuous-assignment evaluations.
	LetEvals int64
	// Execs counts exec actions dispatched.
	Execs int64
	// Notifies counts notify actions dispatched.
	Notifies int64
	// Posts counts post actions executed.
	Posts int64
	// Propagations counts link traversals that delivered the event onward.
	Propagations int64
	// Blocked counts link traversals refused because the link does not
	// propagate the event or points the wrong way.
	Blocked int64
	// Drops counts deliveries skipped (already visited, missing OID).
	Drops int64
	// OIDsCreated counts engine-created OIDs.
	OIDsCreated int64
	// LinksCreated counts engine-created links (template instantiations
	// and copies).
	LinksCreated int64
	// LinksShifted counts move-mode link shifts.
	LinksShifted int64
	// ExecErrors counts executor failures (non-fatal).
	ExecErrors int64
}

// counters is the engine-internal form of Stats: one atomic per counter, so
// rule execution bumps activity counts without taking the engine mutex and
// Stats snapshots never block event processing.
type counters struct {
	posted, deliveries, rulesFired, assigns, letEvals, execs, notifies,
	posts, propagations, blocked, drops, oidsCreated, linksCreated,
	linksShifted, execErrors atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Posted:       c.posted.Load(),
		Deliveries:   c.deliveries.Load(),
		RulesFired:   c.rulesFired.Load(),
		Assigns:      c.assigns.Load(),
		LetEvals:     c.letEvals.Load(),
		Execs:        c.execs.Load(),
		Notifies:     c.notifies.Load(),
		Posts:        c.posts.Load(),
		Propagations: c.propagations.Load(),
		Blocked:      c.blocked.Load(),
		Drops:        c.drops.Load(),
		OIDsCreated:  c.oidsCreated.Load(),
		LinksCreated: c.linksCreated.Load(),
		LinksShifted: c.linksShifted.Load(),
		ExecErrors:   c.execErrors.Load(),
	}
}
