package replica_test

// Failover: the three-node promote/fence/quorum tests.  A promotable
// node here carries the full daemon wiring of `damocles -follow` — the
// replication loop, a read-only server with a chained FOLLOW source, and
// the PROMOTE hook that flips the process into a primary — so every test
// exercises the real wire path, including the PROMOTE verb itself.

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/replica"
	"repro/internal/server"
)

// pnode is a standalone journaled primary with crash-style teardown the
// tests control (the shared cluster harness owns its own lifecycle).
type pnode struct {
	t       *testing.T
	dir     string
	w       *journal.Writer
	db      *meta.DB
	eng     *engine.Engine
	srv     *server.Server
	src     *replica.Source
	addr    string
	stopped bool
}

func startPrimary(t *testing.T, dir string, opt journal.Options, srvOpts ...server.Option) *pnode {
	t.Helper()
	opt.Shards = 4
	w, db, err := journal.Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(db, testBlueprint(t), engine.WithJournal(w))
	if err != nil {
		t.Fatal(err)
	}
	src := replica.NewSource(w)
	srv := server.New(eng, append([]server.Option{
		server.WithJournal(w),
		server.WithFollowSource(src),
	}, srvOpts...)...)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &pnode{t: t, dir: dir, w: w, db: db, eng: eng, srv: srv, src: src, addr: addr}
	t.Cleanup(p.crash)
	return p
}

// crash kills the primary abruptly: connections drop, the uncommitted
// buffer is lost, no final snapshot — what SIGKILL leaves behind.
func (p *pnode) crash() {
	if p.stopped {
		return
	}
	p.stopped = true
	p.srv.Close()
	p.w.Abort()
}

// quiesce drains and commits, returning the settled LSN.
func (p *pnode) quiesce() int64 {
	p.t.Helper()
	if err := p.eng.Drain(); err != nil {
		p.t.Fatal(err)
	}
	if err := p.w.Commit(); err != nil {
		p.t.Fatal(err)
	}
	return p.w.LastLSN()
}

// fnode is a promotable follower node: replica loop + read-only server
// with chained FOLLOW source and the promotion hook, as the daemon wires
// them.
type fnode struct {
	t       *testing.T
	dir     string
	fol     *replica.Follower
	eng     *engine.Engine
	srv     *server.Server
	addr    string
	stopped bool
}

func startNode(t *testing.T, dir, upstream string, jopt journal.Options, opts ...replica.Option) *fnode {
	t.Helper()
	jopt.Shards = 4
	if jopt.SnapshotEvery == 0 {
		jopt.SnapshotEvery = -1
	}
	fol, err := replica.Start(dir, upstream, jopt, opts...)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(fol.DB(), testBlueprint(t))
	if err != nil {
		fol.Abort()
		t.Fatal(err)
	}
	hook := func() (server.Promotion, error) {
		term, lsn, err := fol.Promote()
		if err != nil {
			return server.Promotion{}, err
		}
		w := fol.Writer()
		eng.AttachJournal(w)
		return server.Promotion{Journal: w, Source: replica.NewSource(w), Term: term, LSN: lsn}, nil
	}
	srv := server.New(eng,
		server.WithReadOnly(fol),
		server.WithFollowSource(replica.NewSource(fol.Writer())),
		server.WithPromote(hook))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		fol.Abort()
		t.Fatal(err)
	}
	n := &fnode{t: t, dir: dir, fol: fol, eng: eng, srv: srv, addr: addr}
	t.Cleanup(n.stop)
	return n
}

func (n *fnode) stop() {
	if n.stopped {
		return
	}
	n.stopped = true
	n.srv.Close()
	n.fol.Abort()
}

// quiesce settles a PROMOTED node: drains its engine and commits the
// journal it took over at promotion.
func (n *fnode) quiesce() int64 {
	n.t.Helper()
	if err := n.eng.Drain(); err != nil {
		n.t.Fatal(err)
	}
	if err := n.fol.Writer().Commit(); err != nil {
		n.t.Fatal(err)
	}
	return n.fol.Writer().LastLSN()
}

func waitApplied(t *testing.T, n *fnode, lsn int64) {
	t.Helper()
	if at, err := n.fol.WaitApplied(lsn, 20*time.Second); err != nil {
		t.Fatalf("node %s stuck at lsn %d waiting for %d: %v (terminal: %v)", n.addr, at, lsn, err, n.fol.Err())
	}
}

func dialT(t *testing.T, addr string) *server.Client {
	t.Helper()
	cl, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// deadAddr is a loopback port nothing listens on: Repoint targets it to
// cut a follower off without stopping the node.
const deadAddr = "127.0.0.1:1"

// TestFailoverPromoteAndFence is the failover acceptance path in-process:
// shared history to two followers, an unreplicated tail on the primary,
// primary crash, PROMOTE over the wire, the survivor re-pointed at the
// new primary, and the revived old primary fenced off by its divergent
// term-1 tail.
func TestFailoverPromoteAndFence(t *testing.T) {
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	pc := dialT(t, p.addr)
	a := startNode(t, t.TempDir(), p.addr, journal.Options{})
	b := startNode(t, t.TempDir(), p.addr, journal.Options{})

	for i := 0; i < 6; i++ {
		if _, err := pc.Create(fmt.Sprintf("SHARED%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	shared := p.quiesce()
	waitApplied(t, a, shared)
	waitApplied(t, b, shared)

	// Cut both replicas off, then write a tail only the primary has: the
	// writes the failover will sacrifice (they were never acked past the
	// primary, and no quorum was configured).
	a.fol.Repoint(deadAddr)
	b.fol.Repoint(deadAddr)
	for i := 0; i < 3; i++ {
		if _, err := pc.Create(fmt.Sprintf("DOOMED%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	divergent := p.quiesce()
	if divergent <= shared {
		t.Fatalf("divergent lsn %d did not pass shared %d", divergent, shared)
	}
	p.crash()

	// Promote A through the wire verb, exactly as `damocles -promote` does.
	ac := dialT(t, a.addr)
	term, bump, err := ac.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if term != 2 || bump != shared+1 {
		t.Fatalf("Promote = term %d bump %d, want term 2 bump %d", term, bump, shared+1)
	}
	if ri, err := ac.Role(); err != nil || ri.Role != "primary" || ri.Term != 2 {
		t.Fatalf("post-promotion ROLE = %+v, %v, want primary at term 2", ri, err)
	}
	// A double PROMOTE is refused: the node is a primary now.
	if _, _, err := ac.Promote(); err == nil || !strings.Contains(err.Error(), "already a primary") {
		t.Fatalf("second PROMOTE = %v, want an already-a-primary refusal", err)
	}
	// The promoted node accepts writes under the new term.
	if _, err := ac.Create("NEWLINE", "HDL_model"); err != nil {
		t.Fatalf("promoted node refused a write: %v", err)
	}
	newLSN := a.quiesce()

	// The surviving follower re-pointed at the new primary converges on
	// the new lineage, term bump included.
	b.fol.Repoint(a.addr)
	waitApplied(t, b, newLSN)
	if got := b.fol.Term(); got != 2 {
		t.Fatalf("re-pointed follower term %d, want 2", got)
	}
	if av, bv := saveBytes(t, a.fol.DB()), saveBytes(t, b.fol.DB()); !bytes.Equal(av, bv) {
		t.Fatalf("survivor diverged from the new primary:\n--- new primary\n%s\n--- survivor\n%s", av, bv)
	}

	// The revived old primary, restarted as a follower of A, announces a
	// term-1 position inside the new lineage — its unreplicated tail —
	// and must be refused terminally, not silently merged.
	ghost, err := replica.Start(p.dir, a.addr, journal.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Abort()
	deadline := time.Now().Add(15 * time.Second)
	for ghost.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("deposed primary was never fenced")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(ghost.Err().Error(), "divergent tail") {
		t.Fatalf("deposed primary stopped with %v, want the divergent-tail fence", ghost.Err())
	}
	if got := ghost.AppliedLSN(); got != divergent {
		t.Fatalf("deposed primary's position moved to %d, want the untouched %d", got, divergent)
	}
}

// TestFollowerChainingConverges: a leaf following a mid-tree follower
// (P → A → B) converges byte-identically through the chain, and
// re-pointing the leaf straight at the primary keeps it converging.
func TestFollowerChainingConverges(t *testing.T) {
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	pc := dialT(t, p.addr)
	a := startNode(t, t.TempDir(), p.addr, journal.Options{})
	b := startNode(t, t.TempDir(), a.addr, journal.Options{}) // follows the follower

	var keys []meta.Key
	for i := 0; i < 10; i++ {
		k, err := pc.Create(fmt.Sprintf("CHAIN%d", i), "HDL_model")
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
		if err := pc.PostEvent("ckin", "up", k, "x"); err != nil {
			t.Fatal(err)
		}
	}
	lsn := p.quiesce()
	waitApplied(t, a, lsn)
	waitApplied(t, b, lsn)
	prim := saveBytes(t, p.db)
	if got := saveBytes(t, a.fol.DB()); !bytes.Equal(prim, got) {
		t.Fatal("mid-tree follower diverged from the primary")
	}
	if got := saveBytes(t, b.fol.DB()); !bytes.Equal(prim, got) {
		t.Fatal("leaf follower diverged through the chain")
	}
	// The relay never promises more than the mid-tree node has applied.
	if wm, ap := b.fol.Watermark(), a.fol.AppliedLSN(); wm > ap {
		t.Fatalf("leaf watermark %d passed the mid-tree applied lsn %d", wm, ap)
	}

	// Re-point the leaf from mid-tree to the primary; it must converge on
	// the continued stream without re-applying or skipping history.
	b.fol.Repoint(p.addr)
	for _, k := range keys {
		if err := pc.PostEvent("hdl_sim", "down", k, "good"); err != nil {
			t.Fatal(err)
		}
	}
	lsn = p.quiesce()
	waitApplied(t, b, lsn)
	if got := saveBytes(t, b.fol.DB()); !bytes.Equal(saveBytes(t, p.db), got) {
		t.Fatal("re-pointed leaf diverged from the primary")
	}
	if err := b.fol.Err(); err != nil {
		t.Fatalf("leaf reported a terminal error after re-pointing: %v", err)
	}
}

// TestQuorumAckDegradation: with -ack 1 and no follower, a write commits
// locally but degrades to an explicit quorum-timeout error; with a
// follower attached it is acknowledged normally; after the follower dies
// the degradation returns — and no write is ever lost.
func TestQuorumAckDegradation(t *testing.T) {
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1},
		server.WithQuorum(1, 2*time.Second))
	pc := dialT(t, p.addr)

	// No follower: the ack must degrade loudly, never block forever.
	_, err := pc.Create("LONE", "HDL_model")
	if err == nil || !strings.Contains(err.Error(), "quorum-timeout") {
		t.Fatalf("unreplicated write = %v, want a quorum-timeout degradation", err)
	}
	// ...but the write is committed locally all the same.
	if !p.db.HasOID(meta.Key{Block: "LONE", View: "HDL_model", Version: 1}) {
		t.Fatal("quorum-timeout lost the locally committed write")
	}
	if p.w.CommittedLSN() < p.w.LastLSN() {
		t.Fatalf("lsn %d not committed (watermark %d)", p.w.LastLSN(), p.w.CommittedLSN())
	}

	// A follower attaching restores the quorum: the same write shape now
	// acknowledges cleanly once the follower's ack covers it.
	a := startNode(t, t.TempDir(), p.addr, journal.Options{})
	waitApplied(t, a, p.w.LastLSN())
	if _, err := pc.Create("QUORATE", "HDL_model"); err != nil {
		t.Fatalf("replicated write failed its quorum: %v", err)
	}
	waitApplied(t, a, p.w.LastLSN())
	if st := a.fol.Stats(); st.Acks == 0 {
		t.Fatalf("follower sent no acks: %+v", st)
	}

	// Kill the follower: writes degrade again, still without loss.
	a.stop()
	_, err = pc.Create("DEGRADED", "HDL_model")
	if err == nil || !strings.Contains(err.Error(), "quorum-timeout") {
		t.Fatalf("write after follower death = %v, want a quorum-timeout degradation", err)
	}
	if !p.db.HasOID(meta.Key{Block: "DEGRADED", View: "HDL_model", Version: 1}) {
		t.Fatal("post-degradation write lost")
	}
}

// TestRoleVerb: ROLE reports role/term/applied/watermark in one line on
// both sides of the replication boundary, and PROMOTE against a node
// without a hook is a clean refusal.
func TestRoleVerb(t *testing.T) {
	c := newCluster(t, 4, journal.Options{SnapshotEvery: -1})
	c.startFollower()
	pc := c.dial(c.paddr)
	defer pc.Close()
	if _, err := pc.Create("R", "HDL_model"); err != nil {
		t.Fatal(err)
	}
	lsn := c.catchUp()

	ri, err := pc.Role()
	if err != nil {
		t.Fatal(err)
	}
	if ri.Role != "primary" || ri.Term != 1 || ri.Applied != lsn || ri.Watermark != lsn {
		t.Fatalf("primary ROLE = %+v, want primary term 1 at lsn %d", ri, lsn)
	}
	fc := c.dial(c.faddr)
	defer fc.Close()
	fi, err := fc.Role()
	if err != nil {
		t.Fatal(err)
	}
	if fi.Role != "follower" || fi.Term != 1 || fi.Applied != lsn {
		t.Fatalf("follower ROLE = %+v, want follower term 1 applied %d", fi, lsn)
	}
	// The harness follower has no promotion hook: PROMOTE must refuse,
	// and the node must stay a read-only follower.
	if _, _, err := fc.Promote(); err == nil || !strings.Contains(err.Error(), "no promotion hook") {
		t.Fatalf("hookless PROMOTE = %v, want a no-hook refusal", err)
	}
	if _, err := fc.Create("STILL_RO", "HDL_model"); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("follower accepted a write after failed PROMOTE: %v", err)
	}
	// PROMOTE against a primary is refused too.
	if _, _, err := pc.Promote(); err == nil || !strings.Contains(err.Error(), "already a primary") {
		t.Fatalf("primary PROMOTE = %v, want an already-a-primary refusal", err)
	}
}

// TestFollowerBackoffAndStats: a follower facing a dead upstream retries
// under its configured backoff (counting failures), then recovers the
// moment it is re-pointed at a live primary — and its counters tell the
// story.
func TestFollowerBackoffAndStats(t *testing.T) {
	p := startPrimary(t, t.TempDir(), journal.Options{SnapshotEvery: -1})
	pc := dialT(t, p.addr)
	for i := 0; i < 3; i++ {
		if _, err := pc.Create(fmt.Sprintf("BK%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	lsn := p.quiesce()

	fol, err := replica.Start(t.TempDir(), deadAddr, journal.Options{Shards: 4},
		replica.WithBackoff(2*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Abort()
	deadline := time.Now().Add(10 * time.Second)
	for fol.Stats().Failures < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("follower not retrying against a dead upstream: %+v", fol.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if fol.Err() != nil {
		t.Fatalf("dial failures must not be terminal: %v", fol.Err())
	}

	fol.Repoint(p.addr)
	if at, err := fol.WaitApplied(lsn, 20*time.Second); err != nil {
		t.Fatalf("re-pointed follower stuck at %d: %v (terminal: %v)", at, err, fol.Err())
	}
	st := fol.Stats()
	if st.Connects < 1 || st.Records != lsn || st.Bootstraps != 0 || st.Acks == 0 {
		t.Fatalf("stats after recovery = %+v, want ≥1 connect, %d records, 0 bootstraps, ≥1 ack", st, lsn)
	}
}

// TestTailerCompactionDuringPromotion is the promotion/compaction race:
// a chained follower stays attached across a term bump while the new
// primary takes writes and compacts its history in the same window, and
// a cold follower bootstrapping from the compacted post-promotion journal
// still converges — snapshot-carried term table included.
func TestTailerCompactionDuringPromotion(t *testing.T) {
	p := startPrimary(t, t.TempDir(), journal.Options{SegmentBytes: 256, SnapshotEvery: -1})
	pc := dialT(t, p.addr)
	a := startNode(t, t.TempDir(), p.addr, journal.Options{SegmentBytes: 256})
	b := startNode(t, t.TempDir(), a.addr, journal.Options{}) // chained; attached through the bump

	for i := 0; i < 8; i++ {
		if _, err := pc.Create(fmt.Sprintf("PRE%d", i), "HDL_model"); err != nil {
			t.Fatal(err)
		}
	}
	lsn := p.quiesce()
	waitApplied(t, a, lsn)
	waitApplied(t, b, lsn)
	p.crash()

	ac := dialT(t, a.addr)
	if _, _, err := ac.Promote(); err != nil {
		t.Fatal(err)
	}

	// Post-promotion writes race snapshots/compaction on the new primary
	// while B's tailer is live on its journal.
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		wc := dialT(t, a.addr)
		for i := 0; i < 24; i++ {
			if _, err := wc.Create(fmt.Sprintf("POST%d", i), "HDL_model"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		if err := a.fol.Writer().Snapshot(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
	final := a.quiesce()
	// One more compaction so the cold follower's FOLLOW 0 predates every
	// retained segment and must be answered with a snapshot frame.
	if err := a.fol.Writer().Snapshot(); err != nil {
		t.Fatal(err)
	}
	waitApplied(t, b, final)
	if err := b.fol.Err(); err != nil {
		t.Fatalf("chained follower died across the promotion window: %v", err)
	}
	if got := b.fol.Term(); got != 2 {
		t.Fatalf("chained follower term %d after the bump, want 2", got)
	}

	// Cold bootstrap from the compacted post-promotion journal.
	cn := startNode(t, t.TempDir(), a.addr, journal.Options{})
	waitApplied(t, cn, final)
	if st := cn.fol.Stats(); st.Bootstraps == 0 {
		t.Fatalf("cold follower replayed records instead of bootstrapping: %+v", st)
	}
	if got := cn.fol.Term(); got != 2 {
		t.Fatalf("bootstrapped follower term %d, want 2 (term table not carried by the snapshot)", got)
	}
	av := saveBytes(t, a.fol.DB())
	if got := saveBytes(t, b.fol.DB()); !bytes.Equal(av, got) {
		t.Fatal("chained follower diverged across promotion + compaction")
	}
	if got := saveBytes(t, cn.fol.DB()); !bytes.Equal(av, got) {
		t.Fatal("cold-bootstrapped follower diverged from the promoted primary")
	}
}
