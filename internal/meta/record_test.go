package meta

import (
	"bytes"
	"errors"
	"testing"
)

// sliceRecorder accumulates emitted records for inspection, assigning
// consecutive LSNs like the journal writer does.
type sliceRecorder struct{ recs []Record }

func (r *sliceRecorder) Record(rec Record) int64 {
	rec.LSN = int64(len(r.recs) + 1)
	r.recs = append(r.recs, rec)
	return rec.LSN
}

func (r *sliceRecorder) ops() []string {
	out := make([]string, len(r.recs))
	for i, rec := range r.recs {
		out[i] = rec.Op
	}
	return out
}

// TestRecorderCapturesEveryMutationClass replays a recorder's stream into
// a fresh database and expects the canonical Save documents to match —
// the in-memory form of the journal's recovery contract.
func TestRecorderCapturesEveryMutationClass(t *testing.T) {
	rec := &sliceRecorder{}
	db := NewDB()
	db.SetRecorder(rec)

	root, nl := buildHierarchy(t, db)
	if err := db.SetProp(root, "uptodate", "true"); err != nil {
		t.Fatal(err)
	}
	if err := db.UpdateOID(nl, func(o *OID) {
		o.Props["sim_result"] = "good"
		o.Props["tmp"] = "x"
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.DelProp(nl, "tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SnapshotHierarchy("snap", root, FollowAllLinks); err != nil {
		t.Fatal(err)
	}
	if err := db.AddWorkspace("ws", "/proj"); err != nil {
		t.Fatal(err)
	}
	if err := db.BindPath("ws", root, "p/1"); err != nil {
		t.Fatal(err)
	}

	db2 := NewDBWithShards(4)
	for i, r := range rec.recs {
		r.LSN = int64(i + 1)
		if err := db2.ApplyRecord(r); err != nil {
			t.Fatalf("apply record %d (%s): %v", i, r.Op, err)
		}
	}
	var a, b bytes.Buffer
	if err := db.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := db2.Save(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("replayed database differs:\n--- original\n%s\n--- replayed\n%s", a.String(), b.String())
	}
}

// TestRecorderSilentOnNoChange checks the no-op paths emit nothing: an
// UpdateOID that changes nothing, deleting an absent property, a failed
// mutation.
func TestRecorderSilentOnNoChange(t *testing.T) {
	rec := &sliceRecorder{}
	db := NewDB()
	db.SetRecorder(rec)
	k, err := db.NewVersion("cpu", "HDL_model")
	if err != nil {
		t.Fatal(err)
	}
	n := len(rec.recs)

	if err := db.UpdateOID(k, func(o *OID) { _ = o.Props["absent"] }); err != nil {
		t.Fatal(err)
	}
	if err := db.DelProp(k, "absent"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddLink(UseLink, k, k, "", nil, nil); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := db.SetProp(k, "bad name", "x"); err == nil {
		t.Fatal("invalid property name accepted")
	}
	if got := rec.ops()[n:]; len(got) != 0 {
		t.Errorf("no-op mutations emitted records: %v", got)
	}

	// And a change that reverts within one UpdateOID emits nothing either.
	if err := db.SetProp(k, "x", "1"); err != nil {
		t.Fatal(err)
	}
	n = len(rec.recs)
	if err := db.UpdateOID(k, func(o *OID) {
		o.Props["x"] = "2"
		o.Props["x"] = "1"
	}); err != nil {
		t.Fatal(err)
	}
	if got := rec.ops()[n:]; len(got) != 0 {
		t.Errorf("reverted update emitted records: %v", got)
	}
}

// TestApplyRecordRejectsMalformed checks decoding failures and state
// contradictions are loud errors.
func TestApplyRecordRejectsMalformed(t *testing.T) {
	cases := map[string]Record{
		"unknown op":     {Op: "warp", Args: []string{"x"}},
		"oid bad key":    {Op: OpOID, Args: []string{"nokey", "1"}},
		"oid bad seq":    {Op: OpOID, Args: []string{"a,v,1", "NaN"}},
		"oid few args":   {Op: OpOID, Args: []string{"a,v,1"}},
		"update missing": {Op: OpUpdate, Args: []string{"a,v,1", "1", "p", "v"}},
		"update count":   {Op: OpUpdate, Args: []string{"a,v,1", "9", "p"}},
		"link bad id":    {Op: OpLink, Args: []string{"x", "use", "a,v,1", "b,v,1", "", "1", "0"}},
		"dellink absent": {Op: OpDelLink, Args: []string{"7"}},
		"prune absent":   {Op: OpPrune, Args: []string{"a", "v", "1"}},
		"config count":   {Op: OpConfig, Args: []string{"c", "1", "5", "a,v,1"}},
		"bind absent ws": {Op: OpBind, Args: []string{"ws", "a,v,1", "p"}},
	}
	for name, r := range cases {
		db := NewDB()
		if err := db.ApplyRecord(r); err == nil {
			t.Errorf("%s: ApplyRecord accepted %+v", name, r)
		}
	}

	// A duplicate OID record must be a contradiction, not a merge.
	db := NewDB()
	r := Record{Op: OpOID, Args: []string{"a,v,1", "1"}}
	if err := db.ApplyRecord(r); err != nil {
		t.Fatal(err)
	}
	if err := db.ApplyRecord(r); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate oid record: err = %v, want ErrExists", err)
	}
}

// TestApplyRecordEventIsAuditOnly checks the engine's posted-event stream
// replays as a no-op.
func TestApplyRecordEventIsAuditOnly(t *testing.T) {
	db := NewDB()
	if err := db.ApplyRecord(Record{Op: OpEvent, Seq: 9,
		Args: []string{"ckin", "up", "a,v,1", "yves", "note"}}); err != nil {
		t.Fatal(err)
	}
	if s := db.Stats(); s.OIDs != 0 || s.Links != 0 {
		t.Errorf("event record mutated the database: %+v", s)
	}
	if db.Seq() != 9 {
		t.Errorf("event record did not floor the clock: seq=%d", db.Seq())
	}
}
