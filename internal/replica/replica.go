// Package replica ships the append-only journal's record stream from a
// primary DAMOCLES server to live followers — warm standbys that serve
// REPORT/GAP/STATE queries from a mirrored meta-database while refusing
// writes, the read scale-out half of the paper's single project server
// grown to production shape.
//
// The primary side (Source) tails the journal: a follower connects with
// FOLLOW <last-applied-lsn>, gets a snapshot bootstrap if its position
// predates the oldest retained segment, then committed records in strict
// LSN order as the primary flushes them — never a record above the commit
// watermark, so a follower can never hold state a primary crash would
// lose.
//
// The follower side (Follower) applies each record to its own database
// and appends it, with the primary's LSN preserved, to its own local
// journal: the follower's log is record-for-record identical to the
// primary's, a restart resumes from exactly the persisted applied
// position, and the caught-up follower's canonical Save output is
// byte-identical to the primary's.
package replica

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/meta"
	"repro/internal/netfault"
	"repro/internal/server"
	"repro/internal/wire"
)

// DefaultPingInterval is the idle-stream liveness cadence a Source
// ships with: several ticks fit inside the follower's default stall
// timeout, so one lost or late ping never looks like a dead link.
const DefaultPingInterval = 2 * time.Second

// Source serves the primary-side replication stream.  It implements
// server.FollowSource; attach it with server.WithFollowSource.  Each
// follower connection gets its own journal tail at its own position;
// none of them ever blocks the journal writer.
type Source struct {
	w    *journal.Writer
	ping atomic.Int64 // idle ping cadence in nanoseconds; 0 = disabled
}

// NewSource wraps the primary's journal writer.  Streams it serves
// emit liveness pings every DefaultPingInterval while idle; SetPing
// adjusts or disables that.
func NewSource(w *journal.Writer) *Source {
	s := &Source{w: w}
	s.ping.Store(int64(DefaultPingInterval))
	return s
}

// SetPing sets the idle-stream ping cadence for streams served after
// the call; every ≤ 0 disables pings (the pre-liveness silent idle).
func (s *Source) SetPing(every time.Duration) {
	if every < 0 {
		every = 0
	}
	s.ping.Store(int64(every))
}

// ServeFollow streams frames for one follower: an optional snapshot
// bootstrap, then records and caught-up watermarks, encoded as wire
// follow-frame lines, until stop closes (clean shutdown, nil return) or
// send fails (the follower hung up; its error is returned).
func (s *Source) ServeFollow(from, fromTerm int64, stop <-chan struct{}, send func(line string) error) error {
	// A follower whose position or term does not lie on this journal's
	// lineage must be refused loudly: streaming to it would eventually
	// ship records from the NEW history under LSNs the follower already
	// holds from the OLD one, which its duplicate-skip would paper over
	// into silent divergence.  Two cases: a position beyond everything
	// committed here (journal reset or wrong primary), and — with terms —
	// a deposed primary's tail reaching past this lineage's promotion
	// point.  The watermark and the term table only ever grow, so a race
	// with concurrent commits can only make a legitimate position look
	// more legitimate, never a divergent one look acceptable.
	if err := s.w.ValidateFollowPosition(from, fromTerm); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	t := s.w.NewTailer(from)
	t.SetPing(time.Duration(s.ping.Load()))
	defer t.Close()
	for {
		ev, err := t.Next(stop)
		if err != nil {
			if errors.Is(err, journal.ErrTailStopped) {
				return nil
			}
			return err
		}
		switch ev.Kind {
		case journal.FollowRecord:
			err = send(wire.EncodeFollowRecord(ev.Rec.LSN, ev.Rec.Seq, ev.Rec.Op, ev.Rec.Args))
		case journal.FollowSnapshot:
			lines := strings.Split(strings.TrimRight(string(ev.Snapshot), "\n"), "\n")
			err = send(fmt.Sprintf("%s %d %d", wire.FollowFrameSnapshot, ev.SnapLSN, len(lines)))
			for _, l := range lines {
				if err != nil {
					break
				}
				err = send(l)
			}
		case journal.FollowMark:
			err = send(fmt.Sprintf("%s %d", wire.FollowFrameWatermark, ev.Watermark))
		case journal.FollowHealth:
			// The primary's journal degraded: tell the caught-up follower
			// its parked watermark is final until the disk fault clears.
			// Reasons travel as one space-folded token so the line stays
			// trivially tokenizable.
			err = send(fmt.Sprintf("%s degraded %s", wire.FollowFrameHealth,
				wire.Quote(strings.ReplaceAll(ev.Reason, " ", "_"))))
		case journal.FollowPing:
			err = send(fmt.Sprintf("%s %d", wire.FollowFramePing, ev.Watermark))
		}
		if err != nil {
			return err
		}
	}
}

// commitEvery bounds how many applied records may sit in the follower
// journal's in-memory buffer before a commit pushes them to the operating
// system.  A crash loses at most this much re-fetchable progress; the
// stream's caught-up watermark additionally commits on every idle point.
const commitEvery = 256

// Follower is a live replication follower: a local journal directory, the
// mirrored database recovered from it, and a background loop that keeps
// both in step with the primary, reconnecting (and re-bootstrapping when
// left too far behind) as needed.  It implements server.ReadFollower, so
// a read-only server over DB() answers read-your-LSN queries.
type Follower struct {
	dir        string
	w          *journal.Writer
	db         *meta.DB
	backoffMin time.Duration
	backoffMax time.Duration
	stall      time.Duration   // dead-link detector; 0 = legacy unbounded stream reads
	dialMax    time.Duration   // bound on one dial attempt
	dialer     netfault.Dialer // the injectable transport seam

	mu          sync.Mutex
	addr        string // current primary; Repoint swaps it on a live loop
	applied     int64
	watermark   int64 // newest caught-up watermark seen from the primary
	progress    bool  // frames applied since the last reconnect
	sinceCommit int64
	conn        *server.Client
	err         error // terminal replication error; nil while healthy
	advCh       chan struct{}
	repointCh   chan struct{}      // closed and replaced by Repoint: wakes a backoff pause
	dialCancel  context.CancelFunc // cancels the in-flight dial; nil outside one
	freshAt     time.Time          // last upstream freshness evidence; zero = none yet

	upHealth atomic.Value // string: "" unknown/ok, else the upstream's degraded reason

	stats struct {
		connects   atomic.Int64 // successful dials
		failures   atomic.Int64 // failed dials and broken streams
		bootstraps atomic.Int64 // snapshot re-bases
		records    atomic.Int64 // records applied
		acks       atomic.Int64 // ACK lines sent upstream
		stalls     atomic.Int64 // dead links detected by the stall timeout
	}

	stop     chan struct{}
	stopOnce sync.Once
	aborting atomic.Bool
	promoted atomic.Bool
	done     chan struct{}
}

// FollowerStats is a point-in-time copy of the replication loop's
// counters — the observability surface for reconnect churn.
type FollowerStats struct {
	Connects   int64 // successful dials since Start
	Failures   int64 // failed dials and broken streams
	Bootstraps int64 // snapshot re-bases (left behind by compaction)
	Records    int64 // records applied
	Acks       int64 // ACK progress lines sent upstream
	Stalls     int64 // dead links detected by the stall timeout (half-open streams)
}

// Option tunes a Follower.
type Option func(*Follower)

// WithBackoff bounds the reconnect backoff: the first retry waits min,
// each failure doubles the wait up to max, and every wait is jittered
// ±25% so a fleet of followers orphaned by the same primary death does
// not reconnect in lockstep.  The defaults are 50ms and 1s.
func WithBackoff(min, max time.Duration) Option {
	return func(f *Follower) {
		if min > 0 {
			f.backoffMin = min
		}
		if max >= f.backoffMin {
			f.backoffMax = max
		}
	}
}

// DefaultStallTimeout is the follower's dead-link detector default:
// five DefaultPingInterval ticks must go missing in a row before a
// stream is declared dead, so scheduler hiccups never look like
// partitions, while a genuinely half-open link is torn down in seconds
// rather than held forever by TCP's multi-minute patience.
const DefaultStallTimeout = 10 * time.Second

// WithStallTimeout sets how long the follower lets the stream stay
// silent before declaring the link dead — tearing it down, counting a
// stall in Stats, and reconnecting through the normal backoff.  The
// primary pings idle streams (see DefaultPingInterval), so silence past
// a few intervals can only be a dead or half-open connection.  d ≤ 0
// disables the detector (the legacy unbounded read).  The timeout also
// bounds the dial-side FOLLOW handshake: a blackholed primary that
// accepts the TCP connect but never answers is caught here too.
func WithStallTimeout(d time.Duration) Option {
	return func(f *Follower) {
		if d < 0 {
			d = 0
		}
		f.stall = d
	}
}

// WithDialer routes the follower's upstream connections through d — the
// netfault seam: tests and chaos harnesses inject partitions, latency
// and dead links without touching the replication logic.  The default
// is the real network (netfault.System).
func WithDialer(d netfault.Dialer) Option {
	return func(f *Follower) {
		if d != nil {
			f.dialer = d
		}
	}
}

// Start opens (or resumes) the follower's local journal in dir and begins
// replicating from the primary at addr.  The returned follower's database
// is live immediately — recovered to the persisted applied position, then
// mutated in place as records stream in.  opt.Shards should match across
// restarts, like any journal recovery.
func Start(dir, addr string, opt journal.Options, opts ...Option) (*Follower, error) {
	w, db, err := journal.OpenFollower(dir, opt)
	if err != nil {
		return nil, err
	}
	f := &Follower{
		dir:        dir,
		addr:       addr,
		w:          w,
		db:         db,
		backoffMin: 50 * time.Millisecond,
		backoffMax: time.Second,
		stall:      DefaultStallTimeout,
		dialMax:    5 * time.Second,
		dialer:     netfault.System,
		applied:    w.LastLSN(),
		advCh:      make(chan struct{}),
		repointCh:  make(chan struct{}),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for _, o := range opts {
		o(f)
	}
	go f.run()
	return f, nil
}

// DB returns the mirrored database.  It is read-only by contract: local
// writes would fork the replica from its primary.
func (f *Follower) DB() *meta.DB { return f.db }

// AppliedLSN returns the newest primary record applied and persisted.
func (f *Follower) AppliedLSN() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applied
}

// Watermark returns the newest caught-up commit watermark the primary has
// reported — AppliedLSN == Watermark means the follower has seen
// everything the primary had committed at that moment.
func (f *Follower) Watermark() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watermark
}

// Stats returns a copy of the replication loop's counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Connects:   f.stats.connects.Load(),
		Failures:   f.stats.failures.Load(),
		Bootstraps: f.stats.bootstraps.Load(),
		Records:    f.stats.records.Load(),
		Acks:       f.stats.acks.Load(),
		Stalls:     f.stats.stalls.Load(),
	}
}

// Staleness reports the wall-clock age of the follower's last upstream
// freshness evidence — an applied record, a caught-up watermark, or a
// liveness ping — and whether any has arrived at all.  It bounds how old
// the data served from DB() can be relative to the primary: a small age
// means the link was provably alive (and the follower caught up or
// catching up) that recently; a growing age means reads are drifting
// into the past, the thing a half-open link used to hide.  The server's
// ROLE verb surfaces it as staleness=<ms>.
func (f *Follower) Staleness() (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.freshAt.IsZero() {
		return 0, false
	}
	return time.Since(f.freshAt), true
}

// UpstreamHealth reports what the primary last said about its own journal:
// ok is false (with the primary's reason) after a health frame announced
// upstream degradation, and flips back to true the moment records flow
// again — a recovered or replaced primary clears the flag by making
// progress, not by an explicit all-clear frame.
func (f *Follower) UpstreamHealth() (ok bool, reason string) {
	r, _ := f.upHealth.Load().(string)
	return r == "", r
}

// Writer exposes the follower's own journal writer — the chaining handle:
// a Source over it lets this follower serve FOLLOW to downstream
// followers, relaying the watermark only up to its own committed
// position, and after Promote it is the new primary's journal.
func (f *Follower) Writer() *journal.Writer { return f.w }

// Term returns the election term of the follower's replicated history.
func (f *Follower) Term() int64 { return f.w.Term() }

// Repoint re-targets the follower at a different primary: the current
// stream (if any) is hung up, an in-flight dial is canceled, a backoff
// pause is cut short, and the reconnect loop dials the new address
// immediately — re-pointing during an outage (the very moment it
// happens) must not wait out a dial to a dead address or a backoff
// earned by one.  Duplicate records across the switch are skipped, a
// gap is a terminal error, and a divergent-lineage upstream is refused
// by term fencing — re-pointing is safe exactly when the new upstream
// shares the follower's history.
func (f *Follower) Repoint(addr string) {
	f.mu.Lock()
	f.addr = addr
	c := f.conn
	cancel := f.dialCancel
	close(f.repointCh)
	f.repointCh = make(chan struct{})
	f.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if c != nil {
		c.Hangup()
	}
}

// Promote flips the follower into a primary: the replication loop is
// stopped and drained (its tail committed), the term is bumped with a
// journal record, and the journal writer switches to primary mode —
// ready for an engine (AttachJournal) and a Source over Writer().  After
// a successful Promote the replication loop is done (Done() is closed
// with Promoted() true, Err() nil) and Close/Abort must not be called:
// the journal now belongs to the primary plane.
//
// The hinge of crash atomicity is the term-bump record's commit: a crash
// before it leaves a valid follower journal (still a follower), a crash
// after it a valid primary journal at the new term (recovery seeds the
// term from the record).  There is no intermediate state on disk.
func (f *Follower) Promote() (term, lsn int64, err error) {
	f.promoted.Store(true)
	f.halt()
	if ferr := f.Err(); ferr != nil {
		f.promoted.Store(false)
		return 0, 0, fmt.Errorf("replica: promote: replication failed terminally: %w", ferr)
	}
	term, lsn, err = f.w.Promote()
	if err != nil {
		f.promoted.Store(false)
		return 0, 0, err
	}
	f.mu.Lock()
	f.applied = lsn
	f.wakeLocked()
	f.mu.Unlock()
	return term, lsn, nil
}

// Promoted reports whether Promote has stopped this follower; daemons
// watching Done use it to tell a promotion from a terminal failure.
func (f *Follower) Promoted() bool { return f.promoted.Load() }

// Done is closed when the replication loop has stopped — after Close or
// Abort, or on a terminal error (see Err).  Daemons select on it so a
// dead loop is surfaced instead of silently serving ever-staler state.
func (f *Follower) Done() <-chan struct{} { return f.done }

// Err returns the terminal replication error, if the loop has given up
// (an LSN gap or apply failure — never a mere disconnect, which retries).
func (f *Follower) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// WaitApplied blocks until the follower has applied at least lsn, the
// timeout expires, or replication fails terminally.  It returns the
// applied position at return time.
func (f *Follower) WaitApplied(lsn int64, timeout time.Duration) (int64, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		f.mu.Lock()
		applied, err, ch := f.applied, f.err, f.advCh
		f.mu.Unlock()
		if applied >= lsn {
			return applied, nil
		}
		if err != nil {
			return applied, err
		}
		select {
		case <-ch:
		case <-f.done:
			return f.AppliedLSN(), fmt.Errorf("replica: follower stopped at lsn %d, wanted %d", f.AppliedLSN(), lsn)
		case <-timer.C:
			return applied, fmt.Errorf("replica: timeout at lsn %d, wanted %d", applied, lsn)
		}
	}
}

// Close stops replicating and closes the local journal cleanly (final
// commit and snapshot), so the next Start replays nothing.
func (f *Follower) Close() error {
	f.halt()
	return f.w.Close()
}

// Abort stops replicating and drops the journal without flushing its
// buffer — the crash-simulation exit.  At most commitEvery records of
// re-fetchable progress are lost; the on-disk log stays valid and a
// restarted follower resumes from its persisted position, re-fetching
// (and duplicate-skipping across) the lost tail.  The aborting flag
// suppresses the loop's park-commit: without it, every Abort would flush
// the buffer on the way out and the "crash" would never lose anything.
func (f *Follower) Abort() {
	f.aborting.Store(true)
	f.halt()
	f.w.Abort()
}

func (f *Follower) halt() {
	f.stopOnce.Do(func() {
		close(f.stop)
		f.mu.Lock()
		if f.conn != nil {
			f.conn.Hangup() // unblock a read parked on the stream
		}
		if f.dialCancel != nil {
			f.dialCancel() // unblock a dial parked on a blackholed address
		}
		f.mu.Unlock()
	})
	<-f.done
}

// terminalError marks an apply-side failure that must stop the loop:
// reconnecting cannot fix a gap or a record the database refuses.
type terminalError struct{ err error }

func (t terminalError) Error() string { return t.err.Error() }

// dial opens one upstream connection through the injectable dialer.
// The attempt is bounded by dialMax and cancelable by Repoint and halt
// — a dial parked on a blackholed address must not pin the loop to a
// primary the caller already knows is gone.  The resulting client gets
// the stall timeout both as its handshake bound (a half-open accept
// that never answers FOLLOW dies here) and as its per-frame stream
// deadline.
func (f *Follower) dial() (*server.Client, error) {
	f.mu.Lock()
	addr := f.addr
	ctx, cancel := context.WithTimeout(context.Background(), f.dialMax)
	f.dialCancel = cancel
	f.mu.Unlock()
	conn, err := f.dialer.DialContext(ctx, "tcp", addr)
	f.mu.Lock()
	f.dialCancel = nil
	f.mu.Unlock()
	cancel()
	if err != nil {
		return nil, err
	}
	c := server.NewClient(conn, f.stall)
	c.StreamTimeout = f.stall
	return c, nil
}

func (f *Follower) run() {
	defer close(f.done)
	delay := f.backoffMin
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		c, err := f.dial()
		if err != nil {
			f.stats.failures.Add(1)
			if !f.pause(&delay) {
				return
			}
			continue
		}
		f.stats.connects.Add(1)
		f.mu.Lock()
		f.conn = c
		f.progress = false
		select {
		case <-f.stop:
			// halt() may have swept before the connection was registered;
			// it would then never see it to hang it up.
			f.conn = nil
			f.mu.Unlock()
			c.Hangup()
			return
		default:
		}
		f.mu.Unlock()
		err = c.FollowFrom(f.AppliedLSN(), f.w.Term(), f.apply)
		if err != nil {
			f.stats.failures.Add(1)
			// A read-deadline expiry on the stream is the stall detector
			// firing: the link went silent past the timeout while a pinged
			// primary would have spoken — a dead or half-open connection,
			// counted separately from ordinary breaks.
			if errors.Is(err, server.ErrTimeout) {
				f.stats.stalls.Add(1)
			}
		}
		c.Hangup()
		f.mu.Lock()
		f.conn = nil
		madeProgress := f.progress
		f.mu.Unlock()
		// Park whatever the stream delivered before the break — unless
		// this is a crash-simulating Abort, whose whole point is losing
		// the uncommitted tail.
		if !f.aborting.Load() {
			if cerr := f.w.Commit(); cerr != nil {
				err = terminalError{cerr}
			}
		}
		// A rejection or a primary-reported stream failure cannot be
		// fixed by reconnecting with the same position: wrong primary,
		// reset primary history, or tail corruption.  Retrying forever
		// would make dead replication look like a healthy idle follower.
		if errors.Is(err, server.ErrFollowRefused) || errors.Is(err, server.ErrFollowStream) {
			err = terminalError{err}
		}
		var te terminalError
		if errors.As(err, &te) {
			f.mu.Lock()
			f.err = te.err
			f.wakeLocked()
			f.mu.Unlock()
			return
		}
		select {
		case <-f.stop:
			return
		default:
		}
		if madeProgress {
			delay = f.backoffMin
		}
		if !f.pause(&delay) {
			return
		}
	}
}

// wakeLocked broadcasts a state change to every WaitApplied waiter by
// closing and replacing the watch channel.  Callers hold f.mu; every
// path that changes applied/err must come through here or a waiter on
// the skipped path sleeps until its timeout.
func (f *Follower) wakeLocked() {
	close(f.advCh)
	f.advCh = make(chan struct{})
}

// pause sleeps the current backoff — jittered ±25% so orphaned followers
// decorrelate — doubles it up to the configured cap, and reports whether
// the loop should continue.  A Repoint cuts the sleep short and resets
// the ladder: the backoff was earned against the old address, and the
// new one deserves an immediate, fresh attempt.
func (f *Follower) pause(delay *time.Duration) bool {
	d := *delay
	if j := int64(d / 4); j > 0 {
		d += time.Duration(rand.Int64N(2*j) - j)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	if *delay < f.backoffMax {
		*delay *= 2
		if *delay > f.backoffMax {
			*delay = f.backoffMax
		}
	}
	f.mu.Lock()
	repoint := f.repointCh
	f.mu.Unlock()
	select {
	case <-f.stop:
		return false
	case <-repoint:
		*delay = f.backoffMin
		return true
	case <-t.C:
		return true
	}
}

// sendAck reports the follower's applied-and-committed position upstream
// on the live stream.  Called at every commit point; a send failure is
// ignored here — the broken transport surfaces on the stream's read side
// and triggers the normal reconnect.
func (f *Follower) sendAck(lsn int64) {
	f.mu.Lock()
	c := f.conn
	f.mu.Unlock()
	if c == nil {
		return
	}
	if c.SendAck(lsn) == nil {
		f.stats.acks.Add(1)
	}
}

// apply consumes one stream frame.  Errors it returns deliberately are
// terminal; transport-level failures surface from Follow itself and lead
// to a reconnect.
func (f *Follower) apply(fr server.FollowFrame) error {
	switch {
	case fr.Rec != nil:
		if err := f.w.ApplyAppend(*fr.Rec); err != nil {
			return terminalError{err}
		}
		f.upHealth.Store("") // records flowing again: upstream recovered
		f.stats.records.Add(1)
		f.mu.Lock()
		f.applied = fr.Rec.LSN
		f.freshAt = time.Now()
		f.progress = true
		f.sinceCommit++
		flush := f.sinceCommit >= commitEvery
		if flush {
			f.sinceCommit = 0
		}
		f.wakeLocked()
		f.mu.Unlock()
		if flush {
			if err := f.w.Commit(); err != nil {
				return terminalError{err}
			}
			f.sendAck(fr.Rec.LSN)
		}

	case fr.Snapshot != nil:
		if err := f.w.BootstrapSnapshot(fr.SnapLSN, fr.Snapshot); err != nil {
			return terminalError{err}
		}
		f.stats.bootstraps.Add(1)
		f.mu.Lock()
		f.applied = fr.SnapLSN
		f.freshAt = time.Now()
		f.progress = true
		f.sinceCommit = 0
		f.wakeLocked()
		f.mu.Unlock()
		f.sendAck(fr.SnapLSN)

	case fr.Mark:
		// Idle point: the primary has nothing more committed.  Make the
		// applied tail durable so a crash resumes from here.
		if err := f.w.Commit(); err != nil {
			return terminalError{err}
		}
		f.mu.Lock()
		f.watermark = fr.Watermark
		f.freshAt = time.Now()
		applied := f.applied
		f.sinceCommit = 0
		f.wakeLocked()
		f.mu.Unlock()
		f.sendAck(applied)

	case fr.Ping:
		// Idle-stream liveness tick: the primary is alive and still caught
		// up at PingLSN, it just has nothing to ship — freshness evidence
		// without data.  The tailer only pings from its caught-up state,
		// so PingLSN is a watermark this stream has fully delivered.
		f.mu.Lock()
		if fr.PingLSN > f.watermark {
			f.watermark = fr.PingLSN
		}
		f.freshAt = time.Now()
		f.wakeLocked()
		f.mu.Unlock()

	case fr.Health:
		// Upstream degraded: the parked watermark is final until its disk
		// fault clears.  Remember why, for this node's own ROLE health and
		// operators asking the replica what happened to its primary.
		reason := fr.HealthReason
		if reason == "" {
			reason = "upstream degraded"
		}
		f.upHealth.Store(reason)
	}
	return nil
}
