package meta

import (
	"fmt"
	"sort"
)

// Workspace models a data repository associated with the meta-database.
// DAMOCLES "manages data repositories, called workspaces, by associating
// them to a meta-database".  The workspace maps OIDs to storage locations
// (paths in the repository); the design data itself lives outside the
// meta-database.
type Workspace struct {
	Name string

	// Root is the repository location, e.g. a directory path.
	Root string

	// paths maps an OID to its location relative to Root.
	paths map[Key]string
}

func (w *Workspace) clone() *Workspace {
	c := &Workspace{Name: w.Name, Root: w.Root, paths: make(map[Key]string, len(w.paths))}
	for k, p := range w.paths {
		c.paths[k] = p
	}
	return c
}

// Path returns the storage location of an OID within the workspace.
func (w *Workspace) Path(k Key) (string, bool) {
	p, ok := w.paths[k]
	return p, ok
}

// Keys returns the OIDs bound in this workspace, sorted.
func (w *Workspace) Keys() []Key {
	keys := make([]Key, 0, len(w.paths))
	for k := range w.paths {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

// AddWorkspace registers a data repository with the meta-database.
func (db *DB) AddWorkspace(name, root string) error {
	if err := ValidateName(name); err != nil {
		return fmt.Errorf("workspace: %w", err)
	}
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.workspaces[name]; ok {
		return fmt.Errorf("workspace %q: %w", name, ErrExists)
	}
	w := &Workspace{Name: name, Root: root, paths: make(map[Key]string)}
	db.workspaces[name] = w
	tok := db.beginMut(OpWorkspace, 0, func() []string { return []string{name, root} })
	if tok.on {
		db.histWorkspacePushLocked(name, tok.s, w.clone())
	}
	db.endMut(tok)
	return nil
}

// BindPath records where an OID's design data lives inside a workspace.
func (db *DB) BindPath(workspace string, k Key, path string) error {
	db.ctl.Lock()
	defer db.ctl.Unlock()
	w, ok := db.workspaces[workspace]
	if !ok {
		return fmt.Errorf("workspace %q: %w", workspace, ErrNotFound)
	}
	if !db.hasOIDShard(k) {
		return fmt.Errorf("oid %v: %w", k, ErrNotFound)
	}
	w.paths[k] = path
	tok := db.beginMut(OpBind, 0, func() []string {
		return []string{workspace, k.String(), path}
	})
	if tok.on {
		db.histWorkspacePushLocked(workspace, tok.s, w.clone())
	}
	db.endMut(tok)
	return nil
}

// hasOIDShard checks OID existence under the owning shard's read lock; the
// caller may hold the control-plane lock (ctl orders before shards).
func (db *DB) hasOIDShard(k Key) bool {
	sh := db.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.oids[k]
	return ok
}

// GetWorkspace returns a copy of the named workspace.
func (db *DB) GetWorkspace(name string) (*Workspace, error) {
	db.ctl.RLock()
	defer db.ctl.RUnlock()
	w, ok := db.workspaces[name]
	if !ok {
		return nil, fmt.Errorf("workspace %q: %w", name, ErrNotFound)
	}
	return w.clone(), nil
}

// WorkspaceNames lists registered workspaces in sorted order.
func (db *DB) WorkspaceNames() []string {
	db.ctl.RLock()
	defer db.ctl.RUnlock()
	names := make([]string, 0, len(db.workspaces))
	for n := range db.workspaces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
