package repro

// Soak test: the "soak" load scenario — sustained mixed open-loop
// traffic (check-in batches, report/gap storms, workspace churn,
// blueprint swaps) driven by the internal/load harness against an
// in-process server, then the full invariant audit: exact
// client/server accounting reconciliation, unbroken version chains,
// and a persistence round trip.  The workload is the same declarative
// spec cmd/loadgen runs (load.Preset("soak")), so the soak and the
// harness cannot drift apart.  Skipped with -short.

import (
	"bytes"
	"testing"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/load"
	"repro/internal/meta"
	"repro/internal/server"
	"repro/internal/state"
)

func TestSoakWorkloadWithServer(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	bp, err := cli.LoadBlueprint("")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spec, err := load.Preset("soak")
	if err != nil {
		t.Fatal(err)
	}
	r := &load.Runner{Spec: spec, Primary: addr, Logf: t.Logf}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The open-loop contract: every intended arrival was dispatched (the
	// backlog never overflowed) and every dispatched op completed.
	if res.Dropped != 0 {
		t.Errorf("dropped %d arrivals", res.Dropped)
	}
	if res.Dispatched != res.Arrivals {
		t.Errorf("dispatched %d of %d arrivals", res.Dispatched, res.Arrivals)
	}
	if res.Completed != res.Dispatched {
		t.Errorf("completed %d of %d dispatched", res.Completed, res.Dispatched)
	}
	if res.ErrorsAll != 0 {
		t.Fatalf("soak saw %d op errors (kinds: %v)", res.ErrorsAll, res.ErrorKinds)
	}
	for _, class := range []string{load.OpCheckin, load.OpChurn, load.OpReport, load.OpStorm, load.OpState, load.OpSwap} {
		op := res.Ops[class]
		if op == nil || op.Count == 0 {
			t.Errorf("op class %q never ran", class)
		}
	}

	// Exact accounting reconciliation, loadgen-side vs server-side: the
	// pool plus one OID per churn op is every OID the server should hold,
	// one link per churn op is every link, and none of the shed/refusal
	// counters may have fired on an unloaded-enough in-process run.
	churn := res.Ops[load.OpChurn].Count
	if want := int64(res.Spec.Blocks) + churn; res.Server["oids"] != want {
		t.Errorf("server oids=%d, loadgen accounting says %d (pool %d + churn %d)",
			res.Server["oids"], want, res.Spec.Blocks, churn)
	}
	if res.Server["links"] != churn {
		t.Errorf("server links=%d, churn created %d", res.Server["links"], churn)
	}
	for _, counter := range []string{"conns_shed", "inflight_shed", "readonly_refused", "degraded_refused", "batch_oversize", "panics"} {
		if v, ok := res.Server[counter]; !ok {
			t.Errorf("STATS missing counter %q", counter)
		} else if v != 0 {
			t.Errorf("server %s=%d on a clean soak", counter, v)
		}
	}
	// Every checkin batch posts exactly Batch events.
	if want := res.Ops[load.OpCheckin].Count * int64(res.Spec.Batch); res.Server["posted"] < want {
		t.Errorf("server posted=%d < %d checkin events", res.Server["posted"], want)
	}

	db := eng.DB()
	stats := db.Stats()
	// No chain ever skips or repeats versions (pruning never ran here).
	for _, bv := range db.BlockViews() {
		vs := db.Versions(bv.Block, bv.View)
		for i, v := range vs {
			if v != i+1 {
				t.Fatalf("chain %v broken: %v", bv, vs)
			}
		}
	}
	// Engine accounting is self-consistent.
	es := eng.Stats()
	if es.Deliveries < es.Posted {
		t.Errorf("deliveries %d < posted %d", es.Deliveries, es.Posted)
	}
	if es.OIDsCreated != int64(stats.OIDs) {
		t.Errorf("engine created %d, database holds %d", es.OIDsCreated, stats.OIDs)
	}

	// Full persistence round trip of the soaked database.
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadDB(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Stats() != stats {
		t.Errorf("reload stats differ: %+v vs %+v", db2.Stats(), stats)
	}
	rep1 := state.Report(db, eng.Blueprint())
	rep2 := state.Report(db2, eng.Blueprint())
	if len(rep1) != len(rep2) {
		t.Fatalf("report sizes differ: %d vs %d", len(rep1), len(rep2))
	}
	for i := range rep1 {
		if rep1[i].Key != rep2[i].Key || rep1[i].Ready != rep2[i].Ready {
			t.Errorf("report row %d differs: %+v vs %+v", i, rep1[i], rep2[i])
		}
	}
}
