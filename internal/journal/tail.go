package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/faultfs"
	"repro/internal/meta"
)

// ErrTailStopped reports that a Tailer's stop channel (or its Writer)
// closed while waiting for the next committed record.
var ErrTailStopped = errors.New("journal: tail stopped")

// FollowEventKind discriminates the three things a tail can produce.
type FollowEventKind int

const (
	// FollowRecord delivers one committed record, in strict LSN order.
	FollowRecord FollowEventKind = iota
	// FollowSnapshot delivers a whole-database bootstrap document: the
	// requested position is older than the oldest retained segment, so the
	// follower must re-base on the snapshot before records resume.
	FollowSnapshot
	// FollowMark reports the commit watermark when the tail catches up —
	// the follower's "you have seen everything committed so far" signal.
	FollowMark
	// FollowHealth reports that the journal behind this tail degraded: the
	// watermark this stream is parked at is final — the primary refuses
	// writes until the disk fault is resolved — and Reason says why.  It is
	// delivered at most once per tail, only when caught up, so a follower
	// never mistakes a wedged primary for a merely idle one.
	FollowHealth
	// FollowPing is the idle-stream liveness tick: the tail is caught up
	// and nothing has committed for one ping interval, so the stream
	// proves it is alive rather than staying silent.  Watermark carries
	// the current commit position; a follower at that position treats the
	// ping as freshness evidence, and its absence — past the stall
	// timeout — as a dead link.  Only emitted when SetPing armed it.
	FollowPing
)

// FollowEvent is one step of a journal tail.
type FollowEvent struct {
	Kind FollowEventKind

	// Rec is set for FollowRecord.
	Rec meta.Record

	// SnapLSN/Snapshot are set for FollowSnapshot: the document reflects
	// every record with LSN ≤ SnapLSN, and records resume at SnapLSN+1.
	SnapLSN  int64
	Snapshot []byte

	// Watermark is set for FollowMark and FollowHealth.
	Watermark int64

	// Reason is set for FollowHealth: the degraded journal's sticky error.
	Reason string
}

// Tailer reads a live journal from a given position: retained history from
// the segment files, then new records as the Writer commits them.  It is
// the primary-side half of replication — one Tailer per follower, each at
// its own position, none blocking the Writer.  A Tailer never delivers a
// record above the commit watermark: what it ships is exactly what a
// primary crash would preserve, so a follower can never run ahead of its
// primary's recovery.
//
// A Tailer is not safe for concurrent use.  Close releases the open
// segment handle; it does not unblock a concurrent Next (close the stop
// channel for that).
type Tailer struct {
	w          *Writer
	next       int64 // LSN of the next record to deliver
	hdrTerm    int64 // newest segment-header term seen; headers must never regress
	f          faultfs.File
	buf        []byte
	scratch    []byte
	sentMark   bool
	sentHealth bool          // the one FollowHealth event has been delivered
	ping       time.Duration // idle-stream liveness tick cadence; 0 = silent idle
}

// SetPing arms the idle-stream liveness tick: whenever the tail is
// caught up and nothing commits for every ms, Next returns a FollowPing
// event instead of blocking silently.  0 disables (the legacy silent
// idle).  Must be set before the first Next.
func (t *Tailer) SetPing(every time.Duration) { t.ping = every }

// NewTailer starts a tail that delivers every committed record with LSN
// greater than after (0 tails from the beginning of history).
func (w *Writer) NewTailer(after int64) *Tailer {
	if after < 0 {
		after = 0
	}
	return &Tailer{w: w, next: after + 1, scratch: make([]byte, 64<<10)}
}

// Close releases the tailer's segment handle.
func (t *Tailer) Close() {
	if t.f != nil {
		t.f.Close()
		t.f = nil
	}
}

// Next blocks until the tail can make progress and returns one event: a
// record, a snapshot bootstrap, or a caught-up watermark.  Closing stop
// makes it return ErrTailStopped.
func (t *Tailer) Next(stop <-chan struct{}) (FollowEvent, error) {
	for {
		wm := t.w.CommittedLSN()
		if wm < t.next {
			// Caught up: everything committed so far has been delivered.
			// Report the watermark once, then block for the next commit.
			if !t.sentMark {
				t.sentMark = true
				return FollowEvent{Kind: FollowMark, Watermark: wm}, nil
			}
			// A degraded journal's watermark is final: report it once so a
			// parked follower learns the primary stopped accepting writes
			// instead of waiting forever, then keep blocking — the stream
			// stays open in case the watermark was raced just before the
			// fault, and closes on stop like any idle tail.
			if !t.sentHealth {
				select {
				case <-t.w.healthChan():
					t.sentHealth = true
					_, reason := t.w.Health()
					return FollowEvent{Kind: FollowHealth, Watermark: wm, Reason: reason}, nil
				default:
				}
			}
			var health <-chan struct{}
			if !t.sentHealth {
				health = t.w.healthChan()
			}
			var wake <-chan time.Time
			var timer *time.Timer
			if t.ping > 0 {
				timer = time.NewTimer(t.ping)
				wake = timer.C
			}
			_, ok, woke := t.w.waitCommitted(t.next-1, stop, health, wake)
			if timer != nil {
				timer.Stop()
			}
			if !ok {
				return FollowEvent{}, ErrTailStopped
			}
			if woke {
				return FollowEvent{Kind: FollowPing, Watermark: t.w.CommittedLSN()}, nil
			}
			continue
		}
		t.sentMark = false
		if t.f == nil {
			ev, opened, err := t.locate()
			if err != nil {
				return FollowEvent{}, err
			}
			if !opened {
				return ev, nil // snapshot bootstrap
			}
			continue
		}
		ev, delivered, err := t.scanFrame()
		if err != nil {
			return FollowEvent{}, err
		}
		if delivered {
			return ev, nil
		}
	}
}

// locate opens the segment holding record t.next, or — when that record
// is older than the oldest retained segment — returns the newest snapshot
// as a bootstrap event and re-bases the tail behind it.  Compaction may
// delete files between the directory listing and the open; the listing is
// retried until it is consistent.
func (t *Tailer) locate() (FollowEvent, bool, error) {
	for attempt := 0; attempt < 20; attempt++ {
		entries, err := t.w.fs.ReadDir(t.w.dir)
		if err != nil {
			return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
		}
		var starts []int64
		var snaps []int64
		for _, e := range entries {
			if s, ok := parseSeqName(e.Name(), "journal-", ".log"); ok {
				starts = append(starts, s)
			}
			if s, ok := parseSeqName(e.Name(), "snapshot-", ".json"); ok {
				snaps = append(snaps, s)
			}
		}
		sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

		var seg int64 = -1
		for _, s := range starts {
			if s <= t.next {
				seg = s
			}
		}
		if seg < 0 {
			// The requested position predates every retained segment: the
			// follower is stale (or cold) and must re-base on a snapshot.
			if len(snaps) == 0 || snaps[0] < t.next {
				return FollowEvent{}, false, fmt.Errorf(
					"journal: tail: no segment or snapshot covers lsn %d", t.next)
			}
			doc, err := t.w.fs.ReadFile(filepath.Join(t.w.dir, snapshotName(snaps[0])))
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue // compaction replaced it; re-list
				}
				return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
			}
			lsn := snaps[0]
			t.next = lsn + 1
			t.buf = t.buf[:0]
			return FollowEvent{Kind: FollowSnapshot, SnapLSN: lsn, Snapshot: doc}, false, nil
		}
		f, err := t.w.fs.Open(filepath.Join(t.w.dir, segmentName(seg)))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue // compacted away underneath us; re-list
			}
			return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
		}
		// Read up to a full header; a tiny legacy segment can be shorter
		// than the v2 header, so a short read is parsed, not refused.
		var hdr [segHeaderLen]byte
		n, err := io.ReadFull(f, hdr[:])
		if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && err != io.EOF {
			f.Close()
			return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
		}
		hdrTerm, hdrLen, herr := parseSegHeader(hdr[:n])
		if herr != nil {
			f.Close()
			return FollowEvent{}, false, fmt.Errorf("journal: tail: segment %s: %v", segmentName(seg), herr)
		}
		// Terms only move forward along the journal; a header below one
		// already seen means the directory was shuffled or doctored.
		if hdrTerm < t.hdrTerm {
			f.Close()
			return FollowEvent{}, false, fmt.Errorf(
				"journal: tail: segment %s: header term %d regresses below %d",
				segmentName(seg), hdrTerm, t.hdrTerm)
		}
		t.hdrTerm = hdrTerm
		if _, err := f.Seek(int64(hdrLen), io.SeekStart); err != nil {
			f.Close()
			return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
		}
		t.f = f
		t.buf = t.buf[:0]
		return FollowEvent{}, true, nil
	}
	return FollowEvent{}, false, fmt.Errorf("journal: tail: directory kept changing underneath the listing")
}

// scanFrame reads the current segment forward: it returns the next record
// at or beyond the tail position, rotates to the next segment at a clean
// end-of-file, and reports corruption otherwise.  The caller has already
// established that record t.next is committed (watermark ≥ t.next), so the
// frame bytes are fully visible wherever they live — a partial frame here
// is disk corruption, not a write in progress.
func (t *Tailer) scanFrame() (FollowEvent, bool, error) {
	for {
		if len(t.buf) >= frameHeader {
			n := int(binary.LittleEndian.Uint32(t.buf[0:4]))
			if n > maxRecordLen {
				return FollowEvent{}, false, fmt.Errorf("journal: tail: oversized frame (%d bytes)", n)
			}
			if len(t.buf) >= frameHeader+n {
				payload := t.buf[frameHeader : frameHeader+n]
				if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(t.buf[4:8]) {
					return FollowEvent{}, false, fmt.Errorf("journal: tail: frame checksum mismatch at lsn %d", t.next)
				}
				rec, err := decodePayload(payload)
				if err != nil {
					return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
				}
				t.buf = t.buf[frameHeader+n:]
				if rec.LSN < t.next {
					continue // entered the segment mid-way; below our position
				}
				if rec.LSN != t.next {
					return FollowEvent{}, false, fmt.Errorf(
						"journal: tail: record lsn %d where %d was expected", rec.LSN, t.next)
				}
				t.next++
				return FollowEvent{Kind: FollowRecord, Rec: rec}, true, nil
			}
		}
		n, err := t.f.Read(t.scratch)
		if n > 0 {
			t.buf = append(t.buf, t.scratch[:n]...)
			continue
		}
		if err == io.EOF {
			if len(t.buf) > 0 {
				return FollowEvent{}, false, fmt.Errorf(
					"journal: tail: torn frame before committed lsn %d", t.next)
			}
			// Clean end of segment with a committed record still owed: it
			// lives in a later segment.  Rotate via a fresh locate.
			t.f.Close()
			t.f = nil
			return FollowEvent{}, false, nil
		}
		if err != nil {
			return FollowEvent{}, false, fmt.Errorf("journal: tail: %w", err)
		}
	}
}
