package wrapper

import (
	"errors"
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/meta"
	"repro/internal/tools"
)

func newSession(t *testing.T, opts ...engine.Option) *Session {
	t.Helper()
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(meta.NewDB(), bp, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(eng, tools.NewSuite(99), "tester")
}

func prop(t *testing.T, s *Session, k meta.Key, name string) string {
	t.Helper()
	v, _, err := s.Eng.DB().GetProp(k, name)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFullFlowThroughWrappers drives the complete design flow of Figure 4
// through the wrapper programs: HDL → sim → synthesis → netlist → nl_sim →
// layout → DRC → LVS, asserting tracked state along the way.
func TestFullFlowThroughWrappers(t *testing.T) {
	s := newSession(t)
	// Defective first model.
	hdl1, err := s.CheckinHDL("CPU", 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunHDLSim(hdl1)
	if err != nil {
		t.Fatal(err)
	}
	if res != "3 errors" {
		t.Errorf("hdl_sim = %q", res)
	}
	if got := prop(t, s, hdl1, "sim_result"); got != "3 errors" {
		t.Errorf("sim_result = %q", got)
	}

	// Synthesis is refused: the model has not passed simulation.
	lib, err := s.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Synthesize(hdl1, lib); !errors.Is(err, ErrNotReady) {
		t.Errorf("synthesis of unverified model: %v", err)
	}

	// Fixed model passes and synthesizes.
	hdl2, err := s.CheckinHDL("CPU", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := s.RunHDLSim(hdl2); res != "good" {
		t.Fatalf("hdl_sim = %q", res)
	}
	sch, err := s.Synthesize(hdl2, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := s.RunNetlister(sch)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunNetlistSim(nl); err != nil || res != "good" {
		t.Fatalf("nl_sim = %q %v", res, err)
	}
	// The nl_sim result reached the schematic through the derived link.
	if got := prop(t, s, sch, "nl_sim_res"); got != "good" {
		t.Errorf("schematic nl_sim_res = %q", got)
	}
	if got := prop(t, s, nl, "sim_result"); got != "good" {
		t.Errorf("netlist sim_result = %q", got)
	}

	lay, err := s.PlaceRoute(nl)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunDRC(lay); err != nil {
		t.Fatal(err)
	} else if res == "bad" {
		if err := s.FixLayout(lay); err != nil {
			t.Fatal(err)
		}
		if res, _ := s.RunDRC(lay); res != "good" {
			t.Fatalf("drc after fix = %q", res)
		}
	}
	if got := prop(t, s, lay, "drc_result"); got != "good" {
		t.Errorf("drc_result = %q", got)
	}

	// LVS against the netlist the layout was placed from is equivalent;
	// the event updated the tracked property.
	if res, err := s.RunLVS(lay, nl); err != nil || res != "is_equiv" {
		t.Fatalf("lvs = %q %v", res, err)
	}
	if got := prop(t, s, lay, "lvs_result"); got != "is_equiv" {
		t.Errorf("lvs_result = %q", got)
	}
	// A layout edit (FixLayout) changes content but keeps lineage, so LVS
	// still matches.
	if err := s.FixLayout(lay); err != nil {
		t.Fatal(err)
	}
	if res, err := s.RunLVS(lay, nl); err != nil || res != "is_equiv" {
		t.Errorf("lvs after fix = %q %v", res, err)
	}
}

func TestNetlistSimPermissionDenied(t *testing.T) {
	// The paper's tool-scheduling example: the wrapper refuses to simulate
	// a stale netlist.
	s := newSession(t)
	hdl, err := s.CheckinHDL("CPU", 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunHDLSim(hdl); err != nil {
		t.Fatal(err)
	}
	lib, err := s.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Synthesize(hdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := s.RunNetlister(sch)
	if err != nil {
		t.Fatal(err)
	}
	// A new model version is checked in: everything downstream goes stale.
	hdl2, err := s.CheckinHDL("CPU", 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = hdl2
	if got := prop(t, s, nl, "uptodate"); got != "false" {
		t.Fatalf("netlist uptodate = %q after model change", got)
	}
	if _, err := s.RunNetlistSim(nl); !errors.Is(err, ErrStale) {
		t.Errorf("stale netlist sim: %v, want ErrStale", err)
	}
	// Placement also refuses.
	if _, err := s.PlaceRoute(nl); !errors.Is(err, ErrStale) {
		t.Errorf("stale placement: %v, want ErrStale", err)
	}
}

func TestAutoNetlister(t *testing.T) {
	// Section 3.3: "the netlister has to be invoked every time a new
	// version of schematic is promoted (checked in) to the project
	// workspace" — via the blueprint's exec rule and the AutoExecutor.
	var s *Session
	// Two-phase construction: the executor needs the session.
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	reg := exec.NewRegistry()
	eng, err := engine.New(meta.NewDB(), bp, engine.WithExecutor(reg))
	if err != nil {
		t.Fatal(err)
	}
	s = NewSession(eng, tools.NewSuite(7), "auto")
	auto := s.AutoExecutor()
	reg.Register("netlister", func(inv exec.Invocation) error { return auto.Exec(inv) })

	hdl, err := s.CheckinHDL("CPU", 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunHDLSim(hdl); err != nil {
		t.Fatal(err)
	}
	lib, err := s.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	// Synthesize checks the schematic in, which fires the exec rule, which
	// runs the netlister automatically.
	if _, err := s.Synthesize(hdl, lib); err != nil {
		t.Fatal(err)
	}
	nl, err := eng.DB().Latest("CPU", "netlist")
	if err != nil {
		t.Fatalf("auto netlister did not run: %v", err)
	}
	if _, ok := s.Suite.Store.Get(nl); !ok {
		t.Error("netlist design data missing")
	}
}

func TestHierarchyComponent(t *testing.T) {
	s := newSession(t)
	hdl, _ := s.CheckinHDL("CPU", 40, 0)
	if _, err := s.RunHDLSim(hdl); err != nil {
		t.Fatal(err)
	}
	lib, _ := s.InstallLibrary("stdlib")
	cpu, err := s.Synthesize(hdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	rhdl, _ := s.CheckinHDL("REG", 10, 0)
	if _, err := s.RunHDLSim(rhdl); err != nil {
		t.Fatal(err)
	}
	reg, err := s.Synthesize(rhdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddComponent(cpu, reg); err != nil {
		t.Fatal(err)
	}
	// Invalidate the parent; the component goes stale through the
	// hierarchy.
	if err := s.checkin(cpu); err != nil {
		t.Fatal(err)
	}
	if got := prop(t, s, reg, "uptodate"); got != "false" {
		t.Errorf("component uptodate = %q", got)
	}
}

func TestWorkspaceBinding(t *testing.T) {
	s := newSession(t)
	if err := s.UseWorkspace("proj", "/repo/proj"); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-use of an existing workspace.
	if err := s.UseWorkspace("proj", "/repo/proj"); err != nil {
		t.Fatal(err)
	}
	hdl, err := s.CheckinHDL("CPU", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.Eng.DB().GetWorkspace("proj")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := ws.Path(hdl)
	if !ok || p != "CPU/HDL_model/v1" {
		t.Errorf("bound path = %q %v", p, ok)
	}
	// Derived data checked in by wrappers binds too.
	if _, err := s.RunHDLSim(hdl); err != nil {
		t.Fatal(err)
	}
	lib, err := s.InstallLibrary("stdlib")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := s.Synthesize(hdl, lib)
	if err != nil {
		t.Fatal(err)
	}
	ws, _ = s.Eng.DB().GetWorkspace("proj")
	if _, ok := ws.Path(sch); !ok {
		t.Error("schematic not bound to workspace")
	}
	if got := len(ws.Keys()); got < 3 {
		t.Errorf("workspace bindings = %d", got)
	}
}

func TestRequireChecks(t *testing.T) {
	s := newSession(t)
	hdl, err := s.CheckinHDL("CPU", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RequireUpToDate(hdl); err != nil {
		t.Errorf("fresh OID stale: %v", err)
	}
	if err := s.Eng.DB().SetProp(hdl, "uptodate", "false"); err != nil {
		t.Fatal(err)
	}
	if err := s.RequireUpToDate(hdl); !errors.Is(err, ErrStale) {
		t.Errorf("err = %v", err)
	}
	if err := s.RequireProp(hdl, "sim_result", "good"); !errors.Is(err, ErrNotReady) {
		t.Errorf("err = %v", err)
	}
	// Missing OID is a hard error, not a policy error.
	ghost := meta.Key{Block: "g", View: "HDL_model", Version: 1}
	if err := s.RequireUpToDate(ghost); err == nil || errors.Is(err, ErrStale) {
		t.Errorf("missing OID: %v", err)
	}
}
