// Command flowsim exercises the tracking system with simulated design
// activity, in-process (no server needed):
//
//	flowsim -mode scenario            # replay the paper's section 3.4 story
//	flowsim -mode workload -steps 500 # random design-team workload
//	flowsim -mode dsm                 # the deep-submicron signoff policy
//
// It prints the resulting project state report and engine statistics, so
// the effect of a policy on change propagation can be inspected directly.
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/cli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowsim: ")
	mode := flag.String("mode", "scenario", "scenario | workload | dsm")
	seed := flag.Int64("seed", 1995, "workload random seed")
	blocks := flag.Int("blocks", 4, "workload block count")
	steps := flag.Int("steps", 200, "workload step count")
	defectRate := flag.Int("defects", 25, "workload edit defect rate (0-100)")
	flag.Parse()

	err := cli.FlowSim(os.Stdout, cli.FlowSimConfig{
		Mode:       *mode,
		Seed:       *seed,
		Blocks:     *blocks,
		Steps:      *steps,
		DefectRate: *defectRate,
	})
	if err != nil {
		log.Fatal(err)
	}
}
