// Package engine implements the BluePrint run-time engine of section 3 of
// the paper: the event-driven machine that processes design events,
// executes run-time rules, applies template rules to new OIDs and links,
// and propagates events across the meta-data relationships.
//
// Design activities post event messages (name, direction, target OID,
// arguments); the engine queues them and processes them first-in first-out.
// Processing one event on its target OID follows the paper's fixed order:
//
//  1. execute the assign actions of the matching run-time rules,
//  2. re-evaluate all continuous assignments of the OID,
//  3. invoke the scripts of the exec (and notify) actions,
//  4. execute the post actions,
//  5. propagate the event across the OID's links, delivering it to every
//     OID at the other end of a link that propagates this event type in the
//     event's direction — and repeat the whole procedure at each receiver.
//
// # Compiled policy
//
// Loading a blueprint (New, SetBlueprint) compiles it into a bpl.Index: the
// effective rules per (view, event) — pre-partitioned into the phase order
// above — and the effective continuous assignments, property templates and
// link templates per view.  Deliveries resolve policy by map lookup instead
// of re-deriving default-view unions per event.  The blueprint and its
// index are immutable and swapped together behind one atomic pointer;
// Drain captures that pointer once per delivery at dequeue time, so a
// SetBlueprint mid-drain (the paper's policy loosening) governs every
// not-yet-delivered event while never splitting one delivery across two
// policies.
//
// # Concurrency model
//
// The meta-database carries its own lock striping; the engine adds a
// single mutex that guards only the wave list, the deferred-exec list and
// the drain bookkeeping.  Activity counters are per-counter atomics (Stats
// never blocks event processing), and audit tracing is gated by a boolean
// fixed at construction, so an engine built with the default NopTracer
// constructs no trace entries at all — no Key.String formatting, no detail
// strings.
//
// Drain is exclusive as an entry point (concurrent calls return
// immediately) but fans out internally: each posted event and its
// propagation closure form a wave, and waves whose footprints are disjoint
// — seed blocks in different connected components under propagating links
// (meta.DB.Component, maintained from the PROPAGATE sets the compiled link
// templates stamp on link instances) — are dispatched to a bounded worker
// pool and drain concurrently.  Waves with overlapping footprints run one
// after another in enqueue order, so for a fixed link topology the final
// state never depends on the worker bound (WithDrainWorkers; see its doc
// for the one caveat — a propagating link created mid-drain joining the
// components of two already-running waves).  A wave is owned by exactly one worker
// while it runs: its item queue, visited set and hop scratch are touched
// lock-free and recycled when the wave completes.  Delivery phases 1 and 2
// batch all property reads and writes of one delivery into a single locked
// round-trip on the owning database shard (meta.DB UpdateOID).
package engine

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// Well-known event names.  Event names are project conventions, not
// language keywords; these are the ones the paper uses.
const (
	// EventCheckin is posted by wrapper programs when a design object is
	// promoted (checked in) to the project workspace.
	EventCheckin = "ckin"
	// EventCreate is posted by the engine itself after a new OID has been
	// created and its templates applied, so blueprints can hook creations.
	EventCreate = "create"
	// EventOutOfDate is the conventional invalidation event.
	EventOutOfDate = "outofdate"
)

// Event is one design event message, as posted by a wrapper program:
//
//	postEvent ckin up reg,verilog,4 "logic sim passed"
type Event struct {
	// Name is the event type, e.g. "ckin", "outofdate", "hdl_sim".
	Name string
	// Dir is the propagation direction through links.
	Dir bpl.Direction
	// Target is the OID the event is addressed to.
	Target meta.Key
	// Args carries designer information, e.g. the interpretation of
	// simulation results ("good", "4 errors").  Rules read it as $arg.
	Args []string
	// User is the designer on whose behalf the event was posted; rules
	// read it as $user.
	User string
}

// String renders the event in postEvent syntax.
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteString(e.Name)
	sb.WriteByte(' ')
	sb.WriteString(e.Dir.String())
	sb.WriteByte(' ')
	sb.WriteString(e.Target.String())
	for _, a := range e.Args {
		sb.WriteString(" \"")
		sb.WriteString(a)
		sb.WriteByte('"')
	}
	return sb.String()
}

// Validate checks the event is well formed.
func (e Event) Validate() error {
	if e.Name == "" {
		return fmt.Errorf("engine: event with empty name")
	}
	if strings.ContainsAny(e.Name, " \t\r\n\",;") {
		return fmt.Errorf("engine: event name %q contains reserved characters", e.Name)
	}
	if err := e.Target.Validate(); err != nil {
		return fmt.Errorf("engine: event %s: %w", e.Name, err)
	}
	return nil
}

// wave identifies one propagation of one event instance through the link
// graph.  All deliveries of the same wave share a visited set, which
// guarantees termination on cyclic link graphs.
//
// A wave owns its delivery queue: while the wave runs, exactly one drain
// worker pops items and appends propagation continuations, so items, head,
// visited and the hops scratch need no locking.  The scheduler only touches
// id, seed, root and running — always under Engine.mu — and reads the
// atomic n for QueueLen.  Waves are recycled through wavePool once fully
// delivered.
type wave struct {
	id   int64
	seed string // block of the origin event, the footprint seed

	// root caches the seed block's connected component under propagating
	// links (meta.DB.Component) — the wave's conservative footprint.  Two
	// waves with different roots cannot touch a common OID and may drain
	// concurrently.  Guarded by Engine.mu; invalidated when the database's
	// component generation moves.
	root    string
	rootSet bool
	running bool // claimed by a drain worker; guarded by Engine.mu

	visited map[meta.Key]bool
	items   []queueItem // FIFO: items[head:] are pending
	head    int
	n       atomic.Int64 // pending item count, read lock-free by QueueLen
	hops    []meta.Key   // propagation scratch, reused across deliveries
}

// queueItem is one pending delivery.
type queueItem struct {
	ev Event
	// skipRules marks propagate-only deliveries: a "post EVENT dir" action
	// without a target view propagates the event directly from the current
	// OID, without re-running local rules on it.
	skipRules bool
	// hops counts propagation steps since the wave's origin; the
	// termination backstop when wave dedup is ablated (WithWaveDedup).
	hops int
}
