// Package load is the open-loop load-generation harness behind
// cmd/loadgen: arrival-rate schedules that never stall the clock (so
// coordinated omission is measured, not hidden), declarative mixed-op
// scenarios against a real damocles cluster, HDR-style latency
// histograms, replication-lag sampling, and a chaos driver that kills
// primaries mid-traffic and measures the recovery.  Results are emitted
// as LOAD_<n>.json next to the BENCH files — see docs/LOAD.md.
package load

import (
	"fmt"
	"math"
	"math/bits"
	"time"
)

// histSubBits sets the histogram resolution: each power-of-two range is
// split into 2^histSubBits linear sub-buckets, so a recorded value's
// bucket upper bound overstates it by at most 1/2^histSubBits (≈1.6%).
const histSubBits = 6

// histBuckets spans 1ns .. ~2^62ns (≈146 years) — every representable
// latency lands in a bucket, the last one catching the absurd tail.
const histBuckets = (63-histSubBits)<<histSubBits + 1<<(histSubBits+1)

// Histogram is a log-bucketed latency histogram in the HDR spirit:
// constant-size, constant-time Record, mergeable by bucket-wise addition
// (merge order cannot change any quantile), with quantiles read as bucket
// upper bounds so an estimate never understates the true latency and
// overstates it by at most ~1.6%.  The zero value is ready to use.
// Histogram is not goroutine-safe; the harness keeps one per worker and
// merges at the end.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    uint64 // ∑ recorded ns, for Mean
	min    uint64
	max    uint64
}

// bucketIndex maps a nanosecond value to its bucket.  Values below
// 2^(histSubBits+1) map exactly (index = value); above, the top
// histSubBits+1 bits of the mantissa select a sub-bucket within the
// value's power-of-two range.
func bucketIndex(v uint64) int {
	if v < 1<<(histSubBits+1) {
		return int(v)
	}
	h := uint(bits.Len64(v)) - histSubBits - 1
	i := int(h)<<histSubBits + int(v>>h)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketMax is the largest value that maps to bucket i — the quantile
// read-out point, so estimates bound the true value from above.
func bucketMax(i int) uint64 {
	if i < 1<<(histSubBits+1) {
		return uint64(i)
	}
	h := uint(i>>histSubBits) - 1
	base := uint64(i) - uint64(h)<<histSubBits
	return (base+1)<<h - 1
}

// Record adds one latency observation.  Negative durations clamp to zero
// (a clock hiccup must not corrupt the distribution).
func (h *Histogram) Record(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += v
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h bucket-wise.  Merging is associative and
// commutative — (a+b)+c and a+(b+c) are bit-identical — so per-worker
// histograms can be combined in any order.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Count reports the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Max reports the largest recorded value (0 when empty).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Min reports the smallest recorded value (0 when empty).
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Mean reports the arithmetic mean of recorded values (0 when empty).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) of the
// recorded values: the bucket boundary at or above the true quantile,
// within the histogram's ~1.6% relative resolution, capped at the exact
// recorded maximum.  Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			ub := bucketMax(i)
			if ub > h.max {
				ub = h.max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(h.max)
}

// String summarizes the distribution for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p99.9=%v max=%v",
		h.total, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
