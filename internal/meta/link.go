package meta

import (
	"fmt"
	"sort"
	"strings"
)

// LinkClass distinguishes the two classes of links the paper defines:
// use links, which represent hierarchy within a view, and derive links,
// which represent every other relationship.
type LinkClass uint8

const (
	// UseLink represents hierarchy: the From endpoint is the parent
	// (composite) OID and the To endpoint is a hierarchical component.
	// Both endpoints of a use link must have the same view type.
	UseLink LinkClass = iota

	// DeriveLink represents any non-hierarchical relationship: derivation,
	// equivalence, dependency, composition.  The specific relationship is
	// named by the TYPE property, which the paper notes is "in a way, like
	// comments" — it is not interpreted by the engine.
	DeriveLink
)

// String returns the class name used in the BluePrint language and wire
// protocol.
func (c LinkClass) String() string {
	switch c {
	case UseLink:
		return "use"
	case DeriveLink:
		return "derive"
	default:
		return fmt.Sprintf("LinkClass(%d)", uint8(c))
	}
}

// ParseLinkClass parses "use" or "derive".
func ParseLinkClass(s string) (LinkClass, error) {
	switch strings.ToLower(s) {
	case "use":
		return UseLink, nil
	case "derive":
		return DeriveLink, nil
	default:
		return 0, fmt.Errorf("link class %q: %w", s, ErrBadLink)
	}
}

// Common values of the TYPE property on derive links (section 3.2).
const (
	TypeComposition = "composition" // hierarchical decomposition of data
	TypeEquivalence = "equivalence" // alternative representations of the same data
	TypeDependOn    = "depend_on"   // dependency on a tool version or process file
	TypeDeriveFrom  = "derived"     // a view derived from another view
)

// PropType is the name of the link property that records the relationship
// type of a derive link.
const PropType = "TYPE"

// LinkID identifies a link in the meta-database.  IDs are database
// addresses in the paper's terminology: Configurations store them directly.
type LinkID int64

// Link relates two OIDs.  Events propagate through links: an event moving
// "down" travels From→To, an event moving "up" travels To→From.  For a use
// link, From is the parent and To the child, so "down" descends the design
// hierarchy; for a derive link declared in the BluePrint as
// "link_from A ... " inside view B, From is an OID of view A and To an OID
// of view B, so "down" follows the direction of derivation.
type Link struct {
	ID    LinkID
	Class LinkClass
	From  Key
	To    Key

	// Props holds annotation property/value pairs, e.g. TYPE.
	Props map[string]string

	// Propagates is the PROPAGATE property: the set of event names allowed
	// to traverse this link.  An event not in the set stops here.
	Propagates map[string]bool

	// Template records which BluePrint link template decorated this link,
	// or "" for a raw link created outside any template.  The run-time
	// engine uses it to implement the move/copy version-inheritance of
	// links (Figure 3 of the paper).
	Template string

	// Seq is the logical creation timestamp.
	Seq int64
}

// clone returns a deep copy.
func (l *Link) clone() *Link {
	c := &Link{ID: l.ID, Class: l.Class, From: l.From, To: l.To, Template: l.Template, Seq: l.Seq}
	c.Props = make(map[string]string, len(l.Props))
	for k, v := range l.Props {
		c.Props[k] = v
	}
	c.Propagates = make(map[string]bool, len(l.Propagates))
	for k, v := range l.Propagates {
		c.Propagates[k] = v
	}
	return c
}

// CanPropagate reports whether the named event may traverse this link.
func (l *Link) CanPropagate(event string) bool { return l.Propagates[event] }

// Type returns the TYPE property, or "" if unset.
func (l *Link) Type() string { return l.Props[PropType] }

// Other returns the endpoint opposite to k, and whether k is an endpoint at
// all.
func (l *Link) Other(k Key) (Key, bool) {
	switch k {
	case l.From:
		return l.To, true
	case l.To:
		return l.From, true
	default:
		return Key{}, false
	}
}

// PropagateList returns the allowed events in sorted order.
func (l *Link) PropagateList() []string {
	evs := make([]string, 0, len(l.Propagates))
	for e, ok := range l.Propagates {
		if ok {
			evs = append(evs, e)
		}
	}
	sort.Strings(evs)
	return evs
}

// validate checks structural invariants of a link before insertion.
func (l *Link) validate() error {
	if err := l.From.Validate(); err != nil {
		return fmt.Errorf("from %v: %w", l.From, err)
	}
	if err := l.To.Validate(); err != nil {
		return fmt.Errorf("to %v: %w", l.To, err)
	}
	if l.From == l.To {
		return fmt.Errorf("self-link on %v: %w", l.From, ErrBadLink)
	}
	if l.Class == UseLink && l.From.View != l.To.View {
		return fmt.Errorf("use link %v -> %v crosses view types: %w", l.From, l.To, ErrBadLink)
	}
	return nil
}
