package load

import (
	"fmt"
	"math"
	"time"
)

// Schedule is an open-loop arrival plan: every operation has an intended
// start offset fixed before the run begins, independent of how fast the
// system under test answers.  Latency is measured from the intended
// offset, so time an operation spends queued behind a stalled handler is
// charged to that operation — coordinated omission is measured, never
// hidden by a generator that only sends as fast as responses return.
type Schedule interface {
	// Arrivals is the total number of intended operations.
	Arrivals() int

	// At returns the intended start offset of arrival i, non-decreasing
	// in i, for 0 ≤ i < Arrivals().
	At(i int) time.Duration

	// Span is the nominal length of the plan (the offset ceiling).
	Span() time.Duration
}

// FixedRate arrives at a constant rate for a fixed span: arrival i is
// intended at i/Rate.
type FixedRate struct {
	Rate float64 // arrivals per second, > 0
	D    time.Duration
}

// Arrivals implements Schedule.
func (f FixedRate) Arrivals() int {
	if f.Rate <= 0 || f.D <= 0 {
		return 0
	}
	return int(f.Rate * f.D.Seconds())
}

// At implements Schedule.
func (f FixedRate) At(i int) time.Duration {
	return time.Duration(float64(i) / f.Rate * float64(time.Second))
}

// Span implements Schedule.
func (f FixedRate) Span() time.Duration { return f.D }

// Ramp arrives at a linearly changing rate, From → To over D — the
// find-the-knee schedule.  The cumulative arrival count is
// N(t) = From·t + (To−From)·t²/(2D); arrival i is intended at the t
// solving N(t) = i.
type Ramp struct {
	From, To float64 // arrivals per second at t=0 and t=D
	D        time.Duration
}

// Arrivals implements Schedule.
func (r Ramp) Arrivals() int {
	if r.D <= 0 || r.From < 0 || r.To < 0 || r.From+r.To == 0 {
		return 0
	}
	return int((r.From + r.To) / 2 * r.D.Seconds())
}

// At implements Schedule.
func (r Ramp) At(i int) time.Duration {
	d := r.D.Seconds()
	a := (r.To - r.From) / (2 * d) // t² coefficient
	b := r.From
	n := float64(i)
	var t float64
	if math.Abs(a) < 1e-12 {
		t = n / b
	} else {
		// a·t² + b·t − n = 0, positive root.
		t = (-b + math.Sqrt(b*b+4*a*n)) / (2 * a)
	}
	if t < 0 {
		t = 0
	}
	return time.Duration(t * float64(time.Second))
}

// Span implements Schedule.
func (r Ramp) Span() time.Duration { return r.D }

// scheduleFor builds the arrival plan a scenario declares: a ramp when
// RampTo is set, a fixed rate otherwise.
func scheduleFor(s Scenario) (Schedule, error) {
	if s.Rate <= 0 {
		return nil, fmt.Errorf("load: scenario %q: rate must be positive", s.Name)
	}
	if s.Duration.D <= 0 {
		return nil, fmt.Errorf("load: scenario %q: duration must be positive", s.Name)
	}
	if s.RampTo > 0 {
		return Ramp{From: s.Rate, To: s.RampTo, D: s.Duration.D}, nil
	}
	return FixedRate{Rate: s.Rate, D: s.Duration.D}, nil
}

// openLoopStats is what the dispatcher hands back: how many arrivals it
// fired and how many it had to drop because the backlog bound was hit
// (every drop is loud in the results — a saturated system under an
// open-loop plan must surface as drops + queueing latency, never as a
// quietly slowed-down clock).
type openLoopStats struct {
	Dispatched int64
	Dropped    int64
}

// opTicket is one intended operation: its class and intended offset.
type opTicket struct {
	class string
	due   time.Duration
}

// openLoop walks the schedule in real time against epoch, assigning each
// arrival its op class via pick and handing it to the worker pool through
// a bounded queue.  The dispatcher NEVER blocks on the queue: when every
// virtual user is wedged and the backlog is full, the arrival is counted
// as dropped and the clock keeps its pace.  Returns once every arrival
// has been dispatched or dropped; the caller closes the queue after.
func openLoop(epoch time.Time, sched Schedule, pick func(i int) string, queue chan<- opTicket, stop <-chan struct{}) openLoopStats {
	var st openLoopStats
	n := sched.Arrivals()
	for i := 0; i < n; i++ {
		due := sched.At(i)
		if wait := time.Until(epoch.Add(due)); wait > 0 {
			select {
			case <-stop:
				return st
			case <-time.After(wait):
			}
		} else {
			select {
			case <-stop:
				return st
			default:
			}
		}
		select {
		case queue <- opTicket{class: pick(i), due: due}:
			st.Dispatched++
		default:
			st.Dropped++
		}
	}
	return st
}
