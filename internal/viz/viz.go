// Package viz renders the design flow and project state visually — the
// "graphical interface to visualize the design state relative to its flow"
// the paper's conclusion announces as work in progress.  Two renderings are
// provided, both deterministic:
//
//   - FlowDOT draws the BluePrint itself: views as nodes, link templates as
//     edges labelled with their TYPE and PROPAGATE sets.  Applied to the
//     EDTC example it regenerates Figure 5 of the paper.
//   - StateDOT draws the live meta-database: OIDs as nodes coloured by
//     readiness, link instances as edges.
//
// The output is Graphviz DOT, viewable with any dot(1) renderer; an ASCII
// summary renderer is included for terminals.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bpl"
	"repro/internal/meta"
	"repro/internal/state"
)

// FlowDOT renders the blueprint's views and link templates as a DOT graph —
// the BluePrint representation of the design flow (Figure 5).
func FlowDOT(bp *bpl.Blueprint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", bp.Name)
	sb.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	for _, v := range bp.Views {
		if v.Name == bpl.DefaultViewName {
			continue
		}
		var extras []string
		for _, p := range v.Properties {
			extras = append(extras, p.Name)
		}
		label := v.Name
		if len(extras) > 0 {
			label += "\\n(" + strings.Join(extras, ", ") + ")"
		}
		fmt.Fprintf(&sb, "  %q [label=%q];\n", v.Name, label)
	}
	for _, v := range bp.Views {
		for _, l := range v.Links {
			if l.Use {
				// Hierarchy within the view: a self loop labelled
				// "hierarchy", as Figure 5 draws it.
				fmt.Fprintf(&sb, "  %q -> %q [label=%q, style=dashed];\n",
					v.Name, v.Name, "hierarchy: "+strings.Join(l.Propagates, ","))
				continue
			}
			label := l.Type
			if label == "" {
				label = "derive"
			}
			label += ": " + strings.Join(l.Propagates, ",")
			if l.Inherit != bpl.InheritNone {
				label += " (" + l.Inherit.String() + ")"
			}
			fmt.Fprintf(&sb, "  %q -> %q [label=%q];\n", l.FromView, v.Name, label)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// StateDOT renders the current meta-database: the latest version of every
// chain, coloured green (ready), red (blocked) or grey (no continuous
// assignments), with link instances as edges.
func StateDOT(db *meta.DB, bp *bpl.Blueprint) string {
	var sb strings.Builder
	sb.WriteString("digraph project_state {\n")
	sb.WriteString("  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"Helvetica\"];\n")

	report := state.Report(db, bp)
	inReport := map[meta.Key]bool{}
	for _, st := range report {
		inReport[st.Key] = true
		color := "lightgrey"
		if len(st.Lets) > 0 {
			if st.Ready {
				color = "palegreen"
			} else {
				color = "lightcoral"
			}
		}
		label := st.Key.String()
		if up, ok := st.Props["uptodate"]; ok {
			label += "\\nuptodate=" + up
		}
		fmt.Fprintf(&sb, "  %q [label=%q, fillcolor=%q];\n", st.Key.String(), label, color)
	}

	links := db.SelectLinks(func(*meta.Link) bool { return true })
	for _, l := range links {
		if !inReport[l.From] || !inReport[l.To] {
			continue // only draw edges between latest versions
		}
		style := "solid"
		label := l.Type()
		if l.Class == meta.UseLink {
			style = "dashed"
			label = "use"
		}
		fmt.Fprintf(&sb, "  %q -> %q [label=%q, style=%s];\n",
			l.From.String(), l.To.String(), label, style)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// FlowText renders a terminal summary of the blueprint: per view, its
// properties, continuous assignments, incoming link templates and rules.
func FlowText(bp *bpl.Blueprint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "blueprint %s\n", bp.Name)
	for _, v := range bp.Views {
		fmt.Fprintf(&sb, "  view %s\n", v.Name)
		for _, p := range v.Properties {
			mode := ""
			if p.Inherit != bpl.InheritNone {
				mode = " [" + p.Inherit.String() + "]"
			}
			fmt.Fprintf(&sb, "    property %-16s default %q%s\n", p.Name, p.Default, mode)
		}
		for _, l := range v.Lets {
			fmt.Fprintf(&sb, "    let %s = %s\n", l.Name, l.Expr.String())
		}
		for _, l := range v.Links {
			if l.Use {
				fmt.Fprintf(&sb, "    hierarchy link propagates %s\n", strings.Join(l.Propagates, ","))
			} else {
				fmt.Fprintf(&sb, "    from %-16s %-12s propagates %s\n",
					l.FromView, l.Type, strings.Join(l.Propagates, ","))
			}
		}
		for _, r := range v.Rules {
			acts := make([]string, len(r.Actions))
			for i, a := range r.Actions {
				acts[i] = a.String()
			}
			fmt.Fprintf(&sb, "    when %-12s -> %s\n", r.Event, strings.Join(acts, "; "))
		}
	}
	return sb.String()
}

// StateText renders a terminal summary of the project state grouped by
// view, with readiness counts — the designer's at-a-glance dashboard.
func StateText(db *meta.DB, bp *bpl.Blueprint) string {
	report := state.Report(db, bp)
	byView := map[string][]state.OIDState{}
	for _, st := range report {
		byView[st.Key.View] = append(byView[st.Key.View], st)
	}
	views := make([]string, 0, len(byView))
	for v := range byView {
		views = append(views, v)
	}
	sort.Strings(views)

	var sb strings.Builder
	for _, v := range views {
		sts := byView[v]
		ready := 0
		for _, st := range sts {
			if st.Ready {
				ready++
			}
		}
		fmt.Fprintf(&sb, "%s (%d/%d ready)\n", v, ready, len(sts))
		for _, st := range sts {
			mark := "✓"
			if !st.Ready {
				mark = "✗"
			}
			fmt.Fprintf(&sb, "  %s %s\n", mark, st.Key)
			for _, r := range st.Reasons {
				fmt.Fprintf(&sb, "      %s\n", r)
			}
		}
	}
	return sb.String()
}
