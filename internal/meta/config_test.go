package meta

import (
	"errors"
	"testing"
)

// buildHierarchy creates cpu -> {reg, alu} -> ... use-link hierarchy in view
// SCHEMA plus one derive link to a netlist, and returns the root.
func buildHierarchy(t *testing.T, db *DB) (root Key, netlist Key) {
	t.Helper()
	cpu := mustNewVersion(t, db, "cpu", "SCHEMA")
	reg := mustNewVersion(t, db, "reg", "SCHEMA")
	alu := mustNewVersion(t, db, "alu", "SCHEMA")
	shifter := mustNewVersion(t, db, "shifter", "SCHEMA")
	nl := mustNewVersion(t, db, "cpu", "netlist")
	mustLink := func(class LinkClass, from, to Key, props map[string]string) {
		t.Helper()
		if _, err := db.AddLink(class, from, to, "", nil, props); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(UseLink, cpu, reg, nil)
	mustLink(UseLink, cpu, alu, nil)
	mustLink(UseLink, alu, shifter, nil)
	mustLink(DeriveLink, cpu, nl, map[string]string{PropType: TypeDeriveFrom})
	return cpu, nl
}

func TestSnapshotHierarchyUseOnly(t *testing.T) {
	db := NewDB()
	root, _ := buildHierarchy(t, db)
	c, err := db.SnapshotHierarchy("snap", root, FollowUseLinks)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OIDs) != 4 {
		t.Errorf("snapshot OIDs = %v, want 4 schematic OIDs", c.OIDs)
	}
	if len(c.Links) != 3 {
		t.Errorf("snapshot Links = %v, want 3 use links", c.Links)
	}
	for _, k := range c.OIDs {
		if k.View != "SCHEMA" {
			t.Errorf("use-only snapshot crossed views: %v", k)
		}
	}
}

func TestSnapshotHierarchyAllLinks(t *testing.T) {
	db := NewDB()
	root, nl := buildHierarchy(t, db)
	c, err := db.SnapshotHierarchy("snap", root, FollowAllLinks)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OIDs) != 5 {
		t.Errorf("snapshot OIDs = %v, want 5", c.OIDs)
	}
	if !c.Contains(nl) {
		t.Error("netlist missing from all-links snapshot")
	}
}

func TestSnapshotFollowType(t *testing.T) {
	db := NewDB()
	root, nl := buildHierarchy(t, db)
	c, err := db.SnapshotHierarchy("s1", root, FollowType(TypeEquivalence))
	if err != nil {
		t.Fatal(err)
	}
	if c.Contains(nl) {
		t.Error("derive_from link followed by equivalence-only rule")
	}
	c2, err := db.SnapshotHierarchy("s2", root, FollowType(TypeDeriveFrom))
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Contains(nl) {
		t.Error("derive_from link not followed")
	}
}

func TestSnapshotErrors(t *testing.T) {
	db := NewDB()
	root, _ := buildHierarchy(t, db)
	if _, err := db.SnapshotHierarchy("s", root, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SnapshotHierarchy("s", root, nil); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate snapshot: %v", err)
	}
	if _, err := db.SnapshotHierarchy("s2", Key{Block: "ghost", View: "v", Version: 1}, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing root: %v", err)
	}
	if _, err := db.SnapshotHierarchy("bad name", root, nil); err == nil {
		t.Error("bad name accepted")
	}
}

func TestSnapshotImmutableUnderMutation(t *testing.T) {
	db := NewDB()
	root, _ := buildHierarchy(t, db)
	c, err := db.SnapshotHierarchy("snap", root, FollowUseLinks)
	if err != nil {
		t.Fatal(err)
	}
	nOIDs, nLinks := len(c.OIDs), len(c.Links)
	// Mutate the database afterwards.
	extra := mustNewVersion(t, db, "extra", "SCHEMA")
	if _, err := db.AddLink(UseLink, root, extra, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	c2, err := db.GetConfiguration("snap")
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.OIDs) != nOIDs || len(c2.Links) != nLinks {
		t.Errorf("snapshot changed after mutation: %d/%d -> %d/%d",
			nOIDs, nLinks, len(c2.OIDs), len(c2.Links))
	}
	if c2.Contains(extra) {
		t.Error("snapshot gained a post-snapshot OID")
	}
}

func TestSnapshotQuery(t *testing.T) {
	db := NewDB()
	buildHierarchy(t, db)
	for _, bv := range db.BlockViews() {
		k, _ := db.Latest(bv.Block, bv.View)
		if bv.View == "SCHEMA" {
			if err := db.SetProp(k, "uptodate", "false"); err != nil {
				t.Fatal(err)
			}
		}
	}
	c, err := db.SnapshotQuery("stale", func(o *OID) bool {
		return o.Props["uptodate"] == "false"
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OIDs) != 4 {
		t.Errorf("query snapshot = %v, want the 4 stale schematics", c.OIDs)
	}
	// Links internal to the selected set are captured: the 3 use links.
	if len(c.Links) != 3 {
		t.Errorf("query snapshot links = %v, want 3", c.Links)
	}
}

func TestResolveWithMissing(t *testing.T) {
	db := NewDB()
	root, nl := buildHierarchy(t, db)
	c, err := db.SnapshotHierarchy("snap", root, FollowAllLinks)
	if err != nil {
		t.Fatal(err)
	}
	// Delete one captured link.
	if err := db.DeleteLink(c.Links[0]); err != nil {
		t.Fatal(err)
	}
	r, err := db.Resolve("snap")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MissingLinks) != 1 || r.MissingLinks[0] != c.Links[0] {
		t.Errorf("MissingLinks = %v", r.MissingLinks)
	}
	if len(r.OIDs) != 5 || len(r.MissingOIDs) != 0 {
		t.Errorf("resolved OIDs = %d missing %d", len(r.OIDs), len(r.MissingOIDs))
	}
	_ = nl
}

func TestConfigurationNamesAndDelete(t *testing.T) {
	db := NewDB()
	root, _ := buildHierarchy(t, db)
	for _, n := range []string{"c", "a", "b"} {
		if _, err := db.SnapshotHierarchy(n, root, nil); err != nil {
			t.Fatal(err)
		}
	}
	names := db.ConfigurationNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Errorf("ConfigurationNames = %v", names)
	}
	if err := db.DeleteConfiguration("b"); err != nil {
		t.Fatal(err)
	}
	if err := db.DeleteConfiguration("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	if _, err := db.GetConfiguration("b"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
}

func TestSnapshotCyclicGraphTerminates(t *testing.T) {
	db := NewDB()
	a := mustNewVersion(t, db, "a", "v")
	b := mustNewVersion(t, db, "b", "v")
	c := mustNewVersion(t, db, "c", "v")
	for _, pair := range [][2]Key{{a, b}, {b, c}, {c, a}} {
		if _, err := db.AddLink(DeriveLink, pair[0], pair[1], "", nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	cfg, err := db.SnapshotHierarchy("cycle", a, FollowAllLinks)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.OIDs) != 3 || len(cfg.Links) != 3 {
		t.Errorf("cycle snapshot = %d OIDs %d links", len(cfg.OIDs), len(cfg.Links))
	}
}

func TestSnapshotAsOf(t *testing.T) {
	db := NewDB()
	h1 := mustNewVersion(t, db, "cpu", "HDL_model")
	s1 := mustNewVersion(t, db, "cpu", "schematic")
	if _, err := db.AddLink(DeriveLink, h1, s1, "", nil, nil); err != nil {
		t.Fatal(err)
	}
	mark := db.Seq()
	// Afterwards: a new model version and a late link.
	h2 := mustNewVersion(t, db, "cpu", "HDL_model")
	if _, err := db.AddLink(DeriveLink, h2, s1, "", nil, nil); err != nil {
		t.Fatal(err)
	}

	c, err := db.SnapshotAsOf("past", mark)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.OIDs) != 2 || !c.Contains(h1) || !c.Contains(s1) {
		t.Errorf("as-of OIDs = %v", c.OIDs)
	}
	if c.Contains(h2) {
		t.Error("future version captured")
	}
	if len(c.Links) != 1 {
		t.Errorf("as-of links = %v, want only the early link", c.Links)
	}

	// A snapshot at the present captures the latest versions.
	now, err := db.SnapshotAsOf("now", db.Seq())
	if err != nil {
		t.Fatal(err)
	}
	if !now.Contains(h2) || now.Contains(h1) {
		t.Errorf("present snapshot = %v", now.OIDs)
	}
	// seq 0: empty design.
	zero, err := db.SnapshotAsOf("origin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.OIDs) != 0 {
		t.Errorf("origin snapshot = %v", zero.OIDs)
	}
	if _, err := db.SnapshotAsOf("past", mark); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate name: %v", err)
	}
}

func TestConfigurationContains(t *testing.T) {
	c := &Configuration{OIDs: []Key{
		{"a", "v", 1}, {"b", "v", 1}, {"c", "v", 2},
	}}
	if !c.Contains(Key{"b", "v", 1}) {
		t.Error("Contains(b) = false")
	}
	if c.Contains(Key{"b", "v", 2}) {
		t.Error("Contains(b,2) = true")
	}
}
