package meta

import (
	"fmt"
	"sort"
)

// Configuration is a lightweight set of database addresses referencing OIDs
// and Links (section 2 of the paper).  It combines a version history of
// different data blocks into one instance — "a higher level of description
// of data across time".  Configurations can snapshot the design hierarchy at
// a step of the design cycle, or store the result of a volume query as a
// non-hierarchical set of data.
//
// A Configuration is immutable once created.  Because it stores addresses
// rather than copies, resolving it after later mutations may find that some
// referenced links were deleted or retargeted; Resolve reports both what was
// captured and what still exists.
type Configuration struct {
	Name string

	// Seq is the logical time at which the snapshot was taken.
	Seq int64

	// OIDs and Links are the stored database addresses, sorted for
	// deterministic iteration.
	OIDs  []Key
	Links []LinkID
}

// Contains reports whether the configuration references the OID.
func (c *Configuration) Contains(k Key) bool {
	i := sort.Search(len(c.OIDs), func(i int) bool { return !keyLess(c.OIDs[i], k) })
	return i < len(c.OIDs) && c.OIDs[i] == k
}

func keyLess(a, b Key) bool { return a.Less(b) }

func (c *Configuration) clone() *Configuration {
	cc := &Configuration{Name: c.Name, Seq: c.Seq}
	cc.OIDs = append([]Key(nil), c.OIDs...)
	cc.Links = append([]LinkID(nil), c.Links...)
	return cc
}

// FollowFunc decides whether a hierarchy traversal should cross a link.
// The traversal hands it every link incident to a visited OID.
type FollowFunc func(*Link) bool

// FollowUseLinks follows only use (hierarchy) links, downward.
func FollowUseLinks(l *Link) bool { return l.Class == UseLink }

// FollowAllLinks follows every link.
func FollowAllLinks(*Link) bool { return true }

// FollowType returns a FollowFunc that follows use links plus derive links
// whose TYPE property is one of the given types.
func FollowType(types ...string) FollowFunc {
	set := make(map[string]bool, len(types))
	for _, t := range types {
		set[t] = true
	}
	return func(l *Link) bool {
		return l.Class == UseLink || set[l.Type()]
	}
}

// SnapshotHierarchy builds a Configuration by traversing links downward
// (From→To) starting at root, following the links admitted by follow.
// This is the paper's "built by traversing a hierarchy while following
// certain rules".
//
// With MVCC enabled the traversal runs against a pinned read view —
// no shard lock is taken for the collection phase, so snapshots proceed
// while writers keep committing; the install itself is a short
// control-plane critical section.
func (db *DB) SnapshotHierarchy(name string, root Key, follow FollowFunc) (*Configuration, error) {
	if err := ValidateName(name); err != nil {
		return nil, fmt.Errorf("configuration: %w", err)
	}
	if follow == nil {
		follow = FollowUseLinks
	}
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		if !v.HasOID(root) {
			return nil, fmt.Errorf("root %v: %w", root, ErrNotFound)
		}
		c := &Configuration{Name: name, Seq: v.Seq()}
		out := make(map[Key][]*Link)
		v.EachLink(func(l *Link) bool {
			if follow(l) {
				out[l.From] = append(out[l.From], l)
			}
			return true
		})
		visited := map[Key]bool{root: true}
		linkSeen := map[LinkID]bool{}
		queue := []Key{root}
		for len(queue) > 0 {
			k := queue[0]
			queue = queue[1:]
			c.OIDs = append(c.OIDs, k)
			for _, l := range out[k] {
				if !linkSeen[l.ID] {
					linkSeen[l.ID] = true
					c.Links = append(c.Links, l.ID)
				}
				if !visited[l.To] {
					visited[l.To] = true
					queue = append(queue, l.To)
				}
			}
		}
		return db.installNewConfig(c)
	}
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.configs[name]; ok {
		return nil, fmt.Errorf("configuration %q: %w", name, ErrExists)
	}
	db.rlockAll()
	defer db.runlockAll()
	if _, ok := db.shardOf(root).oids[root]; !ok {
		return nil, fmt.Errorf("root %v: %w", root, ErrNotFound)
	}

	c := &Configuration{Name: name, Seq: db.seq.Load()}
	visited := map[Key]bool{root: true}
	linkSeen := map[LinkID]bool{}
	queue := []Key{root}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		c.OIDs = append(c.OIDs, k)
		for _, r := range db.shardOf(k).outLinks[k] {
			if !follow(r.l) {
				continue
			}
			if !linkSeen[r.id] {
				linkSeen[r.id] = true
				c.Links = append(c.Links, r.id)
			}
			if !visited[r.l.To] {
				visited[r.l.To] = true
				queue = append(queue, r.l.To)
			}
		}
	}
	return db.installConfigLocked(c), nil
}

// installNewConfig sorts and installs a freshly collected configuration
// under the control-plane lock, journaling and versioning it.  It is the
// install half of the view-based Snapshot* constructors.
func (db *DB) installNewConfig(c *Configuration) (*Configuration, error) {
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.configs[c.Name]; ok {
		return nil, fmt.Errorf("configuration %q: %w", c.Name, ErrExists)
	}
	return db.installConfigLocked(c), nil
}

// installConfigLocked finishes a collected configuration: sort, store,
// journal, version.  Callers hold the control-plane write lock and have
// checked the name is free.
func (db *DB) installConfigLocked(c *Configuration) *Configuration {
	sort.Slice(c.OIDs, func(i, j int) bool { return keyLess(c.OIDs[i], c.OIDs[j]) })
	sort.Slice(c.Links, func(i, j int) bool { return c.Links[i] < c.Links[j] })
	db.configs[c.Name] = c
	tok := db.beginMut(OpConfig, 0, func() []string { return configArgs(c) })
	if tok.on {
		db.histConfigPushLocked(c.Name, tok.s, c)
	}
	db.endMut(tok)
	return c.clone()
}

// SnapshotQuery builds a Configuration from the OIDs accepted by pred — the
// paper's "result of a query ... a non-hierarchical set of data".  Links
// whose both endpoints are selected are included.
func (db *DB) SnapshotQuery(name string, pred func(*OID) bool) (*Configuration, error) {
	if err := ValidateName(name); err != nil {
		return nil, fmt.Errorf("configuration: %w", err)
	}
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		c := &Configuration{Name: name, Seq: v.Seq()}
		selected := make(map[Key]bool)
		v.EachOID(func(o *OID) bool {
			if pred(o) {
				selected[o.Key] = true
				c.OIDs = append(c.OIDs, o.Key)
			}
			return true
		})
		v.EachLink(func(l *Link) bool {
			if selected[l.From] && selected[l.To] {
				c.Links = append(c.Links, l.ID)
			}
			return true
		})
		return db.installNewConfig(c)
	}
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.configs[name]; ok {
		return nil, fmt.Errorf("configuration %q: %w", name, ErrExists)
	}
	db.rlockAll()
	defer db.runlockAll()
	c := &Configuration{Name: name, Seq: db.seq.Load()}
	selected := make(map[Key]bool)
	for _, sh := range db.shards {
		for k, o := range sh.oids {
			if pred(o) {
				selected[k] = true
				c.OIDs = append(c.OIDs, k)
			}
		}
	}
	for _, st := range db.stripes {
		for id, l := range st.links {
			if selected[l.From] && selected[l.To] {
				c.Links = append(c.Links, id)
			}
		}
	}
	return db.installConfigLocked(c), nil
}

// SnapshotAsOf builds a Configuration that reconstructs the design as it
// stood at logical time seq: for every version chain, the newest version
// whose creation time is not later than seq, plus every link that existed
// by then between two captured OIDs.  This is the "higher level of
// description of data across time" of section 2 — the configuration
// mechanism combining a version history of different blocks into one
// instance.
func (db *DB) SnapshotAsOf(name string, seq int64) (*Configuration, error) {
	if err := ValidateName(name); err != nil {
		return nil, fmt.Errorf("configuration: %w", err)
	}
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		c := &Configuration{Name: name, Seq: seq}
		selected := make(map[Key]bool)
		v.eachChain(func(bv BlockView, chain []int) bool {
			// Chains are ascending in version and creation order; pick the
			// newest version created at or before seq.
			var pick Key
			for _, ver := range chain {
				k := Key{Block: bv.Block, View: bv.View, Version: ver}
				o := v.oidAt(k)
				if o == nil || o.val.seq > seq {
					continue
				}
				pick = k
			}
			if !pick.IsZero() {
				selected[pick] = true
				c.OIDs = append(c.OIDs, pick)
			}
			return true
		})
		v.EachLink(func(l *Link) bool {
			if l.Seq <= seq && selected[l.From] && selected[l.To] {
				c.Links = append(c.Links, l.ID)
			}
			return true
		})
		return db.installNewConfig(c)
	}
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.configs[name]; ok {
		return nil, fmt.Errorf("configuration %q: %w", name, ErrExists)
	}
	db.rlockAll()
	defer db.runlockAll()
	c := &Configuration{Name: name, Seq: seq}
	selected := make(map[Key]bool)
	for _, sh := range db.shards {
		for bv, chain := range sh.chains {
			// Chains are ascending in version and creation order; pick the
			// newest version created at or before seq.
			var pick Key
			for _, v := range chain {
				k := Key{Block: bv.Block, View: bv.View, Version: v}
				o, ok := sh.oids[k]
				if !ok || o.Seq > seq {
					continue
				}
				pick = k
			}
			if !pick.IsZero() {
				selected[pick] = true
				c.OIDs = append(c.OIDs, pick)
			}
		}
	}
	for _, st := range db.stripes {
		for id, l := range st.links {
			if l.Seq <= seq && selected[l.From] && selected[l.To] {
				c.Links = append(c.Links, id)
			}
		}
	}
	return db.installConfigLocked(c), nil
}

// GetConfiguration returns a copy of a stored configuration.
func (db *DB) GetConfiguration(name string) (*Configuration, error) {
	db.ctl.RLock()
	defer db.ctl.RUnlock()
	c, ok := db.configs[name]
	if !ok {
		return nil, fmt.Errorf("configuration %q: %w", name, ErrNotFound)
	}
	return c.clone(), nil
}

// DeleteConfiguration removes a stored configuration.
func (db *DB) DeleteConfiguration(name string) error {
	db.ctl.Lock()
	defer db.ctl.Unlock()
	if _, ok := db.configs[name]; !ok {
		return fmt.Errorf("configuration %q: %w", name, ErrNotFound)
	}
	delete(db.configs, name)
	tok := db.beginMut(OpDelConfig, 0, func() []string { return []string{name} })
	if tok.on {
		db.histConfigPushLocked(name, tok.s, nil)
	}
	db.endMut(tok)
	return nil
}

// ConfigurationNames lists stored configurations in sorted order.
func (db *DB) ConfigurationNames() []string {
	db.ctl.RLock()
	defer db.ctl.RUnlock()
	names := make([]string, 0, len(db.configs))
	for n := range db.configs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResolvedConfiguration is the materialization of a Configuration against
// the current database contents.
type ResolvedConfiguration struct {
	Config *Configuration

	// OIDs holds deep copies of the referenced OIDs that still exist.
	OIDs []*OID

	// Links holds deep copies of the referenced links that still exist.
	Links []*Link

	// MissingOIDs and MissingLinks are addresses that no longer resolve
	// (deleted since the snapshot).
	MissingOIDs  []Key
	MissingLinks []LinkID
}

// Resolve materializes a stored configuration.  With MVCC enabled the
// clone-heavy materialization runs against a pinned view and holds no lock
// at all; without it, a large resolve read-locks the control plane and
// every shard and stripe for its duration.
func (db *DB) Resolve(name string) (*ResolvedConfiguration, error) {
	if db.mvcc.on.Load() {
		v := db.ReadView()
		defer v.Close()
		return v.Resolve(name)
	}
	db.ctl.RLock()
	defer db.ctl.RUnlock()
	c, ok := db.configs[name]
	if !ok {
		return nil, fmt.Errorf("configuration %q: %w", name, ErrNotFound)
	}
	db.rlockAll()
	defer db.runlockAll()
	r := &ResolvedConfiguration{Config: c.clone()}
	r.OIDs = make([]*OID, 0, len(c.OIDs))
	for _, k := range c.OIDs {
		if o, ok := db.shardOf(k).oids[k]; ok {
			r.OIDs = append(r.OIDs, o.clone())
		} else {
			r.MissingOIDs = append(r.MissingOIDs, k)
		}
	}
	r.Links = make([]*Link, 0, len(c.Links))
	for _, id := range c.Links {
		if l := db.linkLocked(id); l != nil {
			r.Links = append(r.Links, l.clone())
		} else {
			r.MissingLinks = append(r.MissingLinks, id)
		}
	}
	return r, nil
}
