package server

import (
	"fmt"
	"sync"
	"time"
)

// quorum tracks per-follower replication progress on a primary: every
// FOLLOW connection registers itself, and each "ACK <lsn>" line it sends
// upstream raises its mark.  Writers wait until n distinct followers'
// marks cover a given LSN.  Progress is keyed by connection, not by
// follower identity — a reconnecting follower counts as a fresh, empty
// mark until it re-acknowledges, which can only make the gate stricter,
// never let a stale mark satisfy it.
type quorum struct {
	n       int
	timeout time.Duration

	mu    sync.Mutex
	next  int64           // connection id allocator
	marks map[int64]int64 // connection id → highest acked LSN
	advCh chan struct{}   // closed+replaced on every mark change
}

func newQuorum(n int, timeout time.Duration) *quorum {
	return &quorum{n: n, timeout: timeout, marks: make(map[int64]int64), advCh: make(chan struct{})}
}

// register adds a follower connection and returns its id.
func (q *quorum) register() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.next++
	id := q.next
	q.marks[id] = 0
	return id
}

// unregister drops a departed follower connection.  Waiters are woken:
// a quorum that can no longer form should run into its timeout promptly
// rather than sleep the full window on a dead channel set.
func (q *quorum) unregister(id int64) {
	q.mu.Lock()
	delete(q.marks, id)
	q.wakeLocked()
	q.mu.Unlock()
}

// ack raises one follower's mark.  Marks only move forward — a duplicate
// or reordered ACK can never lower acknowledged coverage.
func (q *quorum) ack(id, lsn int64) {
	q.mu.Lock()
	if cur, ok := q.marks[id]; ok && lsn > cur {
		q.marks[id] = lsn
		q.wakeLocked()
	}
	q.mu.Unlock()
}

func (q *quorum) wakeLocked() {
	close(q.advCh)
	q.advCh = make(chan struct{})
}

// covered reports how many registered followers have acked at least lsn.
func (q *quorum) covered(lsn int64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, m := range q.marks {
		if m >= lsn {
			n++
		}
	}
	return n
}

// wait blocks until n follower marks cover lsn, the timeout expires, or
// stop closes (server shutdown).  The returned error's message starts
// with "quorum-timeout" — the wire-visible degradation marker clients
// key on — and states that the write itself is durable.
func (q *quorum) wait(lsn int64, stop <-chan struct{}) error {
	timer := time.NewTimer(q.timeout)
	defer timer.Stop()
	for {
		q.mu.Lock()
		got := 0
		for _, m := range q.marks {
			if m >= lsn {
				got++
			}
		}
		ch := q.advCh
		q.mu.Unlock()
		if got >= q.n {
			return nil
		}
		select {
		case <-ch:
		case <-timer.C:
			return fmt.Errorf("quorum-timeout: lsn %d acknowledged by %d/%d followers within %v (write is committed locally, not lost)",
				lsn, got, q.n, q.timeout)
		case <-stop:
			return fmt.Errorf("quorum-timeout: server shutting down with lsn %d acknowledged by %d/%d followers (write is committed locally, not lost)",
				lsn, got, q.n)
		}
	}
}
