// versioning demonstrates the version-inheritance semantics of Figures 2
// and 3 of the paper: property copy/move between versions, and the
// automatic "shifting" of move-tagged links when a new version of an OID
// is created.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

const blueprint = `blueprint versioning_demo
view NetList
endview
view GDSII
    # Figure 2: the DRC property is copied from the previous version.
    property DRC default bad copy
    # Audit trail moves: the old version loses it.
    property audit default none move
    # Figure 3: the derive link from NetList shifts on new versions.
    link_from NetList move propagates OutOfDate type derive_from
endview
endblueprint
`

func main() {
	log.SetFlags(0)
	proj, err := repro.NewProject(blueprint)
	if err != nil {
		log.Fatal(err)
	}
	eng, db := proj.Engine, proj.DB

	create := func(block, view string) repro.Key {
		k, err := eng.CreateOID(block, view, "demo")
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Drain(); err != nil {
			log.Fatal(err)
		}
		return k
	}

	// Figure 3 setup: NetList version 8 linked to GDSII version 5.
	var nl repro.Key
	for i := 0; i < 8; i++ {
		nl = create("alu", "NetList")
	}
	var g5 repro.Key
	for i := 0; i < 5; i++ {
		g5 = create("alu", "GDSII")
	}
	linkID, err := eng.CreateLink(repro.DeriveLink, nl, g5)
	if err != nil {
		log.Fatal(err)
	}
	if err := db.SetProp(g5, "DRC", "ok"); err != nil {
		log.Fatal(err)
	}
	if err := db.SetProp(g5, "audit", "signed-off by marc"); err != nil {
		log.Fatal(err)
	}

	l, _ := db.GetLink(linkID)
	fmt.Printf("before: link %d  %v -> %v  (TYPE=%s PROPAGATE=%v)\n",
		l.ID, l.From, l.To, l.Type(), l.PropagateList())
	drc, _, _ := db.GetProp(g5, "DRC")
	fmt.Printf("before: %v DRC=%q\n\n", g5, drc)

	// "create new OID" — exactly the transition both figures draw.
	g6 := create("alu", "GDSII")

	l, _ = db.GetLink(linkID)
	fmt.Printf("after:  link %d  %v -> %v   (moved, as in Figure 3)\n", l.ID, l.From, l.To)
	drc6, _, _ := db.GetProp(g6, "DRC")
	fmt.Printf("after:  %v DRC=%q          (copied, as in Figure 2)\n", g6, drc6)
	audit6, _, _ := db.GetProp(g6, "audit")
	_, auditOld, _ := db.GetProp(g5, "audit")
	fmt.Printf("after:  %v audit=%q; still on v5: %v (moved)\n", g6, audit6, auditOld)

	fmt.Println("\nversion chains:")
	for _, bv := range db.BlockViews() {
		fmt.Printf("  %s.%s: versions %v\n", bv.Block, bv.View, db.Versions(bv.Block, bv.View))
	}
}
