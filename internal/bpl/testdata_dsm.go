package bpl

// DSMExample is a second complete project policy, beyond the paper's
// EDTC_example: a deep-submicron timing-signoff flow.  It exercises the
// same language features on a different methodology — the paper's stated
// success criterion is "the ability to accommodate a variety of design
// flows and project methodologies" — including cross-view result posting
// (extraction re-triggering static timing analysis upstream), notify
// rules, and a two-stage state definition.
const DSMExample = `# Deep-submicron signoff policy: RTL -> gates -> floorplan -> SDF,
# with static timing analysis gating the signoff state.
blueprint DSM_signoff

view default
    property uptodate default true
    when ckin do uptodate = true; post outofdate down done
    when outofdate do uptodate = false done
endview

view RTL
    property lint_result default unchecked
    when lint do lint_result = $arg done
endview

view gate_netlist
    property sta_slack default unknown
    property sim_result default bad
    let state = ($sta_slack == met) and ($sim_result == good) and ($uptodate == true)
    link_from RTL move propagates outofdate type derived
    when sta do sta_slack = $arg done
    when sta do notify "STA on $oid: $arg" done
    when gate_sim do sim_result = $arg done
    # The sdf view posts run_sta here when fresh extraction data arrives;
    # the exec rule invokes the timing analyzer automatically.
    when run_sta do exec sta_runner "$oid" done
endview

view floorplan
    property congestion default unknown
    link_from gate_netlist move propagates outofdate type derived
    when fp_analysis do congestion = $arg done
endview

view sdf
    property extracted default false
    link_from floorplan move propagates outofdate type derived
    # Fresh extraction data must re-trigger timing analysis on the gates.
    when ckin do extracted = true; post run_sta down to gate_netlist done
endview

endblueprint
`
