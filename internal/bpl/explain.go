package bpl

import "strings"

// Compiled failure explanation.  ExplainFailure renders the static parts of
// every leaf description — the leaf's canonical source and the referenced
// operand — from scratch on each call, which makes it the dominant cost of
// project-state reports over large databases: the strings are identical for
// every OID of a view, only the current property value differs.  An
// Explainer compiles an expression once into a leaf list with pre-rendered
// static prefixes; explaining a failure then costs one small allocation per
// failing leaf.

// leafCheck is one boolean leaf (BoolExpr or CmpExpr) of a compiled
// expression, with its negation context and pre-rendered description.
type leafCheck struct {
	expr Expr
	// neg is true when the leaf appears under an odd number of nots: the
	// leaf contributes to a failure when it evaluates to true.
	neg bool
	// prefix is the static part of the description: the leaf source plus
	// " [<operand> = ".  The current operand value and "]" complete it.
	prefix string
	// operand is the reference whose current value is reported, valid only
	// when hasOperand is set.
	operand    Operand
	hasOperand bool
}

// Explainer is the compiled form of a boolean expression for failure
// reporting.  Build one with CompileExplainer; it is immutable and safe for
// concurrent use.
type Explainer struct {
	root   Expr
	leaves []leafCheck
}

// CompileExplainer compiles e.  The expression must not be mutated
// afterwards.
func CompileExplainer(e Expr) *Explainer {
	x := &Explainer{root: e}
	var walk func(Expr, bool)
	walk = func(e Expr, neg bool) {
		switch n := e.(type) {
		case *NotExpr:
			walk(n.X, !neg)
		case *AndExpr:
			walk(n.L, neg)
			walk(n.R, neg)
		case *OrExpr:
			walk(n.L, neg)
			walk(n.R, neg)
		default:
			desc := e.String()
			if neg {
				desc = "not " + desc
			}
			lc := leafCheck{expr: e, neg: neg}
			switch leaf := e.(type) {
			case *CmpExpr:
				lc.prefix = desc + " [" + leaf.L.Source() + " = "
				lc.operand, lc.hasOperand = leaf.L, true
			case *BoolExpr:
				lc.prefix = desc + " [" + leaf.X.Source() + " = "
				lc.operand, lc.hasOperand = leaf.X, true
			default:
				lc.prefix = desc
			}
			x.leaves = append(x.leaves, lc)
		}
	}
	walk(e, false)
	return x
}

// Explain returns the failing leaf conditions under lookup, with current
// values, in the same order and format as ExplainFailure.  A passing
// expression returns nil.
func (x *Explainer) Explain(lookup LookupFunc) []string {
	if x.root.Eval(lookup) {
		return nil
	}
	return x.Failures(lookup)
}

// Failures is Explain without the passing-expression check, for callers
// that have already evaluated the expression.
func (x *Explainer) Failures(lookup LookupFunc) []string {
	var out []string
	for i := range x.leaves {
		lc := &x.leaves[i]
		if lc.expr.Eval(lookup) != lc.neg {
			continue
		}
		if !lc.hasOperand {
			out = append(out, lc.prefix)
			continue
		}
		var sb strings.Builder
		val := quote(lc.operand.Value(lookup))
		sb.Grow(len(lc.prefix) + len(val) + 1)
		sb.WriteString(lc.prefix)
		sb.WriteString(val)
		sb.WriteByte(']')
		out = append(out, sb.String())
	}
	return out
}
