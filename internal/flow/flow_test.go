package flow

import (
	"testing"

	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/meta"
)

func propEngine(t *testing.T, propagates []string) *engine.Engine {
	t.Helper()
	bp, err := PropagationBlueprint("test", "node", propagates)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestTreeSpecSize(t *testing.T) {
	tests := []struct {
		depth, fanout, want int
	}{
		{1, 2, 1}, {2, 2, 3}, {3, 2, 7}, {2, 3, 4}, {3, 3, 13}, {4, 2, 15},
	}
	for _, tt := range tests {
		got := TreeSpec{View: "v", Depth: tt.depth, Fanout: tt.fanout}.Size()
		if got != tt.want {
			t.Errorf("Size(d=%d,f=%d) = %d, want %d", tt.depth, tt.fanout, got, tt.want)
		}
	}
}

func TestBuildTreeShape(t *testing.T) {
	e := propEngine(t, []string{"outofdate"})
	spec := TreeSpec{View: "node", Depth: 3, Fanout: 2}
	root, all, err := BuildTree(e, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != spec.Size() {
		t.Errorf("nodes = %d, want %d", len(all), spec.Size())
	}
	// Root has Fanout children.
	if got := e.DB().LinksFrom(root); len(got) != 2 {
		t.Errorf("root links = %d", len(got))
	}
	// All nodes reachable from root.
	reach := e.DB().Reachable(root, meta.FollowUseLinks)
	if len(reach) != spec.Size() {
		t.Errorf("reachable = %d", len(reach))
	}
}

func TestBuildTreePropagation(t *testing.T) {
	e := propEngine(t, []string{"outofdate"})
	root, all, err := BuildTree(e, TreeSpec{View: "node", Depth: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(engine.Event{Name: engine.EventCheckin, Dir: bpl.DirDown, Target: root}); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for _, k := range all {
		if v, _, _ := e.DB().GetProp(k, "uptodate"); v == "false" {
			stale++
		}
	}
	// Everything below the root is invalidated; the root itself was
	// checked in.
	if stale != len(all)-1 {
		t.Errorf("stale = %d, want %d", stale, len(all)-1)
	}
}

func TestBuildTreeFilteredPropagation(t *testing.T) {
	// Links that do not propagate outofdate stop the wave at the root.
	e := propEngine(t, nil)
	root, all, err := BuildTree(e, TreeSpec{View: "node", Depth: 4, Fanout: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PostAndDrain(engine.Event{Name: engine.EventCheckin, Dir: bpl.DirDown, Target: root}); err != nil {
		t.Fatal(err)
	}
	for _, k := range all {
		if v, _, _ := e.DB().GetProp(k, "uptodate"); v == "false" {
			t.Errorf("%v invalidated through a filtering link", k)
		}
	}
}

func TestBuildTreeBadSpec(t *testing.T) {
	e := propEngine(t, nil)
	if _, _, err := BuildTree(e, TreeSpec{View: "node", Depth: 0, Fanout: 2}); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, _, err := BuildTree(e, TreeSpec{View: "node", Depth: 2, Fanout: 0}); err == nil {
		t.Error("fanout 0 accepted")
	}
}

func TestBuildChain(t *testing.T) {
	bp, err := bpl.Parse(bpl.EDTCExample)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := BuildChain(e, ChainSpec{Block: "CPU", Views: []string{"HDL_model", "schematic", "netlist"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	// The HDL_model -> schematic link got the derived template.
	links := e.DB().LinksTo(keys[1])
	if len(links) != 1 || links[0].Type() != "derived" {
		t.Errorf("chain link = %+v", links)
	}
	if _, err := BuildChain(e, ChainSpec{Block: "x"}); err == nil {
		t.Error("empty chain accepted")
	}
}

func TestRunEDTCScenario(t *testing.T) {
	sess, rec, err := NewEDTCSession(1995)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEDTCScenario(sess)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstSim != "4 errors" {
		t.Errorf("first sim = %q", res.FirstSim)
	}
	if res.SecondSim != "good" {
		t.Errorf("second sim = %q", res.SecondSim)
	}
	if res.HDL3.Version != 3 {
		t.Errorf("hdl3 = %v", res.HDL3)
	}
	// The outofdate wave after the change invalidated the CPU schematic,
	// its REG component, and the netlist.
	stale := map[meta.Key]bool{}
	for _, k := range res.StaleAfterChange {
		stale[k] = true
	}
	for _, k := range []meta.Key{res.CPUSchematic, res.REGSchematic, res.Netlist} {
		if !stale[k] {
			t.Errorf("%v not invalidated; stale set = %v", k, res.StaleAfterChange)
		}
	}
	if stale[res.HDL3] || stale[res.Lib] {
		t.Errorf("upstream data invalidated: %v", res.StaleAfterChange)
	}
	// The auto-netlister ran at least once.
	found := false
	for _, inv := range rec.Invocations() {
		if inv.Script == "netlister" {
			found = true
		}
	}
	if !found {
		t.Error("netlister never executed")
	}
}

func TestWorkloadRunDeterministic(t *testing.T) {
	run := func() WorkloadStats {
		sess, _, err := NewEDTCSession(7)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Workload{Seed: 42, Blocks: 3, Steps: 120, EditDefectRate: 30}.Run(sess)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("workload not deterministic:\n%v\n%v", a, b)
	}
	total := a.Edits + a.Sims + a.Syntheses + a.Netlists + a.NetlistSims + a.Placements + a.DRCRuns
	if total == 0 {
		t.Error("workload did nothing")
	}
}

func TestWorkloadValidation(t *testing.T) {
	sess, _, err := NewEDTCSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Workload{Blocks: 0, Steps: 5}).Run(sess); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := (Workload{Blocks: 1, Steps: 0}).Run(sess); err == nil {
		t.Error("zero steps accepted")
	}
}
