// Command experiments regenerates every table in EXPERIMENTS.md: for each
// figure of the paper and each quantitative claim, it runs the experiment
// sweep and prints the measured series.  The same measurements exist as Go
// benchmarks (bench_test.go); this binary packages them as readable tables.
//
// Usage:
//
//	experiments [-exp all|prop|loose|obs|conf|sched|scenario]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/baseline"
	"repro/internal/bpl"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/meta"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	exp := flag.String("exp", "all", "experiment to run: all|prop|loose|obs|conf|sched|scenario")
	flag.Parse()

	runs := map[string]func(){
		"prop":     expPropagation,
		"loose":    expLoosening,
		"obs":      expObserver,
		"conf":     expConfigurations,
		"sched":    expScheduling,
		"scenario": expScenario,
	}
	if *exp == "all" {
		for _, name := range []string{"scenario", "prop", "loose", "obs", "conf", "sched"} {
			runs[name]()
			fmt.Println()
		}
		return
	}
	f, ok := runs[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q", *exp)
	}
	f()
}

// timeIt measures avg wall time of f over n runs.
func timeIt(n int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		f()
	}
	return time.Since(start) / time.Duration(n)
}

func mustEngine(bp *bpl.Blueprint) *engine.Engine {
	eng, err := engine.New(meta.NewDB(), bp)
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

// expScenario replays section 3.4 and prints the narrated checkpoints.
func expScenario() {
	fmt.Println("EXP FIG45 — section 3.4 scenario checkpoints (paper narrative vs measured)")
	sess, _, err := flow.NewEDTCSession(1995)
	if err != nil {
		log.Fatal(err)
	}
	res, err := flow.RunEDTCScenario(sess)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-42s %-12s %s\n", "checkpoint", "paper", "measured")
	rows := [][3]string{
		{"first simulation of CPU.HDL_model.1", "negative", res.FirstSim},
		{"second simulation of CPU.HDL_model.2", "good", res.SecondSim},
		{"model version after the change", "3", fmt.Sprintf("%d", res.HDL3.Version)},
		{"netlist created automatically", "yes", fmt.Sprintf("%v", res.Netlist.Version >= 1)},
		{"stale OIDs after version-3 check-in", "derived set", fmt.Sprintf("%d OIDs", len(res.StaleAfterChange))},
	}
	for _, r := range rows {
		fmt.Printf("  %-42s %-12s %s\n", r[0], r[1], r[2])
	}
}

// expPropagation prints the EXP-PROP table: invalidation wave size and
// time across tree shapes and PROPAGATE filtering.
func expPropagation() {
	fmt.Println("EXP-PROP — selective change propagation over hierarchies")
	fmt.Printf("  %-8s %-8s %-10s %-10s %-14s %s\n",
		"depth", "fanout", "nodes", "filtered", "propagations", "time/ckin")
	for _, cfg := range []struct {
		depth, fanout int
		filtered      bool
	}{
		{2, 2, false}, {4, 2, false}, {6, 2, false},
		{3, 4, false}, {3, 8, false}, {5, 4, false},
		{6, 2, true}, {3, 8, true}, {5, 4, true},
	} {
		propagates := []string{"outofdate"}
		if cfg.filtered {
			propagates = nil
		}
		bp, err := flow.PropagationBlueprint("prop", "node", propagates)
		if err != nil {
			log.Fatal(err)
		}
		eng := mustEngine(bp)
		root, all, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: cfg.depth, Fanout: cfg.fanout})
		if err != nil {
			log.Fatal(err)
		}
		before := eng.Stats()
		const iters = 50
		d := timeIt(iters, func() {
			if err := eng.PostAndDrain(engine.Event{
				Name: engine.EventCheckin, Dir: bpl.DirDown, Target: root,
			}); err != nil {
				log.Fatal(err)
			}
		})
		after := eng.Stats()
		perOp := float64(after.Propagations-before.Propagations) / iters
		fmt.Printf("  %-8d %-8d %-10d %-10v %-14.0f %v\n",
			cfg.depth, cfg.fanout, len(all), cfg.filtered, perOp, d)
	}
}

// expLoosening prints the EXP-LOOSE table.
func expLoosening() {
	fmt.Println("EXP-LOOSE — policy loosening limits change propagation (tree depth=5 fanout=3)")
	fmt.Printf("  %-10s %-16s %s\n", "policy", "deliveries/ckin", "time/ckin")
	for _, policy := range []string{"strict", "loosened"} {
		var bp *bpl.Blueprint
		var err error
		if policy == "strict" {
			bp, err = flow.PropagationBlueprint("strict", "node", []string{"outofdate"})
		} else {
			bp, err = bpl.Parse(`blueprint loose
view default
    property uptodate default true
    when outofdate do uptodate = false done
endview
view node
    use_link move propagates outofdate
endview
endblueprint`)
		}
		if err != nil {
			log.Fatal(err)
		}
		eng := mustEngine(bp)
		root, _, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: 5, Fanout: 3})
		if err != nil {
			log.Fatal(err)
		}
		before := eng.Stats()
		const iters = 50
		d := timeIt(iters, func() {
			if err := eng.PostAndDrain(engine.Event{
				Name: engine.EventCheckin, Dir: bpl.DirDown, Target: root,
			}); err != nil {
				log.Fatal(err)
			}
		})
		after := eng.Stats()
		fmt.Printf("  %-10s %-16.1f %v\n", policy,
			float64(after.Deliveries-before.Deliveries)/iters, d)
	}
}

// expObserver prints the EXP-OBS table: designer-blocking cost per edit.
func expObserver() {
	fmt.Println("EXP-OBS — observer (DAMOCLES) vs activity-driven (NELSIS-style)")
	fmt.Printf("  %-8s %-22s %-22s %-22s %s\n",
		"chain", "observer designer-op", "observer total", "activity designer-op", "activity rebuilds")
	for _, n := range []int{4, 16, 64} {
		views := make([]string, n)
		for i := range views {
			views[i] = fmt.Sprintf("v%02d", i)
		}
		src := "blueprint obs\nview default\n    property uptodate default true\n" +
			"    when ckin do uptodate = true; post outofdate down done\n" +
			"    when outofdate do uptodate = false done\nendview\n"
		for i, v := range views {
			src += "view " + v + "\n"
			if i > 0 {
				src += "    link_from " + views[i-1] + " move propagates outofdate type derived\n"
			}
			src += "endview\n"
		}
		src += "endblueprint\n"
		bp, err := bpl.Parse(src)
		if err != nil {
			log.Fatal(err)
		}
		eng := mustEngine(bp)
		keys, err := flow.BuildChain(eng, flow.ChainSpec{Block: "blk", Views: views})
		if err != nil {
			log.Fatal(err)
		}
		head := keys[0]
		ev := engine.Event{Name: engine.EventCheckin, Dir: bpl.DirDown, Target: head}

		const iters = 200
		designer := timeIt(iters, func() {
			if err := eng.Post(ev); err != nil {
				log.Fatal(err)
			}
		})
		// Drain what accumulated, then measure full cycles.
		if err := eng.Drain(); err != nil {
			log.Fatal(err)
		}
		total := timeIt(iters, func() {
			if err := eng.PostAndDrain(ev); err != nil {
				log.Fatal(err)
			}
		})

		m := baseline.NewManager()
		if err := m.AddNode(baseline.NodeID(views[0])); err != nil {
			log.Fatal(err)
		}
		for i := 1; i < n; i++ {
			if err := m.AddNode(baseline.NodeID(views[i]), baseline.NodeID(views[i-1])); err != nil {
				log.Fatal(err)
			}
		}
		tail := baseline.NodeID(views[n-1])
		var rebuilds int
		activity := timeIt(iters, func() {
			if err := m.Touch(baseline.NodeID(views[0])); err != nil {
				log.Fatal(err)
			}
			st, err := m.Demand(tail)
			if err != nil {
				log.Fatal(err)
			}
			rebuilds += st.Rebuilt
		})
		fmt.Printf("  %-8d %-22v %-22v %-22v %.1f/op\n",
			n, designer, total, activity, float64(rebuilds)/iters)
	}
}

// expConfigurations prints the EXP-CONF table.  Besides timing, it shows
// the storage contrast behind the paper's "light weight configuration
// objects": a configuration retains database *addresses*, a materialized
// copy retains full objects with their property maps.
func expConfigurations() {
	fmt.Println("EXP-CONF — lightweight configuration snapshots vs materialization")
	fmt.Printf("  %-8s %-14s %-14s %-22s %s\n",
		"OIDs", "snapshot", "materialize", "snapshot retains", "materialize retains")
	for _, n := range []int{100, 1000, 10000} {
		bp, err := flow.PropagationBlueprint("conf", "node", []string{"outofdate"})
		if err != nil {
			log.Fatal(err)
		}
		eng := mustEngine(bp)
		root, _, err := flow.BuildTree(eng, flow.TreeSpec{View: "node", Depth: 2, Fanout: n - 1})
		if err != nil {
			log.Fatal(err)
		}
		db := eng.DB()
		const iters = 20
		i := 0
		snap := timeIt(iters, func() {
			name := fmt.Sprintf("s%d", i)
			i++
			if _, err := db.SnapshotHierarchy(name, root, meta.FollowUseLinks); err != nil {
				log.Fatal(err)
			}
			if err := db.DeleteConfiguration(name); err != nil {
				log.Fatal(err)
			}
		})
		cfg, err := db.SnapshotHierarchy("mat", root, meta.FollowUseLinks)
		if err != nil {
			log.Fatal(err)
		}
		var resolved int
		mat := timeIt(iters, func() {
			r, err := db.Resolve("mat")
			if err != nil {
				log.Fatal(err)
			}
			resolved = len(r.OIDs)
		})
		// Rough retained-size accounting: a Key is ~2 string headers + an
		// int (~40 B); a materialized OID clone carries the key, a seq,
		// and a property map (conservatively ~200 B + entries).
		snapBytes := len(cfg.OIDs)*40 + len(cfg.Links)*8
		matBytes := resolved * 240
		fmt.Printf("  %-8d %-14v %-14v %-22s %s\n", n, snap, mat,
			fmt.Sprintf("%d addresses (~%d KiB)", len(cfg.OIDs)+len(cfg.Links), snapBytes/1024),
			fmt.Sprintf("%d objects (~%d KiB)", resolved, matBytes/1024))
	}
}

// expScheduling prints the EXP-SCHED comparison.
func expScheduling() {
	fmt.Println("EXP-SCHED — automated vs manual tool invocation (ckin → netlister)")
	const iters = 30
	auto := timeIt(iters, func() {
		sess, _, err := flow.NewEDTCSession(7)
		if err != nil {
			log.Fatal(err)
		}
		hdl, err := sess.CheckinHDL("CPU", 50, 0)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.RunHDLSim(hdl); err != nil {
			log.Fatal(err)
		}
		lib, err := sess.InstallLibrary("stdlib")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Synthesize(hdl, lib); err != nil {
			log.Fatal(err)
		}
		if _, err := sess.Eng.DB().Latest("CPU", "netlist"); err != nil {
			log.Fatal("auto netlister did not run")
		}
	})
	manual := timeIt(iters, func() {
		sess, _, err := flow.NewEDTCSession(7)
		if err != nil {
			log.Fatal(err)
		}
		hdl, err := sess.CheckinHDL("CPU", 50, 0)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.RunHDLSim(hdl); err != nil {
			log.Fatal(err)
		}
		lib, err := sess.InstallLibrary("stdlib")
		if err != nil {
			log.Fatal(err)
		}
		sch, err := sess.Synthesize(hdl, lib)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.RunNetlister(sch); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("  automatic (exec rule):  %v per flow\n", auto)
	fmt.Printf("  manual (designer-run):  %v per flow (plus one extra designer action)\n", manual)
}
