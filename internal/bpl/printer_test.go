package bpl

import (
	"reflect"
	"testing"
)

func TestPrintRoundTripEDTC(t *testing.T) {
	bp := mustParse(t, EDTCExample)
	src := Print(bp)
	bp2, err := Parse(src)
	if err != nil {
		t.Fatalf("reparse of printed form: %v\n%s", err, src)
	}
	if !reflect.DeepEqual(bp, bp2) {
		t.Errorf("round trip changed the tree\nprinted:\n%s", src)
	}
}

func TestPrintRoundTripConstructs(t *testing.T) {
	srcs := []string{
		// Quoted values with spaces and variables.
		`blueprint b
view v
    property msg default "hello world"
    when e do m = "$oid by $user"; exec run.sh $OID "two words"; notify "hi $owner" done
endview
endblueprint`,
		// Expression precedence.
		`blueprint b
view v
    let s = $a or ($b == c) and not $d
    let q = not ($a or $b)
    let r = ($a or $b) and $c
endview
endblueprint`,
		// Post variants.
		`blueprint b
view v
    when e do post x up; post y down to other; post z down "m1" m2 done
endview
endblueprint`,
		// Link variants.
		`blueprint b
view v
    use_link copy propagates a, b
    link_from w propagates c type derived
    link_from u move propagates d, e, f type depend_on
endview
view w
endview
view u
endview
endblueprint`,
	}
	for i, src := range srcs {
		bp, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		printed := Print(bp)
		bp2, err := Parse(printed)
		if err != nil {
			t.Fatalf("case %d reparse: %v\n%s", i, err, printed)
		}
		if !reflect.DeepEqual(bp, bp2) {
			t.Errorf("case %d: round trip changed tree\n%s", i, printed)
		}
		// Idempotence: printing the reparse gives identical text.
		if p2 := Print(bp2); p2 != printed {
			t.Errorf("case %d: print not idempotent\n--- first\n%s\n--- second\n%s", i, printed, p2)
		}
	}
}

func TestExprStringPrecedence(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{`$a and $b or $c`, `$a and $b or $c`},
		{`$a and ($b or $c)`, `$a and ($b or $c)`},
		{`not $a and $b`, `not $a and $b`},
		{`not ($a and $b)`, `not ($a and $b)`},
		{`($x == y)`, `($x == y)`},
		{`($x != "spaced out")`, `($x != "spaced out")`},
	}
	for _, tt := range tests {
		bp := mustParse(t, "blueprint b\nview v\n let s = "+tt.src+"\nendview\nendblueprint")
		v, _ := bp.View("v")
		if got := v.Lets[0].Expr.String(); got != tt.want {
			t.Errorf("String(%s) = %q, want %q", tt.src, got, tt.want)
		}
	}
}
