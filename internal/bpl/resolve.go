package bpl

// Effective-view resolution: the special default view applies to all views
// (section 3.4), so the template and run-time rules seen by an OID are the
// union of its own view's declarations and the default view's.  Where both
// declare the same property, the specific view wins.  Rules run default
// view first, then the specific view, so project-wide policy applies before
// view-specific behaviour and later assignments override earlier ones.

// EffectiveProperties returns the property templates applying to the named
// view: default-view properties not overridden, followed by the view's own.
func (bp *Blueprint) EffectiveProperties(view string) []*PropertyDecl {
	v, _ := bp.View(view)
	var out []*PropertyDecl
	if dv := bp.DefaultView(); dv != nil && dv.Name != view {
		for _, p := range dv.Properties {
			overridden := false
			if v != nil {
				_, overridden = v.Property(p.Name)
			}
			if !overridden {
				out = append(out, p)
			}
		}
	}
	if v != nil {
		out = append(out, v.Properties...)
	}
	return out
}

// EffectiveLets returns the continuous assignments applying to the named
// view, default view first.  A view-level let with the same target name
// replaces the default one.
func (bp *Blueprint) EffectiveLets(view string) []*LetDecl {
	v, _ := bp.View(view)
	var out []*LetDecl
	if dv := bp.DefaultView(); dv != nil && dv.Name != view {
		for _, l := range dv.Lets {
			overridden := false
			if v != nil {
				for _, vl := range v.Lets {
					if vl.Name == l.Name {
						overridden = true
						break
					}
				}
			}
			if !overridden {
				out = append(out, l)
			}
		}
	}
	if v != nil {
		out = append(out, v.Lets...)
	}
	return out
}

// EffectiveRules returns the run-time rules for an event on the named view:
// default-view rules first, then the view's own.
func (bp *Blueprint) EffectiveRules(view, event string) []*Rule {
	var out []*Rule
	if dv := bp.DefaultView(); dv != nil && dv.Name != view {
		out = append(out, dv.RulesFor(event)...)
	}
	if v, ok := bp.View(view); ok {
		out = append(out, v.RulesFor(event)...)
	}
	return out
}

// EffectiveLinks returns the link templates applying to the named view:
// the default view's templates followed by the view's own.
func (bp *Blueprint) EffectiveLinks(view string) []*LinkDecl {
	var out []*LinkDecl
	if dv := bp.DefaultView(); dv != nil && dv.Name != view {
		out = append(out, dv.Links...)
	}
	if v, ok := bp.View(view); ok {
		out = append(out, v.Links...)
	}
	return out
}

// LinkTemplate finds the template decorating a new link of the given class
// between fromView and toView: for a use link, a use_link declaration in the
// (shared) view type; for a derive link, a link_from fromView declaration in
// toView.  The default view is consulted after the specific view.
func (bp *Blueprint) LinkTemplate(use bool, fromView, toView string) (*LinkDecl, bool) {
	for _, d := range bp.EffectiveLinks(toView) {
		if use && d.Use {
			return d, true
		}
		if !use && !d.Use && d.FromView == fromView {
			return d, true
		}
	}
	return nil, false
}

// LinkDeclByTemplateID finds the link template with the given identifier
// anywhere in the blueprint.  Link instances are stamped with their
// template ID at creation; version inheritance uses this lookup so a link
// shifts according to its own template no matter which endpoint is being
// versioned (a new synth_lib version must shift the depend_on links that
// point out of it just as a new schematic version shifts the links pointing
// into it).
func (bp *Blueprint) LinkDeclByTemplateID(id string) (*LinkDecl, bool) {
	for _, v := range bp.Views {
		for _, d := range v.Links {
			if d.TemplateID == id {
				return d, true
			}
		}
	}
	return nil, false
}

// Events returns every event name mentioned anywhere in the blueprint —
// rule triggers, post actions, and link PROPAGATE lists — deduplicated in
// first-appearance order.  Useful for tooling and policy review.
func (bp *Blueprint) Events() []string {
	seen := map[string]bool{}
	var out []string
	push := func(e string) {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	for _, v := range bp.Views {
		for _, r := range v.Rules {
			push(r.Event)
			for _, a := range r.Actions {
				if pa, ok := a.(*PostAction); ok {
					push(pa.Event)
				}
			}
		}
		for _, l := range v.Links {
			for _, e := range l.Propagates {
				push(e)
			}
		}
	}
	return out
}
