package load

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/internal/netfault"
	"repro/internal/server"
)

// Proc is one spawned damocles process with its scanned stderr, so the
// harness can wait for log lines (the bound address, applied positions)
// and drive real-process chaos: SIGKILL, SIGSTOP partitions, restarts.
type Proc struct {
	Cmd  *exec.Cmd
	Addr string
	Dir  string // journal directory
	Args []string

	mu    sync.Mutex
	lines []string
	eof   bool
}

var servingLineRE = regexp.MustCompile(`serving on (\S+)`)

// spawnProc launches bin with args and scans its stderr.
func spawnProc(bin string, args []string) (*Proc, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("load: start %s: %w", bin, err)
	}
	p := &Proc{Cmd: cmd, Args: args}
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			p.mu.Lock()
			p.lines = append(p.lines, sc.Text())
			p.mu.Unlock()
		}
		p.mu.Lock()
		p.eof = true
		p.mu.Unlock()
	}()
	return p, nil
}

// waitFor polls the scanned stderr for the first match of re, returning
// its submatches (nil on timeout or process exit).
func (p *Proc) waitFor(re *regexp.Regexp, timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	seen := 0
	for {
		p.mu.Lock()
		for ; seen < len(p.lines); seen++ {
			if m := re.FindStringSubmatch(p.lines[seen]); m != nil {
				p.mu.Unlock()
				return m
			}
		}
		eof := p.eof
		p.mu.Unlock()
		if eof || time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Output returns the accumulated stderr, for diagnostics.
func (p *Proc) Output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := ""
	for _, l := range p.lines {
		out += l + "\n"
	}
	return out
}

// Kill SIGKILLs the process and reaps it.
func (p *Proc) Kill() {
	if p.Cmd.Process != nil && p.Cmd.ProcessState == nil {
		p.Cmd.Process.Kill()
		p.Cmd.Wait()
	}
}

// Terminate SIGTERMs the process (graceful shutdown) and reaps it.
func (p *Proc) Terminate() error {
	if p.Cmd.Process == nil || p.Cmd.ProcessState != nil {
		return nil
	}
	if err := p.Cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	return p.Cmd.Wait()
}

// Pause SIGSTOPs the process — the harness's network-partition stand-in:
// a paused follower stops draining its stream and falls behind without
// its connection dying.
func (p *Proc) Pause() error { return p.Cmd.Process.Signal(syscall.SIGSTOP) }

// Resume SIGCONTs a paused process.
func (p *Proc) Resume() error { return p.Cmd.Process.Signal(syscall.SIGCONT) }

// ClusterOpts configures StartCluster.
type ClusterOpts struct {
	// Followers is the read-replica count (0: primary only).
	Followers int

	// Ack gates primary writes on this many follower watermarks
	// (damocles -ack); 0 disables the quorum gate.
	Ack int

	// Fsync forces per-commit fsync on every node.
	Fsync bool

	// BaseDir holds the per-node journal directories (a temp dir when
	// empty; Close removes it only when the harness created it).
	BaseDir string

	// Blueprint is an optional -blueprint file path shared by all nodes.
	Blueprint string

	// ProxyFollowers routes every follower's upstream connection through
	// an in-process netfault proxy, so the harness can blackhole a
	// replication link (PartitionFollower) without touching the process —
	// the network partition, as distinct from the SIGSTOP freeze.
	ProxyFollowers bool

	// StallTimeout, when positive, is passed to followers as
	// -stall-timeout: how long a silent stream lives before the follower
	// declares the link dead.  Partition runs scale it down so detection
	// fits the measurement window.
	StallTimeout time.Duration

	// PingInterval, when positive, is passed to every node as
	// -follow-ping: the idle-stream liveness cadence.
	PingInterval time.Duration

	// Logf receives harness progress lines (nil: silent).
	Logf func(format string, args ...any)
}

// Cluster is a real damocles fleet under harness control: one primary,
// N followers, all spawned from the same binary with their own journal
// directories — the substrate the chaos mode drives.
type Cluster struct {
	Bin       string
	Primary   *Proc
	Followers []*Proc
	Opts      ClusterOpts

	// Proxies[i] fronts Followers[i]'s upstream link when the cluster
	// was started with ProxyFollowers; nil entries otherwise.
	Proxies []*netfault.Proxy

	ownsDir bool
	logf    func(format string, args ...any)
}

// StartCluster spawns a journaled primary plus opts.Followers followers
// and waits until every node serves.
func StartCluster(bin string, opts ClusterOpts) (*Cluster, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	c := &Cluster{Bin: bin, Opts: opts, logf: logf}
	if opts.BaseDir == "" {
		dir, err := os.MkdirTemp("", "loadgen-cluster-")
		if err != nil {
			return nil, err
		}
		opts.BaseDir = dir
		c.Opts.BaseDir = dir
		c.ownsDir = true
	}
	pdir := filepath.Join(opts.BaseDir, "primary")
	args := []string{"-addr", "127.0.0.1:0", "-journal", pdir}
	if opts.Ack > 0 {
		args = append(args, "-ack", strconv.Itoa(opts.Ack))
	}
	if opts.Fsync {
		args = append(args, "-fsync")
	}
	if opts.Blueprint != "" {
		args = append(args, "-blueprint", opts.Blueprint)
	}
	if opts.PingInterval > 0 {
		args = append(args, "-follow-ping", opts.PingInterval.String())
	}
	prim, err := c.startServing(args)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("load: primary: %w", err)
	}
	prim.Dir = pdir
	c.Primary = prim
	logf("primary serving on %s (journal %s)", prim.Addr, pdir)
	for i := 0; i < opts.Followers; i++ {
		fdir := filepath.Join(opts.BaseDir, fmt.Sprintf("follower%d", i))
		upstream := prim.Addr
		var px *netfault.Proxy
		if opts.ProxyFollowers {
			px, err = netfault.NewProxy(prim.Addr)
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("load: follower %d proxy: %w", i, err)
			}
			upstream = px.Addr()
		}
		fargs := []string{"-addr", "127.0.0.1:0", "-journal", fdir, "-follow", upstream}
		if opts.Fsync {
			fargs = append(fargs, "-fsync")
		}
		if opts.Blueprint != "" {
			fargs = append(fargs, "-blueprint", opts.Blueprint)
		}
		if opts.StallTimeout > 0 {
			fargs = append(fargs, "-stall-timeout", opts.StallTimeout.String())
		}
		if opts.PingInterval > 0 {
			fargs = append(fargs, "-follow-ping", opts.PingInterval.String())
		}
		fol, err := c.startServing(fargs)
		if err != nil {
			if px != nil {
				px.Close()
			}
			c.Close()
			return nil, fmt.Errorf("load: follower %d: %w", i, err)
		}
		fol.Dir = fdir
		c.Followers = append(c.Followers, fol)
		c.Proxies = append(c.Proxies, px)
		if px != nil {
			logf("follower %d serving on %s (journal %s, upstream via proxy %s)", i, fol.Addr, fdir, px.Addr())
		} else {
			logf("follower %d serving on %s (journal %s)", i, fol.Addr, fdir)
		}
	}
	return c, nil
}

// PartitionFollower blackholes follower i's replication link: both
// directions go silent without any connection closing — the half-open
// partition the liveness contract exists for.
func (c *Cluster) PartitionFollower(i int) error {
	if i < 0 || i >= len(c.Proxies) || c.Proxies[i] == nil {
		return fmt.Errorf("load: follower %d has no proxy (start the cluster with ProxyFollowers)", i)
	}
	c.logf("partition: blackholing follower %d's replication link", i)
	c.Proxies[i].Blackhole()
	return nil
}

// HealFollower lifts follower i's blackhole; parked bytes drain and the
// link resumes.
func (c *Cluster) HealFollower(i int) error {
	if i < 0 || i >= len(c.Proxies) || c.Proxies[i] == nil {
		return fmt.Errorf("load: follower %d has no proxy", i)
	}
	c.logf("partition: healing follower %d's replication link", i)
	c.Proxies[i].Heal()
	return nil
}

func (c *Cluster) startServing(args []string) (*Proc, error) {
	p, err := spawnProc(c.Bin, args)
	if err != nil {
		return nil, err
	}
	m := p.waitFor(servingLineRE, 20*time.Second)
	if m == nil {
		p.Kill()
		return nil, fmt.Errorf("node did not start serving:\n%s", p.Output())
	}
	p.Addr = m[1]
	return p, nil
}

// FollowerAddrs lists the follower serving addresses.
func (c *Cluster) FollowerAddrs() []string {
	addrs := make([]string, len(c.Followers))
	for i, f := range c.Followers {
		addrs[i] = f.Addr
	}
	return addrs
}

// Close kills every node, tears down the proxies, and removes the
// harness-owned base directory.
func (c *Cluster) Close() {
	if c.Primary != nil {
		c.Primary.Kill()
	}
	for _, f := range c.Followers {
		f.Kill()
	}
	for _, px := range c.Proxies {
		if px != nil {
			px.Close()
		}
	}
	if c.ownsDir {
		os.RemoveAll(c.Opts.BaseDir)
	}
}

// KillPrimary SIGKILLs the primary mid-traffic — the chaos opening move.
func (c *Cluster) KillPrimary() {
	c.logf("chaos: SIGKILL primary %s", c.Primary.Addr)
	c.Primary.Kill()
}

// appliedOf asks a node's ROLE for its applied LSN (-1 when unreachable).
func appliedOf(addr string) int64 {
	cl, err := server.DialTimeout(addr, 2*time.Second, 2*time.Second)
	if err != nil {
		return -1
	}
	defer cl.Hangup()
	ri, err := cl.Role()
	if err != nil {
		return -1
	}
	return ri.Applied
}

// Failover promotes the most-advanced follower through the real CLI
// (damocles -promote) and re-points every surviving follower at it by
// restarting their processes with -follow — the operator's documented
// drill, driven programmatically.  It returns the new primary's address.
func (c *Cluster) Failover() (string, error) {
	if len(c.Followers) == 0 {
		return "", fmt.Errorf("load: failover needs at least one follower")
	}
	// Let the follower applied positions settle: the streams may still be
	// draining frames received before the kill.
	var last []int64
	for settle := 0; settle < 3; {
		cur := make([]int64, len(c.Followers))
		for i, f := range c.Followers {
			cur[i] = appliedOf(f.Addr)
		}
		if last != nil && equalLSNs(cur, last) {
			settle++
		} else {
			settle = 0
		}
		last = cur
		time.Sleep(50 * time.Millisecond)
	}
	winner := 0
	for i, lsn := range last {
		if lsn > last[winner] {
			winner = i
		}
	}
	w := c.Followers[winner]
	c.logf("chaos: promoting follower %d (%s, applied %d) via CLI", winner, w.Addr, last[winner])
	out, err := exec.Command(c.Bin, "-promote", w.Addr).CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("load: damocles -promote %s: %v\n%s", w.Addr, err, out)
	}
	// The promoted node is the new primary; re-point the survivors by
	// restarting them against it (graceful stop → -follow new primary,
	// resuming from their persisted applied positions).
	newPrimary := w
	survivors := make([]*Proc, 0, len(c.Followers)-1)
	for i, f := range c.Followers {
		if i == winner {
			continue
		}
		c.logf("chaos: re-pointing follower %s at %s", f.Addr, newPrimary.Addr)
		if err := f.Terminate(); err != nil {
			f.Kill()
		}
		fargs := []string{"-addr", "127.0.0.1:0", "-journal", f.Dir, "-follow", newPrimary.Addr}
		if c.Opts.Fsync {
			fargs = append(fargs, "-fsync")
		}
		if c.Opts.Blueprint != "" {
			fargs = append(fargs, "-blueprint", c.Opts.Blueprint)
		}
		nf, err := c.startServing(fargs)
		if err != nil {
			return "", fmt.Errorf("load: re-point %s: %w", f.Dir, err)
		}
		nf.Dir = f.Dir
		survivors = append(survivors, nf)
	}
	c.Primary = newPrimary
	c.Followers = survivors
	return newPrimary.Addr, nil
}

func equalLSNs(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BuildDamocles compiles the daemon into dir (or a temp dir when empty)
// and returns the binary path — the harness's self-provisioning path for
// `loadgen -spawn` without a prebuilt -bin.
func BuildDamocles(dir string) (string, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	bin := filepath.Join(dir, fmt.Sprintf("damocles-load-%d", os.Getpid()))
	// Build by import path, not directory, so this works from any cwd
	// inside the module (tests run in their package directory).
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/damocles")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("load: go build repro/cmd/damocles: %v\n%s", err, out)
	}
	return bin, nil
}
