package journal_test

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"testing/quick"

	"repro/internal/journal"
	"repro/internal/meta"
)

// TestQuickJournalReplayEqualsSaveLoad is the persistence equivalence
// property: for a randomized op sequence, recovery from the journal
// (snapshot + record-tail replay, through rotation, mid-sequence
// snapshots and commits) must round-trip exactly like a whole-database
// Save/Load — byte-identical canonical documents — and both must equal
// the live database.  Shard count is a pure performance knob, so the
// property is checked at 1, 4 and 64 shards.
func TestQuickJournalReplayEqualsSaveLoad(t *testing.T) {
	for _, shards := range []int{1, 4, 64} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			f := func(ops []byte) bool { return checkJournalProperty(t, shards, ops) }
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// checkJournalProperty interprets ops as a random mutation program, runs
// it against a journaled database, and verifies the three-way equality.
func checkJournalProperty(t *testing.T, shards int, ops []byte) bool {
	t.Helper()
	dir, err := os.MkdirTemp("", "djl-quick-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	// Tiny segments and a low record threshold so even short programs
	// exercise rotation and auto-snapshots; the timer stays off for
	// determinism.
	w, db, err := journal.Open(dir, journal.Options{
		Shards:       shards,
		SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	blocks := []string{"cpu", "alu", "reg", "io"}
	views := []string{"HDL_model", "SCHEMA", "netlist"}
	events := [][]string{nil, {"ckin"}, {"ckin", "outofdate"}}
	var keys []meta.Key
	var links []meta.LinkID
	names := 0

	pick := func(b byte, n int) int { return int(b) % n }
	for i := 0; i+2 < len(ops); i += 3 {
		op, a, b := ops[i], ops[i+1], ops[i+2]
		switch op % 12 {
		case 0, 1: // create a version (common)
			k, err := db.NewVersion(blocks[pick(a, len(blocks))], views[pick(b, len(views))])
			if err != nil {
				t.Fatal(err)
			}
			keys = append(keys, k)
		case 2:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				if err := db.SetProp(k, "p"+fmt.Sprint(b%4), fmt.Sprint(b)); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				err := db.UpdateOID(k, func(o *meta.OID) {
					o.Props["batch"] = fmt.Sprint(a)
					delete(o.Props, "p"+fmt.Sprint(b%4))
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			if len(keys) > 1 {
				from, to := keys[pick(a, len(keys))], keys[pick(b, len(keys))]
				// Random pairs may be invalid (self-links, use links across
				// views); those must emit nothing.
				if id, err := db.AddLink(meta.DeriveLink, from, to, "", events[pick(a^b, len(events))], nil); err == nil {
					links = append(links, id)
				}
			}
		case 5:
			if len(links) > 0 {
				if err := db.SetLinkProp(links[pick(a, len(links))], "TYPE", "equivalence"); err != nil {
					t.Fatal(err)
				}
			}
		case 6:
			if len(links) > 0 {
				j := pick(a, len(links))
				if err := db.DeleteLink(links[j]); err != nil {
					t.Fatal(err)
				}
				links = append(links[:j], links[j+1:]...)
			}
		case 7:
			if len(links) > 0 && len(keys) > 0 {
				// Retargeting a random link to a random key usually fails
				// validation; success and failure must both round-trip.
				id := links[pick(a, len(links))]
				if l, err := db.GetLink(id); err == nil {
					_ = db.RetargetLink(id, l.From, keys[pick(b, len(keys))])
				}
			}
		case 8:
			names++
			if _, err := db.SnapshotQuery(fmt.Sprintf("cfg%d", names), func(o *meta.OID) bool {
				return o.Key.Version%2 == int(a)%2
			}); err != nil {
				t.Fatal(err)
			}
		case 9:
			names++
			ws := fmt.Sprintf("ws%d", names)
			if err := db.AddWorkspace(ws, "/data"); err != nil {
				t.Fatal(err)
			}
			if len(keys) > 0 {
				if err := db.BindPath(ws, keys[pick(a, len(keys))], "some/path"); err != nil {
					t.Fatal(err)
				}
			}
		case 10:
			if len(keys) > 0 {
				k := keys[pick(a, len(keys))]
				if _, err := db.PruneVersions(k.Block, k.View, 1+int(b)%2); err != nil {
					t.Fatal(err)
				}
				// Pruning may have removed keys/links; drop stale handles.
				keys = liveKeys(db, keys)
				links = liveLinks(db, links)
			}
		case 11:
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			if a%3 == 0 {
				if err := w.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	live := saveBytes(t, db)

	// Save/Load round-trip.
	reloaded, err := meta.LoadShards(bytes.NewReader(live), shards)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live, saveBytes(t, reloaded)) {
		t.Error("Save/Load round-trip not identity")
		return false
	}

	// Journal recovery (crash-style: the writer stays unclosed).
	recovered, _, err := journal.Replay(dir, shards)
	if err != nil {
		t.Error(err)
		return false
	}
	if !bytes.Equal(live, saveBytes(t, recovered)) {
		t.Errorf("journal recovery differs from live state:\n--- live\n%s\n--- recovered\n%s",
			live, saveBytes(t, recovered))
		return false
	}
	return true
}

func liveKeys(db *meta.DB, keys []meta.Key) []meta.Key {
	out := keys[:0]
	for _, k := range keys {
		if db.HasOID(k) {
			out = append(out, k)
		}
	}
	return out
}

func liveLinks(db *meta.DB, links []meta.LinkID) []meta.LinkID {
	out := links[:0]
	for _, id := range links {
		if _, err := db.GetLink(id); err == nil {
			out = append(out, id)
		}
	}
	return out
}
