// designtasks demonstrates the design-task extension (the paper's section
// 5 future work): higher-level descriptions of design activities, executed
// with task-level state requirements and tracked in the meta-database like
// any other design object.
package main

import (
	"fmt"
	"log"

	"repro/internal/flow"
	"repro/internal/task"
)

func main() {
	log.SetFlags(0)
	sess, _, err := flow.NewEDTCSession(7)
	if err != nil {
		log.Fatal(err)
	}

	// Primary data: a verified-able model and a library.
	if _, err := sess.CheckinHDL("CPU", 60, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.InstallLibrary("stdlib"); err != nil {
		log.Fatal(err)
	}

	runner := task.NewRunner(sess)
	for _, t := range []task.Task{
		task.VerifyModel("CPU"),
		task.ImplementBlock("CPU", "stdlib"),
		task.PhysicalSignoff("CPU"),
	} {
		rec, err := runner.Run(t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("task %-18s -> %-6s (%d steps", t.Name, rec.Status, rec.StepsRun)
		if rec.Failure != "" {
			fmt.Printf("; %s", rec.Failure)
		}
		fmt.Println(")")
	}

	// Task runs are OIDs: versioned, propertied, queryable.
	fmt.Println("\ntask history in the meta-database:")
	for _, name := range []string{"verify_CPU", "implement_CPU", "signoff_CPU"} {
		for _, k := range task.History(sess.Eng.DB(), name) {
			status, step, failure, err := task.Status(sess.Eng.DB(), k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-24s status=%-7s last_step=%-18s %s\n", k, status, step, failure)
		}
	}

	// A stale input makes the next signoff run fail at its requirement —
	// the task level inherits the wrappers' permission discipline.
	if _, err := sess.CheckinHDL("CPU", 61, 0); err != nil {
		log.Fatal(err)
	}
	rec, err := runner.Run(task.PhysicalSignoff("CPU"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter a new model check-in, signoff_CPU -> %s\n  (%s)\n", rec.Status, rec.Failure)
}
