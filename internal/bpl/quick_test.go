package bpl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genBlueprint builds a random but valid blueprint AST from a seed, used to
// property-test the Print→Parse round trip on trees the hand-written cases
// would never cover.
func genBlueprint(rng *rand.Rand) *Blueprint {
	names := []string{"default", "hdl", "schem", "netlist", "layout", "lib"}
	events := []string{"ckin", "outofdate", "sim", "drc", "lvs"}
	words := []string{"good", "bad", "ok", "not_equiv", "is_equiv", "true", "false"}
	vars := []string{"arg", "oid", "user", "uptodate", "sim_result"}

	genTemplate := func() Template {
		switch rng.Intn(4) {
		case 0:
			return LitTemplate(words[rng.Intn(len(words))])
		case 1:
			return VarTemplate(vars[rng.Intn(len(vars))])
		case 2:
			return ParseTemplate("$" + vars[rng.Intn(len(vars))] + " with " + words[rng.Intn(len(words))])
		default:
			return ParseTemplate("plain text " + words[rng.Intn(len(words))])
		}
	}
	genOperand := func() Operand {
		if rng.Intn(2) == 0 {
			return Operand{Var: vars[rng.Intn(len(vars))]}
		}
		return Operand{Lit: words[rng.Intn(len(words))]}
	}
	var genExpr func(depth int) Expr
	genExpr = func(depth int) Expr {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return &BoolExpr{X: genOperand()}
			}
			return &CmpExpr{Neq: rng.Intn(2) == 0, L: genOperand(), R: genOperand()}
		}
		switch rng.Intn(3) {
		case 0:
			return &AndExpr{L: genExpr(depth - 1), R: genExpr(depth - 1)}
		case 1:
			return &OrExpr{L: genExpr(depth - 1), R: genExpr(depth - 1)}
		default:
			return &NotExpr{X: genExpr(depth - 1)}
		}
	}
	genAction := func() Action {
		switch rng.Intn(4) {
		case 0:
			return &AssignAction{Prop: "p" + words[rng.Intn(len(words))], Value: genTemplate()}
		case 1:
			argv := []Template{LitTemplate("tool.sh")}
			for i := rng.Intn(3); i > 0; i-- {
				argv = append(argv, genTemplate())
			}
			return &ExecAction{Argv: argv}
		case 2:
			return &NotifyAction{Message: genTemplate()}
		default:
			pa := &PostAction{
				Event: events[rng.Intn(len(events))],
				Dir:   Direction(rng.Intn(2)),
			}
			if rng.Intn(2) == 0 {
				pa.ToView = names[1+rng.Intn(len(names)-1)]
			}
			for i := rng.Intn(2); i > 0; i-- {
				pa.Args = append(pa.Args, genTemplate())
			}
			return pa
		}
	}

	bp := &Blueprint{Name: "gen"}
	nViews := rng.Intn(4) + 1
	for vi := 0; vi < nViews; vi++ {
		v := &View{Name: names[vi%len(names)] + string(rune('a'+vi))}
		for i := rng.Intn(3); i > 0; i-- {
			v.Properties = append(v.Properties, &PropertyDecl{
				Name:    "prop" + string(rune('a'+len(v.Properties))),
				Default: words[rng.Intn(len(words))],
				Inherit: InheritMode(rng.Intn(3)),
			})
		}
		for i := rng.Intn(2); i > 0; i-- {
			v.Lets = append(v.Lets, &LetDecl{
				Name: "let" + string(rune('a'+len(v.Lets))),
				Expr: genExpr(3),
			})
		}
		for i := rng.Intn(3); i > 0; i-- {
			d := &LinkDecl{Inherit: InheritMode(rng.Intn(3))}
			if rng.Intn(3) == 0 {
				d.Use = true
			} else {
				d.FromView = names[rng.Intn(len(names))]
				if rng.Intn(2) == 0 {
					d.Type = []string{"derived", "equivalence", "depend_on"}[rng.Intn(3)]
				}
			}
			for j := rng.Intn(2) + 1; j > 0; j-- {
				d.Propagates = append(d.Propagates, events[rng.Intn(len(events))])
			}
			d.TemplateID = v.Name + "#" + string(rune('0'+len(v.Links)))
			v.Links = append(v.Links, d)
		}
		for i := rng.Intn(3); i > 0; i-- {
			r := &Rule{Event: events[rng.Intn(len(events))]}
			for j := rng.Intn(3) + 1; j > 0; j-- {
				r.Actions = append(r.Actions, genAction())
			}
			v.Rules = append(v.Rules, r)
		}
		bp.Views = append(bp.Views, v)
	}
	return bp
}

// TestQuickPrintParseRoundTrip: for random valid ASTs, Parse(Print(bp))
// equals bp.  Template IDs are regenerated deterministically by the parser,
// so they match when the generator uses the same scheme.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bp := genBlueprint(rng)
		src := Print(bp)
		bp2, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: parse error %v\n%s", seed, err, src)
			return false
		}
		if !reflect.DeepEqual(bp, bp2) {
			t.Logf("seed %d: tree mismatch\n%s", seed, src)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickExprEvalTotal checks that evaluation is total (never panics) and
// boolean operators behave consistently with their truth tables on random
// expressions and environments.
func TestQuickExprEvalTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bp := genBlueprint(rng)
		lookup := func(name string) string {
			if rng.Intn(2) == 0 {
				return "true"
			}
			return "other"
		}
		for _, v := range bp.Views {
			for _, l := range v.Lets {
				_ = l.Expr.Eval(lookup)
				// Not(e) must negate a deterministic lookup.
				det := func(string) string { return "true" }
				if (&NotExpr{X: l.Expr}).Eval(det) == l.Expr.Eval(det) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
