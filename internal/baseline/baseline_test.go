package baseline

import (
	"fmt"
	"testing"
)

// buildFlow declares the EDTC-style flow: hdl -> schematic -> netlist ->
// layout, with a library input to the schematic.
func buildFlow(t *testing.T) *Manager {
	t.Helper()
	m := NewManager()
	steps := []struct {
		id     NodeID
		inputs []NodeID
	}{
		{"hdl", nil},
		{"lib", nil},
		{"schematic", []NodeID{"hdl", "lib"}},
		{"netlist", []NodeID{"schematic"}},
		{"layout", []NodeID{"netlist"}},
	}
	for _, s := range steps {
		if err := m.AddNode(s.id, s.inputs...); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestAddNodeValidation(t *testing.T) {
	m := NewManager()
	if err := m.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("a"); err == nil {
		t.Error("duplicate accepted")
	}
	if err := m.AddNode("b", "ghost"); err == nil {
		t.Error("undeclared input accepted")
	}
}

func TestFreshGraphNoRebuilds(t *testing.T) {
	m := buildFlow(t)
	st, err := m.Demand("layout")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 0 {
		t.Errorf("fresh graph rebuilt %d", st.Rebuilt)
	}
	if st.Checked != 5 {
		t.Errorf("checked = %d, want full closure 5", st.Checked)
	}
}

func TestTouchForcesTransitiveRebuild(t *testing.T) {
	m := buildFlow(t)
	var rebuilt []NodeID
	m.BuildHook = func(id NodeID) { rebuilt = append(rebuilt, id) }
	if err := m.Touch("hdl"); err != nil {
		t.Fatal(err)
	}
	stale, err := m.Stale("layout")
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Error("layout fresh after hdl edit")
	}
	st, err := m.Demand("layout")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 3 {
		t.Errorf("rebuilt = %d (%v), want schematic+netlist+layout", st.Rebuilt, rebuilt)
	}
	// Now everything is fresh again.
	if stale, _ := m.Stale("layout"); stale {
		t.Error("layout still stale after demand")
	}
	st, _ = m.Demand("layout")
	if st.Rebuilt != 0 {
		t.Errorf("second demand rebuilt %d", st.Rebuilt)
	}
}

func TestLibraryTouchAlsoInvalidates(t *testing.T) {
	m := buildFlow(t)
	if err := m.Touch("lib"); err != nil {
		t.Fatal(err)
	}
	if stale, _ := m.Stale("netlist"); !stale {
		t.Error("netlist fresh after library install")
	}
	if stale, _ := m.Stale("hdl"); stale {
		t.Error("primary hdl stale")
	}
}

func TestDemandCostGrowsWithClosure(t *testing.T) {
	// A linear chain of n nodes: every demand of the tail checks n nodes,
	// even when nothing changed — the obstructive cost the paper's
	// observer approach avoids.
	m := NewManager()
	const n = 50
	if err := m.AddNode("n0"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := m.AddNode(NodeID(fmt.Sprintf("n%d", i)), NodeID(fmt.Sprintf("n%d", i-1))); err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.Demand(NodeID(fmt.Sprintf("n%d", n-1)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Checked != n {
		t.Errorf("checked = %d, want %d", st.Checked, n)
	}
}

func TestPollAllSweepsEverything(t *testing.T) {
	m := buildFlow(t)
	st := m.PollAll()
	if st.Checked != 5 || st.Stale != 0 {
		t.Errorf("poll = %+v", st)
	}
	if err := m.Touch("hdl"); err != nil {
		t.Fatal(err)
	}
	st = m.PollAll()
	// schematic, netlist, layout are stale.
	if st.Stale != 3 {
		t.Errorf("stale = %d, want 3", st.Stale)
	}
}

func TestDiamondDependency(t *testing.T) {
	m := NewManager()
	for _, s := range []struct {
		id     NodeID
		inputs []NodeID
	}{
		{"src", nil},
		{"a", []NodeID{"src"}},
		{"b", []NodeID{"src"}},
		{"sink", []NodeID{"a", "b"}},
	} {
		if err := m.AddNode(s.id, s.inputs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Touch("src"); err != nil {
		t.Fatal(err)
	}
	st, err := m.Demand("sink")
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilt != 3 {
		t.Errorf("rebuilt = %d, want a, b, sink", st.Rebuilt)
	}
	// src visited once despite two paths.
	if st.Checked != 4 {
		t.Errorf("checked = %d, want 4", st.Checked)
	}
}

func TestErrorsOnUnknownNodes(t *testing.T) {
	m := NewManager()
	if _, err := m.Demand("ghost"); err == nil {
		t.Error("Demand on unknown node accepted")
	}
	if err := m.Touch("ghost"); err == nil {
		t.Error("Touch on unknown node accepted")
	}
	if _, err := m.Stale("ghost"); err == nil {
		t.Error("Stale on unknown node accepted")
	}
}
