// Command dquery queries project state from a running DAMOCLES server —
// the designer-side "what still needs to be modified before reaching a
// planned state" tool.
//
// Usage:
//
//	dquery [-addr host:port] state <block,view,version>
//	dquery [-addr host:port] report
//	dquery [-addr host:port] gap
//	dquery [-addr host:port] stats
//	dquery [-addr host:port] blueprint
//	dquery [-addr host:port] snapshot <name> <root-oid|*>
//	dquery [-addr host:port] dot <flow|state>
//	dquery [-addr host:port] links <block,view,version>
//	dquery [-addr host:port] query [<lsn>] <reach|deps|equiv> <oid> [use|all|type:t1,t2,...]
//	dquery [-addr host:port] query [<lsn>] resolve <configuration>
//
// query runs a graph query pinned at a journal LSN (omitted or 0 = the
// server's current state).  A read-only follower serves it too, first
// waiting until it has applied the LSN — the output at a given position is
// byte-identical on every node that has reached it.
//
// With -journal, dquery needs no running server: it recovers the database
// from the journal directory read-only (newest snapshot plus record tail,
// without repairing the files, so it is safe against a live server's
// directory) and answers the query from the recovered state.  Readiness
// evaluation then uses the blueprint named by -blueprint, or the built-in
// EDTC example.
//
// With -follow, dquery attaches to a journaled server's replication
// stream and prints every record as it commits — "tail -f" for the
// project's mutation history:
//
//	dquery -addr host:port -follow [from-lsn]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/cli"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/server"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dquery: ")
	addr := flag.String("addr", "127.0.0.1:7495", "project server address")
	jdir := flag.String("journal", "", "answer offline from this journal directory instead of a server")
	bpFile := flag.String("blueprint", "", "policy file for offline state evaluation (default: built-in EDTC example)")
	follow := flag.Bool("follow", false, "stream the server's journal records to stdout (optional arg: start after this lsn)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dquery [-addr host:port | -journal dir] <state|report|gap|stats|blueprint|snapshot|dot|links|query> [args]\n")
		fmt.Fprintf(os.Stderr, "       dquery [-addr host:port] -follow [from-lsn]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *follow {
		if *jdir != "" {
			log.Fatal("-follow streams from a server (-addr); it cannot tail an offline -journal directory")
		}
		if err := followStream(*addr, flag.Args()); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c, cleanup, err := connect(*addr, *jdir, *bpFile)
	if err != nil {
		log.Fatal(err)
	}
	defer cleanup()
	if err := cli.DQuery(os.Stdout, c, flag.Args()); err != nil {
		log.Fatal(err)
	}
}

// followStream prints a server's replication stream until the connection
// or the process ends.
func followStream(addr string, args []string) error {
	after := int64(0)
	if len(args) > 1 {
		return fmt.Errorf("-follow takes at most one <from-lsn> argument")
	}
	if len(args) == 1 {
		n, err := strconv.ParseInt(args[0], 10, 64)
		if err != nil || n < 0 {
			return fmt.Errorf("-follow: bad from-lsn %q", args[0])
		}
		after = n
	}
	c, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Hangup()
	return c.Follow(after, func(fr server.FollowFrame) error {
		switch {
		case fr.Rec != nil:
			fmt.Println(wire.EncodeFollowRecord(fr.Rec.LSN, fr.Rec.Seq, fr.Rec.Op, fr.Rec.Args))
		case fr.Snapshot != nil:
			fmt.Printf("snapshot lsn=%d (%d bytes)\n", fr.SnapLSN, len(fr.Snapshot))
		case fr.Mark:
			fmt.Printf("watermark %d\n", fr.Watermark)
		}
		return nil
	})
}

// connect yields a client against the requested backend: the addressed
// server, or an in-process server over a read-only journal recovery — the
// exact code path a networked query takes, on a loopback listener.
func connect(addr, jdir, bpFile string) (*server.Client, func(), error) {
	if jdir == "" {
		c, err := server.Dial(addr)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	}
	bp, err := cli.LoadBlueprint(bpFile)
	if err != nil {
		return nil, nil, err
	}
	db, lsn, err := journal.Replay(jdir, 0)
	if err != nil {
		return nil, nil, err
	}
	log.Printf("replayed %s to lsn %d: %+v", jdir, lsn, db.Stats())
	eng, err := engine.New(db, bp)
	if err != nil {
		return nil, nil, err
	}
	srv := server.New(eng)
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	c, err := server.Dial(bound)
	if err != nil {
		srv.Close()
		return nil, nil, err
	}
	return c, func() { c.Close(); srv.Close() }, nil
}
