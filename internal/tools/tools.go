// Package tools provides a deterministic simulated EDA tool suite.  The
// paper's BluePrint observes real tools (simulator, synthesizer, netlister,
// DRC, LVS) through wrapper programs; the tracking system never looks inside
// them, only at the events their wrappers post.  This package supplies
// functionally honest substitutes: each tool consumes and produces design
// artifacts with content identity (checksums), sizes and defect counts, so
// derived data really is a function of its inputs, simulation results
// reflect injected defects, and LVS really compares lineage.
//
// All behaviour is deterministic in the artifacts' contents, which makes
// the benchmark harness reproducible.
package tools

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/meta"
)

// Kind labels what a design artifact is.
type Kind string

// Artifact kinds corresponding to the design views of the paper's example
// flow.
const (
	KindHDL       Kind = "hdl"
	KindSchematic Kind = "schematic"
	KindNetlist   Kind = "netlist"
	KindLayout    Kind = "layout"
	KindLibrary   Kind = "library"
)

// Artifact is one piece of design data in the workspace, bound to the OID
// that tracks it.
type Artifact struct {
	Key  meta.Key
	Kind Kind

	// Checksum is the content identity; editing an artifact changes it.
	Checksum uint64

	// Source is the checksum of the input artifact this one was derived
	// from (zero for primary data).  LVS compares lineage through it.
	Source uint64

	// Gates measures size; derived artifacts scale it.
	Gates int

	// Defects counts functional errors present in the artifact.
	// Simulation reports them; synthesis refuses defective input.
	Defects int
}

// Store is the simulated workspace: the repository holding design data that
// the meta-database only describes.
type Store struct {
	mu sync.RWMutex
	m  map[meta.Key]*Artifact
}

// NewStore returns an empty workspace.
func NewStore() *Store {
	return &Store{m: make(map[meta.Key]*Artifact)}
}

// Put stores an artifact (replacing any previous one for the key).
func (s *Store) Put(a Artifact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := a
	s.m[a.Key] = &cp
}

// Get fetches a copy of the artifact for a key.
func (s *Store) Get(k meta.Key) (Artifact, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.m[k]
	if !ok {
		return Artifact{}, false
	}
	return *a, true
}

// Len reports the number of stored artifacts.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Keys returns the stored keys sorted by block, view, version.
func (s *Store) Keys() []meta.Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]meta.Key, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Block != b.Block {
			return a.Block < b.Block
		}
		if a.View != b.View {
			return a.View < b.View
		}
		return a.Version < b.Version
	})
	return keys
}

// splitmix64 is the content-mixing function: a small, well-distributed
// deterministic hash step.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Suite binds the simulated tools to a workspace.
type Suite struct {
	Store *Store
	seed  uint64
}

// NewSuite creates a tool suite over a fresh workspace.  The seed
// parameterizes content generation so different projects diverge.
func NewSuite(seed uint64) *Suite {
	return &Suite{Store: NewStore(), seed: splitmix64(seed | 1)}
}

// ErrTool reports a simulated tool failure (missing or unsuitable input).
type ErrTool struct {
	Tool string
	Msg  string
}

// Error implements the error interface.
func (e *ErrTool) Error() string { return fmt.Sprintf("%s: %s", e.Tool, e.Msg) }

func toolErr(tool, format string, args ...any) error {
	return &ErrTool{Tool: tool, Msg: fmt.Sprintf(format, args...)}
}

// input fetches an artifact and checks its kind.
func (s *Suite) input(tool string, k meta.Key, want Kind) (Artifact, error) {
	a, ok := s.Store.Get(k)
	if !ok {
		return Artifact{}, toolErr(tool, "no design data for %v", k)
	}
	if a.Kind != want {
		return Artifact{}, toolErr(tool, "%v is %s data, want %s", k, a.Kind, want)
	}
	return a, nil
}

// WriteHDL simulates a designer writing or editing an HDL model: new
// content with the given size and defect count.
func (s *Suite) WriteHDL(k meta.Key, gates, defects int) Artifact {
	a := Artifact{
		Key:      k,
		Kind:     KindHDL,
		Checksum: splitmix64(s.seed ^ keyHash(k) ^ uint64(gates)<<16 ^ uint64(defects)),
		Gates:    gates,
		Defects:  defects,
	}
	s.Store.Put(a)
	return a
}

// InstallLibrary simulates installing a synthesis library version.
func (s *Suite) InstallLibrary(k meta.Key) Artifact {
	a := Artifact{Key: k, Kind: KindLibrary, Checksum: splitmix64(s.seed ^ keyHash(k)), Gates: 0}
	s.Store.Put(a)
	return a
}

// SimulateHDL runs the HDL simulator and returns the designer-interpreted
// result string the paper shows: "good" or "N errors".
func (s *Suite) SimulateHDL(k meta.Key) (string, error) {
	a, err := s.input("hdl_sim", k, KindHDL)
	if err != nil {
		return "", err
	}
	return simResult(a.Defects), nil
}

// Synthesize derives a schematic from an HDL model using a library.  A
// defective model synthesizes but carries its defects forward.
func (s *Suite) Synthesize(hdl, lib, out meta.Key) (Artifact, error) {
	h, err := s.input("synthesis", hdl, KindHDL)
	if err != nil {
		return Artifact{}, err
	}
	l, err := s.input("synthesis", lib, KindLibrary)
	if err != nil {
		return Artifact{}, err
	}
	a := Artifact{
		Key:      out,
		Kind:     KindSchematic,
		Checksum: splitmix64(h.Checksum ^ l.Checksum),
		Source:   h.Checksum,
		Gates:    h.Gates * 4,
		Defects:  h.Defects,
	}
	s.Store.Put(a)
	return a, nil
}

// EditSchematic simulates a manual schematic edit: content changes, and the
// edit may introduce or fix defects (delta may be negative).
func (s *Suite) EditSchematic(k meta.Key, defectDelta int) (Artifact, error) {
	a, err := s.input("schematic_editor", k, KindSchematic)
	if err != nil {
		return Artifact{}, err
	}
	a.Checksum = splitmix64(a.Checksum)
	a.Defects += defectDelta
	if a.Defects < 0 {
		a.Defects = 0
	}
	s.Store.Put(a)
	return a, nil
}

// Netlist derives a netlist from a schematic.
func (s *Suite) Netlist(sch, out meta.Key) (Artifact, error) {
	sa, err := s.input("netlister", sch, KindSchematic)
	if err != nil {
		return Artifact{}, err
	}
	a := Artifact{
		Key:      out,
		Kind:     KindNetlist,
		Checksum: splitmix64(sa.Checksum ^ 0x6e65746c),
		Source:   sa.Checksum,
		Gates:    sa.Gates,
		Defects:  sa.Defects,
	}
	s.Store.Put(a)
	return a, nil
}

// SimulateNetlist runs the gate-level simulator.
func (s *Suite) SimulateNetlist(k meta.Key) (string, error) {
	a, err := s.input("nl_sim", k, KindNetlist)
	if err != nil {
		return "", err
	}
	return simResult(a.Defects), nil
}

// PlaceRoute derives a layout from a netlist.  Physical defects (DRC
// violations) appear deterministically from content for large blocks.
func (s *Suite) PlaceRoute(nl, out meta.Key) (Artifact, error) {
	na, err := s.input("place_route", nl, KindNetlist)
	if err != nil {
		return Artifact{}, err
	}
	cs := splitmix64(na.Checksum ^ 0x6c61796f7574)
	drcDefects := 0
	if na.Gates > 64 && cs%5 == 0 {
		drcDefects = int(cs%3) + 1
	}
	a := Artifact{
		Key:      out,
		Kind:     KindLayout,
		Checksum: cs,
		Source:   na.Checksum,
		Gates:    na.Gates,
		Defects:  drcDefects,
	}
	s.Store.Put(a)
	return a, nil
}

// FixLayout simulates manual DRC fixing: clears defects, changes content,
// keeps lineage.
func (s *Suite) FixLayout(k meta.Key) (Artifact, error) {
	a, err := s.input("layout_editor", k, KindLayout)
	if err != nil {
		return Artifact{}, err
	}
	a.Checksum = splitmix64(a.Checksum)
	a.Defects = 0
	s.Store.Put(a)
	return a, nil
}

// DRC runs design-rule checking on a layout: "good" or "bad".
func (s *Suite) DRC(k meta.Key) (string, error) {
	a, err := s.input("drc", k, KindLayout)
	if err != nil {
		return "", err
	}
	if a.Defects == 0 {
		return "good", nil
	}
	return "bad", nil
}

// LVS compares a layout against a netlist: "is_equiv" when the layout was
// derived from this netlist's content, "not_equiv" otherwise.
func (s *Suite) LVS(layout, netlist meta.Key) (string, error) {
	la, err := s.input("lvs", layout, KindLayout)
	if err != nil {
		return "", err
	}
	na, err := s.input("lvs", netlist, KindNetlist)
	if err != nil {
		return "", err
	}
	if la.Source == na.Checksum {
		return "is_equiv", nil
	}
	return "not_equiv", nil
}

// simResult renders a defect count the way the paper's designers would
// annotate it.
func simResult(defects int) string {
	if defects == 0 {
		return "good"
	}
	return fmt.Sprintf("%d errors", defects)
}

// keyHash mixes an OID key into a content seed.
func keyHash(k meta.Key) uint64 {
	h := uint64(14695981039346656037)
	for _, s := range []string{k.Block, k.View} {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 1099511628211
		}
	}
	return splitmix64(h ^ uint64(k.Version))
}
