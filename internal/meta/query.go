package meta

import "sort"

// Query helpers.  Designers "retrieve the state of the project by performing
// queries" (section 1); these are the volume-query primitives the higher
// level state package builds on.

// SelectOIDs returns deep copies of every OID accepted by pred, sorted by
// key.
func (db *DB) SelectOIDs(pred func(*OID) bool) []*OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*OID
	for _, o := range db.oids {
		if pred(o) {
			out = append(out, o.clone())
		}
	}
	sortOIDs(out)
	return out
}

// OIDsByView returns every OID of the given view type, sorted by key.
func (db *DB) OIDsByView(view string) []*OID {
	return db.SelectOIDs(func(o *OID) bool { return o.Key.View == view })
}

// OIDsByBlock returns every OID of the given block, sorted by key.
func (db *DB) OIDsByBlock(block string) []*OID {
	return db.SelectOIDs(func(o *OID) bool { return o.Key.Block == block })
}

// OIDsWithProp returns every OID whose named property equals value.
func (db *DB) OIDsWithProp(name, value string) []*OID {
	return db.SelectOIDs(func(o *OID) bool { return o.Props[name] == value })
}

// LatestOIDs returns a deep copy of the newest version of every version
// chain, sorted by key.  This is the usual working set for state queries:
// designers care about the state of the latest data.
func (db *DB) LatestOIDs() []*OID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*OID, 0, len(db.chains))
	for bv, chain := range db.chains {
		if len(chain) == 0 {
			continue
		}
		k := Key{Block: bv.Block, View: bv.View, Version: chain[len(chain)-1]}
		if o, ok := db.oids[k]; ok {
			out = append(out, o.clone())
		}
	}
	sortOIDs(out)
	return out
}

// SelectLinks returns deep copies of every link accepted by pred, in ID
// order.
func (db *DB) SelectLinks(pred func(*Link) bool) []*Link {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*Link
	for _, l := range db.links {
		if pred(l) {
			out = append(out, l.clone())
		}
	}
	sortLinks(out)
	return out
}

// LinksByType returns every derive link whose TYPE property matches.
func (db *DB) LinksByType(linkType string) []*Link {
	return db.SelectLinks(func(l *Link) bool {
		return l.Class == DeriveLink && l.Type() == linkType
	})
}

// Reachable returns the set of keys reachable from root by traversing links
// downward (From→To) through links admitted by follow, including root
// itself.  It is the query primitive behind hierarchy snapshots and
// transitive-dependency analyses.
func (db *DB) Reachable(root Key, follow FollowFunc) []Key {
	if follow == nil {
		follow = FollowUseLinks
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.oids[root]; !ok {
		return nil
	}
	visited := map[Key]bool{root: true}
	queue := []Key{root}
	var out []Key
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		out = append(out, k)
		for _, id := range db.outLinks[k] {
			l := db.links[id]
			if l == nil || !follow(l) || visited[l.To] {
				continue
			}
			visited[l.To] = true
			queue = append(queue, l.To)
		}
	}
	sortKeys(out)
	return out
}

// Dependents returns the downstream closure of root: every OID reachable by
// repeatedly following admitted links From→To.  This is the set of data
// invalidated when root changes.  root itself is excluded.
func (db *DB) Dependents(root Key, follow FollowFunc) []Key {
	if follow == nil {
		follow = FollowAllLinks
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	visited := map[Key]bool{root: true}
	queue := []Key{root}
	var out []Key
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, id := range db.outLinks[k] {
			l := db.links[id]
			if l == nil || !follow(l) || visited[l.To] {
				continue
			}
			visited[l.To] = true
			out = append(out, l.To)
			queue = append(queue, l.To)
		}
	}
	sortKeys(out)
	return out
}

// Equivalents returns the transitive set of OIDs tied to k by derive links
// whose TYPE property is "equivalence" — the equivalence plane of Katz's
// version server, which the paper's link types reference.  Links are
// followed in both directions; k itself is included.
func (db *DB) Equivalents(k Key) []Key {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.oids[k]; !ok {
		return nil
	}
	visited := map[Key]bool{k: true}
	queue := []Key{k}
	out := []Key{k}
	step := func(next Key) {
		if !visited[next] {
			visited[next] = true
			out = append(out, next)
			queue = append(queue, next)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, id := range db.outLinks[cur] {
			if l := db.links[id]; l != nil && l.Class == DeriveLink && l.Type() == TypeEquivalence {
				step(l.To)
			}
		}
		for _, id := range db.inLinks[cur] {
			if l := db.links[id]; l != nil && l.Class == DeriveLink && l.Type() == TypeEquivalence {
				step(l.From)
			}
		}
	}
	sortKeys(out)
	return out
}

func sortOIDs(oids []*OID) {
	// Map iteration hands us a random permutation, so an insertion sort
	// here is quadratic on large databases (it dominated state reports at
	// a thousand blocks); use the library sort.
	sort.Slice(oids, func(i, j int) bool { return keyLess(oids[i].Key, oids[j].Key) })
}

func sortLinks(links []*Link) {
	sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
}
