// Package baseline implements the comparison system of section 4 of the
// paper: a NELSIS-style *activity-driven* flow manager.  "In the NELSIS
// framework the data flow management is driven by design activities,
// whereas DAMOCLES has an observer approach to design flow control."
//
// The activity-driven manager owns the flow graph and sits in the
// designer's critical path: every time a designer requests an activity, the
// manager synchronously walks the transitive input closure, compares
// timestamps, and re-runs stale producer activities before granting the
// request.  State is never maintained incrementally; it is recomputed on
// demand (or by a periodic polling sweep).
//
// DAMOCLES inverts this: design activities post events, the tracking
// system updates state incrementally as an observer, and the designer is
// never blocked behind a dependency walk.  The benchmark harness contrasts
// the two on identical dependency graphs.
package baseline

import (
	"fmt"
	"sort"
)

// NodeID names a data node in the flow graph.
type NodeID string

// node is one data product with its producer inputs.
type node struct {
	id     NodeID
	inputs []NodeID

	// modTime is the logical time the node's data last changed.
	modTime int64
	// buildTime is the logical time the node was last (re)built from its
	// inputs; primary nodes have buildTime == modTime.
	buildTime int64
}

// Manager is the activity-driven flow manager.
type Manager struct {
	nodes map[NodeID]*node
	clock int64

	// BuildHook, when set, is invoked for every rebuild the manager
	// performs (the simulated tool run).
	BuildHook func(NodeID)
}

// NewManager returns an empty flow graph.
func NewManager() *Manager {
	return &Manager{nodes: make(map[NodeID]*node)}
}

// AddNode declares a data node and its producer inputs.  Inputs must be
// declared first.
func (m *Manager) AddNode(id NodeID, inputs ...NodeID) error {
	if _, ok := m.nodes[id]; ok {
		return fmt.Errorf("baseline: node %s already declared", id)
	}
	for _, in := range inputs {
		if _, ok := m.nodes[in]; !ok {
			return fmt.Errorf("baseline: input %s of %s not declared", in, id)
		}
	}
	m.clock++
	m.nodes[id] = &node{id: id, inputs: append([]NodeID(nil), inputs...),
		modTime: m.clock, buildTime: m.clock}
	return nil
}

// Nodes returns the declared node IDs in sorted order.
func (m *Manager) Nodes() []NodeID {
	out := make([]NodeID, 0, len(m.nodes))
	for id := range m.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Touch records a designer edit of a primary node: its data changed.  Note
// the asymmetry with DAMOCLES: Touch is O(1), but the cost reappears —
// multiplied — inside every later Demand.
func (m *Manager) Touch(id NodeID) error {
	n, ok := m.nodes[id]
	if !ok {
		return fmt.Errorf("baseline: node %s not declared", id)
	}
	m.clock++
	n.modTime = m.clock
	n.buildTime = m.clock
	return nil
}

// DemandStats reports the work one Demand performed.
type DemandStats struct {
	// Checked counts nodes whose freshness was examined (the synchronous
	// walk the designer waits for).
	Checked int
	// Rebuilt counts producer activities re-run.
	Rebuilt int
}

// Demand is the designer requesting to use node id (e.g. "run the
// simulator on this netlist"): the manager walks the transitive input
// closure, rebuilding anything stale, before the activity may proceed.
func (m *Manager) Demand(id NodeID) (DemandStats, error) {
	n, ok := m.nodes[id]
	if !ok {
		return DemandStats{}, fmt.Errorf("baseline: node %s not declared", id)
	}
	var stats DemandStats
	visited := make(map[NodeID]bool)
	m.freshen(n, visited, &stats)
	return stats, nil
}

// freshen recursively rebuilds stale inputs; returns the node's effective
// timestamp after freshening.
func (m *Manager) freshen(n *node, visited map[NodeID]bool, stats *DemandStats) int64 {
	if visited[n.id] {
		return maxI64(n.modTime, n.buildTime)
	}
	visited[n.id] = true
	stats.Checked++
	var newest int64
	for _, in := range n.inputs {
		ts := m.freshen(m.nodes[in], visited, stats)
		if ts > newest {
			newest = ts
		}
	}
	if len(n.inputs) > 0 && newest > n.buildTime {
		// Stale: re-run the producer activity.
		m.clock++
		n.buildTime = m.clock
		n.modTime = m.clock
		stats.Rebuilt++
		if m.BuildHook != nil {
			m.BuildHook(n.id)
		}
		return n.buildTime
	}
	return maxI64(n.modTime, n.buildTime)
}

// Stale reports whether the node is out of date with respect to its
// transitive inputs, without repairing anything.
func (m *Manager) Stale(id NodeID) (bool, error) {
	n, ok := m.nodes[id]
	if !ok {
		return false, fmt.Errorf("baseline: node %s not declared", id)
	}
	visited := make(map[NodeID]bool)
	_, stale := m.newestInput(n, visited)
	return stale, nil
}

// newestInput computes the newest effective timestamp in the node's input
// closure and whether the node (or anything below it) is stale.
func (m *Manager) newestInput(n *node, visited map[NodeID]bool) (int64, bool) {
	if visited[n.id] {
		return maxI64(n.modTime, n.buildTime), false
	}
	visited[n.id] = true
	var newest int64
	stale := false
	for _, in := range n.inputs {
		ts, s := m.newestInput(m.nodes[in], visited)
		stale = stale || s
		if ts > newest {
			newest = ts
		}
	}
	if len(n.inputs) > 0 && newest > n.buildTime {
		stale = true
		return newest, stale
	}
	return maxI64(n.modTime, n.buildTime), stale
}

// PollStats reports the work of one polling sweep.
type PollStats struct {
	Checked int
	Stale   int
}

// PollAll is the polling consistency checker: the periodic full sweep a
// non-event-driven system needs to learn what is out of date.  Cost is
// O(all nodes × their input closures) regardless of how little changed —
// the contrast with DAMOCLES' event-driven incremental updates.
func (m *Manager) PollAll() PollStats {
	var st PollStats
	for _, id := range m.Nodes() {
		n := m.nodes[id]
		visited := make(map[NodeID]bool)
		st.Checked++
		if _, stale := m.newestInput(n, visited); stale {
			st.Stale++
		}
	}
	return st
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
