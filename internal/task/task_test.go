package task

import (
	"strings"
	"testing"

	"repro/internal/flow"
	"repro/internal/meta"
	"repro/internal/wrapper"
)

func session(t *testing.T) *wrapper.Session {
	t.Helper()
	sess, _, err := flow.NewEDTCSession(2024)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestTaskValidate(t *testing.T) {
	ok := Task{Name: "t", Steps: []Step{{Name: "s", Run: func(*wrapper.Session) error { return nil }}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	bad := []Task{
		{Name: "", Steps: ok.Steps},
		{Name: "t"},
		{Name: "t", Steps: []Step{{Name: "", Run: ok.Steps[0].Run}}},
		{Name: "t", Steps: []Step{{Name: "s"}}},
		{Name: "bad name", Steps: ok.Steps},
	}
	for i, tk := range bad {
		if err := tk.Validate(); err == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
}

func TestRunTracksInMetaDatabase(t *testing.T) {
	sess := session(t)
	r := NewRunner(sess)
	var order []string
	tk := Task{Name: "demo", Steps: []Step{
		{Name: "one", Run: func(*wrapper.Session) error { order = append(order, "one"); return nil }},
		{Name: "two", Run: func(*wrapper.Session) error { order = append(order, "two"); return nil }},
	}}
	rec, err := r.Run(tk)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" || rec.StepsRun != 2 {
		t.Errorf("record = %+v", rec)
	}
	if len(order) != 2 || order[0] != "one" {
		t.Errorf("order = %v", order)
	}
	status, step, failure, err := Status(sess.Eng.DB(), rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if status != "done" || step != "two" || failure != "" {
		t.Errorf("tracked: status=%q step=%q failure=%q", status, step, failure)
	}
	// Task runs are versioned like any design object.
	rec2, err := r.Run(tk)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Key.Version != 2 {
		t.Errorf("second run key = %v", rec2.Key)
	}
	if got := History(sess.Eng.DB(), "demo"); len(got) != 2 {
		t.Errorf("history = %v", got)
	}
}

func TestRequirementGatesStep(t *testing.T) {
	sess := session(t)
	if _, err := sess.CheckinHDL("CPU", 10, 5); err != nil { // defective
		t.Fatal(err)
	}
	r := NewRunner(sess)
	ran := false
	tk := Task{Name: "gated", Steps: []Step{{
		Name:    "synth",
		Require: []Requirement{{Block: "CPU", View: "HDL_model", Prop: "sim_result", Want: "good"}},
		Run:     func(*wrapper.Session) error { ran = true; return nil },
	}}}
	rec, err := r.Run(tk)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "failed" {
		t.Errorf("status = %q", rec.Status)
	}
	if ran {
		t.Error("gated step ran despite failed requirement")
	}
	if !strings.Contains(rec.Failure, "sim_result") {
		t.Errorf("failure = %q", rec.Failure)
	}
	status, _, failure, _ := Status(sess.Eng.DB(), rec.Key)
	if status != "failed" || failure == "" {
		t.Errorf("tracked failure: %q %q", status, failure)
	}
}

func TestTaskEventsVisibleToBlueprint(t *testing.T) {
	// A project policy can hook task events like any design event.  The
	// EDTC blueprint has no task view, so extend the default view check:
	// the task OID still carries uptodate from the default template, and
	// the events fire rules there.
	sess := session(t)
	r := NewRunner(sess)
	rec, err := r.Run(Task{Name: "hooked", Steps: []Step{
		{Name: "s", Run: func(*wrapper.Session) error { return nil }},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The default view attached uptodate to the task OID.
	v, ok, err := sess.Eng.DB().GetProp(rec.Key, "uptodate")
	if err != nil || !ok || v != "true" {
		t.Errorf("task OID uptodate = %q %v %v", v, ok, err)
	}
}

func TestLibraryFullPipeline(t *testing.T) {
	sess := session(t)
	// Prepare the primary data.
	if _, err := sess.CheckinHDL("CPU", 60, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InstallLibrary("stdlib"); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sess)

	rec, err := r.Run(VerifyModel("CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" {
		t.Fatalf("verify: %+v", rec)
	}
	rec, err = r.Run(ImplementBlock("CPU", "stdlib"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" {
		t.Fatalf("implement: %+v", rec)
	}
	rec, err = r.Run(PhysicalSignoff("CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "done" {
		t.Fatalf("signoff: %+v", rec)
	}
	// The flow produced the full view chain.
	db := sess.Eng.DB()
	for _, view := range []string{"schematic", "netlist", "layout"} {
		if _, err := db.Latest("CPU", view); err != nil {
			t.Errorf("missing %s: %v", view, err)
		}
	}
	// And the layout reached its planned state.
	lay, _ := db.Latest("CPU", "layout")
	if v, _, _ := db.GetProp(lay, "state"); v != "true" {
		o, _ := db.GetOID(lay)
		t.Errorf("layout state = %q, props = %v", v, o.Props)
	}
}

func TestLibraryRefusesStaleInputs(t *testing.T) {
	sess := session(t)
	if _, err := sess.CheckinHDL("CPU", 60, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.InstallLibrary("stdlib"); err != nil {
		t.Fatal(err)
	}
	r := NewRunner(sess)
	if rec, err := r.Run(VerifyModel("CPU")); err != nil || rec.Status != "done" {
		t.Fatalf("verify: %+v %v", rec, err)
	}
	if rec, err := r.Run(ImplementBlock("CPU", "stdlib")); err != nil || rec.Status != "done" {
		t.Fatalf("implement: %+v %v", rec, err)
	}
	// New model version: downstream stale; signoff must refuse at its
	// requirement, not run tools on stale data.
	if _, err := sess.CheckinHDL("CPU", 61, 0); err != nil {
		t.Fatal(err)
	}
	rec, err := r.Run(PhysicalSignoff("CPU"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != "failed" || !strings.Contains(rec.Failure, "uptodate") {
		t.Errorf("signoff on stale data: %+v", rec)
	}
}

func TestStatusOnMissingKey(t *testing.T) {
	sess := session(t)
	if _, _, _, err := Status(sess.Eng.DB(), meta.Key{Block: "x", View: View, Version: 1}); err == nil {
		t.Error("missing task key accepted")
	}
}
