package bpl

// Compiled policy resolution.  The Effective* functions in resolve.go derive
// a view's rules, lets, properties and link templates from scratch — walking
// the default view, checking overrides and allocating a fresh slice — on
// every call.  That is fine for tooling, but the run-time engine performs the
// same derivation for every single event delivery, which makes policy
// resolution the dominant allocation source on the hot path.
//
// An Index compiles a Blueprint once into immutable lookup tables: effective
// rules per (view, event) — partitioned by execution phase into a Program —
// and effective lets, properties and link templates per view.  Blueprints
// are never mutated after parsing, so the Index stays valid for the lifetime
// of the Blueprint; loading a new policy (Engine.SetBlueprint) builds a new
// Index.
//
// All slices returned by Index methods are shared, pre-computed state:
// callers must treat them as read-only.

// Program is the phase-ordered execution plan for one (view, event) pair:
// the effective rules' actions split by the engine's fixed delivery phases
// (assign, exec/notify, post), each preserving rule and action order.
type Program struct {
	// Rules are the effective rules, default view first — what
	// EffectiveRules returns for the pair.
	Rules []*Rule
	// Assigns is phase 1: every AssignAction in rule/action order.
	Assigns []*AssignAction
	// Execs is phase 3: every ExecAction and NotifyAction, interleaved in
	// rule/action order.
	Execs []Action
	// Posts is phase 4: every PostAction in rule/action order.
	Posts []*PostAction
}

func compileProgram(rules []*Rule) *Program {
	if len(rules) == 0 {
		return nil
	}
	p := &Program{Rules: rules}
	for _, r := range rules {
		for _, a := range r.Actions {
			switch act := a.(type) {
			case *AssignAction:
				p.Assigns = append(p.Assigns, act)
			case *ExecAction, *NotifyAction:
				p.Execs = append(p.Execs, a)
			case *PostAction:
				p.Posts = append(p.Posts, act)
			}
		}
	}
	return p
}

// Index is the compiled form of a Blueprint.  Build one with NewIndex; it is
// immutable afterwards and safe for concurrent use.
type Index struct {
	bp *Blueprint

	// Per declared view.  Undeclared views resolve to the default-only
	// tables below, mirroring the Effective* fallback semantics.
	progs map[string]map[string]*Program // view -> event -> program
	lets  map[string][]*LetDecl
	props map[string][]*PropertyDecl
	links map[string][]*LinkDecl

	defaultProgs map[string]*Program // event -> default-view-only program
	defaultLets  []*LetDecl
	defaultProps []*PropertyDecl
	defaultLinks []*LinkDecl

	explainers map[*LetDecl]*Explainer
}

// NewIndex compiles bp.  The blueprint must not be mutated afterwards.
func NewIndex(bp *Blueprint) *Index {
	ix := &Index{
		bp:    bp,
		progs: make(map[string]map[string]*Program, len(bp.Views)),
		lets:  make(map[string][]*LetDecl, len(bp.Views)),
		props: make(map[string][]*PropertyDecl, len(bp.Views)),
		links: make(map[string][]*LinkDecl, len(bp.Views)),
	}
	dv := bp.DefaultView()
	if dv != nil {
		ix.defaultLets = bp.EffectiveLets("")
		ix.defaultProps = bp.EffectiveProperties("")
		ix.defaultLinks = bp.EffectiveLinks("")
		ix.defaultProgs = make(map[string]*Program)
		for _, r := range dv.Rules {
			if _, done := ix.defaultProgs[r.Event]; !done {
				ix.defaultProgs[r.Event] = compileProgram(bp.EffectiveRules("", r.Event))
			}
		}
	}
	for _, v := range bp.Views {
		ix.lets[v.Name] = bp.EffectiveLets(v.Name)
		ix.props[v.Name] = bp.EffectiveProperties(v.Name)
		ix.links[v.Name] = bp.EffectiveLinks(v.Name)
		progs := make(map[string]*Program)
		for _, r := range v.Rules {
			if _, done := progs[r.Event]; !done {
				progs[r.Event] = compileProgram(bp.EffectiveRules(v.Name, r.Event))
			}
		}
		if dv != nil && dv.Name != v.Name {
			for _, r := range dv.Rules {
				if _, done := progs[r.Event]; !done {
					progs[r.Event] = compileProgram(bp.EffectiveRules(v.Name, r.Event))
				}
			}
		}
		ix.progs[v.Name] = progs
	}
	ix.explainers = make(map[*LetDecl]*Explainer)
	for _, v := range bp.Views {
		for _, l := range v.Lets {
			ix.explainers[l] = CompileExplainer(l.Expr)
		}
	}
	return ix
}

// Blueprint returns the blueprint the index was compiled from.
func (ix *Index) Blueprint() *Blueprint { return ix.bp }

// Program returns the compiled execution plan for an event delivered to an
// OID of the named view, or nil when no effective rule matches.
func (ix *Index) Program(view, event string) *Program {
	if m, ok := ix.progs[view]; ok {
		return m[event]
	}
	return ix.defaultProgs[event]
}

// Rules returns the effective run-time rules for (view, event) — the
// compiled equivalent of Blueprint.EffectiveRules.
func (ix *Index) Rules(view, event string) []*Rule {
	if p := ix.Program(view, event); p != nil {
		return p.Rules
	}
	return nil
}

// Lets returns the effective continuous assignments of the view — the
// compiled equivalent of Blueprint.EffectiveLets.
func (ix *Index) Lets(view string) []*LetDecl {
	if l, ok := ix.lets[view]; ok {
		return l
	}
	return ix.defaultLets
}

// Properties returns the effective property templates of the view — the
// compiled equivalent of Blueprint.EffectiveProperties.
func (ix *Index) Properties(view string) []*PropertyDecl {
	if p, ok := ix.props[view]; ok {
		return p
	}
	return ix.defaultProps
}

// Links returns the effective link templates of the view — the compiled
// equivalent of Blueprint.EffectiveLinks.
func (ix *Index) Links(view string) []*LinkDecl {
	if l, ok := ix.links[view]; ok {
		return l
	}
	return ix.defaultLinks
}

// Explainer returns the compiled failure explainer of a continuous
// assignment.  Lets not declared in the indexed blueprint are compiled on
// the fly.
func (ix *Index) Explainer(l *LetDecl) *Explainer {
	if x, ok := ix.explainers[l]; ok {
		return x
	}
	return CompileExplainer(l.Expr)
}

// LinkTemplate finds the template decorating a new link, with the same
// semantics as Blueprint.LinkTemplate but using the compiled tables.
func (ix *Index) LinkTemplate(use bool, fromView, toView string) (*LinkDecl, bool) {
	for _, d := range ix.Links(toView) {
		if use && d.Use {
			return d, true
		}
		if !use && !d.Use && d.FromView == fromView {
			return d, true
		}
	}
	return nil, false
}
