package tools

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/meta"
)

// TestQuickLVSLineage: across random sequences of edits and re-derivations,
// LVS reports is_equiv exactly when the layout was placed from the current
// netlist content.
func TestQuickLVSLineage(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		s := NewSuite(uint64(seed))
		hdl := meta.Key{Block: "b", View: "HDL_model", Version: 1}
		lib := meta.Key{Block: "l", View: "synth_lib", Version: 1}
		sch := meta.Key{Block: "b", View: "schematic", Version: 1}
		nl := meta.Key{Block: "b", View: "netlist", Version: 1}
		lay := meta.Key{Block: "b", View: "layout", Version: 1}
		s.WriteHDL(hdl, 50, 0)
		s.InstallLibrary(lib)
		if _, err := s.Synthesize(hdl, lib, sch); err != nil {
			return false
		}
		if _, err := s.Netlist(sch, nl); err != nil {
			return false
		}
		if _, err := s.PlaceRoute(nl, lay); err != nil {
			return false
		}
		layoutFresh := true
		rng := rand.New(rand.NewSource(seed))
		if len(ops) > 20 {
			ops = ops[:20]
		}
		for _, op := range ops {
			switch op % 3 {
			case 0: // edit the schematic and re-netlist: layout goes stale
				if _, err := s.EditSchematic(sch, rng.Intn(3)-1); err != nil {
					return false
				}
				if _, err := s.Netlist(sch, nl); err != nil {
					return false
				}
				layoutFresh = false
			case 1: // re-place from the current netlist: layout fresh again
				if _, err := s.PlaceRoute(nl, lay); err != nil {
					return false
				}
				layoutFresh = true
			case 2: // layout-only fix keeps lineage
				if _, err := s.FixLayout(lay); err != nil {
					return false
				}
			}
			res, err := s.LVS(lay, nl)
			if err != nil {
				return false
			}
			want := "not_equiv"
			if layoutFresh {
				want = "is_equiv"
			}
			if res != want {
				t.Logf("seed %d: LVS = %s, want %s (fresh=%v)", seed, res, want, layoutFresh)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSimReflectsDefects: simulation results always encode the defect
// count exactly.
func TestQuickSimReflectsDefects(t *testing.T) {
	f := func(defectsRaw uint8) bool {
		defects := int(defectsRaw) % 50
		s := NewSuite(1)
		k := meta.Key{Block: "b", View: "HDL_model", Version: 1}
		s.WriteHDL(k, 10, defects)
		res, err := s.SimulateHDL(k)
		if err != nil {
			return false
		}
		if defects == 0 {
			return res == "good"
		}
		return res == simResult(defects)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
