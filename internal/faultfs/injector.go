package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the default error an un-parameterized fault returns.
// Callers distinguish an injected failure from a real one with errors.Is.
var ErrInjected = errors.New("faultfs: injected I/O error")

// Fault is one rule of a Plan: when the Nth matching call of Op happens
// (counted across the whole Injector, 1-based), fail it.
type Fault struct {
	// Op selects which operation kind the fault applies to.
	Op Op

	// Path, when non-empty, restricts the fault to calls whose path
	// contains it as a substring.
	Path string

	// Nth is the 1-based matching-call count the fault fires at; 0 means
	// the first matching call.
	Nth int64

	// Err is the error returned; nil means ErrInjected.  For write faults
	// use syscall-flavoured errors (e.g. syscall.ENOSPC) when the caller's
	// errors.Is classification matters.
	Err error

	// Sticky keeps the fault firing on every later matching call — the
	// wedged-disk model.  A non-sticky fault fires exactly once — the
	// transient-glitch model.
	Sticky bool

	// Latency is added to every matching call from Nth onward (fired or
	// not yet fired), the slow-disk model.  A fault with a Latency and a
	// nil Err plus Sticky=false still fails its Nth call with ErrInjected;
	// set LatencyOnly for a pure slowdown.
	LatencyOnly bool
	Latency     time.Duration
}

func (f Fault) String() string {
	mode := "once"
	if f.Sticky {
		mode = "sticky"
	}
	if f.LatencyOnly {
		mode = "latency-only"
	}
	s := fmt.Sprintf("%s#%d %s", f.Op, f.nth(), mode)
	if f.Path != "" {
		s += " path~" + f.Path
	}
	if f.Latency > 0 {
		s += fmt.Sprintf(" +%v", f.Latency)
	}
	return s
}

func (f Fault) nth() int64 {
	if f.Nth <= 0 {
		return 1
	}
	return f.Nth
}

// Plan is a deterministic fault schedule: a set of Faults plus an optional
// disk-capacity model.  The zero Plan injects nothing (a pure counter).
type Plan struct {
	Faults []Fault

	// DiskBytes, when positive, models a disk with that much free space:
	// writes consume it, Remove gives a removed file's bytes back, and a
	// write past the budget is cut short with ENOSPC — the partial write
	// the real syscall performs, not a clean all-or-nothing failure.
	DiskBytes int64
}

// SingleFault is the sweep constructor: a plan that fails exactly the nth
// call of op, once, with err (nil → ErrInjected).
func SingleFault(op Op, nth int64, err error) Plan {
	return Plan{Faults: []Fault{{Op: op, Nth: nth, Err: err}}}
}

// StickyFault is SingleFault with the wedged-disk model: the nth call of
// op and every matching call after it fail.
func StickyFault(op Op, nth int64, err error) Plan {
	return Plan{Faults: []Fault{{Op: op, Nth: nth, Err: err, Sticky: true}}}
}

// Injector wraps a base FS and applies a Plan to the calls flowing
// through it.  All counters are deterministic per call sequence; the
// Injector is safe for concurrent use (counts serialize under one mutex,
// like inode operations under a filesystem lock).
type Injector struct {
	base FS

	mu       sync.Mutex
	plan     Plan
	counts   [opCount]int64
	fired    []string // description of every fault that has fired, in order
	consumed []bool   // per-fault: a non-sticky fault already fired
	diskUsed int64
}

// New wraps base with plan.  A zero Plan makes a pure counting wrapper —
// the CountRun half of a sweep.
func New(base FS, plan Plan) *Injector {
	if base == nil {
		base = OS
	}
	return &Injector{base: base, plan: plan, consumed: make([]bool, len(plan.Faults))}
}

// Count returns how many calls of op have been observed so far.
func (i *Injector) Count(op Op) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.counts[op]
}

// Counts returns a copy of every per-op call counter — the axis of a
// fault sweep: run a workload once over a counting Injector, then once
// per (op, 1..Counts()[op]) with a SingleFault plan.
func (i *Injector) Counts() map[Op]int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	m := make(map[Op]int64, len(Ops))
	for _, op := range Ops {
		if i.counts[op] > 0 {
			m[op] = i.counts[op]
		}
	}
	return m
}

// Fired returns a description of every fault that has fired, in order —
// empty means the plan never triggered.
func (i *Injector) Fired() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]string(nil), i.fired...)
}

// DiskUsed reports the bytes charged against the DiskBytes budget.
func (i *Injector) DiskUsed() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.diskUsed
}

// check counts one call of op against path and decides its fate: the
// returned latency is slept by the caller outside the lock, and a non-nil
// error aborts the operation before it reaches the base FS.
func (i *Injector) check(op Op, path string) (time.Duration, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.counts[op]++
	n := i.counts[op]
	var delay time.Duration
	for fi := range i.plan.Faults {
		f := &i.plan.Faults[fi]
		if f.Op != op || (f.Path != "" && !strings.Contains(path, f.Path)) {
			continue
		}
		if n < f.nth() {
			continue
		}
		if f.Latency > 0 {
			delay += f.Latency
		}
		if f.LatencyOnly {
			continue
		}
		if !f.Sticky && i.consumed[fi] {
			continue
		}
		if !f.Sticky && n != f.nth() {
			continue
		}
		i.consumed[fi] = true
		err := f.Err
		if err == nil {
			err = ErrInjected
		}
		i.fired = append(i.fired, fmt.Sprintf("%s @%s %s", f.String(), path, err))
		return delay, &os.PathError{Op: op.String(), Path: path, Err: err}
	}
	return delay, nil
}

// chargeWrite applies the disk-capacity model to an n-byte write and
// returns how many bytes may actually land plus the ENOSPC error when the
// budget cuts the write short.
func (i *Injector) chargeWrite(path string, n int) (int, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.plan.DiskBytes <= 0 {
		return n, nil
	}
	free := i.plan.DiskBytes - i.diskUsed
	if int64(n) <= free {
		i.diskUsed += int64(n)
		return n, nil
	}
	allowed := int(free)
	if allowed < 0 {
		allowed = 0
	}
	i.diskUsed = i.plan.DiskBytes
	i.fired = append(i.fired, fmt.Sprintf("write@%s ENOSPC after %d of %d bytes", path, allowed, n))
	return allowed, &os.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
}

// creditRemove gives a removed file's bytes back to the disk budget.
func (i *Injector) creditRemove(size int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.plan.DiskBytes <= 0 {
		return
	}
	i.diskUsed -= size
	if i.diskUsed < 0 {
		i.diskUsed = 0
	}
}

func (i *Injector) run(op Op, path string) error {
	delay, err := i.check(op, path)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// --- FS implementation ---

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := i.run(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := i.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, i: i}, nil
}

func (i *Injector) Open(name string) (File, error) {
	if err := i.run(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := i.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, i: i}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := i.run(OpOpen, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := i.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, i: i}, nil
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	if err := i.run(OpRead, name); err != nil {
		return nil, err
	}
	return i.base.ReadFile(name)
}

func (i *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if err := i.run(OpReadDir, name); err != nil {
		return nil, err
	}
	return i.base.ReadDir(name)
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if err := i.run(OpRename, newpath); err != nil {
		return err
	}
	return i.base.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if err := i.run(OpRemove, name); err != nil {
		return err
	}
	var size int64
	if fi, err := os.Stat(name); err == nil {
		size = fi.Size()
	}
	if err := i.base.Remove(name); err != nil {
		return err
	}
	i.creditRemove(size)
	return nil
}

func (i *Injector) Truncate(name string, size int64) error {
	if err := i.run(OpTruncate, name); err != nil {
		return err
	}
	return i.base.Truncate(name, size)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err := i.run(OpMkdir, path); err != nil {
		return err
	}
	return i.base.MkdirAll(path, perm)
}

// injFile threads a handle's operations back through its Injector.
type injFile struct {
	f File
	i *Injector
}

func (x *injFile) Read(p []byte) (int, error) {
	if err := x.i.run(OpRead, x.f.Name()); err != nil {
		return 0, err
	}
	return x.f.Read(p)
}

func (x *injFile) Write(p []byte) (int, error) {
	if err := x.i.run(OpWrite, x.f.Name()); err != nil {
		return 0, err
	}
	allowed, denyErr := x.i.chargeWrite(x.f.Name(), len(p))
	if allowed < len(p) {
		// Partial ENOSPC write: land what fits, report the rest failed —
		// exactly what the syscall does on a full disk.
		n, werr := x.f.Write(p[:allowed])
		if werr != nil {
			return n, werr
		}
		return n, denyErr
	}
	return x.f.Write(p)
}

func (x *injFile) Sync() error {
	if err := x.i.run(OpSync, x.f.Name()); err != nil {
		return err
	}
	return x.f.Sync()
}

func (x *injFile) Close() error {
	if err := x.i.run(OpClose, x.f.Name()); err != nil {
		// The handle must still be released, or a faulted run leaks it.
		x.f.Close()
		return err
	}
	return x.f.Close()
}

func (x *injFile) Seek(offset int64, whence int) (int64, error) {
	if err := x.i.run(OpSeek, x.f.Name()); err != nil {
		return 0, err
	}
	return x.f.Seek(offset, whence)
}

func (x *injFile) Stat() (os.FileInfo, error) {
	if err := x.i.run(OpStat, x.f.Name()); err != nil {
		return nil, err
	}
	return x.f.Stat()
}

func (x *injFile) Truncate(size int64) error {
	if err := x.i.run(OpTruncate, x.f.Name()); err != nil {
		return err
	}
	return x.f.Truncate(size)
}

func (x *injFile) Name() string { return x.f.Name() }
