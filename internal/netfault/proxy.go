package netfault

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Direction names one side of a proxied connection.
type Direction int

const (
	// Up is the dialing side's traffic toward the target.
	Up Direction = iota
	// Down is the target's traffic back toward the dialer.
	Down
)

func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Proxy is an in-process TCP relay with independently faultable
// directions — the partition instrument.  It listens on a loopback
// port; connections accepted there are forwarded byte-for-byte to the
// target address until a fault says otherwise:
//
//   - Blackhole parks the pump without closing anything: the sender's
//     writes land in kernel buffers and report success, the receiver
//     sees pure silence — the half-open link.  Data read but not yet
//     forwarded when the blackhole lands is held and delivered intact
//     on Heal, so a healed stream is contiguous, exactly like a routed
//     network coming back.
//   - SetLatency/SetBandwidth shape each forwarded chunk.
//   - DropAfter closes the connection abruptly at the Nth forwarded
//     chunk in that direction — the RST model, distinct from the
//     blackhole's silence.
//
// New connections arriving while Up is blackholed are accepted (the
// listener is local; SYN/ACK always works) but never serviced — the
// dialing side's handshake deadline is what kills them, as with a real
// partition past the first hop.
type Proxy struct {
	target string
	ln     net.Listener

	mu     sync.Mutex
	links  map[*link]struct{}
	closed bool

	up, down *dirState
	done     chan struct{}
	wg       sync.WaitGroup
}

// dirState is one direction's fault state.
type dirState struct {
	mu        sync.Mutex
	blackhole bool
	healed    chan struct{} // replaced on blackhole, closed on heal
	latency   time.Duration
	bandwidth int64 // bytes/sec; 0 = unshaped
	dropAt    int64 // close the link at this 1-based forwarded chunk; 0 = never
	forwarded int64 // chunks forwarded in this direction, across all links
}

// NewProxy starts a relay toward target on an ephemeral loopback port.
func NewProxy(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("netfault: proxy listen: %w", err)
	}
	p := &Proxy{
		target: target,
		ln:     ln,
		links:  map[*link]struct{}{},
		up:     &dirState{healed: make(chan struct{})},
		down:   &dirState{healed: make(chan struct{})},
		done:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address to dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the address traffic is relayed to.
func (p *Proxy) Target() string { return p.target }

func (p *Proxy) dir(d Direction) *dirState {
	if d == Up {
		return p.up
	}
	return p.down
}

// SetLatency adds a fixed delay to every chunk forwarded in d.
func (p *Proxy) SetLatency(d Direction, delay time.Duration) {
	st := p.dir(d)
	st.mu.Lock()
	st.latency = delay
	st.mu.Unlock()
}

// SetBandwidth caps d to bytesPerSec (0 removes the cap).
func (p *Proxy) SetBandwidth(d Direction, bytesPerSec int64) {
	st := p.dir(d)
	st.mu.Lock()
	st.bandwidth = bytesPerSec
	st.mu.Unlock()
}

// DropAfter arms an abrupt close at the nth forwarded chunk in d
// (1-based, counted across all connections; 0 disarms).
func (p *Proxy) DropAfter(d Direction, nth int64) {
	st := p.dir(d)
	st.mu.Lock()
	st.dropAt = nth
	st.mu.Unlock()
}

// Blackhole silences both directions — the full partition.
func (p *Proxy) Blackhole() {
	p.BlackholeDir(Up)
	p.BlackholeDir(Down)
}

// BlackholeDir silences one direction — the asymmetric partition:
// packets that way vanish, the other way still flows.
func (p *Proxy) BlackholeDir(d Direction) {
	st := p.dir(d)
	st.mu.Lock()
	if !st.blackhole {
		st.blackhole = true
		st.healed = make(chan struct{})
	}
	st.mu.Unlock()
}

// Heal lifts every blackhole; parked pumps resume mid-stream with the
// bytes they were holding.
func (p *Proxy) Heal() {
	for _, st := range [...]*dirState{p.up, p.down} {
		st.mu.Lock()
		if st.blackhole {
			st.blackhole = false
			close(st.healed)
		}
		st.mu.Unlock()
	}
}

// Blackholed reports whether d is currently silenced.
func (p *Proxy) Blackholed(d Direction) bool {
	st := p.dir(d)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.blackhole
}

// DropConns abruptly closes every live proxied connection — the RST
// storm, as distinct from the blackhole's silence.
func (p *Proxy) DropConns() {
	p.mu.Lock()
	ls := make([]*link, 0, len(p.links))
	for l := range p.links {
		ls = append(ls, l)
	}
	p.mu.Unlock()
	for _, l := range ls {
		l.close()
	}
}

// Conns reports the number of live proxied connections.
func (p *Proxy) Conns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// Close stops the listener and severs every link.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.done)
	err := p.ln.Close()
	p.DropConns()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.serve(c)
	}
}

// serve connects one accepted conn to the target and starts its pumps.
// If Up is blackholed the dial is withheld: the conn sits accepted and
// silent until heal (then serviced normally) or proxy close.
func (p *Proxy) serve(c net.Conn) {
	defer p.wg.Done()
	if !p.up.waitClear(p.done) {
		c.Close()
		return
	}
	t, err := net.Dial("tcp", p.target)
	if err != nil {
		c.Close()
		return
	}
	l := &link{a: c, b: t, done: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		l.close()
		return
	}
	p.links[l] = struct{}{}
	p.mu.Unlock()
	p.wg.Add(2)
	go p.pump(l, c, t, p.up)
	go p.pump(l, t, c, p.down)
	<-l.done
	p.mu.Lock()
	delete(p.links, l)
	p.mu.Unlock()
}

// pump forwards src→dst chunks, applying the direction's fault state to
// each.  A blackhole parks it — before the read when possible, holding
// an already-read chunk otherwise — so no byte is ever dropped or
// reordered, only delayed until heal.
func (p *Proxy) pump(l *link, src, dst net.Conn, st *dirState) {
	defer p.wg.Done()
	defer l.close()
	buf := make([]byte, 32*1024)
	for {
		if !st.waitClear(l.done) {
			return
		}
		n, err := src.Read(buf)
		if n > 0 {
			delay, bw, drop := st.admit()
			if delay > 0 {
				time.Sleep(delay)
			}
			pace(n, bw)
			// A blackhole that landed during the read parks us here with
			// the chunk in hand; it goes out on heal, preserving stream
			// contiguity.
			if !st.waitClear(l.done) {
				return
			}
			if drop {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// waitClear blocks while the direction is blackholed; false means the
// link (or proxy) closed while parked.
func (st *dirState) waitClear(done <-chan struct{}) bool {
	for {
		st.mu.Lock()
		bh, ch := st.blackhole, st.healed
		st.mu.Unlock()
		if !bh {
			return true
		}
		select {
		case <-ch:
		case <-done:
			return false
		}
	}
}

// admit counts one forwarded chunk and returns the shaping to apply
// plus whether the drop trigger fired on this chunk.
func (st *dirState) admit() (delay time.Duration, bandwidth int64, drop bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.forwarded++
	if st.dropAt > 0 && st.forwarded >= st.dropAt {
		st.dropAt = 0
		return st.latency, st.bandwidth, true
	}
	return st.latency, st.bandwidth, false
}

// link is one proxied connection pair.
type link struct {
	a, b net.Conn
	once sync.Once
	done chan struct{}
}

func (l *link) close() {
	l.once.Do(func() {
		l.a.Close()
		l.b.Close()
		close(l.done)
	})
}

// Net scripts partitions between named nodes: each ordered pair
// (from, to) that should be faultable gets a Proxy in front of to's
// real address, and from is configured to dial the proxy instead.
// Partition/Heal then operate on names, not ports.
type Net struct {
	mu      sync.Mutex
	proxies map[[2]string]*Proxy
}

// NewNet makes an empty registry.
func NewNet() *Net { return &Net{proxies: map[[2]string]*Proxy{}} }

// Connect routes from→to traffic through a new proxy in front of
// target (to's real listen address) and returns the address from
// should dial.  Connecting the same pair twice is an error — the
// registry would otherwise silently orphan the first proxy's state.
func (n *Net) Connect(from, to, target string) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := [2]string{from, to}
	if _, dup := n.proxies[key]; dup {
		return "", fmt.Errorf("netfault: pair %s->%s already connected", from, to)
	}
	p, err := NewProxy(target)
	if err != nil {
		return "", err
	}
	n.proxies[key] = p
	return p.Addr(), nil
}

// Proxy returns the relay for the ordered pair, or nil when the pair
// was never connected.
func (n *Net) Proxy(from, to string) *Proxy {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.proxies[[2]string{from, to}]
}

// Partition blackholes every byte between a and b, both orders, both
// directions — the full split.  Pairs never connected are skipped:
// traffic that does not flow through a proxy cannot be partitioned,
// and asking for it is a harness wiring bug surfaced by the tests'
// own assertions, not here.
func (n *Net) Partition(a, b string) {
	for _, p := range n.pairProxies(a, b) {
		p.Blackhole()
	}
}

// PartitionDir makes packets from→to vanish while the reverse path
// still flows — the asymmetric partition.  On the from→to relay that
// is the uplink; on the to→from relay (to's own connections toward
// from) it is the downlink, from's replies.
func (n *Net) PartitionDir(from, to string) {
	n.mu.Lock()
	fwd := n.proxies[[2]string{from, to}]
	rev := n.proxies[[2]string{to, from}]
	n.mu.Unlock()
	if fwd != nil {
		fwd.BlackholeDir(Up)
	}
	if rev != nil {
		rev.BlackholeDir(Down)
	}
}

// Heal lifts every blackhole between a and b, both orders.
func (n *Net) Heal(a, b string) {
	for _, p := range n.pairProxies(a, b) {
		p.Heal()
	}
}

// HealAll lifts every blackhole in the registry.
func (n *Net) HealAll() {
	n.mu.Lock()
	ps := make([]*Proxy, 0, len(n.proxies))
	for _, p := range n.proxies {
		ps = append(ps, p)
	}
	n.mu.Unlock()
	for _, p := range ps {
		p.Heal()
	}
}

// Close tears down every proxy, in deterministic order.
func (n *Net) Close() {
	n.mu.Lock()
	keys := make([][2]string, 0, len(n.proxies))
	for k := range n.proxies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	ps := make([]*Proxy, 0, len(keys))
	for _, k := range keys {
		ps = append(ps, n.proxies[k])
	}
	n.proxies = map[[2]string]*Proxy{}
	n.mu.Unlock()
	for _, p := range ps {
		p.Close()
	}
}

func (n *Net) pairProxies(a, b string) []*Proxy {
	n.mu.Lock()
	defer n.mu.Unlock()
	var ps []*Proxy
	for _, key := range [][2]string{{a, b}, {b, a}} {
		if p := n.proxies[key]; p != nil {
			ps = append(ps, p)
		}
	}
	return ps
}
