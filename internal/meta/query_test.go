package meta

import "testing"

func TestSelectAndByQueries(t *testing.T) {
	db := NewDB()
	buildHierarchy(t, db)
	if got := db.OIDsByView("SCHEMA"); len(got) != 4 {
		t.Errorf("OIDsByView(SCHEMA) = %d", len(got))
	}
	if got := db.OIDsByBlock("cpu"); len(got) != 2 {
		t.Errorf("OIDsByBlock(cpu) = %d", len(got))
	}
	k, _ := db.Latest("cpu", "SCHEMA")
	if err := db.SetProp(k, "uptodate", "false"); err != nil {
		t.Fatal(err)
	}
	if got := db.OIDsWithProp("uptodate", "false"); len(got) != 1 || got[0].Key != k {
		t.Errorf("OIDsWithProp = %v", got)
	}
}

func TestLatestOIDs(t *testing.T) {
	db := NewDB()
	mustNewVersion(t, db, "cpu", "HDL_model")
	mustNewVersion(t, db, "cpu", "HDL_model")
	v3 := mustNewVersion(t, db, "cpu", "HDL_model")
	mustNewVersion(t, db, "reg", "HDL_model")
	latest := db.LatestOIDs()
	if len(latest) != 2 {
		t.Fatalf("LatestOIDs = %d entries", len(latest))
	}
	if latest[0].Key != v3 {
		t.Errorf("latest cpu = %v, want %v", latest[0].Key, v3)
	}
}

func TestReachableAndDependents(t *testing.T) {
	db := NewDB()
	root, nl := buildHierarchy(t, db)
	reach := db.Reachable(root, FollowAllLinks)
	if len(reach) != 5 {
		t.Errorf("Reachable = %v", reach)
	}
	deps := db.Dependents(root, FollowAllLinks)
	if len(deps) != 4 {
		t.Errorf("Dependents = %v, want 4 (root excluded)", deps)
	}
	for _, k := range deps {
		if k == root {
			t.Error("Dependents includes root")
		}
	}
	// Leaf has no dependents.
	if got := db.Dependents(nl, FollowAllLinks); len(got) != 0 {
		t.Errorf("Dependents(leaf) = %v", got)
	}
	// Missing root.
	if got := db.Reachable(Key{Block: "ghost", View: "v", Version: 1}, nil); got != nil {
		t.Errorf("Reachable(ghost) = %v", got)
	}
}

func TestLinksByType(t *testing.T) {
	db := NewDB()
	buildHierarchy(t, db)
	if got := db.LinksByType(TypeDeriveFrom); len(got) != 1 {
		t.Errorf("LinksByType(derived) = %d", len(got))
	}
	if got := db.LinksByType(TypeEquivalence); len(got) != 0 {
		t.Errorf("LinksByType(equivalence) = %d", len(got))
	}
}

func TestSelectLinksSorted(t *testing.T) {
	db := NewDB()
	buildHierarchy(t, db)
	links := db.SelectLinks(func(*Link) bool { return true })
	for i := 1; i < len(links); i++ {
		if links[i].ID < links[i-1].ID {
			t.Errorf("links out of ID order")
		}
	}
}
