#!/usr/bin/env bash
# Gates a PR's loadgen run against its base branch's run from the same
# machine: per-op-class p99 must stay within LIMIT percent of the
# baseline (regressions under an absolute 2ms floor never fail — tiny
# latencies jitter), and drops must not newly exceed 1% of arrivals.
# The comparison itself lives in `loadgen -gate`; this is the CI-facing
# wrapper in the benchgate.sh mold.
#
#   scripts/loadgate.sh LOAD_base.json LOAD_pr.json [limit-pct]
#
# A missing baseline file is a pass with a notice: the base branch
# predates cmd/loadgen (first introduction) or its run was skipped.
set -euo pipefail

BASE="${1:?usage: loadgate.sh LOAD_base.json LOAD_pr.json [limit-pct]}"
PR="${2:?usage: loadgate.sh LOAD_base.json LOAD_pr.json [limit-pct]}"
LIMIT="${3:-40}"

if [ ! -f "$BASE" ]; then
  echo "loadgate: no baseline at $BASE (base predates loadgen?) — skipping gate"
  exit 0
fi
BASE="$(cd "$(dirname "$BASE")" && pwd)/$(basename "$BASE")"
PR="$(cd "$(dirname "$PR")" && pwd)/$(basename "$PR")"

cd "$(dirname "$0")/.."
exec go run ./cmd/loadgen -gate -base "$BASE" -pr "$PR" -limit "$LIMIT"
