package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bpl"
	"repro/internal/meta"
)

// randomEngine builds an engine over a random link graph with the tiny
// invalidation blueprint and returns the keys.
func randomEngine(t *testing.T, rng *rand.Rand, n, m int) (*Engine, []meta.Key) {
	t.Helper()
	e := newTestEngine(t, `blueprint q
view default
    property uptodate default true
    property hits default "0"
    when outofdate do uptodate = false done
endview
view v
endview
endblueprint`)
	keys := make([]meta.Key, n)
	for i := range keys {
		keys[i] = mustCreate(t, e, fmt.Sprintf("b%02d", i), "v")
	}
	for i := 0; i < m; i++ {
		a, b := keys[rng.Intn(n)], keys[rng.Intn(n)]
		if a == b {
			continue
		}
		if _, err := e.DB().AddLink(meta.DeriveLink, a, b, "", []string{"outofdate"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return e, keys
}

// TestQuickPropagationTerminatesAndMatchesReachability: on arbitrary cyclic
// graphs, an outofdate wave terminates and invalidates exactly the
// downstream closure of the origin.
func TestQuickPropagationTerminatesAndMatchesReachability(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%15 + 2
		m := int(mRaw) % 50
		e, keys := randomEngine(t, rng, n, m)
		origin := keys[rng.Intn(len(keys))]
		if err := e.PostAndDrain(Event{Name: EventOutOfDate, Dir: bpl.DirDown, Target: origin}); err != nil {
			t.Log(err)
			return false
		}
		expect := map[meta.Key]bool{origin: true}
		for _, k := range e.DB().Dependents(origin, meta.FollowAllLinks) {
			expect[k] = true
		}
		for _, k := range keys {
			got, _, _ := e.DB().GetProp(k, "uptodate")
			want := "true"
			if expect[k] {
				want = "false"
			}
			if got != want {
				t.Logf("seed %d: %v uptodate=%q want %q", seed, k, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFIFODeterminism: processing a random batch of events yields the
// same final state as replaying the same batch on a fresh identical system
// — event processing is deterministic and strictly FIFO.
func TestQuickFIFODeterminism(t *testing.T) {
	f := func(seed int64) bool {
		build := func() (*Engine, []meta.Key) {
			rng := rand.New(rand.NewSource(seed))
			return randomEngine(t, rng, 8, 20)
		}
		run := func(e *Engine, keys []meta.Key) map[string]string {
			rng := rand.New(rand.NewSource(seed ^ 0x5eed))
			for i := 0; i < 30; i++ {
				ev := Event{
					Name:   []string{"outofdate", "touch", "poke"}[rng.Intn(3)],
					Dir:    bpl.Direction(rng.Intn(2)),
					Target: keys[rng.Intn(len(keys))],
					Args:   []string{fmt.Sprintf("a%d", rng.Intn(5))},
				}
				if err := e.Post(ev); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Drain(); err != nil {
				t.Fatal(err)
			}
			state := map[string]string{}
			e.DB().EachOID(func(o *meta.OID) bool {
				for p, v := range o.Props {
					state[o.Key.String()+"/"+p] = v
				}
				return true
			})
			return state
		}
		e1, k1 := build()
		e2, k2 := build()
		return reflect.DeepEqual(run(e1, k1), run(e2, k2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickMoveLinkUniqueInstance: under random version creations, a
// move-tagged template keeps exactly one live link instance per logical
// relationship, always attached to the latest versions.
func TestQuickMoveLinkUniqueInstance(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		e := newTestEngine(t, `blueprint q
view src
endview
view dst
    link_from src move propagates ev type derived
endview
endblueprint`)
		db := e.DB()
		src, err := e.CreateOID("s", "src", "")
		if err != nil {
			t.Fatal(err)
		}
		dst, err := e.CreateOID("d", "dst", "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.CreateLink(meta.DeriveLink, src, dst); err != nil {
			t.Fatal(err)
		}
		for _, op := range opsRaw {
			if len(opsRaw) > 12 {
				opsRaw = opsRaw[:12]
			}
			var err error
			if op%2 == 0 {
				_, err = e.CreateOID("s", "src", "")
			} else {
				_, err = e.CreateOID("d", "dst", "")
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Drain(); err != nil {
			t.Fatal(err)
		}
		// Exactly one link instance exists, and it connects the two latest
		// versions.
		all := db.SelectLinks(func(*meta.Link) bool { return true })
		if len(all) != 1 {
			t.Logf("seed %d: %d link instances", seed, len(all))
			return false
		}
		ls, _ := db.Latest("s", "src")
		ld, _ := db.Latest("d", "dst")
		if all[0].From != ls || all[0].To != ld {
			t.Logf("seed %d: link %v->%v, latest %v %v", seed, all[0].From, all[0].To, ls, ld)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBufferTracerBounding(t *testing.T) {
	b := &BufferTracer{Max: 4}
	for i := 0; i < 10; i++ {
		b.Trace(TraceEntry{Kind: TraceDeliver, Detail: fmt.Sprintf("%d", i)})
	}
	if got := len(b.Entries()); got > 4 {
		t.Errorf("retained %d entries, max 4", got)
	}
	if b.Dropped() == 0 {
		t.Error("no drops recorded")
	}
	last := b.Entries()[len(b.Entries())-1]
	if last.Detail != "9" {
		t.Errorf("newest entry lost: %v", last)
	}
	b.Reset()
	if len(b.Entries()) != 0 || b.Dropped() != 0 {
		t.Error("reset incomplete")
	}
}

func TestTraceEntryString(t *testing.T) {
	e := TraceEntry{Kind: TraceAssign, OID: "a,v,1", Event: "ckin", Detail: "x = y"}
	if got := e.String(); got != "assign ckin @a,v,1: x = y" {
		t.Errorf("String = %q", got)
	}
}
