#!/usr/bin/env bash
# Runs the key engine benchmarks and emits BENCH_<n>.json so the perf
# trajectory across PRs is machine-readable.
#
#   BENCH_INDEX=2 BENCH_COUNT=3 scripts/bench.sh
#
# BENCH_INDEX (default 1) selects the output file BENCH_<n>.json;
# BENCH_COUNT (default 1) is passed to -count.  The raw `go test` output is
# kept next to the JSON as BENCH_<n>.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

INDEX="${BENCH_INDEX:-1}"
COUNT="${BENCH_COUNT:-1}"
PATTERN="${BENCH_PATTERN:-BenchmarkEventThroughput\$|BenchmarkPropagationScaling|BenchmarkStateReport}"
OUT="BENCH_${INDEX}.json"
RAW="BENCH_${INDEX}.txt"

go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$RAW"

{
  printf '{\n'
  printf '  "index": %s,\n' "$INDEX"
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
  printf '  "commit": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1
      sub(/-[0-9]+$/, "", name)
      if (out != "") printf "%s,\n", out
      out = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", name, $2)
      sep = ""
      for (i = 3; i < NF; i += 2) {
        out = out sprintf("%s\"%s\": %s", sep, $(i+1), $i)
        sep = ", "
      }
      out = out "}}"
    }
    END { if (out != "") printf "%s\n", out }
  ' "$RAW"
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
